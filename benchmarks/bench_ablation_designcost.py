"""Experiment ``abl_designcost`` — sensitivity to the eq.-(6) calibration.

The paper's constants (A0=1000, p1=1.0, p2=1.2, s_d0=100) come from a
private dataset "for illustration purposes". This ablation sweeps each
constant through a generous band and reports how far the Figure-4(a)
optimum moves — quantifying how much of the paper's conclusion depends
on the calibration versus the model *form*.
"""

from repro.cost import PAPER_FIGURE4_MODEL
from repro.optimize import optimal_sd, parameter_elasticities, tornado
from repro.report import format_table

POINT = dict(n_transistors=1e7, feature_um=0.18, n_wafers=5_000,
             yield_fraction=0.4, cost_per_cm2=8.0)

EXCURSIONS = {
    "a0": (250.0, 4000.0),     # 4x both ways
    "p1": (0.8, 1.2),
    "p2": (0.8, 1.6),
    "sd0": (50.0, 150.0),
    "n_wafers": (1_000, 25_000),
    "yield_fraction": (0.2, 0.8),
    "cost_per_cm2": (4.0, 16.0),
}


def regenerate_ablation():
    base = optimal_sd(PAPER_FIGURE4_MODEL, **POINT)
    entries = tornado(PAPER_FIGURE4_MODEL, POINT, EXCURSIONS)
    elas = parameter_elasticities(
        PAPER_FIGURE4_MODEL, POINT,
        parameters=["a0", "p2", "n_wafers", "cost_per_cm2", "n_transistors"])
    return base, entries, elas


def test_ablation_design_cost(benchmark, save_artifact):
    base, entries, elas = benchmark(regenerate_ablation)

    rows = [(e.parameter, e.low_value, e.high_value, e.sd_opt_low,
             e.sd_opt_high, e.cost_opt_low / base.cost_opt,
             e.cost_opt_high / base.cost_opt) for e in entries]
    table = format_table(
        ["parameter", "low", "high", "opt s_d @low", "opt s_d @high",
         "cost x @low", "cost x @high"],
        rows, float_spec=".4g",
        title=(f"Ablation: eq.-(6) calibration tornado "
               f"(base optimum s_d = {base.sd_opt:.0f})"))
    elas_table = format_table(
        ["parameter", "d ln(sd_opt) / d ln(param)"],
        sorted(elas.items(), key=lambda kv: -abs(kv[1])), float_spec=".3f",
        title="Local elasticities of the optimal density")
    save_artifact("ablation_designcost", table + "\n\n" + elas_table)

    # The conclusion is calibration-robust: the optimum stays interior
    # for every excursion...
    for e in entries:
        assert 100 < e.sd_opt_low < 4500
        assert 100 < e.sd_opt_high < 4500
    # ...and moves sub-proportionally: the optimum margin scales like
    # a0^(1/(p2+1)), so a 16x a0 band moves s_d by well under 16^(1/2.2).
    a0_entry = next(e for e in entries if e.parameter == "a0")
    assert a0_entry.sd_opt_high / a0_entry.sd_opt_low < 6.0
    # Volume and a0 pull in opposite directions with similar strength.
    assert elas["a0"] > 0 > elas["n_wafers"]
