"""Experiment ``obs_overhead`` — cost of the observability layer itself.

The obs contract (``docs/observability.md``) is that a disabled
tracer costs essentially nothing: ``enabled()`` is one global read,
``span()``/``observe_duration()`` return immediately, and model code
never pays for instrumentation it did not ask for. This micro-bench
measures those paths directly — the disabled guards, plus the enabled
:class:`repro.obs.DurationSketch.observe` hot loop that every span
exit now feeds — so a regression in the guard pattern shows up in the
perf gate like any model slowdown would.

Each measurement is min-of-repeats over a fixed-count loop, reported
as nanoseconds per call.
"""

import time

from repro import obs
from repro.obs import DurationSketch
from repro.report import format_table

#: Calls per timed loop — large enough that loop overhead amortises.
CALLS = 20_000
#: Timed repeats per path; min-of-repeats rejects scheduler noise.
REPEATS = 5


def _ns_per_call(fn) -> float:
    """Min-of-repeats wall time of ``fn`` (one loop), per call, in ns."""
    best = min(_timed(fn) for _ in range(REPEATS))
    return best / CALLS * 1e9


def _timed(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def _loop_enabled_check() -> None:
    for _ in range(CALLS):
        obs.enabled()


def _loop_disabled_span() -> None:
    for _ in range(CALLS):
        with obs.span("bench.noop"):
            pass


def _loop_disabled_observe_duration() -> None:
    for _ in range(CALLS):
        obs.observe_duration("bench.noop", 1e-3)


def _loop_sketch_observe() -> None:
    sketch = DurationSketch("bench.sketch")
    for i in range(CALLS):
        sketch.observe(1e-6 + i * 1e-9)


def _loop_disabled_labeled_inc() -> None:
    labels = {"backend": "numpy", "policy": "raise"}
    for _ in range(CALLS):
        obs.inc("bench_noop_total", labels=labels)


def _loop_disabled_capture_context() -> None:
    for _ in range(CALLS):
        obs.capture_context()


def _loop_enabled_labeled_inc() -> None:
    labels = {"backend": "numpy", "policy": "raise"}
    for _ in range(CALLS):
        obs.inc("bench_hot_total", labels=labels)


def _loop_disabled_history_note() -> None:
    for _ in range(CALLS):
        obs.note_evaluation("numpy", 1024, False)


def regenerate_overhead():
    obs.disable()
    rows = [
        ("obs.enabled() [disabled]", _ns_per_call(_loop_enabled_check)),
        ("obs.span() [disabled]", _ns_per_call(_loop_disabled_span)),
        ("obs.observe_duration() [disabled]",
         _ns_per_call(_loop_disabled_observe_duration)),
        ("obs.inc() labeled [disabled]",
         _ns_per_call(_loop_disabled_labeled_inc)),
        ("obs.capture_context() [disabled]",
         _ns_per_call(_loop_disabled_capture_context)),
        ("obs.note_evaluation() [disabled]",
         _ns_per_call(_loop_disabled_history_note)),
        ("DurationSketch.observe() [enabled]",
         _ns_per_call(_loop_sketch_observe)),
    ]
    obs.enable()
    try:
        rows.append(("obs.inc() labeled [enabled]",
                     _ns_per_call(_loop_enabled_labeled_inc)))
    finally:
        obs.disable()
        obs.reset()
    return rows


def test_obs_overhead(benchmark, save_artifact):
    rows = benchmark(regenerate_overhead)

    table = format_table(
        ["path", "ns/call"], rows, float_spec=".1f",
        title=f"Observability overhead (min of {REPEATS}x{CALLS} calls)")
    save_artifact("obs_overhead", table)

    costs = dict(rows)
    # The disabled paths are guard-only: generous absolute ceilings that
    # only a broken guard (e.g. allocating a span while disabled) can
    # breach, not timer jitter.
    assert costs["obs.enabled() [disabled]"] < 2_000
    assert costs["obs.observe_duration() [disabled]"] < 2_000
    assert costs["obs.span() [disabled]"] < 10_000
    # Labeled metrics and trace propagation keep the same disabled
    # contract: one global read, no label freezing, no context capture.
    assert costs["obs.inc() labeled [disabled]"] < 2_000
    assert costs["obs.capture_context() [disabled]"] < 2_000
    # The engine's history sink with no RunRecorder active: one module
    # global read, no store, no lock.
    assert costs["obs.note_evaluation() [disabled]"] < 2_000
    # The enabled sketch path is a log + dict update — well under 50µs.
    assert costs["DurationSketch.observe() [enabled]"] < 50_000
    # Enabled labeled inc: freeze + registry lookup + locked add. Loose
    # ceiling — this guards against pathological lock contention or
    # per-call metric allocation, not nanosecond drift.
    assert costs["obs.inc() labeled [enabled]"] < 50_000
