"""Experiment ``abl_ttm`` — deriving Figure 1's drift from TTM pressure.

§2.2.2 asserts that "time to market pressure must be a factor deciding
about compactness". This bench tests that explanation quantitatively:
add a market-window revenue term to the cost model and solve for the
*profit*-optimal ``s_d`` across market temperatures. If the paper is
right, hot markets should rationally choose ``s_d`` well above the
cost-optimal value — i.e. the industrial drift is an equilibrium, not
an error.
"""

from repro.cost import PAPER_FIGURE4_MODEL
from repro.economics import MarketWindowModel, profit_optimal_sd
from repro.optimize import optimal_sd
from repro.report import format_table

POINT = dict(n_transistors=1e7, feature_um=0.18, yield_fraction=0.8, cost_per_cm2=8.0)
N_UNITS = 2e6
WINDOWS = [20, 40, 60, 120, 300, 1000]  # weeks; hot consumer -> embedded


def regenerate_ablation():
    cost_opt = optimal_sd(PAPER_FIGURE4_MODEL, n_wafers=50_000, **POINT)
    rows = []
    for window in WINDOWS:
        market = MarketWindowModel(peak_revenue_usd=5e8, window_weeks=window)
        p = profit_optimal_sd(market, PAPER_FIGURE4_MODEL, n_units=N_UNITS, **POINT)
        rows.append((window, p.sd, p.schedule_weeks, p.revenue_usd / 1e6,
                     p.design_cost_usd / 1e6, p.silicon_cost_usd / 1e6,
                     p.profit_usd / 1e6))
    return cost_opt, rows


def test_ablation_ttm(benchmark, save_artifact):
    cost_opt, rows = benchmark(regenerate_ablation)

    table = format_table(
        ["window wks", "profit-opt s_d", "schedule wks", "revenue M$",
         "design M$", "silicon M$", "profit M$"],
        rows, float_spec=".4g",
        title=(f"Ablation: profit-optimal s_d vs market window "
               f"(cost-optimal s_d = {cost_opt.sd_opt:.0f} at this volume)"))
    save_artifact("ablation_ttm", table)

    sds = [r[1] for r in rows]
    # Hot markets choose sparser designs, monotonically.
    assert all(a > b for a, b in zip(sds, sds[1:]))
    # The hottest market sits WELL above the cost optimum — the paper's
    # explanation of Figure 1's drift holds in the model...
    assert sds[0] > 1.3 * cost_opt.sd_opt
    # ...while a patient market stays near (or below) cost-optimal.
    assert sds[-1] < 1.1 * cost_opt.sd_opt
    # Profit stays positive throughout (these are rational choices).
    assert all(r[6] > 0 for r in rows)
