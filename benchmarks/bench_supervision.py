"""Experiment ``supervision`` — overhead of the supervised pool path.

Times the same large eq.-(4) grid through the chunked process pool two
ways:

* **raw**: chunk futures submitted directly to the executor and
  collected with no supervision (the pre-supervision fast path);
* **supervised**: :func:`repro.engine.parallel.batch_in_chunks`, i.e.
  the deadline/retry/breaker/checkpoint machinery on a run where
  nothing faults.

The robustness layer's bargain: fault recovery must be effectively
free when nothing fails. The guard asserts the supervised clean path
costs at most 5% over raw submission, and that both produce identical
values.
"""

import time

import numpy as np

from repro.cost import PAPER_FIGURE4_MODEL
from repro.engine import parallel
from repro.engine.kernels import Eq4SdKernel
from repro.engine.parallel import _run_chunk

FIG4A = dict(n_transistors=1e7, feature_um=0.18, n_wafers=5_000,
             yield_fraction=0.4, cost_per_cm2=8.0)
#: Large enough that per-chunk compute dwarfs pool wake-up jitter
#: (the supervision cost being measured is a per-cycle constant),
#: small enough for CI.
N_POINTS = 4_000_000
N_CHUNKS = 4
_REPEATS = 6


def _kernel() -> Eq4SdKernel:
    return Eq4SdKernel(PAPER_FIGURE4_MODEL, **FIG4A)


def _best_of_interleaved(fn_a, fn_b) -> tuple[float, float]:
    """Minimum wall times of two functions, timed in alternation.

    Pool timings are noisy (worker scheduling, page cache); alternating
    the two candidates inside one loop exposes both to the same system
    conditions, so the *ratio* — which is what the gate asserts — is
    far more stable than two back-to-back ``best_of`` blocks.
    """
    best_a = best_b = float("inf")
    for _ in range(_REPEATS + 1):
        start = time.perf_counter()
        fn_a()
        best_a = min(best_a, time.perf_counter() - start)
        start = time.perf_counter()
        fn_b()
        best_b = min(best_b, time.perf_counter() - start)
    return best_a, best_b


def _raw_pool(kernel, chunks) -> np.ndarray:
    pool = parallel._get_pool()
    futures = [pool.submit(_run_chunk, kernel, chunk) for chunk in chunks]
    return np.concatenate([np.asarray(f.result(), dtype=float)
                           for f in futures], axis=-1)


def regenerate_supervision():
    """Raw vs supervised pooled wall times + values on a 2M-point grid."""
    kernel = _kernel()
    grid = np.linspace(150.0, 1200.0, N_POINTS)
    chunks = np.array_split(grid, N_CHUNKS)
    parallel._get_pool()  # warm the workers outside the timed region
    raw_values = _raw_pool(kernel, chunks)
    supervised_values, report = parallel.batch_in_chunks(
        kernel, grid, N_CHUNKS)
    t_raw, t_supervised = _best_of_interleaved(
        lambda: _raw_pool(kernel, chunks),
        lambda: parallel.batch_in_chunks(kernel, grid, N_CHUNKS))
    return t_raw, t_supervised, raw_values, supervised_values, report


def test_supervision(benchmark, save_artifact):
    t_raw, t_supervised, raw_values, supervised_values, report = benchmark(
        regenerate_supervision)
    overhead = t_supervised / t_raw - 1.0

    lines = [
        "supervision: supervised vs raw pooled eq.-(4) sweep "
        f"({N_POINTS} points, {N_CHUNKS} chunks, best of {_REPEATS})",
        f"  raw        {t_raw * 1e3:8.3f} ms",
        f"  supervised {t_supervised * 1e3:8.3f} ms",
        f"  overhead   {overhead * 100:+8.2f} %",
        f"  faults during clean run: {report.n_retries}",
    ]
    save_artifact("supervision", "\n".join(lines))

    # Robustness contract: supervision is free on the clean path.
    assert np.array_equal(supervised_values, raw_values)
    assert not report.faulted
    assert overhead <= 0.05
