"""Experiment ``fig2`` — Figure 2: ``s_d`` implied by ITRS-1999 data.

Regenerates the roadmap-implied ``s_d`` series (eq. 2 applied to the
roadmap's MPU density targets) versus minimum feature size.
"""

from repro.data import load_itrs_1999
from repro.report import Series, format_table


def regenerate_figure2():
    nodes = load_itrs_1999()
    series = Series.from_arrays(
        "ITRS-implied s_d",
        [n.feature_um for n in nodes],
        [n.implied_sd() for n in nodes],
        x_label="feature um", y_label="s_d")
    return nodes, series


def test_figure2(benchmark, save_artifact):
    nodes, series = benchmark(regenerate_figure2)

    rows = [(n.year, n.feature_nm, n.mpu_density_m_per_cm2, n.implied_sd(),
             n.implied_die_area_cm2()) for n in nodes]
    table = format_table(
        ["year", "nm", "Mtx/cm2", "implied s_d", "implied die cm2"],
        rows, float_spec=".4g",
        title="Figure 2: s_d for MPUs from ITRS-1999 data")
    save_artifact("figure2", table)

    # Reproduction contract: implied s_d FALLS as lambda shrinks —
    # i.e. rises along ascending lambda.
    assert series.is_increasing()
    sds = [n.implied_sd() for n in nodes]
    # 1999 anchor near 470, horizon near 120 (reconstruction cadence).
    assert 400 < sds[0] < 550
    assert 90 < sds[-1] < 160
    # Total required densification ~ 3-5x over the roadmap.
    assert 2.5 < sds[0] / sds[-1] < 6.0
