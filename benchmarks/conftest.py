"""Shared fixtures for the benchmark/reproduction harness.

Each bench regenerates one paper artifact (table or figure), asserts
its shape, and writes the regenerated rows/series to
``benchmarks/output/<name>.txt`` so the numbers behind EXPERIMENTS.md
are inspectable without re-running anything.

The harness also times every bench with the monotonic
:class:`repro.obs.Stopwatch` and, at session end, writes the wall
times twice:

* ``benchmarks/output/bench_report.json`` — the schema-versioned
  ``repro-bench/1`` document (schema id, git SHA, python version,
  repeat count) that ``python -m repro.bench --compare`` understands;
* ``benchmarks/output/bench_times.json`` — the legacy
  ``{"unit", "times"}`` shape, kept as a compat alias for older
  BENCH_*.json tooling.

The pytest harness measures each bench once (``repeats = 1``, so MAD
is 0); the statistical trajectory with warmup and repeats comes from
``python -m repro.bench``.
"""

import json
import sys
from pathlib import Path

import pytest

_ROOT = Path(__file__).resolve().parent.parent
_SRC = _ROOT / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.obs import Stopwatch  # noqa: E402  (needs the sys.path bootstrap)
from repro.bench import make_report, write_report  # noqa: E402

OUTPUT_DIR = Path(__file__).resolve().parent / "output"

#: Per-test wall times (seconds), filled as the session runs.
_BENCH_TIMES: dict[str, float] = {}


@pytest.fixture(scope="session")
def output_dir() -> Path:
    """Directory collecting the regenerated tables/series."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture()
def save_artifact(output_dir):
    """Callable writing a named artifact and echoing it to stdout."""

    def _save(name: str, text: str) -> None:
        path = output_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n[{name}] -> {path}\n{text}")

    return _save


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    """Time each bench body (call phase only, setup/teardown excluded)."""
    stopwatch = Stopwatch().start()
    yield
    _BENCH_TIMES[item.nodeid.split("::", 1)[-1]] = stopwatch.stop()


def pytest_sessionfinish(session):
    """Dump the collected wall times (schema report + legacy alias)."""
    if not _BENCH_TIMES:
        return
    OUTPUT_DIR.mkdir(exist_ok=True)
    benches = {
        name: {"min": seconds, "median": seconds, "mad": 0.0, "repeats": 1}
        for name, seconds in _BENCH_TIMES.items()
    }
    write_report(OUTPUT_DIR / "bench_report.json",
                 make_report(benches, repeats=1, warmup=0))
    legacy = {
        "unit": "seconds",
        "times": dict(sorted(_BENCH_TIMES.items())),
    }
    (OUTPUT_DIR / "bench_times.json").write_text(
        json.dumps(legacy, indent=2) + "\n")
