"""Shared fixtures for the benchmark/reproduction harness.

Each bench regenerates one paper artifact (table or figure), asserts
its shape, and writes the regenerated rows/series to
``benchmarks/output/<name>.txt`` so the numbers behind EXPERIMENTS.md
are inspectable without re-running anything.
"""

import sys
from pathlib import Path

import pytest

_ROOT = Path(__file__).resolve().parent.parent
_SRC = _ROOT / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

OUTPUT_DIR = Path(__file__).resolve().parent / "output"


@pytest.fixture(scope="session")
def output_dir() -> Path:
    """Directory collecting the regenerated tables/series."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture()
def save_artifact(output_dir):
    """Callable writing a named artifact and echoing it to stdout."""

    def _save(name: str, text: str) -> None:
        path = output_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n[{name}] -> {path}\n{text}")

    return _save
