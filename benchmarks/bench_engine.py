"""Experiment ``engine`` — vectorized vs scalar evaluation of Figure 4.

Times the same eq.-(4) cost curve — the Figure-4 sweep grid — two ways:

* **scalar**: one model call per grid point, the pre-engine hot loop;
* **vectorized**: one :func:`repro.engine.evaluate_grid` batch call.

The reproduction contract is the engine's reason to exist: the
vectorized path must be at least 10× faster on the same grid while
agreeing with the scalar path to ≤1e-12 relative error.
"""

import time

import numpy as np

from repro.cost import PAPER_FIGURE4_MODEL
from repro.engine import clear_cache, evaluate_grid
from repro.engine.kernels import Eq4SdKernel
from repro.optimize import sd_grid

FIG4A = dict(n_transistors=1e7, feature_um=0.18, n_wafers=5_000,
             yield_fraction=0.4, cost_per_cm2=8.0)
#: The Figure-4 sweep grid (same spec as ``bench_figure4.GRID``).
GRID = sd_grid(100.0, sd_max=1200.0, n=240)
_REPEATS = 5


def _kernel() -> Eq4SdKernel:
    return Eq4SdKernel(PAPER_FIGURE4_MODEL, **FIG4A)


def _best_of(fn) -> float:
    """Minimum wall time over ``_REPEATS`` runs (first run warms up)."""
    best = float("inf")
    for _ in range(_REPEATS + 1):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def regenerate_engine():
    """Scalar vs vectorized wall times + values on the Figure-4 grid."""
    kernel = _kernel()
    clear_cache()
    scalar_values = np.array([kernel.point(float(x)) for x in GRID])
    vector_values = evaluate_grid(
        kernel, GRID, where="bench.engine", equation="4", parameter="sd",
        cache=False).values
    t_scalar = _best_of(lambda: [kernel.point(float(x)) for x in GRID])
    t_vector = _best_of(lambda: evaluate_grid(
        kernel, GRID, where="bench.engine", equation="4", parameter="sd",
        cache=False))
    return t_scalar, t_vector, scalar_values, vector_values


def test_engine(benchmark, save_artifact):
    t_scalar, t_vector, scalar_values, vector_values = benchmark(
        regenerate_engine)
    speedup = t_scalar / t_vector
    parity = float(np.max(np.abs(vector_values - scalar_values)
                          / np.abs(scalar_values)))

    lines = [
        "engine: vectorized vs scalar eq.-(4) sweep "
        f"({GRID.size} points, best of {_REPEATS})",
        f"  scalar     {t_scalar * 1e3:8.3f} ms  "
        f"({t_scalar / GRID.size * 1e6:.1f} us/point)",
        f"  vectorized {t_vector * 1e3:8.3f} ms  "
        f"({t_vector / GRID.size * 1e6:.1f} us/point)",
        f"  speedup    {speedup:8.1f}x",
        f"  max relative divergence: {parity:.3e}",
    ]
    save_artifact("engine", "\n".join(lines))

    # Reproduction contract.
    assert parity <= 1e-12
    assert speedup >= 10.0
