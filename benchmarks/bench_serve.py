"""Experiment ``serve`` — throughput and tail latency of the HTTP layer.

An in-process load generator drives a real ``repro.serve`` server over
loopback HTTP: 16 concurrent clients issue single-point ``/evaluate``
requests drawn from a small pool of operating points, so the run
exercises the whole traffic path — JSON parse, micro-batch coalescing,
the shared memo cache, and response rendering — rather than the bare
kernel. Latencies land in a :class:`repro.obs.DurationSketch`, the
same log-bucketed estimator the span pipeline uses, so the reported
p50/p99 match what ``/metrics`` would expose for a production scrape.

The serving contract gated here is intentionally loose enough for a
noisy CI box and tight enough to catch structural regressions (a lost
cache, a serialized handler pool, a batcher stall):

* sustained throughput of at least 25 requests/second;
* p99 request latency at or under 500 ms;
* the shared cache absorbed repeat traffic (hit rate > 0).
"""

import json
import time
import urllib.request
from concurrent.futures import ThreadPoolExecutor

from repro.obs import DurationSketch
from repro.serve import start_server

#: Concurrent client threads.
CLIENTS = 16
#: Total requests issued per run.
REQUESTS = 200
#: Distinct operating points; REQUESTS/POINTS repeats hit the cache.
POINTS = 25

BASE = dict(n_transistors=1e7, feature_um=0.18, n_wafers=5_000.0,
            yield_fraction=0.4, cost_per_cm2=8.0)

#: Serving contract floors/ceilings (see module docstring).
MIN_THROUGHPUT_RPS = 25.0
MAX_P99_S = 0.5


def _bodies() -> list[bytes]:
    return [
        json.dumps({"scenario": {**BASE, "sd": 150.0 + 10.0 * (i % POINTS)}})
        .encode()
        for i in range(REQUESTS)
    ]


def regenerate_serve():
    """Drive the load and return (throughput_rps, sketch, hit_rate)."""
    with start_server() as handle:
        url = f"{handle.url}/evaluate"
        sketch = DurationSketch("serve.evaluate")

        def one(body: bytes) -> None:
            request = urllib.request.Request(
                url, data=body, method="POST",
                headers={"Content-Type": "application/json"})
            start = time.perf_counter()
            with urllib.request.urlopen(request, timeout=30) as reply:
                reply.read()
            sketch.observe(time.perf_counter() - start)

        bodies = _bodies()
        # Warm up: first touch of each operating point populates the
        # cache and pays the numpy import, not the measured run.
        for body in bodies[:POINTS]:
            one(body)
        sketch = DurationSketch("serve.evaluate")

        start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=CLIENTS) as pool:
            list(pool.map(one, bodies))
        elapsed = time.perf_counter() - start

        stats = handle.service.cache_stats()
        hit_rate = stats.hit_rate if stats is not None else 0.0
    return REQUESTS / elapsed, sketch, hit_rate


def test_serve(benchmark, save_artifact):
    throughput, sketch, hit_rate = benchmark(regenerate_serve)
    quantiles = sketch.percentiles()

    lines = [
        f"serve: {REQUESTS} /evaluate requests, {CLIENTS} concurrent "
        f"clients, {POINTS} distinct points",
        f"  throughput {throughput:10.1f} req/s "
        f"(floor {MIN_THROUGHPUT_RPS:.0f})",
        f"  p50        {quantiles['p50'] * 1e3:10.2f} ms",
        f"  p90        {quantiles['p90'] * 1e3:10.2f} ms",
        f"  p99        {quantiles['p99'] * 1e3:10.2f} ms "
        f"(ceiling {MAX_P99_S * 1e3:.0f} ms)",
        f"  cache hit rate {hit_rate:6.2f}",
    ]
    save_artifact("serve", "\n".join(lines))

    # Serving contract.
    assert throughput >= MIN_THROUGHPUT_RPS
    assert quantiles["p99"] <= MAX_P99_S
    assert hit_rate > 0.0
