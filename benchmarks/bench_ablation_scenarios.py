"""Experiment ``abl_scenarios`` — how optimistic was Figure 3?

§2.2.3: the cost contradiction "was demonstrated by using a very
optimistic scenario i.e. assuming no increase in C_sq and no decrease
in yield ... highly unlikely". This bench re-runs the Figure-3 ratio
under the paper's flat assumptions and under calibrated realistic /
pessimistic trajectories, quantifying how much the paper *understated*
its own case.
"""

from repro.data import load_itrs_1999
from repro.report import format_table
from repro.roadmap import SCENARIO_NAMES, scenario, scenario_series


def regenerate_ablation():
    nodes = load_itrs_1999()
    results = {}
    for name in SCENARIO_NAMES:
        results[name] = scenario_series(nodes, scenario(name))
    return nodes, results


def test_ablation_scenarios(benchmark, save_artifact):
    nodes, results = benchmark(regenerate_ablation)

    rows = []
    for i, node in enumerate(nodes):
        rows.append((
            node.year, node.feature_nm,
            results["paper-optimistic"][i].ratio,
            results["realistic"][i].ratio,
            results["pessimistic"][i].ratio,
        ))
    table = format_table(
        ["year", "nm", "paper-optimistic", "realistic", "pessimistic"],
        rows, float_spec=".4g",
        title="Ablation: Figure-3 contradiction ratio under each scenario")
    scn = scenario("realistic")
    anchors = format_table(
        ["year", "Cm_sq $/cm2 (realistic)", "Y (realistic)"],
        [(n.year, scn.cost_per_cm2(n), scn.yield_fraction(n)) for n in nodes],
        float_spec=".3g")
    save_artifact("ablation_scenarios", table + "\n\n" + anchors)

    # Shape contract: relaxing the optimism strictly worsens the ratio
    # at every post-anchor node, by large factors at the horizon.
    for i in range(1, len(nodes)):
        o = results["paper-optimistic"][i].ratio
        r = results["realistic"][i].ratio
        p = results["pessimistic"][i].ratio
        assert o < r < p
    assert results["realistic"][-1].ratio > 10 * results["paper-optimistic"][-1].ratio
    # The paper's own numbers reproduce as the floor of the family.
    assert results["paper-optimistic"][0].ratio < 1.1
