"""Experiment ``fig1`` — Figure 1: industrial ``s_d`` trends.

Regenerates the Figure 1 scatter (logic ``s_d`` per design, grouped by
vendor), the power-law trend fit, and the Intel-vs-AMD strategy
comparison the §2.2.2 text walks through.
"""

import numpy as np

from repro.data import DesignRegistry
from repro.density import (
    extract_points,
    sd_feature_rank_correlation,
    sd_vs_feature_fit,
    vendor_density_advantage,
    vendor_trends,
)
from repro.report import Series, format_table


def regenerate_figure1():
    registry = DesignRegistry.table_a1()
    points = extract_points(registry)
    fit = sd_vs_feature_fit(registry)
    rho = sd_feature_rank_correlation(registry)
    trends = vendor_trends(registry)
    pre_k7 = registry.filter(lambda r: not (r.vendor == "AMD" and "K7" in r.device))
    amd_vs_intel = vendor_density_advantage(pre_k7, "AMD", "Intel")
    return registry, points, fit, rho, trends, amd_vs_intel


def test_figure1(benchmark, save_artifact):
    registry, points, fit, rho, trends, amd_vs_intel = benchmark(regenerate_figure1)

    scatter_rows = [(p.index, p.vendor, p.device[:24], p.year, p.feature_um,
                     p.sd_mem, p.sd_logic) for p in points]
    scatter = format_table(
        ["#", "vendor", "device", "year", "um", "sd_mem", "sd_logic"],
        scatter_rows, float_spec=".4g",
        title="Figure 1 scatter: s_d of published designs")

    trend_rows = [(t.vendor, len(t.points), t.mean_sd(),
                   t.fit_vs_year.slope if t.fit_vs_year else None)
                  for t in trends]
    trend_table = format_table(
        ["vendor", "designs", "mean sd_logic", "d sd / d year"],
        trend_rows, float_spec=".4g", title="Per-vendor series")

    duel_rows = [(pa.device[:20], pb.device[:20], pa.feature_um, ratio)
                 for pa, pb, ratio in amd_vs_intel]
    duel_table = format_table(
        ["AMD part", "Intel part (same node)", "um", "sd ratio AMD/Intel"],
        duel_rows, float_spec=".4g", title="Pre-K7 AMD vs Intel (message 2)")

    summary = (f"power-law fit: s_d = {fit.amplitude:.0f} * lambda^{fit.slope:.2f} "
               f"(R^2 = {fit.r_squared:.2f});  Spearman rho(lambda, s_d) = {rho:.2f}")
    save_artifact("figure1", "\n\n".join([scatter, trend_table, duel_table, summary]))

    # Reproduction contract: rising sparseness + follower strategy.
    assert fit.slope < -0.2
    assert rho < -0.2
    assert np.median([r for _, _, r in amd_vs_intel]) < 1.0
    k7 = registry.by_device("K7")
    assert k7.best_sd_logic() > 300
    vendor_map = {t.vendor: t for t in trends}
    assert vendor_map["Intel"].is_rising()
