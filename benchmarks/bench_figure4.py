"""Experiment ``fig4`` — Figure 4: C_tr(s_d) U-curves and the optimum shift.

Regenerates both panels with the paper's stated parameters:

* (a) ``N_tr = 10M``, ``N_w = 5 000``,  ``Y = 0.4``;
* (b) ``N_tr = 10M``, ``N_w = 50 000``, ``Y = 0.9``;

plus the `fig4_shift` trace of the optimum versus volume (§3.1's
"location of the optimum changes substantially" claim).
"""

import numpy as np

from repro.cost import PAPER_FIGURE4_MODEL
from repro.optimize import optimal_sd, optimum_vs_volume, sd_grid, sd_sweep
from repro.report import Series, ascii_plot, format_table

FIG4A = dict(n_transistors=1e7, feature_um=0.18, n_wafers=5_000,
             yield_fraction=0.4, cost_per_cm2=8.0)
FIG4B = dict(n_transistors=1e7, feature_um=0.18, n_wafers=50_000,
             yield_fraction=0.9, cost_per_cm2=8.0)
GRID = sd_grid(100.0, sd_max=1200.0, n=240)


def regenerate_figure4():
    sweep_a = sd_sweep(PAPER_FIGURE4_MODEL, sd_values=GRID, **FIG4A)
    sweep_b = sd_sweep(PAPER_FIGURE4_MODEL, sd_values=GRID, **FIG4B)
    opt_a = optimal_sd(PAPER_FIGURE4_MODEL, **FIG4A)
    opt_b = optimal_sd(PAPER_FIGURE4_MODEL, **FIG4B)
    shift = optimum_vs_volume(PAPER_FIGURE4_MODEL, 1e7, 0.18, 0.8, 8.0,
                              n_wafers_values=np.geomspace(1e3, 1e6, 7))
    return sweep_a, sweep_b, opt_a, opt_b, shift


def test_figure4(benchmark, save_artifact):
    sweep_a, sweep_b, opt_a, opt_b, shift = benchmark(regenerate_figure4)

    # Curve samples at round s_d values, as the paper's axes show them.
    sample_sds = [110, 150, 200, 300, 400, 500, 700, 1000]
    rows = [(sd, sweep_a.cost_at(sd), sweep_b.cost_at(sd)) for sd in sample_sds]
    curves = format_table(
        ["s_d", "(a) N_w=5k Y=0.4  $/tx", "(b) N_w=50k Y=0.9  $/tx"],
        rows, float_spec=".3e",
        title="Figure 4: transistor cost modeled by eq. (4)")

    optima = (f"(a) optimum: s_d = {opt_a.sd_opt:.0f} at {opt_a.cost_opt:.3e} $/tx\n"
              f"(b) optimum: s_d = {opt_b.sd_opt:.0f} at {opt_b.cost_opt:.3e} $/tx\n"
              f"optimum shift (a)/(b): {opt_a.sd_opt / opt_b.sd_opt:.2f}x in s_d")

    shift_rows = [(f"{nw:,.0f}", res.sd_opt, res.cost_opt) for nw, res in shift]
    shift_table = format_table(
        ["wafers", "optimal s_d", "cost at optimum $/tx"],
        shift_rows, float_spec=".4g",
        title="fig4_shift: the optimum migrates with volume (Y=0.8)")

    plot = ascii_plot([
        Series.from_arrays("a: 5k wafers, Y=0.4", sweep_a.x, sweep_a.cost),
        Series.from_arrays("b: 50k wafers, Y=0.9", sweep_b.x, sweep_b.cost),
    ], logy=True)

    save_artifact("figure4", "\n\n".join([curves, optima, shift_table, plot]))

    # Reproduction contract.
    assert sweep_a.is_interior_minimum()
    assert sweep_b.is_interior_minimum()
    assert opt_a.sd_opt / opt_b.sd_opt > 1.5      # "changes substantially"
    assert opt_a.cost_opt > 3 * opt_b.cost_opt    # low volume is costlier
    sds = [res.sd_opt for _, res in shift]
    assert all(x > y for x, y in zip(sds, sds[1:]))  # monotone migration
