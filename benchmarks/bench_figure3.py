"""Experiment ``fig3`` — Figure 3: the constant-die-cost ratio.

Regenerates the paper's §2.2.3 computation verbatim: the ``s_d`` each
node needs to keep the cost-performance MPU die at its 1999 cost
(``C_ch = $34``, ``C_sq = 8 $/cm²``, ``Y = 0.8``), and the ratio of the
ITRS-implied ``s_d`` to it — the "cost contradiction" curve.
"""

import pytest

from repro.data import load_itrs_1999
from repro.report import Series, format_table
from repro.roadmap import PAPER_FIGURE3_ASSUMPTIONS, constant_cost_series


def regenerate_figure3():
    nodes = load_itrs_1999()
    series = constant_cost_series(nodes, PAPER_FIGURE3_ASSUMPTIONS)
    ratio = Series.from_arrays(
        "implied/const-cost", [p.node.year for p in series],
        [p.ratio for p in series], x_label="year", y_label="ratio")
    return series, ratio


def test_figure3(benchmark, save_artifact):
    series, ratio = benchmark(regenerate_figure3)

    rows = [(p.node.year, p.node.feature_nm, p.node.mpu_transistors_m,
             p.sd_implied, p.sd_constant_cost, p.ratio,
             "YES" if p.is_contradictory else "no") for p in series]
    table = format_table(
        ["year", "nm", "Mtx/chip", "ITRS s_d", "const-cost s_d", "ratio", "contradiction"],
        rows, float_spec=".4g",
        title=("Figure 3: s_d required for a constant $34 die "
               f"(A_max = {PAPER_FIGURE3_ASSUMPTIONS.affordable_die_area_cm2:.1f} cm^2)"))
    save_artifact("figure3", table)

    # Reproduction contract.
    ratios = [p.ratio for p in series]
    assert abs(ratios[0] - 1.0) < 0.15          # aligned at the anchor
    assert all(a < b for a, b in zip(ratios, ratios[1:]))  # monotone growth
    assert ratios[-1] > 1.5                     # ~2x by the horizon
    assert all(p.is_contradictory for p in series[1:])
    # The affordable area is exactly C*Y/C_sq at every node.
    assert PAPER_FIGURE3_ASSUMPTIONS.affordable_die_area_cm2 == pytest.approx(3.4)
