"""Experiment ``abl_utilization`` — the §2.5 ``Y → uY`` substitution.

Prices the same 10M-transistor function as an FPGA (pre-designed
fabric, low utilization, zero user NRE) and as an ASIC across volumes,
and locates the crossover. Then sweeps the fabric utilization to show
how much ``u`` an FPGA must deliver to stay competitive at a given
volume — the quantitative content of the paper's FPGA aside.
"""

import numpy as np
import pytest

from repro.cost import (
    DesignCostModel,
    MaskSetCostModel,
    UtilizedDevice,
    fpga_vs_asic_crossover,
)
from repro.report import format_table

N_TR = 1e7
FEATURE = 0.18
YIELD = 0.8
CM_SQ = 8.0


def regenerate_ablation():
    design = DesignCostModel()
    masks = MaskSetCostModel()
    mask_cost = masks.cost(FEATURE)

    crossovers = []
    for u in (0.1, 0.2, 0.3, 0.5):
        fpga = UtilizedDevice("FPGA", sd=700.0, utilization=u)
        nw = fpga_vs_asic_crossover(N_TR, FEATURE, YIELD, CM_SQ, fpga=fpga,
                                    asic_sd=350.0, design_model=design,
                                    mask_cost_usd=mask_cost)
        crossovers.append((u, nw))

    fpga = UtilizedDevice("FPGA", sd=700.0, utilization=0.25)
    asic = UtilizedDevice("ASIC", sd=350.0, utilization=1.0,
                          design_cost_usd=design.cost(N_TR, 350.0),
                          mask_cost_usd=mask_cost)
    volume_rows = []
    for nw in np.geomspace(100, 1e6, 9):
        cf = fpga.cost_per_used_transistor(N_TR, FEATURE, nw, YIELD, CM_SQ)
        ca = asic.cost_per_used_transistor(N_TR, FEATURE, nw, YIELD, CM_SQ)
        volume_rows.append((nw, cf, ca, cf / ca))
    return crossovers, volume_rows


def test_ablation_utilization(benchmark, save_artifact):
    crossovers, volume_rows = benchmark(regenerate_ablation)

    cross_table = format_table(
        ["fabric utilization u", "FPGA->ASIC crossover (wafers)"],
        [(u, f"{nw:,.0f}" if nw else "never") for u, nw in crossovers],
        title="Ablation: crossover volume vs utilization (Y -> uY)")
    volume_table = format_table(
        ["wafers", "FPGA $/used-tx", "ASIC $/used-tx", "FPGA/ASIC"],
        [(f"{nw:,.0f}", cf, ca, r) for nw, cf, ca, r in volume_rows],
        float_spec=".3e",
        title="Cost-per-used-transistor vs volume (u = 0.25)")
    save_artifact("ablation_utilization", cross_table + "\n\n" + volume_table)

    # Shape contract: every utilization level yields a finite crossover,
    # and better utilization keeps the FPGA viable LONGER (higher N_w).
    nws = [nw for _, nw in crossovers]
    assert all(nw is not None for nw in nws)
    assert all(a < b for a, b in zip(nws, nws[1:]))
    # At high volume the ASIC wins by roughly the u x density factor:
    # (sd_fpga/sd_asic)/u = (700/350)/0.25 = 8x.
    final_ratio = volume_rows[-1][3]
    assert final_ratio == pytest.approx(8.0, rel=0.25)
