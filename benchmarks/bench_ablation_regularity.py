"""Experiment ``abl_regularity`` — §3.2 end to end.

The paper's closing claim chains four effects: regular layout → fewer
unique patterns → cheaper/reusable characterization AND better
prediction → fewer design iterations → lower design cost. This bench
runs the whole chain on generated layouts:

1. pattern census + characterization cost per layout style;
2. design cost at the 0.07 µm node as a function of the measured
   regularity index (the census feeds the prediction-error model);
3. the combined development bill (characterization + eq.-(6) design)
   for the irregular vs regular flows.
"""

from repro.designflow import DesignFlowSimulator
from repro.layout import (
    CharacterizationCostModel,
    extract_patterns,
    random_logic_layout,
    regular_fabric,
    regularity_report,
)
from repro.report import format_table

NODE_UM = 0.07  # a nanometre-era node where prediction is hard
N_TR = 1e7
SD_TARGET = 150.0


def regenerate_ablation():
    char_model = CharacterizationCostModel()
    sim = DesignFlowSimulator()

    styles = [
        ("regular fabric", regular_fabric(16, 16, library_size=4, seed=0), 24),
        ("random logic", random_logic_layout(16, 16, seed=0), 24),
    ]
    rows = []
    for name, layout, window in styles:
        library = extract_patterns(layout.flatten(), window)
        report = regularity_report(library, char_model)
        regularity = report.regularity_index
        design_cost = sim.expected_cost_analytic(N_TR, SD_TARGET, NODE_UM,
                                                 regularity=regularity)
        iterations = sim.closure.expected_iterations(SD_TARGET, NODE_UM, regularity)
        rows.append((name, report.n_unique_patterns, regularity,
                     report.reuse_cost_usd, iterations, design_cost,
                     report.reuse_cost_usd + design_cost))
    return rows


def test_ablation_regularity(benchmark, save_artifact):
    rows = benchmark(regenerate_ablation)

    table = format_table(
        ["style", "unique pats", "regularity", "charact. $",
         "E[iters] @0.07um", "design $", "development $"],
        rows, float_spec=".4g",
        title="Ablation: the §3.2 chain — regularity -> patterns -> "
              "prediction -> iterations -> cost")
    save_artifact("ablation_regularity", table)

    regular, random_logic = rows
    # Pattern census: the fabric needs orders of magnitude fewer sims.
    assert regular[1] * 10 < random_logic[1]
    # Regularity indices at the two extremes.
    assert regular[2] > 0.9
    assert random_logic[2] < 0.3
    # Characterization: fabric reuse wins big.
    assert regular[3] * 5 < random_logic[3]
    # Design flow: regularity cuts the iteration count at this node.
    assert regular[4] < random_logic[4]
    # Total development bill: the §3.2 conclusion.
    assert regular[6] < random_logic[6]
