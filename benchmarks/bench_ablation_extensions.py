"""Experiment ``abl_test_masks`` — §2.5's omitted terms restored.

The paper stresses that eq. (4) is an optimistic *lower bound*: it
drops test cost, and its Figure-4 presentation folds masks away. This
bench prices the Figure-4(a) design point with the omitted terms
switched on one at a time and measures how much the lower bound
understates the total — and whether the optimum moves.
"""

from repro.cost import (
    MaskSetCostModel,
    TestCostModel,
    TotalCostModel,
)
from repro.optimize import optimal_sd
from repro.report import format_table

POINT = dict(n_transistors=1e7, feature_um=0.18, n_wafers=5_000,
             yield_fraction=0.4, cost_per_cm2=8.0)

CONFIGS = [
    ("eq. (4) bare (paper Fig. 4)", dict(include_masks=False, test_model=None)),
    ("+ mask set (eq. 5 full)", dict(include_masks=True, test_model=None)),
    ("+ test cost (§2.5)", dict(include_masks=False, test_model=TestCostModel())),
    ("+ masks + test", dict(include_masks=True, test_model=TestCostModel())),
]


def regenerate_ablation():
    results = []
    for name, kwargs in CONFIGS:
        model = TotalCostModel(mask_model=MaskSetCostModel(), **kwargs)
        opt = optimal_sd(model, **POINT)
        breakdown = model.breakdown(opt.sd_opt, **POINT)
        results.append((name, opt, breakdown))
    return results


def test_ablation_extensions(benchmark, save_artifact):
    results = benchmark(regenerate_ablation)

    base_cost = results[0][1].cost_opt
    rows = []
    for name, opt, b in results:
        rows.append((name, opt.sd_opt, opt.cost_opt, opt.cost_opt / base_cost,
                     b.masks / b.total, b.test / b.total))
    table = format_table(
        ["configuration", "opt s_d", "cost @opt $/tx", "vs bare", "mask share", "test share"],
        rows, float_spec=".4g",
        title="Ablation: restoring the terms eq. (4) omits (Fig. 4a point)")
    save_artifact("ablation_extensions", table)

    bare, masks, test, both = results
    # Every extension strictly raises the cost: the bare model is a
    # lower bound, exactly as §2.5 promises.
    assert masks[1].cost_opt > bare[1].cost_opt
    assert test[1].cost_opt > bare[1].cost_opt
    assert both[1].cost_opt > masks[1].cost_opt
    # But the corrections are second-order at this point (< 25%), so
    # Figure 4's shape conclusions survive.
    assert both[1].cost_opt / bare[1].cost_opt < 1.25
    # The optimum barely moves (within ~15%).
    assert abs(both[1].sd_opt / bare[1].sd_opt - 1) < 0.15
