"""Experiment ``table_a1`` — regenerate Table A1 with a consistency audit.

Rebuilds the paper's 49-row table from the dataset, recomputes every
``s_d`` via eq. (2), and reports the published-vs-recomputed agreement.
The benchmark times the full load-validate-recompute pipeline.
"""

from repro.data import DesignRegistry, Provenance
from repro.report import format_table


def regenerate_table_a1():
    registry = DesignRegistry.table_a1()
    rows = []
    worst_err = 0.0
    for r in registry:
        recomputed = r.sd_logic_recomputed()
        published = r.sd_logic
        err = None
        if recomputed is not None and published is not None:
            err = abs(recomputed - published) / published
            worst_err = max(worst_err, err)
        rows.append((
            r.index, r.device[:28], r.die_area_cm2, r.feature_um,
            r.transistors_total_m, r.sd_mem, r.best_sd_logic(),
            r.provenance.value,
        ))
    return rows, worst_err, registry


def test_table_a1(benchmark, save_artifact):
    rows, worst_err, registry = benchmark(regenerate_table_a1)

    table = format_table(
        ["#", "device", "die cm2", "um", "Mtx", "sd_mem", "sd_logic", "prov"],
        rows, float_spec=".4g", title="Table A1 (regenerated)")
    audit = (f"rows: {len(rows)}  "
             f"published rows: {sum(1 for r in registry if r.provenance is Provenance.PUBLISHED)}  "
             f"repaired rows: {sum(1 for r in registry if r.provenance is Provenance.REPAIRED)}  "
             f"worst published-vs-eq.(2) error: {worst_err:.1%}")
    save_artifact("table_a1", table + "\n" + audit)

    # Reproduction contract (DESIGN.md §7).
    assert len(rows) == 49
    assert worst_err < 0.15
    sd_logic = registry.sd_logic_values()
    assert 90 < min(sd_logic) < 130
    assert max(sd_logic) > 700
    sd_mem = registry.sd_mem_values()
    assert 30 < min(sd_mem) < 60
