"""Experiment ``val_yield`` — validating the analytic yield substrate.

Not a paper figure: a validation artifact. The eq.-(7) yield stack
rests on the classic analytic models; this bench checks them against
the direct Monte-Carlo defect experiment (throw defects, count killed
dice):

* uniform defect field → Poisson within MC error;
* clustered field → above Poisson (the negative-binomial story);
* area scaling → matches Poisson across die sizes.

If this bench fails, every eq.-(7) number in the reproduction is
suspect — which is exactly why it ships with the benches.
"""

from repro.report import format_table
from repro.wafer import WAFER_200MM
from repro.yieldmodels import NegativeBinomialYield, PoissonYield, simulated_yield

D0 = 0.5
AREAS = (0.5, 1.0, 2.0, 3.4)


def regenerate_validation():
    poisson = PoissonYield()
    rows = []
    for area in AREAS:
        mc = simulated_yield(WAFER_200MM, area, D0, n_wafers=30, seed=11)
        analytic = poisson(area, D0)
        rows.append((area, analytic, mc, mc - analytic))
    clustered = simulated_yield(WAFER_200MM, 1.5, 0.6, cluster_size=8.0,
                                cluster_radius_cm=0.2, n_wafers=30, seed=11)
    uniform = simulated_yield(WAFER_200MM, 1.5, 0.6, n_wafers=30, seed=11)
    return rows, uniform, clustered


def test_validation_yield(benchmark, save_artifact):
    rows, uniform, clustered = benchmark(regenerate_validation)

    table = format_table(
        ["die cm2", "Poisson Y", "Monte-Carlo Y", "error"],
        rows, float_spec=".4g",
        title=f"Validation: analytic vs simulated yield (D0={D0}/cm^2, uniform defects)")
    clustering = (f"clustered field (size 8, r=0.2cm): MC Y = {clustered:.3f} "
                  f"vs uniform {uniform:.3f} vs Poisson "
                  f"{PoissonYield()(1.5, 0.6):.3f} vs NB(0.7) "
                  f"{NegativeBinomialYield(0.7)(1.5, 0.6):.3f}")
    save_artifact("validation_yield", table + "\n\n" + clustering)

    # Uniform field matches Poisson within MC noise at every die size.
    for area, analytic, mc, _ in rows:
        assert abs(mc - analytic) < 0.04, f"area {area}"
    # Clustering strictly helps, and stays below the max-clustering bound.
    assert clustered > uniform + 0.03
    assert clustered < 0.999
