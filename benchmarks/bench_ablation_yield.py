"""Experiment ``abl_yieldmodel`` — does the yield statistic move Figure 4?

Eq. (4) freezes ``Y``; eq. (7) computes it. This ablation re-runs the
Figure-4 optimisation under the generalized model with each classic
yield statistic (Poisson / Murphy / NB(2) / Seeds) to check that the
paper's conclusion — an interior, volume-dependent optimum — is not an
artifact of the fixed-yield simplification or of one defect statistic.
"""

from repro.cost import GeneralizedCostModel
from repro.optimize import optimal_sd_generalized
from repro.report import format_table
from repro.yieldmodels import CompositeYield, yield_model

STATISTICS = ["poisson", "murphy", "negbinomial", "seeds"]


def regenerate_ablation():
    results = {}
    for name in STATISTICS:
        model = GeneralizedCostModel(
            yield_model=CompositeYield(statistic=yield_model(name)))
        lo = optimal_sd_generalized(model, 1e7, 0.18, 5_000)
        hi = optimal_sd_generalized(model, 1e7, 0.18, 500_000)
        y_lo = model.yield_at(1e7, lo.sd_opt, 0.18, 5_000)
        results[name] = (lo, hi, y_lo)
    return results


def test_ablation_yield_model(benchmark, save_artifact):
    results = benchmark(regenerate_ablation)

    rows = []
    for name in STATISTICS:
        lo, hi, y_lo = results[name]
        rows.append((name, lo.sd_opt, float(y_lo), lo.cost_opt,
                     hi.sd_opt, lo.sd_opt / hi.sd_opt))
    table = format_table(
        ["statistic", "opt s_d @5k", "Y @opt", "cost @opt $/tx",
         "opt s_d @500k", "shift x"],
        rows, float_spec=".4g",
        title="Ablation: Figure-4 optimum under each yield statistic (eq. 7)")
    save_artifact("ablation_yield", table)

    for name in STATISTICS:
        lo, hi, y_lo = results[name]
        # Interior optimum survives every statistic...
        assert 100 < lo.sd_opt < 4500
        # ...and so does the volume-dependence conclusion.
        assert lo.sd_opt > hi.sd_opt
    # The optimistic statistic (Seeds) tolerates denser/larger dice than
    # the pessimistic one (Poisson) at equal cost pressure, so its
    # optimum cost is never higher.
    assert results["seeds"][0].cost_opt <= results["poisson"][0].cost_opt
