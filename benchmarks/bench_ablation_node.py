"""Experiment ``abl_node`` — who can afford nanometre technology?

The paper's §1 question quantified: for each unit-volume tier, which
technology node minimises cost per good die once eq. (7)'s live terms
(node-scaled silicon, masks, §2.4-scaled design cost, density-coupled
yield) are all priced? The asserted shape: the optimal node stratifies
by volume.
"""

from repro.cost import DEFAULT_GENERALIZED_MODEL
from repro.optimize import evaluate_nodes, optimal_node
from repro.report import format_table

N_TR = 1e7
VOLUMES = (1e4, 1e6, 1e8)
LADDER = (0.35, 0.25, 0.18, 0.13, 0.07)


def regenerate_ablation():
    results = {}
    for volume in VOLUMES:
        results[volume] = evaluate_nodes(DEFAULT_GENERALIZED_MODEL, N_TR,
                                         volume, nodes_um=LADDER)
    return results


def test_ablation_node_choice(benchmark, save_artifact):
    results = benchmark(regenerate_ablation)

    blocks = []
    best_nodes = {}
    for volume, choices in results.items():
        rows = [(int(c.feature_um * 1000), c.sd_opt, c.silicon_per_unit,
                 c.development_per_unit, c.cost_per_unit) for c in choices]
        blocks.append(format_table(
            ["node nm", "s_d*", "silicon $/u", "dev $/u", "total $/u"],
            rows, float_spec=".4g",
            title=f"{volume:,.0f} units of a 10M-transistor design"))
        best = min(choices, key=lambda c: c.cost_per_unit)
        best_nodes[volume] = best.feature_um
        blocks.append(f"-> best node: {best.feature_um * 1000:.0f} nm")
    save_artifact("ablation_node", "\n\n".join(blocks))

    # Stratification: finer nodes as volume grows, and it actually moves.
    nodes = [best_nodes[v] for v in VOLUMES]
    assert all(a >= b for a, b in zip(nodes, nodes[1:]))
    assert nodes[0] > nodes[-1]
    # Low volume cannot afford the newest node; high volume must take it.
    assert best_nodes[VOLUMES[0]] >= 0.18
    assert best_nodes[VOLUMES[-1]] == min(LADDER)
    # Development dominates the low-volume tier's bill at fine nodes.
    fine_low = next(c for c in results[VOLUMES[0]] if c.feature_um == min(LADDER))
    assert fine_low.development_per_unit > fine_low.silicon_per_unit
