"""Eq. (4)/(5) total-cost model tests."""

import numpy as np
import pytest

from repro.cost import (
    PAPER_FIGURE4_MODEL,
    DesignCostModel,
    TestCostModel,
    TotalCostModel,
    transistor_cost,
)
from repro.errors import DomainError
from repro.wafer import WAFER_200MM, WAFER_300MM

POINT = dict(n_transistors=1e7, feature_um=0.18, n_wafers=5000,
             yield_fraction=0.4, cost_per_cm2=8.0)


class TestEquation5:
    def test_design_cost_per_cm2_formula(self):
        m = TotalCostModel(include_masks=False)
        cd = m.design_cost_per_cm2(1e7, 300, 0.18, 5000)
        expected = m.design_model.cost(1e7, 300) / (5000 * WAFER_200MM.area_cm2)
        assert cd == pytest.approx(expected)

    def test_masks_add_when_included(self):
        with_masks = TotalCostModel(include_masks=True)
        without = TotalCostModel(include_masks=False)
        assert with_masks.design_cost_per_cm2(1e7, 300, 0.18, 5000) > \
            without.design_cost_per_cm2(1e7, 300, 0.18, 5000)

    def test_amortises_inversely_with_volume(self):
        m = TotalCostModel(include_masks=False)
        assert m.design_cost_per_cm2(1e7, 300, 0.18, 10_000) == pytest.approx(
            m.design_cost_per_cm2(1e7, 300, 0.18, 5000) / 2)

    def test_bigger_wafer_amortises_better(self):
        m200 = TotalCostModel(include_masks=False, wafer=WAFER_200MM)
        m300 = TotalCostModel(include_masks=False, wafer=WAFER_300MM)
        assert m300.design_cost_per_cm2(1e7, 300, 0.18, 5000) < \
            m200.design_cost_per_cm2(1e7, 300, 0.18, 5000)


class TestEquation4:
    def test_degenerates_to_eq3_at_high_volume(self):
        # The paper: for large N_w, eqs (3) and (4) become equal.
        m = PAPER_FIGURE4_MODEL
        total = m.transistor_cost(300, 1e7, 0.18, 1e12, 0.8, 8.0)
        eq3 = transistor_cost(8.0, 0.18, 300, 0.8)
        assert total == pytest.approx(eq3, rel=1e-4)

    def test_always_above_eq3(self):
        m = PAPER_FIGURE4_MODEL
        total = m.transistor_cost(300, 1e7, 0.18, 5000, 0.8, 8.0)
        assert total > transistor_cost(8.0, 0.18, 300, 0.8)

    def test_u_curve_exists(self):
        # Figure 4's qualitative shape: interior minimum in s_d.
        m = PAPER_FIGURE4_MODEL
        sd = np.linspace(105, 1500, 500)
        c = m.transistor_cost(sd, **POINT)
        i = int(np.argmin(c))
        assert 0 < i < len(sd) - 1

    def test_utilization_substitution(self):
        # §2.5: Y -> uY. Half utilization == half yield.
        half_u = TotalCostModel(include_masks=False, utilization=0.5)
        full = PAPER_FIGURE4_MODEL
        assert half_u.transistor_cost(300, 1e7, 0.18, 5000, 0.8, 8.0) == pytest.approx(
            full.transistor_cost(300, 1e7, 0.18, 5000, 0.4, 8.0))

    def test_domain_validation(self):
        m = PAPER_FIGURE4_MODEL
        with pytest.raises(DomainError):
            m.transistor_cost(300, 1e7, 0.18, 5000, 1.5, 8.0)
        with pytest.raises(DomainError):
            m.transistor_cost(90, 1e7, 0.18, 5000, 0.8, 8.0)  # below sd0

    def test_utilization_validated(self):
        with pytest.raises(DomainError):
            TotalCostModel(utilization=0.0)


class TestBreakdown:
    def test_components_sum_to_total(self):
        m = PAPER_FIGURE4_MODEL
        b = m.breakdown(300, **POINT)
        total = m.transistor_cost(300, **POINT)
        assert b.total == pytest.approx(total, rel=1e-12)

    def test_mask_component_zero_when_excluded(self):
        b = PAPER_FIGURE4_MODEL.breakdown(300, **POINT)
        assert b.masks == 0.0

    def test_test_component_present_when_modelled(self):
        m = TotalCostModel(include_masks=False, test_model=TestCostModel())
        b = m.breakdown(300, **POINT)
        assert b.test > 0
        assert b.total == pytest.approx(m.transistor_cost(300, **POINT), rel=1e-12)

    def test_development_share_in_unit_interval(self):
        b = PAPER_FIGURE4_MODEL.breakdown(300, **POINT)
        assert 0 < b.development_share < 1

    def test_low_volume_design_dominated(self):
        # Figure 4(a): at 5000 wafers design cost dominates near the bound.
        b = PAPER_FIGURE4_MODEL.breakdown(150, **POINT)
        assert b.design > b.manufacturing

    def test_high_volume_manufacturing_dominated(self):
        hi = dict(POINT, n_wafers=500_000)
        b = PAPER_FIGURE4_MODEL.breakdown(300, **hi)
        assert b.manufacturing > b.design


class TestProjectCost:
    def test_components(self):
        m = TotalCostModel(include_masks=False)
        cost = m.project_cost(300, 1e7, 0.18, 5000, 8.0)
        silicon = 8.0 * WAFER_200MM.area_cm2 * 5000
        assert cost == pytest.approx(silicon + m.design_model.cost(1e7, 300))

    def test_custom_design_model_respected(self):
        cheap = TotalCostModel(design_model=DesignCostModel(a0=1.0), include_masks=False)
        expensive = TotalCostModel(design_model=DesignCostModel(a0=1e6), include_masks=False)
        assert cheap.project_cost(300, 1e7, 0.18, 100, 8.0) < \
            expensive.project_cost(300, 1e7, 0.18, 100, 8.0)
