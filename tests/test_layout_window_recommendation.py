"""Auto window-selection tests for the pattern census."""

import pytest

from repro.errors import LayoutError
from repro.layout import (
    Rect,
    extract_patterns,
    memory_array,
    random_logic_layout,
    recommended_window,
    regular_fabric,
)


class TestRecommendedWindow:
    def test_finds_fabric_pitch(self):
        fab = regular_fabric(10, 10, library_size=2, seed=0)
        # Fabric cell is 24 wide x 24 tall: the 24-lambda window makes
        # the layout read as exactly its library.
        assert recommended_window(fab.flatten()) == 24

    def test_finds_sram_pitch(self):
        mem = memory_array(8, 8)
        window = recommended_window(mem.flatten())
        # The 12-lambda cell pitch or a multiple of it.
        assert window % 12 == 0

    def test_recommended_window_maximises_regularity(self):
        fab = regular_fabric(8, 8, library_size=2, seed=1)
        rects = fab.flatten()
        best = recommended_window(rects)
        best_reg = extract_patterns(rects, best).regularity_index()
        for other in (4, 8, 16, 32):
            reg = extract_patterns(rects, other).regularity_index()
            assert best_reg >= reg - 1e-12

    def test_custom_candidates_respected(self):
        fab = regular_fabric(6, 6, library_size=1, seed=0)
        window = recommended_window(fab.flatten(), candidates=[7, 13])
        assert window in (7, 13)

    def test_irregular_layout_still_returns(self):
        rnd = random_logic_layout(6, 6, seed=3)
        window = recommended_window(rnd.flatten())
        assert window >= 4

    def test_tiny_layout(self):
        window = recommended_window([Rect("m1", 0, 0, 3, 3)])
        assert window >= 1

    def test_empty_rejected(self):
        with pytest.raises(LayoutError):
            recommended_window([])
