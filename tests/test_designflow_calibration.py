"""Eq.-(6) calibration tests — recovering the paper's constants."""

import numpy as np
import pytest

from repro.cost import DesignCostModel
from repro.designflow import DesignFlowSimulator, fit_design_cost_model
from repro.errors import CalibrationError


def synthetic_samples(model: DesignCostModel, noise: float = 0.0, seed: int = 0):
    rng = np.random.default_rng(seed)
    n, s, c = [], [], []
    for n_tr in (1e6, 3e6, 1e7, 3e7, 1e8):
        for sd in (110, 125, 150, 200, 300, 500):
            n.append(n_tr)
            s.append(sd)
            cost = model.cost(n_tr, sd)
            if noise:
                cost *= float(np.exp(rng.normal(0, noise)))
            c.append(cost)
    return n, s, c


class TestExactRecovery:
    def test_recovers_paper_constants_noiseless(self):
        truth = DesignCostModel()  # A0=1000, p1=1, p2=1.2, sd0=100
        n, s, c = synthetic_samples(truth)
        fit = fit_design_cost_model(n, s, c, sd0=100.0)
        assert fit.a0 == pytest.approx(1000.0, rel=1e-6)
        assert fit.p1 == pytest.approx(1.0, abs=1e-9)
        assert fit.p2 == pytest.approx(1.2, abs=1e-9)
        assert fit.r_squared == pytest.approx(1.0, abs=1e-12)

    def test_recovers_sd0_when_fitted(self):
        truth = DesignCostModel(sd0=100.0)
        n, s, c = synthetic_samples(truth)
        fit = fit_design_cost_model(n, s, c)
        assert fit.sd0 == pytest.approx(100.0, abs=1.0)
        assert fit.p2 == pytest.approx(1.2, abs=0.05)

    def test_recovers_nonstandard_constants(self):
        truth = DesignCostModel(a0=250.0, p1=0.8, p2=1.5, sd0=80.0)
        n, s, c = synthetic_samples(truth)
        fit = fit_design_cost_model(n, s, c, sd0=80.0)
        assert fit.a0 == pytest.approx(250.0, rel=1e-6)
        assert fit.p1 == pytest.approx(0.8, abs=1e-9)
        assert fit.p2 == pytest.approx(1.5, abs=1e-9)


class TestNoisyRecovery:
    def test_tolerates_lognormal_noise(self):
        truth = DesignCostModel()
        n, s, c = synthetic_samples(truth, noise=0.2, seed=42)
        fit = fit_design_cost_model(n, s, c, sd0=100.0)
        assert fit.p1 == pytest.approx(1.0, abs=0.15)
        assert fit.p2 == pytest.approx(1.2, abs=0.3)
        assert fit.r_squared > 0.9
        assert fit.residual_log_std == pytest.approx(0.2, rel=0.5)


class TestSimulatorCalibration:
    """The reproduction's substitution claim: the iteration mechanism
    generates data whose eq.-(6) fit has a genuine divergence (p2 > 0)
    and sensible size scaling."""

    def test_fit_from_simulated_projects(self):
        sim = DesignFlowSimulator()
        n, s, c = [], [], []
        for n_tr in (1e6, 1e7, 1e8):
            for sd in (105, 110, 120, 135, 160, 200):
                n.append(n_tr)
                s.append(sd)
                c.append(sim.expected_cost_analytic(n_tr, sd, 0.13))
        fit = fit_design_cost_model(n, s, c, sd0=100.0)
        assert fit.p2 > 0.3          # real divergence towards sd0
        assert 0.4 < fit.p1 < 1.0    # sub-linear size scaling (exponent 0.75 pass cost)
        assert fit.r_squared > 0.9

    def test_fitted_model_predicts_simulator(self):
        sim = DesignFlowSimulator()
        n, s, c = [], [], []
        for n_tr in (1e6, 1e7, 1e8):
            for sd in (105, 110, 120, 135, 160, 200):
                n.append(n_tr)
                s.append(sd)
                c.append(sim.expected_cost_analytic(n_tr, sd, 0.13))
        fit = fit_design_cost_model(n, s, c, sd0=100.0)
        # In-sample prediction within ~2x everywhere.
        for n_tr, sd, cost in zip(n, s, c):
            assert fit.model.cost(n_tr, sd) == pytest.approx(cost, rel=1.0)


class TestDegenerateData:
    def test_too_few_samples(self):
        with pytest.raises(CalibrationError, match="at least 4"):
            fit_design_cost_model([1e6], [150], [1e6])

    def test_single_n_tr(self):
        with pytest.raises(CalibrationError, match="distinct N_tr"):
            fit_design_cost_model([1e6] * 4, [110, 150, 200, 300], [4e6, 2e6, 1e6, 5e5])

    def test_single_sd(self):
        with pytest.raises(CalibrationError, match="distinct s_d"):
            fit_design_cost_model([1e6, 2e6, 4e6, 8e6], [150] * 4, [1e6, 2e6, 4e6, 8e6])

    def test_nonpositive_cost(self):
        with pytest.raises(CalibrationError, match="strictly positive"):
            fit_design_cost_model([1e6, 2e6, 4e6, 8e6], [110, 150, 200, 300],
                                  [1e6, -2e6, 4e6, 8e6])

    def test_sd0_above_observed_sd(self):
        with pytest.raises(CalibrationError, match="below the smallest"):
            fit_design_cost_model([1e6, 2e6, 4e6, 8e6], [110, 150, 200, 300],
                                  [4e6, 2e6, 1e6, 5e5], sd0=120.0)

    def test_mismatched_lengths(self):
        with pytest.raises(CalibrationError, match="equal length"):
            fit_design_cost_model([1e6, 2e6], [150], [1e6, 2e6])

    def test_no_divergence_raises(self):
        # Costs INCREASING in sd cannot be fit with positive p2.
        n = [1e6, 1e6, 1e6, 1e6, 2e6, 2e6, 2e6, 2e6]
        s = [110, 150, 200, 300] * 2
        c = [1e6, 2e6, 4e6, 8e6, 2e6, 4e6, 8e6, 16e6]
        with pytest.raises(CalibrationError, match="no divergence"):
            fit_design_cost_model(n, s, c, sd0=100.0)
