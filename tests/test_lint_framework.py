"""Framework-level tests for ``repro.lint``.

Covers the cross-cutting machinery the passes get for free: suppression
comments, severity overrides, select/ignore filters, config parsing
(both TOML paths), the baseline round-trip, the reporters, and the CLI
exit-code contract.
"""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.errors import LintError
from repro.lint import (
    Finding,
    LintConfig,
    PassManager,
    Severity,
    apply_baseline,
    load_baseline,
    load_config,
    load_project,
    render_json,
    render_text,
    run_lint,
    write_baseline,
)
from repro.lint.cli import main
from repro.lint.config import _parse_toml_fallback
from repro.lint.passes import UnitsPass


def make_tree(tmp_path, files):
    root = tmp_path / "pkg"
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return root


UNITS_ONLY = (UnitsPass(),)

VIOLATION = (
    '"""Doc."""\n\n'
    '__all__ = ["f"]\n\n\n'
    'def f(feature_cm):\n'
    '    """Doc."""\n'
    '    return feature_cm * 1.0e4\n'
)

WARNING_ONLY = (
    '"""Doc."""\n\n'
    '__all__ = ["f"]\n\n\n'
    'def f(feature_nm):\n'
    '    """Doc."""\n'
    '    return feature_nm / 1.0e3\n'
)


# -- suppression comments ------------------------------------------------

def test_suppression_same_line(tmp_path):
    root = make_tree(tmp_path, {
        "m.py": "def f(x):\n"
                "    return x * 1.0e4  # lint: disable=UNITS001\n"})
    result = run_lint(root, config=LintConfig(), passes=UNITS_ONLY)
    assert result.findings == ()
    assert result.suppressed == 1


def test_suppression_own_line_above(tmp_path):
    root = make_tree(tmp_path, {
        "m.py": "def f(x):\n"
                "    # lint: disable=UNITS001\n"
                "    return x * 1.0e4\n"})
    result = run_lint(root, config=LintConfig(), passes=UNITS_ONLY)
    assert result.findings == ()
    assert result.suppressed == 1


def test_suppression_file_wide_and_wrong_rule(tmp_path):
    root = make_tree(tmp_path, {
        "whole.py": "# lint: disable-file=UNITS001\n"
                    "A = 2.0 * 1.0e4\nB = 3.0 * 1.0e7\n",
        "wrong.py": "A = 2.0 * 1.0e4  # lint: disable=ERR001\n"})
    result = run_lint(root, config=LintConfig(), passes=UNITS_ONLY)
    assert [f.path.rsplit("/", 1)[-1] for f in result.findings] == ["wrong.py"]
    assert result.suppressed == 2


# -- severity overrides, select/ignore -----------------------------------

def test_severity_override_changes_reported_severity(tmp_path):
    root = make_tree(tmp_path, {"m.py": WARNING_ONLY})
    config = LintConfig(severity_overrides={"UNITS002": Severity.ERROR})
    result = run_lint(root, config=config, passes=UNITS_ONLY)
    assert result.findings[0].severity is Severity.ERROR


def test_select_and_ignore_filters(tmp_path):
    root = make_tree(tmp_path, {"m.py": VIOLATION})
    assert run_lint(root, config=LintConfig(ignore=("UNITS001",)),
                    passes=UNITS_ONLY).findings == ()
    only_err = run_lint(root, select=("ERR001",))
    assert only_err.findings == ()
    with pytest.raises(LintError, match="unknown rule"):
        run_lint(root, select=("NOPE999",))


def test_exclude_patterns_drop_by_path(tmp_path):
    root = make_tree(tmp_path, {"legacy/old.py": VIOLATION, "new.py": VIOLATION})
    config = LintConfig(excludes={"UNITS001": ("legacy/*",)})
    result = run_lint(root, config=config, passes=UNITS_ONLY)
    assert [f.path.rsplit("/", 1)[-1] for f in result.findings] == ["new.py"]
    assert result.excluded == 1


# -- findings ------------------------------------------------------------

def test_fingerprint_is_line_independent():
    a = Finding("UNITS001", Severity.ERROR, "a.py", 10, "msg", "fix")
    b = Finding("UNITS001", Severity.ERROR, "a.py", 99, "msg", "other fix")
    assert a.fingerprint == b.fingerprint
    assert a.to_dict() == Finding.from_dict(a.to_dict()).to_dict()


def test_severity_parse_rejects_unknown():
    assert Severity.parse("Error") is Severity.ERROR
    with pytest.raises(LintError):
        Severity.parse("fatal")


# -- baseline ------------------------------------------------------------

def test_baseline_round_trip_with_multiplicity(tmp_path):
    f1 = Finding("UNITS001", Severity.ERROR, "a.py", 5, "msg", "fix")
    f2 = Finding("UNITS001", Severity.ERROR, "a.py", 9, "msg", "fix")
    base_path = tmp_path / "baseline.json"
    write_baseline(base_path, [f1])
    baseline = load_baseline(base_path)
    fresh, accepted = apply_baseline([f1, f2], baseline)
    assert len(accepted) == 1 and len(fresh) == 1
    fresh2, accepted2 = apply_baseline([f1], baseline)
    assert fresh2 == [] and accepted2 == [f1]


def test_baseline_rejects_garbage(tmp_path):
    bad = tmp_path / "b.json"
    bad.write_text("not json")
    with pytest.raises(LintError):
        load_baseline(bad)
    bad.write_text('{"version": 99, "findings": []}')
    with pytest.raises(LintError, match="version"):
        load_baseline(bad)
    bad.write_text('{"no_findings": 1}')
    with pytest.raises(LintError, match="findings"):
        load_baseline(bad)


# -- config --------------------------------------------------------------

PYPROJECT = """
[project]
name = "x"

[tool.repro-lint]
ignore = ["UNITS002"]
entry-packages = ["optimize/"]

[tool.repro-lint.severity]
CONST001 = "warning"

[tool.repro-lint.exclude]
UNITS001 = ["legacy/*"]
"""


def test_load_config_reads_table(tmp_path):
    pyproject = tmp_path / "pyproject.toml"
    pyproject.write_text(PYPROJECT)
    config = load_config(pyproject)
    assert config.ignore == ("UNITS002",)
    assert config.entry_packages == ("optimize/",)
    assert config.severity_overrides == {"CONST001": Severity.WARNING}
    assert config.excludes == {"UNITS001": ("legacy/*",)}
    assert load_config(tmp_path / "absent.toml") == LintConfig()


def test_load_config_rejects_unknown_key(tmp_path):
    pyproject = tmp_path / "pyproject.toml"
    pyproject.write_text("[tool.repro-lint]\ntypo-key = 1\n")
    with pytest.raises(LintError, match="typo-key"):
        load_config(pyproject)


def test_toml_fallback_parses_lint_subset():
    data = _parse_toml_fallback(PYPROJECT)
    table = data["tool"]["repro-lint"]
    assert table["ignore"] == ["UNITS002"]
    assert table["severity"]["CONST001"] == "warning"
    assert table["exclude"]["UNITS001"] == ["legacy/*"]
    assert data["project"]["name"] == "x"


# -- reporters -----------------------------------------------------------

def test_reporters_text_and_json():
    finding = Finding("UNITS001", Severity.ERROR, "a.py", 5, "msg", "fix")
    text = render_text([finding], modules_scanned=3, suppressed=1)
    assert "a.py:5: error: UNITS001 msg" in text
    assert "1 error(s)" in text and "3 module(s)" in text
    doc = json.loads(render_json([finding], modules_scanned=3, baselined=2))
    assert doc["tool"] == "repro.lint"
    assert doc["summary"]["errors"] == 1
    assert doc["summary"]["baselined"] == 2
    assert doc["findings"][0]["rule"] == "UNITS001"
    clean = render_text([], modules_scanned=3)
    assert "clean" in clean


# -- CLI exit codes ------------------------------------------------------

def test_cli_exit_codes(tmp_path, capsys):
    dirty = make_tree(tmp_path, {"m.py": VIOLATION})
    assert main(["--root", str(dirty), "--no-baseline"]) == 1
    capsys.readouterr()
    clean = make_tree(tmp_path / "c", {"m.py": '"""Doc."""\n\n__all__ = []\n'})
    assert main(["--root", str(clean), "--no-baseline"]) == 0
    capsys.readouterr()
    assert main(["--root", str(tmp_path / "nope"), "--no-baseline"]) == 2
    assert "error:" in capsys.readouterr().err
    assert main(["--root", str(dirty), "--select", "NOPE1", "--no-baseline"]) == 2
    capsys.readouterr()


def test_cli_strict_promotes_warnings(tmp_path, capsys):
    root = make_tree(tmp_path, {"m.py": WARNING_ONLY})
    assert main(["--root", str(root), "--no-baseline"]) == 0
    capsys.readouterr()
    assert main(["--root", str(root), "--no-baseline", "--strict"]) == 1
    capsys.readouterr()


def test_cli_json_format(tmp_path, capsys):
    root = make_tree(tmp_path, {"m.py": VIOLATION})
    assert main(["--root", str(root), "--format", "json", "--no-baseline"]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["summary"]["errors"] == 1
    assert doc["findings"][0]["rule"] == "UNITS001"


def test_cli_write_baseline_then_clean(tmp_path, capsys):
    root = make_tree(tmp_path, {"m.py": VIOLATION})
    base = tmp_path / "baseline.json"
    assert main(["--root", str(root), "--write-baseline",
                 "--baseline", str(base)]) == 0
    capsys.readouterr()
    assert main(["--root", str(root), "--baseline", str(base)]) == 0
    out = capsys.readouterr().out
    assert "1 baselined" in out


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in ("UNITS001", "ERR001", "POL001", "CONST001", "API001",
                 "OBS001", "PURE001", "CONC001"):
        assert rule in out


# -- suppression × baseline edge cases -----------------------------------

def test_suppressed_finding_also_in_baseline_not_double_counted(tmp_path,
                                                                capsys):
    # The suppression comment removes the finding before the baseline is
    # consulted, so the baseline entry just sits stale — the report must
    # show 1 suppressed and 0 baselined.
    suppressed_src = VIOLATION.replace(
        "return feature_cm * 1.0e4",
        "return feature_cm * 1.0e4  # lint: disable=UNITS001")
    root = make_tree(tmp_path, {"m.py": suppressed_src})
    base = tmp_path / "baseline.json"
    write_baseline(base, [Finding("UNITS001", Severity.ERROR, "m.py", 8,
                                  "unit-conversion literal 1e4 inline",
                                  "use repro.units")])
    assert main(["--root", str(root), "--baseline", str(base)]) == 0
    out = capsys.readouterr().out
    assert "1 suppressed" in out
    assert "baselined" not in out


def test_stale_baseline_entry_is_ignored(tmp_path, capsys):
    # A baseline entry whose finding was fixed must not fail the run or
    # resurrect anything: it is simply never matched.
    root = make_tree(tmp_path, {"m.py": '"""Doc."""\n\n__all__ = []\n'})
    base = tmp_path / "baseline.json"
    write_baseline(base, [Finding("UNITS001", Severity.ERROR, "m.py", 8,
                                  "long gone", "fix")])
    assert main(["--root", str(root), "--baseline", str(base)]) == 0
    out = capsys.readouterr().out
    assert "clean" in out
    assert "baselined" not in out


def test_unknown_rule_in_disable_comment_is_inert(tmp_path):
    # Disabling a rule id that does not exist neither crashes nor
    # suppresses the real finding on that line.
    src = VIOLATION.replace(
        "return feature_cm * 1.0e4",
        "return feature_cm * 1.0e4  # lint: disable=NOPE999")
    root = make_tree(tmp_path, {"m.py": src})
    result = run_lint(root, config=LintConfig(), passes=UNITS_ONLY)
    assert [f.rule for f in result.findings] == ["UNITS001"]
    assert result.suppressed == 0
