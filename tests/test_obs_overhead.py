"""Guard: disabled instrumentation must cost (almost) nothing.

Compares a traced entry point against its unwrapped original
(``__wrapped__``) with tracing globally off. The decorator's disabled
path is a single module-attribute load plus one branch, so the traced
call should be within a few percent of the bare call.

Shared CI boxes drift, so bare and traced repeats are interleaved (drift
hits both series equally) and min-of-repeats is used as the noise-floor
estimate for each. The test skips itself when the bare series cannot
even reproduce its own baseline between its first and second half.
"""

import timeit

import pytest

from repro import obs
from repro.cost import PAPER_FIGURE4_MODEL
from repro.optimize import sd_sweep

#: Maximum tolerated relative overhead of the disabled-tracing path.
MAX_OVERHEAD = 0.05
#: Baseline jitter above which the measurement is declared meaningless.
MAX_NOISE = 0.10
#: Interleaved (bare, traced) measurement pairs / calls per measurement.
REPEATS = 10
CALLS = 30


@pytest.fixture(autouse=True)
def tracing_off():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


def test_disabled_tracing_overhead_under_five_percent():
    bare = sd_sweep.__wrapped__

    def run_traced():
        sd_sweep(PAPER_FIGURE4_MODEL, 1e7, 0.18, 5000.0, 0.4, 8.0)

    def run_bare():
        bare(PAPER_FIGURE4_MODEL, 1e7, 0.18, 5000.0, 0.4, 8.0)

    # Warm caches before measuring anything.
    run_traced()
    run_bare()

    bare_times: list[float] = []
    traced_times: list[float] = []
    for _ in range(REPEATS):
        bare_times.append(timeit.timeit(run_bare, number=CALLS))
        traced_times.append(timeit.timeit(run_traced, number=CALLS))

    half = REPEATS // 2
    noise = (abs(min(bare_times[:half]) - min(bare_times[half:]))
             / min(bare_times))
    if noise > MAX_NOISE:
        pytest.skip(f"timing too noisy to judge overhead ({noise:.1%} jitter)")

    overhead = min(traced_times) / min(bare_times) - 1.0
    assert overhead < MAX_OVERHEAD, (
        f"disabled tracing costs {overhead:.1%} "
        f"(traced {min(traced_times):.4f}s vs bare {min(bare_times):.4f}s)")


def test_disabled_observe_duration_is_guard_only():
    """``observe_duration`` while disabled must be one global check.

    Same interleaved min-of-repeats protocol as above, compared against
    a same-shape no-op call; the generous 3x bound only trips if the
    guard pattern breaks (e.g. the sketch is created before the check).
    """

    def noop(name, seconds):
        return None

    def run_observed():
        for _ in range(500):
            obs.observe_duration("overhead.probe", 1e-3)

    def run_noop():
        for _ in range(500):
            noop("overhead.probe", 1e-3)

    run_observed()
    run_noop()

    noop_times: list[float] = []
    observed_times: list[float] = []
    for _ in range(REPEATS):
        noop_times.append(timeit.timeit(run_noop, number=5))
        observed_times.append(timeit.timeit(run_observed, number=5))

    half = REPEATS // 2
    noise = (abs(min(noop_times[:half]) - min(noop_times[half:]))
             / min(noop_times))
    if noise > 0.5:
        pytest.skip(f"timing too noisy to judge overhead ({noise:.1%} jitter)")

    ratio = min(observed_times) / min(noop_times)
    assert ratio < 3.0, (
        f"disabled observe_duration costs {ratio:.2f}x a no-op call")
    # And nothing must have been recorded while disabled.
    assert obs.get_registry().is_empty()
