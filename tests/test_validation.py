"""Domain-validation helper tests."""

import numpy as np
import pytest

from repro import validation as v
from repro.errors import DomainError


class TestCheckPositive:
    def test_accepts_positive(self):
        assert v.check_positive(3, "x") == 3.0

    def test_returns_float(self):
        assert isinstance(v.check_positive(3, "x"), float)

    def test_rejects_zero(self):
        with pytest.raises(DomainError, match="x must be > 0"):
            v.check_positive(0, "x")

    def test_rejects_negative(self):
        with pytest.raises(DomainError):
            v.check_positive(-1.5, "x")

    def test_rejects_nan(self):
        with pytest.raises(DomainError, match="finite"):
            v.check_positive(float("nan"), "x")

    def test_rejects_inf(self):
        with pytest.raises(DomainError):
            v.check_positive(float("inf"), "x")

    def test_rejects_string(self):
        with pytest.raises(DomainError, match="real number"):
            v.check_positive("abc", "x")

    def test_array_all_positive(self):
        out = v.check_positive(np.array([1.0, 2.0]), "x")
        np.testing.assert_array_equal(out, [1.0, 2.0])

    def test_array_with_zero_rejected(self):
        with pytest.raises(DomainError):
            v.check_positive(np.array([1.0, 0.0]), "x")

    def test_array_with_nan_rejected(self):
        with pytest.raises(DomainError):
            v.check_positive(np.array([1.0, np.nan]), "x")

    def test_error_names_the_argument(self):
        with pytest.raises(DomainError, match="yield_fraction"):
            v.check_positive(-1, "yield_fraction")


class TestCheckNonnegative:
    def test_accepts_zero(self):
        assert v.check_nonnegative(0, "x") == 0.0

    def test_rejects_negative(self):
        with pytest.raises(DomainError, match=">= 0"):
            v.check_nonnegative(-0.001, "x")


class TestCheckFraction:
    def test_accepts_one(self):
        assert v.check_fraction(1.0, "y") == 1.0

    def test_accepts_interior(self):
        assert v.check_fraction(0.4, "y") == 0.4

    def test_rejects_zero(self):
        with pytest.raises(DomainError, match=r"\(0, 1\]"):
            v.check_fraction(0.0, "y")

    def test_rejects_above_one(self):
        with pytest.raises(DomainError):
            v.check_fraction(1.0001, "y")

    def test_array(self):
        out = v.check_fraction(np.array([0.4, 0.9]), "y")
        np.testing.assert_array_equal(out, [0.4, 0.9])

    def test_array_rejects_bad_element(self):
        with pytest.raises(DomainError):
            v.check_fraction(np.array([0.4, 1.2]), "y")


class TestCheckOpenFraction:
    def test_accepts_zero(self):
        assert v.check_open_fraction(0.0, "x") == 0.0

    def test_rejects_one(self):
        with pytest.raises(DomainError, match=r"\[0, 1\)"):
            v.check_open_fraction(1.0, "x")


class TestCheckInRange:
    def test_inclusive_bounds(self):
        assert v.check_in_range(0.0, "x", 0.0, 1.0) == 0.0
        assert v.check_in_range(1.0, "x", 0.0, 1.0) == 1.0

    def test_exclusive_bounds_reject_edges(self):
        with pytest.raises(DomainError):
            v.check_in_range(0.0, "x", 0.0, 1.0, inclusive=False)
        with pytest.raises(DomainError):
            v.check_in_range(1.0, "x", 0.0, 1.0, inclusive=False)

    def test_outside_rejected(self):
        with pytest.raises(DomainError, match=r"\[0.*2"):
            v.check_in_range(3.0, "x", 0.0, 2.0)


class TestCheckPositiveInt:
    def test_accepts_int(self):
        assert v.check_positive_int(5, "n") == 5

    def test_accepts_integral_float(self):
        assert v.check_positive_int(5.0, "n") == 5

    def test_rejects_fractional(self):
        with pytest.raises(DomainError):
            v.check_positive_int(5.5, "n")

    def test_rejects_zero(self):
        with pytest.raises(DomainError):
            v.check_positive_int(0, "n")

    def test_rejects_negative(self):
        with pytest.raises(DomainError):
            v.check_positive_int(-3, "n")

    def test_rejects_bool(self):
        with pytest.raises(DomainError, match="bool"):
            v.check_positive_int(True, "n")

    def test_rejects_string(self):
        with pytest.raises(DomainError):
            v.check_positive_int("7", "n")


class TestCheckFinite:
    def test_passes_through(self):
        assert v.check_finite(-3.5, "x") == -3.5

    def test_rejects_nan_array(self):
        with pytest.raises(DomainError):
            v.check_finite(np.array([np.inf]), "x")
