"""Fab-economics model tests (the 'high-cost era' numbers)."""

import pytest

from repro.economics import FabModel, moores_second_law_capex
from repro.errors import DomainError
from repro.wafer import DEFAULT_WAFER_COST_MODEL, WAFER_300MM


class TestMooresSecondLaw:
    def test_anchor(self):
        assert moores_second_law_capex(0.18) == pytest.approx(1.5e9)

    def test_growth_per_node(self):
        # One x0.7 shrink -> x1.5 capex.
        assert moores_second_law_capex(0.18 * 0.7) == pytest.approx(1.5e9 * 1.5, rel=1e-9)

    def test_nanometer_horizon_many_billions(self):
        # The paper's premise: 35 nm fabs cost "many billions".
        capex = moores_second_law_capex(0.035)
        assert capex > 8e9

    def test_older_node_cheaper(self):
        assert moores_second_law_capex(0.5) < 1.5e9

    def test_invalid_shrink(self):
        with pytest.raises(ValueError):
            moores_second_law_capex(0.18, shrink_per_node=1.2)


class TestFabModel:
    def test_default_consistent_with_paper_anchor(self):
        # A $1.5B 200mm fab at 30k wspm should land near the paper's
        # 8 $/cm^2 (within ~2x — both are era-typical figures).
        fab = FabModel()
        assert 3.0 < fab.cost_per_cm2() < 16.0

    def test_cost_decomposition(self):
        fab = FabModel(capex_usd=1e9, depreciation_years=5.0,
                       wafer_starts_per_month=20_000, utilization=1.0,
                       operating_cost_fraction=1.0)
        # dep = 200M/yr, op = 200M/yr, wafers = 240k/yr -> $1667/wafer.
        assert fab.cost_per_wafer() == pytest.approx(400e6 / 240_000)

    def test_at_node_uses_moores_law(self):
        fab = FabModel.at_node(0.07)
        assert fab.capex_usd == pytest.approx(moores_second_law_capex(0.07))

    def test_nanometer_fab_costlier_silicon(self):
        # Same throughput, bigger capex -> costlier cm^2: the mechanism
        # behind WaferCostModel.feature_factor.
        old = FabModel.at_node(0.25)
        new = FabModel.at_node(0.07)
        assert new.cost_per_cm2() > 2 * old.cost_per_cm2()

    def test_trend_direction_matches_wafer_cost_model(self):
        fab_ratio = FabModel.at_node(0.09).cost_per_cm2() / FabModel.at_node(0.18).cost_per_cm2()
        model_ratio = (DEFAULT_WAFER_COST_MODEL.cost_per_cm2(0.09)
                       / DEFAULT_WAFER_COST_MODEL.cost_per_cm2(0.18))
        # Both grow, same order of magnitude.
        assert fab_ratio > 1 and model_ratio > 1
        assert 0.3 < fab_ratio / model_ratio < 3.0

    def test_bigger_wafer_cheaper_per_cm2(self):
        small = FabModel()
        big = FabModel(wafer=WAFER_300MM)
        assert big.cost_per_cm2() < small.cost_per_cm2()

    def test_utilization_raises_unit_cost(self):
        busy = FabModel(utilization=0.95)
        idle = FabModel(utilization=0.5)
        assert idle.cost_per_wafer() > busy.cost_per_wafer()

    def test_breakeven_price_margin(self):
        fab = FabModel()
        assert fab.breakeven_wafer_price(0.5) == pytest.approx(2 * fab.cost_per_wafer())
        with pytest.raises(ValueError):
            fab.breakeven_wafer_price(1.0)

    def test_idle_cost(self):
        fab = FabModel(utilization=0.8)
        assert fab.idle_cost_per_year(0.8) == 0.0
        assert fab.idle_cost_per_year(0.4) == pytest.approx(
            0.5 * fab.annual_depreciation_usd())

    def test_validation(self):
        with pytest.raises(DomainError):
            FabModel(capex_usd=-1)
        with pytest.raises(DomainError):
            FabModel(utilization=1.5)
