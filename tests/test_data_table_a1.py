"""Table A1 dataset integrity tests — the Figure 1 input."""

import pytest

from repro.data import DeviceCategory, Provenance, load_table_a1
from repro.data.table_a1 import TABLE_A1


class TestShape:
    def test_has_49_rows(self):
        assert len(TABLE_A1) == 49

    def test_indices_are_1_to_49_in_order(self):
        assert [r.index for r in TABLE_A1] == list(range(1, 50))

    def test_load_returns_fresh_list(self):
        a = load_table_a1()
        b = load_table_a1()
        assert a is not b
        assert a == b


class TestConsistency:
    def test_every_row_validates(self):
        for row in load_table_a1(validate=False):
            row.validate()  # raises on inconsistency

    def test_split_rows_have_complete_splits(self):
        for row in TABLE_A1:
            if row.has_split():
                assert row.area_mem_cm2 is not None, row.device
                assert row.area_logic_cm2 is not None, row.device
                assert row.sd_mem is not None, row.device

    def test_every_row_has_usable_logic_sd(self):
        for row in TABLE_A1:
            assert row.best_sd_logic() is not None, row.device

    def test_repaired_rows_carry_notes(self):
        for row in TABLE_A1:
            if row.provenance is Provenance.REPAIRED:
                assert row.note, f"repaired row {row.index} must document the repair"


class TestPaperRanges:
    """The distributional claims of §2.2.1-2.2.2."""

    def test_logic_sd_range_spans_paper_claim(self):
        values = [r.best_sd_logic() for r in TABLE_A1]
        assert min(values) >= 90   # "best achievable ... close to 100"
        assert min(values) <= 130
        assert max(values) >= 700  # ASICs "can reach values in the range of 1000"

    def test_memory_sd_below_logic_sd_in_every_split_row(self):
        for row in TABLE_A1:
            if row.has_split() and row.sd_mem is not None and row.sd_logic is not None:
                assert row.sd_mem < row.sd_logic, row.device

    def test_memory_sd_range(self):
        values = [r.sd_mem for r in TABLE_A1 if r.sd_mem is not None]
        assert 30 <= min(values) <= 60   # paper: "smallest ... in range of 30"
        assert max(values) < 200

    def test_feature_size_span(self):
        features = [r.feature_um for r in TABLE_A1]
        assert min(features) <= 0.15
        assert max(features) >= 1.0


class TestVendorCoverage:
    def test_intel_and_amd_present(self):
        vendors = {r.vendor for r in TABLE_A1}
        assert "Intel" in vendors
        assert "AMD" in vendors

    def test_k7_sd_well_above_300(self):
        # The paper's specific §2.2.2 claim about the K7.
        k7 = next(r for r in TABLE_A1 if "K7" in r.device)
        assert k7.best_sd_logic() > 300

    def test_amd_pre_k7_denser_than_contemporary_intel(self):
        # AMD "introduced products of higher design density than its
        # immediate competitor" before the K7.
        k6_2 = next(r for r in TABLE_A1 if "K6-2" in r.device)
        pentium_iii = next(r for r in TABLE_A1 if "Pentium III" in r.device)
        assert k6_2.feature_um == pentium_iii.feature_um  # same node
        assert k6_2.best_sd_logic() < pentium_iii.best_sd_logic()

    def test_categories_beyond_microprocessors(self):
        cats = {r.category for r in TABLE_A1}
        assert DeviceCategory.DSP in cats
        assert DeviceCategory.ASIC in cats
        assert DeviceCategory.MULTIMEDIA in cats


class TestExactlyVerifiedRows:
    """Rows whose printed s_d verifies eq. (2) to ~4 digits fix the
    transcription; regressions here mean the dataset was corrupted."""

    @pytest.mark.parametrize(
        "device,sd_mem,sd_logic",
        [
            ("PA-RISC", 40.0, 158.6),
            ("MIPS64 (0.18)", 89.03, 293.2),
            ("MAJC-5200", 89.35, 583.9),
            ("Alpha 21364", 61.88, 264.5),
        ],
    )
    def test_split_row_values(self, device, sd_mem, sd_logic):
        row = next(r for r in TABLE_A1 if r.device.startswith(device.split(" (")[0])
                   and r.sd_mem == sd_mem)
        assert row.sd_logic == sd_logic
        assert row.sd_mem_recomputed() == pytest.approx(sd_mem, rel=0.05)
        assert row.sd_logic_recomputed() == pytest.approx(sd_logic, rel=0.05)

    @pytest.mark.parametrize(
        "device,sd_logic",
        [
            ("ATM switch access LSI", 765.3),
            ("Video game CPU (Emotion Engine)", 699.5),
            ("MPEG-2 codec", 544.5),
            ("ASIC (telecom)", 480.0),
            ("Pentium III", 207.1),
            ("PowerPC 601", 171.4),
        ],
    )
    def test_logic_only_row_values(self, device, sd_logic):
        row = next(r for r in TABLE_A1 if r.device == device)
        assert row.sd_logic == sd_logic
        assert row.sd_overall() == pytest.approx(sd_logic, rel=0.05)
