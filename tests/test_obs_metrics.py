"""Metrics registry tests: counter/gauge/histogram semantics and gating."""

import math

import pytest

from repro import obs
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


@pytest.fixture(autouse=True)
def clean_obs():
    """Isolate each test from global observability state."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


class TestPrimitives:
    def test_counter_accumulates(self):
        c = Counter("c")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)

    def test_gauge_keeps_latest(self):
        g = Gauge("g")
        g.set(1.0)
        g.set(-4.0)
        assert g.value == -4.0

    def test_histogram_aggregates(self):
        h = Histogram("h")
        for v in (1.0, 2.0, 6.0):
            h.observe(v)
        assert h.count == 3
        assert h.total == 9.0
        assert (h.min, h.max) == (1.0, 6.0)
        assert h.mean == 3.0

    def test_empty_histogram_mean_is_nan(self):
        assert math.isnan(Histogram("h").mean)


class TestRegistry:
    def test_get_or_create_is_stable(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.gauge("y") is reg.gauge("y")
        assert reg.histogram("z") is reg.histogram("z")

    def test_rows_cover_all_kinds(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(5)
        reg.gauge("g").set(2.0)
        reg.histogram("h").observe(4.0)
        rows = reg.rows()
        kinds = {kind for _, kind, _, _ in rows}
        assert kinds == {"counter", "gauge", "histogram"}
        by_name = {name: (kind, value, count) for name, kind, value, count in rows}
        assert by_name["c"] == ("counter", 5, 5)
        assert by_name["h"][1] == 4.0  # histogram reports mean

    def test_reset_and_is_empty(self):
        reg = MetricsRegistry()
        assert reg.is_empty()
        reg.counter("c").inc()
        assert not reg.is_empty()
        reg.reset()
        assert reg.is_empty()


class TestSketchRegistry:
    def test_sketch_get_or_create_is_stable(self):
        reg = MetricsRegistry()
        assert reg.sketch("s") is reg.sketch("s")
        assert reg.sketch("s").name == "s"

    def test_reset_and_is_empty_cover_sketches(self):
        reg = MetricsRegistry()
        assert reg.is_empty()
        reg.sketch("s").observe(0.001)
        assert not reg.is_empty()
        reg.reset()
        assert reg.is_empty()

    def test_sketch_rows_sorted_with_percentiles(self):
        reg = MetricsRegistry()
        for ms in (1, 2, 3):
            reg.sketch("b.span").observe(ms / 1e3)
        reg.sketch("a.span").observe(0.010)
        rows = reg.sketch_rows()
        assert [row[0] for row in rows] == ["a.span", "b.span"]
        name, count, p50, p90, p99, mx = rows[1]
        assert count == 3
        assert p50 == pytest.approx(0.002, rel=0.02)
        assert mx == pytest.approx(0.003)

    def test_observe_duration_gated(self):
        obs.observe_duration("never", 0.5)
        assert obs.get_registry().is_empty()
        with obs.enabled():
            obs.observe_duration("hot", 0.5)
        assert obs.get_registry().sketch("hot").count == 1

    def test_spans_feed_duration_sketches(self):
        with obs.enabled():
            with obs.span("outer"):
                with obs.span("inner"):
                    pass
        reg = obs.get_registry()
        assert reg.sketch("outer").count == 1
        assert reg.sketch("inner").count == 1
        assert reg.sketch("inner").max <= reg.sketch("outer").max

    def test_disabled_spans_feed_nothing(self):
        with obs.span("ghost"):
            pass
        assert obs.get_registry().is_empty()


class TestGatedHelpers:
    def test_helpers_noop_while_disabled(self):
        obs.inc("never", 3)
        obs.set_gauge("never.g", 1.0)
        obs.observe("never.h", 1.0)
        assert obs.get_registry().is_empty()

    def test_helpers_record_while_enabled(self):
        with obs.enabled():
            obs.inc("calls", 2)
            obs.set_gauge("level", 7.0)
            obs.observe("size", 10.0)
        reg = obs.get_registry()
        assert reg.counter("calls").value == 2
        assert reg.gauge("level").value == 7.0
        assert reg.histogram("size").count == 1


class TestInstrumentedPaths:
    def test_model_evaluations_counted(self):
        with obs.enabled():
            obs.get_registry().reset()
            from repro.cost import transistor_cost
            transistor_cost(8.0, 0.18, 300, 0.8)
            transistor_cost(8.0, 0.18, 300, 0.8)
        counter = obs.get_registry().counter(
            "cost.manufacturing.transistor_cost.calls")
        assert counter.value == 2

    def test_sweep_grid_sizes_observed(self):
        from repro.cost import PAPER_FIGURE4_MODEL
        from repro.optimize import sd_sweep
        with obs.enabled():
            sd_sweep(PAPER_FIGURE4_MODEL, 1e7, 0.18, 5000, 0.4, 8.0)
        hist = obs.get_registry().histogram("optimize_sweep_grid_points")
        assert hist.count == 1
        assert hist.min == 400  # the default sd_grid size

    def test_table_a1_cache_counters(self):
        from repro.data import DesignRegistry
        with obs.enabled():
            DesignRegistry.table_a1()
            DesignRegistry.table_a1()
        reg = obs.get_registry()
        hits = reg.counter("data_table_a1_cache_hits_total").value
        misses = reg.counter("data_table_a1_cache_misses_total").value
        assert hits + misses == 2
        assert hits >= 1  # second call is always served from the cache

    def test_format_metrics_table(self):
        with obs.enabled():
            obs.inc("a.calls")
        text = obs.format_metrics_table()
        assert "a.calls" in text
        assert "counter" in text

    def test_format_metrics_table_empty(self):
        assert obs.format_metrics_table() == "(no metrics recorded)"
