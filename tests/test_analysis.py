"""Regression and statistics helper tests."""

import numpy as np
import pytest

from repro.analysis import (
    bootstrap_ci,
    geometric_mean,
    linear_fit,
    loglog_fit,
    semilog_fit,
    spearman_rho,
    summarize,
)
from repro.errors import DomainError


class TestLinearFit:
    def test_exact_line(self):
        x = np.arange(10.0)
        fit = linear_fit(x, 3.0 + 2.0 * x)
        assert fit.slope == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(3.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_predict(self):
        fit = linear_fit([0, 1, 2], [1, 3, 5])
        assert fit.predict(10) == pytest.approx(21.0)

    def test_stderr_shrinks_with_n(self):
        rng = np.random.default_rng(0)
        x_small = np.arange(10.0)
        x_big = np.arange(1000.0) / 100
        f_small = linear_fit(x_small, x_small + rng.normal(0, 1, 10))
        f_big = linear_fit(x_big, x_big + rng.normal(0, 1, 1000))
        assert f_big.stderr_slope < f_small.stderr_slope

    def test_confidence_interval_brackets_slope(self):
        rng = np.random.default_rng(1)
        x = np.linspace(0, 10, 200)
        fit = linear_fit(x, 2 * x + rng.normal(0, 0.5, 200))
        lo, hi = fit.slope_confidence_interval()
        assert lo < 2.0 < hi

    def test_nan_points_dropped(self):
        fit = linear_fit([0, 1, 2, np.nan], [1, 3, 5, 100])
        assert fit.n == 3
        assert fit.slope == pytest.approx(2.0)

    def test_degenerate_x_raises(self):
        with pytest.raises(DomainError, match="identical"):
            linear_fit([1, 1, 1], [1, 2, 3])

    def test_too_few_points_raises(self):
        with pytest.raises(DomainError):
            linear_fit([1], [1])

    def test_mismatched_lengths(self):
        with pytest.raises(DomainError):
            linear_fit([1, 2], [1])


class TestLogLogFit:
    def test_exact_power_law(self):
        x = np.geomspace(0.1, 10, 20)
        fit = loglog_fit(x, 5.0 * x**-1.7)
        assert fit.slope == pytest.approx(-1.7)
        assert fit.amplitude == pytest.approx(5.0)

    def test_predict_in_original_space(self):
        x = np.geomspace(1, 100, 10)
        fit = loglog_fit(x, 2.0 * x**0.5)
        assert fit.predict(25.0) == pytest.approx(10.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(DomainError):
            loglog_fit([1.0, -2.0], [1.0, 2.0])


class TestSemilogFit:
    def test_exact_exponential(self):
        x = np.arange(1990, 2010, dtype=float)
        fit = semilog_fit(x, 3.0 * np.exp(0.2 * (x - 1990)))
        assert fit.slope == pytest.approx(0.2)

    def test_predict(self):
        x = np.arange(0.0, 10.0)
        fit = semilog_fit(x, np.exp(x))
        assert fit.predict(5.0) == pytest.approx(np.exp(5.0), rel=1e-9)

    def test_rejects_nonpositive_y(self):
        with pytest.raises(DomainError):
            semilog_fit([0, 1], [1.0, 0.0])

    def test_unknown_space_rejected_in_predict(self):
        from repro.analysis import FitResult
        bad = FitResult(0, 0, 0, 0, 1, 2, space="banana")
        with pytest.raises(DomainError):
            bad.predict(1.0)


class TestSummary:
    def test_known_values(self):
        s = summarize([1, 2, 3, 4, 5])
        assert s.n == 5
        assert s.mean == 3.0
        assert s.median == 3.0
        assert s.minimum == 1.0
        assert s.maximum == 5.0
        assert s.iqr() == pytest.approx(2.0)

    def test_single_value(self):
        s = summarize([7.0])
        assert s.std == 0.0

    def test_nan_dropped(self):
        assert summarize([1.0, np.nan, 3.0]).n == 2

    def test_empty_raises(self):
        with pytest.raises(DomainError):
            summarize([])


class TestGeometricMean:
    def test_known(self):
        assert geometric_mean([1, 100]) == pytest.approx(10.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(DomainError):
            geometric_mean([1.0, 0.0])


class TestBootstrap:
    def test_brackets_mean(self):
        rng = np.random.default_rng(0)
        data = rng.normal(10, 1, 500)
        lo, hi = bootstrap_ci(data, seed=1)
        assert lo < 10 < hi
        assert hi - lo < 0.5

    def test_deterministic_with_seed(self):
        data = [1.0, 2.0, 3.0, 4.0]
        assert bootstrap_ci(data, seed=5) == bootstrap_ci(data, seed=5)

    def test_custom_statistic(self):
        data = np.arange(100.0)
        lo, hi = bootstrap_ci(data, statistic=np.median, seed=2)
        assert lo < 49.5 < hi

    def test_alpha_validated(self):
        with pytest.raises(DomainError):
            bootstrap_ci([1.0, 2.0], alpha=0.0)


class TestSpearman:
    def test_perfect_monotone(self):
        assert spearman_rho([1, 2, 3, 4], [10, 100, 1000, 10000]) == pytest.approx(1.0)

    def test_perfect_inverse(self):
        assert spearman_rho([1, 2, 3, 4], [4, 3, 2, 1]) == pytest.approx(-1.0)

    def test_ties_handled(self):
        rho = spearman_rho([1, 2, 2, 3], [1, 2, 2, 3])
        assert rho == pytest.approx(1.0)

    def test_needs_three_points(self):
        with pytest.raises(DomainError):
            spearman_rho([1, 2], [1, 2])

    def test_constant_series_rejected(self):
        with pytest.raises(DomainError):
            spearman_rho([1, 1, 1], [1, 2, 3])
