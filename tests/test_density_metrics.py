"""Eq.-(2) density metric tests."""

import numpy as np
import pytest

from repro.density import (
    area_from_sd,
    decompression_index,
    density_index,
    feature_from_sd,
    transistor_density,
    transistor_density_from_sd,
    transistors_from_sd,
)
from repro.errors import DomainError


class TestDecompressionIndex:
    def test_paper_identity(self):
        # Pentium III row: 1.23 cm^2, 9.5M tx, 0.25 um -> s_d ~ 207.
        sd = decompression_index(1.23, 9.5e6, 0.25)
        assert sd == pytest.approx(207.2, rel=1e-3)

    def test_scales_linearly_with_area(self):
        assert decompression_index(2.0, 1e6, 0.5) == pytest.approx(
            2 * decompression_index(1.0, 1e6, 0.5))

    def test_scales_inversely_with_count(self):
        assert decompression_index(1.0, 2e6, 0.5) == pytest.approx(
            decompression_index(1.0, 1e6, 0.5) / 2)

    def test_scales_inverse_square_with_feature(self):
        assert decompression_index(1.0, 1e6, 0.25) == pytest.approx(
            4 * decompression_index(1.0, 1e6, 0.5))

    def test_dimensionless_sanity(self):
        # One transistor drawn in exactly 100 lambda^2 at any node.
        for lam in [0.1, 0.18, 0.5, 1.5]:
            area = 100 * (lam * 1e-4) ** 2
            assert decompression_index(area, 1, lam) == pytest.approx(100.0)

    def test_rejects_zero_area(self):
        with pytest.raises(DomainError):
            decompression_index(0.0, 1e6, 0.18)

    def test_rejects_negative_count(self):
        with pytest.raises(DomainError):
            decompression_index(1.0, -1, 0.18)

    def test_array_broadcast(self):
        out = decompression_index(np.array([1.0, 2.0]), 1e6, 0.5)
        assert out.shape == (2,)
        assert out[1] == pytest.approx(2 * out[0])


class TestDensityIndex:
    def test_is_reciprocal_of_sd(self):
        sd = decompression_index(1.0, 1e6, 0.35)
        dd = density_index(1.0, 1e6, 0.35)
        assert sd * dd == pytest.approx(1.0)


class TestTransistorDensity:
    def test_direct(self):
        assert transistor_density(2.0, 1e7) == pytest.approx(5e6)

    def test_from_sd_consistency(self):
        # T_d = 1/(lambda^2 sd): both routes agree.
        area, n, lam = 1.5, 8e6, 0.25
        sd = decompression_index(area, n, lam)
        assert transistor_density_from_sd(sd, lam) == pytest.approx(
            transistor_density(area, n), rel=1e-12)

    def test_itrs_1999_magnitude(self):
        # sd=467.6 at 180nm should give the ITRS 6.6M/cm^2 density back.
        assert transistor_density_from_sd(467.6, 0.18) == pytest.approx(6.6e6, rel=0.01)


class TestInverses:
    def test_area_from_sd_round_trip(self):
        area = area_from_sd(300, 1e7, 0.18)
        assert decompression_index(area, 1e7, 0.18) == pytest.approx(300.0)

    def test_area_from_sd_figure3_anchor(self):
        # 10M tx at sd=300, 0.18um -> 0.972 cm^2.
        assert area_from_sd(300, 1e7, 0.18) == pytest.approx(0.972)

    def test_transistors_from_sd_round_trip(self):
        n = transistors_from_sd(300, 3.4, 0.18)
        assert area_from_sd(300, n, 0.18) == pytest.approx(3.4)

    def test_feature_from_sd_round_trip(self):
        lam = feature_from_sd(300, 0.972, 1e7)
        assert lam == pytest.approx(0.18, rel=1e-9)

    def test_feature_from_sd_monotone_in_area(self):
        assert feature_from_sd(300, 2.0, 1e7) > feature_from_sd(300, 1.0, 1e7)
