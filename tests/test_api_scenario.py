"""Scenario facade tests — the documented entry point prices correctly.

:func:`repro.api.evaluate` / :func:`evaluate_many` must agree exactly
with the underlying eq.-(4) model calls, group mixed-model batches
correctly, and honour the MASK/COLLECT error policies with legacy
diagnostics.
"""

import math
from dataclasses import FrozenInstanceError, replace

import numpy as np
import pytest

from repro import Scenario, ScenarioResult, evaluate, evaluate_many
from repro.constants import ASSUMED_YIELD, MANUFACTURING_COST_PER_CM2_USD
from repro.cost import PAPER_FIGURE4_MODEL
from repro.data import load_itrs_1999
from repro.density import area_from_sd
from repro.errors import CollectedErrors, DomainError
from repro.robust import ErrorPolicy
from repro.wafer import WAFER_300MM

BASE = Scenario(n_transistors=10e6, feature_um=0.18, sd=300.0,
                n_wafers=5_000.0, yield_fraction=0.4, cost_per_cm2=8.0)


class TestScenarioRecord:
    def test_defaults_are_the_paper_anchors(self):
        scn = Scenario(n_transistors=10e6, feature_um=0.18)
        assert scn.sd == 300.0
        assert scn.n_wafers == 5_000.0
        assert scn.yield_fraction == ASSUMED_YIELD
        assert scn.cost_per_cm2 == MANUFACTURING_COST_PER_CM2_USD
        assert scn.model is PAPER_FIGURE4_MODEL
        assert scn.wafer is None and scn.label == ""

    def test_frozen(self):
        with pytest.raises(FrozenInstanceError):
            BASE.sd = 400.0

    def test_replace_returns_modified_copy(self):
        changed = BASE.replace(sd=450.0, label="dense")
        assert changed.sd == 450.0 and changed.label == "dense"
        assert BASE.sd == 300.0
        assert changed.n_transistors == BASE.n_transistors

    def test_cost_model_without_override_is_the_model(self):
        assert BASE.cost_model is PAPER_FIGURE4_MODEL

    def test_cost_model_applies_wafer_override(self):
        scn = BASE.replace(wafer=WAFER_300MM)
        assert scn.cost_model.wafer is WAFER_300MM
        assert scn.cost_model.design_model is PAPER_FIGURE4_MODEL.design_model

    def test_from_node_pulls_the_roadmap_point(self):
        node = load_itrs_1999()[0]
        scn = Scenario.from_node(node)
        assert scn.n_transistors == node.mpu_transistors_m * 1e6
        assert scn.feature_um == node.feature_um
        assert scn.sd == pytest.approx(node.implied_sd())
        assert scn.label == f"node-{node.year}"

    def test_from_node_overrides_win(self):
        node = load_itrs_1999()[0]
        scn = Scenario.from_node(node, sd=500.0, label="custom")
        assert scn.sd == 500.0 and scn.label == "custom"

    def test_no_eager_validation(self):
        # Infeasible values must surface at evaluation, not construction.
        Scenario(n_transistors=10e6, feature_um=0.18, sd=-1.0)


class TestEvaluate:
    def test_matches_direct_model_call(self):
        result = evaluate(BASE)
        expected = PAPER_FIGURE4_MODEL.transistor_cost(
            300.0, 10e6, 0.18, 5_000.0, 0.4, 8.0)
        assert result.cost_per_transistor_usd == pytest.approx(
            expected, rel=1e-12)
        assert result.area_cm2 == pytest.approx(
            float(area_from_sd(300.0, 10e6, 0.18)), rel=1e-12)
        assert result.scenario is BASE

    def test_result_derived_quantities(self):
        result = evaluate(BASE)
        assert result.die_cost_usd == pytest.approx(
            result.cost_per_transistor_usd * 10e6)
        assert result.ok

    def test_infeasible_scenario_raises(self):
        with pytest.raises(DomainError):
            evaluate(BASE.replace(sd=50.0))


class TestEvaluateMany:
    def test_order_preserved_and_exact(self):
        scenarios = [BASE.replace(sd=sd) for sd in (200.0, 300.0, 600.0)]
        results = evaluate_many(scenarios)
        for scn, res in zip(scenarios, results):
            expected = PAPER_FIGURE4_MODEL.transistor_cost(
                scn.sd, scn.n_transistors, scn.feature_um, scn.n_wafers,
                scn.yield_fraction, scn.cost_per_cm2)
            assert res.scenario is scn
            assert res.cost_per_transistor_usd == pytest.approx(
                expected, rel=1e-12)

    def test_mixed_models_group_and_scatter_back(self):
        alt_model = replace(PAPER_FIGURE4_MODEL, utilization=0.5)
        scenarios = [BASE,
                     BASE.replace(model=alt_model, sd=400.0),
                     BASE.replace(sd=350.0),
                     BASE.replace(model=alt_model)]
        results = evaluate_many(scenarios)
        for scn, res in zip(scenarios, results):
            expected = scn.cost_model.transistor_cost(
                scn.sd, scn.n_transistors, scn.feature_um, scn.n_wafers,
                scn.yield_fraction, scn.cost_per_cm2)
            assert res.cost_per_transistor_usd == pytest.approx(
                expected, rel=1e-12)

    def test_wafer_override_changes_the_price(self):
        small, large = evaluate_many([BASE, BASE.replace(wafer=WAFER_300MM)])
        assert small.cost_per_transistor_usd != pytest.approx(
            large.cost_per_transistor_usd)

    def test_mask_yields_nan_and_diagnostics(self):
        diagnostics = []
        results = evaluate_many(
            [BASE, BASE.replace(sd=50.0), BASE.replace(sd=400.0)],
            policy=ErrorPolicy.MASK, diagnostics=diagnostics)
        assert results[0].ok and results[2].ok
        assert not results[1].ok
        assert math.isnan(results[1].cost_per_transistor_usd)
        assert math.isnan(results[1].die_cost_usd)
        assert len(diagnostics) == 1
        assert diagnostics[0].where == "api.evaluate_many"
        assert diagnostics[0].index == 1

    def test_mask_values_match_raise_on_good_points(self):
        scenarios = [BASE, BASE.replace(sd=50.0), BASE.replace(sd=400.0)]
        masked = evaluate_many(scenarios, policy=ErrorPolicy.MASK)
        strict = evaluate_many([scenarios[0], scenarios[2]])
        assert masked[0].cost_per_transistor_usd == pytest.approx(
            strict[0].cost_per_transistor_usd, rel=1e-12)
        assert masked[2].cost_per_transistor_usd == pytest.approx(
            strict[1].cost_per_transistor_usd, rel=1e-12)

    def test_collect_raises_aggregate(self):
        scenarios = [BASE.replace(sd=50.0), BASE, BASE.replace(sd=-3.0)]
        with pytest.raises(CollectedErrors, match=r"2 point\(s\) failed"):
            evaluate_many(scenarios, policy=ErrorPolicy.COLLECT)

    def test_empty_batch(self):
        assert evaluate_many([]) == []

    def test_accepts_any_iterable(self):
        results = evaluate_many(BASE.replace(sd=sd) for sd in (250.0, 500.0))
        assert len(results) == 2
        assert all(isinstance(res, ScenarioResult) for res in results)
        assert results[0].cost_per_transistor_usd > 0

    def test_backend_recorded(self):
        (result,) = evaluate_many([BASE])
        assert result.backend in ("numpy", "python")

    def test_matches_engine_grid_values(self):
        # evaluate_many under RAISE is one vectorized grid per model
        # group; spot-check against a literal numpy recomputation.
        scenarios = [BASE.replace(sd=sd) for sd in (220.0, 330.0, 440.0)]
        results = evaluate_many(scenarios)
        sds = np.array([s.sd for s in scenarios])
        expected = PAPER_FIGURE4_MODEL.transistor_cost(
            sds, 10e6, 0.18, 5_000.0, 0.4, 8.0)
        got = np.array([r.cost_per_transistor_usd for r in results])
        np.testing.assert_allclose(got, expected, rtol=1e-12)
