"""The pure-python kernels must work with NumPy entirely absent.

:mod:`repro.engine.pykernels` is the NumPy-free floor of the engine:
the module is loaded here under an import hook that *blocks* ``numpy``
(and purges any already-imported copy for the duration), proving the
fallback backend stays importable on a stdlib-only interpreter.

This file itself keeps every ``repro``/``numpy`` import lazy so the
CI ``no-numpy`` job can run it on an interpreter without NumPy — the
cross-check against the NumPy-backed models then simply skips.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

PYKERNELS_PATH = (Path(__file__).resolve().parent.parent
                  / "src" / "repro" / "engine" / "pykernels.py")

FIG4A = dict(n_transistors=1e7, feature_um=0.18, n_wafers=5_000,
             yield_fraction=0.4, cost_per_cm2=8.0)

#: Literal eq.-(4) fixed parameters (paper-plausible, stdlib-only) for
#: the tests that need no parity with the real model objects.
LITERAL_PARAMS = dict(wafer_area_cm2=314.0, a0=2.0, p1=0.5, p2=1.0,
                      sd0=100.0, mask_cost_usd=0.0, utilization=1.0,
                      test=None)


class _NumpyBlocker:
    """Meta-path hook that refuses every ``numpy`` import."""

    def find_spec(self, name, path=None, target=None):
        if name == "numpy" or name.startswith("numpy."):
            raise ImportError(f"{name} is blocked for this test")
        return None


def _load_pykernels_without_numpy():
    """Execute pykernels.py in a world where ``import numpy`` fails."""
    blocker = _NumpyBlocker()
    hidden = {name: sys.modules.pop(name) for name in list(sys.modules)
              if name == "numpy" or name.startswith("numpy.")}
    sys.meta_path.insert(0, blocker)
    try:
        spec = importlib.util.spec_from_file_location(
            "repro_pykernels_nonumpy", PYKERNELS_PATH)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module
    finally:
        sys.meta_path.remove(blocker)
        sys.modules.update(hidden)


@pytest.fixture(scope="module")
def pyk():
    return _load_pykernels_without_numpy()


@pytest.fixture(scope="module")
def repro_refs():
    """The NumPy-backed reference objects (skips when NumPy is absent)."""
    pytest.importorskip("numpy", exc_type=ImportError)
    from repro.cost import PAPER_FIGURE4_MODEL
    from repro.density import area_from_sd
    from repro.engine.kernels import Eq4SdKernel

    model = PAPER_FIGURE4_MODEL
    design = model.design_model
    test_model = model.test_model
    test = None if test_model is None else (
        test_model.seconds_per_mtransistor,
        test_model.tester_rate_usd_per_hour,
        test_model.handling_usd_per_die)
    params = {
        "wafer_area_cm2": model.wafer.area_cm2,
        "a0": design.a0, "p1": design.p1, "p2": design.p2,
        "sd0": design.sd0,
        "mask_cost_usd": float(model.mask_cost(FIG4A["feature_um"])),
        "utilization": model.utilization,
        "test": test,
    }
    return {"kernel": Eq4SdKernel(model, **FIG4A),
            "area_from_sd": area_from_sd, "params": params}


class TestStandaloneLoad:
    def test_loads_with_numpy_blocked(self, pyk):
        assert hasattr(pyk, "total_transistor_cost")
        assert hasattr(pyk, "KernelError")

    def test_module_holds_no_numpy_object(self, pyk):
        assert "numpy" not in {getattr(value, "__name__", "")
                               for value in vars(pyk).values()}

    def test_evaluates_with_literal_parameters(self, pyk):
        cost = pyk.total_transistor_cost(
            300.0, FIG4A["n_transistors"], FIG4A["feature_um"],
            FIG4A["n_wafers"], FIG4A["yield_fraction"],
            FIG4A["cost_per_cm2"], **LITERAL_PARAMS)
        assert cost > 0.0


class TestNumericalParity:
    def test_area_matches_numpy_model(self, pyk, repro_refs):
        expected = float(repro_refs["area_from_sd"](300.0, 1e7, 0.18))
        got = pyk.area_from_sd(300.0, 1e7, 0.18)
        assert got == pytest.approx(expected, rel=1e-12)

    @pytest.mark.parametrize("sd", [150.0, 300.0, 600.0, 1100.0])
    def test_eq4_matches_numpy_model(self, pyk, repro_refs, sd):
        got = pyk.total_transistor_cost(
            sd, FIG4A["n_transistors"], FIG4A["feature_um"],
            FIG4A["n_wafers"], FIG4A["yield_fraction"],
            FIG4A["cost_per_cm2"], **repro_refs["params"])
        assert got == pytest.approx(repro_refs["kernel"].point(sd),
                                    rel=1e-12)


class TestDomainErrors:
    def test_infeasible_sd_raises_kernel_error(self, pyk):
        with pytest.raises(pyk.KernelError):
            pyk.total_transistor_cost(
                50.0, 1e7, 0.18, 5_000, 0.4, 8.0, **LITERAL_PARAMS)

    def test_bad_yield_raises_kernel_error(self, pyk):
        with pytest.raises(pyk.KernelError):
            pyk.total_transistor_cost(
                300.0, 1e7, 0.18, 5_000, 0.0, 8.0, **LITERAL_PARAMS)

    def test_kernel_error_is_a_value_error(self, pyk):
        assert issubclass(pyk.KernelError, ValueError)
