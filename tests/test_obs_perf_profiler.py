"""Profiler, collapsed-stack, and hot-span report behaviour.

The profiler is deterministic in its *keys* (same code → same stacks),
so tests assert stack structure and conservation properties, never
exact timings. ``collapsed_from_spans`` / ``hot_spans`` are pure
functions of span dicts and get synthetic-record golden tests.
"""

from __future__ import annotations

import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro import obs
from repro.obs import (
    SpanProfiler,
    collapsed_from_spans,
    format_collapsed,
    format_hot_report,
    hot_spans,
)

REPO = Path(__file__).resolve().parent.parent


@pytest.fixture(autouse=True)
def clean_obs():
    obs.enable()
    yield
    obs.disable()


def spin(seconds: float) -> None:
    """Busy-wait so self time is attributable (sleep hides in C calls)."""
    deadline = time.perf_counter() + seconds
    while time.perf_counter() < deadline:
        pass


# -- SpanProfiler ------------------------------------------------------

def test_profiler_attributes_time_under_span_paths():
    with SpanProfiler() as prof:
        with obs.span("outer"):
            with obs.span("inner"):
                spin(0.01)
    collapsed = prof.collapsed()
    assert collapsed, "profiler recorded nothing"
    inner_keys = [k for k in collapsed if k.startswith("outer;inner")]
    assert inner_keys, f"no outer;inner stacks in {sorted(collapsed)}"
    # The busy-wait function itself shows up as a frame on that path.
    assert any("spin" in k for k in inner_keys)


def test_profiler_total_bounded_by_wall_time():
    # Charged time can undershoot wall time (the hook's own execution
    # is deliberately excluded) but must never exceed it.
    t0 = time.perf_counter()
    with SpanProfiler() as prof:
        with obs.span("work"):
            spin(0.01)
    wall = time.perf_counter() - t0
    assert 0.0 < prof.total_seconds() <= wall * 1.05


def test_profiler_start_stop_idempotent_and_detaches():
    prof = SpanProfiler().start()
    prof.start()  # second start is a no-op
    prof.stop()
    prof.stop()  # second stop is a no-op
    assert sys.getprofile() is None
    # Spans opened after stop() no longer reach the profiler.
    before = dict(prof._times)
    with obs.span("late"):
        spin(0.002)
    assert prof._times == before


# -- collapsed_from_spans ----------------------------------------------

def synthetic_records() -> list[dict]:
    # root(10ms self) -> child(5ms self) -> leaf(2ms self); sibling
    # second root occurrence merges into the same path key.
    return [
        {"type": "span", "id": 1, "parent_id": None, "name": "root",
         "depth": 0, "start": 0.0, "duration": 0.017, "self": 0.010},
        {"type": "span", "id": 2, "parent_id": 1, "name": "child",
         "depth": 1, "start": 0.001, "duration": 0.007, "self": 0.005},
        {"type": "span", "id": 3, "parent_id": 2, "name": "leaf",
         "depth": 2, "start": 0.002, "duration": 0.002, "self": 0.002},
        {"type": "span", "id": 4, "parent_id": None, "name": "root",
         "depth": 0, "start": 0.1, "duration": 0.003, "self": 0.003},
        {"type": "metric", "name": "ignored", "kind": "counter"},
    ]


def test_collapsed_from_spans_builds_paths_and_merges():
    collapsed = collapsed_from_spans(synthetic_records())
    assert collapsed == {
        "root": 13_000,  # 10 ms + the 3 ms second occurrence
        "root;child": 5_000,
        "root;child;leaf": 2_000,
    }


def test_collapsed_from_spans_reads_live_tracer():
    with obs.span("a"):
        with obs.span("b"):
            spin(0.005)
    collapsed = collapsed_from_spans()
    assert any(k == "a;b" for k in collapsed)


def test_format_collapsed_stable_lines():
    text = format_collapsed({"b;c": 2, "a": 1})
    assert text.splitlines() == ["a 1", "b;c 2"]
    assert format_collapsed({}) == "(no samples)"


# -- hot_spans ---------------------------------------------------------

def test_hot_spans_ranked_by_self_time():
    rows = hot_spans(synthetic_records())
    assert [r["name"] for r in rows] == ["root", "child", "leaf"]
    root = rows[0]
    assert root["calls"] == 2
    assert root["self_s"] == pytest.approx(0.013)
    assert root["total_s"] == pytest.approx(0.020)
    assert root["mean_s"] == pytest.approx(0.010)
    assert root["self_pct"] == pytest.approx(100 * 0.013 / 0.020)
    assert sum(r["self_pct"] for r in rows) == pytest.approx(100.0)


def test_hot_spans_top_truncates():
    rows = hot_spans(synthetic_records(), top=1)
    assert len(rows) == 1
    assert rows[0]["name"] == "root"


def test_format_hot_report_renders_table():
    text = format_hot_report(synthetic_records())
    assert "hot spans" in text
    assert "root" in text and "self_ms" in text
    assert format_hot_report([]) == "(no spans recorded)"


# -- tools/trace_report.py modes ---------------------------------------

def write_trace(tmp_path: Path) -> Path:
    with obs.span("outer"):
        with obs.span("inner"):
            spin(0.005)
    path = tmp_path / "trace.jsonl"
    obs.export_jsonl(path)
    return path


def run_tool(*argv: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(REPO / "tools" / "trace_report.py"), *argv],
        capture_output=True, text=True)


def test_trace_report_flame_mode(tmp_path):
    path = write_trace(tmp_path)
    proc = run_tool("--flame", str(path))
    assert proc.returncode == 0, proc.stderr
    assert any(line.startswith("outer;inner ")
               for line in proc.stdout.splitlines())


def test_trace_report_hot_mode(tmp_path):
    path = write_trace(tmp_path)
    proc = run_tool("--hot", "1", str(path))
    assert proc.returncode == 0, proc.stderr
    assert "top 1" in proc.stdout
    proc_default = run_tool("--hot", str(path))
    assert proc_default.returncode == 0
    assert "outer" in proc_default.stdout


def test_trace_report_bad_usage_exits_2(tmp_path):
    assert run_tool().returncode == 2
    assert run_tool("--hot", "not-a-number",
                    str(write_trace(tmp_path))).returncode == 2
