"""Property-based tests (hypothesis) on the cost/density algebra."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cost import (
    PAPER_DESIGN_COST_MODEL,
    PAPER_FIGURE4_MODEL,
    die_cost,
    sd_for_transistor_cost,
    transistor_cost,
)
from repro.density import (
    area_from_sd,
    decompression_index,
    feature_from_sd,
    transistors_from_sd,
)

# Physically sensible strategy ranges (paper-era magnitudes).
features = st.floats(min_value=0.03, max_value=2.0)
sds = st.floats(min_value=20.0, max_value=2000.0)
sds_above_bound = st.floats(min_value=101.0, max_value=2000.0)
yields = st.floats(min_value=0.05, max_value=1.0)
areas = st.floats(min_value=0.01, max_value=10.0)
counts = st.floats(min_value=1e4, max_value=1e9)
cm_sqs = st.floats(min_value=0.5, max_value=100.0)
volumes = st.floats(min_value=10.0, max_value=1e7)


class TestDensityAlgebra:
    @given(areas, counts, features)
    def test_sd_positive(self, area, n, lam):
        assert decompression_index(area, n, lam) > 0

    @given(sds, counts, features)
    def test_area_round_trip(self, sd, n, lam):
        area = area_from_sd(sd, n, lam)
        assert decompression_index(area, n, lam) == pytest.approx(sd, rel=1e-9)

    @given(sds, areas, features)
    def test_transistor_round_trip(self, sd, area, lam):
        n = transistors_from_sd(sd, area, lam)
        assert area_from_sd(sd, n, lam) == pytest.approx(area, rel=1e-9)

    @given(sds, areas, counts)
    def test_feature_round_trip(self, sd, area, n):
        lam = feature_from_sd(sd, area, n)
        assert decompression_index(area, n, lam) == pytest.approx(sd, rel=1e-9)

    @given(areas, counts, features, st.floats(min_value=1.1, max_value=10.0))
    def test_sd_monotone_in_area(self, area, n, lam, factor):
        assert decompression_index(area * factor, n, lam) > \
            decompression_index(area, n, lam)


class TestEq3Properties:
    @given(cm_sqs, features, sds, yields)
    def test_cost_positive(self, cm, lam, sd, y):
        assert transistor_cost(cm, lam, sd, y) > 0

    @given(cm_sqs, features, sds, yields)
    def test_homogeneity(self, cm, lam, sd, y):
        # Doubling C_sq and halving s_d leaves cost unchanged.
        a = transistor_cost(cm, lam, sd, y)
        b = transistor_cost(2 * cm, lam, sd / 2, y)
        assert a == pytest.approx(b, rel=1e-12)

    @given(cm_sqs, features, sds, st.floats(min_value=0.05, max_value=0.5))
    def test_yield_improvement_always_helps(self, cm, lam, sd, y):
        assert transistor_cost(cm, lam, sd, min(2 * y, 1.0)) < \
            transistor_cost(cm, lam, sd, y)

    @given(cm_sqs, features, sds, yields, counts)
    def test_die_cost_consistency(self, cm, lam, sd, y, n):
        per_die = die_cost(cm, lam, sd, n, y)
        per_tx = transistor_cost(cm, lam, sd, y)
        assert per_die == pytest.approx(per_tx * n, rel=1e-9)

    @given(st.floats(min_value=1e-9, max_value=1e-3), cm_sqs, features, yields)
    def test_sd_inversion(self, target, cm, lam, y):
        sd = sd_for_transistor_cost(target, cm, lam, y)
        assert transistor_cost(cm, lam, sd, y) == pytest.approx(target, rel=1e-9)


class TestEq6Properties:
    @given(counts, sds_above_bound)
    def test_cost_positive(self, n, sd):
        assert PAPER_DESIGN_COST_MODEL.cost(n, sd) > 0

    @given(counts, sds_above_bound, st.floats(min_value=1.01, max_value=5.0))
    def test_sparser_always_cheaper(self, n, sd, factor):
        assert PAPER_DESIGN_COST_MODEL.cost(n, sd * factor) < \
            PAPER_DESIGN_COST_MODEL.cost(n, sd)

    @given(counts, sds_above_bound)
    def test_budget_inversion(self, n, sd):
        budget = PAPER_DESIGN_COST_MODEL.cost(n, sd)
        recovered = PAPER_DESIGN_COST_MODEL.sd_for_budget(n, budget)
        assert recovered == pytest.approx(sd, rel=1e-9)

    @given(counts, sds_above_bound)
    def test_marginal_cost_negative(self, n, sd):
        assert PAPER_DESIGN_COST_MODEL.marginal_cost_wrt_sd(n, sd) < 0


class TestEq4Properties:
    @given(sds_above_bound, counts, features, volumes, yields, cm_sqs)
    @settings(max_examples=50)
    def test_total_at_least_manufacturing(self, sd, n, lam, nw, y, cm):
        total = PAPER_FIGURE4_MODEL.transistor_cost(sd, n, lam, nw, y, cm)
        floor = transistor_cost(cm, lam, sd, y)
        assert total >= floor

    @given(sds_above_bound, counts, features, volumes, yields, cm_sqs)
    @settings(max_examples=50)
    def test_breakdown_sums(self, sd, n, lam, nw, y, cm):
        b = PAPER_FIGURE4_MODEL.breakdown(sd, n, lam, nw, y, cm)
        total = PAPER_FIGURE4_MODEL.transistor_cost(sd, n, lam, nw, y, cm)
        assert b.total == pytest.approx(total, rel=1e-9)

    @given(sds_above_bound, counts, features, volumes, yields, cm_sqs,
           st.floats(min_value=1.5, max_value=10.0))
    @settings(max_examples=50)
    def test_volume_always_helps(self, sd, n, lam, nw, y, cm, factor):
        a = PAPER_FIGURE4_MODEL.transistor_cost(sd, n, lam, nw, y, cm)
        b = PAPER_FIGURE4_MODEL.transistor_cost(sd, n, lam, nw * factor, y, cm)
        assert b < a
