"""CLI feature tests: SARIF output, path filtering, ``--changed-only``,
and ``--stats``."""

from __future__ import annotations

import json
import subprocess
import textwrap

from repro.lint import Finding, Severity, render_sarif
from repro.lint.cli import main

VIOLATION = (
    '"""Doc."""\n\n'
    '__all__ = ["f"]\n\n\n'
    'def f(feature_cm):\n'
    '    """Doc."""\n'
    '    return feature_cm * 1.0e4\n'
)


def make_tree(tmp_path, files):
    root = tmp_path / "pkg"
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return root


# -- SARIF ---------------------------------------------------------------

def test_render_sarif_document_shape():
    finding = Finding("UNITS001", Severity.ERROR, "src/a.py", 5, "msg", "fix")
    doc = json.loads(render_sarif([finding], modules_scanned=3, baselined=1,
                                  rules={"UNITS001": "inline unit literal"}))
    assert doc["version"] == "2.1.0"
    run = doc["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro.lint"
    assert run["tool"]["driver"]["rules"][0]["id"] == "UNITS001"
    result = run["results"][0]
    assert result["ruleId"] == "UNITS001"
    assert result["level"] == "error"
    assert result["message"]["text"] == "msg [fix]"
    location = result["locations"][0]["physicalLocation"]
    assert location["artifactLocation"] == {"uri": "src/a.py",
                                            "uriBaseId": "%SRCROOT%"}
    assert location["region"]["startLine"] == 5
    assert result["partialFingerprints"]["reproLint/v1"] == finding.fingerprint
    assert run["properties"]["baselined"] == 1


def test_cli_sarif_format(tmp_path, capsys):
    root = make_tree(tmp_path, {"m.py": VIOLATION})
    assert main(["--root", str(root), "--format", "sarif",
                 "--no-baseline"]) == 1
    doc = json.loads(capsys.readouterr().out)
    results = doc["runs"][0]["results"]
    assert [r["ruleId"] for r in results] == ["UNITS001"]
    # The driver catalog carries the full rule set, not just hits.
    rule_ids = {r["id"] for r in doc["runs"][0]["tool"]["driver"]["rules"]}
    assert {"UNITS001", "ERR001", "PURE001", "CONC001"} <= rule_ids


# -- --paths -------------------------------------------------------------

def test_cli_paths_filters_findings(tmp_path, capsys):
    root = make_tree(tmp_path, {"keep.py": VIOLATION, "drop.py": VIOLATION})
    assert main(["--root", str(root), "--no-baseline",
                 "--paths", "keep.py"]) == 1
    out = capsys.readouterr().out
    assert "keep.py" in out and "drop.py" not in out
    # A filter matching nothing leaves a clean (exit 0) report.
    assert main(["--root", str(root), "--no-baseline",
                 "--paths", "absent.py"]) == 0
    capsys.readouterr()


def test_cli_paths_directory_prefix_and_glob(tmp_path, capsys):
    root = make_tree(tmp_path, {"sub/a.py": VIOLATION, "b.py": VIOLATION})
    assert main(["--root", str(root), "--no-baseline",
                 "--paths", "sub/"]) == 1
    out = capsys.readouterr().out
    assert "sub/a.py" in out and "b.py" not in out
    assert main(["--root", str(root), "--no-baseline",
                 "--paths", "*.py"]) == 1
    capsys.readouterr()


# -- --changed-only ------------------------------------------------------

def _git(repo, *args):
    subprocess.run(["git", "-c", "user.email=t@example.com",
                    "-c", "user.name=t", *args],
                   cwd=repo, check=True, capture_output=True)


def test_cli_changed_only_reports_changed_and_untracked(tmp_path, capsys):
    repo = tmp_path / "repo"
    (repo / "pkg").mkdir(parents=True)
    (repo / "pyproject.toml").write_text('[project]\nname = "x"\n')
    (repo / "pkg" / "stale.py").write_text(VIOLATION)
    (repo / "pkg" / "touched.py").write_text(VIOLATION)
    _git(repo, "init", "-q")
    _git(repo, "add", ".")
    _git(repo, "commit", "-q", "-m", "seed")
    (repo / "pkg" / "touched.py").write_text(VIOLATION + "\n# edited\n")
    (repo / "pkg" / "fresh.py").write_text(VIOLATION)

    assert main(["--root", str(repo / "pkg"), "--no-baseline",
                 "--changed-only"]) == 1
    out = capsys.readouterr().out
    assert "pkg/touched.py" in out
    assert "pkg/fresh.py" in out  # untracked files count as changed
    assert "pkg/stale.py" not in out


def test_cli_changed_only_without_git_repo_exits_2(tmp_path, capsys):
    root = make_tree(tmp_path, {"m.py": VIOLATION})
    (tmp_path / "pyproject.toml").write_text('[project]\nname = "x"\n')
    assert main(["--root", str(root), "--no-baseline",
                 "--changed-only"]) == 2
    assert "--changed-only" in capsys.readouterr().err


# -- --stats -------------------------------------------------------------

def test_cli_stats_prints_per_pass_timing(tmp_path, capsys):
    root = make_tree(tmp_path, {"m.py": '"""Doc."""\n\n__all__ = []\n'})
    assert main(["--root", str(root), "--no-baseline", "--stats"]) == 0
    captured = capsys.readouterr()
    for name in ("units", "kernel-purity", "concurrency", "total"):
        assert name in captured.err
    assert "seconds" in captured.err
    assert "seconds" not in captured.out  # the report stream stays parseable
