"""Cross-process telemetry propagation: capture, worker scope, merge.

Covers the :mod:`repro.obs.telemetry` contract end to end — context
capture gating, the in-process ``WorkerTelemetry`` round trip,
re-parenting and depth arithmetic in ``merge_payload``, associative
registry merges, the JSON-safe payload wire format — and the pooled
``evaluate_grid`` acceptance path: a chunked run must produce one
merged trace whose worker chunk spans hang under the engine span and
whose per-point totals match the single-process run exactly.
"""

import threading

import numpy as np
import pytest

from repro import obs
from repro.cost import PAPER_FIGURE4_MODEL
from repro.engine import (
    clear_cache,
    configure_parallel,
    evaluate_grid,
    parallel_settings,
)
from repro.engine import parallel as engine_parallel
from repro.engine.kernels import Eq4SdKernel
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import (
    TelemetryPayload,
    WorkerTelemetry,
    capture_context,
    merge_payload,
)

FIG4A = dict(n_transistors=1e7, feature_um=0.18, n_wafers=5_000,
             yield_fraction=0.4, cost_per_cm2=8.0)


@pytest.fixture(autouse=True)
def clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


@pytest.fixture()
def lowered_threshold():
    saved = parallel_settings()
    configure_parallel(threshold=1_000, max_workers=2)
    yield
    configure_parallel(threshold=saved["threshold"],
                       enabled=saved["enabled"])
    engine_parallel._max_workers = saved["max_workers"]
    engine_parallel.shutdown()


class TestCaptureContext:
    def test_disabled_returns_none(self):
        assert capture_context() is None

    def test_enabled_snapshots_current_span(self):
        obs.enable()
        with obs.span("parent") as sp:
            ctx = capture_context()
        assert ctx is not None
        assert ctx.parent_span_id == sp.span_id
        assert ctx.parent_depth == sp.depth
        assert len(ctx.trace_id) == 32

    def test_enabled_without_open_span(self):
        obs.enable()
        ctx = capture_context()
        assert ctx.parent_span_id is None
        assert ctx.parent_depth == -1


class TestWorkerRoundTrip:
    """WorkerTelemetry + merge_payload exercised in a single process."""

    def _one_task(self, ctx):
        with WorkerTelemetry(ctx) as wt:
            with obs.span("task.outer", chunk=0):
                with obs.span("task.inner"):
                    obs.inc("task_points_total", 7.0,
                            labels={"backend": "py"})
        return wt.payload

    def test_payload_shape_and_cleanup(self):
        obs.enable()
        with obs.span("parent"):
            ctx = capture_context()
        obs.disable()
        payload = self._one_task(ctx)
        assert isinstance(payload, TelemetryPayload)
        assert payload.trace_id == ctx.trace_id
        # Spans land in finish order: inner closes before outer.
        assert [d["name"] for d in payload.spans] == \
            ["task.inner", "task.outer"]
        # Worker scope left no residue in this process's tracer/registry.
        assert obs.get_tracer().spans == []
        assert obs.get_registry().is_empty()
        assert not obs.is_enabled()

    def test_merge_reparents_under_capture_span(self):
        obs.enable()
        with obs.span("parent") as parent:
            ctx = capture_context()
        payload = self._one_task(ctx)
        obs.enable()
        merge_payload(payload)
        spans = {sp.name: sp for sp in obs.get_tracer().spans}
        outer, inner = spans["task.outer"], spans["task.inner"]
        assert outer.parent_id == parent.span_id
        assert outer.depth == parent.depth + 1
        assert inner.parent_id == outer.span_id
        assert inner.depth == outer.depth + 1
        # Rebased onto the parent clock: worker spans sit inside the
        # parent's lifetime, not at the worker's process-local zero.
        assert outer.start >= ctx.parent_clock
        # Metrics arrived too, labels intact.
        reg = obs.get_registry()
        key = 'task_points_total{backend="py"}'
        assert reg.counters[key].value == 7.0

    def test_merge_into_explicit_registry_is_associative(self):
        obs.enable()
        ctx = capture_context()
        obs.disable()
        p1, p2 = self._one_task(ctx), self._one_task(ctx)
        left = MetricsRegistry()
        left.merge(MetricsRegistry.from_dict(p1.metrics))
        left.merge(MetricsRegistry.from_dict(p2.metrics))
        right = MetricsRegistry.from_dict(p2.metrics)
        right.merge(MetricsRegistry.from_dict(p1.metrics))
        assert left.to_dict()["counters"] == right.to_dict()["counters"]
        key = 'task_points_total{backend="py"}'
        assert left.counters[key].value == 14.0

    def test_payload_metrics_are_json_safe(self):
        import json
        obs.enable()
        ctx = capture_context()
        obs.disable()
        payload = self._one_task(ctx)
        rebuilt = TelemetryPayload(**json.loads(json.dumps(
            payload.__dict__)))
        obs.enable()
        merge_payload(rebuilt)
        assert len(obs.get_tracer().spans) == 2


class TestPooledDeterminism:
    """Acceptance: pooled evaluate_grid merges a coherent, equal trace."""

    GRID = np.linspace(150.0, 1200.0, 25_000)

    def _run(self):
        clear_cache()
        obs.reset()
        obs.enable()
        try:
            kernel = Eq4SdKernel(PAPER_FIGURE4_MODEL, **FIG4A)
            evaluation = evaluate_grid(kernel, self.GRID,
                                       where="test.telemetry", cache=False)
        finally:
            obs.disable()
        return evaluation

    def test_pooled_trace_parents_and_totals(self, lowered_threshold):
        evaluation = self._run()
        assert evaluation.chunks > 1
        spans = obs.get_tracer().spans
        engine_spans = [s for s in spans if s.name == "engine.evaluate_grid"]
        chunk_spans = [s for s in spans if s.name == "engine.parallel.chunk"]
        assert len(engine_spans) == 1
        assert len(chunk_spans) == evaluation.chunks
        for chunk in chunk_spans:
            assert chunk.parent_id == engine_spans[0].span_id
            assert chunk.depth == engine_spans[0].depth + 1
            assert chunk.attrs["pid"] > 0
            assert "chunk" in chunk.attrs
        point_counts = [c.attrs["points"] for c in chunk_spans]
        assert sum(point_counts) == self.GRID.size
        reg = obs.get_registry()
        worker_key = 'engine_worker_points_total{backend="numpy"}'
        assert reg.counters[worker_key].value == float(self.GRID.size)

    POINTS_KEY = 'engine_points_total{backend="numpy"}'

    def test_per_point_totals_match_single_process(self, lowered_threshold):
        pooled = self._run()
        pooled_points = obs.get_registry().counters[self.POINTS_KEY].value
        saved = parallel_settings()
        configure_parallel(enabled=False)
        try:
            single = self._run()
        finally:
            configure_parallel(enabled=saved["enabled"])
        single_points = obs.get_registry().counters[self.POINTS_KEY].value
        assert pooled.chunks > 1 and single.chunks == 1
        np.testing.assert_array_equal(pooled.values, single.values)
        # Per-point totals are chunking-invariant; chunk-counting
        # metrics (engine_chunks_total, *_calls) legitimately differ.
        assert pooled_points == single_points == float(self.GRID.size)

    def test_pooled_run_is_repeatable(self, lowered_threshold):
        first = self._run()
        first_points = obs.get_registry().counters[self.POINTS_KEY].value
        second = self._run()
        second_points = obs.get_registry().counters[self.POINTS_KEY].value
        np.testing.assert_array_equal(first.values, second.values)
        assert first_points == second_points


class TestThreadSafety:
    """Concurrent ingestion from many threads loses no updates."""

    THREADS = 8
    PER_THREAD = 2_000

    def test_counter_hammer(self):
        obs.enable()
        barrier = threading.Barrier(self.THREADS)

        def work():
            barrier.wait()
            for _ in range(self.PER_THREAD):
                obs.inc("hammer_total", labels={"src": "thread"})

        threads = [threading.Thread(target=work)
                   for _ in range(self.THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        key = 'hammer_total{src="thread"}'
        assert obs.get_registry().counters[key].value == \
            float(self.THREADS * self.PER_THREAD)

    def test_mixed_instrument_hammer(self):
        obs.enable()
        reg = obs.get_registry()
        barrier = threading.Barrier(self.THREADS)

        def work(seed):
            barrier.wait()
            for i in range(self.PER_THREAD):
                obs.observe("hammer_latency", (seed + i) * 1e-6)
                obs.set_gauge("hammer_gauge", float(i))
                reg.sketch("hammer_sketch").observe((i + 1) * 1e-6)

        threads = [threading.Thread(target=work, args=(s,))
                   for s in range(self.THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = self.THREADS * self.PER_THREAD
        assert reg.histograms["hammer_latency"].count == total
        assert reg.sketches["hammer_sketch"].count == total
        assert reg.gauges["hammer_gauge"].value == float(self.PER_THREAD - 1)

    def test_concurrent_merge_is_lossless(self):
        sources = []
        for i in range(self.THREADS):
            reg = MetricsRegistry()
            for _ in range(100):
                reg.counter("merge_total", {"part": "x"}).inc()
            sources.append(reg)
        target = MetricsRegistry()
        threads = [threading.Thread(target=target.merge, args=(src,))
                   for src in sources]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert target.counters['merge_total{part="x"}'].value == \
            float(self.THREADS * 100)
