"""Tests for the PURE/CONC dataflow passes.

Synthetic trees exercise every rule id in isolation; the seeded
mutation tests then prove detection on the *real* package — removing a
field from a kernel's ``token()`` or adding a module-global write to
the worker path must produce the corresponding finding.
"""

from __future__ import annotations

import ast
import textwrap

from repro.lint import LintConfig, load_project, run_lint
from repro.lint.manager import default_root
from repro.lint.passes.dataflow import ConcurrencyPass, KernelPurityPass
from repro.lint.project import LintModule, LintProject, _suppressions

PURITY = (KernelPurityPass(),)
CONCURRENCY = (ConcurrencyPass(),)

CONFIG = LintConfig(
    kernel_modules=("kern.py",),
    worker_entry_patterns=(r"^_run_chunk",),
    worker_scope_resets=("Scope",),
    metrics_modules=("metrics.py",),
)


def make_tree(tmp_path, files):
    root = tmp_path / "pkg"
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return root


def rules_of(result):
    return [f.rule for f in result.findings]


# -- PURE001: transitively impure kernel bodies --------------------------

def test_pure001_impure_call_through_helper(tmp_path):
    root = make_tree(tmp_path, {"kern.py": """
        import time

        class Kern:
            n: float

            def batch(self, xs):
                return [self._scale(x) for x in xs]

            def _scale(self, x):
                return x * self.n * time.time()

            def token(self):
                return ("Kern", self.n)
    """})
    result = run_lint(root, config=CONFIG, passes=PURITY)
    assert rules_of(result) == ["PURE001"]
    finding = result.findings[0]
    assert "time.time" in finding.message
    assert "Kern._scale" in finding.message  # witness chain


def test_pure001_clean_kernel_is_silent(tmp_path):
    root = make_tree(tmp_path, {"kern.py": """
        class Kern:
            n: float

            def batch(self, xs):
                return [x * self.n for x in xs]

            def token(self):
                return ("Kern", self.n)
    """})
    assert run_lint(root, config=CONFIG, passes=PURITY).findings == ()


# -- PURE002: token() coverage -------------------------------------------

def test_pure002_field_missing_from_token(tmp_path):
    root = make_tree(tmp_path, {"kern.py": """
        class Kern:
            n: float
            m: float

            def batch(self, xs):
                return [x * self.n * self.m for x in xs]

            def token(self):
                return ("Kern", self.n)
    """})
    result = run_lint(root, config=CONFIG, passes=PURITY)
    assert rules_of(result) == ["PURE002"]
    assert "'m'" in result.findings[0].message


def test_pure002_mutable_module_state_on_kernel_path(tmp_path):
    root = make_tree(tmp_path, {"kern.py": """
        TABLE = {"k": 2.0}

        class Kern:
            n: float

            def batch(self, xs):
                return [x * self.n * TABLE["k"] for x in xs]

            def token(self):
                return ("Kern", self.n)
    """})
    result = run_lint(root, config=CONFIG, passes=PURITY)
    assert rules_of(result) == ["PURE002"]
    assert "kern.TABLE" in result.findings[0].message


def test_pure002_immutable_module_binding_is_fine(tmp_path):
    root = make_tree(tmp_path, {"kern.py": """
        SCALE = 2.0
        PAIRS = (("a", 1.0),)

        class Kern:
            n: float

            def batch(self, xs):
                return [x * self.n * SCALE + PAIRS[0][1] for x in xs]

            def token(self):
                return ("Kern", self.n)
    """})
    assert run_lint(root, config=CONFIG, passes=PURITY).findings == ()


# -- PURE003: cached bodies must not write shared state ------------------

def test_pure003_traced_function_writes_module_state(tmp_path):
    root = make_tree(tmp_path, {"mod.py": """
        _CACHE = {}

        def traced(fn):
            return fn

        @traced
        def slow(x):
            _CACHE[x] = x
            return x
    """})
    result = run_lint(root, config=CONFIG, passes=PURITY)
    assert rules_of(result) == ["PURE003"]
    assert "slow()" in result.findings[0].message


# -- CONC001: worker-side module-state writes ----------------------------

def test_conc001_worker_write_flagged(tmp_path):
    root = make_tree(tmp_path, {"work.py": """
        _TOTALS = {"n": 0}

        def _run_chunk(kernel, chunk):
            _TOTALS["n"] = _TOTALS["n"] + 1
            return chunk
    """})
    result = run_lint(root, config=CONFIG, passes=CONCURRENCY)
    assert rules_of(result) == ["CONC001"]
    assert "work._TOTALS" in result.findings[0].message


def test_conc001_worker_scope_reset_is_sanctioned(tmp_path):
    root = make_tree(tmp_path, {"work.py": """
        _TOTALS = {"n": 0}

        class Scope:
            def __enter__(self):
                _TOTALS["n"] = 0
                return self

            def __exit__(self, *exc):
                return False

        def _run_chunk(kernel, chunk):
            with Scope():
                return chunk
    """})
    assert run_lint(root, config=CONFIG, passes=CONCURRENCY).findings == ()


# -- CONC002: per-metric lock discipline ---------------------------------

def test_conc002_unlocked_write_flagged_locked_and_setstate_exempt(tmp_path):
    root = make_tree(tmp_path, {"metrics.py": """
        import threading

        class Counter:
            def __init__(self):
                self._lock = threading.Lock()
                self.count = 0

            def bump(self):
                self.count += 1

            def safe_bump(self):
                with self._lock:
                    self.count += 1

            def __setstate__(self, state):
                self.count = state["count"]
                self._lock = threading.Lock()
    """})
    result = run_lint(root, config=CONFIG, passes=CONCURRENCY)
    assert rules_of(result) == ["CONC002"]
    assert "Counter.bump()" in result.findings[0].message


def test_conc002_ignores_classes_without_lock(tmp_path):
    root = make_tree(tmp_path, {"metrics.py": """
        class Plain:
            def __init__(self):
                self.count = 0

            def bump(self):
                self.count += 1
    """})
    assert run_lint(root, config=CONFIG, passes=CONCURRENCY).findings == ()


# -- CONC003: unpicklable pool submissions -------------------------------

def test_conc003_lambda_and_nested_submissions(tmp_path):
    root = make_tree(tmp_path, {"pool.py": """
        def dispatch(pool, xs):
            pool.submit(lambda: 1)

            def local():
                return 2

            pool.submit(local)
            pool.submit(dispatch, xs)
    """})
    result = run_lint(root, config=CONFIG, passes=CONCURRENCY)
    assert rules_of(result) == ["CONC003", "CONC003"]
    details = " ".join(f.message for f in result.findings)
    assert "lambda" in details and "local" in details


# -- seeded mutations on the real tree -----------------------------------

def _mutated_project(rel: str, transform) -> LintProject:
    """The real package with one module's source rewritten."""
    project = load_project(default_root())
    modules = []
    for module in project.modules:
        if module.rel == rel:
            source = transform(module.source)
            assert source != module.source, "mutation did not apply"
            per_line, file_wide = _suppressions(source)
            module = LintModule(
                path=module.path, rel=module.rel, name=module.name,
                source=source, tree=ast.parse(source),
                line_suppressions=per_line, file_suppressions=file_wide)
        modules.append(module)
    return LintProject(root=project.root, repo_root=project.repo_root,
                       modules=tuple(modules))


def test_real_tree_is_clean_for_dataflow_rules():
    project = load_project(default_root())
    config = LintConfig()
    findings = [*KernelPurityPass().run(project, config),
                *ConcurrencyPass().run(project, config)]
    assert findings == []


def test_seeded_token_field_removal_is_detected():
    # Drop cost_per_cm2 from Eq4SdKernel.token(): the memo cache would
    # silently conflate kernels that differ only in wafer cost.
    project = _mutated_project(
        "engine/kernels.py",
        lambda src: src.replace(
            "                _part(self.yield_fraction), "
            "_part(self.cost_per_cm2))",
            "                _part(self.yield_fraction))"))
    findings = list(KernelPurityPass().run(project, LintConfig()))
    hits = [f for f in findings
            if f.rule == "PURE002" and "cost_per_cm2" in f.message]
    assert hits, [f.message for f in findings]


def test_seeded_worker_global_write_is_detected():
    # Accumulate chunk indices in module state on the worker side: the
    # fork boundary would make the parent's view silently stale.
    marker = '"""Worker-side entry: evaluate one grid chunk ' \
             '(module-level → picklable)."""'
    project = _mutated_project(
        "engine/parallel.py",
        lambda src: src.replace(
            marker, marker + "\n    _CHUNK_LOG.append(index)"
        ) + "\n_CHUNK_LOG: list = []\n")
    findings = list(ConcurrencyPass().run(project, LintConfig()))
    hits = [f for f in findings
            if f.rule == "CONC001" and "_CHUNK_LOG" in f.message]
    assert hits, [f.message for f in findings]
