"""Eq.-(6) design-cost model tests."""

import numpy as np
import pytest

from repro.cost import DesignCostModel, PAPER_DESIGN_COST_MODEL
from repro.errors import DomainError


class TestPaperConstants:
    def test_published_values(self):
        m = PAPER_DESIGN_COST_MODEL
        assert (m.a0, m.p1, m.p2, m.sd0) == (1000.0, 1.0, 1.2, 100.0)

    def test_figure4_workload_magnitude(self):
        # N_tr=10M at sd=200: 1000*1e7/100^1.2 ~ $4e7 — design-team scale.
        cost = PAPER_DESIGN_COST_MODEL.cost(1e7, 200)
        assert 3e7 < cost < 5e7

    def test_closed_form(self):
        m = PAPER_DESIGN_COST_MODEL
        assert m.cost(1e7, 200) == pytest.approx(1000.0 * 1e7 / 100**1.2)


class TestDomain:
    def test_sd_at_bound_rejected(self):
        with pytest.raises(DomainError, match="full-custom bound"):
            PAPER_DESIGN_COST_MODEL.cost(1e7, 100.0)

    def test_sd_below_bound_rejected(self):
        with pytest.raises(DomainError):
            PAPER_DESIGN_COST_MODEL.cost(1e7, 50.0)

    def test_array_with_bad_element_rejected(self):
        with pytest.raises(DomainError):
            PAPER_DESIGN_COST_MODEL.cost(1e7, np.array([150.0, 90.0]))

    def test_margin_positive(self):
        assert PAPER_DESIGN_COST_MODEL.margin(150) == pytest.approx(50.0)

    def test_constructor_validates(self):
        with pytest.raises(DomainError):
            DesignCostModel(a0=-1.0)
        with pytest.raises(DomainError):
            DesignCostModel(p2=0.0)


class TestShape:
    def test_diverges_towards_bound(self):
        m = PAPER_DESIGN_COST_MODEL
        assert m.cost(1e7, 101) > 100 * m.cost(1e7, 500)

    def test_monotone_decreasing_in_sd(self):
        m = PAPER_DESIGN_COST_MODEL
        sd = np.linspace(110, 1000, 50)
        costs = m.cost(1e7, sd)
        assert np.all(np.diff(costs) < 0)

    def test_linear_in_n_tr_with_p1_one(self):
        m = PAPER_DESIGN_COST_MODEL
        assert m.cost(2e7, 300) == pytest.approx(2 * m.cost(1e7, 300))

    def test_p1_exponent_respected(self):
        m = DesignCostModel(p1=0.5)
        assert m.cost(4e6, 300) == pytest.approx(2 * m.cost(1e6, 300))

    def test_p2_exponent_respected(self):
        m = DesignCostModel(p2=2.0)
        # margin 100 -> 200 halves... cost scales (1/2)^2.
        assert m.cost(1e7, 300) == pytest.approx(m.cost(1e7, 200) / 4)


class TestMarginalCost:
    def test_always_negative(self):
        m = PAPER_DESIGN_COST_MODEL
        for sd in (110, 200, 500, 900):
            assert m.marginal_cost_wrt_sd(1e7, sd) < 0

    def test_matches_finite_difference(self):
        m = PAPER_DESIGN_COST_MODEL
        sd, h = 300.0, 1e-4
        fd = (m.cost(1e7, sd + h) - m.cost(1e7, sd - h)) / (2 * h)
        assert m.marginal_cost_wrt_sd(1e7, sd) == pytest.approx(fd, rel=1e-6)


class TestBudgetInversion:
    def test_round_trip(self):
        m = PAPER_DESIGN_COST_MODEL
        sd = m.sd_for_budget(1e7, 4e7)
        assert m.cost(1e7, sd) == pytest.approx(4e7, rel=1e-12)

    def test_bigger_budget_denser_design(self):
        m = PAPER_DESIGN_COST_MODEL
        assert m.sd_for_budget(1e7, 1e8) < m.sd_for_budget(1e7, 1e7)

    def test_result_always_above_bound(self):
        m = PAPER_DESIGN_COST_MODEL
        assert m.sd_for_budget(1e7, 1e12) > m.sd0
