"""Wafer cost model tests (the Cm_sq(A_w, λ, N_w) of eq. 7)."""

import pytest

from repro.errors import DomainError
from repro.wafer import (
    DEFAULT_WAFER_COST_MODEL,
    WAFER_150MM,
    WAFER_200MM,
    WAFER_300MM,
    WaferCostModel,
)


class TestAnchor:
    def test_paper_anchor_8_dollars(self):
        # Mature, asymptotic-volume, 200 mm, 0.18 um -> the paper's 8 $/cm^2.
        cost = DEFAULT_WAFER_COST_MODEL.cost_per_cm2(0.18)
        assert cost == pytest.approx(8.0, rel=0.01)

    def test_wafer_cost_is_area_times_rate(self):
        model = DEFAULT_WAFER_COST_MODEL
        assert model.wafer_cost(0.18) == pytest.approx(
            model.cost_per_cm2(0.18) * WAFER_200MM.area_cm2)


class TestFeatureFactor:
    def test_unity_at_reference(self):
        assert DEFAULT_WAFER_COST_MODEL.feature_factor(0.18) == pytest.approx(1.0)

    def test_shrink_costs_more(self):
        m = DEFAULT_WAFER_COST_MODEL
        assert m.feature_factor(0.13) > 1.0
        assert m.feature_factor(0.35) < 1.0

    def test_monotone_decreasing_in_feature(self):
        m = DEFAULT_WAFER_COST_MODEL
        factors = [m.feature_factor(f) for f in (0.07, 0.13, 0.18, 0.25, 0.5)]
        assert factors == sorted(factors, reverse=True)

    def test_rejects_zero_feature(self):
        with pytest.raises(DomainError):
            DEFAULT_WAFER_COST_MODEL.feature_factor(0.0)


class TestWaferFactor:
    def test_unity_at_reference_wafer(self):
        assert DEFAULT_WAFER_COST_MODEL.wafer_factor(WAFER_200MM) == pytest.approx(1.0)

    def test_bigger_wafer_cheaper_per_cm2(self):
        m = DEFAULT_WAFER_COST_MODEL
        assert m.wafer_factor(WAFER_300MM) < 1.0 < m.wafer_factor(WAFER_150MM)


class TestVolumeFactor:
    def test_pilot_run_overhead(self):
        m = DEFAULT_WAFER_COST_MODEL
        assert m.volume_factor(1) == pytest.approx(1 + m.volume_overhead, rel=0.01)

    def test_asymptote_is_unity(self):
        assert DEFAULT_WAFER_COST_MODEL.volume_factor(1e12) == pytest.approx(1.0, abs=1e-6)

    def test_monotone_decreasing(self):
        m = DEFAULT_WAFER_COST_MODEL
        factors = [float(m.volume_factor(n)) for n in (10, 1e3, 1e4, 1e6)]
        assert factors == sorted(factors, reverse=True)

    def test_half_amortised_at_scale(self):
        m = WaferCostModel(volume_overhead=1.0, volume_scale=1000.0)
        assert m.volume_factor(1000) == pytest.approx(1.5)


class TestMaturityFactor:
    def test_mature_is_unity(self):
        assert DEFAULT_WAFER_COST_MODEL.maturity_factor(1.0) == pytest.approx(1.0)

    def test_immature_overhead(self):
        m = DEFAULT_WAFER_COST_MODEL
        assert m.maturity_factor(0.01) > m.maturity_factor(0.99)

    def test_rejects_zero_maturity(self):
        with pytest.raises(DomainError):
            DEFAULT_WAFER_COST_MODEL.maturity_factor(0.0)

    def test_rejects_above_one(self):
        with pytest.raises(DomainError):
            DEFAULT_WAFER_COST_MODEL.maturity_factor(1.5)


class TestComposite:
    def test_factors_multiply(self):
        m = DEFAULT_WAFER_COST_MODEL
        cost = m.cost_per_cm2(0.13, WAFER_300MM, n_wafers=5000, maturity=0.5)
        expected = (m.base_cost_per_cm2 * m.feature_factor(0.13)
                    * m.wafer_factor(WAFER_300MM) * m.volume_factor(5000)
                    * m.maturity_factor(0.5))
        assert cost == pytest.approx(float(expected))

    def test_nanometer_node_much_costlier(self):
        # The paper's "highly unlikely" flat-C_sq assumption quantified:
        # 35 nm silicon costs several x the 180 nm anchor.
        m = DEFAULT_WAFER_COST_MODEL
        assert m.cost_per_cm2(0.035) / m.cost_per_cm2(0.18) > 3.0

    def test_custom_exponent_zero_flattens(self):
        flat = WaferCostModel(feature_exponent=0.0)
        assert flat.cost_per_cm2(0.035) == pytest.approx(flat.cost_per_cm2(0.18))
