"""§2.5 utilization (u) and FPGA-vs-ASIC crossover tests."""

import pytest

from repro.cost import UtilizedDevice, effective_yield, fpga_vs_asic_crossover
from repro.cost.design import DesignCostModel
from repro.errors import DomainError


class TestEffectiveYield:
    def test_product(self):
        assert effective_yield(0.8, 0.5) == pytest.approx(0.4)

    def test_full_utilization_identity(self):
        assert effective_yield(0.73, 1.0) == pytest.approx(0.73)

    def test_validates_both(self):
        with pytest.raises(DomainError):
            effective_yield(1.2, 0.5)
        with pytest.raises(DomainError):
            effective_yield(0.8, 0.0)


def make_fpga(**overrides):
    base = dict(name="FPGA", sd=600.0, utilization=0.3,
                design_cost_usd=0.0, mask_cost_usd=0.0)
    base.update(overrides)
    return UtilizedDevice(**base)


class TestUtilizedDevice:
    def test_validation(self):
        with pytest.raises(DomainError):
            make_fpga(utilization=1.5)
        with pytest.raises(ValueError):
            make_fpga(design_cost_usd=-1.0)

    def test_cost_inverse_in_utilization(self):
        lo = make_fpga(utilization=0.25)
        hi = make_fpga(utilization=0.5)
        args = (1e7, 0.18, 1e4, 0.8, 8.0)
        assert lo.cost_per_used_transistor(*args) == pytest.approx(
            2 * hi.cost_per_used_transistor(*args))

    def test_zero_dev_cost_volume_independent(self):
        fpga = make_fpga()
        a = fpga.cost_per_used_transistor(1e7, 0.18, 100, 0.8, 8.0)
        b = fpga.cost_per_used_transistor(1e7, 0.18, 1e6, 0.8, 8.0)
        assert a == pytest.approx(b)

    def test_dev_cost_amortises(self):
        asic = make_fpga(name="ASIC", sd=300.0, utilization=1.0,
                         design_cost_usd=4e7)
        a = asic.cost_per_used_transistor(1e7, 0.18, 100, 0.8, 8.0)
        b = asic.cost_per_used_transistor(1e7, 0.18, 1e6, 0.8, 8.0)
        assert a > b


class TestCrossover:
    FPGA = dict(n_transistors=1e7, feature_um=0.18, yield_fraction=0.8, cost_per_cm2=8.0)

    def test_crossover_exists_for_typical_fpga(self):
        nw = fpga_vs_asic_crossover(fpga=make_fpga(), asic_sd=300.0, **self.FPGA)
        assert nw is not None
        assert 1 < nw < 1e7

    def test_fpga_wins_below_asic_wins_above(self):
        fpga = make_fpga()
        nw = fpga_vs_asic_crossover(fpga=fpga, asic_sd=300.0, **self.FPGA)
        model = DesignCostModel()
        asic = UtilizedDevice("ASIC", 300.0, 1.0,
                              design_cost_usd=model.cost(1e7, 300.0))
        below = 0.5 * nw
        above = 2.0 * nw
        args_lo = (1e7, 0.18, below, 0.8, 8.0)
        args_hi = (1e7, 0.18, above, 0.8, 8.0)
        assert fpga.cost_per_used_transistor(*args_lo) < asic.cost_per_used_transistor(*args_lo)
        assert fpga.cost_per_used_transistor(*args_hi) > asic.cost_per_used_transistor(*args_hi)

    def test_cost_balance_at_crossover(self):
        fpga = make_fpga()
        nw = fpga_vs_asic_crossover(fpga=fpga, asic_sd=300.0, **self.FPGA)
        model = DesignCostModel()
        asic = UtilizedDevice("ASIC", 300.0, 1.0,
                              design_cost_usd=model.cost(1e7, 300.0))
        args = (1e7, 0.18, nw, 0.8, 8.0)
        assert asic.cost_per_used_transistor(*args) == pytest.approx(
            fpga.cost_per_used_transistor(*args), rel=1e-6)

    def test_no_crossover_when_fpga_dense_and_utilized(self):
        # A (hypothetical) fully-utilized dense "FPGA" with zero NRE is
        # never beaten.
        super_fpga = make_fpga(sd=150.0, utilization=1.0)
        nw = fpga_vs_asic_crossover(fpga=super_fpga, asic_sd=300.0,
                                    max_wafers=1e6, **self.FPGA)
        assert nw is None

    def test_terrible_fpga_loses_almost_immediately(self):
        # Even a pilot-scale run beats a 1%-utilized, 5000-lambda^2
        # fabric; only the single-digit-wafer regime keeps it alive
        # (the ASIC's $40M NRE amortised over ~1 wafer still dominates).
        bad_fpga = make_fpga(sd=5000.0, utilization=0.01)
        nw = fpga_vs_asic_crossover(fpga=bad_fpga, asic_sd=300.0, **self.FPGA)
        assert nw is not None
        assert nw < 10
