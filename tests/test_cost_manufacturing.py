"""Eq. (1)/(3) manufacturing-cost tests."""

import numpy as np
import pytest

from repro.cost import (
    die_cost,
    good_transistors_per_wafer,
    sd_for_transistor_cost,
    transistor_cost,
    transistor_cost_wafer_view,
)
from repro.errors import DomainError
from repro.wafer import DEFAULT_WAFER_COST_MODEL, WAFER_200MM, gross_die_area_ratio


class TestEquation3:
    def test_paper_anchor_value(self):
        # C_sq=8, lambda=0.18um, sd=300, Y=0.8:
        # 8 * 3.24e-10 * 300 / 0.8 = 9.72e-7 $/tx.
        assert transistor_cost(8.0, 0.18, 300, 0.8) == pytest.approx(9.72e-7)

    def test_linear_in_cost_per_cm2(self):
        assert transistor_cost(16.0, 0.18, 300, 0.8) == pytest.approx(
            2 * transistor_cost(8.0, 0.18, 300, 0.8))

    def test_linear_in_sd(self):
        assert transistor_cost(8.0, 0.18, 600, 0.8) == pytest.approx(
            2 * transistor_cost(8.0, 0.18, 300, 0.8))

    def test_quadratic_in_feature(self):
        assert transistor_cost(8.0, 0.36, 300, 0.8) == pytest.approx(
            4 * transistor_cost(8.0, 0.18, 300, 0.8))

    def test_inverse_in_yield(self):
        assert transistor_cost(8.0, 0.18, 300, 0.4) == pytest.approx(
            2 * transistor_cost(8.0, 0.18, 300, 0.8))

    def test_rejects_yield_above_one(self):
        with pytest.raises(DomainError):
            transistor_cost(8.0, 0.18, 300, 1.1)

    def test_rejects_zero_yield(self):
        with pytest.raises(DomainError):
            transistor_cost(8.0, 0.18, 300, 0.0)

    def test_array_sweep(self):
        sd = np.array([100.0, 200.0, 400.0])
        out = transistor_cost(8.0, 0.18, sd, 0.8)
        assert out.shape == (3,)
        assert np.all(np.diff(out) > 0)


class TestEquation1:
    def test_direct_formula(self):
        # $4000 wafer, 100 dice, 10M tx, Y=0.5: 4000/(1e7*100*0.5) = 8e-6.
        c = transistor_cost_wafer_view(4000.0, 1e7, 100, 0.5)
        assert c == pytest.approx(8e-6)

    def test_agrees_with_eq3_when_nch_is_area_ratio(self):
        # Eq (1) == eq (3) when N_ch prices usable silicon exactly.
        cm_sq = 8.0
        lam, sd, y, n_tr = 0.25, 300.0, 0.8, 1e7
        die_area = n_tr * sd * (lam * 1e-4) ** 2
        n_ch = WAFER_200MM.usable_area_cm2 / die_area
        wafer_cost = cm_sq * WAFER_200MM.usable_area_cm2
        eq1 = transistor_cost_wafer_view(wafer_cost, n_tr, n_ch, y)
        eq3 = transistor_cost(cm_sq, lam, sd, y)
        assert eq1 == pytest.approx(eq3, rel=1e-12)

    def test_eq3_is_optimistic_lower_bound(self):
        # With realistic (edge-lossy) die counts, eq (1) >= eq (3):
        # the simplification direction §2.5 promises.
        from repro.wafer import gross_die_exact
        cm_sq = 8.0
        lam, sd, y, n_tr = 0.25, 500.0, 0.8, 1e7
        die_area = n_tr * sd * (lam * 1e-4) ** 2
        n_ch = gross_die_exact(WAFER_200MM, die_area)
        wafer_cost = cm_sq * WAFER_200MM.area_cm2
        eq1 = transistor_cost_wafer_view(wafer_cost, n_tr, n_ch, y)
        eq3 = transistor_cost(cm_sq, lam, sd, y)
        assert eq1 > eq3


class TestDieCost:
    def test_figure3_anchor(self):
        # The paper's affordable die: 3.4 cm^2 at 8 $/cm^2, Y=0.8 -> $34.
        # Build the (sd, N) pair giving exactly 3.4 cm^2 at 180 nm.
        n_tr = 21e6
        sd = 3.4 / (n_tr * (0.18e-4) ** 2)
        assert die_cost(8.0, 0.18, sd, n_tr, 0.8) == pytest.approx(34.0)

    def test_transistor_cost_consistency(self):
        # die cost / N_tr == transistor cost.
        n_tr = 1e7
        per_die = die_cost(8.0, 0.18, 300, n_tr, 0.8)
        per_tx = transistor_cost(8.0, 0.18, 300, 0.8)
        assert per_die / n_tr == pytest.approx(per_tx)


class TestGoodTransistorsPerWafer:
    def test_reciprocal_of_eq3(self):
        # good transistors * cost per transistor == wafer budget.
        area = WAFER_200MM.area_cm2
        n = good_transistors_per_wafer(area, 0.18, 300, 0.8)
        budget = 8.0 * area
        assert n * transistor_cost(8.0, 0.18, 300, 0.8) == pytest.approx(budget)

    def test_denser_harvests_more(self):
        area = WAFER_200MM.area_cm2
        assert good_transistors_per_wafer(area, 0.18, 150, 0.8) > \
            good_transistors_per_wafer(area, 0.18, 300, 0.8)


class TestSdForTransistorCost:
    def test_inverts_eq3(self):
        target = transistor_cost(8.0, 0.18, 300, 0.8)
        assert sd_for_transistor_cost(target, 8.0, 0.18, 0.8) == pytest.approx(300.0)

    def test_budget_scales_linearly(self):
        a = sd_for_transistor_cost(1e-6, 8.0, 0.18, 0.8)
        b = sd_for_transistor_cost(2e-6, 8.0, 0.18, 0.8)
        assert b == pytest.approx(2 * a)
