"""Markdown table renderer tests."""

import pytest

from repro.errors import DomainError
from repro.report import format_markdown


class TestFormatMarkdown:
    def test_structure(self):
        out = format_markdown(["a", "b"], [(1, 2.5)])
        lines = out.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 2.5 |"

    def test_float_spec(self):
        out = format_markdown(["x"], [(3.14159,)], float_spec=".2f")
        assert "3.14" in out

    def test_none_blank(self):
        out = format_markdown(["x", "y"], [(1, None)])
        assert out.splitlines()[2] == "| 1 |  |"

    def test_row_mismatch(self):
        with pytest.raises(DomainError):
            format_markdown(["a"], [(1, 2)])

    def test_empty_headers(self):
        with pytest.raises(DomainError):
            format_markdown([], [])
