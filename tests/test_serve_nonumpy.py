"""The serving layer must answer ``/evaluate`` with NumPy absent.

``repro.serve`` is stdlib-first: a throwaway container that only needs
point costs (or a health probe) should not have to install the numeric
stack. This file rebuilds the same numpy-blocked world as
``test_engine_nonumpy.py`` / ``test_obs_nonumpy.py`` — an import hook
refusing ``numpy`` plus bare path-only ``repro`` package stubs — then
exercises the pure-python scalar fallback end to end over HTTP:
``/evaluate`` serves ``backend: "python"`` values identical to the
``engine.pykernels`` reference, ``/healthz`` stays green, and the
grid routes degrade honestly to 503 instead of lying with garbage.

Every import is lazy so the CI ``no-numpy`` job can run this file on a
stdlib-only interpreter.
"""

import contextlib
import importlib
import json
import math
import sys
import types
import urllib.error
import urllib.request
from pathlib import Path

import pytest

SRC = Path(__file__).resolve().parent.parent / "src"

BASE = {"n_transistors": 1e7, "feature_um": 0.18, "sd": 300.0,
        "n_wafers": 5_000.0, "yield_fraction": 0.4, "cost_per_cm2": 8.0}
BAD = {**BASE, "yield_fraction": -1.0}


class _NumpyBlocker:
    """Meta-path hook that refuses every ``numpy`` import."""

    def find_spec(self, name, path=None, target=None):
        if name == "numpy" or name.startswith("numpy."):
            raise ImportError(f"{name} is blocked for this test")
        return None


@contextlib.contextmanager
def _serve_without_numpy():
    """Yield ``repro.serve`` in a world where ``import numpy`` fails.

    The world must wrap the *calls*, not just the import: the service
    probes for NumPy lazily, so tearing the blocker down before a
    request would silently flip it back onto the array backend.
    """
    blocker = _NumpyBlocker()
    hidden = {name: sys.modules.pop(name) for name in list(sys.modules)
              if name.split(".")[0] in ("numpy", "repro")}
    sys.meta_path.insert(0, blocker)
    repro_stub = types.ModuleType("repro")
    repro_stub.__path__ = [str(SRC / "repro")]
    report_stub = types.ModuleType("repro.report")
    report_stub.__path__ = [str(SRC / "repro" / "report")]
    sys.modules["repro"] = repro_stub
    sys.modules["repro.report"] = report_stub
    try:
        yield importlib.import_module("repro.serve")
    finally:
        sys.meta_path.remove(blocker)
        for name in list(sys.modules):
            if name.split(".")[0] == "repro":
                del sys.modules[name]
        sys.modules.update(hidden)


def _reference_cost(serve):
    """The scalar kernels' answer for ``BASE``, computed directly."""
    pykernels = serve.service._pykernels()
    constants = importlib.import_module("repro.constants")
    cost = pykernels.total_transistor_cost(
        BASE["sd"], BASE["n_transistors"], BASE["feature_um"],
        BASE["n_wafers"], BASE["yield_fraction"], BASE["cost_per_cm2"],
        wafer_area_cm2=math.pi * 10.0 ** 2,
        a0=constants.EQ6_A0, p1=constants.EQ6_P1, p2=constants.EQ6_P2,
        sd0=constants.EQ6_SD0)
    area = pykernels.area_from_sd(
        BASE["sd"], BASE["n_transistors"], BASE["feature_um"])
    return cost, area


def _post(url, body_dict):
    request = urllib.request.Request(
        url, data=json.dumps(body_dict).encode(), method="POST",
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=10) as reply:
        return json.loads(reply.read())


def test_import_and_service_fall_back_to_python():
    with _serve_without_numpy() as serve:
        assert "numpy" not in sys.modules
        with serve.CostService() as service:
            assert service.numpy_backend is False
            request = serve.EvaluateRequest.from_dict({"scenario": BASE})
            response = service.evaluate(request)
            assert response.backend == "python"
            cost, area = _reference_cost(serve)
            point = response.results[0]
            assert point.cost_per_transistor_usd == cost
            assert point.area_cm2 == area
            assert point.ok


def test_mask_policy_diagnostics_without_numpy():
    with _serve_without_numpy() as serve:
        with serve.CostService() as service:
            request = serve.EvaluateRequest.from_dict(
                {"scenarios": [BASE, BAD], "policy": "mask"})
            response = service.evaluate(request)
            assert [p.ok for p in response.results] == [True, False]
            assert len(response.diagnostics) == 1
            assert response.diagnostics[0].error_type == "DomainError"


def test_raise_policy_maps_to_domain_error_without_numpy():
    with _serve_without_numpy() as serve:
        errors = importlib.import_module("repro.errors")
        with serve.CostService() as service:
            request = serve.EvaluateRequest.from_dict({"scenario": BAD})
            with pytest.raises(errors.DomainError, match="yield"):
                service.evaluate(request)


def test_http_evaluate_and_healthz_without_numpy():
    with _serve_without_numpy() as serve:
        with serve.start_server() as handle:
            body = _post(f"{handle.url}/evaluate", {"scenario": BASE})
            assert body["backend"] == "python"
            cost, _ = _reference_cost(serve)
            assert body["results"][0]["cost_per_transistor_usd"] == cost

            with urllib.request.urlopen(f"{handle.url}/healthz",
                                        timeout=10) as reply:
                assert reply.status == 200
                assert json.loads(reply.read())["status"] == "ok"

            with urllib.request.urlopen(f"{handle.url}/metrics",
                                        timeout=10) as reply:
                assert "serve_backend_numpy 0" in reply.read().decode()


def test_grid_routes_degrade_to_503_without_numpy():
    with _serve_without_numpy() as serve:
        with serve.start_server() as handle:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _post(f"{handle.url}/sweep", {"scenario": BASE})
            assert excinfo.value.code == 503
            body = json.loads(excinfo.value.read())
            assert body["code"] == "ExecutionError"
            assert "numpy" in body["message"].lower()
