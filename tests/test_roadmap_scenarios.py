"""Roadmap-scenario tests — relaxing Figure 3's optimism."""

import pytest

from repro.data import load_itrs_1999
from repro.errors import DomainError
from repro.roadmap import SCENARIO_NAMES, scenario, scenario_series
from repro.roadmap.constant_cost import constant_cost_series


@pytest.fixture(scope="module")
def nodes():
    return load_itrs_1999()


class TestScenarioFactory:
    def test_three_scenarios_registered(self):
        assert set(SCENARIO_NAMES) == {"paper-optimistic", "realistic", "pessimistic"}

    def test_unknown_name_rejected(self):
        with pytest.raises(DomainError, match="unknown scenario"):
            scenario("rosy")

    def test_paper_scenario_is_flat(self, nodes):
        s = scenario("paper-optimistic")
        assert s.cost_per_cm2(nodes[0]) == 8.0
        assert s.cost_per_cm2(nodes[-1]) == 8.0
        assert s.yield_fraction(nodes[-1]) == 0.8

    def test_realistic_cm_sq_grows(self, nodes):
        s = scenario("realistic")
        assert s.cost_per_cm2(nodes[-1]) > 2 * s.cost_per_cm2(nodes[0])

    def test_realistic_yield_in_domain(self, nodes):
        s = scenario("realistic")
        for node in nodes:
            assert 0 < s.yield_fraction(node) <= 1

    def test_pessimistic_worse_than_realistic_per_node(self, nodes):
        realistic = scenario("realistic")
        pessimistic = scenario("pessimistic")
        for node in nodes:
            assert pessimistic.cost_per_cm2(node) >= realistic.cost_per_cm2(node)
            assert pessimistic.yield_fraction(node) <= realistic.yield_fraction(node)


class TestScenarioSeries:
    def test_paper_scenario_matches_figure3(self, nodes):
        via_scenario = scenario_series(nodes, scenario("paper-optimistic"))
        direct = constant_cost_series(nodes)
        for a, b in zip(via_scenario, direct):
            assert a.ratio == pytest.approx(b.ratio, rel=1e-9)

    def test_relaxing_optimism_worsens_contradiction(self, nodes):
        # The paper's §2.2.3 sentence, asserted: every relaxation moves
        # the ratio UP at every post-anchor node.
        optimistic = scenario_series(nodes, scenario("paper-optimistic"))
        realistic = scenario_series(nodes, scenario("realistic"))
        pessimistic = scenario_series(nodes, scenario("pessimistic"))
        for o, r, p in zip(optimistic[1:], realistic[1:], pessimistic[1:]):
            assert r.ratio > o.ratio
            assert p.ratio > r.ratio

    def test_realistic_contradiction_explodes(self, nodes):
        realistic = scenario_series(nodes, scenario("realistic"))
        # By the horizon the gap is not ~2x but orders of magnitude.
        assert realistic[-1].ratio > 20

    def test_all_series_monotone(self, nodes):
        for name in SCENARIO_NAMES:
            ratios = [p.ratio for p in scenario_series(nodes, scenario(name))]
            assert all(a < b for a, b in zip(ratios, ratios[1:])), name
