"""Execute the doctests embedded in module/class docstrings.

Keeps every usage example in the documentation honest — a drifting API
breaks the build, not the reader.
"""

import doctest
import importlib

import pytest

MODULES_WITH_EXAMPLES = [
    "repro",
    "repro.data.registry",
    "repro.yieldmodels.models",
    "repro.roadmap.scenarios",
]


@pytest.mark.parametrize("module_name", MODULES_WITH_EXAMPLES)
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, optionflags=doctest.ELLIPSIS, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module_name}"
    assert results.attempted > 0, f"no doctests found in {module_name} (stale list?)"
