"""Quarantine-loading tests: lenient CSV import keeps the good rows
and reports the bad ones with line/column/cause attribution.
"""

import pytest

from repro.data import DesignRegistry, load_itrs_1999, load_table_a1
from repro.data.io import (
    designs_from_csv,
    designs_to_csv,
    roadmap_from_csv,
    roadmap_to_csv,
)
from repro.errors import DataError
from repro.robust import QuarantineReport


def _design_csv_with_faults() -> str:
    """Round-trip the shipped table, then corrupt three rows."""
    import csv
    import io

    rows = list(csv.reader(io.StringIO(designs_to_csv(load_table_a1()))))
    rows[2][5] = "not-a-number"   # die_area_cm2 on CSV line 3
    rows[5].append("extra-cell")  # wrong cell count on CSV line 6
    rows[9][4] = "199x"           # year on CSV line 10
    out = io.StringIO()
    csv.writer(out, lineterminator="\n").writerows(rows)
    return out.getvalue()


def test_strict_mode_raises_on_first_bad_row():
    with pytest.raises(DataError, match="line 3"):
        designs_from_csv(_design_csv_with_faults())


def test_lenient_mode_loads_good_rows_and_quarantines_bad():
    report = QuarantineReport()
    n_total = len(load_table_a1())
    records = designs_from_csv(_design_csv_with_faults(), quarantine=report)
    assert len(records) == n_total - 3
    assert len(report) == 3
    assert report.n_loaded == n_total - 3
    assert bool(report)
    assert {r.line_no for r in report} == {3, 6, 10}


def test_quarantined_rows_attribute_the_column():
    report = QuarantineReport()
    designs_from_csv(_design_csv_with_faults(), quarantine=report)
    by_line = {r.line_no: r for r in report}
    assert by_line[3].column == "die_area_cm2"
    assert by_line[10].column == "year"
    # the wrong-cell-count row is a row-level failure: no column
    assert by_line[6].column == ""
    assert "expected 16 cells" in by_line[6].cause
    assert all(r.error_type == "DataError" for r in report)


def test_quarantine_summary_is_readable():
    report = QuarantineReport()
    designs_from_csv(_design_csv_with_faults(), quarantine=report)
    text = report.summary()
    assert "3 row(s) rejected" in text
    assert "line 3" in text
    assert "die_area_cm2" in text
    # causes must not duplicate the line/column prefix
    assert text.count("line 3") == 1


def test_quarantine_clean_summary():
    report = QuarantineReport()
    designs_from_csv(designs_to_csv(load_table_a1()), quarantine=report)
    assert not report
    assert report.summary() == "quarantine: clean (0 rows rejected)"


def test_quarantine_keeps_raw_cells_for_repair():
    report = QuarantineReport()
    designs_from_csv(_design_csv_with_faults(), quarantine=report)
    bad = next(iter(report))
    assert bad.raw  # the original cells survive for repair-and-reimport
    assert "not-a-number" in bad.raw


def test_header_failure_raises_even_in_lenient_mode():
    report = QuarantineReport()
    with pytest.raises(DataError, match="header"):
        designs_from_csv("a,b,c\n1,2,3\n", quarantine=report)
    with pytest.raises(DataError, match="empty"):
        designs_from_csv("", quarantine=report)


def test_roadmap_lenient_mode():
    text = roadmap_to_csv(load_itrs_1999())
    lines = text.splitlines()
    parts = lines[1].split(",")
    parts[1] = "thin"  # feature_nm
    lines[1] = ",".join(parts)
    report = QuarantineReport()
    nodes = roadmap_from_csv("\n".join(lines) + "\n", quarantine=report)
    assert len(nodes) == len(load_itrs_1999()) - 1
    assert len(report) == 1
    assert report.rows[0].column == "feature_nm"
    with pytest.raises(DataError, match="feature_nm"):
        roadmap_from_csv("\n".join(lines) + "\n")


def test_registry_from_csv_lenient(tmp_path):
    path = tmp_path / "designs.csv"
    path.write_text(_design_csv_with_faults())
    report = QuarantineReport()
    registry = DesignRegistry.from_csv(path, quarantine=report)
    assert len(registry) == len(load_table_a1()) - 3
    assert report.source == str(path)
    assert len(report) == 3


def test_registry_from_csv_strict_raises(tmp_path):
    path = tmp_path / "designs.csv"
    path.write_text(_design_csv_with_faults())
    with pytest.raises(DataError):
        DesignRegistry.from_csv(path)
