"""Eq.-(7) generalized-model tests."""

import numpy as np
import pytest

from repro.cost import DEFAULT_GENERALIZED_MODEL, GeneralizedCostModel, TestCostModel
from repro.errors import DomainError
from repro.yieldmodels import CompositeYield, PoissonYield


class TestLiveDependencies:
    def test_cm_sq_responds_to_volume(self):
        m = DEFAULT_GENERALIZED_MODEL
        assert m.cm_sq(0.18, 100) > m.cm_sq(0.18, 1e6)

    def test_cm_sq_responds_to_node(self):
        m = DEFAULT_GENERALIZED_MODEL
        assert m.cm_sq(0.09, 1e6) > m.cm_sq(0.18, 1e6)

    def test_yield_responds_to_design_density(self):
        m = DEFAULT_GENERALIZED_MODEL
        y_dense = m.yield_at(1e7, 120, 0.18, 1e5)
        y_sparse = m.yield_at(1e7, 600, 0.18, 1e5)
        assert 0 < y_dense <= 1 and 0 < y_sparse <= 1
        assert y_dense != y_sparse

    def test_cd_sq_matches_eq5(self):
        m = GeneralizedCostModel(include_masks=False)
        cd = m.cd_sq(1e7, 300, 0.18, 5000)
        expected = m.design_model.cost(1e7, 300) / (5000 * m.wafer.area_cm2)
        assert cd == pytest.approx(expected)


class TestTransistorCost:
    def test_positive_and_finite(self):
        c = DEFAULT_GENERALIZED_MODEL.transistor_cost(300, 1e7, 0.18, 5000)
        assert np.isfinite(c) and c > 0

    def test_u_curve(self):
        m = DEFAULT_GENERALIZED_MODEL
        sd = np.geomspace(105, 2000, 300)
        c = m.transistor_cost(sd, 1e7, 0.18, 5000)
        i = int(np.argmin(c))
        assert 0 < i < len(sd) - 1

    def test_volume_lowers_cost(self):
        m = DEFAULT_GENERALIZED_MODEL
        assert m.transistor_cost(300, 1e7, 0.18, 1e6) < \
            m.transistor_cost(300, 1e7, 0.18, 1e3)

    def test_immature_process_costlier(self):
        m = DEFAULT_GENERALIZED_MODEL
        assert m.transistor_cost(300, 1e7, 0.18, 5000, maturity=0.2) > \
            m.transistor_cost(300, 1e7, 0.18, 5000, maturity=1.0)

    def test_utilization_divides(self):
        half = GeneralizedCostModel(utilization=0.5)
        full = GeneralizedCostModel(utilization=1.0)
        assert half.transistor_cost(300, 1e7, 0.18, 5000) == pytest.approx(
            2 * full.transistor_cost(300, 1e7, 0.18, 5000))

    def test_statistic_swap_changes_cost(self):
        poisson = GeneralizedCostModel(yield_model=CompositeYield(statistic=PoissonYield()))
        default = DEFAULT_GENERALIZED_MODEL
        c_p = poisson.transistor_cost(300, 1e8, 0.13, 5000)
        c_d = default.transistor_cost(300, 1e8, 0.13, 5000)
        assert c_p > c_d  # Poisson is the pessimistic statistic

    def test_rejects_sd_below_bound(self):
        with pytest.raises(DomainError):
            DEFAULT_GENERALIZED_MODEL.transistor_cost(50, 1e7, 0.18, 5000)


class TestBreakdown:
    def test_components_sum(self):
        m = DEFAULT_GENERALIZED_MODEL
        b = m.breakdown(300, 1e7, 0.18, 5000)
        assert b.total == pytest.approx(m.transistor_cost(300, 1e7, 0.18, 5000), rel=1e-12)

    def test_mask_component_positive_by_default(self):
        b = DEFAULT_GENERALIZED_MODEL.breakdown(300, 1e7, 0.18, 5000)
        assert b.masks > 0

    def test_test_model_optional(self):
        with_test = GeneralizedCostModel(test_model=TestCostModel())
        b = with_test.breakdown(300, 1e7, 0.18, 5000)
        assert b.test > 0
        assert b.total == pytest.approx(
            with_test.transistor_cost(300, 1e7, 0.18, 5000), rel=1e-12)


class TestNanometerChallenge:
    def test_same_design_smaller_node_cheaper_per_transistor(self):
        # Scaling still pays in the model — Moore's law economics — but
        # less than the raw lambda^2 shrink because Cm_sq and defects rise.
        m = DEFAULT_GENERALIZED_MODEL
        c180 = m.transistor_cost(300, 1e7, 0.18, 1e5)
        c90 = m.transistor_cost(300, 1e7, 0.09, 1e5)
        assert c90 < c180
        assert c90 > c180 / 4  # less than the ideal 4x shrink win
