"""Exception-hierarchy contract tests."""

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.DomainError,
            errors.UnitError,
            errors.DataError,
            errors.UnknownRecordError,
            errors.InconsistentRecordError,
            errors.CalibrationError,
            errors.ConvergenceError,
            errors.LayoutError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_domain_error_is_value_error(self):
        # Generic numeric call sites catching ValueError keep working.
        assert issubclass(errors.DomainError, ValueError)

    def test_unit_error_is_value_error(self):
        assert issubclass(errors.UnitError, ValueError)

    def test_unknown_record_is_key_error(self):
        assert issubclass(errors.UnknownRecordError, KeyError)

    def test_inconsistent_record_is_value_error(self):
        assert issubclass(errors.InconsistentRecordError, ValueError)

    def test_convergence_is_runtime_error(self):
        assert issubclass(errors.ConvergenceError, RuntimeError)

    def test_unknown_record_str_is_readable(self):
        # KeyError's default __str__ wraps in quotes; ours should not.
        err = errors.UnknownRecordError("no row 99")
        assert str(err) == "no row 99"

    def test_catching_base_catches_all(self):
        with pytest.raises(errors.ReproError):
            raise errors.LayoutError("bad rect")
