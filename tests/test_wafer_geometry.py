"""Die-per-wafer geometry tests (the N_ch of eq. 1)."""

import pytest

from repro.errors import DomainError
from repro.wafer import (
    WAFER_200MM,
    WAFER_300MM,
    WaferSpec,
    die_dimensions_cm,
    gross_die_area_ratio,
    gross_die_classic,
    gross_die_exact,
    gross_die_per_wafer,
)


class TestDieDimensions:
    def test_square_die(self):
        w, h = die_dimensions_cm(4.0)
        assert w == pytest.approx(2.0)
        assert h == pytest.approx(2.0)

    def test_aspect_ratio(self):
        w, h = die_dimensions_cm(2.0, aspect_ratio=2.0)
        assert w / h == pytest.approx(2.0)
        assert w * h == pytest.approx(2.0)

    def test_rejects_zero_area(self):
        with pytest.raises(DomainError):
            die_dimensions_cm(0.0)


class TestEstimatorOrdering:
    """ratio >= classic >= exact >= 0, with known relative gaps."""

    @pytest.mark.parametrize("area", [0.5, 1.0, 2.0, 3.4])
    def test_ordering(self, area):
        ratio = gross_die_area_ratio(WAFER_200MM, area)
        classic = gross_die_classic(WAFER_200MM, area)
        exact = gross_die_exact(WAFER_200MM, area)
        assert ratio > classic
        assert exact > 0
        # Classic is a good approximation of exact (within ~12%).
        assert classic == pytest.approx(exact, rel=0.12)

    def test_small_die_converges_to_area_ratio(self):
        # Tiny die on a scribe-free wafer: edge losses negligible.
        no_scribe = WaferSpec("ns", 200.0, scribe_mm=0.0)
        area = 0.05
        ratio = gross_die_area_ratio(no_scribe, area)
        exact = gross_die_exact(no_scribe, area)
        assert exact == pytest.approx(ratio, rel=0.06)


class TestExactCount:
    def test_deterministic(self):
        a = gross_die_exact(WAFER_200MM, 1.0)
        b = gross_die_exact(WAFER_200MM, 1.0)
        assert a == b

    def test_monotone_in_die_area(self):
        counts = [gross_die_exact(WAFER_200MM, a) for a in (0.5, 1.0, 2.0, 4.0)]
        assert counts == sorted(counts, reverse=True)

    def test_bigger_wafer_more_dice(self):
        assert gross_die_exact(WAFER_300MM, 1.0) > gross_die_exact(WAFER_200MM, 1.0)

    def test_scribe_lanes_cost_dice(self):
        no_scribe = WaferSpec("ns", 200.0, scribe_mm=0.0)
        wide_scribe = WaferSpec("ws", 200.0, scribe_mm=2.0)
        assert gross_die_exact(no_scribe, 1.0) > gross_die_exact(wide_scribe, 1.0)

    def test_paper_die_on_200mm_magnitude(self):
        # The 3.4 cm^2 constant-cost die: ~70-80 sites on 200 mm.
        n = gross_die_exact(WAFER_200MM, 3.4)
        assert 60 <= n <= 90

    def test_too_large_die_raises(self):
        with pytest.raises(DomainError, match="does not fit"):
            gross_die_exact(WAFER_200MM, 500.0)

    def test_offsets_validated(self):
        with pytest.raises(DomainError):
            gross_die_exact(WAFER_200MM, 1.0, offsets=0)

    def test_more_offsets_never_fewer_dice(self):
        coarse = gross_die_exact(WAFER_200MM, 2.0, offsets=1)
        fine = gross_die_exact(WAFER_200MM, 2.0, offsets=8)
        assert fine >= coarse


class TestDispatch:
    def test_exact_default(self):
        assert gross_die_per_wafer(WAFER_200MM, 1.0) == float(
            gross_die_exact(WAFER_200MM, 1.0))

    def test_method_names(self):
        for method in ("exact", "classic", "ratio"):
            assert gross_die_per_wafer(WAFER_200MM, 1.0, method=method) > 0

    def test_unknown_method(self):
        with pytest.raises(DomainError, match="unknown gross-die method"):
            gross_die_per_wafer(WAFER_200MM, 1.0, method="magic")
