"""DesignRecord / RoadmapNode behaviour tests."""

import pytest

from repro.data.records import DesignRecord, DeviceCategory, Provenance, RoadmapNode
from repro.errors import InconsistentRecordError


def make_record(**overrides):
    """A consistent baseline record (s_d = 300 by construction)."""
    base = dict(
        index=1,
        device="TestCPU",
        vendor="TestCorp",
        category=DeviceCategory.MICROPROCESSOR,
        year=1999,
        die_area_cm2=0.972,          # 10e6 * 300 * (0.18e-4)^2
        feature_um=0.18,
        transistors_total_m=10.0,
        transistors_logic_m=10.0,
        area_logic_cm2=0.972,
        sd_logic=300.0,
    )
    base.update(overrides)
    return DesignRecord(**base)


class TestDerivedQuantities:
    def test_feature_cm(self):
        assert make_record().feature_cm == pytest.approx(1.8e-5)

    def test_transistors_total(self):
        assert make_record().transistors_total == pytest.approx(1.0e7)

    def test_transistor_density(self):
        rec = make_record()
        assert rec.transistor_density_per_cm2 == pytest.approx(1.0e7 / 0.972)

    def test_sd_overall_matches_construction(self):
        assert make_record().sd_overall() == pytest.approx(300.0, rel=1e-6)

    def test_sd_logic_recomputed(self):
        assert make_record().sd_logic_recomputed() == pytest.approx(300.0, rel=1e-6)

    def test_sd_mem_recomputed_none_without_split(self):
        assert make_record().sd_mem_recomputed() is None

    def test_sd_recomputation_identity(self):
        # eq (2): T_d * sd * lambda^2 == 1
        rec = make_record()
        td = rec.transistor_density_per_cm2
        assert td * rec.sd_overall() * rec.feature_cm**2 == pytest.approx(1.0, rel=1e-9)


class TestBestSdLogic:
    def test_prefers_printed_value(self):
        rec = make_record(sd_logic=299.0)
        assert rec.best_sd_logic() == 299.0

    def test_falls_back_to_recomputed(self):
        rec = make_record(sd_logic=None)
        assert rec.best_sd_logic() == pytest.approx(300.0, rel=1e-6)

    def test_falls_back_to_overall_for_pure_logic(self):
        rec = make_record(sd_logic=None, area_logic_cm2=None, transistors_logic_m=None)
        assert rec.best_sd_logic() == pytest.approx(300.0, rel=1e-6)


class TestHasSplit:
    def test_no_split(self):
        assert not make_record().has_split()

    def test_with_split(self):
        rec = make_record(
            transistors_mem_m=4.0,
            transistors_logic_m=6.0,
            area_mem_cm2=0.10,
            area_logic_cm2=0.583,
            sd_mem=77.2,
            sd_logic=300.0,
        )
        assert rec.has_split()


class TestValidate:
    def test_consistent_record_passes(self):
        make_record().validate()

    def test_inconsistent_sd_logic_fails(self):
        rec = make_record(sd_logic=600.0)  # 2x off the geometry
        with pytest.raises(InconsistentRecordError, match="sd_logic"):
            rec.validate()

    def test_tolerance_is_respected(self):
        rec = make_record(sd_logic=330.0)  # 10% off
        rec.validate(rtol=0.15)
        with pytest.raises(InconsistentRecordError):
            rec.validate(rtol=0.05)

    def test_split_area_exceeding_die_fails(self):
        rec = make_record(
            transistors_mem_m=4.0,
            area_mem_cm2=0.9,  # 0.9 + 0.972 > die
            sd_mem=None,
        )
        with pytest.raises(InconsistentRecordError, match="exceeds die area"):
            rec.validate()

    def test_split_counts_exceeding_total_fails(self):
        rec = make_record(
            transistors_mem_m=8.0,  # 8 + 10 > 10 total
            area_mem_cm2=0.001,
            sd_mem=None,
        )
        with pytest.raises(InconsistentRecordError, match="counts exceed total"):
            rec.validate()

    def test_nonpositive_die_fails(self):
        rec = make_record(die_area_cm2=-1.0)
        with pytest.raises(InconsistentRecordError, match="non-positive"):
            rec.validate()


class TestProvenance:
    def test_enum_values(self):
        assert Provenance.PUBLISHED.value == "published"
        assert Provenance.REPAIRED.value == "repaired"
        assert Provenance.DERIVED.value == "derived"

    def test_default_is_published(self):
        assert make_record().provenance is Provenance.PUBLISHED


class TestRoadmapNode:
    def make_node(self):
        return RoadmapNode(year=1999, feature_nm=180.0, mpu_transistors_m=21.0,
                           mpu_density_m_per_cm2=6.6)

    def test_feature_um(self):
        assert self.make_node().feature_um == pytest.approx(0.18)

    def test_feature_cm(self):
        assert self.make_node().feature_cm == pytest.approx(1.8e-5)

    def test_implied_sd(self):
        # 1/(lambda^2 * T_d) = 1/(3.24e-10 * 6.6e6)
        node = self.make_node()
        assert node.implied_sd() == pytest.approx(1.0 / (3.24e-10 * 6.6e6), rel=1e-9)

    def test_implied_die_area(self):
        node = self.make_node()
        assert node.implied_die_area_cm2() == pytest.approx(21.0 / 6.6)

    def test_default_die_cost_is_paper_anchor(self):
        assert self.make_node().mpu_die_cost_usd == 34.0
