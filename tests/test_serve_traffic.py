"""Traffic engineering units: the micro-batcher and the token bucket.

The batcher's contract is *exact* coalescing — a burst of concurrent
submissions produces results bit-identical to sequential evaluation —
plus failure isolation (one poisoned item in a batch must not fail its
innocent batch-mates). The token bucket's contract is the 429 arith-
metic: grants until the burst is spent, then a seconds-to-wait figure
that matches the refill rate (tested with a fake clock, no sleeping).
"""

import threading

import pytest

from repro.api import Scenario, evaluate
from repro.errors import DomainError, ExecutionError, ReproError
from repro.serve import MicroBatcher, TokenBucket


def _scenarios(n):
    return [Scenario(n_transistors=1e7, feature_um=0.18, sd=150.0 + 10.0 * i,
                     n_wafers=5_000.0, yield_fraction=0.4, cost_per_cm2=8.0)
            for i in range(n)]


class TestMicroBatcher:
    def test_coalesces_a_concurrent_burst(self):
        calls = []

        def evaluate_batch(items):
            calls.append(len(items))
            return [i * 10 for i in items]

        with MicroBatcher(evaluate_batch, max_batch=64,
                          max_wait_s=0.05) as batcher:
            futures = [batcher.submit(i) for i in range(16)]
            assert [f.result(timeout=5) for f in futures] == [
                i * 10 for i in range(16)]
        stats = batcher.stats()
        assert stats["items"] == 16
        assert stats["batches"] < 16  # at least some coalescing happened
        assert stats["largest"] == max(calls)

    def test_batched_results_bit_identical_to_sequential(self):
        from repro.api import evaluate_many

        def price(scenarios):
            return [r.cost_per_transistor_usd
                    for r in evaluate_many(scenarios, cache=False)]

        scenarios = _scenarios(32)
        sequential = [evaluate(s).cost_per_transistor_usd for s in scenarios]
        with MicroBatcher(price, max_batch=32, max_wait_s=0.05) as batcher:
            futures = [batcher.submit(s) for s in scenarios]
            batched = [f.result(timeout=30) for f in futures]
        # Bit-identical, not approximately equal: the engine batch
        # kernel is elementwise, so coalescing must not change a single
        # ULP of any result.
        assert batched == sequential

    def test_failure_isolation(self):
        def price(items):
            if any(i < 0 for i in items):
                raise DomainError("negative item in batch")
            return [i * 2 for i in items]

        with MicroBatcher(price, max_batch=8, max_wait_s=0.05) as batcher:
            futures = [batcher.submit(i) for i in (1, -1, 2)]
            results = []
            for future in futures:
                try:
                    results.append(future.result(timeout=5))
                except ReproError as exc:
                    results.append(type(exc).__name__)
        assert results == [2, "DomainError", 4]
        assert batcher.stats()["fallbacks"] == 1

    def test_submit_after_close_raises(self):
        batcher = MicroBatcher(lambda items: items)
        batcher.close()
        with pytest.raises(ExecutionError, match="closed"):
            batcher.submit(1)

    def test_close_is_idempotent_and_drains(self):
        batcher = MicroBatcher(lambda items: items, max_wait_s=0.0)
        future = batcher.submit("x")
        batcher.close()
        batcher.close()
        assert future.result(timeout=5) == "x"

    def test_rejects_bad_limits(self):
        with pytest.raises(ExecutionError, match="max_batch"):
            MicroBatcher(lambda items: items, max_batch=0)
        with pytest.raises(ExecutionError, match="max_wait_s"):
            MicroBatcher(lambda items: items, max_wait_s=-1.0)

    def test_many_threads_submitting_concurrently(self):
        with MicroBatcher(lambda items: [i + 1 for i in items],
                          max_batch=16, max_wait_s=0.01) as batcher:
            results = {}

            def worker(i):
                results[i] = batcher.submit(i).result(timeout=10)

            threads = [threading.Thread(target=worker, args=(i,))
                       for i in range(64)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert results == {i: i + 1 for i in range(64)}


class _FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestTokenBucket:
    def test_burst_then_throttle(self):
        clock = _FakeClock()
        bucket = TokenBucket(rate=10.0, burst=3, clock=clock)
        assert [bucket.try_acquire() for _ in range(3)] == [0.0, 0.0, 0.0]
        wait = bucket.try_acquire()
        assert wait == pytest.approx(0.1)  # one token at 10/s

    def test_refill_restores_grants(self):
        clock = _FakeClock()
        bucket = TokenBucket(rate=10.0, burst=1, clock=clock)
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() > 0.0
        clock.now += 0.1  # exactly one token refilled
        assert bucket.try_acquire() == 0.0

    def test_refill_caps_at_burst(self):
        clock = _FakeClock()
        bucket = TokenBucket(rate=100.0, burst=2, clock=clock)
        clock.now += 60.0  # a minute idle must not bank 6000 tokens
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() > 0.0

    def test_stats_count_grants_and_throttles(self):
        clock = _FakeClock()
        bucket = TokenBucket(rate=1.0, burst=2, clock=clock)
        for _ in range(5):
            bucket.try_acquire()
        stats = bucket.stats()
        assert stats["granted"] == 2
        assert stats["throttled"] == 3

    def test_rejects_bad_parameters(self):
        with pytest.raises(DomainError, match="rate"):
            TokenBucket(rate=0.0, burst=1)
        with pytest.raises(DomainError, match="burst"):
            TokenBucket(rate=1.0, burst=0)
