"""Property-based tests on yield statistics and pattern extraction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.layout import Rect, extract_patterns
from repro.yieldmodels import (
    MurphyYield,
    NegativeBinomialYield,
    PoissonYield,
    SeedsYield,
)

faults = st.floats(min_value=0.0, max_value=50.0)
alphas = st.floats(min_value=0.1, max_value=100.0)

MODELS = [PoissonYield(), MurphyYield(), SeedsYield(), NegativeBinomialYield(2.0)]


class TestYieldProperties:
    @given(faults)
    def test_all_models_in_unit_interval(self, ad):
        for model in MODELS:
            y = model.yield_from_faults(ad)
            assert 0 < y <= 1

    @given(faults, st.floats(min_value=0.01, max_value=10.0))
    def test_monotone_decreasing(self, ad, delta):
        for model in MODELS:
            assert model.yield_from_faults(ad + delta) < model.yield_from_faults(ad) \
                or ad + delta == ad

    @given(faults, alphas)
    def test_nb_clustering_monotone(self, ad, alpha):
        # More clustering (smaller alpha) never hurts yield.
        lo = NegativeBinomialYield(alpha)
        hi = NegativeBinomialYield(alpha * 2)
        assert lo.yield_from_faults(ad) >= hi.yield_from_faults(ad) - 1e-12

    @given(st.floats(min_value=0.05, max_value=0.99),
           st.floats(min_value=0.05, max_value=5.0))
    def test_area_inversion_round_trip(self, target, d0):
        for model in MODELS:
            area = model.max_area_for_yield(target, d0)
            assert float(model(area, d0)) == pytest.approx(target, rel=1e-5)


def rects_strategy():
    rect = st.builds(
        lambda layer, x, y, w, h: Rect(layer, x, y, x + w, y + h),
        st.sampled_from(["poly", "diff", "m1", "m2"]),
        st.integers(min_value=-100, max_value=100),
        st.integers(min_value=-100, max_value=100),
        st.integers(min_value=1, max_value=30),
        st.integers(min_value=1, max_value=30),
    )
    return st.lists(rect, min_size=1, max_size=40)


class TestPatternProperties:
    @given(rects_strategy(), st.integers(min_value=2, max_value=32))
    @settings(max_examples=60)
    def test_window_accounting_invariants(self, rects, window):
        lib = extract_patterns(rects, window)
        assert lib.n_unique <= lib.n_occupied_windows
        assert lib.n_occupied_windows <= lib.n_windows
        assert 0.0 <= lib.regularity_index() <= 1.0

    @given(rects_strategy(), st.integers(min_value=2, max_value=32),
           st.integers(min_value=-500, max_value=500),
           st.integers(min_value=-500, max_value=500))
    @settings(max_examples=60)
    def test_translation_invariance(self, rects, window, dx, dy):
        # Pattern census is invariant under whole-layout translation by
        # any multiple of the window pitch.
        lib_a = extract_patterns(rects, window)
        moved = [r.translated(dx * window, dy * window) for r in rects]
        lib_b = extract_patterns(moved, window)
        assert lib_a.n_unique == lib_b.n_unique
        assert lib_a.n_occupied_windows == lib_b.n_occupied_windows

    @given(rects_strategy(), st.integers(min_value=2, max_value=16),
           st.integers(min_value=1, max_value=5))
    @settings(max_examples=40)
    def test_duplication_never_adds_patterns(self, rects, window, copies):
        # Stamping extra far-away copies of the whole layout multiplies
        # occurrences but adds no new patterns.
        from repro.layout import bounding_box
        x0, y0, x1, y1 = bounding_box(rects)
        span_x = x1 - x0
        # Offset by a window-aligned stride beyond the layout extent.
        stride = ((span_x // window) + 2) * window
        all_rects = list(rects)
        for k in range(1, copies + 1):
            all_rects.extend(r.translated(k * stride, 0) for r in rects)
        lib_one = extract_patterns(rects, window)
        lib_many = extract_patterns(all_rects, window)
        assert lib_many.n_unique <= lib_one.n_unique
        assert lib_many.n_occupied_windows == (copies + 1) * lib_one.n_occupied_windows
