"""Chaos suite: corrupted inputs must never leak non-ReproError failures.

The contract (see docs/robustness.md): every public ``repro.*`` entry
point, fed any corrupted scalar input — NaN, ±Inf, negatives, zeros,
magnitude extremes, non-numeric garbage — either

* succeeds with output free of *silent* NaN, or
* raises a :class:`repro.errors.ReproError` subclass (``TypeError`` is
  also tolerated for garbage types — wrong type is a programming
  error, not a domain failure),

and never a bare ``ValueError``, ``ZeroDivisionError``,
``FloatingPointError`` or ``OverflowError``.

Fault generation is exhaustive and deterministic
(:func:`repro.robust.corrupted_calls` walks every field × mode pair),
so a failure reproduces byte-for-byte from the test id.
"""

import dataclasses
import math

import numpy as np
import pytest

from repro.cost import (
    DEFAULT_GENERALIZED_MODEL,
    PAPER_FIGURE4_MODEL,
    die_cost,
    transistor_cost,
)
from repro.errors import ConvergenceError, DomainError, ReproError
from repro.optimize import optimal_sd, sd_sweep, volume_sweep
from repro.robust import (
    FAULT_MODES,
    FaultInjector,
    corrupt,
    corrupted_calls,
    flaky,
)
from repro.wafer import WAFER_200MM, gross_die_per_wafer
from repro.yieldmodels import NegativeBinomialYield, PoissonYield

SEED = 20010618  # DAC 2001 keynote date


# -- fault primitives ----------------------------------------------------

def test_corrupt_modes():
    assert math.isnan(corrupt(5.0, "nan"))
    assert corrupt(5.0, "inf") == math.inf
    assert corrupt(5.0, "neg_inf") == -math.inf
    assert corrupt(5.0, "negative") == -5.0
    assert corrupt(0.0, "negative") == -1.0
    assert corrupt(5.0, "zero") == 0.0
    assert corrupt(5.0, "huge") == 1e308
    assert 0 < corrupt(5.0, "tiny") < 1e-300
    assert isinstance(corrupt(5.0, "string"), str)
    with pytest.raises(DomainError):
        corrupt(5.0, "frobnicate")


def test_corrupted_calls_exhaustive_and_deterministic():
    kwargs = dict(a=1.0, b=2.0, c=3.0)
    calls = list(corrupted_calls(kwargs, seed=SEED))
    assert len(calls) == 3 * len(FAULT_MODES)
    labels = [c.describe() for c in calls]
    assert len(set(labels)) == len(labels)
    again = [c.describe() for c in corrupted_calls(kwargs, seed=SEED)]
    assert labels == again
    # the original call is never mutated
    assert kwargs == dict(a=1.0, b=2.0, c=3.0)


def test_injector_is_seed_deterministic():
    a = FaultInjector(1234)
    b = FaultInjector(1234)
    kwargs = dict(x=1.0, y=2.0)
    for _ in range(20):
        assert a.corrupt_call(kwargs) == b.corrupt_call(kwargs)


def test_injector_rejects_unknown_field():
    with pytest.raises(DomainError):
        FaultInjector(0).corrupt_call(dict(x=1.0), field="nope")


def test_flaky_fails_exactly_n_times():
    fn = flaky(lambda: 42, fail_times=2)
    for _ in range(2):
        with pytest.raises(ConvergenceError, match="injected"):
            fn()
    assert fn() == 42
    assert fn.state == {"calls": 3, "failures": 2}
    with pytest.raises(DomainError):
        flaky(lambda: 0, fail_times=-1)


# -- the chaos contract --------------------------------------------------

def _contains_nan(obj, depth: int = 0) -> bool:
    """Recursively look for NaN in floats/arrays/dataclass fields."""
    if depth > 4:
        return False
    if isinstance(obj, float):
        return math.isnan(obj)
    if isinstance(obj, np.ndarray):
        return bool(np.isnan(np.asarray(obj, dtype=float)).any())
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return any(_contains_nan(getattr(obj, f.name), depth + 1)
                   for f in dataclasses.fields(obj)
                   if f.name not in ("meta",))
    if isinstance(obj, (list, tuple)):
        return any(_contains_nan(v, depth + 1) for v in obj)
    return False


def _assert_robust(fn, call, fixed=None):
    """One chaos probe: success without silent NaN, or a clean error."""
    try:
        result = fn(**(fixed or {}), **call.kwargs)
    except ReproError:
        return
    except TypeError:
        return
    except Exception as exc:  # noqa: BLE001 — the assertion under test
        pytest.fail(f"{fn.__name__}({call.describe()}) leaked "
                    f"{type(exc).__name__}: {exc}")
    assert not _contains_nan(result), (
        f"{fn.__name__}({call.describe()}) silently returned NaN")


VALID_FIG4 = dict(n_transistors=1e7, feature_um=0.18, n_wafers=5_000.0,
                  yield_fraction=0.4, cost_per_cm2=8.0)


@pytest.mark.parametrize("call", corrupted_calls(VALID_FIG4, seed=SEED),
                         ids=lambda c: c.describe())
def test_chaos_sd_sweep(call):
    _assert_robust(sd_sweep, call, fixed=dict(model=PAPER_FIGURE4_MODEL))


@pytest.mark.parametrize("call", corrupted_calls(VALID_FIG4, seed=SEED),
                         ids=lambda c: c.describe())
def test_chaos_optimal_sd(call):
    _assert_robust(optimal_sd, call, fixed=dict(model=PAPER_FIGURE4_MODEL))


VALID_VOLUME = dict(sd=300.0, n_transistors=1e7, feature_um=0.18,
                    yield_fraction=0.4, cost_per_cm2=8.0)


@pytest.mark.parametrize("call", corrupted_calls(VALID_VOLUME, seed=SEED),
                         ids=lambda c: c.describe())
def test_chaos_volume_sweep(call):
    _assert_robust(volume_sweep, call, fixed=dict(model=PAPER_FIGURE4_MODEL))


VALID_EQ3 = dict(cost_per_cm2=8.0, feature_um=0.18, sd=300.0,
                 yield_fraction=0.8)


@pytest.mark.parametrize("call", corrupted_calls(VALID_EQ3, seed=SEED),
                         ids=lambda c: c.describe())
def test_chaos_transistor_cost(call):
    _assert_robust(transistor_cost, call)


VALID_DIE = dict(cost_per_cm2=8.0, feature_um=0.18, sd=300.0,
                 n_transistors=1e7, yield_fraction=0.8)


@pytest.mark.parametrize("call", corrupted_calls(VALID_DIE, seed=SEED),
                         ids=lambda c: c.describe())
def test_chaos_die_cost(call):
    _assert_robust(die_cost, call)


VALID_YIELD = dict(area_cm2=1.0, defect_density_per_cm2=0.5)


@pytest.mark.parametrize("call", corrupted_calls(VALID_YIELD, seed=SEED),
                         ids=lambda c: c.describe())
def test_chaos_poisson_yield(call):
    _assert_robust(PoissonYield().__call__, call)


@pytest.mark.parametrize("call", corrupted_calls(VALID_YIELD, seed=SEED),
                         ids=lambda c: c.describe())
def test_chaos_negative_binomial_yield(call):
    _assert_robust(NegativeBinomialYield().__call__, call)


VALID_DICE = dict(die_area_cm2=1.0, aspect_ratio=1.0)


@pytest.mark.parametrize("call", corrupted_calls(VALID_DICE, seed=SEED),
                         ids=lambda c: c.describe())
def test_chaos_gross_die(call):
    _assert_robust(gross_die_per_wafer, call, fixed=dict(wafer=WAFER_200MM))


def test_chaos_generalized_sweep_sample():
    # one representative pass over the eq.-(7) model
    base = dict(n_transistors=1e7, feature_um=0.18, n_wafers=20_000.0)
    for call in corrupted_calls(base, seed=SEED):
        _assert_robust(
            lambda **kw: __import__("repro.optimize", fromlist=["x"])
            .sd_sweep_generalized(DEFAULT_GENERALIZED_MODEL, **kw), call)


# -- forced solver failure through the public optimum API ----------------

def test_forced_solver_failure_raises_convergence_error():
    from repro.robust import RetryBudget, retrying_golden_min
    exhausted = flaky(lambda x: x * x, fail_times=10)
    with pytest.raises(ConvergenceError):
        retrying_golden_min(exhausted, 1.0, 2.0, tol=1e-12, max_iter=50,
                            solver="chaos", retry=RetryBudget(max_attempts=3))


# -- CLI failure contract ------------------------------------------------

def test_cli_repro_error_is_one_line(monkeypatch, capsys):
    import repro.__main__ as cli

    def boom(policy=None, diagnostics=None):
        raise DomainError("synthetic failure for the CLI contract")

    monkeypatch.setattr(cli, "build_report", boom)
    rc = cli.main([])
    captured = capsys.readouterr()
    assert rc == 1
    assert captured.err.strip() == (
        "error: synthetic failure for the CLI contract")
    assert "Traceback" not in captured.err
