"""Assorted edge-case hardening across modules."""

import numpy as np
import pytest

from repro.cost import PAPER_FIGURE4_MODEL, transistor_cost
from repro.data import DesignRegistry
from repro.density import decompression_index
from repro.errors import DomainError, LayoutError
from repro.layout import Layout, Rect, extract_patterns, standard_cell
from repro.optimize import sd_sweep, volume_sweep
from repro.report import Series
from repro.wafer import WAFER_200MM, gross_die_exact


class TestWaferEdges:
    def test_rectangular_die_fits_differently(self):
        square = gross_die_exact(WAFER_200MM, 2.0, aspect_ratio=1.0)
        sliver = gross_die_exact(WAFER_200MM, 2.0, aspect_ratio=8.0)
        # Extreme aspect ratios waste the disc edge.
        assert sliver < square

    def test_die_the_size_of_the_wafer_rejected(self):
        usable = WAFER_200MM.usable_area_cm2
        with pytest.raises(DomainError):
            gross_die_exact(WAFER_200MM, usable * 2)

    def test_single_huge_die_possible(self):
        # One die whose diagonal just fits.
        n = gross_die_exact(WAFER_200MM, 150.0)
        assert n >= 1


class TestCostEdges:
    def test_tiny_feature_sizes_stay_finite(self):
        c = transistor_cost(8.0, 0.001, 300, 0.8)
        assert np.isfinite(c) and c > 0

    def test_sweep_with_two_points(self):
        sweep = sd_sweep(PAPER_FIGURE4_MODEL, 1e7, 0.18, 5000, 0.4, 8.0,
                         sd_values=np.array([150.0, 300.0]))
        assert sweep.argmin in (0, 1)
        assert not sweep.is_interior_minimum()

    def test_volume_sweep_single_decade(self):
        sweep = volume_sweep(PAPER_FIGURE4_MODEL, 300, 1e7, 0.18, 0.8, 8.0,
                             n_wafers_values=np.array([1e3, 1e4]))
        assert sweep.cost[0] > sweep.cost[1]

    def test_extreme_sd_values(self):
        # Far above the bound the model is silicon-dominated but valid.
        c = PAPER_FIGURE4_MODEL.transistor_cost(1e6, 1e7, 0.18, 5000, 0.8, 8.0)
        assert np.isfinite(c)


class TestDensityEdges:
    def test_one_transistor_design(self):
        sd = decompression_index(1e-6, 1, 0.18)
        assert sd > 0

    def test_huge_counts(self):
        sd = decompression_index(10.0, 1e12, 0.035)
        assert sd > 0


class TestLayoutEdges:
    def test_pattern_extraction_window_larger_than_layout(self):
        rects = [Rect("m1", 0, 0, 4, 4)]
        library = extract_patterns(rects, window_size=100)
        assert library.n_windows == 1
        assert library.n_unique == 1

    def test_window_size_one(self):
        rects = [Rect("m1", 0, 0, 2, 1)]
        library = extract_patterns(rects, window_size=1)
        assert library.n_occupied_windows == 2
        assert library.n_unique == 1  # both windows carry a full 1x1 fill

    def test_negative_coordinates_supported(self):
        rects = [Rect("m1", -10, -10, -6, -6), Rect("m1", -2, -10, 2, -6)]
        library = extract_patterns(rects, window_size=8)
        assert library.n_occupied_windows >= 2

    def test_layout_single_instance(self):
        layout = Layout("one")
        layout.add(standard_cell("c", n_gates=1), 0, 0)
        assert layout.sd() > 0

    def test_cell_rects_are_immutable_tuple(self):
        cell = standard_cell("c")
        with pytest.raises((TypeError, AttributeError)):
            cell.rects.append(Rect("m1", 0, 0, 1, 1))  # type: ignore[attr-defined]


class TestSeriesEdges:
    def test_duplicate_x_crossing(self):
        s = Series.from_arrays("s", [0, 1, 1, 2], [0, 5, 5, 10])
        assert s.crossing_x(2.5) is not None

    def test_crossing_at_last_point(self):
        s = Series.from_arrays("s", [0, 1], [1, 5])
        assert s.crossing_x(5.0) == pytest.approx(1.0)

    def test_constant_series_not_strictly_monotone(self):
        s = Series.from_arrays("s", [0, 1, 2], [3, 3, 3])
        assert not s.is_increasing(strict=True)
        assert s.is_increasing(strict=False)
        assert s.is_decreasing(strict=False)


class TestRegistryEdges:
    def test_slice_negative(self):
        reg = DesignRegistry.table_a1()
        last_two = reg[-2:]
        assert len(last_two) == 2
        assert last_two[1].index == 49

    def test_filter_to_empty_then_query(self):
        reg = DesignRegistry.table_a1().by_vendor("NoSuchVendor")
        assert len(reg) == 0
        assert reg.sd_mem_values() == []
