"""Percentile math and merge semantics of ``repro.obs.perf.sketch``.

Golden values use uniform streams where the true quantiles are known;
the sketch's contract is ~1 % *relative* error (the (GAMMA-1)/2 bound)
plus exact count/total/min/max bookkeeping and lossless merges.
"""

from __future__ import annotations

import math

import pytest

from repro.errors import DomainError
from repro.obs import DurationSketch

#: The sketch's documented relative-error bound, with a little slack
#: for the nearest-rank convention on finite streams.
REL_TOL = 0.02


def uniform_ms(n: int = 1000) -> list[float]:
    """1 ms, 2 ms, ..., n ms — true quantiles are exactly readable."""
    return [i / 1e3 for i in range(1, n + 1)]


# -- golden percentiles --------------------------------------------------

def test_golden_percentiles_uniform_stream():
    sk = DurationSketch.from_values("u", uniform_ms())
    assert sk.count == 1000
    assert sk.min == pytest.approx(0.001)
    assert sk.max == pytest.approx(1.000)
    assert sk.p50 == pytest.approx(0.500, rel=REL_TOL)
    assert sk.p90 == pytest.approx(0.900, rel=REL_TOL)
    assert sk.p99 == pytest.approx(0.990, rel=REL_TOL)
    assert sk.mean == pytest.approx(0.5005, rel=1e-9)


def test_relative_error_bound_across_decades():
    # Same relative accuracy at 10 µs and at 10 s — the log layout's
    # whole point.
    for scale in (1e-5, 1e-3, 1e-1, 10.0):
        sk = DurationSketch.from_values(
            "s", [scale * i / 100 for i in range(1, 101)])
        assert sk.p50 == pytest.approx(scale * 0.50, rel=REL_TOL)
        assert sk.p90 == pytest.approx(scale * 0.90, rel=REL_TOL)


def test_quantile_extremes_snap_to_exact_min_max():
    sk = DurationSketch.from_values("x", [0.003, 0.007, 0.042])
    assert sk.quantile(0.0) == 0.003
    assert sk.quantile(1.0) == 0.042
    # Interior estimates never leave the exactly-known envelope.
    assert 0.003 <= sk.p50 <= 0.042
    assert 0.003 <= sk.p99 <= 0.042


def test_single_sample_every_quantile_is_that_sample():
    sk = DurationSketch.from_values("one", [0.0125])
    for q in (0.0, 0.25, 0.5, 0.9, 0.99, 1.0):
        assert sk.quantile(q) == pytest.approx(0.0125, rel=REL_TOL)


# -- edge cases ----------------------------------------------------------

def test_empty_sketch_reports_nan():
    sk = DurationSketch("empty")
    assert len(sk) == 0
    assert math.isnan(sk.p50)
    assert math.isnan(sk.mean)
    assert all(math.isnan(v) for v in sk.percentiles().values())
    assert "empty" in repr(sk)


def test_zero_and_negative_clamp_to_lowest_bucket():
    sk = DurationSketch("clamp")
    sk.observe(0.0)
    sk.observe(-1e-6)  # clock quirk: still counted, exact min kept
    assert sk.count == 2
    assert sk.min == -1e-6
    assert sk.buckets == {0: 2}


def test_non_finite_durations_rejected():
    sk = DurationSketch("bad")
    with pytest.raises(DomainError):
        sk.observe(math.nan)
    with pytest.raises(DomainError):
        sk.observe(math.inf)
    assert sk.count == 0


def test_quantile_out_of_range_rejected():
    sk = DurationSketch.from_values("q", [0.001])
    with pytest.raises(DomainError):
        sk.quantile(1.5)
    with pytest.raises(DomainError):
        sk.quantile(-0.1)


def test_huge_duration_clamps_to_top_bucket():
    sk = DurationSketch("top")
    sk.observe(1e9)  # ~31 years; beyond the layout ceiling
    assert sk.max == 1e9
    (index,) = sk.buckets
    assert index == DurationSketch.bucket_index(1e9)
    # A second absurd value lands in the same (clamped) bucket.
    sk.observe(1e12)
    assert sk.buckets[index] == 2


# -- merge ---------------------------------------------------------------

def test_merge_halves_equals_full_stream():
    values = uniform_ms()
    full = DurationSketch.from_values("full", values)
    left = DurationSketch.from_values("left", values[:500])
    right = DurationSketch.from_values("right", values[500:])
    merged = left.merge(right)
    assert merged is left
    assert merged.count == full.count
    assert merged.total == pytest.approx(full.total)
    assert merged.min == full.min
    assert merged.max == full.max
    assert merged.buckets == full.buckets
    for q in (0.1, 0.5, 0.9, 0.99):
        assert merged.quantile(q) == full.quantile(q)


def test_merge_with_empty_is_identity():
    sk = DurationSketch.from_values("a", [0.001, 0.002])
    before = dict(sk.buckets)
    sk.merge(DurationSketch("empty"))
    assert sk.count == 2
    assert sk.buckets == before


def test_merge_rejects_other_types():
    sk = DurationSketch("a")
    with pytest.raises(DomainError):
        sk.merge({"count": 3})


# -- bucket layout -------------------------------------------------------

def test_bucket_roundtrip_within_relative_error():
    for seconds in (2e-9, 1e-6, 3.7e-4, 0.25, 12.0):
        index = DurationSketch.bucket_index(seconds)
        assert DurationSketch.bucket_value(index) == pytest.approx(
            seconds, rel=REL_TOL)
