"""Verdict logic and end-to-end exit codes of the perf-regression gate.

``compare_reports`` gets synthetic-report golden tests for every
verdict; the CLI gets a tmp-path bench suite whose speed is controlled
through an environment variable, so a 10x fault-injected slowdown must
flip the exit code from 0 to 1.
"""

from __future__ import annotations

import math

import pytest

from repro.bench import (
    IMPROVEMENT,
    MISSING,
    NEW,
    REGRESSION,
    WITHIN_NOISE,
    compare_reports,
    make_report,
)
from repro.bench.cli import main
from repro.errors import DomainError

ENV = {"git_sha": "test", "python": "3.x", "platform": "test"}


def report(**medians) -> dict:
    """A report whose benches all have tiny MAD (noise band = min_rel)."""
    benches = {
        name: {"min": median * 0.98, "median": median,
               "mad": median * 0.001, "repeats": 5}
        for name, median in medians.items()
    }
    return make_report(benches, repeats=5, warmup=1, environment=ENV,
                       generated="2026-08-06T00:00:00Z")


# -- verdicts ----------------------------------------------------------

def test_verdict_regression_improvement_within_noise():
    base = report(slow=0.100, fast=0.100, same=0.100)
    cur = report(slow=0.150, fast=0.050, same=0.105)
    comparison = compare_reports(base, cur)
    status = {v.name: v.status for v in comparison.verdicts}
    assert status == {"slow": REGRESSION, "fast": IMPROVEMENT,
                      "same": WITHIN_NOISE}
    assert not comparison.ok
    assert [v.name for v in comparison.regressions] == ["slow"]
    assert comparison.counts()[REGRESSION] == 1


def test_verdict_tenfold_regression_is_unambiguous():
    comparison = compare_reports(report(bench=0.010), report(bench=0.100))
    (verdict,) = comparison.verdicts
    assert verdict.status == REGRESSION
    assert verdict.ratio == pytest.approx(10.0)
    assert "10.00x" in verdict.describe()


def test_noisy_bench_widens_its_band():
    # A 40% swing with a huge MAD is noise, not regression.
    base = report(jittery=0.100)
    base["benches"]["jittery"]["mad"] = 0.020  # 3*1.4826*0.2 ≈ ±59%
    cur = report(jittery=0.140)
    (verdict,) = compare_reports(base, cur).verdicts
    assert verdict.status == WITHIN_NOISE
    assert verdict.threshold > 0.5


def test_new_and_missing_never_fail_the_gate():
    comparison = compare_reports(report(old=0.1), report(fresh=0.1))
    status = {v.name: v.status for v in comparison.verdicts}
    assert status == {"old": MISSING, "fresh": NEW}
    assert comparison.ok
    assert math.isnan(comparison.verdicts[0].ratio)
    text = comparison.format()
    assert "gate: ok" in text and "missing" in text and "new" in text


def test_compare_parameters_validated():
    with pytest.raises(DomainError):
        compare_reports(report(a=0.1), report(a=0.1), min_rel=-0.1)
    with pytest.raises(DomainError):
        compare_reports(report(a=0.1), report(a=0.1), mad_scale=0.0)


def test_format_marks_failures():
    text = compare_reports(report(bench=0.01), report(bench=0.1)).format()
    assert "gate: FAIL" in text
    assert "regression" in text


# -- CLI end-to-end ----------------------------------------------------

BENCH_SOURCE = '''
"""Synthetic bench whose cost is set by REPRO_TEST_BENCH_COST_MS."""

import os
import time


def regenerate_sleepy():
    time.sleep(float(os.environ.get("REPRO_TEST_BENCH_COST_MS", "2")) / 1e3)
    return 1
'''


@pytest.fixture()
def bench_dir(tmp_path):
    (tmp_path / "bench_sleepy.py").write_text(BENCH_SOURCE)
    return tmp_path


def run_cli(bench_dir, *extra: str) -> int:
    return main(["--bench-dir", str(bench_dir), "--repeats", "3",
                 "--warmup", "0", "--quiet", *extra])


def test_cli_first_run_writes_baseline_then_compares_clean(
        bench_dir, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_TEST_BENCH_COST_MS", "5")
    assert run_cli(bench_dir) == 0
    baseline = bench_dir / "baseline.json"
    assert baseline.exists()
    assert list((bench_dir / "output").glob("BENCH_*.json"))

    # Same cost again: the gate passes.
    assert run_cli(bench_dir, "--compare", str(baseline)) == 0
    out = capsys.readouterr().out
    assert "gate: ok" in out


def test_cli_detects_injected_tenfold_slowdown(bench_dir, monkeypatch,
                                               capsys):
    monkeypatch.setenv("REPRO_TEST_BENCH_COST_MS", "5")
    assert run_cli(bench_dir) == 0

    # Fault injection: the same bench now takes 10x longer.
    monkeypatch.setenv("REPRO_TEST_BENCH_COST_MS", "50")
    code = run_cli(bench_dir, "--compare", str(bench_dir / "baseline.json"))
    assert code == 1
    captured = capsys.readouterr()
    assert "gate: FAIL" in captured.out
    assert "regression: sleepy" in captured.err


def test_cli_update_baseline_accepts_new_cost(bench_dir, monkeypatch):
    monkeypatch.setenv("REPRO_TEST_BENCH_COST_MS", "5")
    assert run_cli(bench_dir) == 0
    monkeypatch.setenv("REPRO_TEST_BENCH_COST_MS", "50")
    assert run_cli(bench_dir, "--update-baseline") == 0
    # The rebaselined cost is now the reference: same speed passes.
    assert run_cli(bench_dir, "--compare",
                   str(bench_dir / "baseline.json")) == 0


def test_cli_errors_exit_2(tmp_path, capsys):
    assert main(["--bench-dir", str(tmp_path / "nowhere"), "--quiet"]) == 2
    assert "error:" in capsys.readouterr().err

    (tmp_path / "bench_ok.py").write_text(
        "def regenerate_ok():\n    return 1\n")
    bad_baseline = tmp_path / "corrupt.json"
    bad_baseline.write_text("{not json")
    assert main(["--bench-dir", str(tmp_path), "--repeats", "1",
                 "--warmup", "0", "--quiet",
                 "--compare", str(bad_baseline)]) == 2
    assert "error:" in capsys.readouterr().err
