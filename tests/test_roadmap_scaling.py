"""Scaling-law and node-calendar tests."""

import pytest

from repro.data import load_itrs_1999
from repro.errors import DomainError
from repro.roadmap import ScalingLaw, interpolate_nodes, node_sequence


class TestScalingLaw:
    def test_anchor_value(self):
        law = ScalingLaw(1999, 180.0, 0.9)
        assert law.value(1999) == pytest.approx(180.0)

    def test_exponential_growth(self):
        law = ScalingLaw(2000, 1.0, 2.0)
        assert law.value(2003) == pytest.approx(8.0)

    def test_year_for_value_round_trip(self):
        law = ScalingLaw.feature_shrink()
        year = law.year_for_value(35.0)
        assert law.value(year) == pytest.approx(35.0)

    def test_flat_law_cannot_invert(self):
        with pytest.raises(DomainError):
            ScalingLaw(2000, 1.0, 1.0).year_for_value(2.0)

    def test_feature_shrink_hits_itrs_calendar(self):
        law = ScalingLaw.feature_shrink()
        assert law.value(2002) == pytest.approx(180 * 0.7, rel=1e-9)
        assert law.value(2014) == pytest.approx(180 * 0.7**5, rel=1e-9)

    def test_moore_functions_doubling(self):
        law = ScalingLaw.moore_functions(doubling_months=18.0)
        assert law.value(1999 + 1.5) == pytest.approx(2 * 21.0, rel=1e-9)

    def test_array_evaluation(self):
        import numpy as np
        law = ScalingLaw.feature_shrink()
        out = law.value(np.array([1999.0, 2002.0]))
        assert out.shape == (2,)


class TestNodeSequence:
    def test_default_matches_itrs(self):
        seq = node_sequence()
        assert seq[0] == (1999, 180.0)
        assert seq[-1][0] == 2014
        assert seq[-1][1] == pytest.approx(30.3, abs=0.2)  # 180*0.7^5 rounded

    def test_shrink_ratio(self):
        seq = node_sequence(n_nodes=3)
        assert seq[1][1] / seq[0][1] == pytest.approx(0.7, rel=0.01)

    def test_invalid_args(self):
        with pytest.raises(DomainError):
            node_sequence(n_nodes=0)
        with pytest.raises(DomainError):
            node_sequence(shrink=1.5)


class TestInterpolateNodes:
    @pytest.fixture(scope="class")
    def nodes(self):
        return load_itrs_1999()

    def test_exact_node_year(self, nodes):
        node = interpolate_nodes(nodes, 2005)
        assert node.feature_nm == pytest.approx(100.0)

    def test_midpoint_geometric(self, nodes):
        node = interpolate_nodes(nodes, 2000.5)
        import math
        expected = math.sqrt(180.0 * 130.0)
        assert node.feature_nm == pytest.approx(expected, rel=1e-9)

    def test_interpolated_between_neighbours(self, nodes):
        node = interpolate_nodes(nodes, 2003)
        assert 100.0 < node.feature_nm < 130.0
        assert 76.0 < node.mpu_transistors_m < 200.0

    def test_outside_span_raises(self, nodes):
        with pytest.raises(DomainError):
            interpolate_nodes(nodes, 1990)
        with pytest.raises(DomainError):
            interpolate_nodes(nodes, 2020)

    def test_needs_two_nodes(self, nodes):
        with pytest.raises(DomainError):
            interpolate_nodes(nodes[:1], 1999)

    def test_note_marks_interpolation(self, nodes):
        node = interpolate_nodes(nodes, 2003)
        assert "interpolated" in node.note
