"""DesignRegistry query API tests."""

import pytest

from repro.data import DesignRegistry, DeviceCategory
from repro.errors import UnknownRecordError


@pytest.fixture(scope="module")
def reg():
    return DesignRegistry.table_a1()


class TestSequenceProtocol:
    def test_len(self, reg):
        assert len(reg) == 49

    def test_index_access(self, reg):
        assert reg[0].index == 1

    def test_slice_returns_registry(self, reg):
        sub = reg[:5]
        assert isinstance(sub, DesignRegistry)
        assert len(sub) == 5

    def test_iteration(self, reg):
        assert sum(1 for _ in reg) == 49

    def test_repr(self, reg):
        assert "49" in repr(reg)


class TestLookups:
    def test_by_index(self, reg):
        assert reg.by_index(17).device.startswith("K7")

    def test_by_index_missing(self, reg):
        with pytest.raises(UnknownRecordError, match="99"):
            reg.by_index(99)

    def test_by_device_substring(self, reg):
        assert "K7" in reg.by_device("k7").device

    def test_by_device_missing(self, reg):
        with pytest.raises(UnknownRecordError):
            reg.by_device("Itanium")


class TestFilters:
    def test_by_vendor(self, reg):
        intel = reg.by_vendor("Intel")
        assert len(intel) >= 8
        assert all(r.vendor == "Intel" for r in intel)

    def test_by_vendor_case_insensitive(self, reg):
        assert len(reg.by_vendor("intel")) == len(reg.by_vendor("Intel"))

    def test_by_category(self, reg):
        dsps = reg.by_category(DeviceCategory.DSP)
        assert len(dsps) == 3
        assert all(r.category is DeviceCategory.DSP for r in dsps)

    def test_feature_between(self, reg):
        quarter = reg.feature_between(0.24, 0.26)
        assert len(quarter) > 0
        assert all(0.24 <= r.feature_um <= 0.26 for r in quarter)

    def test_with_split(self, reg):
        split = reg.with_split()
        assert len(split) >= 10
        assert all(r.has_split() for r in split)

    def test_filter_predicate(self, reg):
        big = reg.filter(lambda r: r.transistors_total_m > 100)
        assert all(r.transistors_total_m > 100 for r in big)
        assert len(big) >= 2  # PA-RISC (116M) and Alpha 21364 (152M)

    def test_filters_compose(self, reg):
        out = reg.by_vendor("Intel").feature_between(0.2, 0.3)
        assert all(r.vendor == "Intel" and 0.2 <= r.feature_um <= 0.3 for r in out)

    def test_sorted_by(self, reg):
        by_feature = reg.sorted_by(lambda r: r.feature_um)
        features = [r.feature_um for r in by_feature]
        assert features == sorted(features)

    def test_sorted_by_reverse(self, reg):
        by_sd = reg.sorted_by(lambda r: r.best_sd_logic(), reverse=True)
        assert by_sd[0].best_sd_logic() == pytest.approx(765.3)


class TestExtracts:
    def test_vendors_distinct(self, reg):
        vendors = reg.vendors()
        assert len(vendors) == len(set(vendors))
        assert "AMD" in vendors

    def test_sd_logic_values_count(self, reg):
        assert len(reg.sd_logic_values()) == 49

    def test_sd_mem_values_only_split_rows(self, reg):
        assert len(reg.sd_mem_values()) == len(reg.with_split())

    def test_empty_registry_behaviour(self):
        empty = DesignRegistry([])
        assert len(empty) == 0
        assert empty.vendors() == []
        assert empty.sd_logic_values() == []
