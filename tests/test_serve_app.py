"""HTTP layer integration: routes, error contract, burst determinism.

Each test boots a real ``ThreadingHTTPServer`` on an ephemeral port and
talks to it through :class:`repro.serve.ServeClient` — the same wire
dataclasses on both ends. Pinned here:

* per-policy round trips (RAISE → 422 with the taxonomy code,
  MASK/COLLECT → 200 with a ``diagnostics`` array);
* the acceptance burst: 64 concurrent ``/evaluate`` clients produce
  results bit-identical to sequential ``Scenario.evaluate`` calls,
  with a cache hit-rate > 0 visible in ``/metrics``;
* rate limiting (429 + ``Retry-After``), 400/404 mapping, and the
  request span/counter telemetry.
"""

import json
import threading
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import obs
from repro.api import Scenario, evaluate
from repro.obs.metrics import MetricsRegistry
from repro.serve import ServeClient, ServeError, start_server

BASE = {"n_transistors": 1e7, "feature_um": 0.18, "sd": 300.0,
        "n_wafers": 5_000.0, "yield_fraction": 0.4, "cost_per_cm2": 8.0}
BAD = {**BASE, "yield_fraction": -1.0}


@pytest.fixture
def registry():
    return MetricsRegistry()


@pytest.fixture
def server(registry):
    with start_server(registry=registry) as handle:
        yield handle


@pytest.fixture
def client(server):
    return ServeClient(server.url)


class TestEvaluateRoute:
    def test_single_point_matches_the_facade(self, client):
        response = client.evaluate(BASE)
        expected = evaluate(Scenario(**{k: v for k, v in BASE.items()}))
        point = response.results[0]
        assert point.cost_per_transistor_usd == expected.cost_per_transistor_usd
        assert point.area_cm2 == expected.area_cm2
        assert point.die_cost_usd == expected.die_cost_usd
        assert point.ok

    def test_batch_preserves_order_and_labels(self, client):
        scenarios = [{**BASE, "sd": 150.0 + 50.0 * i, "label": f"p{i}"}
                     for i in range(5)]
        response = client.evaluate_many(scenarios)
        assert [p.label for p in response.results] == [
            f"p{i}" for i in range(5)]

    def test_raise_maps_to_422_with_taxonomy_code(self, client):
        with pytest.raises(ServeError) as excinfo:
            client.evaluate(BAD)
        assert excinfo.value.status == 422
        assert excinfo.value.error.code == "DomainError"
        assert "yield" in excinfo.value.error.message

    def test_mask_returns_200_with_diagnostics(self, client):
        response = client.evaluate_many([BASE, BAD], policy="mask")
        assert [p.ok for p in response.results] == [True, False]
        assert response.results[1].cost_per_transistor_usd is None
        assert len(response.diagnostics) == 1
        assert response.diagnostics[0].error_type == "DomainError"

    def test_collect_returns_200_with_aggregate_diagnostics(self, client):
        response = client.evaluate_many([BASE, BAD], policy="collect")
        assert response.results == ()
        assert len(response.diagnostics) == 1
        assert response.diagnostics[0].index == 1


class TestAcceptanceBurst:
    def test_64_concurrent_clients_bit_identical_with_cache_hits(
            self, server, client):
        # 32 distinct operating points, each requested twice → 64
        # concurrent requests; repeats guarantee shared-cache traffic.
        scenarios = [{**BASE, "sd": 150.0 + 10.0 * (i % 32)}
                     for i in range(64)]
        expected = {
            s["sd"]: evaluate(Scenario(**s)).cost_per_transistor_usd
            for s in scenarios[:32]}

        def one(scenario):
            return (scenario["sd"],
                    ServeClient(server.url).evaluate(scenario)
                    .results[0].cost_per_transistor_usd)

        with ThreadPoolExecutor(max_workers=64) as pool:
            got = list(pool.map(one, scenarios))
        # Bit-identical to the sequential facade, every single request.
        assert got == [(sd, expected[sd]) for sd, _ in got]
        assert len(got) == 64
        # One more repeat after the burst: a guaranteed cache hit even
        # if every concurrent duplicate raced its twin past the cache.
        assert one(scenarios[0]) == (scenarios[0]["sd"],
                                     expected[scenarios[0]["sd"]])

        metrics = client.metrics()
        samples = {}
        for line in metrics.splitlines():
            if line.startswith("serve_cache_"):
                name, value = line.rsplit(" ", 1)
                samples[name] = float(value)
        assert samples['serve_cache_lifetime_total{event="hit"}'] > 0
        assert samples["serve_cache_hit_rate"] > 0.0

    def test_batcher_activity_is_visible_in_metrics(self, server, client):
        scenarios = [{**BASE, "sd": 500.0 + i} for i in range(16)]
        with ThreadPoolExecutor(max_workers=16) as pool:
            list(pool.map(lambda s: ServeClient(server.url).evaluate(s),
                          scenarios))
        stats = server.service.batcher_stats()
        assert stats["items"] >= 16
        assert 'serve_batch_lifetime_total{event="request"}' in \
            client.metrics()


class TestGridRoutes:
    def test_sweep_matches_the_facade(self, client):
        scenario = Scenario(**BASE)
        response = client.sweep(scenario, values=[150.0, 300.0, 600.0])
        result = scenario.sweep(values=[150.0, 300.0, 600.0])
        assert response.x == tuple(float(v) for v in result.x)
        assert response.cost == tuple(float(c) for c in result.cost)
        assert response.x_opt == result.x_opt
        assert response.n_masked == 0

    def test_sweep_mask_reports_masked_points(self, client):
        response = client.sweep(BAD, values=[150.0, 300.0], policy="mask")
        assert response.cost == (None, None)
        assert response.x_opt is None and response.cost_opt is None
        assert response.n_masked == 2
        assert len(response.diagnostics) == 2

    def test_pareto_front_and_knee(self, client):
        response = client.pareto(BASE, values=[150.0, 250.0, 450.0])
        assert len(response.front) >= 1
        assert response.knee is not None
        sds = [p.sd for p in response.front]
        assert sds == sorted(sds)

    def test_sensitivity_elasticities(self, client):
        response = client.sensitivity(BASE, parameters=["n_wafers"])
        assert set(response.elasticities) == {"n_wafers"}
        assert response.elasticities["n_wafers"] < 0  # more volume, cheaper

    def test_optimal_sd_matches_the_facade(self, client):
        response = client.optimal_sd(BASE)
        result = Scenario(**BASE).optimal_sd()
        assert response.sd_opt == result.sd_opt
        assert response.cost_opt == result.cost_opt
        assert response.iterations == result.iterations


class TestErrorContract:
    def test_unparseable_body_is_400(self, server):
        request = urllib.request.Request(
            f"{server.url}/evaluate", data=b"{not json",
            method="POST", headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400
        body = json.loads(excinfo.value.read())
        assert body["code"] == "DomainError"

    def test_unknown_field_is_400(self, server):
        # Bypass the client (which validates payloads before posting):
        # a raw body with an unknown field must be rejected server-side.
        body = json.dumps({"scenario": {**BASE, "ghz": 3.0}}).encode()
        request = urllib.request.Request(
            f"{server.url}/evaluate", data=body, method="POST",
            headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400
        assert "ghz" in json.loads(excinfo.value.read())["message"]

    def test_unknown_route_is_404(self, server):
        request = urllib.request.Request(
            f"{server.url}/negotiate", data=b"{}", method="POST")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 404

    def test_convergence_failure_carries_its_code(self, client):
        # An absurdly tight bracket cannot converge: the 422 body must
        # name ConvergenceError, not a generic failure.
        with pytest.raises(ServeError) as excinfo:
            client.optimal_sd(BASE, max_iter=1)
        assert excinfo.value.status == 422
        assert excinfo.value.error.code == "ConvergenceError"


class TestRateLimit:
    def test_429_with_retry_after(self, registry):
        with start_server(rate=5.0, burst=2, registry=registry) as handle:
            client = ServeClient(handle.url)
            client.evaluate(BASE)
            client.evaluate(BASE)
            with pytest.raises(ServeError) as excinfo:
                client.evaluate(BASE)
            assert excinfo.value.status == 429
            assert excinfo.value.error.code == "ExecutionError"
            assert excinfo.value.error.retry_after_s > 0

    def test_retry_after_header_is_set(self, registry):
        with start_server(rate=0.5, burst=1, registry=registry) as handle:
            client = ServeClient(handle.url)
            client.evaluate(BASE)
            body = json.dumps({"scenario": BASE}).encode()
            try:
                urllib.request.urlopen(urllib.request.Request(
                    f"{handle.url}/evaluate", data=body, method="POST"),
                    timeout=10)
            except urllib.error.HTTPError as exc:
                assert exc.code == 429
                assert int(exc.headers["Retry-After"]) >= 1
            else:
                pytest.fail("expected a 429")

    def test_healthz_and_metrics_are_never_limited(self, registry):
        with start_server(rate=1.0, burst=1, registry=registry) as handle:
            client = ServeClient(handle.url)
            client.evaluate(BASE)  # drain the bucket
            for _ in range(5):
                assert client.healthz()["status"] == "ok"
                assert "serve_cache_entries" in client.metrics()

    def test_throttles_surface_in_metrics(self, registry):
        with start_server(rate=1.0, burst=1, registry=registry) as handle:
            client = ServeClient(handle.url)
            client.evaluate(BASE)
            with pytest.raises(ServeError):
                client.evaluate(BASE)
            assert 'serve_ratelimit_lifetime_total{event="throttled"} 1' \
                in client.metrics()


class TestTelemetry:
    def test_request_counter_labels_route_and_status(self, registry, client):
        obs.reset()
        with obs.enabled():
            client.evaluate(BASE)
            with pytest.raises(ServeError):
                client.evaluate(BAD)
        counters = {key: c.value
                    for key, c in obs.get_registry().counters.items()
                    if key.startswith("serve_requests_total")}
        assert counters[
            'serve_requests_total{route="evaluate",status="200"}'] == 1
        assert counters[
            'serve_requests_total{route="evaluate",status="422"}'] == 1

    def test_request_spans_feed_the_duration_sketches(self, client):
        obs.reset()
        with obs.enabled():
            client.evaluate(BASE)
        spans = [sp.name for sp in obs.get_tracer().spans]
        assert "serve.evaluate" in spans

    def test_healthz_reports_schema_contract(self, client):
        payload = client.healthz()
        assert payload["status"] == "ok"
        assert payload["schemas"]["prometheus_text"] == "0.0.4"


class TestCliEntryPoint:
    def test_main_serves_until_stopped(self, capsys):
        from repro.serve.__main__ import main

        ready = threading.Event()
        stop = threading.Event()
        result = {}

        def run():
            result["code"] = main(["--port", "0", "--history="],
                                  ready=ready, stop=stop)

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        assert ready.wait(timeout=10)
        stop.set()
        thread.join(timeout=10)
        assert not thread.is_alive()

    def test_bad_flag_exits_2(self, capsys):
        from repro.serve.__main__ import main

        assert main(["--rate"]) == 2
        assert "usage" in capsys.readouterr().err

    def test_unknown_argument_exits_2(self, capsys):
        from repro.serve.__main__ import main

        assert main(["--frobnicate"]) == 2
