"""API006: the ``Scenario`` facade and the serve wire schemas agree.

The rule reads both sides statically — the ``Scenario`` class body in
``api.py`` and the literal ``SCENARIO_ROUTES`` table plus request
dataclasses in ``serve/schemas.py`` — and reports every drift kind:
facade methods without a route, routes without a method, facade
parameters missing from the mapped request class, mappings to
undefined classes, and a route table that is not a plain literal.
Each scenario here builds a tiny synthetic tree; the last test
dogfoods the rule against the real source tree.
"""

import textwrap
from pathlib import Path

from repro.lint.config import LintConfig
from repro.lint.passes.api_parity import ApiParityPass
from repro.lint.project import load_project

_API = textwrap.dedent('''\
    """Facade module."""

    __all__ = ["Scenario"]


    class Scenario:
        """Facade."""

        def evaluate(self):
            """Doc."""

        def sweep(self, parameter="sd", values=None):
            """Doc."""
    {extra_methods}
''')

_SCHEMAS = textwrap.dedent('''\
    """Wire module."""

    __all__ = ["SCENARIO_ROUTES"]

    SCENARIO_ROUTES = {routes}


    class EvaluateRequest:
        """Doc."""

        scenarios: tuple = ()
        policy: str = "raise"


    class SweepRequest:
        """Doc."""

        scenario: object = None
        parameter: str = "sd"
        values: object = None
        policy: str = "raise"
    {extra_classes}
''')

_ROUTES = '{"evaluate": "EvaluateRequest", "sweep": "SweepRequest"}'


def _tree(tmp_path, api_extra="", routes=_ROUTES, schemas_extra=""):
    (tmp_path / "api.py").write_text(
        _API.format(extra_methods=api_extra))
    serve = tmp_path / "serve"
    serve.mkdir()
    (serve / "schemas.py").write_text(
        _SCHEMAS.format(routes=routes, extra_classes=schemas_extra))
    return tmp_path


def _api006(tree_root):
    project = load_project(tree_root, repo_root=tree_root)
    findings = ApiParityPass().run(project, LintConfig())
    return [f for f in findings if f.rule == "API006"]


def test_matched_surfaces_are_clean(tmp_path):
    assert _api006(_tree(tmp_path)) == []


def test_method_without_route_is_flagged(tmp_path):
    extra = "\n    def pareto(self, values=None):\n        \"\"\"Doc.\"\"\"\n"
    findings = _api006(_tree(tmp_path, api_extra=extra))
    assert len(findings) == 1
    assert "'pareto' has no serve route schema" in findings[0].message
    assert findings[0].path == "api.py"


def test_route_without_method_is_flagged(tmp_path):
    routes = ('{"evaluate": "EvaluateRequest", "sweep": "SweepRequest", '
              '"pareto": "SweepRequest"}')
    findings = _api006(_tree(tmp_path, routes=routes))
    assert len(findings) == 1
    assert "lists 'pareto' but Scenario has no such" in findings[0].message
    assert findings[0].path == "serve/schemas.py"


def test_parameter_missing_from_request_fields(tmp_path):
    extra = ("\n    def pareto(self, granularity=10):\n"
             "        \"\"\"Doc.\"\"\"\n")
    routes = ('{"evaluate": "EvaluateRequest", "sweep": "SweepRequest", '
              '"pareto": "SweepRequest"}')
    findings = _api006(_tree(tmp_path, api_extra=extra, routes=routes))
    assert len(findings) == 1
    assert "parameter 'granularity' is not a field of SweepRequest" \
        in findings[0].message
    assert "one surface" in findings[0].suggestion


def test_diagnostics_out_parameter_is_exempt(tmp_path):
    # ``diagnostics`` is a python-side out-parameter: HTTP responses
    # carry diagnostics in the response body instead, so the request
    # schema legitimately has no such field.
    extra = ("\n    def pareto(self, values=None, diagnostics=None):\n"
             "        \"\"\"Doc.\"\"\"\n")
    routes = ('{"evaluate": "EvaluateRequest", "sweep": "SweepRequest", '
              '"pareto": "SweepRequest"}')
    assert _api006(_tree(tmp_path, api_extra=extra, routes=routes)) == []


def test_constructors_and_properties_are_exempt(tmp_path):
    extra = textwrap.dedent('''
        @classmethod
        def from_node(cls, node):
            """Doc."""

        def replace(self, **overrides):
            """Doc."""

        @property
        def resolved_label(self):
            """Doc."""
    ''')
    extra = textwrap.indent(extra, "    ")
    assert _api006(_tree(tmp_path, api_extra=extra)) == []


def test_mapping_to_undefined_class_is_flagged(tmp_path):
    routes = ('{"evaluate": "EvaluateRequest", "sweep": "GhostRequest"}')
    findings = _api006(_tree(tmp_path, routes=routes))
    assert len(findings) == 1
    assert "maps 'sweep' to 'GhostRequest'" in findings[0].message
    assert "does not define" in findings[0].message


def test_non_literal_route_table_is_flagged(tmp_path):
    findings = _api006(_tree(
        tmp_path, routes='dict(evaluate="EvaluateRequest")'))
    assert len(findings) == 1
    assert "no literal SCENARIO_ROUTES" in findings[0].message
    assert "plain {str: str} literal" in findings[0].suggestion


def test_rule_skips_trees_without_both_surfaces(tmp_path):
    (tmp_path / "api.py").write_text(_API.format(extra_methods=""))
    assert _api006(tmp_path) == []


def test_real_tree_is_clean():
    repo = Path(__file__).resolve().parent.parent
    assert _api006(repo / "src" / "repro") == []
