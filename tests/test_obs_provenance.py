"""Provenance tests: gating, attachment, and cost-model coverage."""

import numpy as np
import pytest

from repro import obs
from repro.cost import (
    DEFAULT_GENERALIZED_MODEL,
    DEFAULT_MASK_COST_MODEL,
    DEFAULT_TEST_COST_MODEL,
    PAPER_DESIGN_COST_MODEL,
    PAPER_FIGURE4_MODEL,
    UtilizedDevice,
    die_cost,
    effective_yield,
    fpga_vs_asic_crossover,
    good_transistors_per_wafer,
    sd_for_transistor_cost,
    transistor_cost,
    transistor_cost_wafer_view,
)
from repro.obs.provenance import summarize_value


@pytest.fixture(autouse=True)
def clean_obs():
    """Isolate each test from global observability state."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


class TestLedger:
    def test_disabled_records_nothing(self):
        assert obs.record_provenance("src", "3", {"sd": 1}) is None
        assert len(obs.get_ledger()) == 0

    def test_enabled_records_and_summarises(self):
        with obs.enabled():
            prov = obs.record_provenance(
                "src", "3", {"sd": 300, "grid": np.arange(10.0)})
        assert prov is not None
        assert prov.params["sd"] == 300
        assert prov.params["grid"] == {"shape": [10], "min": 0.0, "max": 9.0}
        assert obs.get_ledger().records == [prov]

    def test_queries(self):
        with obs.enabled():
            obs.record_provenance("cost.a", "3")
            obs.record_provenance("cost.b", "4")
            obs.record_provenance("data.c", "table_a1")
        ledger = obs.get_ledger()
        assert len(ledger.by_equation("3")) == 1
        assert len(ledger.by_source("cost.")) == 2
        assert ledger.equations_used() == ["3", "4", "table_a1"]

    def test_cap_drops_and_counts(self):
        ledger = obs.get_ledger()
        ledger.max_records = 2
        try:
            with obs.enabled():
                for _ in range(4):
                    obs.record_provenance("src", "3")
            assert len(ledger) == 2
            assert ledger.dropped == 2
        finally:
            ledger.max_records = 10_000

    def test_summarize_value_passthrough_and_repr(self):
        assert summarize_value(3.5) == 3.5
        assert summarize_value("x") == "x"
        assert summarize_value(None) is None
        assert "DesignCostModel" in summarize_value(PAPER_DESIGN_COST_MODEL)


class TestAttachment:
    def test_attach_to_frozen_dataclass_result(self):
        from repro.optimize import sd_sweep
        with obs.enabled():
            result = sd_sweep(PAPER_FIGURE4_MODEL, 1e7, 0.18, 5000, 0.4, 8.0)
        prov = obs.provenance_of(result)
        assert prov is not None
        assert prov.equation == "4"
        assert prov.params["n_transistors"] == 1e7

    def test_optimum_result_carries_provenance(self):
        from repro.optimize import optimal_sd
        with obs.enabled():
            result = optimal_sd(PAPER_FIGURE4_MODEL, 1e7, 0.18, 5000, 0.4, 8.0)
        prov = obs.provenance_of(result)
        assert prov is not None
        assert prov.equation == "4"

    def test_attach_tolerates_unattachable_objects(self):
        with obs.enabled():
            prov = obs.record_provenance("src", "3")
        assert obs.attach(1.5, prov) == 1.5
        assert obs.provenance_of(1.5) is None

    def test_disabled_attaches_nothing(self):
        from repro.optimize import sd_sweep
        result = sd_sweep(PAPER_FIGURE4_MODEL, 1e7, 0.18, 5000, 0.4, 8.0)
        assert obs.provenance_of(result) is None


class TestCostModelCoverage:
    """Every public cost model evaluation records equation + parameters."""

    def test_every_cost_entry_point_records_provenance(self):
        fpga = UtilizedDevice(name="FPGA", sd=600.0, utilization=0.5)
        calls = [
            # (expected source fragment, expected equation, thunk)
            ("manufacturing.transistor_cost_wafer_view", "1",
             lambda: transistor_cost_wafer_view(3000.0, 1e7, 100, 0.8)),
            ("manufacturing.transistor_cost", "3",
             lambda: transistor_cost(8.0, 0.18, 300, 0.8)),
            ("manufacturing.die_cost", "3",
             lambda: die_cost(8.0, 0.18, 300, 1e7, 0.8)),
            ("manufacturing.good_transistors_per_wafer", "3",
             lambda: good_transistors_per_wafer(300.0, 0.18, 300, 0.8)),
            ("manufacturing.sd_for_transistor_cost", "3",
             lambda: sd_for_transistor_cost(1e-6, 8.0, 0.18, 0.8)),
            ("design.DesignCostModel.cost", "6",
             lambda: PAPER_DESIGN_COST_MODEL.cost(1e7, 300)),
            ("design.DesignCostModel.sd_for_budget", "6",
             lambda: PAPER_DESIGN_COST_MODEL.sd_for_budget(1e7, 1e7)),
            ("masks.MaskSetCostModel.cost", "5",
             lambda: DEFAULT_MASK_COST_MODEL.cost(0.18)),
            ("test.TestCostModel.cost_per_cm2", "s2.5",
             lambda: DEFAULT_TEST_COST_MODEL.cost_per_cm2(300, 0.18, 1e7)),
            ("total.TotalCostModel.transistor_cost", "4",
             lambda: PAPER_FIGURE4_MODEL.transistor_cost(
                 300, 1e7, 0.18, 5000, 0.4, 8.0)),
            ("total.TotalCostModel.design_cost_per_cm2", "5",
             lambda: PAPER_FIGURE4_MODEL.design_cost_per_cm2(1e7, 300, 0.18, 5000)),
            ("total.TotalCostModel.breakdown", "4",
             lambda: PAPER_FIGURE4_MODEL.breakdown(300, 1e7, 0.18, 5000, 0.4, 8.0)),
            ("utilization.effective_yield", "s2.5",
             lambda: effective_yield(0.8, 0.5)),
            ("utilization.UtilizedDevice.cost_per_used_transistor", "4",
             lambda: fpga.cost_per_used_transistor(1e7, 0.18, 5000, 0.8, 8.0)),
            ("utilization.fpga_vs_asic_crossover", "4",
             lambda: fpga_vs_asic_crossover(1e7, 0.18, 0.8, 8.0, fpga)),
            ("generalized.GeneralizedCostModel.transistor_cost", "7",
             lambda: DEFAULT_GENERALIZED_MODEL.transistor_cost(
                 300, 1e7, 0.18, 5000)),
            ("generalized.GeneralizedCostModel.breakdown", "7",
             lambda: DEFAULT_GENERALIZED_MODEL.breakdown(300, 1e7, 0.18, 5000)),
        ]
        for fragment, equation, thunk in calls:
            obs.reset()
            with obs.enabled():
                thunk()
            matching = [
                r for r in obs.get_ledger().records
                if fragment in r.source and r.equation == equation
            ]
            assert matching, f"no provenance for {fragment} (eq {equation})"
            assert matching[0].params, f"empty params for {fragment}"

    def test_dataset_provenance_names_rows(self):
        from repro.data import DesignRegistry, load_itrs_1999
        with obs.enabled():
            DesignRegistry.table_a1()
            load_itrs_1999()
        ledger = obs.get_ledger()
        [table] = [r for r in ledger.records if r.dataset == "table_a1"]
        assert len(table.rows) == 49
        [itrs] = [r for r in ledger.records if r.dataset == "itrs1999"]
        assert 1999 in itrs.rows
