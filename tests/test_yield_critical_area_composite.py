"""Critical-area model and composite Y(·) tests — the eq.-(7) yield."""

import numpy as np
import pytest

from repro.errors import DomainError
from repro.yieldmodels import (
    DEFAULT_COMPOSITE_YIELD,
    CompositeYield,
    CriticalAreaModel,
    PoissonYield,
    SeedsYield,
)


class TestCriticalAreaModel:
    def test_occupancy_saturates_at_dense_bound(self):
        m = CriticalAreaModel(reference_sd=100.0)
        assert m.occupancy(100.0) == pytest.approx(1.0)
        assert m.occupancy(50.0) == pytest.approx(1.0)  # clipped

    def test_occupancy_falls_sublinearly(self):
        m = CriticalAreaModel(reference_sd=100.0, density_exponent=0.8)
        assert m.occupancy(200.0) == pytest.approx(0.5**0.8)
        # Sub-linear: a 2x sparser design keeps MORE than half the
        # exposure.
        assert m.occupancy(200.0) > 0.5

    def test_occupancy_linear_when_exponent_one(self):
        m = CriticalAreaModel(reference_sd=100.0, density_exponent=1.0)
        assert m.occupancy(200.0) == pytest.approx(0.5)

    def test_critical_fraction_scaled_by_saturation(self):
        m = CriticalAreaModel(reference_sd=100.0, saturation=0.6)
        assert m.critical_fraction(100.0) == pytest.approx(0.6)

    def test_critical_area_product(self):
        m = CriticalAreaModel()
        assert m.critical_area_cm2(2.0, 200.0) == pytest.approx(
            2.0 * m.critical_fraction(200.0))

    def test_faults_per_die(self):
        m = CriticalAreaModel()
        assert m.faults_per_die(2.0, 200.0, 0.5) == pytest.approx(
            m.critical_area_cm2(2.0, 200.0) * 0.5)

    def test_density_compensation(self):
        # Key trade-off (§3.1): at fixed N_tr and lambda, die area ~ sd
        # but critical fraction ~ sd^-gamma, so faults per die grow
        # only as sd^(1-gamma) — far slower than the die itself. Yield
        # neither rewards sparseness much nor punishes density much.
        m = CriticalAreaModel(reference_sd=100.0, density_exponent=0.8)
        n_tr, lam2 = 1e7, (0.18e-4) ** 2
        faults = [m.faults_per_die(n_tr * sd * lam2, sd, 0.5) for sd in (150, 600)]
        assert faults[1] > faults[0]                     # sparser die = bigger target
        assert faults[1] / faults[0] == pytest.approx(4**0.2, rel=1e-9)

    def test_exact_compensation_when_exponent_one(self):
        m = CriticalAreaModel(reference_sd=100.0, density_exponent=1.0)
        n_tr, lam2 = 1e7, (0.18e-4) ** 2
        faults = [m.faults_per_die(n_tr * sd * lam2, sd, 0.5) for sd in (150, 300, 600)]
        assert max(faults) == pytest.approx(min(faults), rel=1e-9)

    def test_rejects_bad_sd(self):
        with pytest.raises(DomainError):
            CriticalAreaModel().occupancy(0.0)


class TestCompositeYield:
    def test_in_unit_interval(self):
        y = DEFAULT_COMPOSITE_YIELD(1e7, 300, 0.18, 50_000)
        assert 0 < y <= 1

    def test_more_transistors_lower_yield(self):
        cy = DEFAULT_COMPOSITE_YIELD
        assert cy(1e8, 300, 0.18) < cy(1e7, 300, 0.18)

    def test_smaller_feature_lower_yield_at_fixed_die(self):
        # At FIXED die area the finer node's denser defect spectrum
        # hurts: scale N_tr with 1/lambda^2 to hold the die constant.
        cy = DEFAULT_COMPOSITE_YIELD
        area = 1.0
        lam2 = {f: (f * 1e-4) ** 2 for f in (0.09, 0.25)}
        n_fine = area / (300 * lam2[0.09])
        n_coarse = area / (300 * lam2[0.25])
        assert cy.die_area_cm2(n_fine, 300, 0.09) == pytest.approx(area)
        assert cy(n_fine, 300, 0.09) < cy(n_coarse, 300, 0.25)

    def test_smaller_feature_higher_yield_at_fixed_count(self):
        # At fixed N_tr a shrink wins: die area falls as lambda^2 while
        # defect density only grows as 1/lambda.
        cy = DEFAULT_COMPOSITE_YIELD
        assert cy(1e7, 300, 0.09) > cy(1e7, 300, 0.25)

    def test_volume_learning_improves_yield(self):
        cy = DEFAULT_COMPOSITE_YIELD
        assert cy(1e7, 300, 0.18, n_wafers=100) < cy(1e7, 300, 0.18, n_wafers=1e6)

    def test_systematic_yield_multiplies(self):
        base = CompositeYield()
        scaled = CompositeYield(systematic_yield=0.9)
        assert scaled(1e7, 300, 0.18) == pytest.approx(0.9 * base(1e7, 300, 0.18))

    def test_systematic_yield_validated(self):
        with pytest.raises(DomainError):
            CompositeYield(systematic_yield=1.5)

    def test_statistic_is_pluggable(self):
        poisson = CompositeYield(statistic=PoissonYield())
        seeds = CompositeYield(statistic=SeedsYield())
        # Seeds (max clustering) is always the more optimistic model.
        assert seeds(1e8, 300, 0.13) > poisson(1e8, 300, 0.13)

    def test_die_area_view(self):
        cy = DEFAULT_COMPOSITE_YIELD
        assert cy.die_area_cm2(1e7, 300, 0.18) == pytest.approx(0.972)

    def test_array_sweep(self):
        sd = np.array([150.0, 300.0, 600.0])
        y = DEFAULT_COMPOSITE_YIELD(1e7, sd, 0.18)
        assert y.shape == (3,)
        assert np.all((y > 0) & (y <= 1))

    def test_paper_operating_points_bracketed(self):
        # The paper's Y = 0.4 and Y = 0.9 scenarios should be reachable
        # within the default model by varying size/node/volume.
        cy = DEFAULT_COMPOSITE_YIELD
        y_hard = cy(5e8, 300, 0.10, n_wafers=500)   # big nanometre die, immature
        y_easy = cy(5e6, 200, 0.25, n_wafers=1e6)   # small mature die
        assert y_hard < 0.4 < 0.9 < y_easy
