"""Classic yield-model tests."""

import math

import numpy as np
import pytest

from repro.errors import DomainError
from repro.yieldmodels import (
    MurphyYield,
    NegativeBinomialYield,
    PoissonYield,
    SeedsYield,
    bose_einstein,
    yield_model,
)

ALL_MODELS = [PoissonYield(), MurphyYield(), SeedsYield(), NegativeBinomialYield(alpha=2.0)]


class TestCommonContract:
    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.name)
    def test_zero_faults_yields_unity(self, model):
        assert model.yield_from_faults(0.0) == pytest.approx(1.0)

    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.name)
    def test_monotone_decreasing(self, model):
        faults = np.linspace(0, 10, 50)
        y = np.asarray(model.yield_from_faults(faults))
        assert np.all(np.diff(y) < 0)

    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.name)
    def test_bounded_in_unit_interval(self, model):
        y = np.asarray(model.yield_from_faults(np.linspace(0, 100, 200)))
        assert np.all(y > 0)
        assert np.all(y <= 1)

    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.name)
    def test_first_order_agreement(self, model):
        # All models agree to first order: Y ~ 1 - A*D for small A*D.
        eps = 1e-4
        assert model.yield_from_faults(eps) == pytest.approx(1 - eps, abs=1e-7)

    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.name)
    def test_rejects_negative_faults(self, model):
        with pytest.raises(DomainError):
            model.yield_from_faults(-0.1)

    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.name)
    def test_call_with_area_and_density(self, model):
        direct = model.yield_from_faults(0.6)
        via_call = model(2.0, 0.3)
        assert via_call == pytest.approx(direct)


class TestKnownValues:
    def test_poisson_one_fault(self):
        assert PoissonYield().yield_from_faults(1.0) == pytest.approx(math.exp(-1))

    def test_seeds_one_fault(self):
        assert SeedsYield().yield_from_faults(1.0) == pytest.approx(0.5)

    def test_murphy_one_fault(self):
        expected = ((1 - math.exp(-1)) / 1.0) ** 2
        assert MurphyYield().yield_from_faults(1.0) == pytest.approx(expected)

    def test_negbinomial_one_fault_alpha2(self):
        assert NegativeBinomialYield(2.0).yield_from_faults(1.0) == pytest.approx(1.5**-2)


class TestModelOrdering:
    """Poisson <= Murphy <= NB(2) <= Seeds at equal A*D (clustering helps)."""

    @pytest.mark.parametrize("faults", [0.5, 1.0, 2.0, 5.0])
    def test_ordering(self, faults):
        poisson = PoissonYield().yield_from_faults(faults)
        murphy = MurphyYield().yield_from_faults(faults)
        nb = NegativeBinomialYield(2.0).yield_from_faults(faults)
        seeds = SeedsYield().yield_from_faults(faults)
        assert poisson < murphy < nb < seeds


class TestNegativeBinomialLimits:
    def test_large_alpha_approaches_poisson(self):
        nb = NegativeBinomialYield(alpha=1e6)
        assert nb.yield_from_faults(2.0) == pytest.approx(
            PoissonYield().yield_from_faults(2.0), rel=1e-4)

    def test_alpha_one_is_seeds(self):
        nb = NegativeBinomialYield(alpha=1.0)
        assert nb.yield_from_faults(3.0) == pytest.approx(
            SeedsYield().yield_from_faults(3.0))

    def test_rejects_nonpositive_alpha(self):
        with pytest.raises(DomainError):
            NegativeBinomialYield(alpha=0.0)


class TestBoseEinstein:
    def test_is_nb_with_step_count(self):
        be = bose_einstein(24)
        assert isinstance(be, NegativeBinomialYield)
        assert be.alpha == 24.0

    def test_rejects_zero_steps(self):
        with pytest.raises(DomainError):
            bose_einstein(0)


class TestInversions:
    @pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: m.name)
    def test_max_area_round_trip(self, model):
        d0 = 0.5
        area = model.max_area_for_yield(0.8, d0)
        assert float(model(area, d0)) == pytest.approx(0.8, rel=1e-6)

    def test_max_area_target_one_is_zero(self):
        assert PoissonYield().max_area_for_yield(1.0, 0.5) == 0.0

    def test_defect_density_round_trip(self):
        model = NegativeBinomialYield(2.0)
        d = model.defect_density_for_yield(0.4, 3.4)
        assert float(model(3.4, d)) == pytest.approx(0.4, rel=1e-6)

    def test_paper_y04_operating_point_reachable(self):
        # The Figure 4(a) scenario Y=0.4 at a 10M-tx, sd=300 die needs a
        # plausible defect density (< 2/cm^2).
        model = NegativeBinomialYield(2.0)
        d = model.defect_density_for_yield(0.4, 0.972)
        assert 0.1 < d < 2.5


class TestFactory:
    def test_by_name(self):
        assert isinstance(yield_model("poisson"), PoissonYield)
        assert isinstance(yield_model("murphy"), MurphyYield)

    def test_kwargs_forwarded(self):
        m = yield_model("negbinomial", alpha=1.5)
        assert m.alpha == 1.5

    def test_case_insensitive(self):
        assert isinstance(yield_model("Seeds"), SeedsYield)

    def test_unknown_name(self):
        with pytest.raises(DomainError, match="unknown yield model"):
            yield_model("gaussian")
