"""Wire schemas: strict parsing, canonical JSON, lossless round trips.

The frozen dataclasses in ``repro.serve.schemas`` are the entire HTTP
contract — the server parses requests and renders responses with the
very same classes the client uses. These tests pin the parse rules
(unknown fields rejected, types checked, policy spellings validated,
the single-``scenario`` sugar) and that ``to_json`` → ``from_json`` is
the identity for every request/response class.
"""

import json
import math

import pytest

from repro.api import Scenario
from repro.errors import DomainError
from repro.robust import Diagnostic
from repro.serve.schemas import (
    SCENARIO_ROUTES,
    DiagnosticPayload,
    ErrorResponse,
    EvaluatedPoint,
    EvaluateRequest,
    EvaluateResponse,
    OptimalSdRequest,
    OptimalSdResponse,
    ParetoPoint,
    ParetoRequest,
    ParetoResponse,
    ScenarioPayload,
    SensitivityRequest,
    SensitivityResponse,
    SweepRequest,
    SweepResponse,
)

POINT = ScenarioPayload(n_transistors=1e7, feature_um=0.18, sd=300.0,
                        n_wafers=5_000.0, yield_fraction=0.4,
                        cost_per_cm2=8.0, label="fig4")


class TestScenarioPayload:
    def test_round_trip(self):
        assert ScenarioPayload.from_json(POINT.to_json()) == POINT

    def test_defaults_match_the_facade(self):
        payload = ScenarioPayload(n_transistors=1e7, feature_um=0.18)
        scenario = Scenario(n_transistors=1e7, feature_um=0.18)
        for name in ("sd", "n_wafers", "yield_fraction", "cost_per_cm2",
                     "label"):
            assert getattr(payload, name) == getattr(scenario, name)

    def test_facade_round_trip(self):
        scenario = POINT.to_scenario()
        assert isinstance(scenario, Scenario)
        assert ScenarioPayload.from_scenario(scenario) == POINT

    def test_unknown_field_rejected(self):
        data = {**POINT.to_dict(), "frequency_ghz": 3.0}
        with pytest.raises(DomainError, match="unknown field.*frequency_ghz"):
            ScenarioPayload.from_dict(data)

    def test_missing_required_field_rejected(self):
        with pytest.raises(DomainError, match="missing required field "
                                              "'feature_um'"):
            ScenarioPayload.from_dict({"n_transistors": 1e7})

    def test_wrong_type_rejected(self):
        with pytest.raises(DomainError, match="'sd' must be a number"):
            ScenarioPayload.from_dict({"n_transistors": 1e7,
                                       "feature_um": 0.18, "sd": "300"})

    def test_bool_is_not_a_number(self):
        with pytest.raises(DomainError, match="must be a number"):
            ScenarioPayload.from_dict({"n_transistors": True,
                                       "feature_um": 0.18})

    def test_non_object_rejected(self):
        with pytest.raises(DomainError, match="expected a JSON object"):
            ScenarioPayload.from_json("[1, 2]")

    def test_malformed_json_rejected(self):
        with pytest.raises(DomainError, match="invalid JSON"):
            ScenarioPayload.from_json("{not json")


class TestEvaluateRequest:
    def test_round_trip(self):
        request = EvaluateRequest(scenarios=(POINT,), policy="mask")
        assert EvaluateRequest.from_json(request.to_json()) == request

    def test_single_scenario_sugar(self):
        request = EvaluateRequest.from_dict({"scenario": POINT.to_dict()})
        assert request.scenarios == (POINT,)
        assert request.policy == "raise"

    def test_both_spellings_rejected(self):
        with pytest.raises(DomainError, match="either 'scenario' or"):
            EvaluateRequest.from_dict({"scenario": POINT.to_dict(),
                                       "scenarios": [POINT.to_dict()]})

    def test_unknown_policy_rejected(self):
        with pytest.raises(DomainError, match="unknown error policy"):
            EvaluateRequest.from_dict({"scenarios": [POINT.to_dict()],
                                       "policy": "explode"})

    def test_policy_case_normalised(self):
        request = EvaluateRequest.from_dict(
            {"scenarios": [POINT.to_dict()], "policy": "COLLECT"})
        assert request.policy == "collect"


class TestRequestRoundTrips:
    def test_sweep(self):
        request = SweepRequest(scenario=POINT, parameter="n_wafers",
                               values=(1e3, 1e4), policy="mask")
        assert SweepRequest.from_json(request.to_json()) == request

    def test_pareto(self):
        request = ParetoRequest(scenario=POINT, values=(100.0, 300.0))
        assert ParetoRequest.from_json(request.to_json()) == request

    def test_sensitivity(self):
        request = SensitivityRequest(scenario=POINT,
                                     parameters=("n_wafers",),
                                     rel_step=0.1, sd_max=2000.0)
        assert SensitivityRequest.from_json(request.to_json()) == request

    def test_optimal_sd(self):
        request = OptimalSdRequest(scenario=POINT, sd_max=2000.0, tol=1e-8,
                                   max_iter=100, retry=True)
        assert OptimalSdRequest.from_json(request.to_json()) == request

    def test_route_table_covers_every_request_class(self):
        classes = {"EvaluateRequest", "SweepRequest", "ParetoRequest",
                   "SensitivityRequest", "OptimalSdRequest"}
        assert set(SCENARIO_ROUTES.values()) == classes


class TestResponseRoundTrips:
    def test_evaluate(self):
        response = EvaluateResponse(
            results=(EvaluatedPoint(label="a", cost_per_transistor_usd=1e-6,
                                    area_cm2=0.97, die_cost_usd=10.0,
                                    ok=True),),
            backend="numpy",
            diagnostics=(DiagnosticPayload(
                where="w", equation="4", parameter="sd", value=None,
                index=0, error_type="DomainError", message="bad"),))
        assert EvaluateResponse.from_json(response.to_json()) == response

    def test_sweep(self):
        response = SweepResponse(parameter="sd", x=(100.0, 200.0),
                                 cost=(1e-6, None), x_opt=100.0,
                                 cost_opt=1e-6, n_masked=1)
        assert SweepResponse.from_json(response.to_json()) == response

    def test_pareto(self):
        point = ParetoPoint(sd=150.0, die_area_cm2=1.0,
                            transistor_cost_usd=1e-6, design_cost_usd=2e5)
        response = ParetoResponse(front=(point,), knee=point)
        assert ParetoResponse.from_json(response.to_json()) == response

    def test_pareto_empty_front(self):
        response = ParetoResponse(front=(), knee=None)
        assert ParetoResponse.from_json(response.to_json()) == response

    def test_sensitivity(self):
        response = SensitivityResponse(
            elasticities={"n_wafers": -0.35, "yield_fraction": None})
        assert SensitivityResponse.from_json(response.to_json()) == response

    def test_optimal_sd(self):
        response = OptimalSdResponse(sd_opt=310.0, cost_opt=4.6e-6,
                                     iterations=53,
                                     bracket=(5.0, 5000.0), attempts=2)
        assert OptimalSdResponse.from_json(response.to_json()) == response

    def test_error(self):
        response = ErrorResponse(code="DomainError", message="bad yield",
                                 retry_after_s=1.5)
        assert ErrorResponse.from_json(response.to_json()) == response

    def test_nan_serialises_as_null(self):
        response = SweepResponse(parameter="sd", x=(1.0,), cost=(math.nan,),
                                 x_opt=None, cost_opt=None)
        data = json.loads(response.to_json())
        assert data["cost"] == [None]

    def test_json_is_canonical(self):
        data = json.loads(POINT.to_json())
        assert list(data) == sorted(data)


class TestDiagnosticPayload:
    def test_from_diagnostic_preserves_fields(self):
        diag = Diagnostic(where="api.evaluate_many", equation="4",
                          parameter="scenario", value=-1.0, index=2,
                          error_type="DomainError", message="bad")
        payload = DiagnosticPayload.from_diagnostic(diag)
        assert payload.where == diag.where
        assert payload.value == -1.0
        assert payload.index == 2

    def test_non_json_value_stringified(self):
        diag = Diagnostic(where="w", equation="4", parameter="p",
                          value=object(), index=None,
                          error_type="TypeError", message="m")
        payload = DiagnosticPayload.from_diagnostic(diag)
        assert isinstance(payload.value, str)
        json.dumps(payload.to_dict())  # must be serialisable
