"""Density-progress decomposition tests (§2.2.1's untraceable split, traced)."""

import math

import pytest

from repro.data import DesignRegistry
from repro.density import density_progress_decomposition
from repro.errors import DomainError


@pytest.fixture(scope="module")
def reg():
    return DesignRegistry.table_a1()


class TestDecompositionAlgebra:
    def test_parts_sum_to_total(self, reg):
        p5 = reg.by_device("Pentium (P5)")
        p3 = reg.by_device("Pentium III")
        progress = density_progress_decomposition(p5, p3)
        assert progress.consistent()

    def test_self_decomposition_is_zero(self, reg):
        r = reg.by_index(11)
        progress = density_progress_decomposition(r, r)
        assert progress.total_log_gain == pytest.approx(0.0, abs=1e-12)
        assert progress.process_log_gain == pytest.approx(0.0, abs=1e-12)

    def test_antisymmetric(self, reg):
        a, b = reg.by_index(3), reg.by_index(11)
        fwd = density_progress_decomposition(a, b)
        back = density_progress_decomposition(b, a)
        assert fwd.total_log_gain == pytest.approx(-back.total_log_gain)
        assert fwd.process_log_gain == pytest.approx(-back.process_log_gain)

    def test_density_ratio(self, reg):
        a, b = reg.by_index(3), reg.by_index(11)
        progress = density_progress_decomposition(a, b)
        assert progress.density_ratio == pytest.approx(
            b.transistor_density_per_cm2 / a.transistor_density_per_cm2)

    def test_no_change_share_undefined(self, reg):
        r = reg.by_index(11)
        progress = density_progress_decomposition(r, r)
        with pytest.raises(DomainError):
            _ = progress.design_share


class TestPaperNarrative:
    def test_intel_generational_gain_is_all_process(self, reg):
        # P5 (0.8um, sd 148) -> Pentium III (0.25um, sd 207): density
        # grew ~7x, but the DESIGN contribution is NEGATIVE — the shrink
        # did all the work and design sparseness gave some back.
        # Exactly §2.2.1's "difficult to trace" split, traced.
        p5 = reg.by_device("Pentium (P5)")
        p3 = reg.by_device("Pentium III")
        progress = density_progress_decomposition(p5, p3)
        assert progress.density_ratio > 4
        assert progress.process_log_gain > 0
        assert progress.design_log_gain < 0
        assert progress.design_share < 0

    def test_shrink_contribution_is_quadratic_in_lambda(self, reg):
        p5 = reg.by_device("Pentium (P5)")
        p3 = reg.by_device("Pentium III")
        progress = density_progress_decomposition(p5, p3)
        assert progress.process_log_gain == pytest.approx(
            -2 * math.log(0.25 / 0.8), rel=1e-9)

    def test_amd_k6_family_design_contribution_positive(self, reg):
        # K6 (0.35, sd ~184 overall) -> K6-2 (0.25, sd 117): AMD's
        # densification REINFORCED the shrink — the follower strategy
        # visible in the decomposition.
        k6 = reg.by_device("K6 (Model 6)")
        k6_2 = reg.by_device("K6-2")
        progress = density_progress_decomposition(k6, k6_2)
        assert progress.design_log_gain > 0
        assert 0 < progress.design_share < 1

    def test_every_consecutive_intel_pair_consistent(self, reg):
        intel = list(reg.by_vendor("Intel").sorted_by(lambda r: (r.year, r.index)))
        for a, b in zip(intel, intel[1:]):
            assert density_progress_decomposition(a, b).consistent()
