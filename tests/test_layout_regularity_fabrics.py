"""Regularity economics (§3.2) and fabric-generator tests."""

import pytest

from repro.errors import LayoutError
from repro.layout import (
    CharacterizationCostModel,
    extract_patterns,
    memory_array,
    random_logic_layout,
    regular_fabric,
    regularity_report,
    sram_cell,
    standard_cell,
)


class TestFabricGenerators:
    def test_memory_array_size(self):
        mem = memory_array(4, 8)
        assert len(mem.instances) == 32
        assert mem.transistor_count() == 32 * 6

    def test_memory_array_dense(self):
        # 144 lambda^2 per 6-transistor cell -> s_d = 24, squarely in
        # Table A1's memory band (~30-60 with overheads we omit).
        assert memory_array(8, 8).sd() == pytest.approx(24.0, rel=0.01)

    def test_fabric_pitch_aligned(self):
        fab = regular_fabric(5, 5, library_size=2, seed=0)
        pitches = {inst.dx % inst.cell.width for inst in fab.instances}
        assert pitches == {0}

    def test_fabric_deterministic_per_seed(self):
        a = regular_fabric(5, 5, library_size=3, seed=9)
        b = regular_fabric(5, 5, library_size=3, seed=9)
        assert [i.cell.name for i in a.instances] == [i.cell.name for i in b.instances]

    def test_random_layout_sparser_than_fabric(self):
        fab = regular_fabric(10, 10, library_size=4, seed=1)
        rnd = random_logic_layout(10, 10, seed=1)
        assert rnd.sd() > fab.sd()

    def test_random_layout_whitespace_increases_sd(self):
        tight = random_logic_layout(10, 10, seed=1, whitespace_fraction=0.0)
        loose = random_logic_layout(10, 10, seed=1, whitespace_fraction=0.5)
        assert loose.sd() > tight.sd()

    def test_random_layout_never_empty(self):
        layout = random_logic_layout(1, 1, seed=0, whitespace_fraction=0.99)
        assert layout.transistor_count() > 0

    def test_variant_cells_distinct_geometry(self):
        a = standard_cell("a", variant=0)
        b = standard_cell("b", variant=1)
        rel_a = {r.relative_to(0, 0) for r in a.rects}
        rel_b = {r.relative_to(0, 0) for r in b.rects}
        assert rel_a != rel_b

    def test_sram_cell_footprint(self):
        cell = sram_cell()
        assert cell.width == 12
        assert cell.height == 12

    def test_invalid_whitespace_rejected(self):
        with pytest.raises(LayoutError):
            random_logic_layout(2, 2, whitespace_fraction=1.0)


class TestCharacterizationCost:
    @pytest.fixture(scope="class")
    def libs(self):
        fab = regular_fabric(10, 10, library_size=2, seed=0)
        rnd = random_logic_layout(10, 10, seed=0)
        return (extract_patterns(fab.flatten(), 24),
                extract_patterns(rnd.flatten(), 24))

    def test_brute_force_scales_with_windows(self, libs):
        fab_lib, _ = libs
        m = CharacterizationCostModel()
        assert m.brute_force_cost(fab_lib) == pytest.approx(
            m.brute_force_per_window_usd * fab_lib.n_occupied_windows)

    def test_reuse_beats_brute_force_on_fabric(self, libs):
        fab_lib, _ = libs
        m = CharacterizationCostModel()
        assert m.savings_factor(fab_lib) > 10

    def test_reuse_barely_helps_random_logic(self, libs):
        _, rnd_lib = libs
        m = CharacterizationCostModel()
        assert m.savings_factor(rnd_lib) < 3

    def test_family_reuse_amortises(self, libs):
        fab_lib, _ = libs
        m = CharacterizationCostModel()
        assert m.reuse_cost(fab_lib, n_products=10) < m.reuse_cost(fab_lib, n_products=1)

    def test_products_validated(self, libs):
        fab_lib, _ = libs
        with pytest.raises(Exception):
            CharacterizationCostModel().reuse_cost(fab_lib, n_products=0)


class TestRegularityReport:
    def test_report_fields_consistent(self):
        fab = regular_fabric(8, 8, library_size=2, seed=0)
        lib = extract_patterns(fab.flatten(), 24)
        report = regularity_report(lib)
        assert report.n_unique_patterns == lib.n_unique
        assert report.regularity_index == pytest.approx(lib.regularity_index())
        assert report.savings_factor == pytest.approx(
            report.brute_force_cost_usd / report.reuse_cost_usd)

    def test_section_32_ordering(self):
        # memory >= fabric >> random logic in savings factor.
        m = CharacterizationCostModel()
        mem = extract_patterns(memory_array(12, 12).flatten(), 12)
        fab = extract_patterns(regular_fabric(10, 10, library_size=2, seed=0).flatten(), 24)
        rnd = extract_patterns(random_logic_layout(10, 10, seed=0).flatten(), 24)
        assert m.savings_factor(mem) > m.savings_factor(rnd)
        assert m.savings_factor(fab) > m.savings_factor(rnd)
