"""Design-rule checker tests."""

import pytest

from repro.errors import LayoutError
from repro.layout import (
    MEAD_CONWAY_RULES,
    DesignRules,
    Rect,
    check_rules,
    memory_array,
    random_logic_layout,
    regular_fabric,
    sram_cell,
    standard_cell,
)


class TestWidthRule:
    def test_narrow_rect_flagged(self):
        violations = check_rules([Rect("m1", 0, 0, 1, 10)])
        assert len(violations) == 1
        assert violations[0].rule == "width"
        assert violations[0].measured == 1.0

    def test_minimum_width_passes(self):
        assert check_rules([Rect("m1", 0, 0, 2, 10)]) == []

    def test_width_checks_both_axes(self):
        violations = check_rules([Rect("m1", 0, 0, 10, 1)])
        assert violations and violations[0].rule == "width"

    def test_per_layer_rule(self):
        rules = DesignRules(min_width={"m2": 4})
        assert check_rules([Rect("m2", 0, 0, 3, 10)], rules)
        assert not check_rules([Rect("m1", 0, 0, 3, 10)], rules)


class TestSpacingRule:
    def test_tight_pair_flagged(self):
        rects = [Rect("m1", 0, 0, 4, 4), Rect("m1", 5, 0, 9, 4)]  # gap 1
        violations = check_rules(rects)
        assert any(v.rule == "spacing" for v in violations)

    def test_legal_gap_passes(self):
        rects = [Rect("m1", 0, 0, 4, 4), Rect("m1", 6, 0, 10, 4)]  # gap 2
        assert check_rules(rects) == []

    def test_touching_rects_merge(self):
        rects = [Rect("m1", 0, 0, 4, 4), Rect("m1", 4, 0, 8, 4)]  # abutting
        assert check_rules(rects) == []

    def test_overlapping_rects_merge(self):
        rects = [Rect("m1", 0, 0, 4, 4), Rect("m1", 2, 0, 8, 4)]
        assert check_rules(rects) == []

    def test_vertical_spacing_checked(self):
        rects = [Rect("poly", 0, 0, 4, 4), Rect("poly", 0, 5, 4, 9)]  # gap 1
        assert any(v.rule == "spacing" for v in check_rules(rects))

    def test_cross_layer_gap_ignored(self):
        rects = [Rect("m1", 0, 0, 4, 4), Rect("m2", 5, 0, 9, 4)]
        assert check_rules(rects) == []

    def test_diagonal_rects_not_facing(self):
        rects = [Rect("m1", 0, 0, 4, 4), Rect("m1", 5, 5, 9, 9)]
        assert check_rules(rects) == []

    def test_m2_wider_rule(self):
        # MEAD_CONWAY_RULES: m2 spacing 3.
        rects = [Rect("m2", 0, 0, 4, 4), Rect("m2", 6, 0, 10, 4)]  # gap 2
        assert any(v.layer == "m2" for v in check_rules(rects))

    def test_violation_str(self):
        rects = [Rect("m1", 0, 0, 4, 4), Rect("m1", 5, 0, 9, 4)]
        text = str(check_rules(rects)[0])
        assert "spacing violation" in text
        assert "m1" in text


class TestGeneratorsClean:
    """The synthetic layouts the reproduction analyses must be legal."""

    def test_sram_cell_clean(self):
        assert check_rules(list(sram_cell().rects)) == []

    def test_standard_cells_clean(self):
        for variant in range(6):
            cell = standard_cell(f"c{variant}", n_gates=3, variant=variant)
            assert check_rules(list(cell.rects)) == [], f"variant {variant}"

    def test_memory_array_clean(self):
        assert check_rules(memory_array(6, 6).flatten()) == []

    def test_fabric_clean(self):
        assert check_rules(regular_fabric(6, 6, library_size=4, seed=0).flatten()) == []

    @pytest.mark.parametrize("seed", range(5))
    def test_random_layout_clean_across_seeds(self, seed):
        layout = random_logic_layout(5, 5, seed=seed)
        assert check_rules(layout.flatten()) == []

    def test_empty_layout_rejected(self):
        with pytest.raises(LayoutError):
            check_rules([])
