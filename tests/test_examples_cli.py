"""Smoke tests: every example script runs, and the CLI reports.

Examples are the library's de-facto acceptance tests — each exercises a
different slice of the public API on a realistic scenario. They must
run clean from a fresh checkout.
"""

import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
EXAMPLES = sorted((REPO / "examples").glob("*.py"))


def run(script: Path) -> subprocess.CompletedProcess:
    env_path = str(REPO / "src")
    return subprocess.run(
        [sys.executable, str(script)],
        capture_output=True, text=True, timeout=300,
        cwd=REPO,
        env={"PYTHONPATH": env_path, "PATH": "/usr/bin:/bin"},
    )


class TestExamples:
    def test_examples_exist(self):
        names = {p.name for p in EXAMPLES}
        assert "quickstart.py" in names
        assert len(EXAMPLES) >= 3

    @pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
    def test_example_runs_clean(self, script):
        result = run(script)
        assert result.returncode == 0, result.stderr
        assert result.stdout.strip(), "example produced no output"

    def test_quickstart_reports_paper_numbers(self):
        result = run(REPO / "examples" / "quickstart.py")
        assert "9.72" in result.stdout            # eq. (3) anchor value
        assert "Optimal s_d" in result.stdout

    def test_roadmap_example_reports_contradiction(self):
        result = run(REPO / "examples" / "roadmap_feasibility.py")
        assert "cost contradiction" in result.stdout

    def test_iteration_study_reports_fit(self):
        result = run(REPO / "examples" / "design_iteration_study.py")
        assert "p2" in result.stdout
        assert "R^2" in result.stdout


class TestCli:
    def test_module_invocation(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro"],
            capture_output=True, text=True, timeout=120,
            cwd=REPO, env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert result.returncode == 0, result.stderr
        assert "cost contradiction" in result.stdout
        assert "Figure 4 optima" in result.stdout

    def test_unknown_command_rejected(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "frobnicate"],
            capture_output=True, text=True, timeout=120,
            cwd=REPO, env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert result.returncode == 2
        assert "unknown command" in result.stderr

    def test_build_report_importable(self):
        from repro.__main__ import build_report
        text = build_report()
        assert "Table A1: 49 designs" in text
