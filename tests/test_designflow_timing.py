"""Timing-closure model tests (§2.4's Bernoulli pass)."""

import math

import numpy as np
import pytest

from repro.designflow import TimingClosureModel, normal_cdf
from repro.errors import DomainError
from repro.interconnect import PredictionErrorModel


class TestNormalCdf:
    def test_center(self):
        assert normal_cdf(0.0) == pytest.approx(0.5)

    def test_known_value(self):
        assert normal_cdf(1.96) == pytest.approx(0.975, abs=1e-3)

    def test_symmetry(self):
        assert normal_cdf(-1.3) == pytest.approx(1 - normal_cdf(1.3))

    def test_array(self):
        out = normal_cdf(np.array([-1.0, 0.0, 1.0]))
        assert out.shape == (3,)
        assert np.all(np.diff(out) > 0)


class TestMargin:
    def test_zero_at_bound_limit(self):
        m = TimingClosureModel()
        assert m.margin(100.001) == pytest.approx(0.0, abs=1e-5)

    def test_saturates_at_margin_per_headroom(self):
        m = TimingClosureModel(margin_per_headroom=0.35)
        assert m.margin(1e9) == pytest.approx(0.35, rel=1e-6)

    def test_monotone_in_sd(self):
        m = TimingClosureModel()
        margins = [m.margin(sd) for sd in (105, 150, 300, 900)]
        assert margins == sorted(margins)

    def test_rejects_sd_at_bound(self):
        with pytest.raises(DomainError):
            TimingClosureModel().margin(100.0)


class TestClosureProbability:
    def test_two_sided_form(self):
        m = TimingClosureModel()
        sd, lam = 200.0, 0.18
        margin = m.margin(sd)
        sigma = m.prediction_error.sigma(lam)
        expected = 2 * normal_cdf(margin / sigma) - 1
        assert m.closure_probability(sd, lam) == pytest.approx(expected)

    def test_floor_applies_near_bound(self):
        m = TimingClosureModel(floor_probability=0.01)
        assert m.closure_probability(100.0001, 0.18) == pytest.approx(0.01)

    def test_monotone_in_sd(self):
        m = TimingClosureModel()
        probs = [m.closure_probability(sd, 0.18) for sd in (105, 150, 300, 900)]
        assert probs == sorted(probs)

    def test_finer_node_harder(self):
        m = TimingClosureModel()
        assert m.closure_probability(200, 0.05) < m.closure_probability(200, 0.25)

    def test_regularity_helps(self):
        m = TimingClosureModel()
        assert m.closure_probability(200, 0.13, regularity=1.0) > \
            m.closure_probability(200, 0.13, regularity=0.0)

    def test_array_sweep(self):
        m = TimingClosureModel()
        out = m.closure_probability(np.array([150.0, 300.0]), 0.18)
        assert out.shape == (2,)


class TestExpectedIterations:
    def test_reciprocal_of_probability(self):
        m = TimingClosureModel()
        p = m.closure_probability(200, 0.18)
        assert m.expected_iterations(200, 0.18) == pytest.approx(1 / p)

    def test_diverges_towards_bound(self):
        m = TimingClosureModel()
        assert m.expected_iterations(101, 0.13) > 10 * m.expected_iterations(200, 0.13)

    def test_near_one_for_very_sparse(self):
        m = TimingClosureModel()
        assert m.expected_iterations(5000, 0.25) == pytest.approx(1.0, rel=0.05)

    def test_eq6_mechanism_inverse_margin(self):
        # Near the bound: iterations ~ 1/(sd - sd0), the eq.-(6) shape
        # with p2 ~ 1.
        m = TimingClosureModel()
        i1 = m.expected_iterations(101, 0.13)
        i2 = m.expected_iterations(102, 0.13)
        assert i1 / i2 == pytest.approx(2.0, rel=0.05)

    def test_nanometre_node_multiplies_iterations(self):
        # §2.4: prediction degradation at finer nodes inflates the loop
        # count for the same design style.
        m = TimingClosureModel()
        assert m.expected_iterations(150, 0.05) > 2 * m.expected_iterations(150, 0.25)


class TestConfiguration:
    def test_custom_prediction_model(self):
        sharp = TimingClosureModel(prediction_error=PredictionErrorModel(sigma_at_reference=0.01))
        blunt = TimingClosureModel(prediction_error=PredictionErrorModel(sigma_at_reference=0.5))
        assert sharp.expected_iterations(150, 0.18) < blunt.expected_iterations(150, 0.18)

    def test_floor_validated(self):
        with pytest.raises(DomainError):
            TimingClosureModel(floor_probability=0.0)
        with pytest.raises(DomainError):
            TimingClosureModel(floor_probability=1.0)
