"""Integration chaos suite: real pools, real faults, identical values.

The contract under test is the acceptance criterion of the supervised
execution layer: a pooled grid evaluation with deterministically
injected worker kills, hangs, and corrupted results completes with
values **bit-identical** to the unfaulted single-process run — under
every error policy — and a breaker-open run degrades to in-process
evaluation instead of raising (MASK/COLLECT) or raises a taxonomized
:class:`~repro.errors.ExecutionError` (RAISE). Checkpointed sweeps
resume evaluating only the chunks missing on disk.

Faults are injected by chunk index via
:class:`~repro.robust.ChaosPlan` (``os._exit`` kills, long sleeps
against short deadlines, truncated results), so every test is
deterministic; the ``chaos`` marker lets CI run these under a
dedicated Linux job.
"""

import numpy as np
import pytest

from repro.cost import PAPER_FIGURE4_MODEL
from repro.engine import (
    clear_cache,
    evaluate_grid,
    grid_fingerprint,
    reset_supervision,
    supervision_stats,
)
from repro.engine import parallel as engine_parallel
from repro.engine.kernels import Eq4SdKernel
from repro.errors import ExecutionError
from repro.robust import ChaosPlan, CheckpointSink, ChunkRetryPolicy, ErrorPolicy

FIG4A = dict(n_transistors=1e7, feature_um=0.18, n_wafers=5_000,
             yield_fraction=0.4, cost_per_cm2=8.0)

#: No backoff, generous per-chunk budget, breaker far away: chaos tests
#: should recover through retries, not trip the breaker by accident
#: (a pool break also charges innocent in-flight chunks a retry).
RECOVERY = ChunkRetryPolicy(max_retries_per_chunk=3, max_total_retries=20,
                            backoff_s=0.0, breaker_threshold=10)


def kernel():
    return Eq4SdKernel(PAPER_FIGURE4_MODEL, **FIG4A)


@pytest.fixture()
def supervised_pool():
    """Low threshold, 2 workers, clean supervision state; full restore."""
    saved = engine_parallel.settings()
    reset_supervision()
    engine_parallel.configure(threshold=1_000, max_workers=2, retry=RECOVERY)
    clear_cache()
    yield
    engine_parallel.configure(threshold=saved["threshold"],
                              enabled=saved["enabled"],
                              retry=saved["retry"], chaos=None,
                              checkpoint=None)
    engine_parallel._max_workers = saved["max_workers"]
    engine_parallel.shutdown()
    reset_supervision()
    clear_cache()


def unfaulted(grid):
    """Single-process reference values for ``grid``."""
    return np.asarray(kernel().batch(grid), dtype=float)


GRID = np.linspace(150.0, 1200.0, 40_000)


@pytest.mark.chaos
class TestChaosRecovery:
    def test_worker_kill_recovers_bit_identical(self, supervised_pool):
        engine_parallel.configure(chaos=ChaosPlan(kill_chunks=(0,)))
        evaluation = evaluate_grid(kernel(), GRID, where="test.chaos",
                                   cache=False)
        assert evaluation.chunks > 1
        np.testing.assert_array_equal(evaluation.values, unfaulted(GRID))
        report = evaluation.supervision
        assert report.restarts >= 1
        assert any(f.reason == "crash" for f in report.retries)
        assert report.degraded == ()

    def test_hung_chunk_times_out_and_redispatches(self, supervised_pool):
        engine_parallel.configure(
            chaos=ChaosPlan(hang_chunks=(1,), hang_s=60.0),
            retry=ChunkRetryPolicy(max_retries_per_chunk=3,
                                   max_total_retries=20, backoff_s=0.0,
                                   deadline_s=1.0, breaker_threshold=10))
        evaluation = evaluate_grid(kernel(), GRID, where="test.chaos",
                                   cache=False)
        np.testing.assert_array_equal(evaluation.values, unfaulted(GRID))
        report = evaluation.supervision
        assert any(f.reason == "timeout" for f in report.retries)
        assert report.restarts >= 1

    def test_corrupt_result_detected_and_retried(self, supervised_pool):
        engine_parallel.configure(chaos=ChaosPlan(corrupt_chunks=(1,)))
        evaluation = evaluate_grid(kernel(), GRID, where="test.chaos",
                                   cache=False)
        np.testing.assert_array_equal(evaluation.values, unfaulted(GRID))
        report = evaluation.supervision
        assert [f.reason for f in report.retries] == ["corrupt"]
        assert report.restarts == 0  # corruption never recycles the pool

    @pytest.mark.parametrize("policy", [ErrorPolicy.RAISE, ErrorPolicy.MASK,
                                        ErrorPolicy.COLLECT])
    def test_kill_recovery_under_every_policy(self, supervised_pool, policy):
        engine_parallel.configure(chaos=ChaosPlan(kill_chunks=(1,)))
        evaluation = evaluate_grid(kernel(), GRID, where="test.chaos",
                                   policy=policy, cache=False)
        np.testing.assert_array_equal(evaluation.values, unfaulted(GRID))
        assert evaluation.supervision.restarts >= 1

    def test_million_point_grid_with_kills_and_timeouts(self, supervised_pool):
        grid = np.linspace(150.0, 1200.0, 1_000_000)
        engine_parallel.configure(
            chaos=ChaosPlan(kill_chunks=(0,), hang_chunks=(2,), hang_s=60.0),
            retry=ChunkRetryPolicy(max_retries_per_chunk=3,
                                   max_total_retries=20, backoff_s=0.0,
                                   deadline_s=2.0, breaker_threshold=10))
        evaluation = evaluate_grid(kernel(), grid, where="test.chaos",
                                   cache=False)
        assert evaluation.chunks >= 2
        reference = unfaulted(grid)
        np.testing.assert_array_equal(evaluation.values, reference)
        assert np.max(np.abs(evaluation.values - reference)) <= 1e-12
        report = evaluation.supervision
        assert report.faulted and report.degraded == ()


@pytest.mark.chaos
class TestBreakerDegradation:
    ALWAYS_BROKEN = ChaosPlan(kill_chunks=(0, 1, 2, 3), fail_attempts=99)
    TRIPPY = ChunkRetryPolicy(max_retries_per_chunk=10, max_total_retries=50,
                              backoff_s=0.0, breaker_threshold=2)

    def test_collect_degrades_with_diagnostic_instead_of_raising(
            self, supervised_pool):
        engine_parallel.configure(chaos=self.ALWAYS_BROKEN, retry=self.TRIPPY)
        evaluation = evaluate_grid(kernel(), GRID, where="test.breaker",
                                   policy=ErrorPolicy.COLLECT, cache=False)
        np.testing.assert_array_equal(evaluation.values, unfaulted(GRID))
        report = evaluation.supervision
        assert report.breaker_open
        assert len(report.degraded) == report.n_chunks
        assert evaluation.diagnostics  # the degradation Diagnostic
        assert any("ExecutionError" in str(d) for d in evaluation.diagnostics)

    def test_mask_degrades_too(self, supervised_pool):
        engine_parallel.configure(chaos=self.ALWAYS_BROKEN, retry=self.TRIPPY)
        evaluation = evaluate_grid(kernel(), GRID, where="test.breaker",
                                   policy=ErrorPolicy.MASK, cache=False)
        np.testing.assert_array_equal(evaluation.values, unfaulted(GRID))
        assert evaluation.supervision.breaker_open

    def test_raise_policy_raises_execution_error(self, supervised_pool):
        engine_parallel.configure(chaos=self.ALWAYS_BROKEN, retry=self.TRIPPY)
        with pytest.raises(ExecutionError) as err:
            evaluate_grid(kernel(), GRID, where="test.breaker", cache=False)
        assert err.value.failures
        assert all(f.reason == "crash" for f in err.value.failures)
        assert supervision_stats()["breaker_state"] == "open"

    def test_open_breaker_short_circuits_next_raise_run(self, supervised_pool):
        engine_parallel.configure(chaos=self.ALWAYS_BROKEN, retry=self.TRIPPY)
        with pytest.raises(ExecutionError):
            evaluate_grid(kernel(), GRID, where="test.breaker", cache=False)
        # Chaos off, but the breaker is sticky: RAISE still refuses the
        # pool until reset_supervision()/configure(retry=...) re-arms it.
        engine_parallel.configure(chaos=None)
        with pytest.raises(ExecutionError):
            evaluate_grid(kernel(), GRID, where="test.breaker", cache=False)
        reset_supervision()
        evaluation = evaluate_grid(kernel(), GRID, where="test.breaker",
                                   cache=False)
        np.testing.assert_array_equal(evaluation.values, unfaulted(GRID))


class TestCheckpointedSweeps:
    def test_completed_run_preloads_without_touching_pool(
            self, supervised_pool, tmp_path):
        sink = CheckpointSink(tmp_path)
        engine_parallel.configure(checkpoint=sink)
        first = evaluate_grid(kernel(), GRID, where="test.ckpt", cache=False)
        assert first.chunks > 1
        assert sink.saved == first.chunks
        # Rerun with every chunk guaranteed to kill its worker: only a
        # run that never dispatches to the pool can succeed.
        engine_parallel.configure(
            chaos=ChaosPlan(kill_chunks=tuple(range(first.chunks)),
                            fail_attempts=99))
        second = evaluate_grid(kernel(), GRID, where="test.ckpt", cache=False)
        np.testing.assert_array_equal(second.values, first.values)
        assert second.supervision.preloaded == tuple(range(first.chunks))
        assert second.supervision.retries == ()

    def test_interrupted_sweep_resumes_only_missing_chunks(
            self, supervised_pool, tmp_path):
        sink = CheckpointSink(tmp_path)
        # One worker → chunks run sequentially → chunks 0-2 complete and
        # checkpoint before the kill on chunk 3 aborts the run.
        engine_parallel.configure(
            max_workers=1, checkpoint=sink,
            retry=ChunkRetryPolicy(max_retries_per_chunk=0,
                                   max_total_retries=0, backoff_s=0.0,
                                   breaker_threshold=10),
            chaos=ChaosPlan(kill_chunks=(3,), fail_attempts=99))
        k = kernel()
        with pytest.raises(ExecutionError):
            engine_parallel.batch_in_chunks(k, GRID, 4)
        fingerprint = grid_fingerprint(k.token(), GRID, 4)
        assert sink.chunks_on_disk(fingerprint) == (0, 1, 2)
        saved_before = sink.saved
        # Resume without chaos: only the missing chunk re-evaluates.
        reset_supervision()
        engine_parallel.configure(chaos=None)
        values, report = engine_parallel.batch_in_chunks(k, GRID, 4)
        np.testing.assert_array_equal(values, unfaulted(GRID))
        assert report.preloaded == (0, 1, 2)
        assert sink.saved == saved_before + 1

    def test_rechunked_rerun_ignores_stale_checkpoints(
            self, supervised_pool, tmp_path):
        sink = CheckpointSink(tmp_path)
        engine_parallel.configure(checkpoint=sink)
        k = kernel()
        engine_parallel.batch_in_chunks(k, GRID, 2)
        # A different chunking is a different fingerprint: nothing preloads.
        values, report = engine_parallel.batch_in_chunks(k, GRID, 4)
        np.testing.assert_array_equal(values, unfaulted(GRID))
        assert report.preloaded == ()


class TestSupervisionTelemetry:
    @pytest.mark.chaos
    def test_metrics_and_span_attrs_record_the_faults(self, supervised_pool):
        from repro import obs
        obs.reset()
        obs.enable()
        try:
            engine_parallel.configure(chaos=ChaosPlan(kill_chunks=(0,)))
            evaluate_grid(kernel(), GRID, where="test.telemetry", cache=False)
        finally:
            obs.disable()
        registry = obs.get_registry()
        assert registry.counters['engine_chunk_retries_total{reason="crash"}'
                                 ].value >= 1.0
        assert registry.counters["engine_pool_restarts_total"].value >= 1.0
        assert registry.gauges["engine_breaker_state"].value == 0.0
        engine_span = next(s for s in obs.get_tracer().spans
                           if s.name == "engine.evaluate_grid")
        assert engine_span.attrs["supervision.retries"] >= 1
        assert engine_span.attrs["supervision.restarts"] >= 1
        assert engine_span.attrs["supervision.breaker"] == "closed"
        obs.reset()

    @pytest.mark.chaos
    def test_exposition_carries_supervision_counters(self, supervised_pool):
        from repro.obs.exposition import render_prometheus
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.telemetry import bridge_engine_metrics
        engine_parallel.configure(chaos=ChaosPlan(kill_chunks=(0,)))
        evaluate_grid(kernel(), GRID, where="test.exposition", cache=False)
        registry = bridge_engine_metrics(MetricsRegistry())
        text = render_prometheus(registry)
        assert 'engine_supervision_lifetime_total{event="retry_crash"}' in text
        assert 'engine_supervision_lifetime_total{event="restart"}' in text
        assert "engine_breaker_state 0" in text

    def test_stats_shape(self):
        stats = supervision_stats()
        for key in ("retry_crash", "retry_timeout", "retry_corrupt",
                    "restarts", "degraded_chunks", "breaker_openings",
                    "checkpoint_saved", "checkpoint_loaded", "retries",
                    "breaker_state"):
            assert key in stats

    @pytest.mark.chaos
    def test_cli_report_line_appears_after_faults(self, supervised_pool):
        from repro.__main__ import build_report
        engine_parallel.configure(chaos=ChaosPlan(kill_chunks=(0,)))
        evaluate_grid(kernel(), GRID, where="test.cli", cache=False)
        report = build_report()
        assert "Engine resilience:" in report
        assert "pool restart" in report


class TestConfigureLifecycle:
    def test_disable_shuts_down_running_pool(self, supervised_pool):
        evaluate_grid(kernel(), GRID, where="test.lifecycle", cache=False)
        assert engine_parallel.settings()["pool_started"]
        engine_parallel.configure(enabled=False)
        assert not engine_parallel.settings()["pool_started"]
        engine_parallel.configure(enabled=True)

    @pytest.mark.chaos
    def test_shutdown_bounds_its_wait_on_a_wedged_worker(
            self, supervised_pool):
        import time
        # Park a hung chunk in the pool (no deadline: the supervisor is
        # not involved — this tests shutdown() itself), then require the
        # teardown to finish long before the 60 s sleep would.
        pool = engine_parallel._get_pool()
        pool.submit(time.sleep, 60.0)
        time.sleep(0.2)  # let a worker pick the task up
        start = time.monotonic()
        engine_parallel.shutdown(grace_s=1.0)
        assert time.monotonic() - start < 10.0
        assert not engine_parallel.settings()["pool_started"]

    def test_configure_rejects_bad_retry(self):
        from repro.errors import DomainError
        with pytest.raises(DomainError):
            engine_parallel.configure(retry="not-a-policy")
