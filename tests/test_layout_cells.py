"""Cell/Layout hierarchy tests."""

import pytest

from repro.errors import LayoutError
from repro.layout import Cell, Instance, Layout, Rect, sram_cell, standard_cell


class TestCell:
    def test_bbox_and_dims(self):
        cell = Cell("c", (Rect("m1", 0, 0, 4, 8),))
        assert cell.bbox == (0, 0, 4, 8)
        assert cell.width == 4
        assert cell.height == 8

    def test_empty_cell_rejected(self):
        with pytest.raises(LayoutError, match="no geometry"):
            Cell("c", ())

    def test_unnamed_cell_rejected(self):
        with pytest.raises(LayoutError):
            Cell("", (Rect("m1", 0, 0, 1, 1),))

    def test_transistor_count_poly_over_diff(self):
        cell = Cell("inv", (
            Rect("diff", 0, 0, 10, 4),
            Rect("poly", 4, -2, 6, 6),
        ))
        assert cell.transistor_count() == 1

    def test_no_gates_no_transistors(self):
        cell = Cell("wire", (Rect("m1", 0, 0, 10, 2),))
        assert cell.transistor_count() == 0

    def test_sram_cell_six_transistors(self):
        assert sram_cell().transistor_count() == 6

    def test_standard_cell_two_per_gate(self):
        assert standard_cell("x", n_gates=3).transistor_count() == 6

    def test_poly_beside_diff_not_counted(self):
        cell = Cell("c", (
            Rect("diff", 0, 0, 4, 4),
            Rect("poly", 10, 0, 12, 4),
        ))
        assert cell.transistor_count() == 0


class TestInstance:
    def test_rects_translated(self):
        cell = Cell("c", (Rect("m1", 0, 0, 2, 2),))
        inst = Instance(cell, 10, 20)
        r = inst.rects()[0]
        assert (r.x0, r.y0) == (10, 20)

    def test_non_integer_offset_rejected(self):
        cell = Cell("c", (Rect("m1", 0, 0, 2, 2),))
        with pytest.raises(LayoutError):
            Instance(cell, 1.5, 0)


class TestLayout:
    def make_layout(self):
        layout = Layout("test")
        cell = standard_cell("sc", n_gates=2)
        layout.add(cell, 0, 0)
        layout.add(cell, cell.width, 0)
        return layout, cell

    def test_flatten_counts(self):
        layout, cell = self.make_layout()
        assert len(layout.flatten()) == 2 * len(cell.rects)

    def test_empty_layout_flatten_raises(self):
        with pytest.raises(LayoutError, match="empty"):
            Layout("empty").flatten()

    def test_transistor_count_sums(self):
        layout, cell = self.make_layout()
        assert layout.transistor_count() == 2 * cell.transistor_count()

    def test_area_is_bbox(self):
        layout, cell = self.make_layout()
        assert layout.area_lambda2() == (2 * cell.width) * cell.height

    def test_sd_definition(self):
        layout, _ = self.make_layout()
        assert layout.sd() == pytest.approx(
            layout.area_lambda2() / layout.transistor_count())

    def test_sd_without_transistors_raises(self):
        layout = Layout("wires")
        layout.add(Cell("w", (Rect("m1", 0, 0, 5, 5),)), 0, 0)
        with pytest.raises(LayoutError, match="no transistors"):
            layout.sd()

    def test_cell_usage(self):
        layout, cell = self.make_layout()
        assert layout.cell_usage() == {"sc": 2}

    def test_unique_cells(self):
        layout, cell = self.make_layout()
        unique = Layout.unique_cells(layout.instances)
        assert len(unique) == 1
        assert unique[0].name == "sc"
