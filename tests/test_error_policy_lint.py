"""Wire tools/check_error_policy.py into the suite.

The lint enforces the robustness contract of docs/robustness.md: no
bare ``except:``, no swallowing ``except Exception`` without a
re-raise, and no raw ``raise ValueError`` outside the exception /
validation modules. A second check keeps the repo free of tracked
bytecode caches.
"""

from __future__ import annotations

import ast
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent

sys.path.insert(0, str(REPO / "tools"))

from check_error_policy import check_file, main  # noqa: E402

# The shim intentionally warns on every call now; the dedicated
# test_shim_emits_deprecation_warning still sees it via pytest.warns.
pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


def test_src_tree_is_clean():
    assert main() == 0


def _violations(source: str, tmp_path, name="mod.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    return check_file(path)


def test_lint_flags_bare_except(tmp_path):
    out = _violations("""
        try:
            x = 1
        except:
            pass
    """, tmp_path)
    assert len(out) == 1 and "bare 'except:'" in out[0]


def test_lint_flags_swallowed_exception(tmp_path):
    out = _violations("""
        try:
            x = 1
        except Exception:
            x = 2
    """, tmp_path)
    assert len(out) == 1 and "without a re-raise" in out[0]


def test_lint_allows_capture_reraise_pattern(tmp_path):
    out = _violations("""
        try:
            x = 1
        except Exception as exc:
            if not log.capture(exc):
                raise
    """, tmp_path)
    assert out == []


def test_lint_flags_raw_value_error(tmp_path):
    out = _violations("""
        def f(x):
            if x < 0:
                raise ValueError("no")
    """, tmp_path)
    assert len(out) == 1 and "raise ValueError" in out[0]


def test_lint_allows_domain_error(tmp_path):
    out = _violations("""
        from repro.errors import DomainError
        def f(x):
            if x < 0:
                raise DomainError("no")
    """, tmp_path)
    assert out == []


def test_lint_exempts_errors_and_validation_modules():
    # The real exemption: errors.py / validation.py may raise builtins.
    for name in ("errors.py", "validation.py"):
        path = REPO / "src" / "repro" / name
        assert path.exists()
        assert check_file(path) == []


def test_no_tracked_bytecode():
    """No ``__pycache__``/``.pyc`` artifacts may be tracked by git."""
    tracked = subprocess.run(
        ["git", "ls-files"], cwd=REPO, capture_output=True, text=True,
        check=True).stdout.splitlines()
    offenders = [f for f in tracked
                 if f.endswith(".pyc") or "__pycache__" in f]
    assert offenders == []


def test_pycache_under_src_is_gitignored():
    """``.gitignore`` must keep future bytecode out, not just the index."""
    for probe in ("src/repro/__pycache__/mod.cpython-312.pyc",
                  "src/repro/engine/__pycache__/kernels.cpython-312.pyc",
                  "tests/__pycache__/test_x.cpython-312.pyc"):
        result = subprocess.run(["git", "check-ignore", "-q", probe],
                                cwd=REPO, capture_output=True)
        assert result.returncode == 0, f"{probe} is not ignored"


def test_shim_emits_deprecation_warning(tmp_path):
    """The old entry point still works but points at the framework CLI."""
    path = tmp_path / "ok.py"
    path.write_text("x = 1\n")
    with pytest.warns(DeprecationWarning, match="repro.lint --select"):
        assert check_file(path) == []
