"""The shipped tree must be finding-free at default severity.

This is the analyzer's standing acceptance test: ``python -m
repro.lint`` exits 0 on the repository, the committed baseline
grandfathers only the legacy dotted metric names (``OBS003``), and the
rule catalog in ``docs/static_analysis.md`` covers every registered
rule id.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

from repro.lint import DEFAULT_PASSES, apply_baseline, load_baseline, run_lint
from repro.lint.findings import Severity

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
BASELINE = REPO / "tools" / "lint_baseline.json"


def test_shipped_tree_is_finding_free_beyond_baseline():
    result = run_lint()
    fresh, accepted = apply_baseline(list(result.findings),
                                     load_baseline(BASELINE))
    assert fresh == [], "\n".join(f.format() for f in fresh)
    assert result.modules_scanned > 90


def test_cli_exits_zero_on_repo():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.lint", "--format", "json"],
        capture_output=True, text=True, cwd=REPO,
        env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin:/usr/local/bin"})
    assert proc.returncode == 0, proc.stdout + proc.stderr
    doc = json.loads(proc.stdout)
    assert doc["summary"]["errors"] == 0
    assert doc["summary"]["findings"] == 0


def test_committed_baseline_grandfathers_only_legacy_metric_names():
    baseline = json.loads(BASELINE.read_text())
    assert baseline["version"] == 1
    # The baseline exists solely to grandfather pre-convention dotted
    # metric names; any other rule id in it means real debt slipped in.
    assert {f["rule"] for f in baseline["findings"]} <= {"OBS003"}
    for record in baseline["findings"]:
        assert "snake_case" in record["message"]


def test_docs_catalog_covers_every_rule():
    catalog = (REPO / "docs" / "static_analysis.md").read_text()
    for lint_pass in DEFAULT_PASSES:
        for spec in lint_pass.rules:
            assert spec.rule in catalog, f"{spec.rule} missing from docs"


def test_every_pass_registers_rules_with_severities():
    seen = set()
    for lint_pass in DEFAULT_PASSES:
        assert lint_pass.name
        assert lint_pass.rules
        for spec in lint_pass.rules:
            assert spec.rule not in seen, f"duplicate rule id {spec.rule}"
            seen.add(spec.rule)
            assert isinstance(spec.severity, Severity)
    assert len(seen) >= 6
