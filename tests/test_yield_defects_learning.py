"""Defect-density scaling and yield-learning tests."""

import pytest

from repro.errors import DomainError
from repro.yieldmodels import (
    DEFAULT_DEFECT_MODEL,
    DEFAULT_LEARNING_CURVE,
    DefectDensityModel,
    YieldLearningCurve,
)


class TestDefectDensityModel:
    def test_reference_anchor(self):
        assert DEFAULT_DEFECT_MODEL.density(0.18) == pytest.approx(0.5)

    def test_density_grows_as_feature_shrinks(self):
        m = DEFAULT_DEFECT_MODEL
        assert m.density(0.09) > m.density(0.18) > m.density(0.35)

    def test_default_exponent_linear(self):
        m = DEFAULT_DEFECT_MODEL
        assert m.density(0.09) == pytest.approx(2 * m.density(0.18))

    def test_maturity_factor_multiplies(self):
        m = DEFAULT_DEFECT_MODEL
        assert m.density(0.18, maturity_factor=3.0) == pytest.approx(
            3 * m.density(0.18))

    def test_zero_exponent_flat(self):
        flat = DefectDensityModel(feature_exponent=0.0)
        assert flat.density(0.035) == pytest.approx(flat.density(0.5))

    def test_rejects_zero_feature(self):
        with pytest.raises(DomainError):
            DEFAULT_DEFECT_MODEL.density(0.0)

    def test_rejects_bad_reference(self):
        with pytest.raises(DomainError):
            DefectDensityModel(reference_density_per_cm2=-1.0)


class TestLearningCurve:
    def test_bringup_multiplier(self):
        assert DEFAULT_LEARNING_CURVE.multiplier(0) == pytest.approx(3.0)

    def test_asymptote_unity(self):
        assert DEFAULT_LEARNING_CURVE.multiplier(1e9) == pytest.approx(1.0)

    def test_monotone_decreasing(self):
        m = DEFAULT_LEARNING_CURVE
        values = [m.multiplier(n) for n in (0, 1e3, 1e4, 1e5)]
        assert values == sorted(values, reverse=True)

    def test_e_folding(self):
        c = YieldLearningCurve(initial_multiplier=2.0, learning_wafers=1000.0)
        import math
        assert c.multiplier(1000) == pytest.approx(1 + math.exp(-1))

    def test_maturity_in_unit_interval(self):
        m = DEFAULT_LEARNING_CURVE
        assert 0 < m.maturity(0) <= 1e-6  # strictly positive floor
        assert m.maturity(1e9) == pytest.approx(1.0)

    def test_maturity_monotone(self):
        m = DEFAULT_LEARNING_CURVE
        assert m.maturity(100) < m.maturity(10_000) < m.maturity(1_000_000)

    def test_wafers_to_reach_multiplier_round_trip(self):
        c = DEFAULT_LEARNING_CURVE
        n = c.wafers_to_reach_multiplier(1.5)
        assert c.multiplier(n) == pytest.approx(1.5, rel=1e-9)

    def test_unreachable_target_raises(self):
        with pytest.raises(ValueError):
            DEFAULT_LEARNING_CURVE.wafers_to_reach_multiplier(0.9)
        with pytest.raises(ValueError):
            DEFAULT_LEARNING_CURVE.wafers_to_reach_multiplier(5.0)

    def test_negative_wafers_rejected(self):
        with pytest.raises(ValueError):
            DEFAULT_LEARNING_CURVE.multiplier(-1)

    def test_initial_multiplier_below_one_rejected(self):
        with pytest.raises(ValueError):
            YieldLearningCurve(initial_multiplier=0.5)
