"""Guard: the default RAISE policy path must not tax the seed hot path.

The robustness layer promises that ``policy=ErrorPolicy.RAISE`` (the
default) keeps the vectorised sweep untouched — the only additions are
one ``ErrorPolicy.coerce`` call and one branch. This mirrors
``test_obs_overhead.py``: interleaved min-of-repeats against an inline
policy-free equivalent of the seed's sweep body, 5% budget, with a
noise self-check that skips on unstable boxes.
"""

import timeit

import numpy as np
import pytest

from repro import obs
from repro.cost import PAPER_FIGURE4_MODEL
from repro.obs import metrics as obs_metrics
from repro.optimize import sd_sweep
from repro.optimize.sweep import SweepResult, sd_grid

#: Maximum tolerated relative overhead of the RAISE-policy path.
MAX_OVERHEAD = 0.05
#: Baseline jitter above which the measurement is declared meaningless.
MAX_NOISE = 0.10
#: Interleaved (seed, policy) measurement pairs / calls per measurement.
REPEATS = 10
CALLS = 30

ARGS = (1e7, 0.18, 5000.0, 0.4, 8.0)


def seed_equivalent_sweep(model, n_transistors, feature_um, n_wafers,
                          yield_fraction, cost_per_cm2, sd_values=None):
    """The pre-robustness ``sd_sweep`` body, line for line, minus policy.

    The seed already carried the ``obs_metrics.observe`` call and the
    default-grid branch, so both belong to the baseline — only the
    policy coerce/branch and the diagnostics field are under test.
    """
    if sd_values is None:
        sd_values = sd_grid(model.design_model.sd0)
    sd_values = np.asarray(sd_values, dtype=float)
    obs_metrics.observe("optimize_sweep_grid_points", sd_values.size)
    cost = model.transistor_cost(
        sd_values, n_transistors, feature_um, n_wafers, yield_fraction, cost_per_cm2)
    return SweepResult(
        parameter="sd", x=sd_values, cost=np.asarray(cost, dtype=float),
        meta={
            "n_transistors": n_transistors,
            "feature_um": feature_um,
            "n_wafers": n_wafers,
            "yield_fraction": yield_fraction,
            "cost_per_cm2": cost_per_cm2,
        })


@pytest.fixture(autouse=True)
def tracing_off():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


def test_raise_policy_overhead_under_five_percent():
    current = sd_sweep.__wrapped__  # strip tracing; policy code remains

    def run_policy():
        current(PAPER_FIGURE4_MODEL, *ARGS)

    def run_seed():
        seed_equivalent_sweep(PAPER_FIGURE4_MODEL, *ARGS)

    run_policy()
    run_seed()

    seed_times: list[float] = []
    policy_times: list[float] = []
    for _ in range(REPEATS):
        seed_times.append(timeit.timeit(run_seed, number=CALLS))
        policy_times.append(timeit.timeit(run_policy, number=CALLS))

    half = REPEATS // 2
    noise = (abs(min(seed_times[:half]) - min(seed_times[half:]))
             / min(seed_times))
    if noise > MAX_NOISE:
        pytest.skip(f"timing too noisy to judge overhead ({noise:.1%} jitter)")

    overhead = min(policy_times) / min(seed_times) - 1.0
    assert overhead < MAX_OVERHEAD, (
        f"RAISE-policy path costs {overhead:.1%} over the seed equivalent "
        f"(policy {min(policy_times):.4f}s vs seed {min(seed_times):.4f}s)")
