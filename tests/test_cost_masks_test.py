"""Mask-set cost (C_MA of eq. 5) and test-cost (§2.5) model tests."""

import pytest

from repro.cost import (
    DEFAULT_MASK_COST_MODEL,
    DEFAULT_TEST_COST_MODEL,
    MaskSetCostModel,
    TestCostModel,
    layer_count_estimate,
)
from repro.errors import DomainError


class TestLayerCount:
    def test_anchor_generation(self):
        assert layer_count_estimate(0.6) == 18

    def test_grows_with_shrink(self):
        assert layer_count_estimate(0.13) > layer_count_estimate(0.25) > layer_count_estimate(0.5)

    def test_no_extrapolation_above_anchor(self):
        assert layer_count_estimate(1.5) == 18

    def test_rejects_zero(self):
        with pytest.raises(DomainError):
            layer_count_estimate(0.0)


class TestMaskSetCost:
    def test_anchor_cost(self):
        cost = DEFAULT_MASK_COST_MODEL.cost(0.18, n_layers=24)
        assert cost == pytest.approx(1.0e6)

    def test_doubles_per_node(self):
        m = DEFAULT_MASK_COST_MODEL
        # x0.7 shrink with exponent 2 -> 1/0.49 ~ 2.04x.
        ratio = m.cost(0.126, n_layers=24) / m.cost(0.18, n_layers=24)
        assert ratio == pytest.approx((0.18 / 0.126) ** 2)

    def test_nanometer_era_multi_million(self):
        # The "high-cost era" claim: 35 nm-class masks are many $M.
        assert DEFAULT_MASK_COST_MODEL.cost(0.05) > 5e6

    def test_layers_scale_linearly(self):
        m = DEFAULT_MASK_COST_MODEL
        assert m.cost(0.18, n_layers=48) == pytest.approx(2 * m.cost(0.18, n_layers=24))

    def test_default_layers_from_estimate(self):
        m = DEFAULT_MASK_COST_MODEL
        assert m.cost(0.18) == pytest.approx(
            m.cost(0.18, n_layers=layer_count_estimate(0.18)))

    def test_respins_multiply(self):
        m = DEFAULT_MASK_COST_MODEL
        assert m.respins_cost(0.18, 2, n_layers=24) == pytest.approx(3e6)

    def test_negative_respins_rejected(self):
        with pytest.raises(ValueError):
            DEFAULT_MASK_COST_MODEL.respins_cost(0.18, -1)

    def test_constructor_validation(self):
        with pytest.raises(DomainError):
            MaskSetCostModel(anchor_cost_usd=0.0)


class TestTestCost:
    def test_time_scales_with_transistors(self):
        m = DEFAULT_TEST_COST_MODEL
        assert m.test_seconds_per_die(2e7) == pytest.approx(
            2 * m.test_seconds_per_die(1e7))

    def test_cost_per_die_includes_handling(self):
        m = TestCostModel(seconds_per_mtransistor=0.0, handling_usd_per_die=0.05)
        assert m.cost_per_die(1e7) == pytest.approx(0.05)

    def test_cost_per_die_known_value(self):
        m = TestCostModel(seconds_per_mtransistor=0.36, tester_rate_usd_per_hour=3600.0,
                          handling_usd_per_die=0.0)
        # 10 Mtx -> 3.6 s at $1/s.
        assert m.cost_per_die(1e7) == pytest.approx(3.6)

    def test_per_cm2_denser_is_costlier(self):
        # Denser silicon carries more logic to exercise per cm^2.
        m = DEFAULT_TEST_COST_MODEL
        assert m.cost_per_cm2(150, 0.18, 1e7) > m.cost_per_cm2(600, 0.18, 1e7)

    def test_per_cm2_consistent_with_per_die(self):
        m = DEFAULT_TEST_COST_MODEL
        sd, lam, n = 300.0, 0.18, 1e7
        area = n * sd * (lam * 1e-4) ** 2
        assert m.cost_per_cm2(sd, lam, n) * area == pytest.approx(
            m.cost_per_die(n), rel=1e-9)

    def test_magnitude_well_below_silicon_cost(self):
        # Test adds cents/cm^2-scale cost, not dollars — a correction
        # term, as §2.5's "easily included" framing implies.
        m = DEFAULT_TEST_COST_MODEL
        assert m.cost_per_cm2(300, 0.18, 1e7) < 8.0
