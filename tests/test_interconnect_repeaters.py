"""Repeater-insertion tests."""

import math

import pytest

from repro.interconnect import (
    WireTechnology,
    optimal_repeaters,
    repeater_count_per_chip,
    wire_delay_ps,
)


@pytest.fixture(scope="module")
def tech_180():
    return WireTechnology.at_node(0.18)


class TestOptimalRepeaters:
    def test_long_wire_gets_repeaters(self, tech_180):
        design = optimal_repeaters(tech_180, 10_000)
        assert design.n_repeaters >= 5

    def test_short_wire_gets_none(self, tech_180):
        design = optimal_repeaters(tech_180, 5.0)
        assert design.n_repeaters == 0
        assert design.delay_ps == design.unrepeated_delay_ps

    def test_repeated_delay_beats_unrepeated(self, tech_180):
        design = optimal_repeaters(tech_180, 10_000)
        assert design.speedup > 5

    def test_repeated_delay_linear_in_length(self, tech_180):
        d1 = optimal_repeaters(tech_180, 5_000)
        d2 = optimal_repeaters(tech_180, 10_000)
        assert d2.delay_ps == pytest.approx(2 * d1.delay_ps, rel=0.1)

    def test_unrepeated_delay_superlinear(self, tech_180):
        # The R_w*C_w quadratic term: a 4x longer wire is > 5x slower
        # once wire resistance dominates the driver.
        d1 = optimal_repeaters(tech_180, 10_000)
        d2 = optimal_repeaters(tech_180, 40_000)
        assert d2.unrepeated_delay_ps > 5 * d1.unrepeated_delay_ps

    def test_bakoglu_count_formula(self, tech_180):
        length, r0, c0 = 10_000.0, 2000.0, 1.0
        design = optimal_repeaters(tech_180, length, r0, c0)
        expected = length * math.sqrt(
            tech_180.r_per_um_ohm * tech_180.c_per_um_ff / (2 * r0 * c0))
        assert design.n_repeaters == round(expected)

    def test_bakoglu_size_formula(self, tech_180):
        r0, c0 = 2000.0, 1.0
        design = optimal_repeaters(tech_180, 10_000, r0, c0)
        expected = math.sqrt(r0 * tech_180.c_per_um_ff / (tech_180.r_per_um_ohm * c0))
        assert design.size_factor == pytest.approx(expected)

    def test_optimality_against_neighbours(self, tech_180):
        # Perturbing the repeater count around k* must not beat it
        # (evaluate the same per-segment formula directly).
        length, r0, c0 = 10_000.0, 2000.0, 1.0
        design = optimal_repeaters(tech_180, length, r0, c0)
        rw, cw = tech_180.r_per_um_ohm, tech_180.c_per_um_ff
        h = design.size_factor

        def delay_for(k: int) -> float:
            seg = length / k
            per = ((r0 / h) * (cw * seg + h * c0)
                   + rw * seg * (cw * seg / 2 + h * c0)) * 1e-3
            return k * per

        k = design.n_repeaters
        assert delay_for(k) <= delay_for(max(k - 2, 1)) + 1e-9
        assert delay_for(k) <= delay_for(k + 2) + 1e-9

    def test_rejects_bad_args(self, tech_180):
        with pytest.raises(Exception):
            optimal_repeaters(tech_180, 0.0)
        with pytest.raises(Exception):
            optimal_repeaters(tech_180, 100.0, r0_ohm=0.0)


class TestRepeaterExplosion:
    """The §2.4 unpredictability driver: repeater populations explode."""

    def test_count_grows_as_nodes_shrink(self):
        counts = [repeater_count_per_chip(WireTechnology.at_node(f), 15_000, 5_000)
                  for f in (0.25, 0.18, 0.13, 0.07)]
        assert all(a < b for a, b in zip(counts, counts[1:]))

    def test_nanometre_chip_has_1e5_repeaters(self):
        count = repeater_count_per_chip(WireTechnology.at_node(0.07), 15_000, 5_000)
        assert count > 1e5

    def test_length_fraction_validated(self):
        with pytest.raises(ValueError):
            repeater_count_per_chip(WireTechnology.at_node(0.18), 15_000, 5_000,
                                    mean_length_fraction=0.0)
