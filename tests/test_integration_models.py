"""Cross-model consistency: eq. (7) degenerates to eq. (4) degenerates to eq. (3).

The paper presents its models as a refinement tower; the implementations
must honour that. Configuring the generalized model's live dependencies
to constants must reproduce the fixed-parameter total model exactly,
which in turn reproduces bare manufacturing cost at infinite volume.
"""

import numpy as np
import pytest

from repro.cost import (
    GeneralizedCostModel,
    TotalCostModel,
    transistor_cost,
)
from repro.wafer import WaferCostModel
from repro.yieldmodels import CompositeYield, CriticalAreaModel, DefectDensityModel, YieldLearningCurve


def frozen_generalized(y_target: float, cm_sq: float) -> GeneralizedCostModel:
    """Eq. (7) with every live dependency pinned to a constant."""
    flat_wafer = WaferCostModel(
        base_cost_per_cm2=cm_sq,
        feature_exponent=0.0,
        wafer_area_exponent=0.0,
        volume_overhead=0.0,
        maturity_overhead=0.0,
    )
    # Vanishing critical area -> random yield = 1; Y comes from the
    # systematic factor alone.
    flat_yield = CompositeYield(
        defects=DefectDensityModel(feature_exponent=0.0),
        critical_area=CriticalAreaModel(saturation=1e-12),
        learning=YieldLearningCurve(initial_multiplier=1.0 + 1e-12),
        systematic_yield=y_target,
    )
    return GeneralizedCostModel(
        wafer_cost=flat_wafer,
        yield_model=flat_yield,
        include_masks=False,
    )


class TestTowerConsistency:
    POINTS = [
        (150.0, 1e7, 0.18, 5_000, 0.4, 8.0),
        (300.0, 1e7, 0.18, 5_000, 0.4, 8.0),
        (700.0, 5e7, 0.13, 50_000, 0.9, 12.0),
    ]

    @pytest.mark.parametrize("sd,n_tr,lam,nw,y,cm", POINTS)
    def test_generalized_matches_total_when_frozen(self, sd, n_tr, lam, nw, y, cm):
        frozen = frozen_generalized(y, cm)
        fixed = TotalCostModel(include_masks=False)
        a = frozen.transistor_cost(sd, n_tr, lam, nw)
        b = fixed.transistor_cost(sd, n_tr, lam, nw, y, cm)
        assert a == pytest.approx(b, rel=1e-6)

    @pytest.mark.parametrize("sd,n_tr,lam,nw,y,cm", POINTS)
    def test_frozen_breakdowns_match(self, sd, n_tr, lam, nw, y, cm):
        frozen = frozen_generalized(y, cm)
        fixed = TotalCostModel(include_masks=False)
        ba = frozen.breakdown(sd, n_tr, lam, nw)
        bb = fixed.breakdown(sd, n_tr, lam, nw, y, cm)
        assert ba.manufacturing == pytest.approx(bb.manufacturing, rel=1e-6)
        assert ba.design == pytest.approx(bb.design, rel=1e-6)

    @pytest.mark.parametrize("sd,n_tr,lam,nw,y,cm", POINTS)
    def test_total_matches_eq3_at_infinite_volume(self, sd, n_tr, lam, nw, y, cm):
        fixed = TotalCostModel(include_masks=False)
        total = fixed.transistor_cost(sd, n_tr, lam, 1e15, y, cm)
        assert total == pytest.approx(transistor_cost(cm, lam, sd, y), rel=1e-6)

    def test_frozen_yield_is_the_target(self):
        frozen = frozen_generalized(0.4, 8.0)
        y = frozen.yield_at(1e7, 300, 0.18, 5_000)
        assert y == pytest.approx(0.4, rel=1e-6)

    def test_frozen_cm_sq_is_flat(self):
        frozen = frozen_generalized(0.4, 8.0)
        for lam in (0.5, 0.18, 0.05):
            for nw in (100, 1e6):
                assert float(frozen.cm_sq(lam, nw)) == pytest.approx(8.0, rel=1e-9)

    def test_unfrozen_model_differs(self):
        # Sanity: the default generalized model is NOT the frozen one.
        from repro.cost import DEFAULT_GENERALIZED_MODEL
        frozen = frozen_generalized(0.4, 8.0)
        a = DEFAULT_GENERALIZED_MODEL.transistor_cost(300, 1e7, 0.18, 5_000)
        b = frozen.transistor_cost(300, 1e7, 0.18, 5_000)
        assert a != pytest.approx(b, rel=1e-3)

    def test_tower_ordering_under_defaults(self):
        # Under default (non-frozen) settings, restoring omitted effects
        # only raises cost at equal nominal parameters: eq.(3) <= eq.(4).
        sd, n_tr, lam, nw, y, cm = 300.0, 1e7, 0.18, 5_000, 0.8, 8.0
        eq3 = transistor_cost(cm, lam, sd, y)
        eq4 = TotalCostModel(include_masks=False).transistor_cost(sd, n_tr, lam, nw, y, cm)
        eq4_masks = TotalCostModel(include_masks=True).transistor_cost(sd, n_tr, lam, nw, y, cm)
        assert eq3 < eq4 < eq4_masks
