"""Technology-node selection tests — the high-cost-era stratification."""

import pytest

from repro.cost import DEFAULT_GENERALIZED_MODEL, GeneralizedCostModel
from repro.errors import DomainError
from repro.interconnect import PredictionErrorModel
from repro.optimize import DEFAULT_NODE_LADDER_UM, evaluate_nodes, optimal_node


class TestEvaluateNodes:
    def test_one_choice_per_node(self):
        choices = evaluate_nodes(DEFAULT_GENERALIZED_MODEL, 1e7, 1e6)
        assert len(choices) == len(DEFAULT_NODE_LADDER_UM)
        assert [c.feature_um for c in choices] == list(DEFAULT_NODE_LADDER_UM)

    def test_components_sum(self):
        for c in evaluate_nodes(DEFAULT_GENERALIZED_MODEL, 1e7, 1e6,
                                nodes_um=(0.25, 0.13)):
            assert c.cost_per_unit == pytest.approx(
                c.silicon_per_unit + c.development_per_unit)

    def test_wafer_count_consistent_with_units(self):
        n_units = 1e6
        for c in evaluate_nodes(DEFAULT_GENERALIZED_MODEL, 1e7, n_units,
                                nodes_um=(0.18,)):
            die_area = 1e7 * c.sd_opt * (0.18e-4) ** 2
            implied_units = (c.wafers_needed
                             * DEFAULT_GENERALIZED_MODEL.wafer.area_cm2
                             * c.yield_at_opt / die_area)
            assert implied_units == pytest.approx(n_units, rel=0.02)

    def test_design_cost_scale_grows_at_fine_nodes(self):
        choices = evaluate_nodes(DEFAULT_GENERALIZED_MODEL, 1e7, 1e6)
        by_node = {c.feature_um: c.design_cost_scale for c in choices}
        assert by_node[0.18] == pytest.approx(1.0)
        assert by_node[0.07] > by_node[0.13] > by_node[0.18]
        assert by_node[0.35] < 1.0

    def test_development_per_unit_amortises(self):
        small = evaluate_nodes(DEFAULT_GENERALIZED_MODEL, 1e7, 1e5, nodes_um=(0.18,))[0]
        large = evaluate_nodes(DEFAULT_GENERALIZED_MODEL, 1e7, 1e7, nodes_um=(0.18,))[0]
        assert large.development_per_unit < small.development_per_unit

    def test_empty_ladder_rejected(self):
        with pytest.raises(DomainError):
            evaluate_nodes(DEFAULT_GENERALIZED_MODEL, 1e7, 1e6, nodes_um=())

    def test_units_validated(self):
        with pytest.raises(DomainError):
            evaluate_nodes(DEFAULT_GENERALIZED_MODEL, 1e7, 0)


class TestOptimalNode:
    def test_high_volume_rides_the_newest_node(self):
        best = optimal_node(DEFAULT_GENERALIZED_MODEL, 1e7, 1e8)
        assert best.feature_um == min(DEFAULT_NODE_LADDER_UM)

    def test_low_volume_stays_back(self):
        best = optimal_node(DEFAULT_GENERALIZED_MODEL, 1e7, 1e4)
        assert best.feature_um >= 0.18

    def test_optimal_node_monotone_in_volume(self):
        # The stratification: finer (or equal) nodes as volume grows.
        volumes = [1e4, 1e5, 1e6, 1e7, 1e8]
        nodes = [optimal_node(DEFAULT_GENERALIZED_MODEL, 1e7, v).feature_um
                 for v in volumes]
        assert all(a >= b for a, b in zip(nodes, nodes[1:]))
        assert nodes[0] > nodes[-1]  # and it actually moves

    def test_unit_cost_falls_with_volume(self):
        costs = [optimal_node(DEFAULT_GENERALIZED_MODEL, 1e7, v).cost_per_unit
                 for v in (1e4, 1e6, 1e8)]
        assert costs[0] > costs[1] > costs[2]

    def test_best_is_argmin_of_evaluate(self):
        choices = evaluate_nodes(DEFAULT_GENERALIZED_MODEL, 1e7, 1e6)
        best = optimal_node(DEFAULT_GENERALIZED_MODEL, 1e7, 1e6)
        assert best.cost_per_unit == min(c.cost_per_unit for c in choices)

    def test_sharper_prediction_favours_finer_nodes(self):
        # If nanometre prediction were free (flat sigma), the newest
        # node would win at lower volumes than with the default model.
        flat = PredictionErrorModel(exponent=1e-9)
        default_best = optimal_node(DEFAULT_GENERALIZED_MODEL, 1e7, 3e5)
        flat_best = optimal_node(DEFAULT_GENERALIZED_MODEL, 1e7, 3e5,
                                 error_model=flat)
        assert flat_best.feature_um <= default_best.feature_um
