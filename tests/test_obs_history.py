"""Run-history store, cross-run drift detection, and trend reporting.

The acceptance contract (ISSUE 9): a synthetic 20-run history with a
10x p99 regression injected in the last run must be flagged by
:func:`repro.obs.detect_drift` while an in-band wobble is not, and
``python -m repro.obs report`` must render both the text trend table
and the self-contained HTML dashboard from the same store. Storage
semantics — schema versioning, migration-on-open, atomic writes,
typed query records — are covered alongside.
"""

import json
import sqlite3
import threading

import numpy as np
import pytest

from repro import obs
from repro.engine import clear_cache, evaluate_grid
from repro.engine.kernels import Eq4SdKernel
from repro.cost import PAPER_FIGURE4_MODEL
from repro.errors import CollectedErrors, DataError, DomainError
from repro.obs import history as obs_history
from repro.obs.cli import main as obs_main
from repro.obs.history import (
    HISTORY_SCHEMA_ID,
    HISTORY_SCHEMA_VERSION,
    HistoryStore,
    RunRecord,
    detect_drift,
    flatten_samples,
    format_trend_table,
    render_html_dashboard,
)
from repro.obs.metrics import MetricsRegistry
from repro.robust import ErrorPolicy

FIG4A = dict(n_transistors=1e7, feature_um=0.18, n_wafers=5_000,
             yield_fraction=0.4, cost_per_cm2=8.0)


@pytest.fixture()
def store(tmp_path):
    with HistoryStore(tmp_path / "runs.sqlite") as st:
        yield st


def _registry(p99_s: float = 0.010, hits: int = 10) -> MetricsRegistry:
    """One synthetic run's registry: a counter, a gauge, a sketch."""
    reg = MetricsRegistry()
    reg.counter("engine_dispatch_total", {"backend": "numpy"}).inc(7)
    reg.counter("engine_chunk_retries_total", {"reason": "crash"}).inc(hits)
    reg.gauge("engine_cache_hit_rate").set(0.8)
    sketch = reg.sketch("engine.evaluate_grid")
    for i in range(60):
        sketch.observe(p99_s * (1.0 + 0.01 * ((i % 9) - 4)))
    return reg


def _populate(store, n_runs: int = 20, last_p99: float | None = None):
    """Record ``n_runs`` stable runs; optionally regress the last one."""
    for i in range(n_runs):
        p99 = 0.010
        if last_p99 is not None and i == n_runs - 1:
            p99 = last_p99
        store.record_run(
            "repro.report", wall_time_s=1.0, backend="numpy",
            registry=_registry(p99_s=p99),
            supervision={"retries": 2, "breaker_state": "closed"})


class TestStore:
    def test_fresh_store_is_schema_versioned(self, store):
        version = store._conn.execute("PRAGMA user_version").fetchone()[0]
        assert version == HISTORY_SCHEMA_VERSION
        (schema,) = store._conn.execute(
            "SELECT value FROM meta WHERE key = 'schema'").fetchone()
        assert schema == HISTORY_SCHEMA_ID

    def test_reopen_is_idempotent(self, tmp_path):
        path = tmp_path / "runs.sqlite"
        with HistoryStore(path) as st:
            st.record_run("cmd", wall_time_s=0.1, registry=_registry())
        with HistoryStore(path) as st:
            assert len(st) == 1

    def test_newer_schema_is_rejected_not_rewritten(self, tmp_path):
        path = tmp_path / "future.sqlite"
        conn = sqlite3.connect(path)
        conn.execute(f"PRAGMA user_version = {HISTORY_SCHEMA_VERSION + 1}")
        conn.commit()
        conn.close()
        with pytest.raises(DataError, match="newer"):
            HistoryStore(path)

    def test_non_database_file_is_a_dataerror(self, tmp_path):
        path = tmp_path / "junk.sqlite"
        path.write_bytes(b"definitely not sqlite" * 100)
        with pytest.raises(DataError):
            HistoryStore(path)

    def test_record_run_returns_typed_record(self, store):
        record = store.record_run(
            "repro.bench", wall_time_s=2.5, backend="numpy",
            registry=_registry(), supervision={"retries": 1,
                                               "breaker_state": "open"},
            extra_samples={"bench:sweep:median_s": 0.25})
        assert isinstance(record, RunRecord)
        assert record.run_id == 1
        assert record.command == "repro.bench"
        assert record.git_sha and record.python and record.constants_version
        assert record.samples["supervision:retries"] == 1.0
        assert record.samples["supervision:breaker_open"] == 1.0
        assert record.samples["bench:sweep:median_s"] == 0.25
        assert record.samples["run:wall_time_s"] == 2.5
        # The stored registry snapshot round-trips through the wire format.
        reg = record.registry()
        assert reg.counters[
            'engine_dispatch_total{backend="numpy"}'].value == 7.0
        assert reg.sketches["engine.evaluate_grid"].count == 60

    def test_record_run_validates_inputs(self, store):
        with pytest.raises(DomainError):
            store.record_run("", wall_time_s=1.0, registry=_registry())
        with pytest.raises(DomainError):
            store.record_run("cmd", wall_time_s=-1.0, registry=_registry())

    def test_runs_filters_and_order(self, store):
        store.record_run("a", wall_time_s=1.0, backend="numpy",
                         registry=_registry(),
                         environment={"git_sha": "aaa"})
        store.record_run("b", wall_time_s=1.0, backend="python",
                         registry=_registry(),
                         environment={"git_sha": "bbb"})
        store.record_run("a", wall_time_s=1.0, backend="numpy",
                         registry=_registry(),
                         environment={"git_sha": "ccc"})
        assert [r.run_id for r in store.runs()] == [1, 2, 3]
        assert [r.run_id for r in store.runs(command="a")] == [1, 3]
        assert [r.run_id for r in store.runs(backend="python")] == [2]
        assert [r.run_id for r in store.runs(git_sha="ccc")] == [3]
        assert [r.run_id for r in store.latest(2)] == [2, 3]
        with pytest.raises(DomainError):
            store.runs(limit=0)

    def test_series_by_labels_and_field(self, store):
        _populate(store, n_runs=3)
        counters = store.series("engine_dispatch_total",
                                {"backend": "numpy"})
        assert [p.value for p in counters] == [7.0, 7.0, 7.0]
        assert counters[0].run_id == 1 and counters[-1].run_id == 3
        p99 = store.series("engine.evaluate_grid", field="p99")
        assert len(p99) == 3 and all(p.value > 0 for p in p99)
        assert store.series("no_such_metric") == []
        keys = store.series_keys()
        assert "engine.evaluate_grid:p99" in keys
        assert "run:wall_time_s" in keys

    def test_writes_are_atomic_under_threads(self, tmp_path):
        with HistoryStore(tmp_path / "threads.sqlite") as st:
            errors = []

            def writer():
                try:
                    for _ in range(5):
                        st.record_run("thread", wall_time_s=0.1,
                                      registry=_registry())
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [threading.Thread(target=writer) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors
            assert len(st) == 20
            # Every payload parses — no torn writes.
            for record in st.runs():
                assert record.samples


class TestFlatten:
    def test_flatten_covers_all_metric_kinds(self):
        reg = _registry()
        reg.histogram("engine_grid_points").observe(100.0)
        samples = flatten_samples(reg, {"retries": 3,
                                        "breaker_state": "open"})
        assert samples['engine_dispatch_total{backend="numpy"}'] == 7.0
        assert samples["engine_cache_hit_rate"] == 0.8
        assert samples["engine_grid_points:mean"] == 100.0
        assert samples["engine_grid_points:count"] == 1.0
        assert samples["engine.evaluate_grid:p50"] > 0.0
        assert samples["supervision:retries"] == 3.0
        assert samples["supervision:breaker_open"] == 1.0


class TestDrift:
    def test_ten_x_p99_regression_is_flagged(self, store):
        _populate(store, n_runs=20, last_p99=0.100)
        report = detect_drift(store)
        assert not report.ok
        flagged = {v.key for v in report.flagged}
        assert "engine.evaluate_grid:p99" in flagged
        verdict = {v.key: v for v in report.verdicts}[
            "engine.evaluate_grid:p99"]
        assert verdict.direction == "high"
        assert verdict.latest > 9 * verdict.median
        # Stable series stayed inside their band.
        stable = {v.key: v.status for v in report.verdicts}
        assert stable['engine_dispatch_total{backend="numpy"}'] == "ok"
        # MASK (the default) emitted one diagnostic per flagged series.
        assert len(report.diagnostics) == len(report.flagged)

    def test_in_band_wobble_is_not_flagged(self, store):
        # 2% wobble sits well inside the 20% relative floor.
        _populate(store, n_runs=20, last_p99=0.0102)
        report = detect_drift(store)
        assert report.ok
        assert report.counts()["drift"] == 0

    def test_short_series_is_insufficient_never_flagged(self, store):
        _populate(store, n_runs=3, last_p99=1.0)
        report = detect_drift(store, min_runs=5)
        assert report.ok
        assert all(v.status == "insufficient" for v in report.verdicts)

    def test_raise_policy_propagates_first_drift(self, store):
        _populate(store, n_runs=20, last_p99=0.100)
        with pytest.raises(DomainError, match="drifted"):
            detect_drift(store, policy=ErrorPolicy.RAISE)

    def test_collect_policy_aggregates(self, store):
        _populate(store, n_runs=20, last_p99=0.100)
        with pytest.raises(CollectedErrors) as err:
            detect_drift(store, policy=ErrorPolicy.COLLECT)
        assert len(err.value.diagnostics) >= 1

    def test_parameter_validation(self, store):
        _populate(store, n_runs=5)
        with pytest.raises(DomainError):
            detect_drift(store, window=1)
        with pytest.raises(DomainError):
            detect_drift(store, min_runs=2)
        with pytest.raises(DomainError):
            detect_drift(store, mad_scale=0.0)

    def test_explicit_keys_restrict_the_scan(self, store):
        _populate(store, n_runs=20, last_p99=0.100)
        report = detect_drift(store,
                              keys=['engine_dispatch_total'
                                    '{backend="numpy"}'])
        assert report.ok
        assert len(report.verdicts) == 1


class TestRecorder:
    @pytest.fixture(autouse=True)
    def _fresh(self):
        clear_cache()
        obs.disable()
        obs.reset()
        yield
        clear_cache()
        obs.disable()
        obs.reset()

    def test_note_evaluation_without_recorder_is_a_noop(self):
        obs.note_evaluation("numpy", 100, False)  # must not raise

    def test_engine_sink_feeds_the_active_recorder(self, tmp_path):
        kernel = Eq4SdKernel(PAPER_FIGURE4_MODEL, **FIG4A)
        grid = np.linspace(150.0, 900.0, 64)
        with obs_history.recording(tmp_path / "rec.sqlite",
                                   "test.sweep") as rec:
            evaluate_grid(kernel, grid, where="test.history", cache=False)
            evaluate_grid(kernel, grid, where="test.history", cache=False)
        record = rec.record
        assert record is not None
        assert record.command == "test.sweep"
        assert record.backend == "numpy"
        assert record.samples["history_grid_evaluations_total"] == 2.0
        assert record.samples["history_grid_points_total"] == 128.0
        assert record.wall_time_s > 0.0

    def test_failed_run_is_not_recorded(self, tmp_path):
        path = tmp_path / "fail.sqlite"
        with pytest.raises(RuntimeError):
            with obs_history.recording(path, "test.fail"):
                raise RuntimeError("boom")
        with HistoryStore(path) as st:
            assert len(st) == 0

    def test_nested_recorders_are_rejected(self, tmp_path):
        with obs_history.recording(tmp_path / "a.sqlite", "outer"):
            with pytest.raises(DomainError, match="already active"):
                with obs_history.recording(tmp_path / "b.sqlite", "inner"):
                    pass  # pragma: no cover


class TestReporting:
    def test_trend_table_shows_sparkline_and_verdict(self, store):
        _populate(store, n_runs=20, last_p99=0.100)
        report = detect_drift(store)
        table = format_trend_table(store, drift=report)
        assert "engine.evaluate_grid:p99" in table
        assert "drift" in table
        assert "█" in table  # the regression spike dominates the sparkline

    def test_html_dashboard_is_self_contained(self, store):
        _populate(store, n_runs=20, last_p99=0.100)
        report = detect_drift(store)
        html = render_html_dashboard(store, drift=report)
        assert html.startswith("<!DOCTYPE html>")
        assert "<svg" in html and "polyline" in html
        assert 'class="drift"' in html  # flagged row highlighted
        assert HISTORY_SCHEMA_ID in html  # provenance footer
        assert store.runs()[-1].git_sha in html
        # Self-contained: no external scripts, stylesheets, or images.
        assert "<script" not in html
        assert "http://" not in html and "https://" not in html

    def test_empty_store_renders_gracefully(self, store):
        assert "no series" in format_trend_table(store)
        assert "no series" in render_html_dashboard(store)


class TestCli:
    def _seeded(self, tmp_path, **kwargs):
        path = tmp_path / "runs.sqlite"
        with HistoryStore(path) as st:
            _populate(st, **kwargs)
        return path

    def test_report_writes_dashboard_and_table(self, tmp_path, capsys):
        path = self._seeded(tmp_path, n_runs=20, last_p99=0.100)
        assert obs_main(["report", "--history", str(path)]) == 0
        out = capsys.readouterr().out
        assert "run history" in out
        assert "drift check: FLAGGED" in out
        html_path = path.with_suffix(".html")
        assert html_path.exists()
        assert "<svg" in html_path.read_text()

    def test_report_strict_exits_2_on_drift(self, tmp_path):
        path = self._seeded(tmp_path, n_runs=20, last_p99=0.100)
        assert obs_main(["report", "--strict", "--history", str(path),
                         "--html", "-"]) == 2

    def test_drift_exit_codes(self, tmp_path):
        flagged = self._seeded(tmp_path, n_runs=20, last_p99=0.100)
        assert obs_main(["drift", "--history", str(flagged)]) == 2
        clean = tmp_path / "clean.sqlite"
        with HistoryStore(clean) as st:
            _populate(st, n_runs=20)
        assert obs_main(["drift", "--history", str(clean)]) == 0

    def test_runs_lists_provenance(self, tmp_path, capsys):
        path = self._seeded(tmp_path, n_runs=3)
        assert obs_main(["runs", "--history", str(path)]) == 0
        out = capsys.readouterr().out
        assert "repro.report" in out and "numpy" in out

    def test_missing_store_is_exit_1(self, tmp_path, capsys,
                                     monkeypatch):
        monkeypatch.delenv("REPRO_HISTORY", raising=False)
        assert obs_main(["report"]) == 1
        missing = tmp_path / "nope.sqlite"
        assert obs_main(["report", "--history", str(missing)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_env_var_names_the_default_store(self, tmp_path, capsys,
                                             monkeypatch):
        path = self._seeded(tmp_path, n_runs=20)
        monkeypatch.setenv("REPRO_HISTORY", str(path))
        assert obs_main(["drift"]) == 0


class TestPayloadFormat:
    def test_payload_is_sorted_json(self, store):
        store.record_run("cmd", wall_time_s=1.0, registry=_registry())
        (payload_text,) = store._conn.execute(
            "SELECT payload FROM runs").fetchone()
        payload = json.loads(payload_text)
        assert set(payload) == {"metrics", "sketches", "supervision",
                                "samples"}
        assert payload["sketches"]["engine.evaluate_grid"]["count"] == 60
        assert payload["sketches"]["engine.evaluate_grid"]["p99"] > 0
