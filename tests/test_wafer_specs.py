"""Wafer format tests."""

import math

import pytest

from repro.wafer import WAFER_150MM, WAFER_200MM, WAFER_300MM, WaferSpec, standard_wafers


class TestStandardWafers:
    def test_three_formats_ordered(self):
        wafers = standard_wafers()
        assert [w.diameter_mm for w in wafers] == [150.0, 200.0, 300.0]

    def test_200mm_area(self):
        assert WAFER_200MM.area_cm2 == pytest.approx(math.pi * 10.0**2)

    def test_usable_radius_excludes_edge(self):
        assert WAFER_200MM.usable_radius_cm == pytest.approx(9.7)

    def test_usable_area_smaller_than_full(self):
        for w in standard_wafers():
            assert w.usable_area_cm2 < w.area_cm2

    def test_area_scales_with_diameter_squared(self):
        assert WAFER_300MM.area_cm2 / WAFER_150MM.area_cm2 == pytest.approx(4.0)


class TestCustomSpec:
    def test_custom_edge_exclusion(self):
        w = WaferSpec("test", 100.0, edge_exclusion_mm=5.0)
        assert w.usable_radius_cm == pytest.approx(4.5)

    def test_zero_edge_exclusion_allowed(self):
        w = WaferSpec("test", 100.0, edge_exclusion_mm=0.0)
        assert w.usable_area_cm2 == pytest.approx(w.area_cm2)

    def test_excessive_edge_exclusion_rejected(self):
        with pytest.raises(ValueError, match="no usable wafer"):
            WaferSpec("bad", 100.0, edge_exclusion_mm=50.0)

    def test_negative_diameter_rejected(self):
        with pytest.raises(Exception):
            WaferSpec("bad", -200.0)

    def test_negative_scribe_rejected(self):
        with pytest.raises(Exception):
            WaferSpec("bad", 200.0, scribe_mm=-0.1)
