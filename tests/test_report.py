"""Report rendering tests."""

import pytest

from repro.errors import DomainError
from repro.report import Series, ascii_plot, format_csv, format_table


class TestFormatTable:
    def test_alignment_and_header(self):
        out = format_table(["name", "value"], [("a", 1.0), ("bb", 22.5)])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert "-+-" in lines[1]
        assert len(lines) == 4

    def test_title(self):
        out = format_table(["x"], [(1,)], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_none_rendered_blank(self):
        out = format_table(["x", "y"], [(1, None)])
        assert out.splitlines()[-1].rstrip().endswith("1 |")

    def test_float_spec(self):
        out = format_table(["x"], [(3.14159,)], float_spec=".2f")
        assert "3.14" in out

    def test_row_length_mismatch(self):
        with pytest.raises(DomainError):
            format_table(["a", "b"], [(1,)])

    def test_empty_headers(self):
        with pytest.raises(DomainError):
            format_table([], [])


class TestFormatCsv:
    def test_round_trip_shape(self):
        out = format_csv(["a", "b"], [(1, 2.5), (3, 4.5)])
        lines = out.splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,2.5"

    def test_none_blank(self):
        out = format_csv(["a"], [(None,)])
        assert out.split("\n")[1] == ""

    def test_comma_header_rejected(self):
        with pytest.raises(DomainError):
            format_csv(["a,b"], [(1,)])


class TestSeries:
    def make(self):
        return Series.from_arrays("s", [1, 2, 3, 4], [10, 8, 6, 4])

    def test_from_arrays(self):
        s = self.make()
        assert s.x == (1.0, 2.0, 3.0, 4.0)

    def test_monotonicity(self):
        s = self.make()
        assert s.is_decreasing()
        assert not s.is_increasing()

    def test_monotone_respects_x_order(self):
        s = Series.from_arrays("s", [3, 1, 2], [6, 2, 4])
        assert s.is_increasing()

    def test_nonstrict(self):
        s = Series.from_arrays("s", [1, 2, 3], [1, 1, 2])
        assert not s.is_increasing(strict=True)
        assert s.is_increasing(strict=False)

    def test_argmin(self):
        assert self.make().argmin_x() == 4.0

    def test_y_range(self):
        assert self.make().y_range() == (4.0, 10.0)

    def test_crossing_interpolated(self):
        s = Series.from_arrays("s", [0, 1], [0, 10])
        assert s.crossing_x(5.0) == pytest.approx(0.5)

    def test_crossing_none(self):
        assert self.make().crossing_x(100.0) is None

    def test_crossing_exact_point(self):
        s = Series.from_arrays("s", [0, 1, 2], [1, 5, 9])
        assert s.crossing_x(5.0) == pytest.approx(1.0)

    def test_to_table_contains_points(self):
        out = self.make().to_table()
        assert "10" in out

    def test_length_mismatch(self):
        with pytest.raises(DomainError):
            Series("s", (1.0,), (1.0, 2.0))

    def test_needs_two_points(self):
        with pytest.raises(DomainError):
            Series("s", (1.0,), (1.0,))


class TestAsciiPlot:
    def test_contains_markers_and_legend(self):
        s1 = Series.from_arrays("alpha", [0, 1, 2], [1, 2, 3])
        s2 = Series.from_arrays("beta", [0, 1, 2], [3, 2, 1])
        out = ascii_plot([s1, s2])
        assert "o=alpha" in out
        assert "x=beta" in out

    def test_logy_rejects_nonpositive(self):
        s = Series.from_arrays("s", [0, 1], [0.0, 1.0])
        with pytest.raises(DomainError):
            ascii_plot([s], logy=True)

    def test_logy_runs(self):
        s = Series.from_arrays("s", [0, 1, 2], [1, 10, 100])
        out = ascii_plot([s], logy=True)
        assert "log10" in out

    def test_empty_rejected(self):
        with pytest.raises(DomainError):
            ascii_plot([])
