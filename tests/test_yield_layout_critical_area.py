"""Geometric critical-area tests (refs [31]/[32] substitute)."""

import pytest

from repro.errors import LayoutError
from repro.layout import Rect, memory_array, random_logic_layout, sram_cell
from repro.yieldmodels import (
    ShortCriticalArea,
    critical_area_curve,
    expected_short_faults,
)


def two_wires(gap: int = 2, length: int = 10) -> list[Rect]:
    """Two parallel horizontal m1 wires separated by ``gap``."""
    return [
        Rect("m1", 0, 0, length, 2),
        Rect("m1", 0, 2 + gap, length, 4 + gap),
    ]


class TestFacingPairs:
    def test_two_parallel_wires_one_pair(self):
        sca = ShortCriticalArea.from_rects(two_wires())
        assert len(sca.pairs) == 1
        assert sca.pairs[0].gap == 2.0
        assert sca.pairs[0].span == 10.0

    def test_different_layers_no_pair(self):
        rects = [Rect("m1", 0, 0, 10, 2), Rect("m2", 0, 4, 10, 6)]
        sca = ShortCriticalArea.from_rects(rects)
        assert len(sca.pairs) == 0

    def test_non_overlapping_spans_no_pair(self):
        rects = [Rect("m1", 0, 0, 4, 2), Rect("m1", 10, 10, 14, 12)]
        sca = ShortCriticalArea.from_rects(rects)
        assert len(sca.pairs) == 0

    def test_vertical_pairs_found(self):
        rects = [Rect("m1", 0, 0, 2, 10), Rect("m1", 5, 0, 7, 10)]
        sca = ShortCriticalArea.from_rects(rects)
        assert len(sca.pairs) == 1
        assert sca.pairs[0].gap == 3.0

    def test_empty_layout_raises(self):
        with pytest.raises(LayoutError):
            ShortCriticalArea.from_rects([])


class TestCriticalArea:
    def test_zero_below_gap(self):
        sca = ShortCriticalArea.from_rects(two_wires(gap=3))
        assert sca.critical_area(2.9) == 0.0
        assert sca.critical_area(3.0) == 0.0

    def test_linear_growth_above_gap(self):
        sca = ShortCriticalArea.from_rects(two_wires(gap=2, length=10))
        # A_crit(x) = span * (x - gap) for gap < x < 2*gap... within clip.
        assert sca.critical_area(3.0) == pytest.approx(10.0 * 1.0)
        assert sca.critical_area(4.0) == pytest.approx(10.0 * 2.0)

    def test_clipped_at_defect_size(self):
        # For a zero-gap-ish pair a huge defect's band is bounded by its
        # own footprint height x.
        sca = ShortCriticalArea.from_rects(two_wires(gap=1, length=10))
        x = 100.0
        assert sca.critical_area(x) == pytest.approx(10.0 * min(x - 1, x))

    def test_scales_with_span(self):
        short = ShortCriticalArea.from_rects(two_wires(gap=2, length=5))
        long = ShortCriticalArea.from_rects(two_wires(gap=2, length=20))
        assert long.critical_area(4.0) == pytest.approx(4 * short.critical_area(4.0))

    def test_monotone_in_defect_size(self):
        sca = ShortCriticalArea.from_rects(list(sram_cell().rects))
        sizes = [1.0, 2.0, 4.0, 8.0, 16.0]
        areas = [sca.critical_area(x) for x in sizes]
        assert all(a <= b for a, b in zip(areas, areas[1:]))

    def test_smallest_gap_sram(self):
        sca = ShortCriticalArea.from_rects(list(sram_cell().rects))
        assert sca.smallest_gap() == 2.0

    def test_curve_helper(self):
        curve = critical_area_curve(two_wires(), [1.0, 3.0, 5.0])
        assert curve[0] == (1.0, 0.0)
        assert curve[2][1] > curve[1][1] > 0


class TestExpectedFaults:
    def test_positive_for_real_cell(self):
        faults = expected_short_faults(list(sram_cell().rects),
                                       defect_density_per_lambda2=1e-6, x0=1.0)
        assert faults > 0

    def test_linear_in_density(self):
        rects = list(sram_cell().rects)
        a = expected_short_faults(rects, 1e-6, 1.0)
        b = expected_short_faults(rects, 2e-6, 1.0)
        assert b == pytest.approx(2 * a, rel=1e-9)

    def test_larger_x0_more_faults(self):
        # A dirtier spectrum (bigger critical size) shorts more.
        rects = list(sram_cell().rects)
        clean = expected_short_faults(rects, 1e-6, 0.5)
        dirty = expected_short_faults(rects, 1e-6, 2.0)
        assert dirty > clean

    def test_layout_with_no_facing_pairs_is_immune(self):
        rects = [Rect("m1", 0, 0, 10, 2)]
        assert expected_short_faults(rects, 1e-3, 1.0) == 0.0

    def test_array_scales_per_cell(self):
        # Regularity pays: 4x4 array faults ~ 16x the single cell's
        # intra-cell faults plus inter-cell terms (>= 16x, < 40x).
        cell_faults = expected_short_faults(list(sram_cell().rects), 1e-6, 1.0)
        array = memory_array(4, 4)
        array_faults = expected_short_faults(array.flatten(), 1e-6, 1.0)
        assert array_faults >= 16 * cell_faults * 0.99
        assert array_faults < 40 * 16 * cell_faults

    def test_xmax_validation(self):
        sca = ShortCriticalArea.from_rects(two_wires())
        with pytest.raises(LayoutError):
            sca.expected_faults(1e-6, x0=2.0, x_max=1.0)

    def test_denser_layout_more_critical(self):
        # Tighter spacing -> more faults at equal density: the coupling
        # the parametric CriticalAreaModel approximates.
        tight = expected_short_faults(two_wires(gap=1), 1e-4, 1.0)
        loose = expected_short_faults(two_wires(gap=6), 1e-4, 1.0)
        assert tight > loose
