"""Figure 3 constant-die-cost analysis tests."""

import pytest

from repro.data import load_itrs_1999
from repro.errors import DomainError
from repro.roadmap import (
    PAPER_FIGURE3_ASSUMPTIONS,
    ConstantCostAssumptions,
    constant_cost_sd,
    constant_cost_series,
)


class TestAssumptions:
    def test_paper_anchors(self):
        a = PAPER_FIGURE3_ASSUMPTIONS
        assert a.die_cost_usd == 34.0
        assert a.cost_per_cm2 == 8.0
        assert a.yield_fraction == 0.8

    def test_affordable_die_area(self):
        # 34 * 0.8 / 8 = 3.4 cm^2 — the paper's affordable die.
        assert PAPER_FIGURE3_ASSUMPTIONS.affordable_die_area_cm2 == pytest.approx(3.4)

    def test_validation(self):
        with pytest.raises(DomainError):
            ConstantCostAssumptions(yield_fraction=1.2)
        with pytest.raises(DomainError):
            ConstantCostAssumptions(die_cost_usd=-1.0)


class TestConstantCostSd:
    @pytest.fixture(scope="class")
    def nodes(self):
        return load_itrs_1999()

    def test_1999_value(self, nodes):
        # 3.4 / (21e6 * (1.8e-5)^2) ~ 500.
        sd = constant_cost_sd(nodes[0])
        assert sd == pytest.approx(3.4 / (21e6 * (1.8e-5) ** 2), rel=1e-9)
        assert 480 < sd < 520

    def test_falls_across_roadmap(self, nodes):
        sds = [constant_cost_sd(n) for n in nodes]
        assert all(a > b for a, b in zip(sds, sds[1:]))

    def test_2014_requires_sub_custom_density(self, nodes):
        # By the horizon the constant-cost s_d falls BELOW the paper's
        # full-custom bound of ~100 — the cost contradiction in raw form.
        assert constant_cost_sd(nodes[-1]) < 100

    def test_richer_budget_allows_sparser(self, nodes):
        rich = ConstantCostAssumptions(die_cost_usd=68.0)
        assert constant_cost_sd(nodes[0], rich) == pytest.approx(
            2 * constant_cost_sd(nodes[0]), rel=1e-9)

    def test_costlier_silicon_requires_denser(self, nodes):
        pricey = ConstantCostAssumptions(cost_per_cm2=16.0)
        assert constant_cost_sd(nodes[0], pricey) == pytest.approx(
            constant_cost_sd(nodes[0]) / 2, rel=1e-9)


class TestSeries:
    @pytest.fixture(scope="class")
    def series(self):
        return constant_cost_series(load_itrs_1999())

    def test_one_point_per_node(self, series):
        assert len(series) == 6

    def test_chronological(self, series):
        years = [p.node.year for p in series]
        assert years == sorted(years)

    def test_ratio_grows_monotonically(self, series):
        # Figure 3's message: the implied/required ratio worsens.
        ratios = [p.ratio for p in series]
        assert all(a < b for a, b in zip(ratios, ratios[1:]))

    def test_contradiction_emerges_and_stays(self, series):
        # Near 1 at the 1999 anchor, contradictory from 2002 on.
        assert series[0].ratio == pytest.approx(1.0, abs=0.15)
        assert all(p.is_contradictory for p in series[1:])

    def test_horizon_ratio_magnitude(self, series):
        # By 2014 the roadmap's implied s_d overshoots the affordable
        # one by roughly 2x.
        assert 1.5 < series[-1].ratio < 2.5

    def test_unsorted_input_is_sorted(self):
        nodes = list(reversed(load_itrs_1999()))
        series = constant_cost_series(nodes)
        assert [p.node.year for p in series] == sorted(n.year for n in nodes)
