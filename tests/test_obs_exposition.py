"""Exposition tests: Prometheus rendering, parsing, OTLP, HTTP endpoint.

``render_prometheus`` must emit text a real scraper accepts — the
acceptance check here is the round trip through the strict grammar
validator ``parse_prometheus`` — and the stdlib HTTP endpoint must
serve live registry values. The snapshot bundle (what the CLI's
``--telemetry`` flag and CI upload) is checked file by file.
"""

import json
import math
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.errors import DomainError
from repro.obs.exposition import (
    SKETCH_FAMILY,
    parse_prometheus,
    registry_from_records,
    render_prometheus,
    spans_to_otlp,
    start_metrics_endpoint,
    write_snapshot,
)
from repro.obs.metrics import HISTOGRAM_BUCKET_BOUNDS, MetricsRegistry


@pytest.fixture(autouse=True)
def clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


def _populated_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("requests_total", {"backend": "numpy"}).inc(3)
    reg.counter("requests_total", {"backend": "python"}).inc(1)
    reg.gauge("cache_entries").set(42.0)
    h = reg.histogram("grid_points", {"where": "sweep"})
    for v in (10.0, 500.0, 2e6):
        h.observe(v)
    reg.sketch("engine.evaluate_grid").observe(1.5e-3)
    return reg


class TestRenderParse:
    def test_round_trips_through_strict_parser(self):
        text = render_prometheus(_populated_registry())
        samples = parse_prometheus(text)
        by_name = {}
        for s in samples:
            by_name.setdefault(s["name"], []).append(s)
        assert {s["labels"]["backend"]: s["value"]
                for s in by_name["requests_total"]} == \
            {"numpy": 3.0, "python": 1.0}
        assert by_name["cache_entries"][0]["value"] == 42.0
        # Histogram: cumulative buckets, closing +Inf equals the count.
        buckets = by_name["grid_points_bucket"]
        assert buckets[-1]["labels"]["le"] == "+Inf"
        assert buckets[-1]["value"] == 3.0
        assert len(buckets) == len(HISTOGRAM_BUCKET_BOUNDS) + 1
        assert by_name["grid_points_count"][0]["value"] == 3.0
        # Sketches fold into one summary family with span+quantile labels.
        quantiles = [s for s in by_name[SKETCH_FAMILY]
                     if s["labels"]["span"] == "engine.evaluate_grid"]
        assert {s["labels"]["quantile"] for s in quantiles} == \
            {"0.5", "0.9", "0.99"}

    def test_dotted_names_are_sanitized(self):
        reg = MetricsRegistry()
        reg.gauge("engine.cache.hit_rate").set(0.5)
        text = render_prometheus(reg)
        assert "engine_cache_hit_rate 0.5" in text
        parse_prometheus(text)

    def test_label_values_escape(self):
        reg = MetricsRegistry()
        reg.counter("odd_total", {"path": 'a"b\\c\nd'}).inc()
        text = render_prometheus(reg)
        (sample,) = parse_prometheus(text)
        assert sample["labels"]["path"] == 'a"b\\c\nd'

    def test_nonfinite_values_render(self):
        reg = MetricsRegistry()
        reg.gauge("empty_min").set(math.inf)
        reg.gauge("unset").set(math.nan)
        samples = {s["name"]: s["value"]
                   for s in parse_prometheus(render_prometheus(reg))}
        assert samples["empty_min"] == math.inf
        assert math.isnan(samples["unset"])

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""
        assert parse_prometheus("") == []

    @pytest.mark.parametrize("bad", [
        "no spaces or value",
        'name{unclosed="x" 1',
        'name{bad-key="x"} 1',
        "name notanumber",
        "# TYPE name wrongkind",
        "# TYPE name counter\n# TYPE name counter\nname 1",
    ])
    def test_parser_rejects_junk(self, bad):
        with pytest.raises(DomainError):
            parse_prometheus(bad)

    def test_parser_error_is_a_valueerror(self):
        with pytest.raises(ValueError):
            parse_prometheus("???")


class TestRoundTripEdgeCases:
    """Satellite coverage: escaping, +Inf buckets, empty render."""

    @pytest.mark.parametrize("value", [
        "\n",                # bare newline
        '"',                 # bare double quote
        "\\",                # bare backslash
        "ends with \\",      # trailing backslash (escape must not eat the quote)
        "\\n",               # literal backslash-n, not a newline
        'mix "of\n every\\thing"',
        "",                  # empty label value round-trips as empty
    ])
    def test_label_value_escaping_round_trips(self, value):
        reg = MetricsRegistry()
        reg.counter("edge_total", {"path": value}).inc()
        (sample,) = parse_prometheus(render_prometheus(reg))
        assert sample["labels"]["path"] == value

    def test_distinct_escaped_values_stay_distinct(self):
        # "\\n" (backslash + n) and "\n" (newline) must not collapse
        # into one series through the escape/unescape cycle.
        reg = MetricsRegistry()
        reg.counter("edge_total", {"path": "\\n"}).inc(1)
        reg.counter("edge_total", {"path": "\n"}).inc(2)
        samples = parse_prometheus(render_prometheus(reg))
        assert {s["labels"]["path"]: s["value"] for s in samples} == \
            {"\\n": 1.0, "\n": 2.0}

    def test_histogram_inf_bucket_is_cumulative_count(self):
        reg = MetricsRegistry()
        h = reg.histogram("latency")
        # One observation beyond the largest finite bound lands only in
        # the +Inf bucket; the closing bucket still equals the count.
        h.observe(float(HISTOGRAM_BUCKET_BOUNDS[-1]) * 10.0)
        h.observe(0.5)
        samples = parse_prometheus(render_prometheus(reg))
        buckets = [s for s in samples if s["name"] == "latency_bucket"]
        assert buckets[-1]["labels"]["le"] == "+Inf"
        assert buckets[-1]["value"] == 2.0
        # The largest finite bound has seen only the in-range point.
        assert buckets[-2]["value"] == 1.0
        # Cumulative: monotone non-decreasing across the bucket ladder.
        values = [s["value"] for s in buckets]
        assert values == sorted(values)
        (count,) = [s for s in samples if s["name"] == "latency_count"]
        assert count["value"] == 2.0

    def test_empty_histogram_renders_parseable_zero_buckets(self):
        reg = MetricsRegistry()
        reg.histogram("untouched")
        samples = parse_prometheus(render_prometheus(reg))
        by_name = {}
        for s in samples:
            by_name.setdefault(s["name"], []).append(s)
        assert by_name["untouched_count"][0]["value"] == 0.0
        assert all(s["value"] == 0.0 for s in by_name["untouched_bucket"])

    def test_empty_registry_render_is_empty_and_reparses(self):
        text = render_prometheus(MetricsRegistry())
        assert text == ""
        assert parse_prometheus(text) == []


class TestRecordsRoundTrip:
    def test_jsonl_metric_records_rebuild_the_registry(self, tmp_path):
        obs.enable()
        obs.inc("events_total", 5.0, labels={"kind": "hit"})
        obs.observe("sizes", 123.0)
        obs.disable()
        out = tmp_path / "trace.jsonl"
        obs.export_jsonl(out)
        records = [json.loads(line) for line in out.read_text().splitlines()]
        reg = registry_from_records(records)
        assert reg.counters['events_total{kind="hit"}'].value == 5.0
        assert reg.histograms["sizes"].count == 1
        parse_prometheus(render_prometheus(reg))

    def test_legacy_dotted_names_rebuild_as_canonical(self):
        # Compat shim: JSONL exports written before the OBS003 rename
        # feed the current snake_case series on the read path.
        records = [
            {"type": "metric", "kind": "counter",
             "name": "robust.quarantine.rows", "value": 4.0},
            {"type": "metric", "kind": "histogram",
             "name": "optimize.sweep.grid_points", "count": 2,
             "sum": 10.0},
            {"type": "metric", "kind": "gauge",
             "name": "optimize.optimal_sd.iterations", "value": 31.0},
        ]
        reg = registry_from_records(records)
        assert reg.counters["robust_quarantine_rows_total"].value == 4.0
        assert reg.histograms["optimize_sweep_grid_points"].count == 2
        assert reg.gauges["optimize_optimal_sd_iterations"].value == 31.0
        # Current names pass through untouched.
        assert "robust.quarantine.rows" not in reg.counters


class TestOtlp:
    def test_span_tree_exports_with_ids_and_attrs(self):
        obs.enable()
        with obs.span("outer", equation="4"):
            with obs.span("inner", points=100, exact=True):
                pass
        obs.disable()
        doc = spans_to_otlp()
        scope = doc["resourceSpans"][0]["scopeSpans"][0]
        spans = {s["name"]: s for s in scope["spans"]}
        assert len(spans["outer"]["spanId"]) == 16
        assert len(spans["outer"]["traceId"]) == 32
        assert spans["inner"]["traceId"] == spans["outer"]["traceId"]
        assert spans["inner"]["parentSpanId"] == spans["outer"]["spanId"]
        attrs = {a["key"]: a["value"] for a in spans["inner"]["attributes"]}
        assert attrs["points"] == {"intValue": "100"}
        assert attrs["exact"] == {"boolValue": True}
        assert int(spans["outer"]["endTimeUnixNano"]) >= \
            int(spans["outer"]["startTimeUnixNano"])


class TestEndpoint:
    def _get(self, url: str) -> tuple[int, bytes]:
        with urllib.request.urlopen(url, timeout=5) as resp:
            return resp.status, resp.read()

    def test_serves_live_metrics_and_health(self):
        obs.enable()
        obs.inc("served_total", 2.0, labels={"route": "metrics"})
        with start_metrics_endpoint() as endpoint:
            assert endpoint.port > 0
            status, body = self._get(endpoint.url + "/metrics")
            assert status == 200
            samples = {s["name"]: s for s in
                       parse_prometheus(body.decode())}
            assert samples["served_total"]["value"] == 2.0
            # Live, not a snapshot: a later inc shows on the next scrape.
            obs.inc("served_total", 1.0, labels={"route": "metrics"})
            _, body = self._get(endpoint.url + "/metrics")
            samples = {s["name"]: s for s in
                       parse_prometheus(body.decode())}
            assert samples["served_total"]["value"] == 3.0
            status, body = self._get(endpoint.url + "/healthz")
            assert status == 200
            assert json.loads(body)["status"] == "ok"

    def test_unknown_route_is_404(self):
        with start_metrics_endpoint() as endpoint:
            with pytest.raises(urllib.error.HTTPError) as err:
                self._get(endpoint.url + "/nope")
            assert err.value.code == 404

    def test_healthz_reports_provenance_contract(self):
        from repro.bench.schema import SCHEMA_ID as BENCH_SCHEMA_ID
        from repro.obs.history import HISTORY_SCHEMA_ID
        with start_metrics_endpoint() as endpoint:
            status, body = self._get(endpoint.url + "/healthz")
        assert status == 200
        payload = json.loads(body)
        assert payload["status"] == "ok"
        assert payload["git_sha"]  # "unknown" outside git, never empty
        assert payload["schemas"] == {
            "history": HISTORY_SCHEMA_ID,
            "bench": BENCH_SCHEMA_ID,
            "prometheus_text": "0.0.4",
        }
        assert payload["uptime_s"] >= 0.0


class TestSnapshot:
    def test_bundle_files_and_content(self, tmp_path):
        obs.enable()
        with obs.span("snap.outer"):
            obs.inc("snap_total")
        obs.disable()
        paths = write_snapshot(tmp_path / "bundle")
        assert sorted(p.name for p in paths.values()) == \
            ["metrics.prom", "provenance.json", "spans.otlp.json"]
        samples = parse_prometheus(paths["metrics"].read_text())
        assert any(s["name"] == "snap_total" for s in samples)
        otlp = json.loads(paths["spans"].read_text())
        names = [s["name"] for s in
                 otlp["resourceSpans"][0]["scopeSpans"][0]["spans"]]
        assert "snap.outer" in names
        assert "records" in json.loads(paths["provenance"].read_text())
