"""Unit-conversion tests."""

import math

import numpy as np
import pytest

from repro import units
from repro.errors import UnitError


class TestScalarConversions:
    def test_um_to_cm(self):
        assert units.um_to_cm(10_000) == pytest.approx(1.0)

    def test_cm_to_um(self):
        assert units.cm_to_um(1.0) == pytest.approx(10_000.0)

    def test_nm_to_cm(self):
        assert units.nm_to_cm(1.0e7) == pytest.approx(1.0)

    def test_cm_to_nm(self):
        assert units.cm_to_nm(1.0) == pytest.approx(1.0e7)

    def test_nm_to_um(self):
        assert units.nm_to_um(180.0) == pytest.approx(0.18)

    def test_um_to_nm(self):
        assert units.um_to_nm(0.18) == pytest.approx(180.0)

    def test_mm_to_cm(self):
        assert units.mm_to_cm(200.0) == pytest.approx(20.0)

    def test_cm_to_mm(self):
        assert units.cm_to_mm(20.0) == pytest.approx(200.0)

    def test_mm2_to_cm2(self):
        assert units.mm2_to_cm2(294.0) == pytest.approx(2.94)

    def test_cm2_to_mm2(self):
        assert units.cm2_to_mm2(2.94) == pytest.approx(294.0)

    def test_paper_feature_size_squared(self):
        # The paper's central λ² term: 0.18 µm → 3.24e-10 cm².
        lam_cm = units.um_to_cm(0.18)
        assert lam_cm**2 == pytest.approx(3.24e-10)


class TestRoundTrips:
    @pytest.mark.parametrize("value", [0.13, 0.18, 0.25, 0.35, 0.5, 0.8, 1.5])
    def test_um_cm_round_trip(self, value):
        assert units.cm_to_um(units.um_to_cm(value)) == pytest.approx(value)

    @pytest.mark.parametrize("value", [35.0, 70.0, 130.0, 180.0])
    def test_nm_um_round_trip(self, value):
        assert units.um_to_nm(units.nm_to_um(value)) == pytest.approx(value)


class TestArrayConversions:
    def test_array_in_array_out(self):
        out = units.um_to_cm(np.array([0.18, 0.25]))
        assert isinstance(out, np.ndarray)
        np.testing.assert_allclose(out, [1.8e-5, 2.5e-5])

    def test_scalar_stays_scalar(self):
        assert isinstance(units.um_to_cm(0.18), float)

    def test_shape_preserved(self):
        out = units.nm_to_cm(np.ones((2, 3)))
        assert out.shape == (2, 3)


class TestLengthToCm:
    @pytest.mark.parametrize(
        "value,unit,expected",
        [
            (1.0, "cm", 1.0),
            (10.0, "mm", 1.0),
            (10_000.0, "um", 1.0),
            (10_000.0, "µm", 1.0),
            (10_000.0, "micron", 1.0),
            (1.0e7, "nm", 1.0),
        ],
    )
    def test_known_units(self, value, unit, expected):
        assert units.length_to_cm(value, unit) == pytest.approx(expected)

    def test_case_insensitive(self):
        assert units.length_to_cm(1.0, "CM") == pytest.approx(1.0)

    def test_whitespace_tolerant(self):
        assert units.length_to_cm(1.0, " mm ") == pytest.approx(0.1)

    def test_unknown_unit_raises(self):
        with pytest.raises(UnitError, match="unknown length unit"):
            units.length_to_cm(1.0, "furlong")

    def test_non_string_unit_raises(self):
        with pytest.raises(UnitError):
            units.length_to_cm(1.0, None)

    def test_array_input(self):
        out = units.length_to_cm(np.array([1.0, 2.0]), "mm")
        np.testing.assert_allclose(out, [0.1, 0.2])


class TestMoney:
    def test_dollars_identity(self):
        assert units.dollars(34) == 34.0
        assert isinstance(units.dollars(34), float)

    def test_megadollars(self):
        assert units.megadollars(1.5) == pytest.approx(1.5e6)
