"""Optimal-s_d solver tests (§3.1)."""

import numpy as np
import pytest

from repro.cost import DEFAULT_GENERALIZED_MODEL, PAPER_FIGURE4_MODEL, TotalCostModel
from repro.cost.design import DesignCostModel
from repro.errors import DomainError
from repro.optimize import (
    optimal_sd,
    optimal_sd_condition,
    optimal_sd_generalized,
    optimum_vs_volume,
    sd_sweep,
)

FIG4A = dict(n_transistors=1e7, feature_um=0.18, n_wafers=5000,
             yield_fraction=0.4, cost_per_cm2=8.0)
FIG4B = dict(n_transistors=1e7, feature_um=0.18, n_wafers=50_000,
             yield_fraction=0.9, cost_per_cm2=8.0)


class TestOptimalSd:
    def test_matches_dense_sweep(self):
        res = optimal_sd(PAPER_FIGURE4_MODEL, **FIG4A)
        sweep = sd_sweep(PAPER_FIGURE4_MODEL, **FIG4A,
                         sd_values=np.linspace(105, 1500, 20_000))
        assert res.sd_opt == pytest.approx(sweep.x_opt, rel=2e-3)
        assert res.cost_opt <= sweep.cost_opt * (1 + 1e-9)

    def test_satisfies_first_order_condition(self):
        res = optimal_sd(PAPER_FIGURE4_MODEL, **FIG4A)
        residual = optimal_sd_condition(PAPER_FIGURE4_MODEL, res.sd_opt, **FIG4A)
        # The residual is in $/cm^2; compare against the 8 $/cm^2 scale.
        assert abs(residual) < 1e-4

    def test_condition_sign_structure(self):
        res = optimal_sd(PAPER_FIGURE4_MODEL, **FIG4A)
        below = optimal_sd_condition(PAPER_FIGURE4_MODEL, res.sd_opt * 0.7, **FIG4A)
        above = optimal_sd_condition(PAPER_FIGURE4_MODEL, res.sd_opt * 1.3, **FIG4A)
        assert below < 0 < above

    def test_paper_volume_contrast(self):
        # Figure 4's headline: the optimum moves substantially with
        # volume/yield — low volume pushes towards sparser design.
        a = optimal_sd(PAPER_FIGURE4_MODEL, **FIG4A)
        b = optimal_sd(PAPER_FIGURE4_MODEL, **FIG4B)
        assert a.sd_opt > 1.5 * b.sd_opt
        assert a.cost_opt > b.cost_opt

    def test_bracket_recorded(self):
        res = optimal_sd(PAPER_FIGURE4_MODEL, **FIG4A)
        lo, hi = res.bracket
        assert lo < res.sd_opt < hi

    def test_clipped_optimum_raises(self):
        # An absurdly expensive design regime pushes the optimum past
        # any finite bracket.
        expensive = TotalCostModel(design_model=DesignCostModel(a0=1e12),
                                   include_masks=False)
        with pytest.raises(DomainError, match="clipped"):
            optimal_sd(expensive, sd_max=2000.0, **FIG4A)

    def test_invalid_bracket_raises(self):
        with pytest.raises(DomainError):
            optimal_sd(PAPER_FIGURE4_MODEL, sd_max=50.0, **FIG4A)


class TestOptimalSdGeneralized:
    def test_interior_optimum(self):
        res = optimal_sd_generalized(DEFAULT_GENERALIZED_MODEL, 1e7, 0.18, 5000)
        assert 100 < res.sd_opt < 5000

    def test_volume_moves_optimum_down(self):
        lo = optimal_sd_generalized(DEFAULT_GENERALIZED_MODEL, 1e7, 0.18, 2000)
        hi = optimal_sd_generalized(DEFAULT_GENERALIZED_MODEL, 1e7, 0.18, 500_000)
        assert hi.sd_opt < lo.sd_opt


class TestOptimumVsVolume:
    def test_monotone_fall_with_volume(self):
        trace = optimum_vs_volume(PAPER_FIGURE4_MODEL, 1e7, 0.18, 0.8, 8.0,
                                  n_wafers_values=np.geomspace(1e3, 1e6, 7))
        sds = [res.sd_opt for _, res in trace]
        assert all(a > b for a, b in zip(sds, sds[1:]))

    def test_limits_towards_bound(self):
        trace = optimum_vs_volume(PAPER_FIGURE4_MODEL, 1e7, 0.18, 0.8, 8.0,
                                  n_wafers_values=[1e8])
        assert trace[0][1].sd_opt < 130  # near sd0 at extreme volume

    def test_costs_fall_with_volume(self):
        trace = optimum_vs_volume(PAPER_FIGURE4_MODEL, 1e7, 0.18, 0.8, 8.0,
                                  n_wafers_values=np.geomspace(1e3, 1e6, 5))
        costs = [res.cost_opt for _, res in trace]
        assert all(a > b for a, b in zip(costs, costs[1:]))
