"""Sensitivity and Pareto analysis tests."""

import pytest

from repro.cost import PAPER_FIGURE4_MODEL
from repro.errors import DomainError
from repro.optimize import (
    evaluate_points,
    knee_point,
    parameter_elasticities,
    pareto_front,
    tornado,
)

POINT = dict(n_transistors=1e7, feature_um=0.18, n_wafers=5000,
             yield_fraction=0.4, cost_per_cm2=8.0)


class TestElasticities:
    @pytest.fixture(scope="class")
    def elas(self):
        return parameter_elasticities(
            PAPER_FIGURE4_MODEL, POINT,
            parameters=["n_wafers", "cost_per_cm2", "a0", "n_transistors"])

    def test_volume_elasticity_negative(self, elas):
        # More volume -> denser optimum.
        assert elas["n_wafers"] < 0

    def test_design_amplitude_elasticity_positive(self, elas):
        # Costlier design -> sparser optimum.
        assert elas["a0"] > 0

    def test_cost_per_cm2_elasticity_negative(self, elas):
        # Costlier silicon -> denser optimum.
        assert elas["cost_per_cm2"] < 0

    def test_a0_and_volume_mirror(self, elas):
        # a0 and 1/N_w enter eq.(5) identically -> equal-magnitude,
        # opposite-sign elasticities.
        assert elas["a0"] == pytest.approx(-elas["n_wafers"], rel=0.05)

    def test_unknown_parameter_raises(self):
        with pytest.raises(DomainError, match="unknown parameter"):
            parameter_elasticities(PAPER_FIGURE4_MODEL, POINT, parameters=["bogus"])


class TestTornado:
    def test_sorted_by_cost_swing(self):
        entries = tornado(PAPER_FIGURE4_MODEL, POINT, {
            "n_wafers": (2000, 20_000),
            "yield_fraction": (0.3, 0.9),
            "p2": (1.0, 1.4),
        })
        swings = [e.cost_swing for e in entries]
        assert swings == sorted(swings, reverse=True)

    def test_entries_carry_both_excursions(self):
        entries = tornado(PAPER_FIGURE4_MODEL, POINT, {"n_wafers": (2000, 20_000)})
        e = entries[0]
        assert e.sd_opt_low > e.sd_opt_high  # more volume -> denser
        assert e.cost_opt_low > e.cost_opt_high

    def test_invalid_excursion_raises(self):
        with pytest.raises(DomainError, match="low < high"):
            tornado(PAPER_FIGURE4_MODEL, POINT, {"n_wafers": (20_000, 2000)})


class TestPareto:
    @pytest.fixture(scope="class")
    def points(self):
        return evaluate_points(PAPER_FIGURE4_MODEL, **POINT)

    def test_points_cover_grid(self, points):
        assert len(points) == 200

    def test_front_nonempty_subset(self, points):
        front = pareto_front(points)
        assert 0 < len(front) <= len(points)

    def test_front_sorted_by_sd(self, points):
        front = pareto_front(points)
        sds = [p.sd for p in front]
        assert sds == sorted(sds)

    def test_no_front_point_dominated(self, points):
        front = pareto_front(points)
        for a in front:
            for b in front:
                if a is b:
                    continue
                dominates = (all(x <= y for x, y in zip(b.objectives(), a.objectives()))
                             and any(x < y for x, y in zip(b.objectives(), a.objectives())))
                assert not dominates

    def test_front_contains_cost_minimum(self, points):
        # The transistor-cost minimiser is never dominated.
        best = min(points, key=lambda p: p.transistor_cost_usd)
        front = pareto_front(points)
        assert any(p.sd == best.sd for p in front)

    def test_trade_off_structure(self, points):
        # Along the front, die area rises while design cost falls.
        front = pareto_front(points)
        if len(front) >= 2:
            assert front[0].die_area_cm2 < front[-1].die_area_cm2
            assert front[0].design_cost_usd > front[-1].design_cost_usd

    def test_knee_point_member_of_front(self, points):
        front = pareto_front(points)
        knee = knee_point(front)
        assert knee in front

    def test_knee_of_single_point_front(self, points):
        single = [points[0]]
        assert knee_point(single) is points[0]

    def test_empty_inputs_raise(self):
        with pytest.raises(DomainError):
            pareto_front([])
        with pytest.raises(DomainError):
            knee_point([])
