"""Deprecated-keyword shims: old spellings work, warn once, and lint.

The API normalisation renamed ``cm_sq`` → ``cost_per_cm2`` and
``die_area_cm2`` → ``area_cm2``. :func:`repro._compat.renamed_kwargs`
must keep the old spellings working with a ``DeprecationWarning`` fired
exactly once per call site, reject ambiguous calls, and the ``API005``
lint rule must flag any in-tree use of the old names.
"""

import textwrap
import warnings

import pytest

from repro._compat import (
    DEPRECATED_KWARG_ALIASES,
    renamed_kwargs,
    reset_warning_registry,
)
from repro.cost import PAPER_FIGURE4_MODEL
from repro.errors import DomainError
from repro.lint.config import LintConfig
from repro.lint.passes.api_parity import ApiParityPass
from repro.lint.project import load_project
from repro.yieldmodels import CriticalAreaModel

FIG4_ARGS = dict(sd=300.0, n_transistors=1e7, feature_um=0.18,
                 n_wafers=5_000, yield_fraction=0.4)


@pytest.fixture(autouse=True)
def _fresh_registry():
    reset_warning_registry()
    yield
    reset_warning_registry()


def _deprecations(caught):
    return [w for w in caught if issubclass(w.category, DeprecationWarning)]


class TestRenamedKwargs:
    def test_alias_forwards_the_value(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            old = PAPER_FIGURE4_MODEL.transistor_cost(cm_sq=8.0, **FIG4_ARGS)
        new = PAPER_FIGURE4_MODEL.transistor_cost(cost_per_cm2=8.0,
                                                  **FIG4_ARGS)
        assert old == new

    def test_warns_once_per_call_site(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            for _ in range(5):  # same file/line: one warning total
                PAPER_FIGURE4_MODEL.transistor_cost(cm_sq=8.0, **FIG4_ARGS)
        assert len(_deprecations(caught)) == 1
        message = str(_deprecations(caught)[0].message)
        assert "'cm_sq' is deprecated" in message
        assert "'cost_per_cm2'" in message

    def test_second_call_site_warns_again(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            PAPER_FIGURE4_MODEL.transistor_cost(cm_sq=8.0, **FIG4_ARGS)
            PAPER_FIGURE4_MODEL.transistor_cost(cm_sq=8.0, **FIG4_ARGS)
        assert len(_deprecations(caught)) == 2

    def test_reset_rearms_the_warning(self):
        def call():
            PAPER_FIGURE4_MODEL.transistor_cost(cm_sq=8.0, **FIG4_ARGS)

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            call()
            call()
            reset_warning_registry()
            call()
        assert len(_deprecations(caught)) == 2

    def test_both_spellings_is_a_hard_error(self):
        with pytest.raises(DomainError, match="both 'cm_sq'"):
            PAPER_FIGURE4_MODEL.transistor_cost(cm_sq=8.0, cost_per_cm2=8.0,
                                                **FIG4_ARGS)

    def test_canonical_spelling_never_warns(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            PAPER_FIGURE4_MODEL.transistor_cost(cost_per_cm2=8.0, **FIG4_ARGS)
        assert not _deprecations(caught)

    def test_die_area_alias_on_critical_area(self):
        model = CriticalAreaModel()
        with pytest.warns(DeprecationWarning, match="die_area_cm2"):
            old = model.critical_area_cm2(die_area_cm2=1.0, sd=300.0)
        assert old == model.critical_area_cm2(area_cm2=1.0, sd=300.0)

    def test_self_alias_rejected_at_decoration_time(self):
        with pytest.raises(DomainError, match="maps to itself"):
            renamed_kwargs(x="x")

    def test_alias_table_covers_the_shipped_renames(self):
        assert DEPRECATED_KWARG_ALIASES == {"cm_sq": "cost_per_cm2",
                                            "die_area_cm2": "area_cm2"}

    def test_scenario_replace_honours_the_alias(self):
        # Regression: Scenario.replace() took **overrides verbatim, so
        # the deprecated spelling silently became an unknown field
        # instead of routing through the rename shim.
        from repro.api import Scenario

        scenario = Scenario(n_transistors=1e7, feature_um=0.18)
        with pytest.warns(DeprecationWarning, match="'cm_sq' is deprecated"):
            replaced = scenario.replace(cm_sq=9.0)
        assert replaced.cost_per_cm2 == 9.0
        assert replaced == scenario.replace(cost_per_cm2=9.0)

    def test_scenario_replace_rejects_both_spellings(self):
        from repro.api import Scenario

        scenario = Scenario(n_transistors=1e7, feature_um=0.18)
        with pytest.raises(DomainError, match="both 'cm_sq'"):
            scenario.replace(cm_sq=9.0, cost_per_cm2=9.0)


_SHIMMED_SOURCE = textwrap.dedent('''\
    """Synthetic module for the API005 rule."""

    from repro._compat import renamed_kwargs

    __all__ = ["price", "caller"]


    @renamed_kwargs(cm_sq="cost_per_cm2")
    def price(cost_per_cm2):
        """Pass-through."""
        return cost_per_cm2


    def caller():
        """Uses the {keyword} spelling."""
        return price({keyword}=8.0)
''')


def _api005_findings(tree_root):
    project = load_project(tree_root, repo_root=tree_root)
    findings = ApiParityPass().run(project, LintConfig())
    return [f for f in findings if f.rule == "API005"]


class TestApi005:
    def test_flags_deprecated_spelling(self, tmp_path):
        (tmp_path / "mod.py").write_text(
            _SHIMMED_SOURCE.format(keyword="cm_sq"))
        findings = _api005_findings(tmp_path)
        assert len(findings) == 1
        finding = findings[0]
        assert "deprecated keyword 'cm_sq'" in finding.message
        assert finding.suggestion == "use 'cost_per_cm2'"
        assert finding.path == "mod.py"

    def test_canonical_spelling_is_clean(self, tmp_path):
        (tmp_path / "mod.py").write_text(
            _SHIMMED_SOURCE.format(keyword="cost_per_cm2"))
        assert _api005_findings(tmp_path) == []

    def test_alias_keyword_to_unshimmed_function_is_clean(self, tmp_path):
        # ``die_area_cm2`` as a record-constructor field must not fire:
        # only calls to functions actually wearing the shim are flagged.
        (tmp_path / "mod.py").write_text(textwrap.dedent('''\
            """Synthetic module: alias-looking field on a plain record."""

            __all__ = ["Record", "build"]


            class Record:
                """Record whose field happens to share the old spelling."""

                def __init__(self, die_area_cm2):
                    self.die_area_cm2 = die_area_cm2


            def build():
                """Constructs the record."""
                return Record(die_area_cm2=1.0)
        '''))
        assert _api005_findings(tmp_path) == []

    def test_real_tree_is_clean(self):
        from pathlib import Path

        src = Path(__file__).resolve().parent.parent / "src" / "repro"
        assert _api005_findings(src) == []
