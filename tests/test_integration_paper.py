"""End-to-end integration tests: the paper's figures as executable claims.

Each test regenerates one paper artifact through the public API (the
same code paths the benchmarks use) and asserts its *shape* — the
reproduction contract of DESIGN.md §7.
"""

import numpy as np
import pytest

from repro.cost import PAPER_FIGURE4_MODEL, DEFAULT_GENERALIZED_MODEL
from repro.data import DesignRegistry, load_itrs_1999
from repro.density import sd_vs_feature_fit, vendor_density_advantage
from repro.optimize import optimal_sd, sd_sweep
from repro.report import Series
from repro.roadmap import constant_cost_series, feasibility_report


@pytest.fixture(scope="module")
def registry():
    return DesignRegistry.table_a1()


@pytest.fixture(scope="module")
def itrs():
    return load_itrs_1999()


class TestFigure1:
    """Industrial s_d: wide range, rising trend, vendor strategy."""

    def test_range_matches_paper(self, registry):
        sd = registry.sd_logic_values()
        assert 90 < min(sd) < 130
        assert 650 < max(sd) < 850
        mem = registry.sd_mem_values()
        assert 30 < min(mem) < 60

    def test_rising_trend(self, registry):
        fit = sd_vs_feature_fit(registry)
        assert fit.slope < -0.2  # clearly negative exponent vs lambda

    def test_two_fold_increase_claim(self, registry):
        # §2.2.2: "two or more fold increase of s_d" across the era.
        fit = sd_vs_feature_fit(registry)
        assert fit.predict(0.18) / fit.predict(0.8) > 1.5

    def test_amd_strategy_flips_at_k7(self, registry):
        # Pre-K7 AMD denser than Intel; the K7 itself is sparser than
        # Intel's node-matched parts.
        pre = registry.filter(lambda r: not (r.vendor == "AMD" and "K7" in r.device))
        matches = vendor_density_advantage(pre, "AMD", "Intel")
        assert np.median([m[2] for m in matches]) < 1
        k7 = registry.by_device("K7")
        assert k7.best_sd_logic() > 300


class TestFigure2:
    """Roadmap-implied s_d falls with lambda."""

    def test_monotone_fall(self, itrs):
        series = Series.from_arrays(
            "fig2", [n.feature_um for n in itrs], [n.implied_sd() for n in itrs])
        # In x order (lambda ascending) the implied s_d rises — i.e. it
        # falls as lambda shrinks through the roadmap.
        assert series.is_increasing()

    def test_opposite_of_industry(self, registry, itrs):
        industry = sd_vs_feature_fit(registry)
        implied = [n.implied_sd() for n in itrs]
        # Industry: s_d UP as lambda down. Roadmap: s_d DOWN as lambda down.
        assert industry.slope < 0
        assert implied[0] > implied[-1]


class TestFigure3:
    """The cost contradiction: implied/constant-cost ratio grows past 1."""

    def test_ratio_series(self, itrs):
        series = constant_cost_series(itrs)
        ratios = [p.ratio for p in series]
        assert ratios[0] == pytest.approx(1.0, abs=0.15)
        assert all(a < b for a, b in zip(ratios, ratios[1:]))
        assert ratios[-1] > 1.5

    def test_affordable_area_constant(self, itrs):
        series = constant_cost_series(itrs)
        areas = [p.sd_constant_cost * p.node.mpu_transistors_m * 1e6
                 * p.node.feature_cm**2 for p in series]
        assert max(areas) == pytest.approx(min(areas), rel=1e-9)
        assert areas[0] == pytest.approx(3.4, rel=1e-9)


class TestFigure4:
    """U-curves and the volume-dependent optimum."""

    FIG4A = dict(n_transistors=1e7, feature_um=0.18, n_wafers=5000,
                 yield_fraction=0.4, cost_per_cm2=8.0)
    FIG4B = dict(n_transistors=1e7, feature_um=0.18, n_wafers=50_000,
                 yield_fraction=0.9, cost_per_cm2=8.0)

    def test_both_scenarios_u_shaped(self):
        for point in (self.FIG4A, self.FIG4B):
            sweep = sd_sweep(PAPER_FIGURE4_MODEL, **point)
            assert sweep.is_interior_minimum()
            # Costs rise on both sides of the optimum.
            assert sweep.cost[0] > sweep.cost_opt
            assert sweep.cost[-1] > sweep.cost_opt

    def test_optimum_location_substantially_volume_dependent(self):
        a = optimal_sd(PAPER_FIGURE4_MODEL, **self.FIG4A)
        b = optimal_sd(PAPER_FIGURE4_MODEL, **self.FIG4B)
        # The paper's claim: "the location of the optimum s_d changes
        # substantially with the volume and yield".
        assert a.sd_opt / b.sd_opt > 1.5
        # And the low-volume scenario is the costlier one overall.
        assert a.cost_opt > 3 * b.cost_opt

    def test_neither_extreme_is_optimal(self):
        # §3.1's conclusion: neither the smallest die (s_d -> s_d0) nor
        # the sparsest design minimises cost.
        a = optimal_sd(PAPER_FIGURE4_MODEL, **self.FIG4A)
        assert 150 < a.sd_opt < 1000

    def test_generalized_model_preserves_conclusion(self):
        lo = DEFAULT_GENERALIZED_MODEL
        a = sd_sweep(PAPER_FIGURE4_MODEL, **self.FIG4A)
        from repro.optimize import sd_sweep_generalized
        g = sd_sweep_generalized(lo, 1e7, 0.18, 5000)
        assert g.is_interior_minimum()


class TestFeasibilityNarrative:
    """The paper's overall argument assembled: trends must change."""

    def test_gap_grows_past_any_fixed_factor(self, registry, itrs):
        report = feasibility_report(registry, itrs)
        assert report[0].gap_vs_constant_cost < 1.0  # fine in 1999
        assert report[-1].gap_vs_constant_cost > 3.0  # broken by 2014

    def test_constant_cost_needs_sub_custom_density_at_horizon(self, itrs):
        series = constant_cost_series(itrs)
        # By 2014 holding cost requires s_d below the full-custom bound
        # (~100) — impossible under eq. (6); hence "design for cost" and
        # regular, precharacterised structures (§3.2).
        assert series[-1].sd_constant_cost < 100
