"""Iteration-cost model and Monte-Carlo simulator tests."""

import numpy as np
import pytest

from repro.designflow import DesignFlowSimulator, IterationCostModel, TimingClosureModel
from repro.errors import DomainError


class TestIterationCostModel:
    def test_weeks_scale_sublinearly(self):
        m = IterationCostModel(size_exponent=0.75)
        assert m.weeks_per_pass(1e8) == pytest.approx(
            m.weeks_per_pass(1e7) * 10**0.75)

    def test_reference_weeks(self):
        m = IterationCostModel()
        assert m.weeks_per_pass(1e7) == pytest.approx(6.0)

    def test_cost_per_pass_components(self):
        m = IterationCostModel(team_rate_usd_per_week=100_000.0,
                               weeks_at_reference=5.0,
                               compute_usd_per_pass=25_000.0)
        assert m.cost_per_pass(1e7) == pytest.approx(525_000.0)

    def test_expected_cost_scales_with_iterations(self):
        m = IterationCostModel(silicon_fraction=0.0)
        assert m.expected_cost(1e7, 4.0) == pytest.approx(2 * m.expected_cost(1e7, 2.0))

    def test_respins_add_mask_cost(self):
        m = IterationCostModel(silicon_fraction=0.5, mask_set_usd=1e6)
        no_respin = IterationCostModel(silicon_fraction=1e-300, mask_set_usd=1e6)
        extra = m.expected_cost(1e7, 3.0) - no_respin.expected_cost(1e7, 3.0)
        assert extra == pytest.approx((3 - 1) * 0.5 * 1e6, rel=1e-6)

    def test_iterations_below_one_rejected(self):
        with pytest.raises(ValueError):
            IterationCostModel().expected_cost(1e7, 0.5)


class TestSimulator:
    @pytest.fixture(scope="class")
    def sim(self):
        return DesignFlowSimulator()

    def test_project_sample_fields(self, sim):
        s = sim.simulate_project(1e7, 200, 0.18, rng=np.random.default_rng(0))
        assert s.iterations >= 1
        assert s.cost_usd > 0
        assert s.schedule_weeks > 0
        assert s.silicon_respins <= s.iterations

    def test_reproducible_with_seed(self, sim):
        a = sim.simulate_many(1e7, 200, 0.18, n_projects=10, seed=7)
        b = sim.simulate_many(1e7, 200, 0.18, n_projects=10, seed=7)
        assert [s.cost_usd for s in a] == [s.cost_usd for s in b]

    def test_monte_carlo_matches_analytic(self, sim):
        mc = sim.mean_cost(1e7, 150, 0.18, n_projects=3000, seed=11)
        analytic = sim.expected_cost_analytic(1e7, 150, 0.18)
        assert mc == pytest.approx(analytic, rel=0.1)

    def test_denser_design_costs_more(self, sim):
        cheap = sim.expected_cost_analytic(1e7, 500, 0.18)
        pricey = sim.expected_cost_analytic(1e7, 110, 0.18)
        assert pricey > 2 * cheap

    def test_finer_node_costs_more(self, sim):
        assert sim.expected_cost_analytic(1e7, 150, 0.09) > \
            sim.expected_cost_analytic(1e7, 150, 0.25)

    def test_regularity_cuts_cost(self, sim):
        assert sim.expected_cost_analytic(1e7, 150, 0.09, regularity=1.0) < \
            sim.expected_cost_analytic(1e7, 150, 0.09, regularity=0.0)

    def test_iteration_cap_enforced(self):
        # A hopeless design point cannot loop forever.
        hopeless = DesignFlowSimulator(
            closure=TimingClosureModel(floor_probability=1e-3),
            max_iterations=50,
        )
        s = hopeless.simulate_project(1e7, 100.0001, 0.05,
                                      rng=np.random.default_rng(1))
        assert s.iterations <= 50

    def test_analytic_raises_beyond_cap(self):
        tight = DesignFlowSimulator(max_iterations=5)
        with pytest.raises(DomainError, match="exceeds the cap"):
            tight.expected_cost_analytic(1e7, 100.01, 0.05)

    def test_sample_grid_size(self, sim):
        samples = sim.sample_grid([1e6, 1e7], [150, 300], 0.18, n_projects=3)
        assert len(samples) == 2 * 2 * 3

    def test_schedule_tracks_iterations(self, sim):
        s = sim.simulate_project(1e7, 150, 0.18, rng=np.random.default_rng(5))
        assert s.schedule_weeks == pytest.approx(
            s.iterations * sim.iteration_cost.weeks_per_pass(1e7))
