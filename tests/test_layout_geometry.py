"""Layout geometry primitive tests."""

import pytest

from repro.errors import LayoutError
from repro.layout import Rect, bounding_box, total_area


class TestRect:
    def test_dimensions(self):
        r = Rect("m1", 0, 0, 4, 3)
        assert r.width == 4
        assert r.height == 3
        assert r.area == 12

    def test_zero_extent_rejected(self):
        with pytest.raises(LayoutError, match="positive extent"):
            Rect("m1", 0, 0, 0, 3)

    def test_inverted_rejected(self):
        with pytest.raises(LayoutError):
            Rect("m1", 4, 0, 0, 3)

    def test_non_integer_rejected(self):
        with pytest.raises(LayoutError, match="integers"):
            Rect("m1", 0.5, 0, 4, 3)

    def test_empty_layer_rejected(self):
        with pytest.raises(LayoutError, match="layer"):
            Rect("", 0, 0, 4, 3)

    def test_translated(self):
        r = Rect("poly", 1, 2, 3, 4).translated(10, 20)
        assert (r.x0, r.y0, r.x1, r.y1) == (11, 22, 13, 24)
        assert r.layer == "poly"

    def test_hashable_and_ordered(self):
        a = Rect("m1", 0, 0, 1, 1)
        b = Rect("m1", 0, 0, 1, 1)
        assert a == b
        assert len({a, b}) == 1
        assert sorted([Rect("m2", 0, 0, 1, 1), a])[0] is a


class TestOverlaps:
    def test_same_layer_overlap(self):
        assert Rect("m1", 0, 0, 4, 4).overlaps(Rect("m1", 2, 2, 6, 6))

    def test_different_layer_no_overlap(self):
        assert not Rect("m1", 0, 0, 4, 4).overlaps(Rect("m2", 2, 2, 6, 6))

    def test_touching_edges_not_overlapping(self):
        assert not Rect("m1", 0, 0, 4, 4).overlaps(Rect("m1", 4, 0, 8, 4))

    def test_disjoint(self):
        assert not Rect("m1", 0, 0, 1, 1).overlaps(Rect("m1", 5, 5, 6, 6))


class TestContainsPoint:
    def test_inside(self):
        assert Rect("m1", 0, 0, 4, 4).contains_point(2, 2)

    def test_half_open(self):
        r = Rect("m1", 0, 0, 4, 4)
        assert r.contains_point(0, 0)
        assert not r.contains_point(4, 4)


class TestRelativeTo:
    def test_canonical_tuple(self):
        r = Rect("poly", 10, 20, 12, 24)
        assert r.relative_to(10, 20) == ("poly", 0, 0, 2, 4)


class TestCollections:
    def test_bounding_box(self):
        rects = [Rect("m1", 0, 0, 2, 2), Rect("m2", 5, -1, 7, 3)]
        assert bounding_box(rects) == (0, -1, 7, 3)

    def test_bounding_box_empty_raises(self):
        with pytest.raises(LayoutError):
            bounding_box([])

    def test_total_area_counts_drawn(self):
        rects = [Rect("m1", 0, 0, 2, 2), Rect("m1", 1, 1, 3, 3)]
        assert total_area(rects) == 8  # overlaps double-counted by design
