"""Staged-flow (absorbing Markov chain) tests."""

import numpy as np
import pytest

from repro.designflow import DEFAULT_STAGES, Stage, StagedFlowModel, TimingClosureModel
from repro.errors import DomainError
from repro.interconnect import PredictionErrorModel


class TestStageValidation:
    def test_forward_restart_rejected(self):
        bad = (Stage("a", 1.0, 0.5, 0.5, restart_stage=1),
               Stage("b", 0.0, 0.5, 0.5, restart_stage=0))
        with pytest.raises(DomainError, match="restarts forward"):
            StagedFlowModel(stages=bad)

    def test_empty_stages_rejected(self):
        with pytest.raises(DomainError):
            StagedFlowModel(stages=())

    def test_increasing_residual_rejected_at_use(self):
        bad = (Stage("a", 0.5, 0.5, 0.5, 0), Stage("b", 0.9, 0.5, 0.5, 0))
        model = StagedFlowModel(stages=bad)
        with pytest.raises(DomainError, match="increases the residual"):
            model.pass_probability(1, 200)

    def test_default_stages_consistent(self):
        model = StagedFlowModel()
        residuals = [s.residual_sigma for s in DEFAULT_STAGES]
        assert residuals == sorted(residuals, reverse=True)
        assert residuals[-1] == 0.0
        assert sum(s.cost_fraction for s in DEFAULT_STAGES) == pytest.approx(1.0)
        assert sum(s.weeks_fraction for s in DEFAULT_STAGES) == pytest.approx(1.0)


class TestPassProbabilities:
    def test_zero_resolution_stage_always_passes(self):
        # A stage that reveals nothing new cannot fail.
        stages = (Stage("a", 1.0, 0.5, 0.5, 0),   # reveals nothing (1.0 -> 1.0? no: prev=1, cur=1)
                  Stage("b", 0.0, 0.5, 0.5, 0))
        model = StagedFlowModel(stages=stages)
        assert model.pass_probability(0, 200) == 1.0

    def test_probabilities_in_unit_interval(self):
        model = StagedFlowModel()
        for i in range(len(DEFAULT_STAGES)):
            p = model.pass_probability(i, 150)
            assert 0 < p <= 1

    def test_sparser_design_passes_easier(self):
        model = StagedFlowModel()
        for i in range(len(DEFAULT_STAGES)):
            assert model.pass_probability(i, 600) >= model.pass_probability(i, 110)

    def test_bad_stage_index(self):
        with pytest.raises(DomainError):
            StagedFlowModel().pass_probability(99, 200)

    def test_margin_domain(self):
        with pytest.raises(DomainError):
            StagedFlowModel().margin(100.0)


class TestMarkovChain:
    def test_visits_at_least_one_each(self):
        result = StagedFlowModel().analyse(200)
        assert all(v >= 1.0 - 1e-12 for v in result.expected_visits)

    def test_easy_design_one_pass(self):
        result = StagedFlowModel().analyse(5000)
        assert result.expected_cost_passes == pytest.approx(1.0, rel=0.05)
        assert result.expected_weeks_passes == pytest.approx(1.0, rel=0.05)

    def test_tight_design_many_passes(self):
        tight = StagedFlowModel().analyse(105)
        easy = StagedFlowModel().analyse(1000)
        assert tight.expected_cost_passes > 3 * easy.expected_cost_passes

    def test_single_stage_recovers_single_loop_model(self):
        # One stage resolving everything == the TimingClosureModel loop.
        one = StagedFlowModel(
            stages=(Stage("flow", 0.0, 1.0, 1.0, 0),),
            sigma0=0.10,
        )
        closure = TimingClosureModel(
            prediction_error=PredictionErrorModel(sigma_at_reference=0.10),
        )
        for sd in (110, 150, 300):
            staged = one.analyse(sd).expected_cost_passes
            loop = closure.expected_iterations(sd, 0.18)
            assert staged == pytest.approx(loop, rel=1e-9)

    def test_visits_satisfy_chain_equations(self):
        # v = e0 + v Q  (expected-visits balance).
        model = StagedFlowModel()
        sd = 140.0
        result = model.analyse(sd)
        k = len(model.stages)
        probs = [model.pass_probability(i, sd) for i in range(k)]
        q = np.zeros((k, k))
        for i, stage in enumerate(model.stages):
            if i + 1 < k:
                q[i, i + 1] = probs[i]
            q[i, stage.restart_stage] += 1 - probs[i]
        v = np.array(result.expected_visits)
        balance = np.zeros(k)
        balance[0] = 1.0
        np.testing.assert_allclose(v, balance + v @ q, rtol=1e-9)

    def test_late_failures_cost_more(self):
        # Same pass probabilities, but failures at routing restart at
        # placement: expected cost exceeds a flow that restarts locally.
        local = tuple(
            Stage(s.name, s.residual_sigma, s.cost_fraction, s.weeks_fraction, i)
            for i, s in enumerate(DEFAULT_STAGES))
        looping = DEFAULT_STAGES
        sd = 130.0
        local_cost = StagedFlowModel(stages=local).analyse(sd).expected_cost_passes
        loop_cost = StagedFlowModel(stages=looping).analyse(sd).expected_cost_passes
        assert loop_cost > local_cost


class TestEarlyPredictionGain:
    def test_gain_reduces_cost(self):
        base = StagedFlowModel()
        sharp = base.with_early_prediction_gain(4.0)
        assert sharp.analyse(130).expected_cost_passes < \
            base.analyse(130).expected_cost_passes

    def test_gain_below_one_rejected(self):
        with pytest.raises(DomainError):
            StagedFlowModel().with_early_prediction_gain(0.5)

    def test_section32_lever_beats_signoff_speedup(self):
        # For a density-aggressive design, regularity (sharper sigma0)
        # cuts expected SCHEDULE far more than making the signoff stage
        # free would: the early-prediction lever is the strong one.
        base = StagedFlowModel()
        sd = 115.0
        base_weeks = base.analyse(sd).expected_weeks_passes
        sharp_weeks = base.with_early_prediction_gain(4.0).analyse(sd).expected_weeks_passes
        free_signoff = tuple(
            Stage(s.name, s.residual_sigma, s.cost_fraction,
                  1e-9 if s.name == "signoff" else s.weeks_fraction, s.restart_stage)
            for s in DEFAULT_STAGES)
        free_weeks = StagedFlowModel(stages=free_signoff).analyse(sd).expected_weeks_passes
        assert (base_weeks - sharp_weeks) > (base_weeks - free_weeks)
