"""Monte-Carlo yield simulation tests — validating the analytic models."""

import numpy as np
import pytest

from repro.errors import DomainError
from repro.wafer import WAFER_200MM, WaferSpec
from repro.yieldmodels import (
    DefectField,
    NegativeBinomialYield,
    PoissonYield,
    WaferYieldExperiment,
    simulated_yield,
)


class TestDefectField:
    def test_mean_count_matches_density(self):
        field = DefectField(density_per_cm2=0.5)
        rng = np.random.default_rng(0)
        counts = [field.sample(WAFER_200MM, rng).shape[0] for _ in range(50)]
        expected = 0.5 * WAFER_200MM.area_cm2
        assert np.mean(counts) == pytest.approx(expected, rel=0.1)

    def test_clustered_field_same_mean_density(self):
        field = DefectField(density_per_cm2=0.5, cluster_size=5.0)
        rng = np.random.default_rng(0)
        counts = [field.sample(WAFER_200MM, rng).shape[0] for _ in range(100)]
        expected = 0.5 * WAFER_200MM.area_cm2
        assert np.mean(counts) == pytest.approx(expected, rel=0.15)

    def test_clustered_field_higher_variance(self):
        rng_a = np.random.default_rng(1)
        rng_b = np.random.default_rng(1)
        uniform = DefectField(density_per_cm2=0.5)
        clustered = DefectField(density_per_cm2=0.5, cluster_size=10.0)
        var_u = np.var([uniform.sample(WAFER_200MM, rng_a).shape[0] for _ in range(100)])
        var_c = np.var([clustered.sample(WAFER_200MM, rng_b).shape[0] for _ in range(100)])
        assert var_c > 2 * var_u

    def test_points_near_wafer(self):
        field = DefectField(density_per_cm2=1.0, cluster_radius_cm=0.0)
        rng = np.random.default_rng(2)
        pts = field.sample(WAFER_200MM, rng)
        radii = np.hypot(pts[:, 0], pts[:, 1])
        assert np.all(radii <= WAFER_200MM.radius_cm + 1e-9)

    def test_cluster_size_below_one_rejected(self):
        with pytest.raises(DomainError):
            DefectField(density_per_cm2=0.5, cluster_size=0.5)


class TestExperiment:
    def test_zero_ish_density_perfect_yield(self):
        y = simulated_yield(WAFER_200MM, 1.0, 1e-6, n_wafers=3, seed=0)
        assert y == pytest.approx(1.0, abs=0.01)

    def test_converges_to_poisson_for_uniform_defects(self):
        d0, area = 0.5, 1.0
        mc = simulated_yield(WAFER_200MM, area, d0, n_wafers=40, seed=1)
        analytic = PoissonYield()(area, d0)
        assert mc == pytest.approx(analytic, abs=0.03)

    @pytest.mark.parametrize("area", [0.5, 2.0])
    def test_poisson_convergence_across_die_sizes(self, area):
        d0 = 0.4
        mc = simulated_yield(WAFER_200MM, area, d0, n_wafers=40, seed=2)
        assert mc == pytest.approx(PoissonYield()(area, d0), abs=0.04)

    def test_clustering_raises_yield(self):
        # The negative-binomial story, reproduced by direct experiment:
        # clustered defects waste kills on already-dead dice.
        d0, area = 0.6, 1.5
        uniform = simulated_yield(WAFER_200MM, area, d0, n_wafers=40, seed=3)
        clustered = simulated_yield(WAFER_200MM, area, d0, cluster_size=8.0,
                                    cluster_radius_cm=0.2, n_wafers=40, seed=3)
        assert clustered > uniform + 0.05

    def test_clustered_yield_bracketed_by_models(self):
        d0, area = 0.6, 1.5
        clustered = simulated_yield(WAFER_200MM, area, d0, cluster_size=8.0,
                                    cluster_radius_cm=0.2, n_wafers=40, seed=4)
        poisson = PoissonYield()(area, d0)
        seeds_like = NegativeBinomialYield(alpha=0.7)(area, d0)
        assert poisson < clustered < max(seeds_like, 0.999)

    def test_deterministic_with_seed(self):
        a = simulated_yield(WAFER_200MM, 1.0, 0.5, n_wafers=5, seed=7)
        b = simulated_yield(WAFER_200MM, 1.0, 0.5, n_wafers=5, seed=7)
        assert a == b

    def test_bigger_die_lower_yield(self):
        small = simulated_yield(WAFER_200MM, 0.5, 0.5, n_wafers=25, seed=5)
        big = simulated_yield(WAFER_200MM, 3.0, 0.5, n_wafers=25, seed=5)
        assert big < small

    def test_oversized_die_raises(self):
        field = DefectField(density_per_cm2=0.5)
        exp = WaferYieldExperiment(WAFER_200MM, 500.0, field)
        with pytest.raises(DomainError):
            exp.run(n_wafers=1)

    def test_run_wafer_counts_consistent(self):
        field = DefectField(density_per_cm2=0.5)
        exp = WaferYieldExperiment(WAFER_200MM, 1.0, field)
        good, total = exp.run_wafer(np.random.default_rng(0))
        assert 0 <= good <= total
        assert total > 100  # ~1 cm^2 dice on 200 mm
