"""Feasibility-gap tests — Figures 1+2+3 joined."""

import pytest

from repro.data import DesignRegistry, load_itrs_1999
from repro.roadmap import feasibility_report


@pytest.fixture(scope="module")
def report():
    return feasibility_report(DesignRegistry.table_a1(), load_itrs_1999())


class TestReport:
    def test_one_point_per_node(self, report):
        assert len(report) == 6

    def test_industrial_trend_rises_as_nodes_shrink(self, report):
        trend = [p.sd_industrial_trend for p in report]
        assert all(a < b for a, b in zip(trend, trend[1:]))

    def test_required_curves_fall(self, report):
        implied = [p.sd_roadmap_implied for p in report]
        const = [p.sd_constant_cost for p in report]
        assert all(a > b for a, b in zip(implied, implied[1:]))
        assert all(a > b for a, b in zip(const, const[1:]))

    def test_gap_widens_over_roadmap(self, report):
        gaps = [p.gap_vs_constant_cost for p in report]
        assert all(a < b for a, b in zip(gaps, gaps[1:]))

    def test_trends_cross_meaning_divergence(self, report):
        # At the 1999 anchor industry (~250-350) is BELOW the constant-
        # cost allowance (~500); by the horizon it is far above.
        assert report[0].gap_vs_constant_cost < 1
        assert report[-1].gap_vs_constant_cost > 3

    def test_die_cost_growth_equals_gap(self, report):
        p = report[-1]
        assert p.implied_die_cost_growth == pytest.approx(p.gap_vs_constant_cost)

    def test_gap_vs_roadmap_also_widens(self, report):
        gaps = [p.gap_vs_roadmap for p in report]
        assert gaps[-1] > gaps[0]
