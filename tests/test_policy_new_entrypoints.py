"""Policy threading added to node-choice and feasibility entry points.

The static-analysis pass POL001 now requires ``evaluate_nodes``,
``optimal_node`` and ``feasibility_report`` to accept and honour an
:class:`~repro.robust.policy.ErrorPolicy`; these tests pin the runtime
semantics the lint rule promises.
"""

from __future__ import annotations

import math

import pytest

from repro.cost import DEFAULT_GENERALIZED_MODEL
from repro.data.itrs1999 import load_itrs_1999
from repro.data.registry import DesignRegistry
from repro.errors import CollectedErrors, DomainError, ReproError
from repro.optimize.node_choice import evaluate_nodes, optimal_node
from repro.robust.policy import ErrorPolicy
from repro.roadmap import feasibility as feasibility_mod
from repro.roadmap.feasibility import feasibility_report

#: 0.18 µm is fine; a non-positive "node" makes the §2.4 sigma scaling
#: raise DomainError, exercising the per-node failure path.
MIXED_LADDER = (0.18, -1.0)


def test_evaluate_nodes_raise_policy_propagates():
    with pytest.raises(ReproError):
        evaluate_nodes(DEFAULT_GENERALIZED_MODEL, 1e7, 1e6,
                       nodes_um=MIXED_LADDER)


def test_evaluate_nodes_mask_drops_failing_node():
    diags: list = []
    choices = evaluate_nodes(DEFAULT_GENERALIZED_MODEL, 1e7, 1e6,
                             nodes_um=MIXED_LADDER, policy="mask",
                             diagnostics=diags)
    assert [c.feature_um for c in choices] == [0.18]
    assert len(diags) == 1
    assert diags[0].parameter == "feature_um"
    assert diags[0].value == -1.0


def test_evaluate_nodes_collect_aggregates():
    with pytest.raises(CollectedErrors) as err:
        evaluate_nodes(DEFAULT_GENERALIZED_MODEL, 1e7, 1e6,
                       nodes_um=MIXED_LADDER, policy="collect")
    assert len(err.value.diagnostics) == 1


def test_optimal_node_threads_policy_and_guards_empty():
    best = optimal_node(DEFAULT_GENERALIZED_MODEL, 1e7, 1e6,
                        nodes_um=MIXED_LADDER, policy=ErrorPolicy.MASK)
    assert best.feature_um == 0.18
    with pytest.raises(DomainError, match="no candidate node"):
        optimal_node(DEFAULT_GENERALIZED_MODEL, 1e7, 1e6,
                     nodes_um=(-1.0,), policy=ErrorPolicy.MASK)


def test_feasibility_report_mask_yields_nan_point(monkeypatch):
    nodes = list(load_itrs_1999())
    registry = DesignRegistry.table_a1()
    real = feasibility_mod.constant_cost_sd

    def failing(node, assumptions):
        if node.year == nodes[-1].year:
            raise DomainError("injected node failure")
        return real(node, assumptions)

    monkeypatch.setattr(feasibility_mod, "constant_cost_sd", failing)
    with pytest.raises(DomainError, match="injected"):
        feasibility_report(registry, nodes)
    diags: list = []
    points = feasibility_report(registry, nodes, policy="mask",
                                diagnostics=diags)
    assert len(points) == len(nodes)
    assert math.isnan(points[-1].sd_constant_cost)
    assert all(math.isfinite(p.sd_constant_cost) for p in points[:-1])
    assert len(diags) == 1 and diags[0].parameter == "year"


def test_feasibility_report_default_unchanged():
    nodes = list(load_itrs_1999())
    registry = DesignRegistry.table_a1()
    baseline = feasibility_report(registry, nodes)
    masked = feasibility_report(registry, nodes, policy=ErrorPolicy.MASK)
    assert [p.sd_constant_cost for p in baseline] == \
        [p.sd_constant_cost for p in masked]
