"""Figure-1 trend analytics tests (§2.2.2's two messages)."""

import pytest

from repro.data import DesignRegistry
from repro.density import (
    extract_points,
    sd_feature_rank_correlation,
    sd_vs_feature_fit,
    sd_vs_year_fit,
    vendor_density_advantage,
    vendor_trends,
)
from repro.errors import DomainError


@pytest.fixture(scope="module")
def reg():
    return DesignRegistry.table_a1()


class TestExtractPoints:
    def test_one_point_per_row(self, reg):
        assert len(extract_points(reg)) == 49

    def test_points_carry_metadata(self, reg):
        p = extract_points(reg)[0]
        assert p.vendor and p.device
        assert p.sd_logic > 0
        assert p.feature_um > 0


class TestRisingSparsenessTrend:
    """Message 1: industrial s_d worsens as feature size shrinks."""

    def test_power_law_exponent_negative(self, reg):
        fit = sd_vs_feature_fit(reg)
        assert fit.slope < 0  # s_d grows as lambda shrinks

    def test_rank_correlation_negative(self, reg):
        assert sd_feature_rank_correlation(reg) < 0

    def test_mpu_only_trend_also_rising(self, reg):
        from repro.data import DeviceCategory
        mpus = reg.by_category(DeviceCategory.MICROPROCESSOR)
        fit = sd_vs_feature_fit(mpus)
        assert fit.slope < 0

    def test_temporal_trend_positive(self, reg):
        fit = sd_vs_year_fit(reg)
        assert fit.slope > 0  # s_d grows with year

    def test_fit_predicts_in_data_range(self, reg):
        fit = sd_vs_feature_fit(reg)
        pred = fit.predict(0.25)
        assert 100 < pred < 800

    def test_too_few_points_raises(self, reg):
        with pytest.raises(DomainError):
            sd_vs_feature_fit(reg[:2])


class TestVendorTrends:
    def test_every_vendor_appears(self, reg):
        trends = vendor_trends(reg)
        assert {t.vendor for t in trends} == set(reg.vendors())

    def test_intel_trend_is_rising(self, reg):
        trends = {t.vendor: t for t in vendor_trends(reg)}
        assert trends["Intel"].is_rising()

    def test_single_design_vendor_has_no_fit(self, reg):
        trends = {t.vendor: t for t in vendor_trends(reg)}
        assert trends["Sun"].fit_vs_year is None  # one design (MAJC)

    def test_mean_sd_positive(self, reg):
        for t in vendor_trends(reg):
            assert t.mean_sd() > 0


class TestVendorAdvantage:
    """Message 2: AMD shipped denser designs than Intel until the K7."""

    def test_amd_advantage_before_k7(self, reg):
        pre_k7 = reg.filter(lambda r: not (r.vendor == "AMD" and "K7" in r.device))
        matches = vendor_density_advantage(pre_k7, "AMD", "Intel")
        assert matches, "AMD and Intel must share nodes"
        ratios = [ratio for _, _, ratio in matches]
        # Most pre-K7 AMD parts denser (ratio < 1) than node-matched Intel.
        assert sum(1 for r in ratios if r < 1) >= len(ratios) / 2

    def test_k6_family_strictly_denser(self, reg):
        k6_only = reg.filter(
            lambda r: r.vendor == "Intel" or "K6" in r.device)
        matches = vendor_density_advantage(k6_only, "AMD", "Intel")
        assert matches
        assert all(ratio < 1 for _, _, ratio in matches)

    def test_matching_respects_tolerance(self, reg):
        matches = vendor_density_advantage(reg, "AMD", "Intel", feature_tolerance=0.0)
        for pa, pb, _ in matches:
            assert pa.feature_um == pb.feature_um

    def test_unknown_vendor_raises(self, reg):
        with pytest.raises(DomainError):
            vendor_density_advantage(reg, "AMD", "Nonexistent")
