"""Documentation/API hygiene tests.

These guard the deliverable contract: every public symbol documented,
the API index regenerable, the repo docs present and non-trivial.
"""

import importlib
import inspect
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent

SUBPACKAGES = [
    "repro",
    "repro.data",
    "repro.density",
    "repro.cost",
    "repro.wafer",
    "repro.yieldmodels",
    "repro.optimize",
    "repro.roadmap",
    "repro.interconnect",
    "repro.designflow",
    "repro.layout",
    "repro.economics",
    "repro.analysis",
    "repro.obs",
    "repro.obs.perf",
    "repro.robust",
    "repro.constants",
    "repro.lint",
    "repro.bench",
    "repro.report",
]


class TestPublicApiHygiene:
    @pytest.mark.parametrize("package", SUBPACKAGES)
    def test_package_has_docstring(self, package):
        module = importlib.import_module(package)
        assert module.__doc__ and module.__doc__.strip()

    @pytest.mark.parametrize("package", SUBPACKAGES)
    def test_all_exports_resolve(self, package):
        module = importlib.import_module(package)
        for symbol in getattr(module, "__all__", []):
            assert hasattr(module, symbol), f"{package}.{symbol} missing"

    @pytest.mark.parametrize("package", SUBPACKAGES[1:])
    def test_public_symbols_documented(self, package):
        module = importlib.import_module(package)
        undocumented = []
        for symbol in getattr(module, "__all__", []):
            obj = getattr(module, symbol)
            if inspect.ismodule(obj) or not (inspect.isclass(obj) or inspect.isfunction(obj)):
                continue
            if not inspect.getdoc(obj):
                undocumented.append(symbol)
        assert not undocumented, f"{package}: undocumented public symbols {undocumented}"

    @pytest.mark.parametrize("package", SUBPACKAGES[1:])
    def test_public_methods_documented(self, package):
        module = importlib.import_module(package)
        undocumented = []
        for symbol in getattr(module, "__all__", []):
            obj = getattr(module, symbol)
            if not inspect.isclass(obj):
                continue
            for name, member in inspect.getmembers(obj, inspect.isfunction):
                if name.startswith("_") or member.__qualname__.split(".")[0] != obj.__name__:
                    continue
                if not inspect.getdoc(member):
                    undocumented.append(f"{symbol}.{name}")
        assert not undocumented, f"{package}: undocumented methods {undocumented}"


class TestRepoDocs:
    @pytest.mark.parametrize("name", ["README.md", "DESIGN.md", "EXPERIMENTS.md"])
    def test_doc_exists_and_substantial(self, name):
        path = REPO / name
        assert path.exists()
        assert len(path.read_text()) > 2000

    def test_design_doc_maps_every_experiment(self):
        text = (REPO / "DESIGN.md").read_text()
        for exp in ("fig1", "fig2", "fig3", "fig4a", "fig4b", "table_a1",
                    "abl_yieldmodel", "abl_ttm", "abl_node", "abl_scenarios"):
            assert exp in text, f"DESIGN.md missing experiment {exp}"

    def test_experiments_doc_covers_every_bench(self):
        text = (REPO / "EXPERIMENTS.md").read_text()
        for bench in sorted((REPO / "benchmarks").glob("bench_*.py")):
            assert bench.name in text, f"EXPERIMENTS.md missing {bench.name}"

    def test_api_index_regenerates(self, tmp_path):
        result = subprocess.run(
            [sys.executable, str(REPO / "tools" / "gen_api_docs.py")],
            capture_output=True, text=True, timeout=120, cwd=REPO,
            env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert result.returncode == 0, result.stderr
        api = (REPO / "docs" / "API.md").read_text()
        assert "repro.cost" in api
        assert "repro.economics" in api
        # Spot-check that headline symbols made it in.
        for symbol in ("transistor_cost", "DesignCostModel", "extract_patterns",
                       "optimal_sd", "constant_cost_sd"):
            assert f"`{symbol}`" in api
