"""Unit tests for the call-graph/dataflow layer (``repro.lint.graph``).

Each test builds a tiny synthetic package on disk, parses it with the
real project loader, and asserts on the symbol tables, per-function
effect summaries, call-edge resolution, and transitive traversals the
PURE/CONC passes are built on.
"""

from __future__ import annotations

import textwrap

from repro.lint import build_call_graph, load_project


def make_graph(tmp_path, files):
    root = tmp_path / "pkg"
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return build_call_graph(load_project(root))


# -- symbol tables -------------------------------------------------------

def test_symbol_tables_register_functions_classes_data(tmp_path):
    graph = make_graph(tmp_path, {"core.py": """
        CACHE = {}

        def helper(x):
            return x

        class Model:
            rate: float

            def run(self):
                return self.rate
    """})
    info = graph.modules["core"]
    assert info.functions == {"helper": "core.helper"}
    assert "Model" in info.classes
    assert graph.classes["core.Model"].methods["run"] == "core.Model.run"
    assert graph.classes["core.Model"].fields == {"rate": None}
    assert info.data["CACHE"].mutable is True
    assert "core.helper" in graph.functions
    assert "core.Model.run" in graph.functions


def test_data_classification(tmp_path):
    graph = make_graph(tmp_path, {"core.py": """
        MUT_DICT = {"a": 1}
        MUT_LIST = [1, 2]
        IMM_FROZEN = frozenset({1})
        IMM_PAIRS = (("a", 1), ("b", 2))
        MUT_TUPLE = (1, [2])
        REBOUND = 0

        class Model:
            def __init__(self):
                self.v = 0

        INSTANCE = Model()

        def rebind():
            global REBOUND
            REBOUND = 1
    """})
    data = graph.modules["core"].data
    assert data["MUT_DICT"].mutable and data["MUT_LIST"].mutable
    assert not data["IMM_FROZEN"].mutable
    assert not data["IMM_PAIRS"].mutable
    assert data["MUT_TUPLE"].mutable
    assert data["INSTANCE"].mutable
    assert data["INSTANCE"].value_class == "core.Model"
    # Rebinding via ``global`` anywhere makes the binding mutable state.
    assert data["REBOUND"].mutable
    assert graph.data_binding("core.MUT_DICT") is data["MUT_DICT"]
    assert graph.data_binding("nope.MISSING") is None


# -- effect summaries ----------------------------------------------------

def test_effect_kinds(tmp_path):
    graph = make_graph(tmp_path, {"fx.py": """
        import time

        STATE = {"n": 0}

        def rebind():
            global STATE
            STATE = {}

        def poke():
            STATE["n"] = 1

        def shove():
            STATE.update(n=2)

        def now():
            return time.time()

        def mutate(items):
            items.append(1)

        class Box:
            def __init__(self):
                self.v = 0

            def scribble(self):
                self.v = 1
    """})
    def effects(qname):
        return {(e.kind, e.detail) for e in graph.functions[qname].effects}

    assert ("global-write", "fx.STATE") in effects("fx.rebind")
    assert ("global-write", "fx.STATE") in effects("fx.poke")
    assert ("global-write", "fx.STATE") in effects("fx.shove")
    assert ("impure-call", "time.time") in effects("fx.now")
    assert ("param-mutation", "items.append") in effects("fx.mutate")
    # ``self`` assignment in __init__ is construction, not mutation.
    assert effects("fx.Box.__init__") == set()
    assert ("param-mutation", "self.v") in effects("fx.Box.scribble")


def test_instrumentation_calls_are_exempt(tmp_path):
    graph = make_graph(tmp_path, {"fx.py": """
        REGISTRY = {}

        def hot(metrics):
            metrics.inc("calls")
            metrics.observe("latency", 1.0)
            return 1
    """})
    summary = graph.functions["fx.hot"]
    assert summary.effects == ()
    assert summary.calls == ()


def test_data_reads_recorded(tmp_path):
    graph = make_graph(tmp_path, {"fx.py": """
        TABLE = {"k": 1}

        def read():
            return TABLE["k"]
    """})
    summary = graph.functions["fx.read"]
    assert [dotted for dotted, _ in summary.data_reads] == ["fx.TABLE"]


# -- call-edge resolution ------------------------------------------------

def test_call_resolution_forms(tmp_path):
    graph = make_graph(tmp_path, {"models.py": """
        class Gauge:
            limit: float

            def read(self):
                return self.limit

        class Meter:
            gauge: Gauge

            def sample(self):
                return self.gauge.read()

            def local_alias(self):
                g = self.gauge
                return g.read()

        class Box:
            def __init__(self):
                self.v = 0

        def make():
            return Box()

        def apply(run):
            return run(make)

        class Ctx:
            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False

        def use_ctx():
            with Ctx():
                return 1
    """})
    def callees(qname):
        return {edge.callee for edge in graph.functions[qname].calls}

    # Typed dataclass-field chain and local type propagation.
    assert "models.Gauge.read" in callees("models.Meter.sample")
    assert "models.Gauge.read" in callees("models.Meter.local_alias")
    # Instantiation resolves to __init__.
    assert "models.Box.__init__" in callees("models.make")
    # Address-taken reference: a function passed as an argument.
    assert "models.make" in callees("models.apply")
    # ``with Cls():`` reaches __enter__/__exit__.
    assert {"models.Ctx.__enter__", "models.Ctx.__exit__"} <= callees(
        "models.use_ctx")


def test_cached_property_access_is_an_edge(tmp_path):
    graph = make_graph(tmp_path, {"lazy.py": """
        from functools import cached_property

        class Lazy:
            @cached_property
            def params(self):
                return {}

            def use(self):
                return self.params
    """})
    callees = {e.callee for e in graph.functions["lazy.Lazy.use"].calls}
    assert "lazy.Lazy.params" in callees
    assert "cached_property" in graph.functions["lazy.Lazy.params"].decorators


def test_relative_import_and_reexport_chain(tmp_path):
    graph = make_graph(tmp_path, {
        "util/__init__.py": "from .impl import helper\n",
        "util/impl.py": "def helper(x):\n    return x\n",
        "app.py": """
            from util import helper

            def go():
                return helper(1)
        """,
        "sibling.py": """
            from .util.impl import helper

            def near():
                return helper(2)
        """,
    })
    assert {e.callee for e in graph.functions["app.go"].calls} == {
        "util.impl.helper"}
    assert {e.callee for e in graph.functions["sibling.near"].calls} == {
        "util.impl.helper"}


# -- transitive traversal ------------------------------------------------

def test_transitive_effects_with_witness_chain(tmp_path):
    graph = make_graph(tmp_path, {"chain.py": """
        import time

        def a():
            return b()

        def b():
            return c()

        def c():
            return time.time()
    """})
    impure = [te for te in graph.transitive_effects("chain.a")
              if te.effect.kind == "impure-call"]
    assert len(impure) == 1
    assert impure[0].effect.detail == "time.time"
    assert impure[0].chain == ("chain.a", "chain.b", "chain.c")

    stopped = graph.transitive_effects(
        "chain.a", stop=lambda s: s.name == "b")
    assert [te for te in stopped if te.effect.kind == "impure-call"] == []


def test_transitive_reads_judged_at_consumption(tmp_path):
    graph = make_graph(tmp_path, {"reads.py": """
        TABLE = {"k": 1}

        def outer():
            return inner()

        def inner():
            return TABLE["k"]
    """})
    reads = graph.transitive_reads("reads.outer")
    assert [(te.effect.detail, te.owner) for te in reads] == [
        ("reads.TABLE", "reads.inner")]
    assert graph.data_binding("reads.TABLE").mutable


def test_pool_submission_capture(tmp_path):
    graph = make_graph(tmp_path, {"pool.py": """
        def dispatch(pool, xs):
            pool.submit(lambda: 1)

            def local():
                return 2

            pool.submit(local)
            pool.submit(dispatch, xs)
    """})
    subs = graph.functions["pool.dispatch"].pool_submissions
    assert [(s.kind, s.detail) for s in subs] == [
        ("lambda", "<lambda>"), ("nested", "local")]


# -- build cache ---------------------------------------------------------

def test_graph_cached_per_project_identity(tmp_path):
    root = tmp_path / "pkg"
    root.mkdir()
    (root / "m.py").write_text("def f():\n    return 1\n")
    project = load_project(root)
    assert build_call_graph(project) is build_call_graph(project)
    assert build_call_graph(load_project(root)) is not build_call_graph(project)
