"""CSV round-trip tests for the datasets."""

import pytest

from repro.data import DesignRegistry, load_itrs_1999
from repro.data.io import (
    designs_from_csv,
    designs_to_csv,
    roadmap_from_csv,
    roadmap_to_csv,
)
from repro.errors import DataError


class TestDesignCsv:
    def test_round_trip_table_a1(self):
        original = list(DesignRegistry.table_a1())
        text = designs_to_csv(original)
        recovered = designs_from_csv(text)
        assert recovered == original

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "designs.csv"
        original = list(DesignRegistry.table_a1())[:5]
        designs_to_csv(original, path)
        assert designs_from_csv(path) == original

    def test_optional_cells_blank(self):
        reg = DesignRegistry.table_a1()
        row_no_split = next(r for r in reg if not r.has_split())
        text = designs_to_csv([row_no_split])
        data_line = text.splitlines()[1]
        assert ",," in data_line  # blank optional columns

    def test_validation_on_load(self):
        reg = DesignRegistry.table_a1()
        text = designs_to_csv(list(reg)[:3])
        corrupted = text.replace(str(reg[0].feature_um), "99.0", 1)
        with pytest.raises(Exception):
            designs_from_csv(corrupted)  # eq.-(2) identity now broken
        # But loads with validation off.
        assert len(designs_from_csv(corrupted, validate=False)) == 3

    def test_bad_header_rejected(self):
        with pytest.raises(DataError, match="header"):
            designs_from_csv("a,b,c\n1,2,3\n")

    def test_empty_rejected(self):
        with pytest.raises(DataError, match="empty"):
            designs_from_csv("\n")

    def test_short_row_rejected(self):
        text = designs_to_csv(list(DesignRegistry.table_a1())[:1])
        broken = text.splitlines()[0] + "\n1,2,3\n"
        with pytest.raises(DataError, match="cells"):
            designs_from_csv(broken)

    def test_unparseable_cell_reports_line(self):
        text = designs_to_csv(list(DesignRegistry.table_a1())[:1])
        broken = text.replace("1987", "not-a-year")
        with pytest.raises(DataError, match="line 2"):
            designs_from_csv(broken)

    def test_merged_registry_analyses(self):
        # The adoption use case: append a custom design, rerun a trend.
        from repro.data.records import DesignRecord, DeviceCategory
        from repro.density import sd_vs_feature_fit
        custom = DesignRecord(
            index=50, device="MyASIC", vendor="ACME",
            category=DeviceCategory.ASIC, year=2001,
            die_area_cm2=1.0, feature_um=0.13,
            transistors_total_m=12.0,
            transistors_logic_m=12.0, area_logic_cm2=1.0,
            sd_logic=1.0 / (12e6 * (0.13e-4) ** 2),
        )
        merged = DesignRegistry(list(DesignRegistry.table_a1()) + [custom])
        text = designs_to_csv(list(merged))
        recovered = DesignRegistry(designs_from_csv(text))
        assert len(recovered) == 50
        fit = sd_vs_feature_fit(recovered)
        assert fit.n == 50


class TestRoadmapCsv:
    def test_round_trip(self):
        nodes = load_itrs_1999()
        text = roadmap_to_csv(nodes)
        assert roadmap_from_csv(text) == nodes

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "roadmap.csv"
        roadmap_to_csv(load_itrs_1999(), path)
        assert roadmap_from_csv(path) == load_itrs_1999()

    def test_bad_header(self):
        with pytest.raises(DataError):
            roadmap_from_csv("x,y\n1,2\n")

    def test_bad_cell_reports_line(self):
        text = roadmap_to_csv(load_itrs_1999())
        broken = text.replace("180.0", "one-eighty", 1)
        with pytest.raises(DataError, match="line"):
            roadmap_from_csv(broken)
