"""Donath wirelength and wireability-floor tests."""

import pytest

from repro.interconnect import (
    RENT_MEMORY,
    RENT_RANDOM_LOGIC,
    RENT_REGULAR_FABRIC,
    WiringStack,
    donath_average_length,
    min_sd_for_wireability,
    wiring_demand_tracks,
)


class TestDonath:
    def test_high_rent_grows_with_size(self):
        p = RENT_RANDOM_LOGIC.exponent
        assert donath_average_length(1e6, p) > donath_average_length(1e4, p)

    def test_growth_rate_matches_theory(self):
        # For p > 0.5, L ~ G^(p-1/2).
        p = 0.7
        ratio = donath_average_length(1e6, p) / donath_average_length(1e4, p)
        assert ratio == pytest.approx(100 ** (p - 0.5), rel=1e-6)

    def test_low_rent_saturates(self):
        p = RENT_MEMORY.exponent
        big = donath_average_length(1e8, p)
        small = donath_average_length(1e4, p)
        assert big / small < 1.5  # bounded, near-constant

    def test_halfpoint_logarithmic(self):
        a = donath_average_length(2**10, 0.5)
        b = donath_average_length(2**20, 0.5)
        assert b - a == pytest.approx((2.0 / 9.0) * 10, rel=1e-6)

    def test_at_least_one_pitch(self):
        assert donath_average_length(2, 0.1) >= 1.0

    def test_richer_netlists_longer_wires(self):
        g = 1e6
        assert donath_average_length(g, 0.7) > donath_average_length(g, 0.5) \
            >= donath_average_length(g, 0.2)


class TestWiringStack:
    def test_supply_formula(self):
        st = WiringStack(n_routing_layers=4, track_pitch_lambda=4.0, utilization=0.5)
        assert st.supply_lambda_per_lambda2() == pytest.approx(0.5)

    def test_more_layers_more_supply(self):
        thin = WiringStack(n_routing_layers=2)
        thick = WiringStack(n_routing_layers=6)
        assert thick.supply_lambda_per_lambda2() > thin.supply_lambda_per_lambda2()


class TestWiringDemand:
    def test_scales_with_gates_superlinearly_for_random_logic(self):
        d1 = wiring_demand_tracks(1e4, RENT_RANDOM_LOGIC, 10.0)
        d2 = wiring_demand_tracks(1e6, RENT_RANDOM_LOGIC, 10.0)
        assert d2 / d1 > 100  # superlinear: count x length both grow

    def test_scales_with_pitch(self):
        assert wiring_demand_tracks(1e5, RENT_RANDOM_LOGIC, 20.0) == pytest.approx(
            2 * wiring_demand_tracks(1e5, RENT_RANDOM_LOGIC, 10.0))


class TestWireabilityFloor:
    def test_random_logic_floor_magnitude(self):
        floor = min_sd_for_wireability(1e6, RENT_RANDOM_LOGIC, WiringStack())
        assert 20 < floor < 300

    def test_regular_fabric_floors_lower(self):
        st = WiringStack()
        assert min_sd_for_wireability(1e6, RENT_REGULAR_FABRIC, st) < \
            min_sd_for_wireability(1e6, RENT_RANDOM_LOGIC, st)

    def test_more_metal_lowers_floor(self):
        # The paper's §2.2.2 argument: 6+ metal layers should REDUCE
        # the wiring-driven sparseness...
        thin = WiringStack(n_routing_layers=3)
        thick = WiringStack(n_routing_layers=6)
        assert min_sd_for_wireability(1e6, RENT_RANDOM_LOGIC, thick) < \
            min_sd_for_wireability(1e6, RENT_RANDOM_LOGIC, thin)

    def test_wiring_does_not_explain_industrial_sparseness(self):
        # ...so the observed s_d of 300-700 on rich stacks cannot be a
        # pure wireability effect — the paper's time-to-market argument.
        floor = min_sd_for_wireability(5e6, RENT_RANDOM_LOGIC,
                                       WiringStack(n_routing_layers=6))
        assert floor < 300

    def test_fixed_point_is_self_consistent(self):
        st = WiringStack()
        sd = min_sd_for_wireability(1e6, RENT_RANDOM_LOGIC, st)
        # At the returned sd, demand == supply (to iteration tolerance).
        import numpy as np
        gate_pitch = float(np.sqrt(4.0 * sd))
        demand = wiring_demand_tracks(1e6, RENT_RANDOM_LOGIC, gate_pitch)
        supply = st.supply_lambda_per_lambda2() * 1e6 * 4.0 * sd
        assert demand == pytest.approx(supply, rel=1e-6)
