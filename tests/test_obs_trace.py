"""Span tracer tests: nesting, disabled no-op, export round-trip, CLI."""

import subprocess
import sys
from pathlib import Path

import pytest

from repro import obs
from repro.cost import PAPER_FIGURE4_MODEL

REPO = Path(__file__).resolve().parent.parent


@pytest.fixture(autouse=True)
def clean_obs():
    """Isolate each test from global observability state."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


class TestSpanNesting:
    def test_parent_child_links_and_depth(self):
        with obs.enabled():
            with obs.span("parent") as parent:
                with obs.span("child") as child:
                    with obs.span("grandchild") as grandchild:
                        pass
        assert child.parent_id == parent.span_id
        assert grandchild.parent_id == child.span_id
        assert (parent.depth, child.depth, grandchild.depth) == (0, 1, 2)

    def test_siblings_share_parent(self):
        with obs.enabled():
            with obs.span("parent") as parent:
                with obs.span("a") as a:
                    pass
                with obs.span("b") as b:
                    pass
        assert a.parent_id == parent.span_id
        assert b.parent_id == parent.span_id

    def test_self_time_excludes_children(self):
        with obs.enabled():
            with obs.span("parent") as parent:
                with obs.span("child") as child:
                    pass
        assert parent.duration >= child.duration
        assert parent.self_time == pytest.approx(
            parent.duration - child.duration, abs=1e-9)

    def test_current_span_tracks_stack(self):
        with obs.enabled():
            assert obs.current_span() is None
            with obs.span("outer") as outer:
                assert obs.current_span() is outer
                with obs.span("inner") as inner:
                    assert obs.current_span() is inner
                assert obs.current_span() is outer
            assert obs.current_span() is None

    def test_attrs_recorded(self):
        with obs.enabled():
            with obs.span("x", sd=300, model="eq4") as sp:
                sp.set_attr("late", 1)
        assert sp.attrs == {"sd": 300, "model": "eq4", "late": 1}

    def test_exception_marks_span_and_still_records(self):
        with obs.enabled():
            with pytest.raises(ValueError):
                with obs.span("boom"):
                    raise ValueError("x")
        [sp] = obs.get_tracer().spans
        assert sp.attrs["error"] == "ValueError"


class TestDisabledNoOp:
    def test_span_records_nothing_when_disabled(self):
        with obs.span("ghost"):
            pass
        assert len(obs.get_tracer()) == 0

    def test_null_span_is_shared_and_inert(self):
        a = obs.span("a")
        b = obs.span("b")
        assert a is b
        a.set_attr("k", "v")  # must not raise

    def test_traced_function_result_unchanged_when_disabled(self):
        cost_disabled = PAPER_FIGURE4_MODEL.transistor_cost(
            300.0, 1e7, 0.18, 5000.0, 0.4, 8.0)
        with obs.enabled():
            cost_enabled = PAPER_FIGURE4_MODEL.transistor_cost(
                300.0, 1e7, 0.18, 5000.0, 0.4, 8.0)
        assert cost_disabled == cost_enabled
        assert len(obs.get_tracer()) > 0

    def test_enabled_context_restores_previous_state(self):
        assert not obs.is_enabled()
        with obs.enabled():
            assert obs.is_enabled()
        assert not obs.is_enabled()


class TestTracer:
    def test_cap_drops_and_counts(self):
        tracer = obs.get_tracer()
        tracer.max_spans = 3
        try:
            with obs.enabled():
                for _ in range(5):
                    with obs.span("s"):
                        pass
            assert len(tracer) == 3
            assert tracer.dropped == 2
        finally:
            tracer.max_spans = 100_000

    def test_reset_clears_everything(self):
        with obs.enabled():
            with obs.span("s"):
                pass
        obs.reset()
        assert len(obs.get_tracer()) == 0
        assert obs.get_tracer().dropped == 0

    def test_roots_and_children(self):
        with obs.enabled():
            with obs.span("root") as root:
                with obs.span("kid"):
                    pass
        tracer = obs.get_tracer()
        assert [s.name for s in tracer.roots()] == ["root"]
        assert [s.name for s in tracer.children_of(root.span_id)] == ["kid"]


class TestStopwatch:
    def test_elapsed_monotone_and_freezes(self):
        sw = obs.Stopwatch().start()
        first = sw.elapsed()
        second = sw.elapsed()
        assert second >= first >= 0.0
        frozen = sw.stop()
        assert sw.elapsed() == frozen


class TestExportRoundTrip:
    def test_jsonl_round_trip_preserves_spans(self, tmp_path):
        with obs.enabled():
            with obs.span("outer", sd=300):
                with obs.span("inner"):
                    pass
            obs.inc("count.me", 2)
            obs.record_provenance("src", "3", {"sd": 300})
        path = tmp_path / "trace.jsonl"
        n_lines = obs.export_jsonl(path)
        records = obs.read_jsonl(path)
        assert len(records) == n_lines
        spans = [r for r in records if r["type"] == "span"]
        original = obs.get_tracer().spans
        assert len(spans) == len(original)
        by_name = {s["name"]: s for s in spans}
        for sp in original:
            dumped = by_name[sp.name]
            assert dumped["id"] == sp.span_id
            assert dumped["parent_id"] == sp.parent_id
            assert dumped["duration"] == pytest.approx(sp.duration)
            assert dumped["attrs"] == sp.attrs
        kinds = {r["type"] for r in records}
        assert kinds == {"span", "metric", "provenance"}

    def test_tree_renders_from_reread_file(self, tmp_path):
        with obs.enabled():
            with obs.span("outer"):
                with obs.span("inner"):
                    pass
                with obs.span("inner"):
                    pass
        path = tmp_path / "trace.jsonl"
        obs.export_jsonl(path)
        tree = obs.format_span_tree(obs.read_jsonl(path))
        assert tree == obs.format_span_tree()
        assert "outer" in tree
        assert "inner x2" in tree  # same-name siblings collapse

    def test_empty_tree_is_explicit(self):
        assert obs.format_span_tree() == "(no spans recorded)"

    def test_summary_rolls_up_per_name(self):
        with obs.enabled():
            for _ in range(3):
                with obs.span("hot"):
                    pass
        [row] = obs.summary()
        assert row["name"] == "hot"
        assert row["calls"] == 3
        assert row["mean_s"] == pytest.approx(row["total_s"] / 3)


def run_cli(*args):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, timeout=120, cwd=REPO,
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
    )


class TestCliTrace:
    def test_trace_flag_appends_span_tree(self):
        result = run_cli("report", "--trace")
        assert result.returncode == 0, result.stderr
        assert "cost contradiction" in result.stdout  # report still there
        header = [l for l in result.stdout.splitlines() if l.startswith("trace:")]
        assert header, "missing trace section"
        n_spans = int(header[0].split()[1])
        assert n_spans >= 10
        trace_text = result.stdout.split("trace:", 1)[1]
        for module in ("cost.", "density.", "roadmap.", "optimize."):
            assert module in trace_text, f"no {module} span in CLI trace"

    def test_metrics_flag_appends_nonempty_table(self):
        result = run_cli("report", "--metrics")
        assert result.returncode == 0, result.stderr
        assert "\nmetrics\n" in result.stdout
        assert "counter" in result.stdout
        assert ".calls" in result.stdout

    def test_profile_flag_appends_rollup(self):
        result = run_cli("report", "--profile")
        assert result.returncode == 0, result.stderr
        assert "profile (per-span roll-up)" in result.stdout
        assert "total_ms" in result.stdout

    def test_no_flags_means_no_observability_sections(self):
        result = run_cli("report")
        assert result.returncode == 0, result.stderr
        assert "trace:" not in result.stdout
        assert "\nmetrics\n" not in result.stdout
        assert "profile" not in result.stdout

    def test_unknown_flag_rejected(self):
        result = run_cli("report", "--frobnicate")
        assert result.returncode == 2
        assert "unknown flag" in result.stderr
