"""ITRS-1999 reconstruction tests — the Figures 2-3 input."""

import pytest

from repro.data import (
    ASSUMED_YIELD,
    ITRS_1999,
    MANUFACTURING_COST_PER_CM2_USD,
    MPU_DIE_COST_1999_USD,
    load_itrs_1999,
    node_for_year,
)
from repro.errors import UnknownRecordError


class TestAnchors:
    """The paper's §2.2.3 constants, quoted verbatim."""

    def test_die_cost_anchor(self):
        assert MPU_DIE_COST_1999_USD == 34.0

    def test_cost_per_cm2_anchor(self):
        assert MANUFACTURING_COST_PER_CM2_USD == 8.0

    def test_yield_anchor(self):
        assert ASSUMED_YIELD == 0.8


class TestNodeCalendar:
    def test_six_nodes(self):
        assert len(ITRS_1999) == 6

    def test_years(self):
        assert [n.year for n in ITRS_1999] == [1999, 2002, 2005, 2008, 2011, 2014]

    def test_anchor_node_is_180nm(self):
        assert ITRS_1999[0].feature_nm == 180.0

    def test_horizon_is_35nm(self):
        assert ITRS_1999[-1].feature_nm == 35.0

    def test_shrink_is_about_0p7_per_node(self):
        for a, b in zip(ITRS_1999, ITRS_1999[1:]):
            ratio = b.feature_nm / a.feature_nm
            assert 0.65 <= ratio <= 0.78, (a.year, b.year)

    def test_transistor_counts_grow_monotonically(self):
        counts = [n.mpu_transistors_m for n in ITRS_1999]
        assert counts == sorted(counts)
        assert counts[-1] / counts[0] > 100  # two decades of Moore

    def test_density_grows_monotonically(self):
        densities = [n.mpu_density_m_per_cm2 for n in ITRS_1999]
        assert densities == sorted(densities)


class TestImpliedSd:
    def test_implied_sd_falls_node_over_node(self):
        # The Figure 2 shape: the roadmap requires DENSER design over time.
        sds = [n.implied_sd() for n in ITRS_1999]
        assert all(a > b for a, b in zip(sds, sds[1:]))

    def test_1999_implied_sd_magnitude(self):
        # 1/(3.24e-10 * 6.6e6) ~ 468
        assert ITRS_1999[0].implied_sd() == pytest.approx(467.6, rel=0.01)

    def test_die_area_grows_modestly(self):
        # ITRS lets die area creep up, far slower than transistor count.
        areas = [n.implied_die_area_cm2() for n in ITRS_1999]
        assert areas[-1] / areas[0] < 3
        assert all(a > 0 for a in areas)


class TestLookups:
    def test_load_returns_list_copy(self):
        nodes = load_itrs_1999()
        nodes.pop()
        assert len(load_itrs_1999()) == 6

    def test_node_for_year_found(self):
        assert node_for_year(2005).feature_nm == 100.0

    def test_node_for_year_missing_raises(self):
        with pytest.raises(UnknownRecordError, match="2006"):
            node_for_year(2006)

    def test_error_lists_known_years(self):
        with pytest.raises(UnknownRecordError, match="1999"):
            node_for_year(1901)
