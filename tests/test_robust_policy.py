"""Error-policy unit tests: ErrorPolicy / Diagnostic / DiagnosticLog
plus the policy-threaded scan entry points.

The acceptance scenario from the robustness issue: a Figure-4
``sd_sweep`` over a grid *straddling* ``s_d0`` completes under MASK
with the infeasible points NaN-masked and diagnosed, raises
identically to the seed under the default RAISE, and surfaces every
failure at once under COLLECT.
"""

import math

import numpy as np
import pytest

from repro import obs
from repro.cost import PAPER_FIGURE4_MODEL
from repro.data import load_itrs_1999
from repro.errors import CollectedErrors, DomainError, ReproError
from repro.optimize import (
    evaluate_points,
    optimum_vs_volume,
    parameter_elasticities,
    sd_sweep,
    sd_sweep_generalized,
    tornado,
)
from repro.roadmap import constant_cost_series, scenario, scenario_series
from repro.robust import Diagnostic, DiagnosticLog, ErrorPolicy

SD0 = PAPER_FIGURE4_MODEL.design_model.sd0  # 100.0
FIG4_ARGS = (1e7, 0.18, 5_000, 0.4, 8.0)
POINT = dict(n_transistors=1e7, feature_um=0.18, n_wafers=5_000,
             yield_fraction=0.4, cost_per_cm2=8.0)

#: 6 points at/below sd0 (infeasible: eq. (6) diverges) + 30 above.
STRADDLING_GRID = np.concatenate([
    np.linspace(50.0, SD0, 6), np.geomspace(SD0 + 5, 1000.0, 30)])


# -- ErrorPolicy ---------------------------------------------------------

def test_coerce_accepts_enum_and_strings():
    assert ErrorPolicy.coerce(ErrorPolicy.MASK) is ErrorPolicy.MASK
    assert ErrorPolicy.coerce("mask") is ErrorPolicy.MASK
    assert ErrorPolicy.coerce("RAISE") is ErrorPolicy.RAISE
    assert ErrorPolicy.coerce("Collect") is ErrorPolicy.COLLECT


def test_coerce_rejects_unknown_policy():
    with pytest.raises(DomainError, match="unknown error policy"):
        ErrorPolicy.coerce("explode")


# -- Diagnostic ----------------------------------------------------------

def test_diagnostic_from_exception_and_str():
    diag = Diagnostic.from_exception(
        DomainError("sd must exceed sd0"), where="optimize.sweep.sd_sweep",
        equation="4", parameter="sd", value=50.0, index=0)
    assert diag.error_type == "DomainError"
    text = str(diag)
    assert "optimize.sweep.sd_sweep[0]" in text
    assert "(eq. 4)" in text
    assert "sd=50.0" in text
    assert "sd must exceed sd0" in text


# -- DiagnosticLog -------------------------------------------------------

def test_capture_raise_policy_absorbs_nothing():
    log = DiagnosticLog(ErrorPolicy.RAISE, "w")
    assert log.capture(DomainError("x")) is False
    assert len(log) == 0


def test_capture_mask_absorbs_repro_errors_only():
    log = DiagnosticLog(ErrorPolicy.MASK, "w")
    assert log.capture(DomainError("bad"), parameter="sd", value=1.0, index=3)
    assert log.capture(TypeError("bug")) is False
    assert len(log) == 1
    assert log.finish()[0].index == 3


def test_collect_finish_raises_aggregate():
    log = DiagnosticLog(ErrorPolicy.COLLECT, "scan")
    for i in range(4):
        assert log.capture(DomainError(f"p{i}"), index=i)
    with pytest.raises(CollectedErrors) as err:
        log.finish()
    assert len(err.value.diagnostics) == 4
    assert "4 point(s) failed" in str(err.value)


def test_masked_failures_increment_obs_counters():
    with obs.enabled():
        obs.reset()
        log = DiagnosticLog(ErrorPolicy.MASK, "w")
        log.capture(DomainError("bad"))
        log.capture(DomainError("bad"))
        assert obs.get_registry().counter("robust.policy.masked").value == 2
    obs.disable()
    obs.reset()


# -- the acceptance scenario: sd_sweep over a straddling grid ------------

def test_sd_sweep_mask_straddling_grid():
    res = sd_sweep(PAPER_FIGURE4_MODEL, *FIG4_ARGS,
                   sd_values=STRADDLING_GRID, policy=ErrorPolicy.MASK)
    assert res.n_masked == 6
    assert np.all(np.isnan(res.cost[:6]))
    assert np.all(np.isfinite(res.cost[6:]))
    assert len(res.diagnostics) == 6
    assert {d.index for d in res.diagnostics} == set(range(6))
    assert all(d.parameter == "sd" for d in res.diagnostics)
    assert all(d.error_type == "DomainError" for d in res.diagnostics)
    # nan-aware optimum still lands on the feasible branch
    assert res.x_opt > SD0
    assert math.isfinite(res.cost_opt)


def test_sd_sweep_raise_policy_identical_to_seed():
    feasible = STRADDLING_GRID[6:]
    default = sd_sweep(PAPER_FIGURE4_MODEL, *FIG4_ARGS, sd_values=feasible)
    masked = sd_sweep(PAPER_FIGURE4_MODEL, *FIG4_ARGS, sd_values=feasible,
                      policy=ErrorPolicy.MASK)
    np.testing.assert_array_equal(default.cost, masked.cost)
    assert default.diagnostics == ()
    assert default.n_masked == 0
    with pytest.raises(ReproError):
        sd_sweep(PAPER_FIGURE4_MODEL, *FIG4_ARGS, sd_values=STRADDLING_GRID)


def test_sd_sweep_collect_raises_with_every_diagnostic():
    with pytest.raises(CollectedErrors) as err:
        sd_sweep(PAPER_FIGURE4_MODEL, *FIG4_ARGS,
                 sd_values=STRADDLING_GRID, policy="collect")
    assert len(err.value.diagnostics) == 6


def test_sd_sweep_all_masked_argmin_raises():
    res = sd_sweep(PAPER_FIGURE4_MODEL, *FIG4_ARGS,
                   sd_values=np.linspace(10.0, SD0, 12),
                   policy=ErrorPolicy.MASK)
    assert res.n_masked == 12
    with pytest.raises(DomainError, match="every grid point"):
        res.argmin


def test_sd_sweep_generalized_masks_infeasible_points():
    from repro.cost import DEFAULT_GENERALIZED_MODEL
    res = sd_sweep_generalized(DEFAULT_GENERALIZED_MODEL, 1e7, 0.18, 20_000,
                               sd_values=STRADDLING_GRID,
                               policy=ErrorPolicy.MASK)
    assert res.n_masked >= 6
    assert math.isfinite(res.cost_opt)


# -- policy threading through the other scan entry points ----------------

def test_constant_cost_series_mask_vs_raise():
    nodes = load_itrs_1999()
    baseline = constant_cost_series(nodes)
    diags: list = []
    masked = constant_cost_series(nodes, policy=ErrorPolicy.MASK,
                                  diagnostics=diags)
    assert diags == []  # the shipped roadmap is fully feasible
    assert [p.node.year for p in masked] == [p.node.year for p in baseline]


def test_scenario_series_accepts_policy():
    nodes = load_itrs_1999()
    diags: list = []
    series = scenario_series(nodes, scenario("realistic"), policy="mask",
                             diagnostics=diags)
    assert len(series) == len(nodes)
    assert diags == []


def test_optimum_vs_volume_accepts_policy():
    points = optimum_vs_volume(PAPER_FIGURE4_MODEL, 1e7, 0.18, 0.4, 8.0,
                               n_wafers_values=np.geomspace(1e3, 1e5, 5),
                               policy=ErrorPolicy.MASK)
    assert len(points) == 5


def test_elasticities_mask_policy_all_finite_on_feasible_point():
    out = parameter_elasticities(PAPER_FIGURE4_MODEL, POINT,
                                 parameters=["n_wafers", "cost_per_cm2"],
                                 policy=ErrorPolicy.MASK)
    assert all(math.isfinite(v) for v in out.values())


EXCURSIONS = {"n_wafers": (2_000, 20_000), "cost_per_cm2": (4.0, 16.0)}


def test_tornado_order_stable_under_mask():
    default = tornado(PAPER_FIGURE4_MODEL, POINT, EXCURSIONS)
    masked = tornado(PAPER_FIGURE4_MODEL, POINT, EXCURSIONS,
                     policy=ErrorPolicy.MASK)
    assert [e.parameter for e in default] == [e.parameter for e in masked]


def test_evaluate_points_mask_drops_infeasible_and_diagnoses():
    diags: list = []
    points = evaluate_points(PAPER_FIGURE4_MODEL, **POINT,
                             sd_values=[50.0, 300.0, 500.0],
                             policy=ErrorPolicy.MASK, diagnostics=diags)
    assert len(points) == 2
    assert len(diags) == 1
    assert diags[0].error_type == "DomainError"


def test_masked_sweep_annotates_enclosing_span():
    with obs.enabled():
        obs.reset()
        sd_sweep(PAPER_FIGURE4_MODEL, *FIG4_ARGS,
                 sd_values=STRADDLING_GRID, policy=ErrorPolicy.MASK)
        spans = obs.get_tracer().spans
        sweep_spans = [s for s in spans if "sd_sweep" in s.name]
        assert sweep_spans
        assert sweep_spans[0].attrs.get("robust.masked") == 6
    obs.disable()
    obs.reset()
