"""Rent's-rule tests."""

import numpy as np
import pytest

from repro.errors import DomainError
from repro.interconnect import (
    RENT_MEMORY,
    RENT_RANDOM_LOGIC,
    RENT_REGULAR_FABRIC,
    RentModel,
)


class TestRentsRule:
    def test_power_law(self):
        m = RentModel(terminals_per_gate=4.0, exponent=0.5)
        assert m.terminals(100) == pytest.approx(40.0)

    def test_single_gate_has_t_terminals(self):
        m = RentModel(terminals_per_gate=3.5, exponent=0.65)
        assert m.terminals(1) == pytest.approx(3.5)

    def test_terminals_grow_sublinearly(self):
        m = RENT_RANDOM_LOGIC
        assert m.terminals(1e6) / m.terminals(1e3) < 1000

    def test_inversion_round_trip(self):
        m = RENT_RANDOM_LOGIC
        t = m.terminals(12345)
        assert m.gates_for_terminals(t) == pytest.approx(12345, rel=1e-9)

    def test_array_support(self):
        out = RENT_RANDOM_LOGIC.terminals(np.array([10.0, 100.0]))
        assert out.shape == (2,)

    def test_exponent_domain(self):
        with pytest.raises(DomainError):
            RentModel(exponent=0.0)
        with pytest.raises(DomainError):
            RentModel(exponent=1.0)

    def test_rejects_zero_gates(self):
        with pytest.raises(DomainError):
            RENT_RANDOM_LOGIC.terminals(0)


class TestStyleOrdering:
    """Random logic > regular fabric > memory in connectivity richness."""

    def test_exponent_ordering(self):
        assert RENT_RANDOM_LOGIC.exponent > RENT_REGULAR_FABRIC.exponent > RENT_MEMORY.exponent

    def test_terminal_demand_ordering_at_scale(self):
        g = 1e6
        assert RENT_RANDOM_LOGIC.terminals(g) > RENT_REGULAR_FABRIC.terminals(g) \
            > RENT_MEMORY.terminals(g)


class TestRegionCrossings:
    def test_clipped_by_design_terminals(self):
        m = RENT_RANDOM_LOGIC
        # A region nearly as big as the design cannot cross more nets
        # than the design has pins.
        assert m.region_crossings(1e6, 1e6) == pytest.approx(m.terminals(1e6))

    def test_small_region_follows_power_law(self):
        m = RENT_RANDOM_LOGIC
        assert m.region_crossings(100, 1e6) == pytest.approx(m.terminals(100))

    def test_region_larger_than_design_rejected(self):
        with pytest.raises(DomainError):
            RENT_RANDOM_LOGIC.region_crossings(2e6, 1e6)
