"""Cost-sweep engine tests (the Figure 4 machinery)."""

import numpy as np
import pytest

from repro.cost import PAPER_FIGURE4_MODEL, DEFAULT_GENERALIZED_MODEL
from repro.errors import DomainError
from repro.optimize import SweepResult, sd_grid, sd_sweep, sd_sweep_generalized, volume_sweep

FIG4A = dict(n_transistors=1e7, feature_um=0.18, n_wafers=5000,
             yield_fraction=0.4, cost_per_cm2=8.0)
FIG4B = dict(n_transistors=1e7, feature_um=0.18, n_wafers=50_000,
             yield_fraction=0.9, cost_per_cm2=8.0)


class TestSdGrid:
    def test_starts_above_bound(self):
        grid = sd_grid(100.0)
        assert grid[0] > 100.0

    def test_reaches_max(self):
        grid = sd_grid(100.0, sd_max=1000.0)
        assert grid[-1] == pytest.approx(1000.0)

    def test_geometric_spacing_resolves_left_wall(self):
        grid = sd_grid(100.0, n=100)
        # More than a third of the points in the first tenth of the range.
        frac = np.mean(grid < 100 + 0.1 * (grid[-1] - 100))
        assert frac > 0.33

    def test_invalid_max_raises(self):
        with pytest.raises(DomainError):
            sd_grid(100.0, sd_max=100.0)

    def test_n_validated(self):
        with pytest.raises(DomainError):
            sd_grid(100.0, n=1)


class TestSdSweep:
    def test_figure4a_u_curve(self):
        sweep = sd_sweep(PAPER_FIGURE4_MODEL, **FIG4A)
        assert sweep.is_interior_minimum()
        assert 200 < sweep.x_opt < 500

    def test_figure4b_optimum_lower(self):
        a = sd_sweep(PAPER_FIGURE4_MODEL, **FIG4A)
        b = sd_sweep(PAPER_FIGURE4_MODEL, **FIG4B)
        assert b.x_opt < a.x_opt

    def test_meta_records_operating_point(self):
        sweep = sd_sweep(PAPER_FIGURE4_MODEL, **FIG4A)
        assert sweep.meta["n_wafers"] == 5000

    def test_custom_grid_respected(self):
        grid = np.array([150.0, 300.0, 600.0])
        sweep = sd_sweep(PAPER_FIGURE4_MODEL, sd_values=grid, **FIG4A)
        np.testing.assert_array_equal(sweep.x, grid)

    def test_cost_at_interpolates(self):
        sweep = sd_sweep(PAPER_FIGURE4_MODEL, **FIG4A)
        mid = 0.5 * (sweep.x[10] + sweep.x[11])
        c = sweep.cost_at(mid)
        assert min(sweep.cost[10], sweep.cost[11]) <= c <= max(sweep.cost[10], sweep.cost[11])

    def test_cost_at_outside_range_raises(self):
        sweep = sd_sweep(PAPER_FIGURE4_MODEL, **FIG4A)
        with pytest.raises(DomainError):
            sweep.cost_at(1e9)

    def test_penalty_vs_optimum_zero_at_optimum(self):
        sweep = sd_sweep(PAPER_FIGURE4_MODEL, **FIG4A)
        assert sweep.penalty_vs_optimum(sweep.x_opt) == pytest.approx(0.0, abs=1e-9)

    def test_penalty_positive_off_optimum(self):
        sweep = sd_sweep(PAPER_FIGURE4_MODEL, **FIG4A)
        assert sweep.penalty_vs_optimum(900.0) > 0


class TestSweepResultValidation:
    def test_mismatched_shapes_rejected(self):
        with pytest.raises(DomainError):
            SweepResult("sd", np.array([1.0, 2.0]), np.array([1.0]), {})

    def test_single_point_rejected(self):
        with pytest.raises(DomainError):
            SweepResult("sd", np.array([1.0]), np.array([1.0]), {})


class TestGeneralizedSweep:
    def test_u_curve(self):
        sweep = sd_sweep_generalized(DEFAULT_GENERALIZED_MODEL, 1e7, 0.18, 5000)
        assert sweep.is_interior_minimum()

    def test_meta_marks_model(self):
        sweep = sd_sweep_generalized(DEFAULT_GENERALIZED_MODEL, 1e7, 0.18, 5000)
        assert sweep.meta["model"] == "generalized"


class TestVolumeSweep:
    def test_monotone_decreasing(self):
        sweep = volume_sweep(PAPER_FIGURE4_MODEL, 300, 1e7, 0.18, 0.8, 8.0)
        assert np.all(np.diff(sweep.cost) < 0)

    def test_approaches_eq3_floor(self):
        from repro.cost import transistor_cost
        sweep = volume_sweep(PAPER_FIGURE4_MODEL, 300, 1e7, 0.18, 0.8, 8.0,
                             n_wafers_values=np.geomspace(1e2, 1e9, 50))
        floor = transistor_cost(8.0, 0.18, 300, 0.8)
        assert sweep.cost[-1] == pytest.approx(floor, rel=1e-3)
        assert sweep.cost[0] > 2 * floor
