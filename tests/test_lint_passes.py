"""Per-pass detection tests for ``repro.lint``.

Each built-in pass gets synthetic fixture modules with seeded
violations written to ``tmp_path``, proving the pass detects exactly
what its rule catalog promises — and stays quiet on the idiomatic
clean form.
"""

from __future__ import annotations

import textwrap

from repro.lint import LintConfig, PassManager, load_project
from repro.lint.findings import Severity
from repro.lint.passes import (
    ApiParityPass,
    ErrorTaxonomyPass,
    ObsWiringPass,
    PaperConstantsPass,
    PolicyThreadingPass,
    UnitsPass,
)


def run_pass(tmp_path, lint_pass, files, config=None, repo_root=None):
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    project = load_project(tmp_path / "pkg" if (tmp_path / "pkg").is_dir()
                           else tmp_path,
                           repo_root=repo_root if repo_root is not None
                           else tmp_path)
    manager = PassManager(passes=(lint_pass,), config=config or LintConfig())
    return manager.run(project)


def rules_of(result):
    return [f.rule for f in result.findings]


# -- units ---------------------------------------------------------------

def test_units_flags_cm_factor_multiply(tmp_path):
    result = run_pass(tmp_path, UnitsPass(), {
        "geom.py": """
            def die_area(feature_um, sd, n):
                return n * sd * (feature_um * 1e-4) ** 2
        """})
    assert rules_of(result) == ["UNITS001"]
    assert result.findings[0].severity is Severity.ERROR
    assert "1e-04" in result.findings[0].message or "0.0001" in result.findings[0].message


def test_units_flags_nm_cm_divide(tmp_path):
    result = run_pass(tmp_path, UnitsPass(), {
        "geom.py": "def f(feature_nm):\n    return feature_nm / 1.0e7\n"})
    assert rules_of(result) == ["UNITS001"]


def test_units_module_itself_is_exempt(tmp_path):
    result = run_pass(tmp_path, UnitsPass(), {
        "units.py": "def um_to_cm(x):\n    return x / 1.0e4\n"})
    assert result.findings == ()


def test_units002_needs_length_named_operand(tmp_path):
    result = run_pass(tmp_path, UnitsPass(), {
        "mixed.py": """
            def f(feature_nm, duration):
                a = feature_nm / 1.0e3   # inline nm->um: flagged
                b = duration * 1e3       # ms conversion: not a length
                return a, b
        """})
    assert rules_of(result) == ["UNITS002"]
    assert result.findings[0].severity is Severity.WARNING
    assert "feature_nm" in result.findings[0].message


# -- error-taxonomy ------------------------------------------------------

def test_error_taxonomy_rules(tmp_path):
    result = run_pass(tmp_path, ErrorTaxonomyPass(), {
        "bad.py": """
            def f():
                try:
                    pass
                except:
                    pass
                try:
                    pass
                except Exception:
                    x = 1
                raise ValueError("nope")
        """})
    assert rules_of(result) == ["ERR001", "ERR002", "ERR003"]


def test_error_taxonomy_allows_capture_reraise_and_exempts(tmp_path):
    result = run_pass(tmp_path, ErrorTaxonomyPass(), {
        "good.py": """
            def f(log):
                try:
                    pass
                except Exception as exc:
                    if not log.capture(exc):
                        raise
        """,
        "errors.py": "raise ValueError('defining module may raise builtins')\n",
    })
    assert result.findings == ()


# -- policy-threading ----------------------------------------------------

def test_policy_flags_missing_and_unused_policy(tmp_path):
    result = run_pass(tmp_path, PolicyThreadingPass(), {
        "pkg/optimize/sweeps.py": """
            def cost_sweep(xs):
                return [x for x in xs]

            def volume_sweep(xs, policy=None):
                return list(xs)

            def good_sweep(xs, policy=None):
                return evaluate(xs, policy=policy)

            def _private_sweep(xs):
                return xs

            def unrelated(xs):
                return xs
        """})
    assert rules_of(result) == ["POL001", "POL002"]
    assert "cost_sweep" in result.findings[0].message
    assert "volume_sweep" in result.findings[1].message


def test_policy_audits_only_entry_packages(tmp_path):
    result = run_pass(tmp_path, PolicyThreadingPass(), {
        "pkg/analysis/sweeps.py": "def cost_sweep(xs):\n    return xs\n"})
    assert result.findings == ()


# -- paper-constants -----------------------------------------------------

def test_constants_flags_all_binding_forms(tmp_path):
    result = run_pass(tmp_path, PaperConstantsPass(), {
        "dup.py": """
            sd0 = 100.0

            class Model:
                a0: float = 1000.0

            def run(x, yield_fraction=0.8, *, die_cost_usd=34.0):
                return x
        """})
    assert rules_of(result) == ["CONST001"] * 4


def test_constants_ignores_other_values_and_constants_module(tmp_path):
    result = run_pass(tmp_path, PaperConstantsPass(), {
        "ok.py": """
            sd0 = 120.0          # not the paper value
            tolerance = 100.0    # not a registered name

            def run(x, yield_fraction=None):
                return x
        """,
        "constants.py": "SD0 = 100.0\nsd0 = 100.0\n",
    })
    assert result.findings == ()


# -- api-parity ----------------------------------------------------------

def test_api_flags_missing_all_ghost_export_and_docstrings(tmp_path):
    result = run_pass(tmp_path, ApiParityPass(), {
        "no_all.py": '"""Docstring."""\n\nX = 1\n',
        "ghost.py": '"""Docstring."""\n\n__all__ = ["missing"]\n',
        "undoc.py": '__all__ = ["f"]\n\ndef f():\n    return 1\n',
    })
    assert sorted(rules_of(result)) == ["API001", "API002", "API002", "API004"]
    by_rule = {f.rule: f for f in result.findings}
    assert "missing" in by_rule["API001"].message
    assert "no_all" in by_rule["API004"].path


def test_api_main_modules_are_exempt(tmp_path):
    result = run_pass(tmp_path, ApiParityPass(), {
        "__main__.py": "print('cli')\n"})
    assert result.findings == ()


def test_api_docs_sync_both_directions(tmp_path):
    (tmp_path / "docs").mkdir()
    (tmp_path / "docs" / "API.md").write_text(textwrap.dedent("""
        ## `repro`

        | symbol | kind | summary |
        |---|---|---|
        | `f` | function | fine |
        | `stale` | function | no longer exported |
    """))
    result = run_pass(tmp_path, ApiParityPass(), {
        "pkg/__init__.py": textwrap.dedent('''
            """Package docstring."""

            __all__ = ["f", "g"]


            def f():
                """Documented."""


            def g():
                """Documented but missing from docs/API.md."""
        ''')})
    messages = [f.message for f in result.findings if f.rule == "API003"]
    assert any("repro.g exported but missing" in m for m in messages)
    assert any("repro.stale" in m and "no longer exported" in m
               for m in messages)


# -- obs-wiring ----------------------------------------------------------

def test_obs_flags_untraced_entry_point(tmp_path):
    result = run_pass(tmp_path, ObsWiringPass(), {
        "pkg/optimize/solvers.py": """
            def optimal_thing(model):
                return model

            def helper(model):
                return model
        """})
    assert rules_of(result) == ["OBS001"]
    assert "optimal_thing" in result.findings[0].message


def test_obs_accepts_traced_or_explicit_instrumentation(tmp_path):
    result = run_pass(tmp_path, ObsWiringPass(), {
        "pkg/optimize/solvers.py": """
            @traced(equation="4")
            def optimal_decorated(model):
                return model

            def optimal_manual(model):
                record_provenance("x", "4", {})
                return model
        """})
    assert result.findings == ()


def test_obs_flags_per_call_metric_allocation_in_traced_body(tmp_path):
    result = run_pass(tmp_path, ObsWiringPass(), {
        "pkg/model.py": """
            @traced(equation="4")
            def optimal_thing(model):
                sketch = DurationSketch("hot")
                calls = metrics.Counter("calls")
                return model
        """})
    assert rules_of(result) == ["OBS002", "OBS002"]
    assert "DurationSketch" in result.findings[0].message
    assert "Counter" in result.findings[1].message
    assert "optimal_thing" in result.findings[0].message


def test_obs002_applies_outside_entry_packages_and_to_nested_defs(tmp_path):
    # OBS002 audits every @traced body, not just optimize/roadmap entry
    # points, including nested functions.
    result = run_pass(tmp_path, ObsWiringPass(), {
        "pkg/analysis/fits.py": """
            def outer():
                @traced()
                def inner(x):
                    return Histogram("h").observe(x)
                return inner
        """})
    assert rules_of(result) == ["OBS002"]


def test_obs002_quiet_on_gated_helpers_and_hoisted_metrics(tmp_path):
    result = run_pass(tmp_path, ObsWiringPass(), {
        "pkg/model.py": """
            _SKETCH = DurationSketch("hot")

            @traced(equation="4")
            def optimal_thing(model):
                observe_duration("hot", 0.1)
                inc("calls_total")
                _SKETCH.observe(0.1)
                return model

            def untraced_factory():
                return Counter("fine: not a traced body")
        """})
    assert result.findings == ()


def test_obs003_flags_dotted_and_suffixless_metric_names(tmp_path):
    result = run_pass(tmp_path, ObsWiringPass(), {
        "pkg/model.py": """
            def f():
                inc("engine.cache.hits")
                observe("grid.points", 3.0)
                inc("engine_cache_hits")
        """})
    assert rules_of(result) == ["OBS003", "OBS003", "OBS003"]
    assert "not snake_case" in result.findings[0].message
    assert "not snake_case" in result.findings[1].message
    assert "_total" in result.findings[2].message


def test_obs003_flags_bad_label_keys_and_registry_methods(tmp_path):
    result = run_pass(tmp_path, ObsWiringPass(), {
        "pkg/model.py": """
            def f(reg):
                inc("events_total", labels={"Event-Kind": "hit"})
                reg.counter("Lookups", {"event": "miss"})
                reg.gauge("cache_entries", {"CamelKey": "x"})
        """})
    assert rules_of(result) == ["OBS003", "OBS003", "OBS003"]
    assert "label key" in result.findings[0].message
    assert "Lookups" in result.findings[1].message
    assert "CamelKey" in result.findings[2].message


def test_obs003_quiet_on_conforming_and_dynamic_names(tmp_path):
    result = run_pass(tmp_path, ObsWiringPass(), {
        "pkg/model.py": """
            def f(reg, name):
                inc("engine_cache_events_total", labels={"event": "hit"})
                observe("engine_grid_points", 3.0)
                set_gauge("cache_hit_rate", 0.5)
                reg.sketch("engine_evaluate_grid").observe(0.1)
                inc(name)
                inc(f"{name}_total")
                sketch.observe(0.25)
        """})
    assert result.findings == ()
