"""Solver-hardening tests: RetryBudget, ConvergenceReport,
golden_min / retrying_golden_min, and the hardened call sites.
"""

import math

import pytest

from repro.cost import DesignCostModel, PAPER_FIGURE4_MODEL
from repro.designflow import fit_design_cost_model
from repro.economics import MarketWindowModel, profit_optimal_sd
from repro.errors import ConvergenceError, DomainError
from repro.optimize import optimal_sd
from repro.robust import (
    DEFAULT_RETRY_BUDGET,
    ConvergenceReport,
    RetryBudget,
    flaky,
    golden_min,
    retrying_golden_min,
)


# -- RetryBudget ---------------------------------------------------------

def test_budget_defaults_and_attempts_range():
    budget = RetryBudget()
    assert budget.max_attempts == 3
    assert list(budget.attempts()) == [0, 1, 2]
    assert DEFAULT_RETRY_BUDGET == budget


@pytest.mark.parametrize("kwargs", [
    dict(max_attempts=0),
    dict(bracket_growth=0.5),
    dict(perturb_fraction=-0.1),
    dict(perturb_fraction=1.0),
    dict(iter_growth=0.9),
])
def test_budget_rejects_bad_values(kwargs):
    with pytest.raises(DomainError):
        RetryBudget(**kwargs)


def test_convergence_report_str_mentions_everything():
    report = ConvergenceReport(solver="s.olver", attempts=2, iterations=40,
                               last_bracket=(1.0, 2.0), best_x=1.5, best_fx=0.25)
    text = str(report)
    assert "s.olver" in text
    assert "2 attempt(s)" in text
    assert "40 iterations" in text


# -- golden_min ----------------------------------------------------------

def test_golden_min_finds_parabola_minimum():
    x, fx, iters = golden_min(lambda x: (x - 3.0) ** 2, 0.0, 10.0,
                              tol=1e-12, max_iter=200)
    assert x == pytest.approx(3.0, abs=1e-6)
    assert fx == pytest.approx(0.0, abs=1e-10)
    assert iters > 0


def test_golden_min_exhaustion_carries_report():
    with pytest.raises(ConvergenceError) as err:
        golden_min(lambda x: (x - 3.0) ** 2, 0.0, 10.0,
                   tol=1e-15, max_iter=3, solver="test.solver")
    report = err.value.report
    assert isinstance(report, ConvergenceReport)
    assert report.solver == "test.solver"
    assert report.iterations == 3
    assert report.last_bracket[0] < report.best_x < report.last_bracket[1]
    assert math.isfinite(report.best_fx)


# -- retrying_golden_min -------------------------------------------------

def test_retry_recovers_from_tight_iteration_cap():
    # 4 iterations cannot collapse the bracket at this tol; the budget's
    # iter_growth must ride through.
    x, fx, iters, attempts = retrying_golden_min(
        lambda x: (x - 3.0) ** 2, 0.0, 10.0, tol=1e-10, max_iter=4,
        solver="test.retry", retry=RetryBudget(max_attempts=6, iter_growth=3.0))
    assert x == pytest.approx(3.0, abs=1e-4)
    assert attempts > 1


def test_retry_none_is_single_attempt():
    with pytest.raises(ConvergenceError):
        retrying_golden_min(lambda x: (x - 3.0) ** 2, 0.0, 10.0,
                            tol=1e-15, max_iter=3, solver="t", retry=None)


def test_retry_exhaustion_propagates_last_report():
    with pytest.raises(ConvergenceError) as err:
        retrying_golden_min(lambda x: (x - 3.0) ** 2, 0.0, 10.0,
                            tol=1e-15, max_iter=2, solver="t",
                            retry=RetryBudget(max_attempts=2, iter_growth=1.0))
    assert err.value.report.attempts == 2


def test_retry_rides_through_flaky_objective():
    objective = flaky(lambda x: (x - 3.0) ** 2, fail_times=2)
    x, fx, iters, attempts = retrying_golden_min(
        objective, 0.0, 10.0, tol=1e-10, max_iter=200, solver="test.flaky",
        retry=RetryBudget(max_attempts=5))
    assert x == pytest.approx(3.0, abs=1e-4)
    # the first two attempts die on the injected failure
    assert attempts == 3
    assert objective.state["failures"] == 2


def test_retry_is_deterministic():
    def run():
        objective = flaky(lambda x: (x - 3.0) ** 2, fail_times=1)
        return retrying_golden_min(objective, 0.0, 10.0, tol=1e-10,
                                   max_iter=40, solver="t",
                                   retry=RetryBudget(max_attempts=4))
    assert run() == run()


# -- hardened call sites -------------------------------------------------

FIG4_ARGS = (1e7, 0.18, 5_000, 0.4, 8.0)


def test_optimal_sd_retry_none_matches_default():
    plain = optimal_sd(PAPER_FIGURE4_MODEL, *FIG4_ARGS)
    hardened = optimal_sd(PAPER_FIGURE4_MODEL, *FIG4_ARGS,
                          retry=DEFAULT_RETRY_BUDGET)
    assert hardened.sd_opt == pytest.approx(plain.sd_opt, rel=1e-9)
    assert plain.attempts == 1


def test_optimal_sd_bracket_expansion_recovers_clipped_optimum():
    # sd_max=320 clips the ~sd 310-330 optimum region for this point;
    # plain call raises, the budget's bracket growth recovers it.
    reference = optimal_sd(PAPER_FIGURE4_MODEL, *FIG4_ARGS)
    tight = reference.sd_opt / 2
    with pytest.raises(DomainError, match="clipped"):
        optimal_sd(PAPER_FIGURE4_MODEL, *FIG4_ARGS, sd_max=tight)
    recovered = optimal_sd(PAPER_FIGURE4_MODEL, *FIG4_ARGS, sd_max=tight,
                           retry=DEFAULT_RETRY_BUDGET)
    assert recovered.sd_opt == pytest.approx(reference.sd_opt, rel=1e-3)


def test_profit_optimal_sd_accepts_retry():
    market = MarketWindowModel()
    args = (1e7, 0.18, 1e6, 0.4, 8.0)
    plain = profit_optimal_sd(market, PAPER_FIGURE4_MODEL, *args)
    hardened = profit_optimal_sd(market, PAPER_FIGURE4_MODEL, *args,
                                 retry=DEFAULT_RETRY_BUDGET)
    assert hardened.sd == pytest.approx(plain.sd, rel=1e-9)


def _calibration_samples():
    truth = DesignCostModel()  # A0=1000, p1=1, p2=1.2, sd0=100
    n, s, c = [], [], []
    for n_tr in (1e6, 3e6, 1e7, 3e7, 1e8):
        for sd in (110, 125, 150, 200, 300, 500):
            n.append(n_tr)
            s.append(sd)
            c.append(truth.cost(n_tr, sd))
    return n, s, c


def test_calibration_accepts_retry():
    n, s, c = _calibration_samples()
    plain = fit_design_cost_model(n, s, c)
    hardened = fit_design_cost_model(n, s, c, retry=DEFAULT_RETRY_BUDGET)
    assert hardened.p2 == pytest.approx(plain.p2, rel=1e-6)
