"""Engine parity: batched evaluation must reproduce the scalar loops.

The reproduction contract of :mod:`repro.engine` is numerical and
behavioural identity with the per-point loops it replaced: same values
(to <=1e-12 relative), same diagnostics under MASK/COLLECT, same
results from the pure-python backend and from the chunked pool path.
"""

import numpy as np
import pytest

from repro.cost import DEFAULT_GENERALIZED_MODEL, PAPER_FIGURE4_MODEL
from repro.data import DesignRegistry, load_itrs_1999
from repro.engine import (
    cache_stats,
    clear_cache,
    configure_parallel,
    evaluate_grid,
    parallel_settings,
    using,
)
from repro.engine import parallel as engine_parallel
from repro.engine.kernels import (
    DesignObjectivesKernel,
    Eq4SdKernel,
    Eq4VolumeKernel,
    Eq7SdKernel,
)
from repro.errors import CollectedErrors
from repro.optimize import sd_grid
from repro.robust import ErrorPolicy

FIG4A = dict(n_transistors=1e7, feature_um=0.18, n_wafers=5_000,
             yield_fraction=0.4, cost_per_cm2=8.0)

_SD0 = PAPER_FIGURE4_MODEL.design_model.sd0

#: Real-data grids: Table-A1 logic densities and ITRS-implied densities.
TABLE_A1_SD = np.asarray(
    sorted(sd for sd in DesignRegistry.table_a1().sd_logic_values()
           if sd > _SD0), dtype=float)
ITRS_SD = np.asarray(
    sorted(node.implied_sd() for node in load_itrs_1999()), dtype=float)
GRIDS = {
    "table_a1": TABLE_A1_SD,
    "itrs": ITRS_SD,
    "figure4": sd_grid(_SD0, sd_max=1200.0, n=120),
}


def max_relative_error(values, reference):
    reference = np.asarray(reference, dtype=float)
    return float(np.max(np.abs(np.asarray(values) - reference)
                        / np.abs(reference)))


def scalar_reference(kernel, grid):
    return np.array([kernel.point(float(x)) for x in grid], dtype=float).T


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestBatchScalarParity:
    @pytest.mark.parametrize("grid_name", sorted(GRIDS))
    def test_eq4_matches_scalar(self, grid_name):
        kernel = Eq4SdKernel(PAPER_FIGURE4_MODEL, **FIG4A)
        grid = GRIDS[grid_name]
        evaluation = evaluate_grid(kernel, grid, where="test.parity",
                                   equation="4", parameter="sd", cache=False)
        assert evaluation.backend == "numpy"
        assert max_relative_error(
            evaluation.values, scalar_reference(kernel, grid)) <= 1e-12

    @pytest.mark.parametrize("grid_name", sorted(GRIDS))
    def test_eq7_matches_scalar(self, grid_name):
        kernel = Eq7SdKernel(DEFAULT_GENERALIZED_MODEL, n_transistors=1e7,
                             feature_um=0.18, n_wafers=5_000)
        grid = GRIDS[grid_name]
        evaluation = evaluate_grid(kernel, grid, where="test.parity",
                                   equation="7", parameter="sd", cache=False)
        assert max_relative_error(
            evaluation.values, scalar_reference(kernel, grid)) <= 1e-12

    def test_volume_kernel_matches_scalar(self):
        kernel = Eq4VolumeKernel(PAPER_FIGURE4_MODEL, sd=300.0,
                                 n_transistors=1e7, feature_um=0.18,
                                 yield_fraction=0.4, cost_per_cm2=8.0)
        grid = np.geomspace(1e2, 5e5, 80)
        evaluation = evaluate_grid(kernel, grid, where="test.parity",
                                   equation="4", parameter="n_wafers",
                                   cache=False)
        assert max_relative_error(
            evaluation.values, scalar_reference(kernel, grid)) <= 1e-12

    def test_objectives_kernel_matches_scalar_rows(self):
        kernel = DesignObjectivesKernel(PAPER_FIGURE4_MODEL, **FIG4A)
        grid = GRIDS["figure4"]
        evaluation = evaluate_grid(kernel, grid, where="test.parity",
                                   equation="4", parameter="sd", cache=False)
        assert evaluation.values.shape == (3, grid.size)
        assert max_relative_error(
            evaluation.values, scalar_reference(kernel, grid)) <= 1e-12


class TestPythonBackend:
    def test_python_backend_matches_numpy(self):
        kernel = Eq4SdKernel(PAPER_FIGURE4_MODEL, **FIG4A)
        grid = GRIDS["figure4"]
        reference = evaluate_grid(kernel, grid, where="test.parity",
                                  cache=False).values
        with using("python"):
            evaluation = evaluate_grid(kernel, grid, where="test.parity",
                                       cache=False)
        assert evaluation.backend == "python"
        assert max_relative_error(evaluation.values, reference) <= 1e-12

    def test_python_backend_eq7_matches_numpy(self):
        kernel = Eq7SdKernel(DEFAULT_GENERALIZED_MODEL, n_transistors=1e7,
                             feature_um=0.18, n_wafers=5_000)
        grid = GRIDS["itrs"]
        reference = evaluate_grid(kernel, grid, where="test.parity",
                                  cache=False).values
        with using("python"):
            evaluation = evaluate_grid(kernel, grid, where="test.parity",
                                       cache=False)
        assert max_relative_error(evaluation.values, reference) <= 1e-12

    def test_python_backend_mask_diagnostics_match_numpy(self):
        kernel = Eq4SdKernel(PAPER_FIGURE4_MODEL, **FIG4A)
        grid = np.array([50.0, 300.0, 400.0, 60.0])
        numpy_eval = evaluate_grid(kernel, grid, policy=ErrorPolicy.MASK,
                                   where="test.parity", equation="4",
                                   parameter="sd", cache=False)
        with using("python"):
            python_eval = evaluate_grid(kernel, grid, policy=ErrorPolicy.MASK,
                                        where="test.parity", equation="4",
                                        parameter="sd", cache=False)
        np.testing.assert_array_equal(np.isnan(numpy_eval.values),
                                      np.isnan(python_eval.values))
        assert ([str(d) for d in numpy_eval.diagnostics]
                == [str(d) for d in python_eval.diagnostics])


class TestMaskCollect:
    def test_mask_nans_infeasible_points_in_order(self):
        kernel = Eq4SdKernel(PAPER_FIGURE4_MODEL, **FIG4A)
        grid = np.array([50.0, 300.0, 400.0, 60.0])
        evaluation = evaluate_grid(kernel, grid, policy=ErrorPolicy.MASK,
                                   where="test.parity", equation="4",
                                   parameter="sd", cache=False)
        assert np.isnan(evaluation.values[[0, 3]]).all()
        assert np.isfinite(evaluation.values[[1, 2]]).all()
        assert [d.index for d in evaluation.diagnostics] == [0, 3]
        assert all(d.where == "test.parity" for d in evaluation.diagnostics)

    def test_mask_values_match_scalar_on_feasible_points(self):
        kernel = Eq4SdKernel(PAPER_FIGURE4_MODEL, **FIG4A)
        grid = np.array([50.0, 300.0, 400.0])
        evaluation = evaluate_grid(kernel, grid, policy=ErrorPolicy.MASK,
                                   where="test.parity", cache=False)
        expected = scalar_reference(kernel, grid[1:])
        assert max_relative_error(evaluation.values[1:], expected) <= 1e-12

    def test_mask_whole_batch_failure_falls_back_to_scalar_loop(self):
        # yield_fraction=0 is infeasible for every point: the batch call
        # raises and the dispatch must degrade to per-point diagnostics.
        kernel = Eq4SdKernel(PAPER_FIGURE4_MODEL, n_transistors=1e7,
                             feature_um=0.18, n_wafers=5_000,
                             yield_fraction=0.0, cost_per_cm2=8.0)
        grid = np.array([200.0, 300.0, 400.0])
        evaluation = evaluate_grid(kernel, grid, policy=ErrorPolicy.MASK,
                                   where="test.parity", parameter="sd",
                                   cache=False)
        assert np.isnan(evaluation.values).all()
        assert len(evaluation.diagnostics) == grid.size

    def test_collect_raises_aggregate_after_trying_everything(self):
        kernel = Eq4SdKernel(PAPER_FIGURE4_MODEL, **FIG4A)
        grid = np.array([50.0, 300.0, 60.0])
        with pytest.raises(CollectedErrors, match=r"2 point\(s\) failed"):
            evaluate_grid(kernel, grid, policy=ErrorPolicy.COLLECT,
                          where="test.parity", parameter="sd", cache=False)


class TestCache:
    def test_identical_evaluation_hits_cache(self):
        kernel = Eq4SdKernel(PAPER_FIGURE4_MODEL, **FIG4A)
        grid = GRIDS["figure4"]
        first = evaluate_grid(kernel, grid, where="test.cache")
        second = evaluate_grid(kernel, grid, where="test.cache")
        assert not first.cache_hit
        assert second.cache_hit
        np.testing.assert_array_equal(first.values, second.values)
        assert cache_stats().hits == 1

    def test_changed_grid_misses(self):
        kernel = Eq4SdKernel(PAPER_FIGURE4_MODEL, **FIG4A)
        grid = GRIDS["figure4"].copy()
        evaluate_grid(kernel, grid, where="test.cache")
        grid[0] += 1e-9
        second = evaluate_grid(kernel, grid, where="test.cache")
        assert not second.cache_hit

    def test_changed_operating_point_misses(self):
        grid = GRIDS["figure4"]
        evaluate_grid(Eq4SdKernel(PAPER_FIGURE4_MODEL, **FIG4A), grid,
                      where="test.cache")
        other = dict(FIG4A, n_wafers=50_000)
        second = evaluate_grid(Eq4SdKernel(PAPER_FIGURE4_MODEL, **other),
                               grid, where="test.cache")
        assert not second.cache_hit

    def test_cache_false_opts_out(self):
        kernel = Eq4SdKernel(PAPER_FIGURE4_MODEL, **FIG4A)
        grid = GRIDS["figure4"]
        evaluate_grid(kernel, grid, where="test.cache", cache=False)
        second = evaluate_grid(kernel, grid, where="test.cache", cache=False)
        assert not second.cache_hit
        stats = cache_stats()
        assert stats.hits == 0 and stats.misses == 0


class TestParallel:
    @pytest.fixture()
    def lowered_threshold(self):
        saved = parallel_settings()
        configure_parallel(threshold=1_000, max_workers=2)
        yield
        configure_parallel(threshold=saved["threshold"],
                           enabled=saved["enabled"])
        engine_parallel._max_workers = saved["max_workers"]
        engine_parallel.shutdown()

    def test_below_threshold_single_chunk(self):
        assert engine_parallel.plan_chunks(100) == 1

    def test_disabled_forces_single_chunk(self):
        saved = parallel_settings()
        configure_parallel(enabled=False)
        try:
            assert engine_parallel.plan_chunks(10_000_000) == 1
        finally:
            configure_parallel(enabled=saved["enabled"])

    def test_chunked_path_matches_single_process(self, lowered_threshold):
        kernel = Eq4SdKernel(PAPER_FIGURE4_MODEL, **FIG4A)
        grid = np.linspace(150.0, 1200.0, 25_000)
        evaluation = evaluate_grid(kernel, grid, where="test.parallel",
                                   cache=False)
        assert evaluation.chunks > 1
        np.testing.assert_array_equal(evaluation.values, kernel.batch(grid))
