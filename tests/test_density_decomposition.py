"""Memory/logic decomposition tests (§2.2.2)."""

import pytest

from repro.data import DesignRegistry
from repro.density import SplitDensity, blend_sd, memory_fraction_for_target_sd
from repro.errors import DomainError


@pytest.fixture()
def pa_risc_split():
    reg = DesignRegistry.table_a1()
    return SplitDensity.from_record(reg.by_device("PA-RISC"))


class TestBlendSd:
    def test_pure_memory(self):
        assert blend_sd(40.0, 300.0, 1.0) == pytest.approx(40.0)

    def test_even_blend(self):
        assert blend_sd(40.0, 300.0, 0.5) == pytest.approx(170.0)

    def test_blend_is_count_weighted_mean(self):
        # Direct check against the area identity: areas add, counts add.
        sd_mem, sd_logic, f = 50.0, 400.0, 0.8
        n = 1e6
        lam2 = 1.0  # arbitrary, cancels
        area = f * n * sd_mem * lam2 + (1 - f) * n * sd_logic * lam2
        assert blend_sd(sd_mem, sd_logic, f) == pytest.approx(area / n)

    def test_rejects_zero_fraction(self):
        with pytest.raises(DomainError):
            blend_sd(40.0, 300.0, 0.0)


class TestMemoryFractionForTarget:
    def test_round_trip(self):
        f = memory_fraction_for_target_sd(40.0, 300.0, 120.0)
        assert blend_sd(40.0, 300.0, f) == pytest.approx(120.0)

    def test_unreachable_target_raises(self):
        with pytest.raises(DomainError, match="unreachable"):
            memory_fraction_for_target_sd(40.0, 300.0, 500.0)

    def test_target_below_both_raises(self):
        with pytest.raises(DomainError):
            memory_fraction_for_target_sd(40.0, 300.0, 30.0)

    def test_equal_portions(self):
        assert memory_fraction_for_target_sd(100.0, 100.0, 100.0) == 1.0


class TestSplitDensity:
    def test_from_record_requires_split(self):
        reg = DesignRegistry.table_a1()
        with pytest.raises(DomainError, match="no memory/logic split"):
            SplitDensity.from_record(reg.by_device("Pentium III"))

    def test_portion_sds_match_table(self, pa_risc_split):
        assert pa_risc_split.sd_mem() == pytest.approx(40.0, rel=0.02)
        assert pa_risc_split.sd_logic() == pytest.approx(158.6, rel=0.02)

    def test_overall_between_portions(self, pa_risc_split):
        overall = pa_risc_split.sd_overall()
        assert pa_risc_split.sd_mem() < overall < pa_risc_split.sd_logic()

    def test_overall_is_blend(self, pa_risc_split):
        blended = blend_sd(
            pa_risc_split.sd_mem(),
            pa_risc_split.sd_logic(),
            pa_risc_split.mem_transistor_fraction(),
        )
        assert pa_risc_split.sd_overall() == pytest.approx(blended, rel=1e-12)

    def test_mem_fraction_pa_risc(self, pa_risc_split):
        # PA-8500: 92 of 116 M transistors in cache.
        assert pa_risc_split.mem_transistor_fraction() == pytest.approx(92 / 116)

    def test_area_fraction_lower_than_count_fraction(self, pa_risc_split):
        # Memory is denser, so its area share < its transistor share.
        assert pa_risc_split.mem_area_fraction() < pa_risc_split.mem_transistor_fraction()


class TestWhatIf:
    def test_logic_at_custom_density_shrinks_die(self, pa_risc_split):
        saved = pa_risc_split.area_saved_by_logic_at(100.0)
        assert saved > 0

    def test_logic_at_sparser_density_grows_die(self, pa_risc_split):
        saved = pa_risc_split.area_saved_by_logic_at(400.0)
        assert saved < 0

    def test_recomposition_consistency(self, pa_risc_split):
        # Redrawing logic at its own density changes nothing.
        same = pa_risc_split.sd_overall_with_logic_at(pa_risc_split.sd_logic())
        assert same == pytest.approx(pa_risc_split.sd_overall(), rel=1e-12)

    def test_recomposed_sd_lower_with_denser_logic(self, pa_risc_split):
        denser = pa_risc_split.sd_overall_with_logic_at(110.0)
        assert denser < pa_risc_split.sd_overall()
