"""Time-to-market economics tests — deriving the Figure-1 drift."""

import pytest

from repro.cost import PAPER_FIGURE4_MODEL
from repro.economics import MarketWindowModel, profit_optimal_sd
from repro.errors import DomainError
from repro.optimize import optimal_sd

POINT = dict(n_transistors=1e7, feature_um=0.18, yield_fraction=0.8, cost_per_cm2=8.0)


class TestMarketWindowModel:
    def test_peak_at_zero_delay(self):
        m = MarketWindowModel(peak_revenue_usd=1e8, window_weeks=50)
        assert m.revenue(0) == pytest.approx(1e8)

    def test_e_folding(self):
        import math
        m = MarketWindowModel(peak_revenue_usd=1e8, window_weeks=50)
        assert m.revenue(50) == pytest.approx(1e8 * math.exp(-1))

    def test_revenue_lost_complementary(self):
        m = MarketWindowModel()
        assert m.revenue(30) + m.revenue_lost(30) == pytest.approx(m.peak_revenue_usd)

    def test_negative_delay_rejected(self):
        with pytest.raises(DomainError):
            MarketWindowModel().revenue(-1)

    def test_validation(self):
        with pytest.raises(DomainError):
            MarketWindowModel(window_weeks=0)


class TestProfitOptimalSd:
    def solve(self, window_weeks, **overrides):
        market = MarketWindowModel(peak_revenue_usd=5e8, window_weeks=window_weeks)
        kwargs = dict(POINT, n_units=2e6)
        kwargs.update(overrides)
        return profit_optimal_sd(market, PAPER_FIGURE4_MODEL, **kwargs)

    def test_interior_optimum(self):
        p = self.solve(60)
        assert 100 < p.sd < 4000
        assert p.profit_usd > 0

    def test_profit_decomposition(self):
        p = self.solve(60)
        assert p.profit_usd == pytest.approx(
            p.revenue_usd - p.silicon_cost_usd - p.design_cost_usd)

    def test_shorter_window_sparser_design(self):
        # The §2.2.2 mechanism: TTM pressure pushes s_d UP.
        hot = self.solve(20)
        cool = self.solve(200)
        assert hot.sd > cool.sd
        assert hot.schedule_weeks < cool.schedule_weeks

    def test_ttm_pressure_exceeds_cost_optimum(self):
        # Profit-optimal s_d > cost-optimal s_d for a hot market —
        # Figure 1's industrial drift, derived.
        cost_opt = optimal_sd(PAPER_FIGURE4_MODEL, n_wafers=50_000, **POINT)
        profit_opt = self.solve(30)
        assert profit_opt.sd > cost_opt.sd_opt

    def test_infinite_window_approaches_cost_logic(self):
        # With a very long window revenue barely depends on schedule,
        # so silicon economics pull the optimum back towards dense.
        patient = self.solve(5000)
        hot = self.solve(20)
        assert patient.sd < hot.sd

    def test_more_units_denser_design(self):
        # Higher volume raises the silicon stake, pushing density.
        small = self.solve(60, n_units=2e5)
        large = self.solve(60, n_units=2e7)
        assert large.sd < small.sd

    def test_regularity_relieves_ttm_pressure(self):
        # A regular (predictable) flow closes faster at equal density,
        # so the profit optimum can afford to be denser.
        irregular = self.solve(30, regularity=0.0)
        regular = self.solve(30, regularity=1.0)
        assert regular.sd < irregular.sd

    def test_invalid_bracket(self):
        with pytest.raises(DomainError):
            self.solve(60, sd_max=50.0)
