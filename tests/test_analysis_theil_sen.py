"""Theil–Sen robust fit tests."""

import numpy as np
import pytest

from repro.analysis import linear_fit, theil_sen_fit
from repro.data import DesignRegistry
from repro.density import extract_points
from repro.errors import DomainError


class TestTheilSen:
    def test_exact_line(self):
        x = np.arange(20.0)
        fit = theil_sen_fit(x, 3.0 + 2.0 * x)
        assert fit.slope == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(3.0)

    def test_robust_to_outliers(self):
        rng = np.random.default_rng(0)
        x = np.linspace(0, 10, 50)
        y = 2.0 * x + 1.0 + rng.normal(0, 0.1, 50)
        y[:5] += 100.0  # five wild points
        robust = theil_sen_fit(x, y)
        ols = linear_fit(x, y)
        assert robust.slope == pytest.approx(2.0, abs=0.1)
        assert abs(ols.slope - 2.0) > abs(robust.slope - 2.0)

    def test_stderr_is_nan(self):
        fit = theil_sen_fit([0, 1, 2], [0, 1, 2])
        assert np.isnan(fit.stderr_slope)

    def test_predict_works(self):
        fit = theil_sen_fit([0, 1, 2, 3], [1, 3, 5, 7])
        assert fit.predict(10) == pytest.approx(21.0)

    def test_degenerate_inputs(self):
        with pytest.raises(DomainError):
            theil_sen_fit([1], [1])
        with pytest.raises(DomainError):
            theil_sen_fit([2, 2, 2], [1, 2, 3])

    def test_nan_dropped(self):
        fit = theil_sen_fit([0, 1, 2, np.nan], [0, 2, 4, 100])
        assert fit.n == 3
        assert fit.slope == pytest.approx(2.0)

    def test_figure1_trend_direction_agrees_with_ols(self):
        # On the real Table A1 log-log data the robust and OLS slopes
        # agree in sign: the rising-sparseness trend is not an outlier
        # artifact.
        points = extract_points(DesignRegistry.table_a1())
        logx = np.log([p.feature_um for p in points])
        logy = np.log([p.sd_logic for p in points])
        robust = theil_sen_fit(logx, logy)
        ols = linear_fit(logx, logy)
        assert robust.slope < 0
        assert ols.slope < 0
