"""Property-based tests on the design-flow and economics models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.designflow import StagedFlowModel, TimingClosureModel
from repro.economics import FabModel, MarketWindowModel
from repro.interconnect import PredictionErrorModel, WireTechnology, optimal_repeaters

sds = st.floats(min_value=101.0, max_value=3000.0)
features = st.floats(min_value=0.03, max_value=1.5)
regularities = st.floats(min_value=0.0, max_value=1.0)
delays = st.floats(min_value=0.0, max_value=500.0)
lengths = st.floats(min_value=1.0, max_value=100_000.0)


class TestClosureProperties:
    @given(sds, features, regularities)
    def test_probability_in_unit_interval(self, sd, feature, regularity):
        model = TimingClosureModel()
        p = model.closure_probability(sd, feature, regularity)
        assert 0 < p <= 1

    @given(sds, features, regularities)
    def test_regularity_never_hurts(self, sd, feature, regularity):
        model = TimingClosureModel()
        base = model.closure_probability(sd, feature, 0.0)
        helped = model.closure_probability(sd, feature, regularity)
        assert helped >= base - 1e-12

    @given(sds, st.floats(min_value=1.05, max_value=4.0), features)
    def test_sparser_never_harder(self, sd, factor, feature):
        model = TimingClosureModel()
        assert model.closure_probability(sd * factor, feature) >= \
            model.closure_probability(sd, feature) - 1e-12

    @given(sds, features)
    def test_iterations_reciprocal(self, sd, feature):
        model = TimingClosureModel()
        p = model.closure_probability(sd, feature)
        assert model.expected_iterations(sd, feature) == pytest.approx(1.0 / p)


class TestStagedFlowProperties:
    @given(sds)
    @settings(max_examples=50)
    def test_expected_cost_at_least_one_pass(self, sd):
        result = StagedFlowModel().analyse(sd)
        assert result.expected_cost_passes >= 1.0 - 1e-9
        assert result.expected_weeks_passes >= 1.0 - 1e-9

    @given(sds, st.floats(min_value=1.0, max_value=10.0))
    @settings(max_examples=50)
    def test_prediction_gain_never_hurts(self, sd, gain):
        base = StagedFlowModel()
        sharp = base.with_early_prediction_gain(gain)
        assert sharp.analyse(sd).expected_cost_passes <= \
            base.analyse(sd).expected_cost_passes + 1e-9

    @given(st.floats(min_value=101.0, max_value=500.0),
           st.floats(min_value=1.02, max_value=3.0))
    @settings(max_examples=50)
    def test_monotone_in_density(self, sd, factor):
        model = StagedFlowModel()
        assert model.analyse(sd * factor).expected_cost_passes <= \
            model.analyse(sd).expected_cost_passes + 1e-9


class TestMarketProperties:
    @given(delays)
    def test_revenue_bounded_by_peak(self, delay):
        m = MarketWindowModel()
        r = m.revenue(delay)
        assert 0 < r <= m.peak_revenue_usd

    @given(delays, st.floats(min_value=0.1, max_value=100.0))
    def test_later_is_never_better(self, delay, extra):
        m = MarketWindowModel()
        assert m.revenue(delay + extra) < m.revenue(delay)

    @given(delays)
    def test_lost_plus_kept_is_peak(self, delay):
        m = MarketWindowModel()
        assert m.revenue(delay) + m.revenue_lost(delay) == pytest.approx(
            m.peak_revenue_usd)


class TestFabProperties:
    @given(st.floats(min_value=1e8, max_value=2e10),
           st.floats(min_value=1000, max_value=50_000),
           st.floats(min_value=0.3, max_value=1.0))
    @settings(max_examples=50)
    def test_wafer_cost_positive_and_scales(self, capex, wspm, util):
        fab = FabModel(capex_usd=capex, wafer_starts_per_month=wspm,
                       utilization=util)
        assert fab.cost_per_wafer() > 0
        double = FabModel(capex_usd=2 * capex, wafer_starts_per_month=wspm,
                          utilization=util)
        assert double.cost_per_wafer() == pytest.approx(2 * fab.cost_per_wafer())


class TestRepeaterProperties:
    @given(lengths, features)
    @settings(max_examples=60)
    def test_repeated_never_slower(self, length, feature):
        tech = WireTechnology.at_node(feature)
        design = optimal_repeaters(tech, length)
        assert design.delay_ps <= design.unrepeated_delay_ps * (1 + 1e-9)

    @given(lengths, features)
    @settings(max_examples=60)
    def test_fields_consistent(self, length, feature):
        tech = WireTechnology.at_node(feature)
        design = optimal_repeaters(tech, length)
        assert design.n_repeaters >= 0
        assert design.size_factor > 0
        assert design.delay_ps > 0
