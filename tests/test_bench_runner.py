"""Discovery, timing statistics, and report schema of ``repro.bench``.

Discovery runs against both the real ``benchmarks/`` directory (the
suite this gate protects) and synthetic tmp-path bench modules; timing
tests inject a fake timer so the statistics are exact.
"""

from __future__ import annotations

import math
import textwrap

import pytest

from repro.bench import (
    SCHEMA_ID,
    BenchCase,
    BenchResult,
    bench_environment,
    default_bench_dir,
    discover,
    load_report,
    make_report,
    run_case,
    run_suite,
    validate_report,
    write_report,
)
from repro.errors import DataError, DomainError


# -- discovery ---------------------------------------------------------

def test_discover_real_benchmarks_dir():
    cases = discover()
    names = [c.name for c in cases]
    assert len(cases) >= 14
    assert names == sorted(names)
    assert "figure4" in names
    assert "table_a1" in names
    assert "obs_overhead" in names
    assert all(callable(c.func) for c in cases)


def test_discover_filter_substring():
    cases = discover(filter_substring="figure")
    assert {c.name for c in cases} == {"figure1", "figure2", "figure3",
                                       "figure4"}


def test_discover_synthetic_dir(tmp_path):
    (tmp_path / "bench_alpha.py").write_text(textwrap.dedent("""
        def regenerate_alpha():
            return 1
    """))
    (tmp_path / "bench_multi.py").write_text(textwrap.dedent("""
        def regenerate_first():
            return 1

        def regenerate_second():
            return 2

        def helper():
            return 0
    """))
    cases = discover(tmp_path)
    assert [c.name for c in cases] == ["alpha", "multi:first", "multi:second"]


def test_discover_errors(tmp_path):
    with pytest.raises(DataError):
        discover(tmp_path / "nowhere")
    with pytest.raises(DataError):
        discover(tmp_path)  # exists but holds no bench modules
    (tmp_path / "bench_broken.py").write_text("import does_not_exist_xyz\n")
    with pytest.raises(DataError):
        discover(tmp_path)


def test_default_bench_dir_is_the_repo_benchmarks():
    assert default_bench_dir().name == "benchmarks"
    assert (default_bench_dir() / "bench_figure4.py").exists()


# -- timing statistics -------------------------------------------------

def test_bench_result_statistics_golden():
    result = BenchResult(name="g", times=(0.010, 0.013, 0.011, 0.030, 0.012))
    assert result.min == 0.010
    assert result.median == 0.012
    # MAD around the median 0.012: |devs| = (2,1,1,18,0) ms -> median 1 ms
    assert result.mad == pytest.approx(0.001)
    assert result.to_row() == {
        "min": 0.010, "median": 0.012,
        "mad": pytest.approx(0.001), "repeats": 5,
    }


def test_run_case_with_fake_timer_counts_warmup_and_repeats():
    calls = []
    ticks = iter(range(100))

    case = BenchCase(name="fake", path=None,
                     func=lambda: calls.append(1))
    result = run_case(case, repeats=3, warmup=2,
                      timer=lambda: float(next(ticks)))
    assert len(calls) == 5  # 2 warmup + 3 timed
    assert result.times == (1.0, 1.0, 1.0)  # consecutive fake ticks
    assert result.mad == 0.0


def test_run_case_validates_arguments():
    case = BenchCase(name="x", path=None, func=lambda: None)
    with pytest.raises(DomainError):
        run_case(case, repeats=0)
    with pytest.raises(DomainError):
        run_case(case, warmup=-1)


def test_run_suite_progress_callback():
    seen = []
    cases = [BenchCase(name=n, path=None, func=lambda: None)
             for n in ("a", "b")]
    results = run_suite(cases, repeats=2, warmup=0, progress=seen.append)
    assert [r.name for r in results] == ["a", "b"]
    assert seen == results


# -- report schema -----------------------------------------------------

def report_of(**benches) -> dict:
    return make_report(benches, repeats=5, warmup=1)


def test_make_report_shape_and_environment():
    doc = report_of(beta={"min": 0.1, "median": 0.11, "mad": 0.001,
                          "repeats": 5},
                    alpha={"min": 0.2, "median": 0.21, "mad": 0.002,
                           "repeats": 5})
    assert doc["schema"] == SCHEMA_ID
    assert list(doc["benches"]) == ["alpha", "beta"]  # name-sorted
    assert doc["repeats"] == 5 and doc["warmup"] == 1
    env = doc["environment"]
    assert set(env) >= {"git_sha", "python", "platform"}
    assert env == bench_environment()
    validate_report(doc, where="fresh report")


def test_report_roundtrip_via_file(tmp_path):
    doc = report_of(alpha={"min": 0.1, "median": 0.11, "mad": 0.0,
                           "repeats": 3})
    path = tmp_path / "out" / "report.json"
    write_report(path, doc)
    assert load_report(path) == doc


def test_validate_report_rejects_malformed():
    good_row = {"min": 0.1, "median": 0.11, "mad": 0.0, "repeats": 3}
    with pytest.raises(DataError):
        validate_report({"schema": "other/1", "benches": {}}, where="t")
    with pytest.raises(DataError):
        validate_report({"schema": SCHEMA_ID}, where="t")
    doc = report_of(alpha=good_row)
    doc["benches"]["alpha"] = {"min": 0.1}  # missing keys
    with pytest.raises(DataError):
        validate_report(doc, where="t")
    with pytest.raises(DataError):
        make_report({"alpha": {"min": 0.1, "median": math.nan,
                               "mad": 0.0, "repeats": 3}},
                    repeats=3, warmup=0)


def test_load_report_missing_file(tmp_path):
    with pytest.raises(DataError):
        load_report(tmp_path / "absent.json")
