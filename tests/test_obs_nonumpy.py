"""The telemetry/exposition stack must work with NumPy entirely absent.

The obs package is stdlib-only by design: a scrape endpoint or a
pooled-worker payload must not drag the numeric stack into a process
that only forwards telemetry. This file loads ``repro.obs`` under an
import hook that *blocks* ``numpy`` — with synthetic ``repro`` /
``repro.report`` package stubs so the package ``__init__`` (which
imports the NumPy-backed model modules) never runs — then exercises
the propagation round trip and the Prometheus render/parse path.

Like ``test_engine_nonumpy.py``, every import here is lazy so the CI
``no-numpy`` job can run this file on a stdlib-only interpreter.
"""

import importlib
import sys
import types
from pathlib import Path

import pytest

SRC = Path(__file__).resolve().parent.parent / "src"


class _NumpyBlocker:
    """Meta-path hook that refuses every ``numpy`` import."""

    def find_spec(self, name, path=None, target=None):
        if name == "numpy" or name.startswith("numpy."):
            raise ImportError(f"{name} is blocked for this test")
        return None


def _load_obs_without_numpy():
    """Import ``repro.obs`` in a world where ``import numpy`` fails.

    ``repro/__init__.py`` imports the whole model stack, so the parent
    packages are replaced by bare path-only stubs: submodule imports
    (``repro.errors``, ``repro.report.tables``) resolve normally from
    the source tree, but no package initialiser ever pulls in NumPy.
    """
    blocker = _NumpyBlocker()
    hidden = {name: sys.modules.pop(name) for name in list(sys.modules)
              if name.split(".")[0] in ("numpy", "repro")}
    sys.meta_path.insert(0, blocker)
    repro_stub = types.ModuleType("repro")
    repro_stub.__path__ = [str(SRC / "repro")]
    report_stub = types.ModuleType("repro.report")
    report_stub.__path__ = [str(SRC / "repro" / "report")]
    sys.modules["repro"] = repro_stub
    sys.modules["repro.report"] = report_stub
    try:
        return importlib.import_module("repro.obs")
    finally:
        sys.meta_path.remove(blocker)
        for name in list(sys.modules):
            if name.split(".")[0] == "repro":
                del sys.modules[name]
        sys.modules.update(hidden)


@pytest.fixture(scope="module")
def nobs():
    return _load_obs_without_numpy()


@pytest.fixture(autouse=True)
def clean(nobs):
    nobs.disable()
    nobs.reset()
    yield
    nobs.disable()
    nobs.reset()


def test_loads_without_numpy(nobs):
    assert "numpy" not in sys.modules or True  # loading itself is the test
    assert callable(nobs.capture_context)
    assert callable(nobs.render_prometheus)


def test_propagation_round_trip(nobs):
    nobs.enable()
    with nobs.span("parent") as parent:
        ctx = nobs.capture_context()
    nobs.disable()

    with nobs.WorkerTelemetry(ctx) as wt:
        with nobs.span("worker.chunk", chunk=0):
            nobs.inc("worker_points_total", 11.0, labels={"backend": "py"})
    payload = wt.payload
    assert payload.pid > 0
    assert payload.parent_span_id == parent.span_id

    nobs.enable()
    nobs.merge_payload(payload)
    merged = {sp.name: sp for sp in nobs.get_tracer().spans}
    assert merged["worker.chunk"].parent_id == parent.span_id
    key = 'worker_points_total{backend="py"}'
    assert nobs.get_registry().counters[key].value == 11.0


def test_render_parse_round_trip(nobs):
    nobs.enable()
    nobs.inc("scrapes_total", 2.0, labels={"job": "nonumpy"})
    nobs.observe("payload_bytes", 512.0)
    text = nobs.render_prometheus()
    samples = {s["name"]: s for s in nobs.parse_prometheus(text)}
    assert samples["scrapes_total"]["value"] == 2.0
    assert samples["scrapes_total"]["labels"] == {"job": "nonumpy"}
    assert samples["payload_bytes_count"]["value"] == 1.0


def test_bridge_is_a_noop_without_the_engine(nobs):
    # The engine imports NumPy, which is blocked: bridging must quietly
    # skip rather than fail a scrape on a telemetry-only interpreter.
    # The bridge imports the engine lazily at *call* time, so the
    # numpy-less world has to be rebuilt around the call itself.
    blocker = _NumpyBlocker()
    hidden = {name: sys.modules.pop(name) for name in list(sys.modules)
              if name.split(".")[0] in ("numpy", "repro")}
    sys.meta_path.insert(0, blocker)
    repro_stub = types.ModuleType("repro")
    repro_stub.__path__ = [str(SRC / "repro")]
    sys.modules["repro"] = repro_stub
    try:
        reg = nobs.MetricsRegistry()
        nobs.bridge_engine_metrics(reg)
        assert reg.is_empty()
    finally:
        sys.meta_path.remove(blocker)
        for name in list(sys.modules):
            if name.split(".")[0] == "repro":
                del sys.modules[name]
        sys.modules.update(hidden)


def test_snapshot_bundle_without_numpy(nobs, tmp_path):
    nobs.enable()
    with nobs.span("nonumpy.root"):
        nobs.inc("bundle_total")
    nobs.disable()
    paths = nobs.write_snapshot(tmp_path / "bundle")
    assert all(p.exists() for p in paths.values())
    assert "bundle_total 1" in paths["metrics"].read_text()


def test_run_history_store_without_numpy(nobs, tmp_path):
    # The persistence substrate is sqlite3 + json: record, query, drift,
    # and dashboard rendering must all run on a stdlib-only interpreter.
    with nobs.HistoryStore(tmp_path / "runs.sqlite") as store:
        for i in range(6):
            reg = nobs.MetricsRegistry()
            reg.counter("scrapes_total").inc(10 if i < 5 else 100)
            store.record_run("nonumpy", wall_time_s=0.5, backend="python",
                             registry=reg, supervision={})
        series = store.series("scrapes_total")
        assert [p.value for p in series][-1] == 100.0
        report = nobs.detect_drift(store, min_runs=5)
        assert {v.key for v in report.flagged} >= {"scrapes_total"}
        html = nobs.render_html_dashboard(store, drift=report)
        assert "<svg" in html and 'class="drift"' in html
