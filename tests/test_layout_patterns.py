"""Repetitive-pattern extraction tests (the ref-[33] substitute)."""

import pytest

from repro.errors import LayoutError
from repro.layout import (
    Rect,
    extract_patterns,
    memory_array,
    random_logic_layout,
    regular_fabric,
)


class TestBasicExtraction:
    def test_identical_windows_one_pattern(self):
        # Two identical 4x4 tiles side by side on an 4-window grid.
        rects = [Rect("m1", 0, 0, 2, 2), Rect("m1", 4, 0, 6, 2)]
        lib = extract_patterns(rects, window_size=4)
        nonempty = [p for p in lib.patterns if not p.is_empty]
        assert len(nonempty) == 1
        assert nonempty[0].multiplicity == 2

    def test_different_windows_two_patterns(self):
        rects = [Rect("m1", 0, 0, 2, 2), Rect("m1", 5, 1, 6, 2)]
        lib = extract_patterns(rects, window_size=4)
        assert lib.n_unique == 2

    def test_translation_invariance(self):
        # The same geometry shifted by a whole window pitch matches.
        base = [Rect("poly", 1, 1, 3, 3)]
        shifted = [r.translated(8, 0) for r in base]
        lib = extract_patterns(base + shifted, window_size=8)
        assert lib.n_unique == 1

    def test_layers_distinguish_patterns(self):
        rects = [Rect("m1", 0, 0, 2, 2), Rect("m2", 4, 0, 6, 2)]
        lib = extract_patterns(rects, window_size=4)
        assert lib.n_unique == 2

    def test_straddling_rect_is_clipped_per_window(self):
        # One rect spanning two windows yields two half-patterns...
        rects = [Rect("m1", 0, 0, 8, 2)]
        lib = extract_patterns(rects, window_size=4)
        # ...which are identical (each window sees a full-width strip).
        assert lib.n_unique == 1
        assert lib.n_occupied_windows == 2

    def test_empty_layout_raises(self):
        with pytest.raises(LayoutError):
            extract_patterns([], window_size=4)

    def test_window_size_validated(self):
        with pytest.raises(Exception):
            extract_patterns([Rect("m1", 0, 0, 1, 1)], window_size=0)


class TestLibraryMetrics:
    def test_window_accounting(self):
        lib = extract_patterns([Rect("m1", 0, 0, 2, 2), Rect("m1", 8, 8, 10, 10)],
                               window_size=4)
        assert lib.n_windows == 9  # 3x3 grid over the 10x10 bbox
        assert lib.n_occupied_windows == 2

    def test_regularity_of_perfect_array(self):
        mem = memory_array(8, 8)
        cell_w = mem.instances[0].cell.width
        lib = extract_patterns(mem.flatten(), window_size=cell_w)
        assert lib.regularity_index() > 0.9

    def test_regularity_of_singleton(self):
        lib = extract_patterns([Rect("m1", 0, 0, 2, 2)], window_size=4)
        assert lib.regularity_index() == 0.0  # one-of-a-kind window

    def test_coverage_by_top(self):
        mem = memory_array(4, 4)
        lib = extract_patterns(mem.flatten(), window_size=12)
        # Perfectly tiled array: one pattern covers everything.
        assert lib.coverage_by_top(1) == pytest.approx(1.0)
        assert lib.coverage_by_top(100) == pytest.approx(1.0)

    def test_coverage_monotone_in_k(self):
        rnd = random_logic_layout(6, 6, seed=4)
        lib = extract_patterns(rnd.flatten(), window_size=24)
        covs = [lib.coverage_by_top(k) for k in (1, 4, 16, 64, 1000)]
        assert covs == sorted(covs)
        assert covs[-1] == pytest.approx(1.0)

    def test_multiplicity_histogram_sums_to_unique(self):
        rnd = random_logic_layout(6, 6, seed=2)
        lib = extract_patterns(rnd.flatten(), window_size=24)
        hist = lib.multiplicity_histogram()
        assert sum(hist.values()) == lib.n_unique

    def test_patterns_sorted_by_multiplicity(self):
        fab = regular_fabric(8, 8, library_size=3, seed=0)
        lib = extract_patterns(fab.flatten(), window_size=24)
        mults = [p.multiplicity for p in lib.patterns]
        assert mults == sorted(mults, reverse=True)

    def test_pattern_drawn_area(self):
        lib = extract_patterns([Rect("m1", 0, 0, 2, 3)], window_size=4)
        nonempty = [p for p in lib.patterns if not p.is_empty]
        assert nonempty[0].drawn_area == 6


class TestStyleContrast:
    """The §3.2 spectrum: memory << fabric << random logic in
    unique-pattern count."""

    def test_fabric_unique_count_tracks_library(self):
        for lib_size in (1, 2, 4):
            fab = regular_fabric(10, 10, library_size=lib_size, seed=0)
            lib = extract_patterns(fab.flatten(), window_size=24)
            assert lib.n_unique == lib_size

    def test_random_logic_vastly_more_patterns(self):
        fab = regular_fabric(10, 10, library_size=4, seed=0)
        rnd = random_logic_layout(10, 10, seed=0)
        lib_fab = extract_patterns(fab.flatten(), window_size=24)
        lib_rnd = extract_patterns(rnd.flatten(), window_size=24)
        assert lib_rnd.n_unique > 10 * lib_fab.n_unique

    def test_random_logic_low_regularity(self):
        rnd = random_logic_layout(10, 10, seed=0)
        lib = extract_patterns(rnd.flatten(), window_size=24)
        assert lib.regularity_index() < 0.3

    def test_fabric_full_regularity(self):
        fab = regular_fabric(10, 10, library_size=2, seed=0)
        lib = extract_patterns(fab.flatten(), window_size=24)
        assert lib.regularity_index() == pytest.approx(1.0)
