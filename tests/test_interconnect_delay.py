"""Wire-delay and prediction-error model tests."""

import pytest

from repro.errors import DomainError
from repro.interconnect import (
    PredictionErrorModel,
    WireTechnology,
    gate_delay_ps,
    wire_delay_ps,
    wire_dominance_length_um,
)


class TestWireTechnology:
    def test_reference_values(self):
        t = WireTechnology.at_node(0.18)
        assert t.r_per_um_ohm == pytest.approx(0.08)
        assert t.c_per_um_ff == pytest.approx(0.2)

    def test_resistance_grows_with_shrink(self):
        assert WireTechnology.at_node(0.09).r_per_um_ohm > \
            WireTechnology.at_node(0.18).r_per_um_ohm

    def test_capacitance_constant(self):
        assert WireTechnology.at_node(0.05).c_per_um_ff == pytest.approx(
            WireTechnology.at_node(0.5).c_per_um_ff)


class TestDelays:
    def test_gate_delay_scales_with_feature(self):
        assert gate_delay_ps(0.09) == pytest.approx(gate_delay_ps(0.18) / 2)

    def test_wire_delay_superlinear_in_length(self):
        t = WireTechnology.at_node(0.18)
        d1 = wire_delay_ps(t, 1000.0)
        d2 = wire_delay_ps(t, 2000.0)
        assert d2 > 2 * d1  # the RC^2 term

    def test_short_wire_driver_dominated(self):
        t = WireTechnology.at_node(0.18)
        # For tiny wires the delay ~ R_drv * C_L, nearly length-free.
        d1 = wire_delay_ps(t, 1.0)
        d2 = wire_delay_ps(t, 2.0)
        assert d2 / d1 < 1.2

    def test_rejects_zero_length(self):
        with pytest.raises(DomainError):
            wire_delay_ps(WireTechnology.at_node(0.18), 0.0)


class TestWireDominance:
    def test_crossover_exists(self):
        t = WireTechnology.at_node(0.18)
        l_star = wire_dominance_length_um(t)
        gate = gate_delay_ps(0.18)
        assert wire_delay_ps(t, l_star) == pytest.approx(gate, rel=1e-6)

    def test_crossover_shrinks_with_feature(self):
        # The nanometre problem: wires dominate at ever-shorter lengths.
        l_180 = wire_dominance_length_um(WireTechnology.at_node(0.18))
        l_90 = wire_dominance_length_um(WireTechnology.at_node(0.09))
        assert l_90 < l_180


class TestPredictionError:
    def test_reference_sigma(self):
        m = PredictionErrorModel()
        assert m.sigma(0.18) == pytest.approx(0.10)

    def test_grows_as_feature_shrinks(self):
        m = PredictionErrorModel()
        assert m.sigma(0.05) > m.sigma(0.18) > m.sigma(0.5)

    def test_default_exponent_linear(self):
        m = PredictionErrorModel()
        assert m.sigma(0.09) == pytest.approx(2 * m.sigma(0.18))

    def test_regularity_divides_error(self):
        m = PredictionErrorModel(regularity_gain=4.0)
        assert m.sigma(0.18, regularity=1.0) == pytest.approx(m.sigma(0.18) / 4.0)

    def test_partial_regularity_interpolates(self):
        m = PredictionErrorModel()
        mid = m.sigma(0.18, regularity=0.5)
        assert m.sigma(0.18, 1.0) < mid < m.sigma(0.18, 0.0)

    def test_regularity_domain(self):
        m = PredictionErrorModel()
        with pytest.raises(DomainError):
            m.sigma(0.18, regularity=1.5)
        with pytest.raises(DomainError):
            m.sigma(0.18, regularity=-0.1)

    def test_gain_below_one_rejected(self):
        with pytest.raises(ValueError):
            PredictionErrorModel(regularity_gain=0.5)

    def test_section32_composite_claim(self):
        # A regular layout at 50 nm can be MORE predictable than an
        # irregular one at 180 nm: regularity buys back the scaling loss.
        m = PredictionErrorModel()
        assert m.sigma(0.05, regularity=1.0) < m.sigma(0.18, regularity=0.0)
