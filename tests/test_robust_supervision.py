"""Unit coverage for :mod:`repro.robust.supervision`.

The supervisor is pool-agnostic by design, so everything here runs on
plain in-process :class:`concurrent.futures.Future` objects resolved
at submit time, an artificial clock, and a recorded no-op sleep — no
worker processes, no wall-clock waits, no flakiness. The real-pool
integration paths live in ``test_engine_supervision.py``.
"""

import json
from concurrent.futures import Future
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.errors import DomainError, ExecutionError
from repro.robust import (
    DEFAULT_CHUNK_RETRY_POLICY,
    ChaosPlan,
    CheckpointSink,
    ChunkFailure,
    ChunkRetryPolicy,
    ChunkSupervisor,
    CircuitBreaker,
    SupervisionReport,
)

np = pytest.importorskip("numpy")


def done_future(value):
    fut = Future()
    fut.set_result(value)
    return fut


def failed_future(exc):
    fut = Future()
    fut.set_exception(exc)
    return fut


class FakeClock:
    """Monotonic stub advancing a fixed step per call."""

    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        self.now += self.step
        return self.now


class Harness:
    """A scripted substrate: per-(chunk, attempt) future factories."""

    def __init__(self, script, policy, *, breaker=None, step=1.0):
        self.script = script
        self.submits = []
        self.restarts = 0
        self.locals = []
        self.events = []
        self.sleeps = []
        self.clock = FakeClock(step)
        self.supervisor = ChunkSupervisor(
            policy=policy, breaker=breaker,
            submit=self._submit, restart=self._restart,
            local_eval=self._local_eval, observer=self._observe,
            clock=self.clock, sleep=self.sleeps.append, where="test.harness")

    def _submit(self, index, attempt):
        self.submits.append((index, attempt))
        factory = self.script.get((index, attempt))
        if factory is None:
            return done_future(f"ok-{index}")
        return factory()

    def _restart(self):
        self.restarts += 1

    def _local_eval(self, index):
        self.locals.append(index)
        return f"local-{index}"

    def _observe(self, event, **info):
        self.events.append((event, info))


FAST = ChunkRetryPolicy(backoff_s=0.0, breaker_threshold=100)


class TestChunkRetryPolicy:
    def test_defaults_are_sane(self):
        policy = DEFAULT_CHUNK_RETRY_POLICY
        assert policy.max_retries_per_chunk >= 1
        assert policy.deadline_s is None
        assert policy.breaker_threshold >= 1

    @pytest.mark.parametrize("kwargs", [
        {"max_retries_per_chunk": -1},
        {"max_total_retries": -1},
        {"deadline_s": 0.0},
        {"deadline_s": -1.0},
        {"backoff_s": -0.1},
        {"backoff_growth": 0.5},
        {"max_backoff_s": -1.0},
        {"breaker_threshold": 0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(DomainError):
            ChunkRetryPolicy(**kwargs)

    def test_backoff_schedule_grows_and_caps(self):
        policy = ChunkRetryPolicy(backoff_s=0.1, backoff_growth=2.0,
                                  max_backoff_s=0.35)
        assert policy.backoff_for(0) == pytest.approx(0.1)
        assert policy.backoff_for(1) == pytest.approx(0.2)
        assert policy.backoff_for(2) == pytest.approx(0.35)
        assert policy.backoff_for(10) == pytest.approx(0.35)

    def test_zero_backoff_stays_zero(self):
        policy = ChunkRetryPolicy(backoff_s=0.0)
        assert policy.backoff_for(5) == 0.0


class TestCircuitBreaker:
    def test_opens_at_threshold(self):
        breaker = CircuitBreaker(3)
        assert not breaker.record_failure()
        assert not breaker.record_failure()
        assert breaker.record_failure()
        assert breaker.open and breaker.state == "open"
        assert breaker.openings == 1
        # Further failures do not re-open.
        assert not breaker.record_failure()
        assert breaker.openings == 1

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(2)
        breaker.record_failure()
        breaker.record_success()
        assert breaker.consecutive_failures == 0
        breaker.record_failure()
        assert not breaker.open

    def test_open_is_sticky_until_reset(self):
        breaker = CircuitBreaker(1)
        breaker.record_failure()
        breaker.record_success()
        assert breaker.open
        breaker.reset()
        assert breaker.state == "closed"
        assert breaker.consecutive_failures == 0

    def test_threshold_validated(self):
        with pytest.raises(DomainError):
            CircuitBreaker(0)


class TestChaosPlan:
    def test_mode_by_index_and_attempt(self):
        plan = ChaosPlan(kill_chunks=(0,), hang_chunks=(1,),
                         corrupt_chunks=(2,), fail_attempts=2)
        assert plan.mode_for(0, 0) == "kill"
        assert plan.mode_for(1, 1) == "hang"
        assert plan.mode_for(2, 0) == "corrupt"
        assert plan.mode_for(0, 2) is None   # attempts exhausted
        assert plan.mode_for(3, 0) is None   # unlisted chunk

    def test_overlapping_modes_rejected(self):
        with pytest.raises(DomainError):
            ChaosPlan(kill_chunks=(1,), hang_chunks=(1,))

    def test_validation(self):
        with pytest.raises(DomainError):
            ChaosPlan(fail_attempts=-1)
        with pytest.raises(DomainError):
            ChaosPlan(hang_s=-1.0)

    def test_corrupt_values_drops_a_point(self):
        values = np.arange(6.0)
        assert ChaosPlan.corrupt_values(values).shape == (5,)
        multi = np.arange(12.0).reshape(2, 6)
        assert ChaosPlan.corrupt_values(multi).shape == (2, 5)

    def test_inject_clean_attempt_is_noop(self):
        plan = ChaosPlan(corrupt_chunks=(1,))
        assert plan.inject(0, 0) is None
        assert plan.inject(1, 1) is None
        assert plan.inject(1, 0) == "corrupt"

    def test_plan_pickles(self):
        import pickle
        plan = ChaosPlan(kill_chunks=(0, 2), fail_attempts=3)
        assert pickle.loads(pickle.dumps(plan)) == plan


class TestSupervisorCleanPath:
    def test_all_clean_one_cycle_each(self):
        h = Harness({}, FAST)
        results, report = h.supervisor.run(range(4))
        assert results == {i: f"ok-{i}" for i in range(4)}
        assert report == SupervisionReport(n_chunks=4)
        assert not report.faulted
        assert h.restarts == 0 and h.locals == []
        assert sorted(h.submits) == [(i, 0) for i in range(4)]

    def test_on_result_fires_per_completed_chunk(self):
        h = Harness({}, FAST)
        seen = []
        h.supervisor.run(range(3), on_result=lambda i, v: seen.append(i))
        assert sorted(seen) == [0, 1, 2]

    def test_preloaded_chunks_never_submitted(self):
        h = Harness({}, FAST)
        seen = []
        results, report = h.supervisor.run(
            range(3), preloaded={1: "from-disk"},
            on_result=lambda i, v: seen.append(i))
        assert results[1] == "from-disk"
        assert report.preloaded == (1,)
        assert all(index != 1 for index, _ in h.submits)
        assert 1 not in seen  # preloaded chunks are not re-persisted


class TestSupervisorCrashRecovery:
    def test_crash_restarts_pool_and_retries(self):
        script = {(1, 0): lambda: failed_future(BrokenProcessPool("boom"))}
        h = Harness(script, FAST)
        results, report = h.supervisor.run(range(3))
        assert results[1] == "ok-1"
        assert report.restarts == 1
        assert [f.reason for f in report.retries] == ["crash"]
        assert report.retries[0] == ChunkFailure(
            chunk=1, attempt=1, reason="crash", message="boom")
        assert (1, 1) in h.submits
        assert ("restart", {}) in h.events

    def test_retry_budget_exhaustion_raises_execution_error(self):
        script = {(0, a): lambda: failed_future(BrokenProcessPool("boom"))
                  for a in range(5)}
        policy = ChunkRetryPolicy(max_retries_per_chunk=1, backoff_s=0.0,
                                  breaker_threshold=100)
        h = Harness(script, policy)
        with pytest.raises(ExecutionError) as err:
            h.supervisor.run(range(2))
        assert len(err.value.failures) == 2
        assert all(f.chunk == 0 for f in err.value.failures)

    def test_exhaustion_degrades_when_allowed(self):
        script = {(0, a): lambda: failed_future(BrokenProcessPool("boom"))
                  for a in range(5)}
        policy = ChunkRetryPolicy(max_retries_per_chunk=1, backoff_s=0.0,
                                  breaker_threshold=100)
        h = Harness(script, policy)
        results, report = h.supervisor.run(range(2), allow_degraded=True)
        assert results[0] == "local-0"
        assert results[1] == "ok-1"
        assert report.degraded == (0,)
        assert len(report.diagnostics) == 1
        assert "ExecutionError" in str(report.diagnostics[0])

    def test_total_retry_budget_spans_chunks(self):
        script = {(i, 0): lambda: failed_future(BrokenProcessPool("x"))
                  for i in range(4)}
        policy = ChunkRetryPolicy(max_retries_per_chunk=10,
                                  max_total_retries=2, backoff_s=0.0,
                                  breaker_threshold=100)
        h = Harness(script, policy)
        with pytest.raises(ExecutionError):
            h.supervisor.run(range(4))

    def test_backoff_sleeps_follow_schedule(self):
        script = {(0, 0): lambda: failed_future(BrokenProcessPool("x")),
                  (0, 1): lambda: failed_future(BrokenProcessPool("x"))}
        policy = ChunkRetryPolicy(backoff_s=0.1, backoff_growth=2.0,
                                  max_backoff_s=10.0, max_retries_per_chunk=5,
                                  breaker_threshold=100)
        h = Harness(script, policy)
        h.supervisor.run(range(1))
        assert h.sleeps == [pytest.approx(0.1), pytest.approx(0.2)]


class TestSupervisorCorruptResults:
    def _validating_supervisor(self, script, policy=FAST):
        h = Harness(script, policy)
        h.supervisor._validate = (
            lambda index, values: "bad shape" if values == "corrupt" else None)
        return h

    def test_corrupt_result_retried_without_restart(self):
        script = {(2, 0): lambda: done_future("corrupt")}
        h = self._validating_supervisor(script)
        results, report = h.supervisor.run(range(3))
        assert results[2] == "ok-2"
        assert [f.reason for f in report.retries] == ["corrupt"]
        assert report.restarts == 0

    def test_extract_exception_is_corruption(self):
        h = Harness({}, FAST)
        calls = {"n": 0}

        def extract(index, raw):
            calls["n"] += 1
            if calls["n"] == 1:
                raise ValueError("undecodable")
            return raw
        h.supervisor._extract = extract
        results, report = h.supervisor.run(range(1))
        assert results[0] == "ok-0"
        assert [f.reason for f in report.retries] == ["corrupt"]


class TestSupervisorDeadlines:
    def test_expired_deadline_is_timeout_fault(self):
        # The scripted future for (0, 0) never resolves; the fake clock
        # advances one second per call, so the 0.5 s deadline has expired
        # by the first post-wait check and the chunk re-dispatches.
        script = {(0, 0): Future}
        policy = ChunkRetryPolicy(deadline_s=0.5, backoff_s=0.0,
                                  breaker_threshold=100)
        h = Harness(script, policy)
        results, report = h.supervisor.run(range(2))
        assert results[0] == "ok-0"
        assert "timeout" in [f.reason for f in report.retries]
        assert report.restarts >= 1

    def test_collateral_chunks_keep_their_attempt_count(self):
        # Chunk 0 times out; chunk 1 is still pending (unresolved) and is
        # re-dispatched as collateral at attempt 0, not attempt 1.
        script = {(0, 0): Future, (1, 0): Future}
        policy = ChunkRetryPolicy(deadline_s=0.5, backoff_s=0.0,
                                  breaker_threshold=100)
        h = Harness(script, policy)
        results, report = h.supervisor.run(range(2))
        assert results == {0: "ok-0", 1: "ok-1"}
        retried = {f.chunk for f in report.retries}
        # Both timed out in the same cycle on the fake clock, or 1 rode
        # along as collateral: either way no chunk exceeded attempt 1.
        assert retried <= {0, 1}
        assert max(f.attempt for f in report.retries) == 1


class TestSupervisorBreaker:
    def test_breaker_opens_and_degrades_everything(self):
        script = {(i, a): lambda: failed_future(BrokenProcessPool("x"))
                  for i in range(3) for a in range(5)}
        policy = ChunkRetryPolicy(max_retries_per_chunk=10, backoff_s=0.0,
                                  breaker_threshold=2)
        h = Harness(script, policy)
        results, report = h.supervisor.run(range(3), allow_degraded=True)
        assert results == {i: f"local-{i}" for i in range(3)}
        assert report.breaker_open
        assert sorted(report.degraded) == [0, 1, 2]
        assert ("breaker_open", {}) in h.events

    def test_breaker_open_raise_policy(self):
        script = {(i, a): lambda: failed_future(BrokenProcessPool("x"))
                  for i in range(2) for a in range(5)}
        policy = ChunkRetryPolicy(max_retries_per_chunk=10, backoff_s=0.0,
                                  breaker_threshold=1)
        h = Harness(script, policy)
        with pytest.raises(ExecutionError) as err:
            h.supervisor.run(range(2))
        assert err.value.failures  # the fault history rides on the error

    def test_already_open_breaker_skips_pool_entirely(self):
        breaker = CircuitBreaker(1)
        breaker.record_failure()
        h = Harness({}, FAST, breaker=breaker)
        results, report = h.supervisor.run(range(2), allow_degraded=True)
        assert h.submits == []
        assert results == {0: "local-0", 1: "local-1"}
        assert report.breaker_open and report.degraded == (0, 1)

    def test_clean_cycles_heal_consecutive_count(self):
        breaker = CircuitBreaker(2)
        script = {(0, 0): lambda: failed_future(BrokenProcessPool("x"))}
        h = Harness(script, FAST, breaker=breaker)
        h.supervisor.run(range(1))
        # One fault then a clean retry: the success closed the window.
        assert breaker.consecutive_failures == 0
        assert not breaker.open


class TestCheckpointSink:
    def test_save_load_round_trip(self, tmp_path):
        sink = CheckpointSink(tmp_path)
        values = np.linspace(0, 1, 7)
        sink.begin("fp1", n_chunks=3, points=21)
        sink.save("fp1", 0, values)
        sink.save("fp1", 2, values * 2)
        loaded = sink.load("fp1", 3)
        assert sorted(loaded) == [0, 2]
        np.testing.assert_array_equal(loaded[0], values)
        np.testing.assert_array_equal(loaded[2], values * 2)
        assert sink.saved == 2 and sink.loaded == 2

    def test_fingerprints_are_isolated(self, tmp_path):
        sink = CheckpointSink(tmp_path)
        sink.save("fp-a", 0, np.zeros(3))
        assert sink.load("fp-b", 1) == {}
        assert sink.chunks_on_disk("fp-a") == (0,)
        assert sink.chunks_on_disk("fp-b") == ()

    def test_meta_written_once(self, tmp_path):
        sink = CheckpointSink(tmp_path)
        sink.begin("fp1", n_chunks=4, points=100)
        meta_path = tmp_path / "fp1" / "meta.json"
        meta = json.loads(meta_path.read_text())
        assert meta["n_chunks"] == 4 and meta["points"] == 100
        assert meta["format"].startswith("repro-checkpoint/")
        sink.begin("fp1", n_chunks=4, points=100)  # idempotent
        assert json.loads(meta_path.read_text()) == meta

    def test_torn_chunk_file_is_dropped(self, tmp_path):
        sink = CheckpointSink(tmp_path)
        sink.save("fp1", 0, np.ones(4))
        bad = tmp_path / "fp1" / "chunk_00001.npy"
        bad.write_bytes(b"this is not an npy file")
        loaded = sink.load("fp1", 2)
        assert sorted(loaded) == [0]
        assert not bad.exists()  # deleted so the chunk re-evaluates

    def test_drop_and_clear(self, tmp_path):
        sink = CheckpointSink(tmp_path)
        sink.save("fp1", 0, np.ones(2))
        sink.save("fp1", 1, np.ones(2))
        assert sink.drop("fp1", 0)
        assert not sink.drop("fp1", 0)
        assert sink.chunks_on_disk("fp1") == (1,)
        sink.clear("fp1")
        assert sink.chunks_on_disk("fp1") == ()
        assert not (tmp_path / "fp1").exists()


class TestGridFingerprint:
    def test_fingerprint_depends_on_all_inputs(self):
        from repro.engine import grid_fingerprint
        grid = np.linspace(0, 1, 10)
        base = grid_fingerprint(("tok",), grid, 4)
        assert base == grid_fingerprint(("tok",), grid.copy(), 4)
        assert base != grid_fingerprint(("tok2",), grid, 4)
        assert base != grid_fingerprint(("tok",), grid * 2, 4)
        assert base != grid_fingerprint(("tok",), grid, 5)
        assert isinstance(base, str) and len(base) == 64
