"""Die-per-wafer geometry — the ``N_ch`` of eq. (1).

Eq. (1) prices a transistor as ``C_w / (N_tr · N_ch · Y)``; ``N_ch`` is
the number of chip sites on the wafer. This module provides three
estimators, in increasing fidelity:

* :func:`gross_die_area_ratio` — the zeroth-order ``A_usable/A_die``;
* :func:`gross_die_classic` — the classic analytic correction
  ``π r²/A − π d/√(2A)`` that accounts for edge loss;
* :func:`gross_die_exact` — an exact grid placement: counts the
  rectangular sites (die + scribe) whose four corners all fall inside
  the usable disc, maximising over grid offsets.

The exact count matters at the paper's die sizes: a 3.4 cm² die on a
200 mm wafer loses ~15 % of the naive sites to the disc boundary.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import DomainError
from ..validation import check_positive
from .specs import WaferSpec

__all__ = [
    "gross_die_area_ratio",
    "gross_die_classic",
    "gross_die_exact",
    "gross_die_per_wafer",
    "die_dimensions_cm",
]


def die_dimensions_cm(die_area_cm2: float, aspect_ratio: float = 1.0) -> tuple[float, float]:
    """Width and height (cm) of a rectangular die of given area.

    ``aspect_ratio`` is width/height; 1.0 gives a square die, the usual
    assumption when only the area is published (as in Table A1).
    """
    die_area_cm2 = check_positive(die_area_cm2, "die_area_cm2")
    aspect_ratio = check_positive(aspect_ratio, "aspect_ratio")
    height = math.sqrt(die_area_cm2 / aspect_ratio)
    return aspect_ratio * height, height


def gross_die_area_ratio(wafer: WaferSpec, die_area_cm2: float) -> float:
    """Zeroth-order site count ``A_usable / A_die`` (no edge correction)."""
    die_area_cm2 = check_positive(die_area_cm2, "die_area_cm2")
    return wafer.usable_area_cm2 / die_area_cm2


def gross_die_classic(wafer: WaferSpec, die_area_cm2: float) -> float:
    """Classic analytic gross-die estimate.

    The widely used first-order edge correction:

        ``DPW = π r²/A − π·(2r)/√(2A)``

    with ``r`` the usable radius and ``A`` the die area. Accurate to a
    few per cent for dice much smaller than the wafer.
    """
    die_area_cm2 = check_positive(die_area_cm2, "die_area_cm2")
    r = wafer.usable_radius_cm
    estimate = math.pi * r**2 / die_area_cm2 - math.pi * (2 * r) / math.sqrt(2 * die_area_cm2)
    return max(estimate, 0.0)


def gross_die_exact(
    wafer: WaferSpec,
    die_area_cm2: float,
    aspect_ratio: float = 1.0,
    offsets: int = 8,
) -> int:
    """Exact grid-placement gross die count.

    Dice (plus scribe lanes) are stepped on a regular grid; a site
    counts when all four corners lie within the usable disc. The grid
    origin is swept over ``offsets × offsets`` sub-pitch positions and
    the best placement is returned, which is how steppers are actually
    programmed.

    Parameters
    ----------
    wafer:
        Wafer format (supplies usable radius and scribe width).
    die_area_cm2:
        Die area in cm².
    aspect_ratio:
        Die width/height (default square).
    offsets:
        Sub-pitch offset grid resolution per axis.

    Raises
    ------
    DomainError
        If the die (with scribe) cannot fit on the usable disc at all.
    """
    die_w, die_h = die_dimensions_cm(die_area_cm2, aspect_ratio)
    scribe = wafer.scribe_mm / 10.0  # mm -> cm
    pitch_x = die_w + scribe
    pitch_y = die_h + scribe
    r = wafer.usable_radius_cm
    if math.hypot(pitch_x, pitch_y) / 2.0 > r:
        raise DomainError(
            f"die of {die_area_cm2} cm^2 (pitch {pitch_x:.2f}x{pitch_y:.2f} cm) "
            f"does not fit on wafer {wafer.name}"
        )
    if offsets < 1:
        raise DomainError("offsets must be >= 1")

    n_x = int(math.ceil(2 * r / pitch_x)) + 2
    n_y = int(math.ceil(2 * r / pitch_y)) + 2
    ix = np.arange(-n_x, n_x + 1)
    iy = np.arange(-n_y, n_y + 1)
    gx, gy = np.meshgrid(ix * pitch_x, iy * pitch_y, indexing="ij")

    best = 0
    r2 = r * r
    for ox in np.linspace(0.0, pitch_x, offsets, endpoint=False):
        for oy in np.linspace(0.0, pitch_y, offsets, endpoint=False):
            x0 = gx + ox
            y0 = gy + oy
            x1 = x0 + pitch_x
            y1 = y0 + pitch_y
            # all four corners inside the disc <=> the farthest corner is
            far_x = np.maximum(np.abs(x0), np.abs(x1))
            far_y = np.maximum(np.abs(y0), np.abs(y1))
            inside = far_x**2 + far_y**2 <= r2
            count = int(np.count_nonzero(inside))
            if count > best:
                best = count
    return best


def gross_die_per_wafer(
    wafer: WaferSpec,
    die_area_cm2: float,
    method: str = "exact",
    aspect_ratio: float = 1.0,
) -> float:
    """Gross die per wafer by the chosen method.

    ``method`` is ``"exact"`` (default), ``"classic"`` or ``"ratio"``.
    """
    if method == "exact":
        return float(gross_die_exact(wafer, die_area_cm2, aspect_ratio))
    if method == "classic":
        return gross_die_classic(wafer, die_area_cm2)
    if method == "ratio":
        return gross_die_area_ratio(wafer, die_area_cm2)
    raise DomainError(f"unknown gross-die method {method!r}; use exact/classic/ratio")
