"""Wafer manufacturing cost model — the ``Cm_sq(A_w, λ, N_w)`` of eq. (7).

The paper's generalized model makes the per-cm² manufacturing cost a
function of wafer diameter, minimum feature size, process maturity and,
"first of all", volume, citing Maly/Jacobs/Kersch (IEDM-93) [30]. We do
not have that proprietary cost breakdown, so this module substitutes a
parameterized model with the same qualitative dependencies:

* **feature size** — each linear shrink adds litho/process steps; cost
  per cm² grows as ``(λ_ref/λ)^feature_exponent``;
* **wafer size** — bigger wafers cost more per wafer but *less per
  cm²* (equipment amortisation); captured by a mild negative area
  exponent;
* **volume** — fab fixed costs amortise over the wafer run; per-wafer
  cost falls towards an asymptote as ``N_w`` grows;
* **maturity** — an immature process spends more on metrology/rework;
  cost falls towards 1× with a learning constant.

The default parameters are anchored so a mature, high-volume 200 mm /
0.18 µm process costs the paper's **8 $/cm²** (§2.2.3). All factors are
exposed separately so benches can ablate them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..constants import MANUFACTURING_COST_PER_CM2_USD
from ..validation import check_fraction, check_nonnegative, check_positive
from .specs import WAFER_200MM, WaferSpec

__all__ = ["WaferCostModel", "DEFAULT_WAFER_COST_MODEL"]


@dataclass(frozen=True)
class WaferCostModel:
    """Per-cm² wafer cost as a function of (wafer, λ, volume, maturity).

    The model is multiplicative around a calibrated anchor point:

        ``Cm_sq = base · f_feature(λ) · f_wafer(A_w) · f_volume(N_w) · f_maturity(m)``

    Attributes
    ----------
    base_cost_per_cm2:
        Cost at the anchor (reference wafer, reference λ, mature
        process, asymptotic volume). Default 8 $/cm² — the paper's
        §2.2.3 number.
    reference_feature_um:
        λ at which ``f_feature = 1``. Default 0.18 µm (the 1999 node).
    feature_exponent:
        Cost growth per linear shrink: ``f = (λ_ref/λ)^p``. Default 0.9
        — roughly "cost per cm² doubles every two nodes", consistent
        with the paper's warning that assuming *no* increase in
        ``C_sq`` is "highly unlikely".
    reference_wafer:
        Wafer at which ``f_wafer = 1`` (default 200 mm).
    wafer_area_exponent:
        ``f_wafer = (A_w/A_ref)^q`` with small negative ``q`` (default
        −0.1): 300 mm silicon is slightly cheaper per cm².
    volume_overhead:
        Extra cost fraction at a one-wafer run; decays as
        ``1 + overhead/(1 + N_w/volume_scale)``. Default 1.5 (a pilot
        run costs 2.5× per cm²).
    volume_scale:
        Wafer count at which half the volume overhead is amortised.
        Default 2000 wafers.
    maturity_overhead:
        Extra cost fraction of a brand-new process (maturity 0).
        Default 0.6.
    """

    base_cost_per_cm2: float = MANUFACTURING_COST_PER_CM2_USD
    reference_feature_um: float = 0.18
    feature_exponent: float = 0.9
    reference_wafer: WaferSpec = WAFER_200MM
    wafer_area_exponent: float = -0.1
    volume_overhead: float = 1.5
    volume_scale: float = 2000.0
    maturity_overhead: float = 0.6

    def __post_init__(self) -> None:
        check_positive(self.base_cost_per_cm2, "base_cost_per_cm2")
        check_positive(self.reference_feature_um, "reference_feature_um")
        check_nonnegative(self.feature_exponent, "feature_exponent")
        check_nonnegative(self.volume_overhead, "volume_overhead")
        check_positive(self.volume_scale, "volume_scale")
        check_nonnegative(self.maturity_overhead, "maturity_overhead")

    # -- individual factors -------------------------------------------------
    def feature_factor(self, feature_um) -> float:
        """Cost multiplier for feature size λ (1.0 at the reference λ)."""
        feature_um = check_positive(feature_um, "feature_um")
        return (self.reference_feature_um / feature_um) ** self.feature_exponent

    def wafer_factor(self, wafer: WaferSpec) -> float:
        """Cost multiplier for wafer format (1.0 at the reference wafer)."""
        return (wafer.area_cm2 / self.reference_wafer.area_cm2) ** self.wafer_area_exponent

    def volume_factor(self, n_wafers) -> float:
        """Cost multiplier for run volume (→ 1.0 as ``N_w → ∞``)."""
        n_wafers = check_positive(n_wafers, "n_wafers")
        return 1.0 + self.volume_overhead / (1.0 + np.asarray(n_wafers, dtype=float) / self.volume_scale)

    def maturity_factor(self, maturity) -> float:
        """Cost multiplier for process maturity ∈ (0, 1] (1.0 when mature)."""
        maturity = check_fraction(maturity, "maturity")
        return 1.0 + self.maturity_overhead * (1.0 - maturity)

    # -- composite -----------------------------------------------------------
    def cost_per_cm2(
        self,
        feature_um: float,
        wafer: WaferSpec | None = None,
        n_wafers: float = 1.0e9,
        maturity: float = 1.0,
    ):
        """``Cm_sq`` in $/cm² for the given operating point.

        Defaults reproduce the paper's optimistic scenario: mature
        process, asymptotic volume, 200 mm wafers — 8 $/cm² at 0.18 µm.
        """
        wafer = wafer if wafer is not None else self.reference_wafer
        value = (
            self.base_cost_per_cm2
            * self.feature_factor(feature_um)
            * self.wafer_factor(wafer)
            * self.volume_factor(n_wafers)
            * self.maturity_factor(maturity)
        )
        return value if np.ndim(value) else float(value)

    def wafer_cost(
        self,
        feature_um: float,
        wafer: WaferSpec | None = None,
        n_wafers: float = 1.0e9,
        maturity: float = 1.0,
    ) -> float:
        """Cost of one fully processed wafer, ``C_w = Cm_sq · A_w`` ($)."""
        wafer = wafer if wafer is not None else self.reference_wafer
        return float(self.cost_per_cm2(feature_um, wafer, n_wafers, maturity) * wafer.area_cm2)


#: Model instance anchored to the paper's 8 $/cm² at 0.18 µm / 200 mm.
DEFAULT_WAFER_COST_MODEL = WaferCostModel()
