"""Wafer substrate: formats, die-per-wafer geometry, and wafer cost.

Supplies ``N_ch`` of eq. (1), ``A_w`` of eq. (5) and the
``Cm_sq(A_w, λ, N_w)`` dependency of eq. (7).
"""

from .specs import WAFER_150MM, WAFER_200MM, WAFER_300MM, WaferSpec, standard_wafers
from .geometry import (
    die_dimensions_cm,
    gross_die_area_ratio,
    gross_die_classic,
    gross_die_exact,
    gross_die_per_wafer,
)
from .cost import DEFAULT_WAFER_COST_MODEL, WaferCostModel

__all__ = [
    "WaferSpec",
    "WAFER_150MM",
    "WAFER_200MM",
    "WAFER_300MM",
    "standard_wafers",
    "die_dimensions_cm",
    "gross_die_area_ratio",
    "gross_die_classic",
    "gross_die_exact",
    "gross_die_per_wafer",
    "WaferCostModel",
    "DEFAULT_WAFER_COST_MODEL",
]
