"""Standard wafer formats.

Eq. (5) of the paper normalises design and mask costs by the fabricated
silicon ``N_w · A_w``; eq. (7) makes ``Cm_sq`` and ``Y`` functions of
the wafer area ``A_w``. This module supplies the standard formats of
the paper's era (150/200 mm in production, 300 mm ramping) plus the
geometric parameters needed to count dice: edge exclusion and scribe
(saw) lanes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import DomainError
from ..validation import check_nonnegative, check_positive

__all__ = ["WaferSpec", "WAFER_150MM", "WAFER_200MM", "WAFER_300MM", "standard_wafers"]


@dataclass(frozen=True)
class WaferSpec:
    """A wafer format.

    Attributes
    ----------
    name:
        Human-readable label, e.g. ``"200mm"``.
    diameter_mm:
        Physical wafer diameter in mm.
    edge_exclusion_mm:
        Radial band at the wafer edge where dice are not usable
        (handling, resist bead). Typical 3 mm.
    scribe_mm:
        Saw-lane width added around each die when stepping, in mm.
        Typical 0.1 mm (100 µm).
    """

    name: str
    diameter_mm: float
    edge_exclusion_mm: float = 3.0
    scribe_mm: float = 0.1

    def __post_init__(self) -> None:
        check_positive(self.diameter_mm, "diameter_mm")
        check_nonnegative(self.edge_exclusion_mm, "edge_exclusion_mm")
        check_nonnegative(self.scribe_mm, "scribe_mm")
        if 2 * self.edge_exclusion_mm >= self.diameter_mm:
            raise DomainError("edge exclusion leaves no usable wafer")

    @property
    def radius_cm(self) -> float:
        """Physical radius in cm."""
        return self.diameter_mm / 20.0

    @property
    def usable_radius_cm(self) -> float:
        """Radius of the printable region in cm (after edge exclusion)."""
        return (self.diameter_mm / 2.0 - self.edge_exclusion_mm) / 10.0

    @property
    def area_cm2(self) -> float:
        """Full wafer area ``A_w`` in cm² (used by eq. 5)."""
        return math.pi * self.radius_cm**2

    @property
    def usable_area_cm2(self) -> float:
        """Printable area in cm² (after edge exclusion)."""
        return math.pi * self.usable_radius_cm**2


WAFER_150MM = WaferSpec(name="150mm", diameter_mm=150.0)
WAFER_200MM = WaferSpec(name="200mm", diameter_mm=200.0)
WAFER_300MM = WaferSpec(name="300mm", diameter_mm=300.0)


def standard_wafers() -> list[WaferSpec]:
    """The standard formats, smallest first."""
    return [WAFER_150MM, WAFER_200MM, WAFER_300MM]
