"""The facade API — :class:`Scenario` in, :class:`ScenarioResult` out.

This module is the documented entry point for pricing designs with the
paper's eq.-(4) cost-model family. A :class:`Scenario` freezes one
operating point — the product (``N_tr``, node), the drawing density
``s_d``, the wafer run, and the yield/cost anchors — and

* :func:`evaluate` prices one scenario;
* :func:`evaluate_many` prices a batch, dispatching scenarios that
  share a cost model through one vectorized
  :mod:`repro.engine` call.

>>> from repro.api import Scenario, evaluate
>>> result = evaluate(Scenario(n_transistors=10e6, feature_um=0.18))
>>> round(result.die_cost_usd)  # doctest: +SKIP
66

The lower-level per-module entry points (``repro.cost``,
``repro.optimize``, ...) remain available for custom analyses; new
callers should start here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np

from ._compat import renamed_kwargs
from .constants import ASSUMED_YIELD, MANUFACTURING_COST_PER_CM2_USD
from .cost.total import PAPER_FIGURE4_MODEL, TotalCostModel
from .data.records import RoadmapNode
from .density.metrics import area_from_sd
from .engine import evaluate_grid, map_scalar
from .engine.kernels import OperatingPointsKernel
from .errors import DomainError, ReproError
from .obs import metrics as obs_metrics
from .obs.instrument import traced
from .robust.policy import ErrorPolicy
from .serve.schemas import (
    DiagnosticPayload,
    ErrorResponse,
    EvaluatedPoint,
    EvaluateRequest,
    EvaluateResponse,
    OptimalSdRequest,
    OptimalSdResponse,
    ParetoPoint,
    ParetoRequest,
    ParetoResponse,
    ScenarioPayload,
    SensitivityRequest,
    SensitivityResponse,
    SweepRequest,
    SweepResponse,
)
from .wafer.specs import WaferSpec

__all__ = [
    "Scenario",
    "ScenarioResult",
    "evaluate",
    "evaluate_many",
    # wire schemas (one surface with the HTTP layer; see repro.serve)
    "DiagnosticPayload",
    "ErrorResponse",
    "EvaluatedPoint",
    "EvaluateRequest",
    "EvaluateResponse",
    "OptimalSdRequest",
    "OptimalSdResponse",
    "ParetoPoint",
    "ParetoRequest",
    "ParetoResponse",
    "ScenarioPayload",
    "SensitivityRequest",
    "SensitivityResponse",
    "SweepRequest",
    "SweepResponse",
]


@dataclass(frozen=True)
class Scenario:
    """One frozen operating point of the eq.-(4) cost model.

    Attributes
    ----------
    n_transistors:
        Design size ``N_tr`` (transistors).
    feature_um:
        Technology node ``λ`` in µm.
    sd:
        Design decompression index ``s_d`` (eq. 2). Default 300 — the
        middle of the Table-A1 logic range.
    n_wafers:
        Production volume the development cost amortises over (eq. 5).
    yield_fraction:
        Functional yield ``Y`` in (0, 1].
    cost_per_cm2:
        Manufacturing cost ``C_sq`` ($/cm²).
    model:
        The :class:`~repro.cost.total.TotalCostModel` to price under;
        defaults to the paper's Figure-4 configuration.
    wafer:
        Optional wafer-format override; ``None`` keeps ``model.wafer``.
    label:
        Free-form tag carried through to the result (plot legends,
        report rows).

    The record performs no eager validation: infeasible values surface
    at evaluation time under the caller's :class:`ErrorPolicy`, exactly
    like the lower-level model calls.
    """

    n_transistors: float
    feature_um: float
    sd: float = 300.0
    n_wafers: float = 5_000.0
    yield_fraction: float = ASSUMED_YIELD
    cost_per_cm2: float = MANUFACTURING_COST_PER_CM2_USD
    model: TotalCostModel = PAPER_FIGURE4_MODEL
    wafer: WaferSpec | None = None
    label: str = ""

    @property
    def cost_model(self) -> TotalCostModel:
        """The effective model: ``model`` with the wafer override applied."""
        if self.wafer is None:
            return self.model
        return replace(self.model, wafer=self.wafer)

    @classmethod
    def from_node(cls, node: RoadmapNode, **overrides) -> "Scenario":
        """Build a scenario from an ITRS roadmap node.

        ``N_tr`` and the feature size come from the node; ``sd``
        defaults to the node's roadmap-implied density. Any
        :class:`Scenario` field can be overridden by keyword.
        """
        values = {
            "n_transistors": node.mpu_transistors_m * 1e6,
            "feature_um": node.feature_um,
            "sd": node.implied_sd(),
            "label": f"node-{node.year}",
        }
        values.update(overrides)
        return cls(**values)

    @renamed_kwargs(cm_sq="cost_per_cm2")
    def replace(self, **changes) -> "Scenario":
        """A copy with the given fields changed (sweep construction aid).

        Deprecated keyword spellings (``cm_sq``) are normalised through
        the same :func:`repro._compat.renamed_kwargs` shim as the rest
        of the public API, so the replace path honours the
        ``DeprecationWarning`` contract too.
        """
        return replace(self, **changes)

    # -- analysis methods (one per HTTP route; see repro.serve) ----------
    #
    # Each method delegates to the matching repro.optimize free function
    # with this scenario's operating point filled in. The parameter
    # names mirror the repro.serve request schemas field for field —
    # the API006 lint rule enforces the parity.

    def evaluate(self) -> "ScenarioResult":
        """Price this scenario (always ``RAISE``; failures propagate)."""
        return evaluate(self)

    def sweep(self, parameter: str = "sd", values=None,
              policy: ErrorPolicy = ErrorPolicy.RAISE):
        """Sweep one parameter's cost curve through this operating point.

        ``parameter="sd"`` runs :func:`repro.optimize.sd_sweep` over
        candidate densities (``values`` or the auto grid);
        ``parameter="n_wafers"`` runs
        :func:`repro.optimize.volume_sweep` over production volumes.
        Returns the :class:`repro.optimize.SweepResult`.
        """
        from .optimize import sd_sweep, volume_sweep
        if parameter == "sd":
            return sd_sweep(self.cost_model, self.n_transistors,
                            self.feature_um, self.n_wafers,
                            self.yield_fraction, self.cost_per_cm2,
                            sd_values=values, policy=policy)
        if parameter == "n_wafers":
            return volume_sweep(self.cost_model, self.sd, self.n_transistors,
                                self.feature_um, self.yield_fraction,
                                self.cost_per_cm2, n_wafers_values=values,
                                policy=policy)
        raise DomainError(
            f"cannot sweep parameter {parameter!r}; "
            "known: 'sd', 'n_wafers'")

    def pareto(self, values=None, policy: ErrorPolicy = ErrorPolicy.RAISE,
               diagnostics: list | None = None):
        """The non-dominated (area, cost, design budget) front.

        Evaluates candidate ``s_d`` values (``values`` or the auto
        grid) at this operating point and returns the Pareto front as a
        list of :class:`repro.optimize.DesignPoint` — empty when every
        candidate was infeasible under ``MASK`` (each dropped candidate
        lands in the optional ``diagnostics`` list).
        """
        from .optimize import evaluate_points, pareto_front
        points = evaluate_points(self.cost_model, self.n_transistors,
                                 self.feature_um, self.n_wafers,
                                 self.yield_fraction, self.cost_per_cm2,
                                 sd_values=values, policy=policy,
                                 diagnostics=diagnostics)
        if not points:
            return []
        return pareto_front(points)

    def sensitivity(self, parameters=None, rel_step: float = 0.05,
                    sd_max: float = 5000.0,
                    policy: ErrorPolicy = ErrorPolicy.RAISE) -> dict:
        """Optimal-cost elasticities of this operating point.

        Delegates to :func:`repro.optimize.parameter_elasticities`: for
        each parameter (default: all of them), the relative change of
        the *optimal* transistor cost per relative change of that
        parameter. NaN entries mark perturbed solves that failed under
        ``MASK``.
        """
        from .optimize import parameter_elasticities
        point = {"n_transistors": self.n_transistors,
                 "feature_um": self.feature_um, "n_wafers": self.n_wafers,
                 "yield_fraction": self.yield_fraction,
                 "cost_per_cm2": self.cost_per_cm2}
        return parameter_elasticities(self.cost_model, point,
                                      parameters=parameters,
                                      rel_step=rel_step, sd_max=sd_max,
                                      policy=policy)

    def optimal_sd(self, sd_max: float = 5000.0, tol: float = 1e-10,
                   max_iter: int = 500, retry=None):
        """The cost-minimising density ``s_d`` at this operating point.

        Delegates to :func:`repro.optimize.optimal_sd` (golden-section
        over eq. 4) and returns its
        :class:`repro.optimize.OptimumResult`. Pass a
        :class:`repro.robust.RetryBudget` as ``retry`` to widen the
        bracket on :class:`repro.errors.ConvergenceError`.
        """
        from .optimize import optimal_sd
        return optimal_sd(self.cost_model, self.n_transistors,
                          self.feature_um, self.n_wafers,
                          self.yield_fraction, self.cost_per_cm2,
                          sd_max=sd_max, tol=tol, max_iter=max_iter,
                          retry=retry)


@dataclass(frozen=True)
class ScenarioResult:
    """The priced scenario.

    ``cost_per_transistor_usd`` is NaN when the point was masked under
    :attr:`ErrorPolicy.MASK` (check :attr:`ok`).
    """

    scenario: Scenario
    cost_per_transistor_usd: float
    area_cm2: float
    backend: str = "numpy"

    @property
    def die_cost_usd(self) -> float:
        """Total die cost: cost per transistor × ``N_tr``."""
        return self.cost_per_transistor_usd * self.scenario.n_transistors

    @property
    def ok(self) -> bool:
        """True when the scenario evaluated to a finite cost."""
        return math.isfinite(self.cost_per_transistor_usd)


def _grouped(scenarios: list[Scenario]) -> list[tuple[TotalCostModel, list[int]]]:
    """Group scenario indices by cost-model identity (repr of the frozen
    dataclass — the same identity the engine cache keys on)."""
    groups: dict[str, tuple[TotalCostModel, list[int]]] = {}
    for i, scn in enumerate(scenarios):
        model = scn.cost_model
        _, indices = groups.setdefault(repr(model), (model, []))
        indices.append(i)
    return list(groups.values())


def _area(scenario: Scenario, guarded: bool) -> float:
    if not guarded:
        return float(area_from_sd(scenario.sd, scenario.n_transistors,
                                  scenario.feature_um))
    try:
        return float(area_from_sd(scenario.sd, scenario.n_transistors,
                                  scenario.feature_um))
    except ReproError:
        return math.nan


@traced(equation="4")
def evaluate_many(scenarios, policy: ErrorPolicy = ErrorPolicy.RAISE,
                  diagnostics: list | None = None,
                  cache: bool = True) -> list[ScenarioResult]:
    """Price a batch of scenarios, vectorizing per shared cost model.

    Under ``RAISE`` every group of scenarios sharing a model evaluates
    in one :func:`repro.engine.evaluate_grid` batch (memo-cached,
    chunked above the parallel threshold). Under ``MASK``/``COLLECT``
    the batch runs point-wise so each infeasible scenario produces the
    exact legacy :class:`~repro.robust.Diagnostic` — MASK yields NaN
    results (plus entries in the optional ``diagnostics`` list),
    COLLECT raises the aggregate after every scenario was tried.
    """
    policy = ErrorPolicy.coerce(policy)
    scenarios = list(scenarios)
    n = len(scenarios)
    costs = np.full(n, np.nan, dtype=float)
    arrays = tuple(
        np.asarray([getattr(s, name) for s in scenarios], dtype=float)
        for name in ("sd", "n_transistors", "feature_um", "n_wafers",
                     "yield_fraction", "cost_per_cm2"))
    backend = "numpy"
    if policy is ErrorPolicy.RAISE:
        for model, indices in _grouped(scenarios):
            kernel = OperatingPointsKernel(model, *arrays)
            evaluation = evaluate_grid(
                kernel, np.asarray(indices, dtype=float), policy=policy,
                where="api.evaluate_many", equation="4",
                parameter="scenario", cache=cache)
            costs[indices] = evaluation.values
            backend = evaluation.backend
        collected: tuple = ()
    else:
        log = None
        for model, indices in _grouped(scenarios):
            kernel = OperatingPointsKernel(model, *arrays)
            group_costs, log = map_scalar(
                indices, kernel.point, policy=policy,
                where="api.evaluate_many", equation="4",
                parameter="scenario", value_of=float,
                on_error=lambda i: math.nan, log=log)
            costs[indices] = group_costs
        collected = log.finish() if log is not None else ()
    if diagnostics is not None:
        diagnostics.extend(collected)
    guarded = policy is not ErrorPolicy.RAISE
    obs_metrics.observe("api_evaluate_many_scenarios", float(n))
    return [
        ScenarioResult(scenario=scn, cost_per_transistor_usd=float(costs[i]),
                       area_cm2=_area(scn, guarded), backend=backend)
        for i, scn in enumerate(scenarios)
    ]


@traced(equation="4")
def evaluate(scenario: Scenario) -> ScenarioResult:
    """Price one scenario (always ``RAISE``; failures propagate).

    Single evaluations skip the engine's memo cache — one-point grids
    would only churn the LRU.
    """
    return evaluate_many([scenario], cache=False)[0]
