"""Unit conversions used throughout the library.

The paper mixes the unit systems customary in IC manufacturing
economics:

* minimum feature size ``λ`` is quoted in **micrometres** (1.5 µm for
  the oldest Table A1 design down to 0.12 µm for the newest) and, for
  roadmap nodes, in **nanometres**;
* die and wafer areas are quoted in **cm²**;
* money is quoted in **US dollars**, with wafer costs per cm².

Internally every length is carried in **centimetres** and every area in
**cm²**, because the paper's central identity

    ``s_d = A_ch / (N_tr · λ²)``

only yields a dimensionless ``s_d`` when ``A_ch`` and ``λ²`` share a
unit. The helpers below are the only place unit literals appear; the
rest of the library converts at its API boundary and computes in cm.

All converters accept scalars or numpy arrays and preserve the input
shape.
"""

from __future__ import annotations

import numpy as np

from .errors import UnitError

__all__ = [
    "UM_PER_CM",
    "NM_PER_CM",
    "MM_PER_CM",
    "um_to_cm",
    "cm_to_um",
    "nm_to_cm",
    "cm_to_nm",
    "nm_to_um",
    "um_to_nm",
    "mm_to_cm",
    "cm_to_mm",
    "mm2_to_cm2",
    "cm2_to_mm2",
    "length_to_cm",
    "dollars",
    "megadollars",
]

UM_PER_CM = 1.0e4
NM_PER_CM = 1.0e7
MM_PER_CM = 10.0

#: Unit names accepted by :func:`length_to_cm`, mapped to their size in cm.
_LENGTH_UNITS_CM = {
    "cm": 1.0,
    "mm": 1.0 / MM_PER_CM,
    "um": 1.0 / UM_PER_CM,
    "µm": 1.0 / UM_PER_CM,
    "micron": 1.0 / UM_PER_CM,
    "nm": 1.0 / NM_PER_CM,
}


def um_to_cm(value_um):
    """Convert micrometres to centimetres."""
    return np.asarray(value_um, dtype=float) / UM_PER_CM if np.ndim(value_um) else float(value_um) / UM_PER_CM


def cm_to_um(value_cm):
    """Convert centimetres to micrometres."""
    return np.asarray(value_cm, dtype=float) * UM_PER_CM if np.ndim(value_cm) else float(value_cm) * UM_PER_CM


def nm_to_cm(value_nm):
    """Convert nanometres to centimetres."""
    return np.asarray(value_nm, dtype=float) / NM_PER_CM if np.ndim(value_nm) else float(value_nm) / NM_PER_CM


def cm_to_nm(value_cm):
    """Convert centimetres to nanometres."""
    return np.asarray(value_cm, dtype=float) * NM_PER_CM if np.ndim(value_cm) else float(value_cm) * NM_PER_CM


def nm_to_um(value_nm):
    """Convert nanometres to micrometres."""
    return np.asarray(value_nm, dtype=float) / 1.0e3 if np.ndim(value_nm) else float(value_nm) / 1.0e3


def um_to_nm(value_um):
    """Convert micrometres to nanometres."""
    return np.asarray(value_um, dtype=float) * 1.0e3 if np.ndim(value_um) else float(value_um) * 1.0e3


def mm_to_cm(value_mm):
    """Convert millimetres to centimetres."""
    return np.asarray(value_mm, dtype=float) / MM_PER_CM if np.ndim(value_mm) else float(value_mm) / MM_PER_CM


def cm_to_mm(value_cm):
    """Convert centimetres to millimetres."""
    return np.asarray(value_cm, dtype=float) * MM_PER_CM if np.ndim(value_cm) else float(value_cm) * MM_PER_CM


def mm2_to_cm2(value_mm2):
    """Convert square millimetres to square centimetres."""
    return np.asarray(value_mm2, dtype=float) / 100.0 if np.ndim(value_mm2) else float(value_mm2) / 100.0


def cm2_to_mm2(value_cm2):
    """Convert square centimetres to square millimetres."""
    return np.asarray(value_cm2, dtype=float) * 100.0 if np.ndim(value_cm2) else float(value_cm2) * 100.0


def length_to_cm(value, unit: str):
    """Convert ``value`` expressed in ``unit`` to centimetres.

    Parameters
    ----------
    value:
        Scalar or array-like length.
    unit:
        One of ``"cm"``, ``"mm"``, ``"um"``/``"µm"``/``"micron"``,
        ``"nm"`` (case-insensitive).

    Raises
    ------
    UnitError
        If ``unit`` is not a recognised length unit.
    """
    try:
        factor = _LENGTH_UNITS_CM[unit.strip().lower()]
    except (KeyError, AttributeError) as exc:
        known = ", ".join(sorted(set(_LENGTH_UNITS_CM)))
        raise UnitError(f"unknown length unit {unit!r}; expected one of: {known}") from exc
    if np.ndim(value):
        return np.asarray(value, dtype=float) * factor
    return float(value) * factor


def dollars(value) -> float:
    """Identity helper documenting that a quantity is in US dollars."""
    return float(value)


def megadollars(value_musd) -> float:
    """Convert millions of US dollars to US dollars."""
    return float(value_musd) * 1.0e6
