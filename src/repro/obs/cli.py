"""Command-line driver: ``python -m repro.obs``.

Front-end for the persistent run-history store
(:mod:`repro.obs.history`)::

    python -m repro.obs report --history runs.sqlite     # trend table + HTML
    python -m repro.obs drift  --history runs.sqlite     # MAD-band drift check
    python -m repro.obs runs   --history runs.sqlite     # stored run log

``--history`` defaults to the ``$REPRO_HISTORY`` environment variable,
so CI jobs configure the store once and every subcommand (and the
``python -m repro``/``python -m repro.bench`` writers) agrees on it.

Exit-code contract:

* ``0`` — command ran; no drift flagged (or none checked);
* ``1`` — the command itself failed (missing store, bad flag),
  reported as one ``error:`` line on stderr;
* ``2`` — the drift check flagged at least one series (``drift``
  subcommand, and ``report`` when ``--strict`` is passed).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from ..errors import ReproError
from .history import (
    HISTORY_ENV_VAR,
    HistoryStore,
    default_history_path,
    detect_drift,
    format_trend_table,
    write_html_dashboard,
)

__all__ = ["build_parser", "main"]


def _add_history_flag(parser) -> None:
    parser.add_argument(
        "--history", type=Path, default=None, metavar="PATH",
        help=f"run-history database (default: ${HISTORY_ENV_VAR})")


def _add_filter_flags(parser) -> None:
    parser.add_argument("--command", default=None,
                        help="only consider runs recorded under this command")
    parser.add_argument("--backend", default=None,
                        help="only consider runs of this engine backend")


def _add_drift_flags(parser) -> None:
    parser.add_argument("--window", type=int, default=10,
                        help="trailing runs forming the noise band "
                             "(default: 10)")
    parser.add_argument("--min-runs", type=int, default=5,
                        help="series shorter than this are 'insufficient', "
                             "never flagged (default: 5)")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="minimum relative departure treated as real "
                             "(default: 0.20)")
    parser.add_argument("--mad-scale", type=float, default=3.0,
                        help="band width in MAD-derived sigmas (default: 3.0)")


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for doc generation and tests)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Run-history trend reporting and cross-run drift "
                    "detection over a repro-history/1 store.")
    sub = parser.add_subparsers(dest="subcommand", required=True)

    report = sub.add_parser(
        "report", help="text trend table + static HTML dashboard")
    _add_history_flag(report)
    _add_filter_flags(report)
    _add_drift_flags(report)
    report.add_argument("--last", type=int, default=12,
                        help="runs shown per text sparkline (default: 12)")
    report.add_argument("--html", type=Path, default=None, metavar="PATH",
                        help="dashboard output path (default: "
                             "<history>.html next to the store; "
                             "'-' disables)")
    report.add_argument("--strict", action="store_true",
                        help="exit 2 when the embedded drift check flags "
                             "a series")

    drift = sub.add_parser(
        "drift", help="MAD-band drift check over every stored series "
                      "(exit 2 when flagged)")
    _add_history_flag(drift)
    _add_filter_flags(drift)
    _add_drift_flags(drift)
    drift.add_argument("--key", action="append", default=None, metavar="KEY",
                       help="check only this sample key (repeatable)")

    runs = sub.add_parser("runs", help="list stored runs with provenance")
    _add_history_flag(runs)
    _add_filter_flags(runs)
    runs.add_argument("--limit", type=int, default=20,
                      help="newest runs shown (default: 20)")
    return parser


def _open_store(args) -> HistoryStore:
    path = args.history if args.history is not None else default_history_path()
    if path is None:
        raise ReproError(
            f"no history store: pass --history PATH or set ${HISTORY_ENV_VAR}")
    if not Path(path).exists():
        raise ReproError(f"history store {path} does not exist")
    return HistoryStore(path)


def _run_report(args) -> int:
    with _open_store(args) as store:
        drift = detect_drift(
            store, window=args.window, min_runs=args.min_runs,
            mad_scale=args.mad_scale, min_rel=args.threshold,
            command=args.command, backend=args.backend)
        print(format_trend_table(
            store, last=args.last, drift=drift,
            command=args.command, backend=args.backend))
        print()
        print(drift.format())
        if args.html is None or str(args.html) != "-":
            html_path = (args.html if args.html is not None
                         else store.path.with_suffix(".html"))
            write_html_dashboard(html_path, store, drift=drift,
                                 command=args.command, backend=args.backend)
            print(f"dashboard -> {html_path}")
        if args.strict and not drift.ok:
            return 2
    return 0


def _run_drift(args) -> int:
    with _open_store(args) as store:
        report = detect_drift(
            store, keys=args.key, window=args.window,
            min_runs=args.min_runs, mad_scale=args.mad_scale,
            min_rel=args.threshold, command=args.command,
            backend=args.backend)
        print(report.format())
        return 2 if not report.ok else 0


def _run_runs(args) -> int:
    from ..report.tables import format_table
    with _open_store(args) as store:
        records = store.latest(max(args.limit, 1), command=args.command,
                               backend=args.backend)
        if not records:
            print("(history store holds no runs)")
            return 0
        print(format_table(
            ["run", "started", "command", "git", "backend", "wall_s",
             "series"],
            [(r.run_id, r.started, r.command, r.git_sha,
              r.backend or "-", f"{r.wall_time_s:.3f}", len(r.samples))
             for r in records],
            title=f"run history ({len(store)} runs total)"))
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:  # argparse exits 2 on bad flags already
        return 1 if exc.code else 0
    try:
        if args.subcommand == "report":
            return _run_report(args)
        if args.subcommand == "drift":
            return _run_drift(args)
        return _run_runs(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
