"""Provenance: which equation, parameters, and data produced a number.

Cost-model outputs are only trustworthy when each one can be traced
back to its inputs — the property that makes tools like CATCH or
Chiplet Actuary auditable. This module keeps a process-local *ledger*
of :class:`Provenance` records, one per model evaluation: the paper
equation applied (``"3"``, ``"4"``, ... ``"7"``), the evaluating
function, the parameter values (arrays summarised, not copied), and —
for dataset-backed results — the dataset name and row identifiers.

Records can additionally be *attached* to returned result objects
(:func:`attach` / :func:`provenance_of`), so a ``SweepResult`` or
``OptimumResult`` carries its own audit trail.

Recording is gated on the global observability flag; with
observability off the ledger stays empty and the hot-path cost is one
branch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from . import trace as _trace

__all__ = [
    "Provenance",
    "ProvenanceLedger",
    "attach",
    "get_ledger",
    "provenance_of",
    "record_provenance",
    "summarize_value",
]

_ATTR = "_repro_provenance"


def summarize_value(value):
    """Collapse a parameter value to a small JSON-friendly summary.

    Scalars pass through; array-likes become a ``{"shape", "min",
    "max"}`` dict so the ledger never copies a sweep grid; everything
    else is ``repr``-ed.
    """
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    shape = getattr(value, "shape", None)
    if shape is not None and getattr(value, "size", 0) > 0:
        try:
            return {
                "shape": list(shape),
                "min": float(value.min()),
                "max": float(value.max()),
            }
        except (TypeError, ValueError):
            pass
    return repr(value)


@dataclass(frozen=True)
class Provenance:
    """The audit record of one model evaluation.

    Attributes
    ----------
    source:
        Dotted name of the evaluating function
        (``"cost.total.TotalCostModel.transistor_cost"``).
    equation:
        Paper equation id (``"1"``–``"7"``) or a section tag
        (``"s2.5"``) for extensions that have no numbered equation.
    params:
        Parameter name → summarised value at the evaluation point.
    dataset:
        Name of the backing dataset, when one fed the result.
    rows:
        Identifiers of the dataset rows used (Table A1 indices,
        roadmap years, ...).
    """

    source: str
    equation: str
    params: dict = field(default_factory=dict)
    dataset: str | None = None
    rows: tuple | None = None


@dataclass
class ProvenanceLedger:
    """Bounded, append-only store of provenance records."""

    max_records: int = 10_000
    records: list[Provenance] = field(default_factory=list)
    dropped: int = 0

    def record(self, prov: Provenance) -> None:
        """Append one record (or count it as dropped past the cap)."""
        if len(self.records) >= self.max_records:
            self.dropped += 1
            return
        self.records.append(prov)

    def reset(self) -> None:
        """Forget every record."""
        self.records.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self.records)

    def by_equation(self, equation: str) -> list[Provenance]:
        """All records produced by one paper equation."""
        return [r for r in self.records if r.equation == equation]

    def by_source(self, source: str) -> list[Provenance]:
        """All records whose source contains ``source`` as a substring."""
        return [r for r in self.records if source in r.source]

    def equations_used(self) -> list[str]:
        """Distinct equation ids in first-appearance order."""
        seen: dict[str, None] = {}
        for r in self.records:
            seen.setdefault(r.equation, None)
        return list(seen)


_LEDGER = ProvenanceLedger()


def get_ledger() -> ProvenanceLedger:
    """The process-global provenance ledger."""
    return _LEDGER


def record_provenance(source: str, equation: str, params: dict | None = None,
                      dataset: str | None = None,
                      rows: tuple | None = None) -> Provenance | None:
    """Record one evaluation in the ledger iff observability is enabled.

    Parameter values are passed through :func:`summarize_value`.
    Returns the stored record, or ``None`` when observability is off.
    """
    if not _trace._ENABLED:
        return None
    prov = Provenance(
        source=source,
        equation=equation,
        params={k: summarize_value(v) for k, v in (params or {}).items()},
        dataset=dataset,
        rows=rows,
    )
    _LEDGER.record(prov)
    return prov


def attach(obj, prov: Provenance | None):
    """Attach a provenance record to a result object.

    Works on frozen dataclasses (via ``object.__setattr__``); silently
    does nothing for ``None`` records or objects that reject
    attributes (e.g. plain floats), so call sites stay unconditional.
    Returns ``obj`` for chaining.
    """
    if prov is None:
        return obj
    try:
        object.__setattr__(obj, _ATTR, prov)
    except (AttributeError, TypeError):
        pass
    return obj


def provenance_of(obj) -> Provenance | None:
    """The provenance record attached to ``obj``, or ``None``."""
    return getattr(obj, _ATTR, None)
