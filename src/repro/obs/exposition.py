"""Exposition: Prometheus text format, OTLP-style spans, HTTP endpoint.

The machine-scrapable half of the observability layer. Three outputs:

* :func:`render_prometheus` — the registry in the Prometheus text
  exposition format (version 0.0.4): counters and gauges as plain
  samples, histograms with cumulative decade ``le`` buckets plus
  ``_sum``/``_count``, and every duration sketch as one ``summary``
  family keyed by a ``span`` label with p50/p90/p99 quantiles.
  :func:`parse_prometheus` is the matching grammar checker used by the
  round-trip tests (and by anyone debugging a scrape);
* :func:`spans_to_otlp` — completed spans as OTLP/JSON
  (``resourceSpans`` → ``scopeSpans`` → ``spans`` with hex ids and
  unix-nano times), importable by any OTLP-compatible viewer;
* :func:`start_metrics_endpoint` — a stdlib ``http.server`` endpoint
  serving ``GET /metrics`` (bridged + rendered live) and ``GET
  /healthz``, the stepping stone to the ROADMAP's serve layer. The
  server runs daemon-threaded; :meth:`MetricsEndpoint.close` stops it.

:func:`write_snapshot` bundles everything (``metrics.prom``,
``spans.otlp.json``, ``provenance.json``) into a directory — what the
CLI's ``--telemetry DIR`` flag and the CI artifact upload call.

Everything here is stdlib-only, so exposition works in deployments
without NumPy (the engine bridge degrades to a no-op there).
"""

from __future__ import annotations

import json
import math
import re
import threading
import time
from pathlib import Path

from ..errors import DomainError
from . import metrics as _metrics
from . import provenance as _provenance
from . import telemetry as _telemetry
from . import trace as _trace
from .metrics import (
    HISTOGRAM_BUCKET_BOUNDS,
    MetricsRegistry,
    canonical_metric_name,
)

__all__ = [
    "MetricsEndpoint",
    "health_payload",
    "parse_prometheus",
    "registry_from_records",
    "render_prometheus",
    "spans_to_otlp",
    "start_metrics_endpoint",
    "write_snapshot",
]

#: Process start reference for the ``/healthz`` uptime report.
_PROCESS_START = time.monotonic()


def health_payload() -> dict:
    """The ``/healthz`` liveness body: provenance + schema contract.

    One JSON-safe dict shared by the metrics endpoint and the future
    serve layer: the running checkout's git sha, the schema versions a
    client may rely on (run-history store, bench reports, the
    Prometheus text format ``/metrics`` speaks), and process uptime in
    seconds.
    """
    from ..bench.schema import SCHEMA_ID as BENCH_SCHEMA_ID
    from .history import HISTORY_SCHEMA_ID, git_sha
    return {
        "status": "ok",
        "git_sha": git_sha(),
        "schemas": {
            "history": HISTORY_SCHEMA_ID,
            "bench": BENCH_SCHEMA_ID,
            "prometheus_text": "0.0.4",
        },
        "uptime_s": round(time.monotonic() - _PROCESS_START, 3),
    }

#: Valid Prometheus metric-name shape.
_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
#: Valid Prometheus label-name shape.
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
#: One sample line: name, optional label block, value (no timestamps).
_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{.*\})?\s+(\S+)$")
#: One label pair inside a label block, with escape handling.
_LABEL_PAIR_RE = re.compile(
    r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')

#: The single summary family every duration sketch renders into.
SKETCH_FAMILY = "repro_span_duration_seconds"


def _sanitize_name(name: str) -> str:
    """Coerce an internal metric name into a valid Prometheus name."""
    safe = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not safe or safe[0].isdigit():
        safe = "_" + safe
    return safe


def _escape_label_value(value: str) -> str:
    """Escape a label value per the text-format rules."""
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _format_value(value: float) -> str:
    """Render a sample value (repr-style floats, NaN/Inf spelled out)."""
    if isinstance(value, float):
        if math.isnan(value):
            return "NaN"
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
    return repr(float(value))


def _label_block(labels, extra=()) -> str:
    """Render a frozen label tuple (plus extras) as ``{k="v",...}``."""
    pairs = list(labels) + list(extra)
    if not pairs:
        return ""
    inner = ",".join(
        f'{k}="{_escape_label_value(str(v))}"' for k, v in pairs)
    return "{" + inner + "}"


def _bound_str(bound: float) -> str:
    """A bucket bound as Prometheus renders it (``0.001``, ``10000.0``)."""
    return repr(bound)


def render_prometheus(registry: "MetricsRegistry | None" = None) -> str:
    """The registry in Prometheus text exposition format (0.0.4).

    Families are emitted name-sorted with one ``# TYPE`` line each;
    labeled series of the same family group under it. Histograms render
    their decade buckets cumulatively with a closing ``+Inf`` bucket;
    sketches render as one ``summary`` family (:data:`SKETCH_FAMILY`)
    with the span name as a ``span`` label.
    """
    registry = registry if registry is not None else _metrics.get_registry()
    lines: list[str] = []

    families: dict[str, list] = {}
    for c in registry.counters.values():
        families.setdefault(c.name, []).append(c)
    for name in sorted(families):
        safe = _sanitize_name(name)
        lines.append(f"# TYPE {safe} counter")
        for c in families[name]:
            lines.append(f"{safe}{_label_block(c.labels)} "
                         f"{_format_value(c.value)}")

    families = {}
    for g in registry.gauges.values():
        families.setdefault(g.name, []).append(g)
    for name in sorted(families):
        safe = _sanitize_name(name)
        lines.append(f"# TYPE {safe} gauge")
        for g in families[name]:
            lines.append(f"{safe}{_label_block(g.labels)} "
                         f"{_format_value(g.value)}")

    families = {}
    for h in registry.histograms.values():
        families.setdefault(h.name, []).append(h)
    for name in sorted(families):
        safe = _sanitize_name(name)
        lines.append(f"# TYPE {safe} histogram")
        for h in families[name]:
            cumulative = 0
            for i, bound in enumerate(HISTOGRAM_BUCKET_BOUNDS):
                cumulative += h.buckets.get(i, 0)
                block = _label_block(h.labels,
                                     extra=[("le", _bound_str(bound))])
                lines.append(f"{safe}_bucket{block} {cumulative}")
            block = _label_block(h.labels, extra=[("le", "+Inf")])
            lines.append(f"{safe}_bucket{block} {h.count}")
            lines.append(f"{safe}_sum{_label_block(h.labels)} "
                         f"{_format_value(h.total)}")
            lines.append(f"{safe}_count{_label_block(h.labels)} {h.count}")

    if registry.sketches:
        lines.append(f"# TYPE {SKETCH_FAMILY} summary")
        for name in sorted(registry.sketches):
            s = registry.sketches[name]
            span_label = ("span", name)
            for q, value in (("0.5", s.p50), ("0.9", s.p90),
                             ("0.99", s.p99)):
                block = _label_block([span_label], extra=[("quantile", q)])
                lines.append(f"{SKETCH_FAMILY}{block} "
                             f"{_format_value(value)}")
            lines.append(f"{SKETCH_FAMILY}_sum{_label_block([span_label])} "
                         f"{_format_value(s.total)}")
            lines.append(f"{SKETCH_FAMILY}_count{_label_block([span_label])} "
                         f"{s.count}")

    return "\n".join(lines) + ("\n" if lines else "")


def _unescape_label_value(value: str) -> str:
    """Invert :func:`_escape_label_value` in one left-to-right pass.

    Sequential ``str.replace`` chains mis-handle adjacent escapes —
    ``\\\\n`` (an escaped backslash followed by a literal ``n``) must
    decode to backslash + ``n``, not to a newline.
    """
    out: list[str] = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            if nxt == "n":
                out.append("\n")
                i += 2
                continue
            if nxt in ('"', "\\"):
                out.append(nxt)
                i += 2
                continue
        out.append(ch)
        i += 1
    return "".join(out)


def _parse_label_block(block: str, line: str) -> dict[str, str]:
    """Parse ``{k="v",...}`` strictly; raise ``DomainError`` on junk."""
    inner = block[1:-1]
    labels: dict[str, str] = {}
    pos = 0
    while pos < len(inner):
        m = _LABEL_PAIR_RE.match(inner, pos)
        if m is None:
            raise DomainError(f"malformed label block in line: {line!r}")
        key, value = m.group(1), m.group(2)
        if key in labels:
            raise DomainError(f"duplicate label {key!r} in line: {line!r}")
        labels[key] = _unescape_label_value(value)
        pos = m.end()
        if pos < len(inner):
            if inner[pos] != ",":
                raise DomainError(f"malformed label block in line: {line!r}")
            pos += 1
    return labels


def parse_prometheus(text: str) -> list[dict]:
    """Validate Prometheus text format; return the parsed samples.

    Checks the grammar the way a scraper would: valid metric and label
    names, parseable values (including ``NaN``/``±Inf``), well-formed
    ``# TYPE``/``# HELP`` comments, and that every sample's family has
    at most one ``TYPE`` declaration. Raises :class:`~repro.errors.DomainError`
    (a ``ValueError``) on the first violation; returns a list of ``{"name", "labels", "value"}``
    dicts otherwise.
    """
    samples: list[dict] = []
    typed: dict[str, str] = {}
    for raw in text.splitlines():
        line = raw.rstrip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] in ("TYPE", "HELP"):
                if len(parts) < 3 or not _NAME_RE.match(parts[2]):
                    raise DomainError(f"malformed comment line: {line!r}")
                if parts[1] == "TYPE":
                    if len(parts) != 4 or parts[3] not in (
                            "counter", "gauge", "histogram", "summary",
                            "untyped"):
                        raise DomainError(f"malformed TYPE line: {line!r}")
                    if parts[2] in typed:
                        raise DomainError(
                            f"duplicate TYPE for family {parts[2]!r}")
                    typed[parts[2]] = parts[3]
            continue
        m = _SAMPLE_RE.match(line)
        if m is None:
            raise DomainError(f"malformed sample line: {line!r}")
        name, block, value_str = m.group(1), m.group(2), m.group(3)
        labels = _parse_label_block(block, line) if block else {}
        try:
            value = float(value_str)
        except ValueError:
            raise DomainError(
                f"unparseable sample value {value_str!r} in: {line!r}")
        samples.append({"name": name, "labels": labels, "value": value})
    return samples


def registry_from_records(records: list[dict]) -> MetricsRegistry:
    """Rebuild a registry from JSONL export records (``type == metric``).

    The inverse (as far as the export carries state) of
    :func:`~repro.obs.export.export_jsonl`'s metric lines — what
    ``tools/trace_report.py --prom`` uses to render a saved snapshot.
    Older exports without ``buckets`` reconstruct counts and sums but
    lose bucket/quantile detail. Legacy dotted metric names are mapped
    to their canonical snake_case spellings on the way in
    (:data:`~repro.obs.metrics.LEGACY_METRIC_RENAMES`), so snapshots
    written before the rename keep feeding the current series.
    """
    reg = MetricsRegistry()
    for rec in records:
        if rec.get("type") != "metric":
            continue
        kind = rec.get("kind")
        labels = [tuple(kv) for kv in rec.get("labels", [])]
        name = canonical_metric_name(rec["name"])
        if kind == "counter":
            reg.counter(name, labels).inc(rec.get("value") or 0.0)
        elif kind == "gauge":
            if rec.get("value") is not None:
                reg.gauge(name, labels).set(rec["value"])
        elif kind == "histogram":
            h = reg.histogram(name, labels)
            h.count = int(rec.get("count", 0))
            if "sum" in rec:
                h.total = float(rec["sum"])
            elif rec.get("value") is not None:
                h.total = float(rec["value"]) * h.count
            if rec.get("min") is not None:
                h.min = float(rec["min"])
            if rec.get("max") is not None:
                h.max = float(rec["max"])
            h.buckets = {int(i): int(n)
                         for i, n in rec.get("buckets", {}).items()}
        elif kind == "sketch":
            s = reg.sketch(name)
            s.count = int(rec.get("count", 0))
            s.total = float(rec.get("total", 0.0))
            if rec.get("max") is not None:
                s.max = float(rec["max"])
            if rec.get("min") is not None:
                s.min = float(rec["min"])
            s.buckets = {int(i): int(n)
                         for i, n in rec.get("buckets", {}).items()}
    return reg


def _otlp_attr_value(value) -> dict:
    """One attribute value in OTLP/JSON typed-value form."""
    if isinstance(value, bool):
        return {"boolValue": value}
    if isinstance(value, int):
        return {"intValue": str(value)}
    if isinstance(value, float):
        return {"doubleValue": value}
    return {"stringValue": str(value)}


def spans_to_otlp(tracer: "_trace.Tracer | None" = None,
                  trace_id: str | None = None,
                  service_name: str = "repro") -> dict:
    """Completed spans as an OTLP/JSON ``resourceSpans`` document.

    All spans share one 32-hex ``traceId`` (a fresh one unless given);
    span ids render as 16-hex strings of the tracer-local integer ids.
    Monotonic span times are anchored to the wall clock at export time,
    so the unix-nano timestamps are self-consistent within the trace.
    """
    tracer = tracer if tracer is not None else _trace.get_tracer()
    if trace_id is None:
        import uuid
        trace_id = uuid.uuid4().hex
    anchor = time.time() - time.perf_counter()

    def nanos(monotonic: float) -> str:
        return str(int((anchor + monotonic) * 1e9))

    otlp_spans = []
    for sp in tracer.spans:
        record = {
            "traceId": trace_id,
            "spanId": f"{sp.span_id & 0xFFFFFFFFFFFFFFFF:016x}",
            "name": sp.name,
            "kind": 1,
            "startTimeUnixNano": nanos(sp.start),
            "endTimeUnixNano": nanos(sp.end),
            "attributes": [
                {"key": key, "value": _otlp_attr_value(value)}
                for key, value in sp.attrs.items()],
        }
        if sp.parent_id is not None:
            record["parentSpanId"] = (
                f"{sp.parent_id & 0xFFFFFFFFFFFFFFFF:016x}")
        otlp_spans.append(record)
    return {
        "resourceSpans": [{
            "resource": {"attributes": [{
                "key": "service.name",
                "value": {"stringValue": service_name}}]},
            "scopeSpans": [{
                "scope": {"name": "repro.obs"},
                "spans": otlp_spans,
            }],
        }],
    }


class MetricsEndpoint:
    """Handle on a running metrics HTTP server (see
    :func:`start_metrics_endpoint`)."""

    def __init__(self, server, thread: threading.Thread):
        self._server = server
        self._thread = thread

    @property
    def port(self) -> int:
        """The bound TCP port (useful with ``port=0`` auto-assignment)."""
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        """Base URL of the endpoint (``http://host:port``)."""
        host = self._server.server_address[0]
        return f"http://{host}:{self.port}"

    def close(self) -> None:
        """Stop serving and release the port (idempotent)."""
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5.0)

    def __enter__(self) -> "MetricsEndpoint":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def start_metrics_endpoint(host: str = "127.0.0.1", port: int = 0,
                           registry: "MetricsRegistry | None" = None,
                           ) -> MetricsEndpoint:
    """Serve ``GET /metrics`` and ``GET /healthz`` from a daemon thread.

    ``/metrics`` bridges engine-side state into the registry and
    renders it live on every scrape; ``/healthz`` answers the
    :func:`health_payload` JSON liveness probe (git sha, schema
    versions, uptime). ``port=0`` binds an ephemeral port — read it back
    from :attr:`MetricsEndpoint.port`. The caller owns the returned
    endpoint and should :meth:`~MetricsEndpoint.close` it (or use it as
    a context manager).
    """
    from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

    reg = registry if registry is not None else _metrics.get_registry()

    class _Handler(BaseHTTPRequestHandler):
        def do_GET(self):  # noqa: N802 - http.server API
            if self.path == "/metrics":
                _telemetry.bridge_engine_metrics(reg)
                body = render_prometheus(reg).encode("utf-8")
                content_type = "text/plain; version=0.0.4; charset=utf-8"
                status = 200
            elif self.path == "/healthz":
                body = (json.dumps(health_payload(), sort_keys=True)
                        + "\n").encode("utf-8")
                content_type = "application/json"
                status = 200
            else:
                body = b"not found\n"
                content_type = "text/plain; charset=utf-8"
                status = 404
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def log_message(self, format, *args):  # noqa: A002 - http.server API
            pass  # scrapes should not spam stderr

    server = ThreadingHTTPServer((host, port), _Handler)
    server.daemon_threads = True
    thread = threading.Thread(target=server.serve_forever,
                              name="repro-metrics-endpoint", daemon=True)
    thread.start()
    return MetricsEndpoint(server, thread)


def write_snapshot(directory,
                   registry: "MetricsRegistry | None" = None,
                   tracer: "_trace.Tracer | None" = None,
                   ledger=None) -> dict[str, Path]:
    """Dump the full telemetry snapshot bundle into ``directory``.

    Writes ``metrics.prom`` (bridged + rendered registry),
    ``spans.otlp.json``, and ``provenance.json``; creates the directory
    if needed and returns a name → path mapping. This is what the CLI's
    ``--telemetry DIR`` produces and CI uploads as an artifact.
    """
    registry = registry if registry is not None else _metrics.get_registry()
    tracer = tracer if tracer is not None else _trace.get_tracer()
    ledger = ledger if ledger is not None else _provenance.get_ledger()
    out = Path(directory)
    out.mkdir(parents=True, exist_ok=True)
    _telemetry.bridge_engine_metrics(registry)

    paths = {
        "metrics": out / "metrics.prom",
        "spans": out / "spans.otlp.json",
        "provenance": out / "provenance.json",
    }
    paths["metrics"].write_text(render_prometheus(registry))
    paths["spans"].write_text(
        json.dumps(spans_to_otlp(tracer), indent=2) + "\n")
    provenance_records = [
        {"source": rec.source, "equation": rec.equation,
         "params": rec.params, "dataset": rec.dataset,
         "rows": None if rec.rows is None else list(rec.rows)}
        for rec in ledger.records]
    paths["provenance"].write_text(
        json.dumps({"records": provenance_records}, indent=2) + "\n")
    return paths
