"""Cross-process trace propagation and metric-delta merging.

The tracer and registry in :mod:`repro.obs` are process-local, which
made the engine's ``ProcessPoolExecutor`` path a telemetry black hole:
a 10M-point grid spent all its time in workers no flamegraph could
see. This module closes the boundary with three pieces:

* :func:`capture_context` snapshots the parent side into a
  serializable, frozen :class:`TraceContext` — a fresh trace id, the
  currently open span's id and depth, and the parent's monotonic clock
  reading (the baseline the worker timeline is shifted onto);
* :class:`WorkerTelemetry` runs **inside the worker**: it resets the
  worker's tracer/registry, enables observability for the duration of
  the chunk, and on exit packages every completed span (start times
  rebased onto the parent clock) plus the full metric delta into a
  picklable :class:`TelemetryPayload`;
* :func:`merge_payload` runs **back in the parent**: worker span ids
  are re-allocated from the parent tracer (collision-free), parenting
  is re-hung under the span that was open at capture time, and metric
  deltas fold in via the associative
  :meth:`~repro.obs.metrics.MetricsRegistry.merge` — so pooled and
  single-process runs of the same grid produce identical totals.

Worker spans are adopted (:meth:`~repro.obs.trace.Tracer.adopt`), not
re-recorded: their durations were already sketched into the worker's
metric delta, and recording them again would double-count. Worker
spans describe work that ran *concurrently* with the parent, so the
parent span's self time still reflects real orchestration wall time.

:func:`bridge_engine_metrics` is the pull-side companion: it snapshots
the engine's out-of-registry state (cache lifetime counters, parallel
settings) into labeled registry metrics, and is called by the
``/metrics`` endpoint and the snapshot writer just before rendering.
"""

from __future__ import annotations

import os
import time
import uuid
from dataclasses import dataclass, field

from . import metrics as _metrics
from . import trace as _trace
from .export import span_to_dict
from .metrics import MetricsRegistry

__all__ = [
    "TelemetryPayload",
    "TraceContext",
    "WorkerTelemetry",
    "bridge_engine_metrics",
    "capture_context",
    "merge_payload",
]


@dataclass(frozen=True)
class TraceContext:
    """Serializable parent-side snapshot carried into a worker task.

    ``parent_depth`` is ``-1`` when no span was open at capture time,
    so ``worker_depth + parent_depth + 1`` is always the merged depth.
    ``parent_clock`` is the parent's :func:`time.perf_counter` at
    capture; the worker rebases its span timeline onto it so merged
    traces stay on one monotonic axis even where the two processes'
    clocks differ.
    """

    trace_id: str
    parent_span_id: int | None
    parent_depth: int
    parent_clock: float


@dataclass
class TelemetryPayload:
    """Everything a worker hands back: spans, metric deltas, identity.

    ``spans`` are :func:`~repro.obs.export.span_to_dict` dicts (plus an
    ``end`` key), already rebased onto the parent clock. ``metrics`` is
    :meth:`~repro.obs.metrics.MetricsRegistry.to_dict` output — plain
    JSON-safe data, never live (lock-carrying) metric objects, so the
    payload pickles across any start method.
    """

    trace_id: str
    pid: int
    parent_span_id: int | None
    parent_depth: int
    spans: list = field(default_factory=list)
    metrics: dict = field(default_factory=dict)
    dropped: int = 0


def capture_context() -> TraceContext | None:
    """Snapshot the parent side for propagation, or ``None`` when off.

    Call at task-submission time, in the process and context that owns
    the span the worker's spans should hang under.
    """
    if not _trace._ENABLED:
        return None
    parent = _trace.current_span()
    return TraceContext(
        trace_id=uuid.uuid4().hex,
        parent_span_id=None if parent is None else parent.span_id,
        parent_depth=-1 if parent is None else parent.depth,
        parent_clock=time.perf_counter(),
    )


class WorkerTelemetry:
    """Worker-side collection scope for one propagated task.

    Use as a context manager around the chunk's work::

        with WorkerTelemetry(ctx) as wt:
            values = kernel.batch(chunk)
        return values, wt.payload

    Entry resets the worker's (process-local) tracer and registry and
    enables observability; exit disables it again, rebases span times
    onto ``ctx.parent_clock``, and builds :attr:`payload`. The reset
    means each task's payload is a clean *delta* even when pool workers
    are reused — or inherited an enabled flag through ``fork``.
    """

    def __init__(self, ctx: TraceContext):
        self.ctx = ctx
        self.payload: TelemetryPayload | None = None
        self._entry_clock = 0.0

    def __enter__(self) -> "WorkerTelemetry":
        _trace.get_tracer().reset()
        _metrics.get_registry().reset()
        _trace.detach_context()
        _trace.enable()
        self._entry_clock = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        _trace.disable()
        tracer = _trace.get_tracer()
        offset = self.ctx.parent_clock - self._entry_clock
        spans = []
        for sp in tracer.spans:
            d = span_to_dict(sp)
            d["start"] = sp.start + offset
            d["end"] = sp.end + offset
            spans.append(d)
        self.payload = TelemetryPayload(
            trace_id=self.ctx.trace_id,
            pid=os.getpid(),
            parent_span_id=self.ctx.parent_span_id,
            parent_depth=self.ctx.parent_depth,
            spans=spans,
            metrics=_metrics.get_registry().to_dict(),
            dropped=tracer.dropped,
        )
        tracer.reset()
        _metrics.get_registry().reset()


def merge_payload(payload: TelemetryPayload,
                  tracer: "_trace.Tracer | None" = None,
                  registry: "MetricsRegistry | None" = None) -> list:
    """Fold one worker payload into the parent trace tree and registry.

    Worker span ids are re-allocated from the parent tracer so they can
    never collide with parent ids; worker root spans are re-parented
    under ``payload.parent_span_id`` (the span open at capture time)
    and depths shift by ``parent_depth + 1``. Metric deltas merge
    associatively. Returns the adopted :class:`~repro.obs.trace.Span`
    objects in worker completion order.
    """
    tracer = tracer if tracer is not None else _trace.get_tracer()
    registry = registry if registry is not None else _metrics.get_registry()
    id_map: dict[int, int] = {}
    for d in payload.spans:
        id_map[d["id"]] = tracer.next_id()
    adopted = []
    for d in payload.spans:
        if d["parent_id"] is not None and d["parent_id"] in id_map:
            parent_id = id_map[d["parent_id"]]
        else:
            parent_id = payload.parent_span_id
        sp = _trace.Span(
            d["name"],
            dict(d.get("attrs") or {}),
            span_id=id_map[d["id"]],
            parent_id=parent_id,
            depth=d["depth"] + payload.parent_depth + 1,
        )
        sp.start = d["start"]
        sp.end = d.get("end", d["start"] + d["duration"])
        sp.child_time = max(0.0, d["duration"] - d["self"])
        tracer.adopt(sp)
        adopted.append(sp)
    tracer.dropped += payload.dropped
    if payload.metrics:
        registry.merge(MetricsRegistry.from_dict(payload.metrics))
    return adopted


def bridge_engine_metrics(
        registry: "MetricsRegistry | None" = None) -> "MetricsRegistry":
    """Snapshot engine-side state into labeled registry metrics.

    Publishes the grid cache's *lifetime* counters (which keep counting
    while gated live metrics are off) as
    ``engine_cache_lifetime_total{event=...}`` — set by delta, so
    repeated bridging never double-counts — plus current-state gauges
    (``engine_cache_entries``, ``engine_cache_hit_rate``,
    ``engine_parallel_threshold``). Supervision lifetime counters
    bridge the same way (``engine_supervision_lifetime_total{event=
    retry_crash|retry_timeout|retry_corrupt|restart|degraded_chunk|
    breaker_opening|checkpoint_saved|checkpoint_loaded}``) together
    with the ``engine_breaker_state`` gauge (1 = open), so snapshots
    taken with live metrics off still carry the fault history. A no-op
    when the engine (and hence NumPy) is unavailable, so exposition
    works in stdlib-only deploys. Returns the registry.
    """
    registry = registry if registry is not None else _metrics.get_registry()
    try:
        from .. import engine
    except ImportError:
        return registry
    stats = engine.cache_stats()
    for event, lifetime in (("hit", stats.hits), ("miss", stats.misses),
                            ("eviction", stats.evictions)):
        counter = registry.counter("engine_cache_lifetime_total",
                                   {"event": event})
        delta = lifetime - counter.value
        if delta > 0:
            counter.inc(delta)
    registry.gauge("engine_cache_entries").set(stats.entries)
    registry.gauge("engine_cache_max_entries").set(stats.max_entries)
    registry.gauge("engine_cache_hit_rate").set(stats.hit_rate)
    parallel = engine.parallel_settings()
    registry.gauge("engine_parallel_threshold").set(parallel["threshold"])
    registry.gauge(
        "engine_parallel_enabled").set(1.0 if parallel["enabled"] else 0.0)
    supervision = engine.supervision_stats()
    for event, key in (("retry_crash", "retry_crash"),
                       ("retry_timeout", "retry_timeout"),
                       ("retry_corrupt", "retry_corrupt"),
                       ("restart", "restarts"),
                       ("degraded_chunk", "degraded_chunks"),
                       ("breaker_opening", "breaker_openings"),
                       ("checkpoint_saved", "checkpoint_saved"),
                       ("checkpoint_loaded", "checkpoint_loaded")):
        counter = registry.counter("engine_supervision_lifetime_total",
                                   {"event": event})
        delta = supervision[key] - counter.value
        if delta > 0:
            counter.inc(delta)
    registry.gauge("engine_breaker_state").set(
        1.0 if supervision["breaker_state"] == "open" else 0.0)
    return registry
