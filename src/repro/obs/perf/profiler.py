"""Deterministic profiler attributing wall time to the span tree.

Two complementary views of "where did the time go":

* :class:`SpanProfiler` — an event-driven (hence deterministic, not
  statistical) profiler built on :func:`sys.setprofile` plus the span
  hooks of :mod:`repro.obs.trace`. Every function call/return and every
  span enter/exit charges the elapsed wall time to the current stack
  ``span-path ; function ; function ...``, so the output folds the
  *semantic* span tree and the *mechanical* call tree into one
  flamegraph.
* :func:`collapsed_from_spans` — the zero-overhead fallback: rebuild
  collapsed stacks purely from a recorded span tree (live tracer or a
  JSONL export), attributing each span's **self time** to its span
  path. This is what ``tools/trace_report.py --flame`` uses, since a
  saved trace has no frames left to profile.

Both emit the *collapsed stack* format (``a;b;c <microseconds>`` per
line) consumed by every flamegraph renderer (flamegraph.pl, speedscope,
inferno) — :func:`format_collapsed` renders it.
"""

from __future__ import annotations

import sys
import time

from .. import trace as _trace

__all__ = [
    "SpanProfiler",
    "collapsed_from_spans",
    "format_collapsed",
]


def live_span_dicts() -> list[dict]:
    """The global tracer's completed spans as plain dicts.

    Same field names as :func:`repro.obs.span_to_dict` (kept local so
    the perf layer does not import the exporter, which imports the
    metrics registry, which imports the sketch — a cycle).
    """
    return [
        {"type": "span", "id": sp.span_id, "parent_id": sp.parent_id,
         "name": sp.name, "depth": sp.depth, "start": sp.start,
         "duration": sp.duration, "self": sp.self_time, "attrs": sp.attrs}
        for sp in _trace.get_tracer().spans
    ]

#: Stack label used for time spent outside any span or profiled frame.
_TOPLEVEL = "(toplevel)"


class SpanProfiler:
    """Attribute wall time to ``span-path;function-stack`` leaves.

    Use as a context manager (or :meth:`start` / :meth:`stop`); while
    active it installs a :func:`sys.setprofile` hook and subscribes to
    span enter/exit events, charging the time between consecutive
    events to the stack that was executing. Deterministic: the same
    code path yields the same stack keys every run (only the measured
    times vary).

    Examples
    --------
    ::

        with obs.enabled(), SpanProfiler() as prof:
            sd_sweep(PAPER_FIGURE4_MODEL, 1e7, 0.18, 5e3, 0.4, 8.0)
        print(format_collapsed(prof.collapsed()))

    Notes
    -----
    ``sys.setprofile`` has real overhead (every call/return traps into
    the hook), so the profiler is an opt-in diagnosis tool; never leave
    it installed on a measured hot path. Frames already on the stack
    when profiling starts are not visible; their time lands on the
    enclosing span path (or ``(toplevel)``).
    """

    def __init__(self, clock=time.perf_counter):
        self._clock = clock
        self._times: dict[str, float] = {}
        self._stack: list[str] = []
        self._span_path: list[str] = []
        self._last = 0.0
        self._active = False

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "SpanProfiler":
        """Install the profile hook and start charging time; returns self."""
        if self._active:
            return self
        self._active = True
        self._stack.clear()
        self._span_path.clear()
        _trace.add_span_hook(self._on_span)
        self._last = self._clock()
        sys.setprofile(self._profile_hook)
        return self

    def stop(self) -> "SpanProfiler":
        """Uninstall the hook, charge the tail interval; returns self."""
        if not self._active:
            return self
        sys.setprofile(None)
        _trace.remove_span_hook(self._on_span)
        self._charge(self._clock() - self._last)
        self._active = False
        return self

    def __enter__(self) -> "SpanProfiler":
        """Start profiling on context entry."""
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        """Stop profiling on context exit."""
        self.stop()

    # -- event plumbing --------------------------------------------------

    def _charge(self, elapsed: float) -> None:
        if elapsed <= 0.0:
            return
        if self._span_path or self._stack:
            key = ";".join(self._span_path + self._stack)
        else:
            key = _TOPLEVEL
        self._times[key] = self._times.get(key, 0.0) + elapsed

    def _profile_hook(self, frame, event: str, arg) -> None:
        self._charge(self._clock() - self._last)
        if event == "call":
            code = frame.f_code
            module = frame.f_globals.get("__name__", "?")
            name = getattr(code, "co_qualname", code.co_name)
            self._stack.append(f"{module}.{name}")
        elif event == "return":
            if self._stack:
                self._stack.pop()
        elif event == "c_call":
            module = getattr(arg, "__module__", None) or "builtins"
            name = getattr(arg, "__qualname__", repr(arg))
            self._stack.append(f"{module}.{name}")
        elif event in ("c_return", "c_exception"):
            if self._stack:
                self._stack.pop()
        self._last = self._clock()

    def _on_span(self, event: str, span) -> None:
        self._charge(self._clock() - self._last)
        if event == "enter":
            self._span_path.append(span.name)
        elif event == "exit":
            if self._span_path and self._span_path[-1] == span.name:
                self._span_path.pop()
        self._last = self._clock()

    # -- results ---------------------------------------------------------

    def collapsed(self) -> dict[str, int]:
        """Collapsed stacks: ``"a;b;c" -> microseconds`` (zeros dropped)."""
        out = {}
        for key, seconds in self._times.items():
            micros = int(round(seconds * 1e6))
            if micros > 0:
                out[key] = micros
        return out

    def total_seconds(self) -> float:
        """Total wall time charged across every stack."""
        return sum(self._times.values())


def collapsed_from_spans(records: "list[dict] | None" = None) -> dict[str, int]:
    """Collapsed stacks from a recorded span tree (self time per path).

    Accepts span dicts (a :func:`repro.obs.read_jsonl` export; non-span
    records are ignored) or, by default, the live global tracer. Each
    span contributes its *self* time in microseconds to the stack key
    ``root;child;...;span`` — summed over same-keyed spans — so the
    output renders directly as a flamegraph of the span hierarchy.
    """
    if records is None:
        records = live_span_dicts()
    spans = [r for r in records if r.get("type", "span") == "span"]
    by_id = {sp["id"]: sp for sp in spans}
    paths: dict[int, str] = {}

    def path_of(sp: dict) -> str:
        cached = paths.get(sp["id"])
        if cached is not None:
            return cached
        parent = by_id.get(sp["parent_id"])
        path = sp["name"] if parent is None else f"{path_of(parent)};{sp['name']}"
        paths[sp["id"]] = path
        return path

    out: dict[str, int] = {}
    for sp in spans:
        micros = int(round(sp["self"] * 1e6))
        if micros <= 0:
            continue
        key = path_of(sp)
        out[key] = out.get(key, 0) + micros
    return out


def format_collapsed(collapsed: dict[str, int]) -> str:
    """Render collapsed stacks as ``stack count`` lines (flamegraph input).

    Lines are key-sorted so the output is stable across runs and diffs
    cleanly in CI artifacts.
    """
    if not collapsed:
        return "(no samples)"
    return "\n".join(f"{key} {count}" for key, count in sorted(collapsed.items()))
