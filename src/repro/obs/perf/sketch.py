"""Streaming percentile sketches for span durations.

A :class:`DurationSketch` folds an unbounded stream of durations into a
fixed logarithmic bucket layout and answers quantile queries (p50, p90,
p99) with a bounded *relative* error — the property that matters for
timings, where a 1 ms and a 1 s span must both resolve to ~1 %. The
flat ``Histogram`` in :mod:`repro.obs.metrics` keeps only count / sum /
min / max; the sketch is what the performance trajectory (``python -m
repro.bench``) and the span-duration metrics are built on.

Design (the DDSketch/HDR-histogram family, stdlib only):

* bucket ``i`` covers ``[MIN * GAMMA**i, MIN * GAMMA**(i+1))`` with
  ``GAMMA = 1.02`` and ``MIN = 1 ns``, so every quantile estimate —
  the geometric midpoint of its bucket — is within ``(GAMMA-1)/2 ≈ 1 %``
  of the true value;
* buckets are stored sparsely (index → count), so an idle sketch costs
  a dict and six scalars, and ``observe`` is one ``math.log`` plus one
  dict update — cheap enough to run on every recorded span;
* sketches with identical layout **merge** by adding bucket counts,
  which is exact: merging per-process sketches loses nothing, the
  primitive the bench runner uses to combine repeats.
"""

from __future__ import annotations

import math
import threading
from typing import Iterable

from ...errors import DomainError

__all__ = ["DurationSketch"]

#: Per-bucket growth factor; quantile relative error is (GAMMA - 1) / 2.
_GAMMA = 1.02
#: Smallest resolvable duration (seconds); everything below lands in bucket 0.
_MIN_VALUE = 1e-9
#: Highest bucket index — covers up to ~2.8e3 s, far past any span.
_MAX_INDEX = 1450

_LOG_GAMMA = math.log(_GAMMA)
_LOG_MIN = math.log(_MIN_VALUE)


class DurationSketch:
    """Mergeable log-bucket sketch of a duration distribution (seconds).

    Tracks count, sum, min, and max exactly; quantiles are estimated
    from the bucket layout with ~1 % relative error. Instances with
    the same class-level layout (always true — the layout is fixed)
    merge losslessly via :meth:`merge`.

    Examples
    --------
    >>> sk = DurationSketch("demo")
    >>> for ms in (1, 2, 5, 10):
    ...     sk.observe(ms / 1e3)
    >>> sk.count
    4
    >>> abs(sk.max - 0.010) < 1e-12
    True
    """

    __slots__ = ("name", "count", "total", "min", "max", "buckets", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        #: Sparse bucket index -> sample count.
        self.buckets: dict[int, int] = {}
        #: Serialises ingestion/merge so concurrent observers never lose
        #: samples (the serve layer shares one registry across threads).
        self._lock = threading.Lock()

    @staticmethod
    def bucket_index(seconds: float) -> int:
        """The bucket index a duration falls into (clamped to the layout)."""
        if seconds <= _MIN_VALUE:
            return 0
        index = int((math.log(seconds) - _LOG_MIN) / _LOG_GAMMA)
        return index if index < _MAX_INDEX else _MAX_INDEX

    @staticmethod
    def bucket_value(index: int) -> float:
        """The representative duration of a bucket (geometric midpoint)."""
        return math.exp(_LOG_MIN + (index + 0.5) * _LOG_GAMMA)

    def observe(self, seconds: float) -> None:
        """Fold one duration (seconds) into the sketch.

        Non-finite values are rejected; values at or below the layout
        minimum (including 0 and negatives from clock quirks) clamp
        into the lowest bucket but still update min/total exactly.
        """
        seconds = float(seconds)
        if math.isnan(seconds) or math.isinf(seconds):
            raise DomainError(
                f"sketch {self.name}: duration must be finite, got {seconds}")
        index = self.bucket_index(seconds)
        with self._lock:
            self.count += 1
            self.total += seconds
            if seconds < self.min:
                self.min = seconds
            if seconds > self.max:
                self.max = seconds
            self.buckets[index] = self.buckets.get(index, 0) + 1

    def merge(self, other: "DurationSketch") -> "DurationSketch":
        """Fold ``other``'s samples into this sketch (exact); returns self."""
        if not isinstance(other, DurationSketch):
            raise DomainError(
                f"sketch {self.name}: can only merge another DurationSketch, "
                f"got {type(other).__name__}")
        with self._lock:
            self.count += other.count
            self.total += other.total
            if other.min < self.min:
                self.min = other.min
            if other.max > self.max:
                self.max = other.max
            for index, count in other.buckets.items():
                self.buckets[index] = self.buckets.get(index, 0) + count
        return self

    def quantile(self, q: float) -> float:
        """Estimated duration at quantile ``q`` in [0, 1] (NaN when empty).

        Uses the nearest-rank convention (``ceil(q * count)``); the
        returned value is the geometric midpoint of the bucket holding
        that rank, except that the extreme quantiles snap to the exact
        tracked ``min`` / ``max``.
        """
        if not 0.0 <= q <= 1.0:
            raise DomainError(f"quantile must be in [0, 1]; got {q}")
        # Snapshot under the lock so a concurrent observe() can't mutate
        # the bucket dict mid-iteration.
        with self._lock:
            count, lo, hi = self.count, self.min, self.max
            items = sorted(self.buckets.items())
        if count == 0:
            return math.nan
        if q == 0.0:
            return lo
        if q == 1.0:
            return hi
        rank = max(1, math.ceil(q * count))
        seen = 0
        for index, n in items:
            seen += n
            if seen >= rank:
                # Keep estimates inside the exactly-known envelope.
                return min(max(self.bucket_value(index), lo), hi)
        return hi  # pragma: no cover - rank <= count always hits above

    @property
    def p50(self) -> float:
        """Estimated median duration (seconds)."""
        return self.quantile(0.50)

    @property
    def p90(self) -> float:
        """Estimated 90th-percentile duration (seconds)."""
        return self.quantile(0.90)

    @property
    def p99(self) -> float:
        """Estimated 99th-percentile duration (seconds)."""
        return self.quantile(0.99)

    @property
    def mean(self) -> float:
        """Arithmetic mean of the observed durations (NaN when empty)."""
        return self.total / self.count if self.count else math.nan

    def percentiles(self) -> dict[str, float]:
        """The standard report tuple: p50/p90/p99/max as a dict."""
        return {"p50": self.p50, "p90": self.p90, "p99": self.p99,
                "max": self.max if self.count else math.nan}

    @classmethod
    def from_values(cls, name: str, values: Iterable[float]) -> "DurationSketch":
        """Build a sketch from an iterable of durations in one call."""
        sketch = cls(name)
        for value in values:
            sketch.observe(value)
        return sketch

    def __getstate__(self) -> dict:
        """Pickle support: state without the (unpicklable) lock."""
        return {"name": self.name, "count": self.count, "total": self.total,
                "min": self.min, "max": self.max,
                "buckets": dict(self.buckets)}

    def __setstate__(self, state: dict) -> None:
        """Restore pickled state and recreate a fresh lock."""
        self.name = state["name"]
        self.count = state["count"]
        self.total = state["total"]
        self.min = state["min"]
        self.max = state["max"]
        self.buckets = dict(state["buckets"])
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:
        if self.count == 0:
            return f"DurationSketch({self.name!r}, empty)"
        return (f"DurationSketch({self.name!r}, n={self.count}, "
                f"p50={self.p50 * 1e3:.3f}ms, p99={self.p99 * 1e3:.3f}ms)")
