"""Performance observability: percentile sketches, profiling, hot spans.

The performance layer on top of :mod:`repro.obs`:

* :class:`DurationSketch` — streaming log-bucket percentile sketch
  (p50/p90/p99/max, ~1 % relative error, exactly mergeable) that the
  metrics registry keeps per span name;
* :class:`SpanProfiler` — deterministic ``sys.setprofile`` profiler
  that attributes wall time to ``span-path;function-stack`` leaves and
  exports flamegraph collapsed-stack format;
* :func:`collapsed_from_spans` / :func:`format_collapsed` — flamegraph
  lines rebuilt from a recorded span tree (what ``tools/trace_report.py
  --flame`` prints);
* :func:`hot_spans` / :func:`format_hot_report` — the per-span-name
  self-time ranking (``--hot``).

The benchmark runner (``python -m repro.bench``) builds its statistics
on these primitives; see ``docs/observability.md`` § "Performance
observability".
"""

from .profiler import SpanProfiler, collapsed_from_spans, format_collapsed
from .report import format_hot_report, hot_spans
from .sketch import DurationSketch

__all__ = [
    "DurationSketch",
    "SpanProfiler",
    "collapsed_from_spans",
    "format_collapsed",
    "format_hot_report",
    "hot_spans",
]
