"""Hot-span analysis: rank recorded spans by where time actually went.

Aggregates a span stream (live tracer or JSONL export) per span name
and ranks by *self* time — the cost a span incurred itself, excluding
children — which is the number that tells you what to optimise.
``tools/trace_report.py --hot`` prints :func:`format_hot_report`; the
CI ``bench-report`` job uploads it next to the ``BENCH_*.json``
trajectory so a slow run comes with its own diagnosis.
"""

from __future__ import annotations

from ...report.tables import format_table
from .profiler import live_span_dicts

__all__ = ["hot_spans", "format_hot_report"]


def hot_spans(records: "list[dict] | None" = None, top: int = 15) -> list[dict]:
    """The ``top`` span names by self time, with call/total aggregates.

    Accepts span dicts (non-span records ignored) or, by default, the
    live global tracer. Each row carries ``name``, ``calls``,
    ``total_s``, ``self_s``, ``mean_s`` (mean total per call) and
    ``self_pct`` (share of all self time), sorted by ``self_s``
    descending.
    """
    if records is None:
        records = live_span_dicts()
    spans = [r for r in records if r.get("type", "span") == "span"]
    agg: dict[str, dict] = {}
    for sp in spans:
        row = agg.get(sp["name"])
        if row is None:
            row = agg[sp["name"]] = {"name": sp["name"], "calls": 0,
                                     "total_s": 0.0, "self_s": 0.0}
        row["calls"] += 1
        row["total_s"] += sp["duration"]
        row["self_s"] += sp["self"]
    rows = sorted(agg.values(), key=lambda r: r["self_s"], reverse=True)
    grand_self = sum(r["self_s"] for r in rows)
    for row in rows:
        row["mean_s"] = row["total_s"] / row["calls"]
        row["self_pct"] = 100.0 * row["self_s"] / grand_self if grand_self else 0.0
    return rows[:top] if top > 0 else rows


def format_hot_report(records: "list[dict] | None" = None,
                      top: int = 15) -> str:
    """The hot-span ranking as an aligned text table."""
    rows = hot_spans(records, top=top)
    if not rows:
        return "(no spans recorded)"
    return format_table(
        ["span", "calls", "self_ms", "self_%", "total_ms", "mean_ms"],
        [(r["name"], r["calls"], r["self_s"] * 1e3, r["self_pct"],
          r["total_s"] * 1e3, r["mean_s"] * 1e3) for r in rows],
        float_spec=".3f", title=f"hot spans (top {len(rows)} by self time)")
