"""Persistent run history: provenance-stamped telemetry across runs.

Every other observability surface in this package is *amnesiac*: spans,
metrics, sketches, and supervision counters live in process-local state
and evaporate at exit, so a regression in cache hit-rate or a span's
p99 between yesterday's run and today's is invisible. This module is
the longitudinal memory — a SQLite-backed store where each instrumented
run (the CLI report, ``python -m repro.bench``, engine sweeps) appends
one **run record**: provenance (git sha, python, platform, backend,
constants version, wall time) plus the full telemetry payload (the
labeled-metric registry in its :meth:`~repro.obs.metrics.
MetricsRegistry.to_dict` wire format, merged
:class:`~repro.obs.perf.DurationSketch` percentiles per span name, and
the engine's :class:`~repro.robust.supervision.SupervisionReport`
lifetime counters).

Three layers on top of the store:

* a **query layer** — :meth:`HistoryStore.runs` /
  :meth:`~HistoryStore.latest` / :meth:`~HistoryStore.series` serve
  typed :class:`RunRecord` / :class:`SeriesPoint` records (never raw
  rows), filterable by command, git sha, and backend;
* a **drift detector** — :func:`detect_drift` extends the MAD-banded
  noise logic of :mod:`repro.bench.compare` to *any* stored series:
  the latest value is compared against the trailing-window median with
  a band of ``max(min_rel·|median|, mad_scale·1.4826·MAD)``, and every
  departure becomes a :class:`~repro.robust.policy.Diagnostic` under
  the standard RAISE/MASK/COLLECT policies;
* **trend reporting** — :func:`format_trend_table` (text, with unicode
  sparklines) and :func:`render_html_dashboard` (one self-contained
  HTML file, inline SVG sparklines per series, drift flags
  highlighted, provenance footer), both behind ``python -m repro.obs
  report``.

The on-disk layout is schema-versioned (``repro-history/1``, tracked
in SQLite's ``user_version`` pragma) with migration-on-open: opening a
database written by an older layout upgrades it in place; a database
from a *newer* layout raises :class:`~repro.errors.DataError` instead
of guessing. Writes are atomic single-writer transactions (``BEGIN
IMMEDIATE`` under a process-local lock), so concurrent readers — the
report CLI, a CI drift check — never observe a torn record.

Recording is opt-in and costs nothing when idle: the engine's history
sink (:func:`note_evaluation`) is one module-global read unless a
:class:`RunRecorder` is active, mirroring the disabled-observability
contract. Everything here is stdlib-only (``sqlite3``, ``json``), so
history works in deployments without NumPy.
"""

from __future__ import annotations

import hashlib
import html as _html
import json
import math
import os
import platform as _platform
import sqlite3
import subprocess
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import DataError, DomainError
from ..robust.policy import Diagnostic, DiagnosticLog, ErrorPolicy
from . import metrics as _metrics
from . import telemetry as _telemetry
from .metrics import MetricsRegistry, metric_key

__all__ = [
    "HISTORY_SCHEMA_ID",
    "HISTORY_SCHEMA_VERSION",
    "DriftReport",
    "DriftVerdict",
    "HistoryStore",
    "RunRecord",
    "RunRecorder",
    "SeriesPoint",
    "constants_version",
    "default_history_path",
    "detect_drift",
    "flatten_samples",
    "format_trend_table",
    "git_sha",
    "note_evaluation",
    "recording",
    "render_html_dashboard",
    "run_environment",
    "write_html_dashboard",
]

#: Current on-disk schema identifier (bump together with the version).
HISTORY_SCHEMA_ID = "repro-history/1"
#: Current ``PRAGMA user_version`` value the store migrates up to.
HISTORY_SCHEMA_VERSION = 1

#: Environment variable naming the default history database path.
HISTORY_ENV_VAR = "REPRO_HISTORY"

#: MAD → normal-σ scale factor (same convention as ``repro.bench``).
_MAD_TO_SIGMA = 1.4826

#: Unicode block ramp for text sparklines.
_SPARK_BLOCKS = "▁▂▃▄▅▆▇█"

_GIT_SHA: str | None = None
_CONSTANTS_VERSION: str | None = None


def git_sha() -> str:
    """Short git SHA of this checkout, cached; ``"unknown"`` outside git.

    Anchored at the package directory (not the process CWD), so a
    server or tool invoked from elsewhere still reports the checkout
    it is running from.
    """
    global _GIT_SHA
    if _GIT_SHA is None:
        try:
            out = subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                capture_output=True, text=True, timeout=10,
                cwd=str(Path(__file__).resolve().parent))
            sha = out.stdout.strip()
            _GIT_SHA = sha if out.returncode == 0 and sha else "unknown"
        except (OSError, subprocess.SubprocessError):
            _GIT_SHA = "unknown"
    return _GIT_SHA


def constants_version() -> str:
    """Content fingerprint of the paper-constant calibration, cached.

    A short SHA-256 over every ``(alias, symbol, value)`` triple in
    :data:`repro.constants.PAPER_CONSTANT_ALIASES` — two runs share a
    ``constants_version`` iff they evaluated under the same eq. (6)
    calibration and Figure-3 anchors, which is exactly the provenance
    a cross-run cost comparison needs.
    """
    global _CONSTANTS_VERSION
    if _CONSTANTS_VERSION is None:
        from .. import constants as _constants
        digest = hashlib.sha256()
        for alias in sorted(_constants.PAPER_CONSTANT_ALIASES):
            record = _constants.PAPER_CONSTANT_ALIASES[alias]
            digest.update(
                f"{alias}={record.symbol}:{record.value!r}\n".encode())
        _CONSTANTS_VERSION = digest.hexdigest()[:12]
    return _CONSTANTS_VERSION


def run_environment() -> dict:
    """Provenance of the current process: git/python/platform/constants."""
    return {
        "git_sha": git_sha(),
        "python": _platform.python_version(),
        "platform": _platform.platform(),
        "constants_version": constants_version(),
    }


@dataclass(frozen=True)
class RunRecord:
    """One stored run: provenance plus its full telemetry payload.

    Attributes
    ----------
    run_id:
        The store-assigned integer id (monotonically increasing).
    started:
        ISO-8601 UTC timestamp of the run start.
    command:
        What produced the record (``"repro.report"``, ``"repro.bench"``,
        a sweep name, ...).
    git_sha / python / platform / constants_version:
        The provenance stamp (see :func:`run_environment`).
    backend:
        Engine backend the run resolved to (``"numpy"``/``"python"``,
        or ``""`` when not applicable).
    wall_time_s:
        Run wall time in seconds.
    metrics:
        The labeled-metric registry snapshot in the
        :meth:`~repro.obs.metrics.MetricsRegistry.to_dict` wire format.
    sketches:
        Span name → merged duration-sketch summary (count/total/min/
        max/p50/p90/p99 plus the sparse bucket state).
    supervision:
        :func:`repro.engine.supervision_stats`-shaped lifetime counters
        of the pooled engine path (empty without the engine).
    samples:
        The flattened scalar series extracted from the payload — what
        :meth:`HistoryStore.series` and :func:`detect_drift` read.
    """

    run_id: int
    started: str
    command: str
    git_sha: str
    python: str
    platform: str
    backend: str
    constants_version: str
    wall_time_s: float
    metrics: dict = field(default_factory=dict)
    sketches: dict = field(default_factory=dict)
    supervision: dict = field(default_factory=dict)
    samples: dict = field(default_factory=dict)

    def registry(self) -> MetricsRegistry:
        """Rebuild the run's metric registry from the stored wire format."""
        return MetricsRegistry.from_dict(self.metrics)


@dataclass(frozen=True)
class SeriesPoint:
    """One run's value of one stored series, with its provenance."""

    run_id: int
    started: str
    command: str
    git_sha: str
    backend: str
    value: float


def _sketch_payload(sketch) -> dict:
    """One duration sketch as its JSON-safe stored summary."""
    pct = sketch.percentiles()
    return {
        "count": sketch.count,
        "total": sketch.total,
        "min": sketch.min if math.isfinite(sketch.min) else None,
        "max": sketch.max if math.isfinite(sketch.max) else None,
        "p50": None if math.isnan(pct["p50"]) else pct["p50"],
        "p90": None if math.isnan(pct["p90"]) else pct["p90"],
        "p99": None if math.isnan(pct["p99"]) else pct["p99"],
        "buckets": {str(i): n for i, n in sorted(sketch.buckets.items())},
    }


def flatten_samples(registry: MetricsRegistry,
                    supervision: dict | None = None) -> dict[str, float]:
    """Extract the scalar series of one run from a registry snapshot.

    Counters and gauges sample under their full series key; histograms
    contribute ``<key>:mean`` and ``<key>:count``; duration sketches
    contribute ``<name>:p50``/``:p90``/``:p99``/``:count``. Numeric
    supervision counters sample as ``supervision:<key>`` (the breaker
    state becomes the 0/1 ``supervision:breaker_open``). NaN values
    are dropped — a NaN can never sit inside a drift band anyway.
    """
    samples: dict[str, float] = {}
    for key, counter in registry.counters.items():
        samples[key] = float(counter.value)
    for key, gauge in registry.gauges.items():
        if not math.isnan(gauge.value):
            samples[key] = float(gauge.value)
    for key, hist in registry.histograms.items():
        if hist.count:
            samples[f"{key}:mean"] = float(hist.mean)
        samples[f"{key}:count"] = float(hist.count)
    for name, sketch in registry.sketches.items():
        if not sketch.count:
            continue
        pct = sketch.percentiles()
        samples[f"{name}:p50"] = float(pct["p50"])
        samples[f"{name}:p90"] = float(pct["p90"])
        samples[f"{name}:p99"] = float(pct["p99"])
        samples[f"{name}:count"] = float(sketch.count)
    for key, value in (supervision or {}).items():
        if key == "breaker_state":
            samples["supervision:breaker_open"] = (
                1.0 if value == "open" else 0.0)
        elif isinstance(value, (int, float)) and math.isfinite(float(value)):
            samples[f"supervision:{key}"] = float(value)
    return samples


class HistoryStore:
    """SQLite-backed run-history store (schema ``repro-history/1``).

    Opening creates or migrates the database in place (see the module
    docstring); every write is one atomic single-writer transaction.
    The store is a context manager — ``with HistoryStore(path) as
    store: ...`` closes the connection on exit.
    """

    def __init__(self, path):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        try:
            self._conn = sqlite3.connect(
                str(self.path), timeout=30.0, check_same_thread=False)
        except sqlite3.Error as exc:
            raise DataError(
                f"cannot open history database {self.path}: {exc}") from exc
        self._conn.row_factory = sqlite3.Row
        self._migrate()

    # -- schema ----------------------------------------------------------

    def _migrate(self) -> None:
        """Bring the database to :data:`HISTORY_SCHEMA_VERSION` in place."""
        with self._lock:
            try:
                version = int(self._conn.execute(
                    "PRAGMA user_version").fetchone()[0])
            except sqlite3.DatabaseError as exc:
                raise DataError(
                    f"{self.path} is not a history database: {exc}") from exc
            if version > HISTORY_SCHEMA_VERSION:
                raise DataError(
                    f"{self.path} uses history schema version {version}, "
                    f"newer than this library's {HISTORY_SCHEMA_VERSION} "
                    f"({HISTORY_SCHEMA_ID}); upgrade the library instead "
                    "of rewriting the store")
            cur = self._conn.cursor()
            cur.execute("BEGIN IMMEDIATE")
            try:
                if version < 1:
                    self._create_v1(cur)
                cur.execute(f"PRAGMA user_version = {HISTORY_SCHEMA_VERSION}")
                self._conn.commit()
            except BaseException:
                self._conn.rollback()
                raise

    @staticmethod
    def _create_v1(cur) -> None:
        """The ``repro-history/1`` layout (fresh databases only)."""
        cur.execute("""
            CREATE TABLE IF NOT EXISTS meta (
                key TEXT PRIMARY KEY,
                value TEXT NOT NULL)
            """)
        cur.execute("""
            CREATE TABLE IF NOT EXISTS runs (
                id INTEGER PRIMARY KEY AUTOINCREMENT,
                started TEXT NOT NULL,
                command TEXT NOT NULL,
                git_sha TEXT NOT NULL DEFAULT 'unknown',
                python TEXT NOT NULL DEFAULT '',
                platform TEXT NOT NULL DEFAULT '',
                backend TEXT NOT NULL DEFAULT '',
                constants_version TEXT NOT NULL DEFAULT '',
                wall_time_s REAL NOT NULL DEFAULT 0.0,
                payload TEXT NOT NULL)
            """)
        cur.execute("""
            CREATE TABLE IF NOT EXISTS samples (
                run_id INTEGER NOT NULL REFERENCES runs(id)
                    ON DELETE CASCADE,
                key TEXT NOT NULL,
                value REAL NOT NULL)
            """)
        cur.execute("CREATE INDEX IF NOT EXISTS samples_key "
                    "ON samples (key, run_id)")
        cur.execute("CREATE INDEX IF NOT EXISTS runs_command "
                    "ON runs (command, id)")
        cur.execute("INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
                    ("schema", HISTORY_SCHEMA_ID))

    # -- writes ----------------------------------------------------------

    def record_run(self, command: str, *, wall_time_s: float,
                   backend: str = "", registry: MetricsRegistry | None = None,
                   supervision: dict | None = None,
                   environment: dict | None = None,
                   started: str | None = None,
                   extra_samples: dict | None = None) -> RunRecord:
        """Append one provenance-stamped run record; returns it typed.

        ``registry`` defaults to a snapshot of the process-global
        registry with engine-side state bridged in
        (:func:`~repro.obs.telemetry.bridge_engine_metrics`), so cache
        hit-rate and supervision counters are captured even when live
        metrics were off. ``supervision`` defaults to
        :func:`repro.engine.supervision_stats` when the engine is
        importable. ``extra_samples`` lets a producer add derived
        scalar series (the bench runner stores per-bench medians this
        way) without inventing registry metrics for them.
        """
        if not command:
            raise DomainError("record_run: command must be a non-empty string")
        wall_time_s = float(wall_time_s)
        if not math.isfinite(wall_time_s) or wall_time_s < 0:
            raise DomainError(
                f"record_run: wall_time_s must be finite and >= 0, "
                f"got {wall_time_s}")
        if registry is None:
            registry = MetricsRegistry.from_dict(
                _metrics.get_registry().to_dict())
            _telemetry.bridge_engine_metrics(registry)
        if supervision is None:
            supervision = _engine_supervision()
        env = run_environment() if environment is None else dict(environment)
        if started is None:
            started = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
        samples = flatten_samples(registry, supervision)
        samples["run:wall_time_s"] = wall_time_s
        for key, value in (extra_samples or {}).items():
            value = float(value)
            if math.isfinite(value):
                samples[str(key)] = value
        sketches = {name: _sketch_payload(s)
                    for name, s in sorted(registry.sketches.items())}
        payload = json.dumps({
            "metrics": registry.to_dict(),
            "sketches": sketches,
            "supervision": supervision,
            "samples": samples,
        }, sort_keys=True)
        with self._lock:
            cur = self._conn.cursor()
            cur.execute("BEGIN IMMEDIATE")
            try:
                cur.execute(
                    "INSERT INTO runs (started, command, git_sha, python, "
                    "platform, backend, constants_version, wall_time_s, "
                    "payload) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    (started, command, env.get("git_sha", "unknown"),
                     env.get("python", ""), env.get("platform", ""),
                     backend, env.get("constants_version", ""),
                     wall_time_s, payload))
                run_id = int(cur.lastrowid)
                cur.executemany(
                    "INSERT INTO samples (run_id, key, value) VALUES (?, ?, ?)",
                    [(run_id, key, value)
                     for key, value in sorted(samples.items())])
                self._conn.commit()
            except BaseException:
                self._conn.rollback()
                raise
        return RunRecord(
            run_id=run_id, started=started, command=command,
            git_sha=env.get("git_sha", "unknown"),
            python=env.get("python", ""), platform=env.get("platform", ""),
            backend=backend,
            constants_version=env.get("constants_version", ""),
            wall_time_s=wall_time_s, metrics=registry.to_dict(),
            sketches=sketches, supervision=dict(supervision),
            samples=samples)

    # -- queries ---------------------------------------------------------

    @staticmethod
    def _row_to_record(row) -> RunRecord:
        try:
            payload = json.loads(row["payload"])
        except (TypeError, json.JSONDecodeError) as exc:
            raise DataError(
                f"history run {row['id']} carries a corrupt payload: "
                f"{exc}") from exc
        return RunRecord(
            run_id=int(row["id"]), started=row["started"],
            command=row["command"], git_sha=row["git_sha"],
            python=row["python"], platform=row["platform"],
            backend=row["backend"],
            constants_version=row["constants_version"],
            wall_time_s=float(row["wall_time_s"]),
            metrics=payload.get("metrics", {}),
            sketches=payload.get("sketches", {}),
            supervision=payload.get("supervision", {}),
            samples=payload.get("samples", {}))

    @staticmethod
    def _filters(command, git_sha_filter, backend) -> tuple[str, list]:
        clauses, params = [], []
        if command is not None:
            clauses.append("command = ?")
            params.append(command)
        if git_sha_filter is not None:
            clauses.append("git_sha = ?")
            params.append(git_sha_filter)
        if backend is not None:
            clauses.append("backend = ?")
            params.append(backend)
        where = (" WHERE " + " AND ".join(clauses)) if clauses else ""
        return where, params

    def runs(self, *, command: str | None = None,
             git_sha: str | None = None, backend: str | None = None,
             limit: int | None = None) -> list[RunRecord]:
        """Stored runs, oldest first, optionally filtered.

        ``limit`` keeps only the *newest* N matching runs (still
        returned oldest-first, so series math reads left to right).
        """
        where, params = self._filters(command, git_sha, backend)
        sql = f"SELECT * FROM runs{where} ORDER BY id DESC"
        if limit is not None:
            if limit < 1:
                raise DomainError(f"runs: limit must be >= 1, got {limit}")
            sql += " LIMIT ?"
            params = params + [int(limit)]
        with self._lock:
            rows = self._conn.execute(sql, params).fetchall()
        return [self._row_to_record(row) for row in reversed(rows)]

    def latest(self, n: int = 1, *, command: str | None = None,
               git_sha: str | None = None,
               backend: str | None = None) -> list[RunRecord]:
        """The newest ``n`` matching runs, oldest first."""
        return self.runs(command=command, git_sha=git_sha, backend=backend,
                         limit=n)

    def series(self, metric: str, labels=None, *, field: str | None = None,
               command: str | None = None, git_sha: str | None = None,
               backend: str | None = None,
               limit: int | None = None) -> list[SeriesPoint]:
        """One stored series across runs, oldest first, as typed points.

        ``metric``/``labels`` follow the registry key convention
        (``series("engine_cache_events_total", {"event": "hit"})``);
        ``field`` selects a sub-sample of histograms and sketches
        (``series("engine.evaluate_grid", field="p99")``). Passing a
        pre-built sample key as ``metric`` (with ``labels=None`` and
        ``field=None``) also works — the query layer resolves exactly
        the keys :func:`flatten_samples` wrote.
        """
        key = metric_key(metric, labels)
        if field:
            key = f"{key}:{field}"
        where, params = self._filters(command, git_sha, backend)
        sql = (
            "SELECT runs.id AS id, runs.started AS started, "
            "runs.command AS command, runs.git_sha AS git_sha, "
            "runs.backend AS backend, samples.value AS value "
            "FROM samples JOIN runs ON runs.id = samples.run_id"
            + (where + " AND " if where else " WHERE ") + "samples.key = ?"
            " ORDER BY runs.id DESC")
        params = params + [key]
        if limit is not None:
            if limit < 1:
                raise DomainError(f"series: limit must be >= 1, got {limit}")
            sql += " LIMIT ?"
            params.append(int(limit))
        with self._lock:
            rows = self._conn.execute(sql, params).fetchall()
        return [SeriesPoint(run_id=int(r["id"]), started=r["started"],
                            command=r["command"], git_sha=r["git_sha"],
                            backend=r["backend"], value=float(r["value"]))
                for r in reversed(rows)]

    def series_keys(self, *, command: str | None = None,
                    backend: str | None = None) -> list[str]:
        """Every distinct sample key stored (optionally per command/backend)."""
        where, params = self._filters(command, None, backend)
        if where:
            sql = ("SELECT DISTINCT samples.key AS key FROM samples "
                   "JOIN runs ON runs.id = samples.run_id" + where
                   + " ORDER BY samples.key")
        else:
            sql = "SELECT DISTINCT key FROM samples ORDER BY key"
        with self._lock:
            rows = self._conn.execute(sql, params).fetchall()
        return [r["key"] for r in rows]

    def __len__(self) -> int:
        with self._lock:
            return int(self._conn.execute(
                "SELECT COUNT(*) FROM runs").fetchone()[0])

    def close(self) -> None:
        """Close the underlying connection (idempotent)."""
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "HistoryStore":
        """Enter: the store itself (opened in ``__init__``)."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Exit: close the connection."""
        self.close()

    def __repr__(self) -> str:
        return f"HistoryStore({str(self.path)!r}, runs={len(self)})"


def _engine_supervision() -> dict:
    """The engine's lifetime supervision stats, or ``{}`` without NumPy."""
    try:
        from .. import engine
    except ImportError:
        return {}
    return engine.supervision_stats()


def default_history_path() -> Path | None:
    """The history database named by ``$REPRO_HISTORY``, if any."""
    path = os.environ.get(HISTORY_ENV_VAR, "").strip()
    return Path(path) if path else None


# -- run recording (the engine-facing sink) ------------------------------

_ACTIVE: "RunRecorder | None" = None


class RunRecorder:
    """Context manager that turns one code block into one run record.

    While active, the engine's :func:`note_evaluation` sink feeds it
    per-``evaluate_grid`` telemetry (evaluations, points, cache hits),
    stored as ``history_*`` counters alongside the registry snapshot.
    The record is written on *clean* exit only — a run that died does
    not poison the trend series with a partial payload.
    """

    def __init__(self, store: HistoryStore, command: str, *,
                 backend: str = "", extra_samples: dict | None = None):
        self._store = store
        self._command = command
        self._backend = backend
        self._extra = dict(extra_samples or {})
        self._lock = threading.Lock()
        self._started_at = 0.0
        self._started_iso = ""
        self._evaluations = 0
        self._points = 0
        self._cache_hits = 0
        self.record: RunRecord | None = None

    def note(self, backend: str, points: int, cache_hit: bool) -> None:
        """Fold one engine grid evaluation into the run (thread-safe)."""
        with self._lock:
            self._evaluations += 1
            self._points += int(points)
            if cache_hit:
                self._cache_hits += 1
            if backend and not self._backend:
                self._backend = backend

    def __enter__(self) -> "RunRecorder":
        """Activate the recorder (one active recorder per process)."""
        global _ACTIVE
        if _ACTIVE is not None:
            raise DomainError(
                "a history RunRecorder is already active; nest runs by "
                "recording them as separate commands instead")
        with self._lock:
            self._started_at = time.perf_counter()
            self._started_iso = time.strftime(
                "%Y-%m-%dT%H:%M:%SZ", time.gmtime())
        _ACTIVE = self
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Deactivate; write the run record when the block exited cleanly."""
        global _ACTIVE
        _ACTIVE = None
        if exc_type is not None:
            return
        wall = time.perf_counter() - self._started_at
        registry = MetricsRegistry.from_dict(
            _metrics.get_registry().to_dict())
        _telemetry.bridge_engine_metrics(registry)
        registry.counter("history_grid_evaluations_total").inc(
            self._evaluations)
        registry.counter("history_grid_points_total").inc(self._points)
        registry.counter("history_grid_cache_hits_total").inc(
            self._cache_hits)
        with self._lock:
            self.record = self._store.record_run(
                self._command, wall_time_s=wall, backend=self._backend,
                registry=registry, started=self._started_iso,
                extra_samples=self._extra)


def recording(store: "HistoryStore | Path | str", command: str, *,
              backend: str = "",
              extra_samples: dict | None = None) -> RunRecorder:
    """Open (if needed) a store and return a :class:`RunRecorder` for it.

    The convenience entry the CLIs use::

        with obs.recording("runs.sqlite", "repro.report") as rec:
            ...   # engine evaluations are sunk into the run
        print(rec.record.run_id)
    """
    if not isinstance(store, HistoryStore):
        store = HistoryStore(store)
    return RunRecorder(store, command, backend=backend,
                       extra_samples=extra_samples)


def note_evaluation(backend: str, points: int, cache_hit: bool) -> None:
    """Engine history sink: one branch when no recorder is active.

    Called by :func:`repro.engine.evaluate_grid` after every dispatch;
    the disabled path must stay guard-only (asserted by
    ``benchmarks/bench_obs_overhead.py``).
    """
    recorder = _ACTIVE
    if recorder is None:
        return
    recorder.note(backend, points, cache_hit)


# -- drift detection -----------------------------------------------------

#: Verdict statuses, in report severity order.
DRIFT = "drift"
OK = "ok"
INSUFFICIENT = "insufficient"


@dataclass(frozen=True)
class DriftVerdict:
    """The drift detector's judgement on one stored series.

    ``median``/``band`` describe the trailing window (the latest run
    excluded); ``status`` is ``"drift"`` when the latest value left the
    band, ``"ok"`` when it stayed inside, ``"insufficient"`` when fewer
    than ``min_runs`` points exist. ``direction`` is ``"high"`` /
    ``"low"`` for drifts, ``""`` otherwise.
    """

    key: str
    status: str
    latest: float
    median: float
    band: float
    window: int
    direction: str = ""

    def describe(self) -> str:
        """One-line human summary (used in CLI drift output)."""
        if self.status != DRIFT:
            return f"{self.key}: {self.status}"
        return (f"{self.key}: latest {self.latest:.6g} drifted {self.direction} "
                f"of trailing median {self.median:.6g} (band ±{self.band:.3g}, "
                f"window {self.window})")


@dataclass(frozen=True)
class DriftReport:
    """Every verdict of one drift check, plus the emitted diagnostics."""

    verdicts: tuple[DriftVerdict, ...]
    diagnostics: tuple[Diagnostic, ...] = ()

    @property
    def flagged(self) -> tuple[DriftVerdict, ...]:
        """The verdicts whose series left their trailing band."""
        return tuple(v for v in self.verdicts if v.status == DRIFT)

    @property
    def ok(self) -> bool:
        """Whether no series drifted."""
        return not self.flagged

    def counts(self) -> dict[str, int]:
        """Status → verdict count (zero-count statuses included)."""
        out = {s: 0 for s in (DRIFT, OK, INSUFFICIENT)}
        for verdict in self.verdicts:
            out[verdict.status] += 1
        return out

    def format(self) -> str:
        """The drift check as a summary line plus per-drift detail lines."""
        counts = self.counts()
        lines = [", ".join(f"{n} {s}" for s, n in counts.items() if n)
                 or "no series checked"]
        for verdict in self.flagged:
            lines.append(f"  drift: {verdict.describe()}")
        lines.append("drift check: FLAGGED" if not self.ok
                     else "drift check: ok")
        return "\n".join(lines)


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def detect_drift(store: HistoryStore, *, keys=None, window: int = 10,
                 min_runs: int = 5, mad_scale: float = 3.0,
                 min_rel: float = 0.20, min_abs: float = 1e-12,
                 policy=ErrorPolicy.MASK, command: str | None = None,
                 backend: str | None = None) -> DriftReport:
    """Flag stored series whose latest value left the trailing MAD band.

    For each series (default: every key in the store) the latest value
    is compared against the trailing ``window`` runs before it: the
    band half-width is ``max(min_rel·|median|, min_abs,
    mad_scale·1.4826·MAD)`` — the same noise model as the
    :mod:`repro.bench.compare` regression gate, generalised to any
    series. Series with fewer than ``min_runs`` points are reported
    ``"insufficient"`` and never flagged, so a fresh store cannot
    cry wolf.

    Every flagged series emits a :class:`~repro.robust.policy.
    Diagnostic` under ``policy``: ``RAISE`` propagates a
    :class:`~repro.errors.DomainError` at the first drift, ``MASK``
    collects diagnostics onto the returned report, ``COLLECT`` raises
    one :class:`~repro.errors.CollectedErrors` carrying all of them
    after the full scan.
    """
    if window < 2:
        raise DomainError(f"detect_drift: window must be >= 2, got {window}")
    if min_runs < 3:
        raise DomainError(
            f"detect_drift: min_runs must be >= 3, got {min_runs}")
    if mad_scale <= 0:
        raise DomainError(
            f"detect_drift: mad_scale must be > 0, got {mad_scale}")
    if min_rel < 0:
        raise DomainError(
            f"detect_drift: min_rel must be >= 0, got {min_rel}")
    policy = ErrorPolicy.coerce(policy)
    if keys is None:
        keys = store.series_keys(command=command, backend=backend)
    log = DiagnosticLog(policy, "obs.history.detect_drift")
    verdicts: list[DriftVerdict] = []
    for key in keys:
        points = store.series(key, command=command, backend=backend)
        values = [p.value for p in points]
        if len(values) < min_runs:
            verdicts.append(DriftVerdict(
                key=key, status=INSUFFICIENT, latest=math.nan,
                median=math.nan, band=math.nan, window=0))
            continue
        trailing = values[-(window + 1):-1]
        latest = values[-1]
        median = _median(trailing)
        mad = _median([abs(v - median) for v in trailing])
        band = max(min_rel * abs(median), float(min_abs),
                   mad_scale * _MAD_TO_SIGMA * mad)
        if abs(latest - median) > band:
            direction = "high" if latest > median else "low"
            verdict = DriftVerdict(
                key=key, status=DRIFT, latest=latest, median=median,
                band=band, window=len(trailing), direction=direction)
            verdicts.append(verdict)
            exc = DomainError(verdict.describe())
            if not log.capture(exc, parameter=key, value=latest,
                               index=points[-1].run_id):
                raise exc
        else:
            verdicts.append(DriftVerdict(
                key=key, status=OK, latest=latest, median=median,
                band=band, window=len(trailing)))
    diagnostics = log.finish()
    return DriftReport(verdicts=tuple(verdicts), diagnostics=diagnostics)


# -- trend reporting -----------------------------------------------------


def _sparkline(values: list[float]) -> str:
    """Unicode mini-chart of a series (empty string for < 2 points)."""
    if len(values) < 2:
        return ""
    lo, hi = min(values), max(values)
    if not (math.isfinite(lo) and math.isfinite(hi)) or hi == lo:
        return _SPARK_BLOCKS[0] * len(values)
    scale = (len(_SPARK_BLOCKS) - 1) / (hi - lo)
    return "".join(
        _SPARK_BLOCKS[int(round((v - lo) * scale))] for v in values)


def _fmt(value: float) -> str:
    if math.isnan(value):
        return ""
    return f"{value:.6g}"


def format_trend_table(store: HistoryStore, *, keys=None, last: int = 12,
                       drift: DriftReport | None = None,
                       command: str | None = None,
                       backend: str | None = None) -> str:
    """The stored series as an aligned text trend table.

    One row per series: run count, latest value, trailing median/band
    (from ``drift`` when given), a unicode sparkline over the last
    ``last`` runs, and the drift verdict.
    """
    from ..report.tables import format_table
    if last < 2:
        raise DomainError(f"format_trend_table: last must be >= 2, got {last}")
    if keys is None:
        keys = store.series_keys(command=command, backend=backend)
    by_key = {} if drift is None else {v.key: v for v in drift.verdicts}
    rows = []
    for key in keys:
        points = store.series(key, command=command, backend=backend,
                              limit=last)
        values = [p.value for p in points]
        if not values:
            continue
        verdict = by_key.get(key)
        rows.append((
            key, len(values), _fmt(values[-1]),
            "" if verdict is None else _fmt(verdict.median),
            "" if verdict is None else _fmt(verdict.band),
            _sparkline(values),
            "" if verdict is None else verdict.status,
        ))
    if not rows:
        return "(history store holds no series)"
    return format_table(
        ["series", "n", "latest", "median", "band", "trend", "verdict"],
        rows, float_spec=".6g",
        title=f"run history ({len(store)} runs, last {last} shown)")


def _svg_sparkline(values: list[float], *, width: int = 220,
                   height: int = 44, flagged: bool = False) -> str:
    """One series as an inline SVG sparkline (last point dotted)."""
    if not values:
        return ""
    lo, hi = min(values), max(values)
    pad = 4.0
    span = (hi - lo) or 1.0
    n = len(values)
    step = (width - 2 * pad) / max(n - 1, 1)
    coords = [
        (pad + i * step,
         height - pad - (v - lo) / span * (height - 2 * pad))
        for i, v in enumerate(values)]
    points = " ".join(f"{x:.1f},{y:.1f}" for x, y in coords)
    stroke = "#c0392b" if flagged else "#2c6e91"
    last_x, last_y = coords[-1]
    return (
        f'<svg class="spark" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" role="img">'
        f'<polyline fill="none" stroke="{stroke}" stroke-width="1.5" '
        f'points="{points}"/>'
        f'<circle cx="{last_x:.1f}" cy="{last_y:.1f}" r="2.5" '
        f'fill="{stroke}"/></svg>')


_HTML_STYLE = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 72rem; color: #1c2833; }
h1 { font-size: 1.4rem; } h1 small { color: #7f8c8d; font-weight: normal; }
table { border-collapse: collapse; width: 100%; font-size: 0.85rem; }
th, td { text-align: left; padding: 0.35rem 0.6rem;
         border-bottom: 1px solid #e5e8ea; vertical-align: middle; }
th { border-bottom: 2px solid #aab4bc; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
tr.drift td { background: #fdeceb; }
.badge { display: inline-block; border-radius: 3px; padding: 0 0.4rem;
         font-size: 0.75rem; color: #fff; background: #27ae60; }
.badge.drift { background: #c0392b; }
.badge.insufficient { background: #95a5a6; }
footer { margin-top: 1.5rem; color: #7f8c8d; font-size: 0.8rem;
         border-top: 1px solid #e5e8ea; padding-top: 0.6rem; }
code { background: #f4f6f7; padding: 0 0.2rem; }
"""


def render_html_dashboard(store: HistoryStore, *, keys=None, last: int = 60,
                          drift: DriftReport | None = None,
                          command: str | None = None,
                          backend: str | None = None,
                          title: str = "repro run history") -> str:
    """The store as one static, self-contained HTML dashboard.

    One table row per stored series — run count, latest value, value
    range, an inline SVG sparkline over the last ``last`` runs — with
    drift-flagged rows highlighted and badged, and a provenance footer
    (schema id, run count, latest run's git sha/backend/timestamp).
    No external assets: the page renders offline and survives being
    attached to a CI run as a single artifact file.
    """
    if keys is None:
        keys = store.series_keys(command=command, backend=backend)
    by_key = {} if drift is None else {v.key: v for v in drift.verdicts}
    rows = []
    for key in keys:
        points = store.series(key, command=command, backend=backend,
                              limit=last)
        values = [p.value for p in points]
        if not values:
            continue
        verdict = by_key.get(key)
        flagged = verdict is not None and verdict.status == DRIFT
        badge = ""
        if verdict is not None:
            badge = (f'<span class="badge {verdict.status}">'
                     f'{verdict.status}</span>')
        rows.append(
            f'<tr class="{"drift" if flagged else ""}">'
            f"<td><code>{_html.escape(key)}</code></td>"
            f'<td class="num">{len(values)}</td>'
            f'<td class="num">{_html.escape(_fmt(values[-1]))}</td>'
            f'<td class="num">{_html.escape(_fmt(min(values)))} … '
            f'{_html.escape(_fmt(max(values)))}</td>'
            f"<td>{_svg_sparkline(values, flagged=flagged)}</td>"
            f"<td>{badge}</td></tr>")
    latest_runs = store.latest(1)
    provenance = ""
    if latest_runs:
        run = latest_runs[-1]
        provenance = (
            f"latest run #{run.run_id} — <code>{_html.escape(run.command)}"
            f"</code> at {_html.escape(run.started)}, git "
            f"<code>{_html.escape(run.git_sha)}</code>, backend "
            f"<code>{_html.escape(run.backend or 'n/a')}</code>, constants "
            f"<code>{_html.escape(run.constants_version or 'n/a')}</code> · ")
    generated = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    n_flagged = 0 if drift is None else len(drift.flagged)
    subtitle = (f"{len(store)} runs · {len(rows)} series"
                + (f" · {n_flagged} drift flag(s)" if drift is not None
                   else ""))
    body = "\n".join(rows) if rows else (
        '<tr><td colspan="6">(history store holds no series)</td></tr>')
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{_html.escape(title)}</title>
<style>{_HTML_STYLE}</style>
</head>
<body>
<h1>{_html.escape(title)} <small>{subtitle}</small></h1>
<table>
<thead><tr><th>series</th><th>n</th><th>latest</th><th>range</th>
<th>trend (last {last})</th><th>verdict</th></tr></thead>
<tbody>
{body}
</tbody>
</table>
<footer>{provenance}schema <code>{HISTORY_SCHEMA_ID}</code> ·
store <code>{_html.escape(str(store.path))}</code> ·
generated {generated} by repro.obs.history</footer>
</body>
</html>
"""


def write_html_dashboard(path, store: HistoryStore, **kwargs) -> Path:
    """Render :func:`render_html_dashboard` to ``path``; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_html_dashboard(store, **kwargs), encoding="utf-8")
    return path
