"""``python -m repro.obs`` — run-history reporting CLI."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
