"""Process-local metrics: labeled counters, gauges, and histograms.

A deliberately small, dependency-free registry in the Prometheus
spirit: *counters* only go up (evaluations per model, cache hits),
*gauges* hold the latest value (iterations of the last optimiser run),
*histograms* accumulate value distributions (grid sizes, simulated
yields) as count/sum/min/max plus fixed decade buckets — enough for a
text report and a Prometheus exposition without reservoir sampling.

Every metric may carry a **frozen label set** — an immutable, sorted
tuple of ``(key, value)`` pairs fixed at creation
(``engine_cache_events_total{event="hit"}``). The registry keys
metrics by *name plus labels*, so the same family name with different
labels yields distinct series, exactly as a Prometheus scrape would
see them. Label keys must be ``snake_case`` (enforced here and by lint
rule ``OBS003`` for literal call sites).

All ingestion paths (:meth:`Counter.inc`, :meth:`Gauge.set`,
:meth:`Histogram.observe`, and sketch feeding) are **thread-safe**: a
per-metric lock serialises read-modify-write updates, and the registry
serialises get-or-create, so the serve layer can share one registry
across request threads. Registries **merge** associatively
(:meth:`MetricsRegistry.merge`): counters and histograms add, sketches
add bucket counts, gauges take the last non-NaN value — the primitive
that folds worker-process telemetry deltas (and future serve-layer
shards) into one loss-free total.

All module-level helpers (:func:`inc`, :func:`set_gauge`,
:func:`observe`, :func:`observe_duration`) are gated on the global
observability flag from :mod:`repro.obs.trace`, so instrumented hot
paths cost one branch when observability is off. Direct use of
:class:`MetricsRegistry` is not gated — tests and tools can always
build their own.

Span durations get a fourth metric kind: a
:class:`~repro.obs.perf.DurationSketch` per span name. Flat
:class:`Histogram` aggregates cannot answer "what was p99?", so the
registry keeps a streaming log-bucket percentile sketch instead and
this module installs a duration sink on the global tracer that feeds
every completed span into it.
"""

from __future__ import annotations

import math
import re
import threading
from dataclasses import dataclass, field

from . import trace as _trace
from .perf.sketch import DurationSketch
from ..errors import DomainError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LEGACY_METRIC_RENAMES",
    "MetricsRegistry",
    "canonical_metric_name",
    "freeze_labels",
    "get_registry",
    "inc",
    "metric_key",
    "observe",
    "observe_duration",
    "set_gauge",
]

#: Valid label-key shape (``snake_case``, same as Prometheus label names).
_LABEL_KEY_RE = re.compile(r"^[a-z][a-z0-9_]*$")

#: Dotted legacy metric names (pre-OBS003 grandfathered spellings) →
#: their canonical snake_case/``_total`` replacements. Only the *read*
#: paths consult this — no in-tree call site emits the old names any
#: more — so JSONL exports written by older versions still reconstruct
#: into the current series (see
#: :func:`repro.obs.exposition.registry_from_records`).
LEGACY_METRIC_RENAMES: dict[str, str] = {
    "api.evaluate_many.scenarios": "api_evaluate_many_scenarios",
    "data.table_a1.cache_hits": "data_table_a1_cache_hits_total",
    "data.table_a1.cache_misses": "data_table_a1_cache_misses_total",
    "data.registry.from_csv.quarantined":
        "data_registry_quarantined_rows_total",
    "designflow.simulator.projects": "designflow_simulator_projects_total",
    "engine.grid.points": "engine_grid_points",
    "engine.map_scalar.points": "engine_map_scalar_points",
    "optimize.optimal_sd.iterations": "optimize_optimal_sd_iterations",
    "optimize.sweep.grid_points": "optimize_sweep_grid_points",
    "robust.quarantine.rows": "robust_quarantine_rows_total",
    "robust.retry.note_retry": "robust_retry_attempts_total",
    "yieldmodels.simulation.wafers": "yieldmodels_simulation_wafers_total",
    "yieldmodels.simulation.dice": "yieldmodels_simulation_dice_total",
    "yieldmodels.simulation.yield": "yieldmodels_simulation_yield",
}


def canonical_metric_name(name: str) -> str:
    """Map a legacy dotted metric name to its canonical spelling.

    Unknown names pass through unchanged, so the shim is safe to apply
    to every record on a read path.
    """
    return LEGACY_METRIC_RENAMES.get(name, name)

#: Histogram decade-bucket upper bounds: 1e-9 … 1e9 (values above the
#: last bound land in the implicit +Inf bucket, index ``len(bounds)``).
HISTOGRAM_BUCKET_BOUNDS: tuple[float, ...] = tuple(
    10.0 ** e for e in range(-9, 10))


def freeze_labels(labels) -> tuple[tuple[str, str], ...]:
    """Normalise a label mapping into the frozen, sorted tuple form.

    Accepts a dict, an iterable of ``(key, value)`` pairs, an
    already-frozen tuple, or ``None`` (→ the empty tuple). Values are
    stringified; keys must be ``snake_case`` and unique.
    """
    if not labels:
        return ()
    items = labels.items() if isinstance(labels, dict) else labels
    frozen = tuple(sorted((str(k), str(v)) for k, v in items))
    seen: set[str] = set()
    for key, _ in frozen:
        if not _LABEL_KEY_RE.match(key):
            raise DomainError(
                f"label key {key!r} is not snake_case ([a-z][a-z0-9_]*)")
        if key in seen:
            raise DomainError(f"duplicate label key {key!r}")
        seen.add(key)
    return frozen


def metric_key(name: str, labels=None) -> str:
    """The registry key of a series: ``name`` or ``name{k="v",...}``."""
    frozen = labels if isinstance(labels, tuple) else freeze_labels(labels)
    if not frozen:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in frozen)
    return f"{name}{{{inner}}}"


@dataclass
class Counter:
    """A monotonically increasing count, optionally labeled."""

    name: str
    value: float = 0.0
    labels: tuple[tuple[str, str], ...] = ()
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter (thread-safe)."""
        if amount < 0:
            raise DomainError(f"counter {self.name}: increment must be >= 0, got {amount}")
        with self._lock:
            self.value += amount

    def merge(self, other: "Counter") -> "Counter":
        """Fold ``other``'s count into this counter; returns self."""
        self.inc(other.value)
        return self

    @property
    def key(self) -> str:
        """The full series key including labels."""
        return metric_key(self.name, self.labels)


@dataclass
class Gauge:
    """A value that can move both ways; remembers only the latest."""

    name: str
    value: float = math.nan
    labels: tuple[tuple[str, str], ...] = ()
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    def set(self, value: float) -> None:
        """Record the current level (thread-safe)."""
        value = float(value)
        with self._lock:
            self.value = value

    def merge(self, other: "Gauge") -> "Gauge":
        """Adopt ``other``'s value unless it is NaN; returns self.

        "Last non-NaN wins" keeps merge associative: any merge order
        over the same operand sequence yields the same survivor.
        """
        if not math.isnan(other.value):
            self.set(other.value)
        return self

    @property
    def key(self) -> str:
        """The full series key including labels."""
        return metric_key(self.name, self.labels)


@dataclass
class Histogram:
    """Streaming summary of a value distribution.

    Tracks count, sum, min, and max exactly, plus sparse decade
    buckets (``HISTOGRAM_BUCKET_BOUNDS`` upper bounds) that give the
    Prometheus exposition real ``le`` buckets — without storing
    samples.
    """

    name: str
    count: int = 0
    total: float = 0.0
    min: float = math.inf
    max: float = -math.inf
    labels: tuple[tuple[str, str], ...] = ()
    buckets: dict[int, int] = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    @staticmethod
    def bucket_index(value: float) -> int:
        """Index of the decade bucket ``value`` falls into.

        Buckets are cumulative-ready upper bounds; values above the
        largest bound return ``len(HISTOGRAM_BUCKET_BOUNDS)`` (the
        +Inf bucket).
        """
        for i, bound in enumerate(HISTOGRAM_BUCKET_BOUNDS):
            if value <= bound:
                return i
        return len(HISTOGRAM_BUCKET_BOUNDS)

    def observe(self, value: float) -> None:
        """Fold one sample into the summary (thread-safe)."""
        value = float(value)
        index = self.bucket_index(value)
        with self._lock:
            self.count += 1
            self.total += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
            self.buckets[index] = self.buckets.get(index, 0) + 1

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold ``other``'s samples into this histogram (exact); returns self."""
        with self._lock:
            self.count += other.count
            self.total += other.total
            if other.min < self.min:
                self.min = other.min
            if other.max > self.max:
                self.max = other.max
            for index, count in other.buckets.items():
                self.buckets[index] = self.buckets.get(index, 0) + count
        return self

    @property
    def mean(self) -> float:
        """Arithmetic mean of the observed samples (NaN when empty)."""
        return self.total / self.count if self.count else math.nan

    @property
    def key(self) -> str:
        """The full series key including labels."""
        return metric_key(self.name, self.labels)


def _none_if_nonfinite(value: float):
    """±inf/NaN → None, so serialized state stays strict-JSON-safe."""
    return value if math.isfinite(value) else None


@dataclass
class MetricsRegistry:
    """Store of counters, gauges, histograms keyed by name *and* labels."""

    counters: dict[str, Counter] = field(default_factory=dict)
    gauges: dict[str, Gauge] = field(default_factory=dict)
    histograms: dict[str, Histogram] = field(default_factory=dict)
    sketches: dict[str, DurationSketch] = field(default_factory=dict)
    _lock: threading.RLock = field(default_factory=threading.RLock,
                                   repr=False, compare=False)

    def counter(self, name: str, labels=None) -> Counter:
        """Get or create the counter series ``name`` / ``labels``."""
        frozen = freeze_labels(labels)
        key = metric_key(name, frozen)
        c = self.counters.get(key)
        if c is None:
            with self._lock:
                c = self.counters.get(key)
                if c is None:
                    c = self.counters[key] = Counter(name, labels=frozen)
        return c

    def gauge(self, name: str, labels=None) -> Gauge:
        """Get or create the gauge series ``name`` / ``labels``."""
        frozen = freeze_labels(labels)
        key = metric_key(name, frozen)
        g = self.gauges.get(key)
        if g is None:
            with self._lock:
                g = self.gauges.get(key)
                if g is None:
                    g = self.gauges[key] = Gauge(name, labels=frozen)
        return g

    def histogram(self, name: str, labels=None) -> Histogram:
        """Get or create the histogram series ``name`` / ``labels``."""
        frozen = freeze_labels(labels)
        key = metric_key(name, frozen)
        h = self.histograms.get(key)
        if h is None:
            with self._lock:
                h = self.histograms.get(key)
                if h is None:
                    h = self.histograms[key] = Histogram(name, labels=frozen)
        return h

    def sketch(self, name: str) -> DurationSketch:
        """Get or create the duration sketch ``name``."""
        s = self.sketches.get(name)
        if s is None:
            with self._lock:
                s = self.sketches.get(name)
                if s is None:
                    s = self.sketches[name] = DurationSketch(name)
        return s

    def reset(self) -> None:
        """Drop every metric."""
        with self._lock:
            self.counters.clear()
            self.gauges.clear()
            self.histograms.clear()
            self.sketches.clear()

    def is_empty(self) -> bool:
        """Whether no metric has been registered yet."""
        return not (self.counters or self.gauges or self.histograms
                    or self.sketches)

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold every series of ``other`` into this registry; returns self.

        The merge is **associative**: counters/histograms/sketches add
        exactly, gauges keep the last non-NaN value, so worker deltas
        and serve-layer shards combine losslessly in any grouping.
        """
        for key, c in other.counters.items():
            self.counter(c.name, c.labels).merge(c)
        for key, g in other.gauges.items():
            self.gauge(g.name, g.labels).merge(g)
        for key, h in other.histograms.items():
            self.histogram(h.name, h.labels).merge(h)
        for name, s in other.sketches.items():
            self.sketch(name).merge(s)
        return self

    def to_dict(self) -> dict:
        """Serialise the full registry state as a JSON-safe dict.

        The inverse of :meth:`from_dict`; the wire format of the
        cross-process :class:`~repro.obs.telemetry.TelemetryPayload`
        metric deltas.
        """
        return {
            "counters": [
                {"name": c.name, "labels": [list(kv) for kv in c.labels],
                 "value": c.value}
                for c in self.counters.values()],
            "gauges": [
                {"name": g.name, "labels": [list(kv) for kv in g.labels],
                 "value": _none_if_nonfinite(g.value)}
                for g in self.gauges.values()],
            "histograms": [
                {"name": h.name, "labels": [list(kv) for kv in h.labels],
                 "count": h.count, "total": h.total,
                 "min": _none_if_nonfinite(h.min),
                 "max": _none_if_nonfinite(h.max),
                 "buckets": {str(i): n for i, n in sorted(h.buckets.items())}}
                for h in self.histograms.values()],
            "sketches": [
                {"name": s.name, "count": s.count, "total": s.total,
                 "min": _none_if_nonfinite(s.min),
                 "max": _none_if_nonfinite(s.max),
                 "buckets": {str(i): n for i, n in sorted(s.buckets.items())}}
                for s in self.sketches.values()],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`to_dict` output."""
        reg = cls()
        for rec in data.get("counters", ()):
            c = reg.counter(rec["name"], [tuple(kv) for kv in rec["labels"]])
            c.inc(rec["value"])
        for rec in data.get("gauges", ()):
            g = reg.gauge(rec["name"], [tuple(kv) for kv in rec["labels"]])
            if rec["value"] is not None:
                g.set(rec["value"])
        for rec in data.get("histograms", ()):
            h = reg.histogram(rec["name"], [tuple(kv) for kv in rec["labels"]])
            h.count = int(rec["count"])
            h.total = float(rec["total"])
            h.min = math.inf if rec["min"] is None else float(rec["min"])
            h.max = -math.inf if rec["max"] is None else float(rec["max"])
            h.buckets = {int(i): int(n) for i, n in rec["buckets"].items()}
        for rec in data.get("sketches", ()):
            s = reg.sketch(rec["name"])
            s.count = int(rec["count"])
            s.total = float(rec["total"])
            s.min = math.inf if rec["min"] is None else float(rec["min"])
            s.max = -math.inf if rec["max"] is None else float(rec["max"])
            s.buckets = {int(i): int(n) for i, n in rec["buckets"].items()}
        return reg

    def rows(self) -> list[tuple[str, str, float, float]]:
        """Flatten to ``(key, kind, value, count)`` rows, name-sorted.

        ``key`` is the full series key (labels rendered inline). For
        counters and gauges ``count`` repeats the sample count implied
        by the kind (counter value / 1); for histograms ``value`` is
        the mean.
        """
        out: list[tuple[str, str, float, float]] = []
        for key, c in self.counters.items():
            out.append((key, "counter", c.value, c.value))
        for key, g in self.gauges.items():
            out.append((key, "gauge", g.value, 1))
        for key, h in self.histograms.items():
            out.append((key, "histogram", h.mean, h.count))
        out.sort(key=lambda r: (r[1], r[0]))
        return out

    def sketch_rows(self) -> list[tuple[str, int, float, float, float, float]]:
        """Duration sketches as ``(name, count, p50, p90, p99, max)`` rows.

        Times in seconds, name-sorted; empty sketches report NaN
        percentiles.
        """
        out: list[tuple[str, int, float, float, float, float]] = []
        for name in sorted(self.sketches):
            s = self.sketches[name]
            pct = s.percentiles()
            out.append((name, s.count, pct["p50"], pct["p90"], pct["p99"],
                        pct["max"]))
        return out


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global metrics registry."""
    return _REGISTRY


def inc(name: str, amount: float = 1.0, labels=None) -> None:
    """Increment counter ``name`` iff observability is enabled."""
    if not _trace._ENABLED:
        return
    _REGISTRY.counter(name, labels).inc(amount)


def set_gauge(name: str, value: float, labels=None) -> None:
    """Set gauge ``name`` iff observability is enabled."""
    if not _trace._ENABLED:
        return
    _REGISTRY.gauge(name, labels).set(value)


def observe(name: str, value: float, labels=None) -> None:
    """Observe ``value`` into histogram ``name`` iff observability is enabled."""
    if not _trace._ENABLED:
        return
    _REGISTRY.histogram(name, labels).observe(value)


def observe_duration(name: str, seconds: float) -> None:
    """Fold a duration into percentile sketch ``name`` iff observability is on."""
    if not _trace._ENABLED:
        return
    _REGISTRY.sketch(name).observe(seconds)


def _span_duration_sink(name: str, seconds: float) -> None:
    """Tracer duration sink: sketch every completed span's duration."""
    _REGISTRY.sketch(name).observe(seconds)


# Spans only exist while observability is enabled, so the sink needs no
# flag check of its own; installing it at import keeps trace.py free of
# any metrics import (the dependency runs strictly metrics -> trace).
_trace.get_tracer().duration_sink = _span_duration_sink
