"""Process-local metrics: counters, gauges, and histograms.

A deliberately small, dependency-free registry in the Prometheus
spirit: *counters* only go up (evaluations per model, cache hits),
*gauges* hold the latest value (iterations of the last optimiser run),
*histograms* accumulate value distributions (grid sizes, simulated
yields) as count/sum/min/max plus fixed decade statistics — enough for
a text report without reservoir sampling.

All module-level helpers (:func:`inc`, :func:`set_gauge`,
:func:`observe`, :func:`observe_duration`) are gated on the global
observability flag from :mod:`repro.obs.trace`, so instrumented hot
paths cost one branch when observability is off. Direct use of
:class:`MetricsRegistry` is not gated — tests and tools can always
build their own.

Span durations get a fourth metric kind: a
:class:`~repro.obs.perf.DurationSketch` per span name. Flat
:class:`Histogram` aggregates cannot answer "what was p99?", so the
registry keeps a streaming log-bucket percentile sketch instead and
this module installs a duration sink on the global tracer that feeds
every completed span into it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from . import trace as _trace
from .perf.sketch import DurationSketch
from ..errors import DomainError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "inc",
    "observe",
    "observe_duration",
    "set_gauge",
]


@dataclass
class Counter:
    """A monotonically increasing count."""

    name: str
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise DomainError(f"counter {self.name}: increment must be >= 0, got {amount}")
        self.value += amount


@dataclass
class Gauge:
    """A value that can move both ways; remembers only the latest."""

    name: str
    value: float = math.nan

    def set(self, value: float) -> None:
        """Record the current level."""
        self.value = float(value)


@dataclass
class Histogram:
    """Streaming summary of a value distribution.

    Tracks count, sum, min, and max exactly — the aggregates the text
    reports print — without storing samples.
    """

    name: str
    count: int = 0
    total: float = 0.0
    min: float = math.inf
    max: float = -math.inf

    def observe(self, value: float) -> None:
        """Fold one sample into the summary."""
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Arithmetic mean of the observed samples (NaN when empty)."""
        return self.total / self.count if self.count else math.nan


@dataclass
class MetricsRegistry:
    """Name-keyed store of counters, gauges, and histograms."""

    counters: dict[str, Counter] = field(default_factory=dict)
    gauges: dict[str, Gauge] = field(default_factory=dict)
    histograms: dict[str, Histogram] = field(default_factory=dict)
    sketches: dict[str, DurationSketch] = field(default_factory=dict)

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name``."""
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str) -> Histogram:
        """Get or create the histogram ``name``."""
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram(name)
        return h

    def sketch(self, name: str) -> DurationSketch:
        """Get or create the duration sketch ``name``."""
        s = self.sketches.get(name)
        if s is None:
            s = self.sketches[name] = DurationSketch(name)
        return s

    def reset(self) -> None:
        """Drop every metric."""
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()
        self.sketches.clear()

    def is_empty(self) -> bool:
        """Whether no metric has been registered yet."""
        return not (self.counters or self.gauges or self.histograms
                    or self.sketches)

    def rows(self) -> list[tuple[str, str, float, float]]:
        """Flatten to ``(name, kind, value, count)`` rows, name-sorted.

        For counters and gauges ``count`` repeats the sample count
        implied by the kind (counter value / 1); for histograms
        ``value`` is the mean.
        """
        out: list[tuple[str, str, float, float]] = []
        for name, c in self.counters.items():
            out.append((name, "counter", c.value, c.value))
        for name, g in self.gauges.items():
            out.append((name, "gauge", g.value, 1))
        for name, h in self.histograms.items():
            out.append((name, "histogram", h.mean, h.count))
        out.sort(key=lambda r: (r[1], r[0]))
        return out

    def sketch_rows(self) -> list[tuple[str, int, float, float, float, float]]:
        """Duration sketches as ``(name, count, p50, p90, p99, max)`` rows.

        Times in seconds, name-sorted; empty sketches report NaN
        percentiles.
        """
        out: list[tuple[str, int, float, float, float, float]] = []
        for name in sorted(self.sketches):
            s = self.sketches[name]
            pct = s.percentiles()
            out.append((name, s.count, pct["p50"], pct["p90"], pct["p99"],
                        pct["max"]))
        return out


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global metrics registry."""
    return _REGISTRY


def inc(name: str, amount: float = 1.0) -> None:
    """Increment counter ``name`` iff observability is enabled."""
    if not _trace._ENABLED:
        return
    _REGISTRY.counter(name).inc(amount)


def set_gauge(name: str, value: float) -> None:
    """Set gauge ``name`` iff observability is enabled."""
    if not _trace._ENABLED:
        return
    _REGISTRY.gauge(name).set(value)


def observe(name: str, value: float) -> None:
    """Observe ``value`` into histogram ``name`` iff observability is enabled."""
    if not _trace._ENABLED:
        return
    _REGISTRY.histogram(name).observe(value)


def observe_duration(name: str, seconds: float) -> None:
    """Fold a duration into percentile sketch ``name`` iff observability is on."""
    if not _trace._ENABLED:
        return
    _REGISTRY.sketch(name).observe(seconds)


def _span_duration_sink(name: str, seconds: float) -> None:
    """Tracer duration sink: sketch every completed span's duration."""
    _REGISTRY.sketch(name).observe(seconds)


# Spans only exist while observability is enabled, so the sink needs no
# flag check of its own; installing it at import keeps trace.py free of
# any metrics import (the dependency runs strictly metrics -> trace).
_trace.get_tracer().duration_sink = _span_duration_sink
