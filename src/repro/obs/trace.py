"""Hierarchical span tracer with a near-zero-cost disabled path.

The tracer answers "where did the time go, and in what call structure?"
for a model evaluation. A *span* is a named, timed region of code::

    with span("cost.eq4", n_tr=1e7, sd=300):
        ...

Spans nest: the span entered while another is open becomes its child,
tracked through a :mod:`contextvars` context variable so nesting is
correct across generators and threads that copy the context. Timings
use the monotonic :func:`time.perf_counter` clock, so wall-clock
adjustments never corrupt a trace.

Observability is **off by default**. Every instrumentation point first
checks the module-level ``_ENABLED`` flag; when false, :func:`span`
returns a shared no-op context manager and the cost of the
instrumentation is one attribute load and one branch. :func:`enable`
/ :func:`disable` flip the flag globally (it gates tracing, metrics,
and provenance recording alike).
"""

from __future__ import annotations

import contextvars
import time
from dataclasses import dataclass, field

__all__ = [
    "Span",
    "Stopwatch",
    "Tracer",
    "add_span_hook",
    "current_span",
    "detach_context",
    "disable",
    "enable",
    "get_tracer",
    "is_enabled",
    "remove_span_hook",
    "span",
]

#: Global observability switch. Checked (cheaply) on every hot-path hit.
_ENABLED: bool = False

#: The innermost open span of the current execution context.
_CURRENT: contextvars.ContextVar["Span | None"] = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)

#: Live span-event subscribers, called ``hook(event, span)`` with
#: ``event`` in {"enter", "exit"}. Only the profiler installs one, so
#: the per-span cost while nobody listens is a truthiness check.
_SPAN_HOOKS: list = []


def add_span_hook(hook) -> None:
    """Subscribe ``hook(event, span)`` to live span enter/exit events.

    Used by :class:`repro.obs.perf.SpanProfiler` to follow the span
    path in real time; hooks run synchronously inside ``__enter__`` /
    ``__exit__``, so keep them fast.
    """
    if hook not in _SPAN_HOOKS:
        _SPAN_HOOKS.append(hook)


def remove_span_hook(hook) -> None:
    """Unsubscribe a hook added via :func:`add_span_hook` (idempotent)."""
    if hook in _SPAN_HOOKS:
        _SPAN_HOOKS.remove(hook)


def enable() -> None:
    """Turn observability on globally (tracing, metrics, provenance)."""
    global _ENABLED
    _ENABLED = True


def disable() -> None:
    """Turn observability off globally; instrumentation becomes a no-op."""
    global _ENABLED
    _ENABLED = False


def is_enabled() -> bool:
    """Whether observability is currently on."""
    return _ENABLED


class Stopwatch:
    """A tiny monotonic-clock timer (used by the benchmark harness).

    Examples
    --------
    ``elapsed()`` keeps counting until :meth:`stop` freezes it::

        sw = Stopwatch().start()
        ...work...
        seconds = sw.stop()
    """

    __slots__ = ("_start", "_elapsed")

    def __init__(self) -> None:
        self._start: float | None = None
        self._elapsed: float = 0.0

    def start(self) -> "Stopwatch":
        """Start (or restart) the clock; returns ``self`` for chaining."""
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        """Freeze the clock and return the elapsed seconds."""
        if self._start is not None:
            self._elapsed = time.perf_counter() - self._start
            self._start = None
        return self._elapsed

    def elapsed(self) -> float:
        """Elapsed seconds so far (running or frozen)."""
        if self._start is not None:
            return time.perf_counter() - self._start
        return self._elapsed


class Span:
    """One named, timed region of a trace.

    Use via :func:`span`; spans are context managers and record
    themselves on the global tracer when they exit.
    """

    __slots__ = ("name", "attrs", "span_id", "parent_id", "depth",
                 "start", "end", "child_time", "_token")

    def __init__(self, name: str, attrs: dict, span_id: int,
                 parent_id: int | None, depth: int):
        self.name = name
        self.attrs = attrs
        self.span_id = span_id
        self.parent_id = parent_id
        self.depth = depth
        self.start = 0.0
        self.end = 0.0
        self.child_time = 0.0
        self._token: contextvars.Token | None = None

    @property
    def duration(self) -> float:
        """Total wall time inside the span (seconds)."""
        return self.end - self.start

    @property
    def self_time(self) -> float:
        """Time spent in the span excluding its child spans (seconds)."""
        return max(0.0, self.duration - self.child_time)

    def set_attr(self, key: str, value) -> None:
        """Attach one attribute to the span after entry."""
        self.attrs[key] = value

    def __enter__(self) -> "Span":
        """Open the span and make it the current context span."""
        self._token = _CURRENT.set(self)
        if _SPAN_HOOKS:
            for hook in _SPAN_HOOKS:
                hook("enter", self)
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Close the span, roll its time up to the parent, record it."""
        self.end = time.perf_counter()
        if self._token is not None:
            _CURRENT.reset(self._token)
            self._token = None
        parent = _CURRENT.get()
        if parent is not None:
            parent.child_time += self.duration
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        if _SPAN_HOOKS:
            for hook in _SPAN_HOOKS:
                hook("exit", self)
        _TRACER.record(self)

    def __repr__(self) -> str:
        return (f"Span({self.name!r}, id={self.span_id}, "
                f"duration={self.duration * 1e3:.3f}ms)")


class _NullSpan:
    """Shared do-nothing span returned while observability is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        """No-op entry."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """No-op exit."""

    def set_attr(self, key: str, value) -> None:
        """Ignore the attribute."""


_NULL_SPAN = _NullSpan()


@dataclass
class Tracer:
    """Process-local store of completed spans.

    Spans are appended in completion order (children before parents,
    like a flame-graph recorder). ``max_spans`` bounds memory on
    runaway loops; spans past the cap are counted in ``dropped`` and
    discarded.
    """

    max_spans: int = 100_000
    spans: list[Span] = field(default_factory=list)
    dropped: int = 0
    _next_id: int = 0
    #: Optional ``sink(name, seconds)`` fed every completed span's
    #: duration — the metrics registry installs its percentile-sketch
    #: recorder here (even dropped spans are sketched: the sketch is
    #: fixed-size, so it can afford what the span list cannot).
    duration_sink: "object | None" = None

    def next_id(self) -> int:
        """Allocate a fresh span id."""
        self._next_id += 1
        return self._next_id

    def record(self, sp: Span) -> None:
        """Store one completed span (or drop it past the cap)."""
        if self.duration_sink is not None:
            self.duration_sink(sp.name, sp.duration)
        if len(self.spans) >= self.max_spans:
            self.dropped += 1
            return
        self.spans.append(sp)

    def adopt(self, sp: Span) -> None:
        """Store a span completed elsewhere, bypassing the duration sink.

        Used by :mod:`repro.obs.telemetry` when merging worker-process
        spans into the parent trace: the worker already sketched the
        duration into its metric deltas, so feeding the sink here would
        double-count it. The span cap still applies.
        """
        if len(self.spans) >= self.max_spans:
            self.dropped += 1
            return
        self.spans.append(sp)

    def reset(self) -> None:
        """Forget every recorded span."""
        self.spans.clear()
        self.dropped = 0
        self._next_id = 0

    def __len__(self) -> int:
        return len(self.spans)

    def roots(self) -> list[Span]:
        """Completed spans with no parent, in start order."""
        out = [s for s in self.spans if s.parent_id is None]
        out.sort(key=lambda s: s.start)
        return out

    def children_of(self, span_id: int) -> list[Span]:
        """Direct children of a span, in start order."""
        out = [s for s in self.spans if s.parent_id == span_id]
        out.sort(key=lambda s: s.start)
        return out


_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-global tracer holding all completed spans."""
    return _TRACER


def current_span() -> Span | None:
    """The innermost open span of this context, or ``None``."""
    return _CURRENT.get()


def detach_context() -> None:
    """Clear the current-span context variable for this context.

    Needed by worker-side telemetry scopes: a pool worker forked while
    the parent had a span open inherits that (stale, parent-process)
    span through the context variable, and new worker spans would
    parent under it with colliding ids. Resetting makes worker spans
    clean roots that :func:`repro.obs.telemetry.merge_payload` re-hangs
    under the real parent span.
    """
    _CURRENT.set(None)


def span(name: str, **attrs) -> "Span | _NullSpan":
    """Open a named child span of the current context span.

    Returns a context manager. While observability is disabled this
    returns a shared no-op object, so instrumented code pays only the
    flag check.

    Parameters
    ----------
    name:
        Dotted span name; the first segment names the subsystem
        (``"cost.total.transistor_cost"``).
    attrs:
        Arbitrary JSON-friendly attributes recorded on the span.
    """
    if not _ENABLED:
        return _NULL_SPAN
    parent = _CURRENT.get()
    return Span(
        name,
        dict(attrs),
        span_id=_TRACER.next_id(),
        parent_id=None if parent is None else parent.span_id,
        depth=0 if parent is None else parent.depth + 1,
    )
