"""Exporters: JSON-lines traces, text span trees, metric tables.

Three consumers, three formats:

* **machines** — :func:`export_jsonl` writes one JSON object per span
  / metric / provenance record (``{"type": "span", ...}``), the
  interchange format ``tools/trace_report.py`` re-reads;
* **humans, structure** — :func:`format_span_tree` renders the call
  tree with total/self times, collapsing same-named siblings
  (``cost.total... ×104``) so optimiser inner loops stay readable;
* **humans, aggregate** — :func:`summary` /
  :func:`format_summary_table` roll spans up per name (calls, total,
  self, mean), and :func:`format_metrics_table` prints the registry.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

from ..report.tables import format_table
from . import metrics as _metrics
from . import provenance as _provenance
from . import trace as _trace

__all__ = [
    "export_jsonl",
    "format_metrics_table",
    "format_span_tree",
    "format_summary_table",
    "read_jsonl",
    "span_to_dict",
    "summary",
]


def span_to_dict(sp: "_trace.Span") -> dict:
    """One span as a JSON-friendly dict (the JSONL line payload)."""
    return {
        "type": "span",
        "id": sp.span_id,
        "parent_id": sp.parent_id,
        "name": sp.name,
        "depth": sp.depth,
        "start": sp.start,
        "duration": sp.duration,
        "self": sp.self_time,
        "attrs": sp.attrs,
    }


def export_jsonl(path, tracer: "_trace.Tracer | None" = None,
                 registry: "_metrics.MetricsRegistry | None" = None,
                 ledger: "_provenance.ProvenanceLedger | None" = None) -> int:
    """Write spans, metrics, and provenance to a JSON-lines file.

    Each line is a JSON object tagged ``type`` (``span`` / ``metric``
    / ``provenance``). Defaults to the process-global stores; pass
    explicit objects to export a subset. Returns the line count.
    """
    tracer = tracer if tracer is not None else _trace.get_tracer()
    registry = registry if registry is not None else _metrics.get_registry()
    ledger = ledger if ledger is not None else _provenance.get_ledger()
    lines: list[str] = []
    for sp in tracer.spans:
        lines.append(json.dumps(span_to_dict(sp)))
    for c in registry.counters.values():
        lines.append(json.dumps(
            {"type": "metric", "name": c.name,
             "labels": [list(kv) for kv in c.labels],
             "kind": "counter", "value": c.value, "count": c.value}))
    for g in registry.gauges.values():
        lines.append(json.dumps(
            {"type": "metric", "name": g.name,
             "labels": [list(kv) for kv in g.labels],
             "kind": "gauge", "value": _json_safe(g.value), "count": 1}))
    for h in registry.histograms.values():
        lines.append(json.dumps(
            {"type": "metric", "name": h.name,
             "labels": [list(kv) for kv in h.labels],
             "kind": "histogram", "value": _json_safe(h.mean),
             "count": h.count, "sum": h.total,
             "min": _json_safe(h.min) if math.isfinite(h.min) else None,
             "max": _json_safe(h.max) if math.isfinite(h.max) else None,
             "buckets": {str(i): n for i, n in sorted(h.buckets.items())}}))
    for name, count, p50, p90, p99, mx in registry.sketch_rows():
        s = registry.sketches[name]
        lines.append(json.dumps(
            {"type": "metric", "name": name, "kind": "sketch",
             "count": count, "total": s.total,
             "min": _json_safe(s.min) if math.isfinite(s.min) else None,
             "p50": _json_safe(p50), "p90": _json_safe(p90),
             "p99": _json_safe(p99), "max": _json_safe(mx),
             "buckets": {str(i): n for i, n in sorted(s.buckets.items())}}))
    for rec in ledger.records:
        lines.append(json.dumps(
            {"type": "provenance", "source": rec.source,
             "equation": rec.equation, "params": rec.params,
             "dataset": rec.dataset,
             "rows": None if rec.rows is None else list(rec.rows)}))
    Path(path).write_text("\n".join(lines) + ("\n" if lines else ""))
    return len(lines)


def read_jsonl(path) -> list[dict]:
    """Read a JSON-lines export back into a list of dicts."""
    records = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if line:
            records.append(json.loads(line))
    return records


def _json_safe(value: float):
    """NaN → None so the JSONL line stays strict-JSON parseable."""
    return None if isinstance(value, float) and math.isnan(value) else value


def _fmt_seconds(seconds: float) -> str:
    """Human time: seconds, milliseconds, or microseconds as fits."""
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.0f}us"


def _tree_lines(lines: list[str], siblings: list[dict],
                children_map: dict, depth: int) -> None:
    """Render one sibling group, collapsing repeats of the same name."""
    order: list[str] = []
    groups: dict[str, list[dict]] = {}
    for sp in siblings:
        if sp["name"] not in groups:
            order.append(sp["name"])
            groups[sp["name"]] = []
        groups[sp["name"]].append(sp)
    for name in order:
        members = groups[name]
        total = sum(s["duration"] for s in members)
        self_time = sum(s["self"] for s in members)
        label = f"{name} x{len(members)}" if len(members) > 1 else name
        pad = "  " * depth
        lines.append(f"{pad}{label:<{max(46 - len(pad), 1)}} "
                     f"total {_fmt_seconds(total):>9}  "
                     f"self {_fmt_seconds(self_time):>9}")
        children: list[dict] = []
        for member in members:
            children.extend(children_map.get(member["id"], []))
        children.sort(key=lambda s: s["start"])
        if children:
            _tree_lines(lines, children, children_map, depth + 1)


def format_span_tree(records: list[dict] | None = None) -> str:
    """Indented span tree with total/self times.

    Accepts span dicts (as produced by :func:`span_to_dict` or read
    back via :func:`read_jsonl`; non-span records are ignored) or, by
    default, the live global tracer. Same-named siblings collapse into
    one ``name xN`` line with summed times.
    """
    if records is None:
        records = [span_to_dict(sp) for sp in _trace.get_tracer().spans]
    spans = [r for r in records if r.get("type", "span") == "span"]
    if not spans:
        return "(no spans recorded)"
    ids = {s["id"] for s in spans}
    children_map: dict = {}
    roots = []
    for sp in spans:
        parent = sp["parent_id"]
        if parent is None or parent not in ids:
            roots.append(sp)
        else:
            children_map.setdefault(parent, []).append(sp)
    roots.sort(key=lambda s: s["start"])
    lines: list[str] = []
    _tree_lines(lines, roots, children_map, 0)
    return "\n".join(lines)


def summary(tracer: "_trace.Tracer | None" = None) -> list[dict]:
    """Per-name roll-up of the trace: calls, total, self, and mean time.

    Sorted by total time, descending — the profile view.
    """
    tracer = tracer if tracer is not None else _trace.get_tracer()
    agg: dict[str, dict] = {}
    for sp in tracer.spans:
        row = agg.get(sp.name)
        if row is None:
            row = agg[sp.name] = {"name": sp.name, "calls": 0,
                                  "total_s": 0.0, "self_s": 0.0}
        row["calls"] += 1
        row["total_s"] += sp.duration
        row["self_s"] += sp.self_time
    out = sorted(agg.values(), key=lambda r: r["total_s"], reverse=True)
    for row in out:
        row["mean_s"] = row["total_s"] / row["calls"]
    return out


def format_summary_table(tracer: "_trace.Tracer | None" = None) -> str:
    """The :func:`summary` roll-up as an aligned text table."""
    rows = summary(tracer)
    if not rows:
        return "(no spans recorded)"
    return format_table(
        ["span", "calls", "total_ms", "self_ms", "mean_ms"],
        [(r["name"], r["calls"], r["total_s"] * 1e3, r["self_s"] * 1e3,
          r["mean_s"] * 1e3) for r in rows],
        float_spec=".3f",
    )


def format_metrics_table(registry: "_metrics.MetricsRegistry | None" = None) -> str:
    """The metrics registry as aligned text tables.

    Counters/gauges/histograms render as the classic
    name/kind/value/count table; duration sketches follow in their own
    table with p50/p90/p99/max columns (milliseconds).
    """
    registry = registry if registry is not None else _metrics.get_registry()
    rows = registry.rows()
    sketch_rows = registry.sketch_rows()
    if not rows and not sketch_rows:
        return "(no metrics recorded)"
    sections = []
    if rows:
        sections.append(format_table(
            ["metric", "kind", "value", "count"],
            [(name, kind, value, count) for name, kind, value, count in rows],
            float_spec=".6g",
        ))
    if sketch_rows:
        sections.append(format_table(
            ["span duration sketch", "count", "p50_ms", "p90_ms", "p99_ms",
             "max_ms"],
            [(name, count, p50 * 1e3, p90 * 1e3, p99 * 1e3, mx * 1e3)
             for name, count, p50, p90, p99, mx in sketch_rows],
            float_spec=".3f",
        ))
    return "\n\n".join(sections)
