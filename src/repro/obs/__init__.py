"""Observability: tracing, metrics, and provenance for model evaluations.

Every public model evaluation in this library can report *what it did*
(hierarchical timed spans), *how often and how large* (counters,
gauges, histograms), and *where each number came from* (provenance:
paper equation, parameters, dataset rows). All three share one global
switch — :func:`enable` / :func:`disable` — and cost a single branch
per instrumented call while disabled, so production hot paths are
unaffected by default.

Typical diagnostic session::

    from repro import obs

    with obs.enabled():
        result = sd_sweep(PAPER_FIGURE4_MODEL, 1e7, 0.18, 5e3, 0.4, 8.0)
        print(obs.format_span_tree())
        print(obs.format_metrics_table())
        print(obs.provenance_of(result))

The CLI exposes the same data: ``python -m repro report --trace
--metrics --profile``. See ``docs/observability.md`` for the full
guide.
"""

from .export import (
    export_jsonl,
    format_metrics_table,
    format_span_tree,
    format_summary_table,
    read_jsonl,
    span_to_dict,
    summary,
)
from .exposition import (
    MetricsEndpoint,
    health_payload,
    parse_prometheus,
    registry_from_records,
    render_prometheus,
    spans_to_otlp,
    start_metrics_endpoint,
    write_snapshot,
)
from .instrument import enabled, span_name_for, traced
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    freeze_labels,
    get_registry,
    inc,
    metric_key,
    observe,
    observe_duration,
    set_gauge,
)
from .telemetry import (
    TelemetryPayload,
    TraceContext,
    WorkerTelemetry,
    bridge_engine_metrics,
    capture_context,
    merge_payload,
)
from .perf import (
    DurationSketch,
    SpanProfiler,
    collapsed_from_spans,
    format_collapsed,
    format_hot_report,
    hot_spans,
)
from .provenance import (
    Provenance,
    ProvenanceLedger,
    attach,
    get_ledger,
    provenance_of,
    record_provenance,
    summarize_value,
)
from .trace import (
    Span,
    Stopwatch,
    Tracer,
    add_span_hook,
    current_span,
    disable,
    enable,
    get_tracer,
    is_enabled,
    remove_span_hook,
    span,
)

# history imports repro.robust.policy, which imports back into this
# package — safe only once the submodules above are bound, so keep
# this import last.
from .history import (
    HISTORY_SCHEMA_ID,
    DriftReport,
    DriftVerdict,
    HistoryStore,
    RunRecord,
    RunRecorder,
    SeriesPoint,
    detect_drift,
    format_trend_table,
    note_evaluation,
    recording,
    render_html_dashboard,
)

__all__ = [
    # trace
    "Span",
    "Stopwatch",
    "Tracer",
    "add_span_hook",
    "current_span",
    "disable",
    "enable",
    "get_tracer",
    "is_enabled",
    "remove_span_hook",
    "span",
    # instrument
    "enabled",
    "span_name_for",
    "traced",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "freeze_labels",
    "get_registry",
    "inc",
    "metric_key",
    "observe",
    "observe_duration",
    "set_gauge",
    # telemetry
    "TelemetryPayload",
    "TraceContext",
    "WorkerTelemetry",
    "bridge_engine_metrics",
    "capture_context",
    "merge_payload",
    # exposition
    "MetricsEndpoint",
    "health_payload",
    "parse_prometheus",
    "registry_from_records",
    "render_prometheus",
    "spans_to_otlp",
    "start_metrics_endpoint",
    "write_snapshot",
    # perf
    "DurationSketch",
    "SpanProfiler",
    "collapsed_from_spans",
    "format_collapsed",
    "format_hot_report",
    "hot_spans",
    # provenance
    "Provenance",
    "ProvenanceLedger",
    "attach",
    "get_ledger",
    "provenance_of",
    "record_provenance",
    "summarize_value",
    # history
    "HISTORY_SCHEMA_ID",
    "DriftReport",
    "DriftVerdict",
    "HistoryStore",
    "RunRecord",
    "RunRecorder",
    "SeriesPoint",
    "detect_drift",
    "format_trend_table",
    "note_evaluation",
    "recording",
    "render_html_dashboard",
    # export
    "export_jsonl",
    "format_metrics_table",
    "format_span_tree",
    "format_summary_table",
    "read_jsonl",
    "span_to_dict",
    "summary",
    # module-level
    "reset",
]


def reset() -> None:
    """Clear all recorded observability state (spans, metrics, ledger)."""
    get_tracer().reset()
    get_registry().reset()
    get_ledger().reset()
