"""Instrumentation helpers: the ``@traced`` decorator and scoped enable.

:func:`traced` is the one-line way to put a library function on the
observability grid: it opens a span named after the function, bumps a
``<span>.calls`` counter, optionally records a provenance entry with
the bound call parameters, and attaches that record to the returned
object when the result can carry attributes.

The disabled path is near-zero cost: the wrapper performs a single
module-global flag check and tail-calls the wrapped function — no
signature binding, no allocation. The overhead-guard test in
``tests/test_obs_overhead.py`` holds this to within 5 % on a real
sweep.
"""

from __future__ import annotations

import functools
import inspect
from contextlib import contextmanager

from . import metrics as _metrics
from . import trace as _trace
from .provenance import attach, record_provenance

__all__ = ["enabled", "span_name_for", "traced"]


def span_name_for(fn) -> str:
    """Default span name of a function: module path after ``repro.``
    plus the qualified name (``"cost.total.TotalCostModel.transistor_cost"``).
    """
    module = fn.__module__ or ""
    if module.startswith("repro."):
        module = module[len("repro."):]
    return f"{module}.{fn.__qualname__}"


def traced(name: str | None = None, *, equation: str | None = None,
           capture: tuple[str, ...] | None = None,
           attach_result: bool = False):
    """Decorate a function with a span, a call counter, and provenance.

    Parameters
    ----------
    name:
        Span name; defaults to :func:`span_name_for` of the function.
    equation:
        Paper equation id; when given, each enabled call records a
        :class:`~repro.obs.provenance.Provenance` entry in the ledger.
    capture:
        Parameter names to record in the provenance entry; defaults to
        every bound parameter except ``self``.
    attach_result:
        Also attach the provenance record to the returned object
        (works for dataclass results; silently skipped otherwise).

    Examples
    --------
    ::

        @traced(equation="3")
        def transistor_cost(cost_per_cm2, feature_um, sd, yield_fraction):
            ...
    """
    def decorate(fn):
        span_name = name if name is not None else span_name_for(fn)
        calls_metric = f"{span_name}.calls"
        sig = inspect.signature(fn) if equation is not None else None

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if not _trace._ENABLED:
                return fn(*args, **kwargs)
            _metrics._REGISTRY.counter(calls_metric).inc()
            prov = None
            if sig is not None:
                try:
                    bound = sig.bind(*args, **kwargs)
                    bound.apply_defaults()
                    params = {
                        k: v for k, v in bound.arguments.items()
                        if k != "self" and (capture is None or k in capture)
                    }
                except TypeError:
                    params = {}
                prov = record_provenance(span_name, equation, params)
            with _trace.span(span_name, **({} if equation is None else {"equation": equation})):
                result = fn(*args, **kwargs)
            if attach_result and prov is not None:
                attach(result, prov)
            return result

        return wrapper

    return decorate


@contextmanager
def enabled():
    """Context manager enabling observability inside the block.

    Restores the previous enabled/disabled state on exit — the tool of
    choice for tests and short diagnostic sections.
    """
    previous = _trace.is_enabled()
    _trace.enable()
    try:
        yield
    finally:
        if not previous:
            _trace.disable()
