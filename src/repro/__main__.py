"""Command-line summary: ``python -m repro [report] [flags]``.

Prints a one-screen reproduction summary — the paper's headline numbers
regenerated live — so a fresh checkout can be sanity-checked without
running the full bench suite.

Failure contract: any :class:`repro.errors.ReproError` exits nonzero
with a one-line ``error: ...`` message on stderr — never a traceback.

Flags (any combination; without them the output is byte-identical to
the bare report):

``--trace``
    Append the hierarchical span tree of the evaluations behind the
    report (see :mod:`repro.obs`).
``--metrics``
    Append the counter/gauge/histogram table.
``--profile``
    Append the per-span-name timing roll-up (calls, total/self/mean).
``--permissive``
    Evaluate under :attr:`repro.robust.ErrorPolicy.MASK`: infeasible
    points become NaN entries instead of aborting the report, and a
    masked-point summary is appended when anything was masked.
``--backend {auto,numpy,python}``
    Select the :mod:`repro.engine` evaluation backend for the run
    (``auto`` picks NumPy when available).
``--telemetry DIR``
    Run the report with observability enabled and dump the full
    telemetry snapshot bundle (``metrics.prom`` in Prometheus text
    format, ``spans.otlp.json``, ``provenance.json``) into ``DIR``
    — see :func:`repro.obs.write_snapshot`.
``--history PATH``
    Append this run (provenance + metric/sketch/supervision payload)
    to the persistent run-history store at ``PATH`` — see
    :mod:`repro.obs.history`. Defaults to ``$REPRO_HISTORY`` when the
    variable is set; trend/drift reporting over the store lives under
    ``python -m repro.obs``.
"""

from __future__ import annotations

import sys

from . import engine, obs
from .obs import history as obs_history
from .api import Scenario, evaluate_many
from .cost import PAPER_FIGURE4_MODEL
from .data import DesignRegistry, load_itrs_1999
from .density import sd_vs_feature_fit
from .errors import DomainError, ReproError
from .obs.instrument import traced
from .report import format_table
from .roadmap import constant_cost_series
from .robust import DEFAULT_RETRY_BUDGET, Diagnostic, ErrorPolicy

_FLAGS = ("--trace", "--metrics", "--profile", "--permissive")


@traced("report.build")
def build_report(policy: ErrorPolicy = ErrorPolicy.RAISE,
                 diagnostics: list | None = None) -> str:
    """Assemble the summary text (importable for testing).

    Under ``policy=ErrorPolicy.MASK`` (the CLI's ``--permissive``) the
    sections degrade gracefully: series points that fail evaluate to
    NaN, failing optima are reported as ``n/a``, and every failure
    lands in the optional ``diagnostics`` list.
    """
    policy = ErrorPolicy.coerce(policy)
    permissive = policy is not ErrorPolicy.RAISE
    lines = []
    lines.append("repro - Maly, 'IC Design in High-Cost Nanometer-Technologies "
                 "Era' (DAC 2001)")
    lines.append("=" * 74)

    registry = DesignRegistry.table_a1()
    sd_logic = registry.sd_logic_values()
    fit = sd_vs_feature_fit(registry)
    lines.append(f"\nTable A1: {len(registry)} designs | logic s_d "
                 f"{min(sd_logic):.0f}-{max(sd_logic):.0f} | trend s_d ~ "
                 f"lambda^{fit.slope:.2f} (rising as features shrink)")

    series = constant_cost_series(load_itrs_1999(), policy=policy,
                                  diagnostics=diagnostics)
    rows = [(p.node.year, p.node.feature_nm, p.sd_implied, p.sd_constant_cost,
             p.ratio) for p in series]
    lines.append("\n" + format_table(
        ["year", "nm", "ITRS s_d", "const-cost s_d", "ratio"],
        rows, float_spec=".4g",
        title="Figures 2-3: the cost contradiction ($34 die, 8 $/cm2, Y=0.8)"))

    operating_points = [
        Scenario(n_transistors=1e7, feature_um=0.18, sd=300.0,
                 n_wafers=5_000, yield_fraction=0.4, label="5k wafers, Y=0.4"),
        Scenario(n_transistors=1e7, feature_um=0.18, sd=300.0,
                 n_wafers=50_000, yield_fraction=0.9, label="50k wafers, Y=0.9"),
    ]
    results = evaluate_many(operating_points, policy=policy,
                            diagnostics=diagnostics)
    priced = ", ".join(
        f"{r.scenario.label}: ${r.die_cost_usd:.0f}/die" if r.ok
        else f"{r.scenario.label}: n/a" for r in results)
    lines.append(f"\nScenario facade (10M tx, 0.18 um, s_d=300, "
                 f"{results[0].backend} backend): {priced}")

    def fig4_opt(n_wafers: float, yield_fraction: float) -> str:
        scenario = Scenario(n_transistors=1e7, feature_um=0.18,
                            n_wafers=n_wafers, yield_fraction=yield_fraction,
                            cost_per_cm2=8.0, model=PAPER_FIGURE4_MODEL)
        try:
            res = scenario.optimal_sd(
                retry=DEFAULT_RETRY_BUDGET if permissive else None)
        except ReproError as exc:
            if not permissive:
                raise
            if diagnostics is not None:
                diagnostics.append(Diagnostic.from_exception(
                    exc, where="optimize.optimum.optimal_sd", equation="4",
                    parameter="n_wafers", value=n_wafers))
            return "n/a"
        return f"{res.sd_opt:.0f}"

    fig4a = fig4_opt(5_000, 0.4)
    fig4b = fig4_opt(50_000, 0.9)
    lines.append(f"\nFigure 4 optima (10M tx, 0.18 um): "
                 f"s_d = {fig4a} at 5k wafers/Y=0.4 vs "
                 f"{fig4b} at 50k wafers/Y=0.9")
    lines.append("-> neither the smallest die nor maximum yield minimises "
                 "transistor cost (#3.1).")
    supervision = engine.supervision_stats()
    if supervision["retries"] or supervision["restarts"] \
            or supervision["degraded_chunks"] \
            or supervision["breaker_state"] == "open":
        # Only printed when the pooled path actually had to recover from
        # something, so the default report stays byte-identical.
        lines.append(
            f"\nEngine resilience: {supervision['retries']} chunk "
            f"retr{'y' if supervision['retries'] == 1 else 'ies'} "
            f"(crash {supervision['retry_crash']}, timeout "
            f"{supervision['retry_timeout']}, corrupt "
            f"{supervision['retry_corrupt']}), "
            f"{supervision['restarts']} pool restart(s), "
            f"{supervision['degraded_chunks']} degraded chunk(s), "
            f"breaker {supervision['breaker_state']}")
    lines.append("\nFull regeneration: pytest benchmarks/ --benchmark-only "
                 "(artifacts in benchmarks/output/).")
    return "\n".join(lines)


def observability_sections(show_trace: bool, show_metrics: bool,
                           show_profile: bool) -> str:
    """Render the sections requested by the CLI flags from global state."""
    tracer = obs.get_tracer()
    sections = []
    if show_trace:
        header = f"trace: {len(tracer)} spans"
        if tracer.dropped:
            header += f" ({tracer.dropped} dropped)"
        sections.append(header + "\n" + "-" * 74 + "\n" + obs.format_span_tree())
    if show_metrics:
        sections.append("metrics\n" + "-" * 74 + "\n" + obs.format_metrics_table())
    if show_profile:
        sections.append("profile (per-span roll-up)\n" + "-" * 74 + "\n"
                        + obs.format_summary_table())
    return "\n\n".join(sections)


def masked_summary(diagnostics: list) -> str:
    """Render the ``--permissive`` masked-point summary section."""
    lines = [f"permissive mode: {len(diagnostics)} point(s) masked",
             "-" * 74]
    lines.extend(f"  - {diag}" for diag in diagnostics)
    return "\n".join(lines)


def _split_value_flag(argv: list[str], flag: str) -> tuple[list[str], str | None]:
    """Extract ``FLAG VALUE`` / ``FLAG=VALUE`` from the argv."""
    rest: list[str] = []
    value: str | None = None
    i = 0
    while i < len(argv):
        arg = argv[i]
        if arg == flag:
            if i + 1 >= len(argv):
                raise DomainError(f"{flag} requires a value")
            value = argv[i + 1]
            i += 2
            continue
        if arg.startswith(flag + "="):
            value = arg.split("=", 1)[1]
            i += 1
            continue
        rest.append(arg)
        i += 1
    return rest, value


_USAGE = ("usage: python -m repro [report] [--trace] [--metrics] "
          "[--profile] [--permissive] [--backend auto|numpy|python] "
          "[--telemetry DIR] [--history PATH]")


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    argv = list(sys.argv[1:] if argv is None else argv)
    try:
        argv, backend = _split_value_flag(argv, "--backend")
        argv, telemetry_dir = _split_value_flag(argv, "--telemetry")
        argv, history_path = _split_value_flag(argv, "--history")
    except DomainError as exc:
        print(f"{exc}; {_USAGE}", file=sys.stderr)
        return 2
    if backend is not None:
        try:
            engine.set_backend(backend)
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    flags = [a for a in argv if a.startswith("--")]
    positional = [a for a in argv if not a.startswith("--")]
    unknown = [f for f in flags if f not in _FLAGS]
    if unknown:
        print(f"unknown flag {unknown[0]!r}; {_USAGE}", file=sys.stderr)
        return 2
    if positional and positional[0] not in ("report",):
        print(f"unknown command {positional[0]!r}; usage: python -m repro [report]",
              file=sys.stderr)
        return 2
    permissive = "--permissive" in flags
    policy = ErrorPolicy.MASK if permissive else ErrorPolicy.RAISE
    diagnostics: list = []
    obs_flags = [f for f in flags if f != "--permissive"]
    if history_path is None:
        history_default = obs_history.default_history_path()
        if history_default is not None:
            history_path = str(history_default)
    try:
        if not obs_flags and telemetry_dir is None and history_path is None:
            text = build_report(policy=policy, diagnostics=diagnostics)
            extra = ""
        else:
            recorder = None
            with obs.enabled():
                obs.reset()
                if history_path is not None:
                    with obs_history.recording(history_path,
                                               "repro.report") as recorder:
                        text = build_report(policy=policy,
                                            diagnostics=diagnostics)
                else:
                    text = build_report(policy=policy, diagnostics=diagnostics)
            extra = observability_sections(
                "--trace" in flags, "--metrics" in flags, "--profile" in flags)
            if telemetry_dir is not None:
                paths = obs.write_snapshot(telemetry_dir)
                note = "telemetry snapshot: " + ", ".join(
                    str(paths[key]) for key in sorted(paths))
                extra = (extra + "\n\n" + note) if extra else note
            if recorder is not None and recorder.record is not None:
                note = (f"history: run #{recorder.record.run_id} "
                        f"-> {history_path}")
                extra = (extra + "\n\n" + note) if extra else note
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(text)
    if extra:
        print()
        print(extra)
    if permissive and diagnostics:
        print()
        print(masked_summary(diagnostics))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
