"""Command-line summary: ``python -m repro [report] [--trace] [--metrics] [--profile]``.

Prints a one-screen reproduction summary — the paper's headline numbers
regenerated live — so a fresh checkout can be sanity-checked without
running the full bench suite.

Observability flags (any combination; without them the output is
byte-identical to the bare report):

``--trace``
    Append the hierarchical span tree of the evaluations behind the
    report (see :mod:`repro.obs`).
``--metrics``
    Append the counter/gauge/histogram table.
``--profile``
    Append the per-span-name timing roll-up (calls, total/self/mean).
"""

from __future__ import annotations

import sys

from . import obs
from .cost import PAPER_FIGURE4_MODEL
from .data import DesignRegistry, load_itrs_1999
from .density import sd_vs_feature_fit
from .obs.instrument import traced
from .optimize import optimal_sd
from .report import format_table
from .roadmap import constant_cost_series

_FLAGS = ("--trace", "--metrics", "--profile")


@traced("report.build")
def build_report() -> str:
    """Assemble the summary text (importable for testing)."""
    lines = []
    lines.append("repro - Maly, 'IC Design in High-Cost Nanometer-Technologies "
                 "Era' (DAC 2001)")
    lines.append("=" * 74)

    registry = DesignRegistry.table_a1()
    sd_logic = registry.sd_logic_values()
    fit = sd_vs_feature_fit(registry)
    lines.append(f"\nTable A1: {len(registry)} designs | logic s_d "
                 f"{min(sd_logic):.0f}-{max(sd_logic):.0f} | trend s_d ~ "
                 f"lambda^{fit.slope:.2f} (rising as features shrink)")

    series = constant_cost_series(load_itrs_1999())
    rows = [(p.node.year, p.node.feature_nm, p.sd_implied, p.sd_constant_cost,
             p.ratio) for p in series]
    lines.append("\n" + format_table(
        ["year", "nm", "ITRS s_d", "const-cost s_d", "ratio"],
        rows, float_spec=".4g",
        title="Figures 2-3: the cost contradiction ($34 die, 8 $/cm2, Y=0.8)"))

    fig4a = optimal_sd(PAPER_FIGURE4_MODEL, 1e7, 0.18, 5_000, 0.4, 8.0)
    fig4b = optimal_sd(PAPER_FIGURE4_MODEL, 1e7, 0.18, 50_000, 0.9, 8.0)
    lines.append(f"\nFigure 4 optima (10M tx, 0.18 um): "
                 f"s_d = {fig4a.sd_opt:.0f} at 5k wafers/Y=0.4 vs "
                 f"{fig4b.sd_opt:.0f} at 50k wafers/Y=0.9")
    lines.append("-> neither the smallest die nor maximum yield minimises "
                 "transistor cost (#3.1).")
    lines.append("\nFull regeneration: pytest benchmarks/ --benchmark-only "
                 "(artifacts in benchmarks/output/).")
    return "\n".join(lines)


def observability_sections(show_trace: bool, show_metrics: bool,
                           show_profile: bool) -> str:
    """Render the sections requested by the CLI flags from global state."""
    tracer = obs.get_tracer()
    sections = []
    if show_trace:
        header = f"trace: {len(tracer)} spans"
        if tracer.dropped:
            header += f" ({tracer.dropped} dropped)"
        sections.append(header + "\n" + "-" * 74 + "\n" + obs.format_span_tree())
    if show_metrics:
        sections.append("metrics\n" + "-" * 74 + "\n" + obs.format_metrics_table())
    if show_profile:
        sections.append("profile (per-span roll-up)\n" + "-" * 74 + "\n"
                        + obs.format_summary_table())
    return "\n\n".join(sections)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    argv = list(sys.argv[1:] if argv is None else argv)
    flags = [a for a in argv if a.startswith("--")]
    positional = [a for a in argv if not a.startswith("--")]
    unknown = [f for f in flags if f not in _FLAGS]
    if unknown:
        print(f"unknown flag {unknown[0]!r}; usage: python -m repro [report] "
              "[--trace] [--metrics] [--profile]", file=sys.stderr)
        return 2
    if positional and positional[0] not in ("report",):
        print(f"unknown command {positional[0]!r}; usage: python -m repro [report]",
              file=sys.stderr)
        return 2
    if not flags:
        print(build_report())
        return 0
    with obs.enabled():
        obs.reset()
        text = build_report()
    print(text)
    print()
    print(observability_sections("--trace" in flags, "--metrics" in flags,
                                 "--profile" in flags))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
