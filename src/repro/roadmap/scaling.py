"""Technology scaling laws — the cadence behind the ITRS trajectories.

Utilities for generating and interpolating roadmap-style scaling
sequences: the ×0.7-per-node linear shrink, the Moore's-law doubling of
functions per chip, and continuous interpolation between the discrete
ITRS nodes (used when an analysis needs a year the roadmap does not
tabulate).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..data.records import RoadmapNode
from ..errors import DomainError
from ..validation import check_positive

__all__ = ["ScalingLaw", "MOORE_DOUBLING_MONTHS", "node_sequence", "interpolate_nodes"]

#: Historical functions-per-chip doubling period the paper's era assumed.
MOORE_DOUBLING_MONTHS = 18.0


@dataclass(frozen=True)
class ScalingLaw:
    """An exponential scaling law ``value(year) = anchor · rate^(Δyear)``.

    Attributes
    ----------
    anchor_year:
        Year at which ``value = anchor_value``.
    anchor_value:
        Value at the anchor year.
    annual_rate:
        Multiplicative growth per year (e.g. 0.7^(1/3) ≈ 0.888 for the
        linear shrink; 2^(12/18) ≈ 1.587 for 18-month doubling).
    """

    anchor_year: float
    anchor_value: float
    annual_rate: float

    def __post_init__(self) -> None:
        check_positive(self.anchor_value, "anchor_value")
        check_positive(self.annual_rate, "annual_rate")

    def value(self, year):
        """Evaluate the law at ``year`` (scalar or array)."""
        dy = np.asarray(year, dtype=float) - self.anchor_year
        result = self.anchor_value * self.annual_rate**dy
        return result if np.ndim(year) else float(result)

    def year_for_value(self, target):
        """Invert the law: the year at which the target value is reached."""
        target = check_positive(target, "target")
        if self.annual_rate == 1.0:
            raise DomainError("a flat law never reaches a different value")
        return self.anchor_year + math.log(target / self.anchor_value) / math.log(self.annual_rate)

    @classmethod
    def feature_shrink(cls, anchor_year: float = 1999.0, anchor_nm: float = 180.0,
                       shrink_per_node: float = 0.7, years_per_node: float = 3.0) -> "ScalingLaw":
        """The ITRS linear-shrink law (×0.7 every 3 years by default)."""
        return cls(anchor_year, anchor_nm, shrink_per_node ** (1.0 / years_per_node))

    @classmethod
    def moore_functions(cls, anchor_year: float = 1999.0, anchor_millions: float = 21.0,
                        doubling_months: float = MOORE_DOUBLING_MONTHS) -> "ScalingLaw":
        """Moore's-law functions-per-chip growth (18-month doubling)."""
        return cls(anchor_year, anchor_millions, 2.0 ** (12.0 / doubling_months))


def node_sequence(
    start_year: int = 1999,
    start_nm: float = 180.0,
    n_nodes: int = 6,
    years_per_node: int = 3,
    shrink: float = 0.7,
) -> list[tuple[int, float]]:
    """Generate an ITRS-style ``(year, feature_nm)`` node calendar.

    Feature sizes are rounded to the conventional "named node" values
    (one decimal in nm terms).
    """
    if n_nodes < 1:
        raise DomainError("n_nodes must be >= 1")
    check_positive(start_nm, "start_nm")
    if not 0 < shrink < 1:
        raise DomainError(f"shrink must be in (0,1); got {shrink}")
    out = []
    nm = float(start_nm)
    for i in range(n_nodes):
        out.append((start_year + i * years_per_node, round(nm, 1)))
        nm *= shrink
    return out


def interpolate_nodes(nodes: list[RoadmapNode], year: float) -> RoadmapNode:
    """Geometric interpolation between tabulated roadmap nodes.

    Feature size, transistor count and density are all exponential in
    time, so interpolation is linear in log-space. ``year`` must lie
    within the tabulated span.
    """
    if len(nodes) < 2:
        raise DomainError("need at least two nodes to interpolate")
    nodes = sorted(nodes, key=lambda n: n.year)
    years = [n.year for n in nodes]
    if not years[0] <= year <= years[-1]:
        raise DomainError(f"year {year} outside roadmap span [{years[0]}, {years[-1]}]")
    for left, right in zip(nodes, nodes[1:]):
        if left.year <= year <= right.year:
            if right.year == left.year:
                return left
            t = (year - left.year) / (right.year - left.year)

            def geo(a: float, b: float) -> float:
                return float(a * (b / a) ** t)

            return RoadmapNode(
                year=int(round(year)),
                feature_nm=geo(left.feature_nm, right.feature_nm),
                mpu_transistors_m=geo(left.mpu_transistors_m, right.mpu_transistors_m),
                mpu_density_m_per_cm2=geo(left.mpu_density_m_per_cm2, right.mpu_density_m_per_cm2),
                mpu_die_cost_usd=geo(left.mpu_die_cost_usd, right.mpu_die_cost_usd),
                note=f"interpolated between {left.year} and {right.year}",
            )
    raise DomainError(f"year {year} not bracketed (internal error)")
