"""Roadmap feasibility — confronting the industrial trend with the roadmap.

The paper's core quantitative argument joins three curves:

1. the **industrial trend** of logic ``s_d`` extracted from Table A1
   (Figure 1) — rising as λ shrinks;
2. the **roadmap-implied** ``s_d`` from ITRS density targets
   (Figure 2) — falling;
3. the **constant-die-cost** ``s_d`` (Figure 3) — falling faster.

:func:`feasibility_report` extrapolates the fitted industrial trend to
each roadmap node and reports the multiplicative *density gap* between
where industry is heading and where the roadmap/economics require it to
be — the quantified version of the paper's conclusion that "the
observed trends must be changed".
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..data.records import RoadmapNode
from ..data.registry import DesignRegistry
from ..density.trends import sd_vs_feature_fit
from ..engine import map_scalar
from ..obs.instrument import traced
from ..robust.policy import ErrorPolicy
from .constant_cost import (
    PAPER_FIGURE3_ASSUMPTIONS,
    ConstantCostAssumptions,
    constant_cost_sd,
)

__all__ = ["FeasibilityPoint", "feasibility_report"]


@dataclass(frozen=True)
class FeasibilityPoint:
    """Industrial-vs-required density at one roadmap node."""

    node: RoadmapNode
    sd_industrial_trend: float
    sd_roadmap_implied: float
    sd_constant_cost: float

    @property
    def gap_vs_roadmap(self) -> float:
        """Industrial trend / roadmap-implied ``s_d`` (>1 = industry too sparse)."""
        return self.sd_industrial_trend / self.sd_roadmap_implied

    @property
    def gap_vs_constant_cost(self) -> float:
        """Industrial trend / constant-cost ``s_d`` (>1 = die cost grows)."""
        return self.sd_industrial_trend / self.sd_constant_cost

    @property
    def implied_die_cost_growth(self) -> float:
        """Factor by which the die cost exceeds the 1999 anchor if industry
        keeps its density trend (die cost scales linearly with ``s_d`` at
        fixed ``N_tr``, ``λ``, ``C_sq``, ``Y``)."""
        return self.gap_vs_constant_cost


@traced(equation="3")
def feasibility_report(
    registry: DesignRegistry,
    nodes: list[RoadmapNode],
    assumptions: ConstantCostAssumptions = PAPER_FIGURE3_ASSUMPTIONS,
    policy: ErrorPolicy = ErrorPolicy.RAISE,
    diagnostics: list | None = None,
) -> list[FeasibilityPoint]:
    """Join Figures 1-3 into a per-node feasibility table.

    The industrial trend is the Table A1 power-law fit
    ``s_d = c·λ^p`` (p < 0) evaluated at each node's feature size —
    i.e. "what s_d will industry ship at this node if nothing changes".

    Under ``policy=ErrorPolicy.MASK`` a node whose evaluation fails
    becomes an all-NaN :class:`FeasibilityPoint` (plus a
    :class:`repro.robust.Diagnostic` in the optional ``diagnostics``
    list) instead of killing the report; COLLECT raises the aggregate
    at the end.
    """
    policy = ErrorPolicy.coerce(policy)
    fit = sd_vs_feature_fit(registry)

    def point(node: RoadmapNode) -> FeasibilityPoint:
        return FeasibilityPoint(
            node=node,
            sd_industrial_trend=float(fit.predict(node.feature_um)),
            sd_roadmap_implied=node.implied_sd(),
            sd_constant_cost=constant_cost_sd(node, assumptions),
        )

    def masked_point(node: RoadmapNode) -> FeasibilityPoint:
        return FeasibilityPoint(
            node=node, sd_industrial_trend=math.nan,
            sd_roadmap_implied=math.nan, sd_constant_cost=math.nan)

    points, log = map_scalar(
        sorted(nodes, key=lambda n: n.year), point, policy=policy,
        where="roadmap.feasibility.feasibility_report", equation="3",
        parameter="year", value_of=lambda node: node.year,
        on_error=masked_point)
    collected = log.finish()
    if diagnostics is not None:
        diagnostics.extend(collected)
    return points
