"""ITRS roadmap analytics (paper §2.2.3, Figures 2-3)."""

from .scaling import MOORE_DOUBLING_MONTHS, ScalingLaw, interpolate_nodes, node_sequence
from .constant_cost import (
    PAPER_FIGURE3_ASSUMPTIONS,
    ConstantCostAssumptions,
    ConstantCostPoint,
    constant_cost_sd,
    constant_cost_series,
)
from .feasibility import FeasibilityPoint, feasibility_report
from .scenarios import SCENARIO_NAMES, Scenario, scenario, scenario_series

__all__ = [
    "ScalingLaw",
    "MOORE_DOUBLING_MONTHS",
    "node_sequence",
    "interpolate_nodes",
    "ConstantCostAssumptions",
    "ConstantCostPoint",
    "PAPER_FIGURE3_ASSUMPTIONS",
    "constant_cost_sd",
    "constant_cost_series",
    "FeasibilityPoint",
    "feasibility_report",
    "Scenario",
    "scenario",
    "scenario_series",
    "SCENARIO_NAMES",
]
