"""Roadmap scenarios — relaxing Figure 3's "very optimistic" assumptions.

§2.2.3 is explicit: the cost contradiction "was demonstrated by using a
very optimistic scenario i.e. assuming no increase in C_sq and no
decrease in yield, [which] is highly unlikely". This module defines the
scenario machinery to test that sentence: each scenario supplies
per-node ``C_sq`` and ``Y`` trajectories, and the constant-cost
analysis re-runs under it.

Three named scenarios ship:

* ``paper-optimistic`` — flat 8 $/cm², flat Y = 0.8 (the paper's own);
* ``realistic`` — ``Cm_sq`` from the calibrated wafer-cost model
  (silicon gets dearer per node), yield from the composite model at the
  roadmap's implied die;
* ``pessimistic`` — steeper wafer-cost growth and slow yield learning.

The asserted result (``bench_ablation_scenarios``): every relaxation
makes the contradiction *worse* — the ratio curve shifts up — so the
paper's conclusion is robust in the direction it claims.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

import math

from ..constants import (
    ASSUMED_YIELD,
    MANUFACTURING_COST_PER_CM2_USD,
    MPU_DIE_COST_1999_USD,
)
from ..data.records import RoadmapNode
from ..engine import map_scalar
from ..errors import DomainError
from ..obs.instrument import traced
from ..robust.policy import ErrorPolicy
from ..wafer.cost import WaferCostModel
from ..yieldmodels.composite import CompositeYield
from .constant_cost import ConstantCostAssumptions, ConstantCostPoint, constant_cost_sd

__all__ = ["Scenario", "scenario", "scenario_series", "SCENARIO_NAMES"]


@dataclass(frozen=True)
class Scenario:
    """Per-node cost/yield assumptions for the Figure-3 analysis.

    Attributes
    ----------
    name:
        Scenario label.
    cost_per_cm2:
        ``node -> Cm_sq`` ($/cm²).
    yield_fraction:
        ``node -> Y`` in (0, 1].
    die_cost_usd:
        The constant die-cost anchor (the paper's $34).
    """

    name: str
    cost_per_cm2: Callable[[RoadmapNode], float]
    yield_fraction: Callable[[RoadmapNode], float]
    die_cost_usd: float = MPU_DIE_COST_1999_USD

    def assumptions_at(self, node: RoadmapNode) -> ConstantCostAssumptions:
        """Materialise the per-node :class:`ConstantCostAssumptions`."""
        return ConstantCostAssumptions(
            die_cost_usd=self.die_cost_usd,
            cost_per_cm2=float(self.cost_per_cm2(node)),
            yield_fraction=float(self.yield_fraction(node)),
        )


def _paper_optimistic() -> Scenario:
    return Scenario(
        name="paper-optimistic",
        cost_per_cm2=lambda node: MANUFACTURING_COST_PER_CM2_USD,
        yield_fraction=lambda node: ASSUMED_YIELD,
    )


def _realistic() -> Scenario:
    wafer_cost = WaferCostModel()
    composite = CompositeYield()

    def cm_sq(node: RoadmapNode) -> float:
        # Mature, high-volume silicon at the node.
        return float(wafer_cost.cost_per_cm2(node.feature_um))

    def y(node: RoadmapNode) -> float:
        # Yield of the roadmap's own implied die at the node, mature.
        n_tr = node.mpu_transistors_m * 1e6
        return float(composite(n_tr, node.implied_sd(), node.feature_um, 1e9))

    return Scenario(name="realistic", cost_per_cm2=cm_sq, yield_fraction=y)


def _pessimistic() -> Scenario:
    wafer_cost = WaferCostModel(feature_exponent=1.3)
    composite = CompositeYield()

    def cm_sq(node: RoadmapNode) -> float:
        return float(wafer_cost.cost_per_cm2(node.feature_um))

    def y(node: RoadmapNode) -> float:
        n_tr = node.mpu_transistors_m * 1e6
        # Slow learning: only 20k cumulative wafers at each node.
        return float(composite(n_tr, node.implied_sd(), node.feature_um, 2e4))

    return Scenario(name="pessimistic", cost_per_cm2=cm_sq, yield_fraction=y)


_FACTORIES = {
    "paper-optimistic": _paper_optimistic,
    "realistic": _realistic,
    "pessimistic": _pessimistic,
}

SCENARIO_NAMES = tuple(_FACTORIES)


def scenario(name: str) -> Scenario:
    """Instantiate a named scenario.

    >>> scenario("paper-optimistic").yield_fraction(None)
    0.8
    """
    try:
        return _FACTORIES[name]()
    except KeyError as exc:
        raise DomainError(
            f"unknown scenario {name!r}; known: {', '.join(SCENARIO_NAMES)}") from exc


@traced(equation="3")
def scenario_series(nodes: list[RoadmapNode], scn: Scenario,
                    policy: ErrorPolicy = ErrorPolicy.RAISE,
                    diagnostics: list | None = None) -> list[ConstantCostPoint]:
    """The Figure-3 series with per-node scenario assumptions.

    Scenario callables evaluate real models per node (wafer cost,
    composite yield), so single-node failures are expected at extreme
    nodes; under ``policy=ErrorPolicy.MASK`` such a node becomes an
    all-NaN point (plus a :class:`repro.robust.Diagnostic` in the
    optional ``diagnostics`` list) instead of killing the series, and
    COLLECT raises the aggregate at the end.
    """
    policy = ErrorPolicy.coerce(policy)
    def point(node: RoadmapNode) -> ConstantCostPoint:
        assumptions = scn.assumptions_at(node)
        return ConstantCostPoint(
            node=node,
            sd_implied=node.implied_sd(),
            sd_constant_cost=constant_cost_sd(node, assumptions),
        )

    def masked_point(node: RoadmapNode) -> ConstantCostPoint:
        return ConstantCostPoint(
            node=node, sd_implied=math.nan, sd_constant_cost=math.nan)

    points, log = map_scalar(
        sorted(nodes, key=lambda n: n.year), point, policy=policy,
        where="roadmap.scenarios.scenario_series", equation="3",
        parameter="year", value_of=lambda node: node.year,
        on_error=masked_point)
    collected = log.finish()
    if diagnostics is not None:
        diagnostics.extend(collected)
    return points
