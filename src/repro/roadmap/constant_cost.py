"""Constant-die-cost analysis — Figure 3 of the paper.

§2.2.3 asks: what ``s_d`` would each roadmap node have to achieve for
the cost-performance MPU die to stay at its 1999 cost level? The paper
computes this from eq. (3) with the anchors

* maximum acceptable die cost ``C_ch = $34.0``,
* manufacturing cost ``C_sq = 8.0 $/cm²`` (held flat — deliberately
  optimistic),
* yield ``Y = 0.8`` (held flat — ditto),

and the ITRS transistor counts and feature sizes. The affordable die
area is then fixed at ``A_max = C_ch·Y/C_sq`` and

    ``s_d^cc = A_max / (N_tr · λ²)``.

Figure 3 plots the **ratio** of the roadmap-implied ``s_d`` (Figure 2)
to this constant-cost ``s_d``: a ratio above 1 means the roadmap's own
density targets are too sparse to hold the die cost — the paper's
"cost contradiction".
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..data.itrs1999 import (
    ASSUMED_YIELD,
    MANUFACTURING_COST_PER_CM2_USD,
    MPU_DIE_COST_1999_USD,
)
from ..data.records import RoadmapNode
from ..engine import map_scalar
from ..obs.instrument import traced
from ..obs.provenance import record_provenance
from ..robust.policy import ErrorPolicy
from ..validation import check_fraction, check_positive

__all__ = ["ConstantCostAssumptions", "ConstantCostPoint", "constant_cost_sd",
           "constant_cost_series", "PAPER_FIGURE3_ASSUMPTIONS"]


@dataclass(frozen=True)
class ConstantCostAssumptions:
    """The cost anchors of the Figure 3 computation."""

    die_cost_usd: float = MPU_DIE_COST_1999_USD
    cost_per_cm2: float = MANUFACTURING_COST_PER_CM2_USD
    yield_fraction: float = ASSUMED_YIELD

    def __post_init__(self) -> None:
        check_positive(self.die_cost_usd, "die_cost_usd")
        check_positive(self.cost_per_cm2, "cost_per_cm2")
        check_fraction(self.yield_fraction, "yield_fraction")

    @property
    def affordable_die_area_cm2(self) -> float:
        """``A_max = C_ch·Y/C_sq`` — the die the budget buys (3.4 cm²)."""
        return self.die_cost_usd * self.yield_fraction / self.cost_per_cm2


#: The paper's exact Figure 3 anchors ($34, 8 $/cm², Y=0.8).
PAPER_FIGURE3_ASSUMPTIONS = ConstantCostAssumptions()


@dataclass(frozen=True)
class ConstantCostPoint:
    """One node of the Figure 3 series."""

    node: RoadmapNode
    sd_implied: float
    sd_constant_cost: float

    @property
    def ratio(self) -> float:
        """``s_d^ITRS / s_d^const-cost`` — Figure 3's plotted quantity."""
        return self.sd_implied / self.sd_constant_cost

    @property
    def is_contradictory(self) -> bool:
        """True when the roadmap density target cannot hold the die cost."""
        return self.ratio > 1.0


def constant_cost_sd(node: RoadmapNode,
                     assumptions: ConstantCostAssumptions = PAPER_FIGURE3_ASSUMPTIONS) -> float:
    """The ``s_d`` a node must achieve to hold the die cost (eq. 3 inverted).

    ``s_d = A_max / (N_tr λ²)`` with ``A_max = C_ch·Y/C_sq``.
    """
    a_max = assumptions.affordable_die_area_cm2
    n_tr = node.mpu_transistors_m * 1.0e6
    return a_max / (n_tr * node.feature_cm**2)


@traced()
def constant_cost_series(nodes: list[RoadmapNode],
                         assumptions: ConstantCostAssumptions = PAPER_FIGURE3_ASSUMPTIONS,
                         policy: ErrorPolicy = ErrorPolicy.RAISE,
                         diagnostics: list | None = None,
                         ) -> list[ConstantCostPoint]:
    """The full Figure 3 series over a node list (chronological).

    Under ``policy=ErrorPolicy.MASK`` a node whose evaluation fails
    becomes a point with NaN densities (its :attr:`ConstantCostPoint.ratio`
    is NaN) and a :class:`repro.robust.Diagnostic` is appended to the
    optional ``diagnostics`` list; COLLECT raises the aggregate after
    the whole series was attempted.
    """
    policy = ErrorPolicy.coerce(policy)
    record_provenance(
        "roadmap.constant_cost.constant_cost_series", "3",
        {"die_cost_usd": assumptions.die_cost_usd,
         "cost_per_cm2": assumptions.cost_per_cm2,
         "yield_fraction": assumptions.yield_fraction},
        dataset="roadmap_nodes", rows=tuple(n.year for n in nodes))
    def point(node: RoadmapNode) -> ConstantCostPoint:
        return ConstantCostPoint(
            node=node,
            sd_implied=node.implied_sd(),
            sd_constant_cost=constant_cost_sd(node, assumptions),
        )

    def masked_point(node: RoadmapNode) -> ConstantCostPoint:
        return ConstantCostPoint(
            node=node, sd_implied=math.nan, sd_constant_cost=math.nan)

    points, log = map_scalar(
        sorted(nodes, key=lambda n: n.year), point, policy=policy,
        where="roadmap.constant_cost.constant_cost_series", equation="3",
        parameter="year", value_of=lambda node: node.year,
        on_error=masked_point)
    collected = log.finish()
    if diagnostics is not None:
        diagnostics.extend(collected)
    return points
