"""Layout substrate: geometry, pattern extraction, regularity economics.

Implements the §3.2 program (regular structures from few unique
patterns) and the ref-[33] repetitive-pattern analysis it relies on.
"""

from .geometry import Rect, bounding_box, total_area
from .cells import Cell, Instance, Layout
from .patterns import Pattern, PatternLibrary, Window, extract_patterns, recommended_window
from .regularity import CharacterizationCostModel, RegularityReport, regularity_report
from .fabrics import (
    memory_array,
    random_logic_layout,
    regular_fabric,
    sram_cell,
    standard_cell,
)
from .drc import MEAD_CONWAY_RULES, DesignRules, Violation, check_rules

__all__ = [
    "Rect",
    "bounding_box",
    "total_area",
    "Cell",
    "Instance",
    "Layout",
    "Window",
    "Pattern",
    "PatternLibrary",
    "extract_patterns",
    "recommended_window",
    "CharacterizationCostModel",
    "RegularityReport",
    "regularity_report",
    "sram_cell",
    "standard_cell",
    "memory_array",
    "regular_fabric",
    "random_logic_layout",
    "DesignRules",
    "Violation",
    "check_rules",
    "MEAD_CONWAY_RULES",
]
