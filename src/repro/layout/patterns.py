"""Repetitive-pattern extraction — the ref-[33] substitute.

Niewczas/Maly/Strojwas (TCAD 1999) give "an algorithm for determining
repetitive patterns in very large IC layouts"; the paper leans on it
twice: regularity enables simulation reuse (§3.2) and the unique-
pattern count is the quantity to minimise. We implement the same
capability with a windowed-fingerprint algorithm:

1. tile the layout bounding box with fixed-size windows (λ-grid
   aligned);
2. give each window a **canonical signature**: the sorted tuple of its
   rectangles clipped to the window, coordinates relative to the window
   origin — identical signatures ⇔ identical mask geometry under
   translation;
3. group windows by signature. Each group is one *pattern*; its
   multiplicity is the group size.

The result (:class:`PatternLibrary`) answers the §3.2 questions
directly: how many unique patterns does this layout need, what fraction
of the area do the top-k patterns cover, and how regular is the design.
Exact-match-under-translation is the same equivalence ref [33] uses;
window tiling replaces their maximal-region growing, trading some
pattern granularity for a guarantee of full coverage and O(n log n)
behaviour.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from ..errors import LayoutError
from ..validation import check_positive_int
from .geometry import Rect, bounding_box

__all__ = ["Window", "Pattern", "PatternLibrary", "extract_patterns",
           "recommended_window"]

Signature = tuple[tuple[str, int, int, int, int], ...]


@dataclass(frozen=True)
class Window:
    """One tile of the analysis grid."""

    x0: int
    y0: int
    size: int

    @property
    def x1(self) -> int:
        """Right edge."""
        return self.x0 + self.size

    @property
    def y1(self) -> int:
        """Top edge."""
        return self.y0 + self.size


@dataclass(frozen=True)
class Pattern:
    """An equivalence class of identical windows.

    Attributes
    ----------
    signature:
        Canonical geometry (window-relative, sorted).
    windows:
        Every window carrying this geometry.
    """

    signature: Signature
    windows: tuple[Window, ...]

    @property
    def multiplicity(self) -> int:
        """How many times the pattern repeats."""
        return len(self.windows)

    @property
    def drawn_area(self) -> int:
        """Drawn λ² inside one occurrence."""
        return sum((x1 - x0) * (y1 - y0) for _, x0, y0, x1, y1 in self.signature)

    @property
    def is_empty(self) -> bool:
        """A window with no geometry (field regions)."""
        return len(self.signature) == 0


@dataclass(frozen=True)
class PatternLibrary:
    """The pattern census of a layout.

    ``patterns`` are sorted by multiplicity, most-repeated first.
    """

    window_size: int
    patterns: tuple[Pattern, ...]

    @property
    def n_windows(self) -> int:
        """Total windows analysed."""
        return sum(p.multiplicity for p in self.patterns)

    @property
    def n_unique(self) -> int:
        """Unique *non-empty* patterns — the §3.2 quantity to minimise."""
        return sum(1 for p in self.patterns if not p.is_empty)

    @property
    def n_occupied_windows(self) -> int:
        """Windows containing any geometry."""
        return sum(p.multiplicity for p in self.patterns if not p.is_empty)

    def regularity_index(self) -> float:
        """Fraction of occupied windows covered by *repeated* patterns.

        1.0 = every piece of geometry is an instance of a pattern that
        occurs elsewhere too (fully regular); 0.0 = every window is
        one-of-a-kind (fully irregular).
        """
        occupied = self.n_occupied_windows
        if occupied == 0:
            raise LayoutError("layout has no occupied windows; regularity undefined")
        repeated = sum(p.multiplicity for p in self.patterns
                       if not p.is_empty and p.multiplicity > 1)
        return repeated / occupied

    def coverage_by_top(self, k: int) -> float:
        """Occupied-window fraction covered by the ``k`` most-repeated patterns."""
        check_positive_int(k, "k")
        occupied = self.n_occupied_windows
        if occupied == 0:
            raise LayoutError("layout has no occupied windows")
        nonempty = [p for p in self.patterns if not p.is_empty]
        top = sorted(nonempty, key=lambda p: p.multiplicity, reverse=True)[:k]
        return sum(p.multiplicity for p in top) / occupied

    def multiplicity_histogram(self) -> dict[int, int]:
        """``multiplicity → number of patterns`` (non-empty only)."""
        hist: dict[int, int] = defaultdict(int)
        for p in self.patterns:
            if not p.is_empty:
                hist[p.multiplicity] += 1
        return dict(hist)


def _clip(rect: Rect, wx0: int, wy0: int, wx1: int, wy1: int) -> tuple[str, int, int, int, int] | None:
    """Clip a rect to a window, window-relative coords; None if disjoint."""
    x0 = max(rect.x0, wx0)
    y0 = max(rect.y0, wy0)
    x1 = min(rect.x1, wx1)
    y1 = min(rect.y1, wy1)
    if x1 <= x0 or y1 <= y0:
        return None
    return (rect.layer, x0 - wx0, y0 - wy0, x1 - wx0, y1 - wy0)


def extract_patterns(rects: list[Rect], window_size: int) -> PatternLibrary:
    """Run the windowed-fingerprint pattern census.

    Parameters
    ----------
    rects:
        Flat layout geometry (λ-grid integers).
    window_size:
        Tile edge length in λ. Choose near the dominant cell pitch:
        too small fragments cells into generic sub-patterns, too large
        merges unrelated neighbourhoods. (Cell-pitch windows make a
        tiled fabric read as exactly one pattern.)

    Returns
    -------
    PatternLibrary
        Patterns sorted by multiplicity (descending), then signature.
    """
    if not rects:
        raise LayoutError("cannot extract patterns from an empty layout")
    window_size = check_positive_int(window_size, "window_size")
    x0, y0, x1, y1 = bounding_box(rects)

    # Bucket rects into every window they touch (grid-aligned to bbox origin).
    buckets: dict[tuple[int, int], list[Rect]] = defaultdict(list)
    for rect in rects:
        ix0 = (rect.x0 - x0) // window_size
        ix1 = (rect.x1 - 1 - x0) // window_size
        iy0 = (rect.y0 - y0) // window_size
        iy1 = (rect.y1 - 1 - y0) // window_size
        for ix in range(ix0, ix1 + 1):
            for iy in range(iy0, iy1 + 1):
                buckets[(ix, iy)].append(rect)

    n_x = (x1 - x0 + window_size - 1) // window_size
    n_y = (y1 - y0 + window_size - 1) // window_size

    groups: dict[Signature, list[Window]] = defaultdict(list)
    for ix in range(n_x):
        for iy in range(n_y):
            wx0 = x0 + ix * window_size
            wy0 = y0 + iy * window_size
            wx1 = wx0 + window_size
            wy1 = wy0 + window_size
            clipped = []
            for rect in buckets.get((ix, iy), ()):
                piece = _clip(rect, wx0, wy0, wx1, wy1)
                if piece is not None:
                    clipped.append(piece)
            signature: Signature = tuple(sorted(clipped))
            groups[signature].append(Window(wx0, wy0, window_size))

    patterns = tuple(
        sorted(
            (Pattern(sig, tuple(wins)) for sig, wins in groups.items()),
            key=lambda p: (-p.multiplicity, p.signature),
        )
    )
    return PatternLibrary(window_size=window_size, patterns=patterns)


def recommended_window(rects: list[Rect], candidates=None) -> int:
    """Pick the analysis window that best exposes the layout's pitch.

    Runs the census at each candidate size and returns the one with the
    highest regularity index, breaking ties towards the *larger* window
    (fewer, bigger patterns characterise cheaper). A tiled fabric's
    natural cell pitch wins this contest by construction; for an
    irregular layout the choice barely matters and the largest
    candidate is returned.

    Parameters
    ----------
    rects:
        Flat layout geometry.
    candidates:
        Window sizes to try; defaults to a geometric ladder 4..64 λ
        clipped to the layout extent.
    """
    if not rects:
        raise LayoutError("cannot recommend a window for an empty layout")
    x0, y0, x1, y1 = bounding_box(rects)
    extent = max(x1 - x0, y1 - y0)
    if candidates is None:
        candidates = [w for w in (4, 6, 8, 12, 16, 24, 32, 48, 64) if w <= extent]
        if not candidates:
            candidates = [max(int(extent), 1)]
    best_size = None
    best_key = None
    for size in candidates:
        library = extract_patterns(rects, int(size))
        if library.n_occupied_windows == 0:
            continue
        key = (library.regularity_index(), int(size))
        if best_key is None or key > best_key:
            best_key = key
            best_size = int(size)
    if best_size is None:
        raise LayoutError("no candidate window produced occupied windows")
    return best_size
