"""λ-rule design-rule checking for the layout substrate.

The layout engine generates geometry in Mead–Conway λ units; this
module checks it against λ design rules (minimum width, minimum
same-layer spacing), the way any real layout flow gates its output.
Two uses inside the reproduction:

* the fabric generators are *tested* DRC-clean — synthetic layouts that
  violate their own grid would corrupt every density/pattern result;
* the spacing report feeds the geometric critical-area analysis (a
  layout at minimum spacing everywhere maximises its short-critical
  area — density costs yield, §3.1's coupling).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from ..errors import LayoutError
from .geometry import Rect

__all__ = ["DesignRules", "Violation", "check_rules", "MEAD_CONWAY_RULES"]


@dataclass(frozen=True)
class DesignRules:
    """Per-layer λ rules.

    Attributes
    ----------
    min_width:
        Minimum drawn width per layer (λ); layers absent fall back to
        ``default_min_width``.
    min_spacing:
        Minimum same-layer facing spacing (λ); fallback
        ``default_min_spacing``.
    """

    min_width: dict = field(default_factory=dict)
    min_spacing: dict = field(default_factory=dict)
    default_min_width: int = 2
    default_min_spacing: int = 2

    def width_rule(self, layer: str) -> int:
        """Minimum width for a layer (λ)."""
        return int(self.min_width.get(layer, self.default_min_width))

    def spacing_rule(self, layer: str) -> int:
        """Minimum spacing for a layer (λ)."""
        return int(self.min_spacing.get(layer, self.default_min_spacing))


#: Classic Mead-Conway λ rules for the layers the generators draw.
MEAD_CONWAY_RULES = DesignRules(
    min_width={"diff": 2, "poly": 2, "m1": 2, "m2": 2},
    min_spacing={"diff": 2, "poly": 2, "m1": 2, "m2": 3},
)


@dataclass(frozen=True)
class Violation:
    """One design-rule violation."""

    rule: str          # "width" or "spacing"
    layer: str
    measured: float
    required: float
    where: tuple       # offending rect(s)

    def __str__(self) -> str:
        return (f"{self.rule} violation on {self.layer}: measured {self.measured}, "
                f"required >= {self.required}")


def _width_violations(rects: list[Rect], rules: DesignRules) -> list[Violation]:
    out = []
    for rect in rects:
        required = rules.width_rule(rect.layer)
        measured = min(rect.width, rect.height)
        if measured < required:
            out.append(Violation("width", rect.layer, float(measured),
                                 float(required), (rect,)))
    return out


def _spacing_violations(rects: list[Rect], rules: DesignRules) -> list[Violation]:
    by_layer: dict[str, list[Rect]] = defaultdict(list)
    for rect in rects:
        by_layer[rect.layer].append(rect)
    out = []
    for layer, layer_rects in by_layer.items():
        required = rules.spacing_rule(layer)
        n = len(layer_rects)
        for i in range(n):
            a = layer_rects[i]
            for j in range(i + 1, n):
                b = layer_rects[j]
                # Touching or overlapping shapes merge electrically — no
                # spacing rule applies between them.
                if a.x0 <= b.x1 and b.x0 <= a.x1 and a.y0 <= b.y1 and b.y0 <= a.y1:
                    continue
                # Facing horizontal gap.
                if min(a.y1, b.y1) > max(a.y0, b.y0):
                    gap = b.x0 - a.x1 if b.x0 >= a.x1 else a.x0 - b.x1
                    if 0 < gap < required:
                        out.append(Violation("spacing", layer, float(gap),
                                             float(required), (a, b)))
                        continue
                # Facing vertical gap.
                if min(a.x1, b.x1) > max(a.x0, b.x0):
                    gap = b.y0 - a.y1 if b.y0 >= a.y1 else a.y0 - b.y1
                    if 0 < gap < required:
                        out.append(Violation("spacing", layer, float(gap),
                                             float(required), (a, b)))
    return out


def check_rules(rects: list[Rect], rules: DesignRules = MEAD_CONWAY_RULES) -> list[Violation]:
    """Run width and spacing checks; returns all violations (empty = clean).

    Raises
    ------
    LayoutError
        If the layout is empty (nothing to check is almost always a
        caller bug, not a clean result).
    """
    if not rects:
        raise LayoutError("cannot DRC an empty layout")
    return _width_violations(rects, rules) + _spacing_violations(rects, rules)
