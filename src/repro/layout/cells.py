"""Cells and hierarchical layouts.

A :class:`Cell` is a named bag of rectangles (a leaf layout); a
:class:`Layout` places cell instances by translation. Flattening a
layout yields the mask geometry the pattern extractor and the density
metrics operate on. Transistor counting is by the drawn ``poly``∩
``diff`` convention: each poly rect crossing a diff rect gates one
transistor — crude but monotone, and sufficient to compute layout-level
``s_d`` values that can be compared across styles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..errors import LayoutError
from .geometry import Rect, bounding_box

__all__ = ["Cell", "Instance", "Layout"]


@dataclass(frozen=True)
class Cell:
    """A leaf cell: a name and its mask rectangles."""

    name: str
    rects: tuple[Rect, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise LayoutError("cell name must be non-empty")
        if not self.rects:
            raise LayoutError(f"cell {self.name!r} has no geometry")
        object.__setattr__(self, "rects", tuple(self.rects))

    @property
    def bbox(self) -> tuple[int, int, int, int]:
        """Cell bounding box."""
        return bounding_box(self.rects)

    @property
    def width(self) -> int:
        """Bounding-box width in λ."""
        x0, _, x1, _ = self.bbox
        return x1 - x0

    @property
    def height(self) -> int:
        """Bounding-box height in λ."""
        _, y0, _, y1 = self.bbox
        return y1 - y0

    def transistor_count(self) -> int:
        """Drawn transistors: poly rects crossing diff rects."""
        polys = [r for r in self.rects if r.layer == "poly"]
        diffs = [r for r in self.rects if r.layer == "diff"]
        count = 0
        for p in polys:
            for d in diffs:
                # Gate: poly and diff share interior area (layers differ,
                # so compare boxes directly).
                if p.x0 < d.x1 and d.x0 < p.x1 and p.y0 < d.y1 and d.y0 < p.y1:
                    count += 1
        return count


@dataclass(frozen=True)
class Instance:
    """A translated placement of a cell."""

    cell: Cell
    dx: int
    dy: int

    def __post_init__(self) -> None:
        if not (isinstance(self.dx, int) and isinstance(self.dy, int)):
            raise LayoutError("instance offsets must be λ-grid integers")

    def rects(self) -> list[Rect]:
        """The instance's geometry in layout coordinates."""
        return [r.translated(self.dx, self.dy) for r in self.cell.rects]


@dataclass
class Layout:
    """A flat-hierarchy layout: a list of cell instances.

    (One level of hierarchy suffices for the regularity studies; deep
    hierarchies flatten to the same geometry.)
    """

    name: str
    instances: list[Instance] = field(default_factory=list)

    def add(self, cell: Cell, dx: int, dy: int) -> None:
        """Place ``cell`` at (dx, dy)."""
        self.instances.append(Instance(cell, dx, dy))

    def flatten(self) -> list[Rect]:
        """All mask rectangles in layout coordinates.

        Raises
        ------
        LayoutError
            If the layout is empty.
        """
        if not self.instances:
            raise LayoutError(f"layout {self.name!r} is empty")
        rects: list[Rect] = []
        for inst in self.instances:
            rects.extend(inst.rects())
        return rects

    @property
    def bbox(self) -> tuple[int, int, int, int]:
        """Layout bounding box."""
        return bounding_box(self.flatten())

    def area_lambda2(self) -> int:
        """Bounding-box area in λ²."""
        x0, y0, x1, y1 = self.bbox
        return (x1 - x0) * (y1 - y0)

    def transistor_count(self) -> int:
        """Total drawn transistors over all instances."""
        return sum(inst.cell.transistor_count() for inst in self.instances)

    def sd(self) -> float:
        """Layout-level design decompression index (λ²/transistor).

        Raises
        ------
        LayoutError
            If the layout draws no transistors.
        """
        n = self.transistor_count()
        if n == 0:
            raise LayoutError(f"layout {self.name!r} draws no transistors; s_d undefined")
        return self.area_lambda2() / n

    def cell_usage(self) -> dict[str, int]:
        """Instance count per cell name."""
        usage: dict[str, int] = {}
        for inst in self.instances:
            usage[inst.cell.name] = usage.get(inst.cell.name, 0) + 1
        return usage

    @staticmethod
    def unique_cells(instances: Iterable[Instance]) -> list[Cell]:
        """Distinct cells among instances (by name, first wins)."""
        seen: dict[str, Cell] = {}
        for inst in instances:
            seen.setdefault(inst.cell.name, inst.cell)
        return list(seen.values())
