"""Rectilinear layout geometry primitives.

The §3.2 prescription — "highly geometrically regular structures,
created out of the limited smallest possible number of unique
geometrical patterns" — needs an actual layout representation to be
measurable. We use the standard mask-geometry abstraction: axis-aligned
rectangles on named layers, in integer **λ-grid** coordinates (all
mask data of the era was snapped to a manufacturing grid; integers make
pattern matching exact instead of epsilon-ridden).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..errors import LayoutError

__all__ = ["Rect", "bounding_box", "total_area"]


@dataclass(frozen=True, order=True)
class Rect:
    """An axis-aligned rectangle on a mask layer (λ-grid integers).

    Attributes
    ----------
    layer:
        Mask layer name (``"poly"``, ``"diff"``, ``"m1"``, ...).
    x0, y0:
        Lower-left corner.
    x1, y1:
        Upper-right corner (exclusive extent; must be > lower-left).
    """

    layer: str
    x0: int
    y0: int
    x1: int
    y1: int

    def __post_init__(self) -> None:
        if not (isinstance(self.x0, int) and isinstance(self.y0, int)
                and isinstance(self.x1, int) and isinstance(self.y1, int)):
            raise LayoutError(f"rect coordinates must be λ-grid integers; got {self!r}")
        if self.x1 <= self.x0 or self.y1 <= self.y0:
            raise LayoutError(
                f"rect must have positive extent; got ({self.x0},{self.y0})-({self.x1},{self.y1})"
            )
        if not self.layer:
            raise LayoutError("rect layer name must be non-empty")

    @property
    def width(self) -> int:
        """Extent along x, in λ."""
        return self.x1 - self.x0

    @property
    def height(self) -> int:
        """Extent along y, in λ."""
        return self.y1 - self.y0

    @property
    def area(self) -> int:
        """Area in λ²."""
        return self.width * self.height

    def translated(self, dx: int, dy: int) -> "Rect":
        """A copy shifted by (dx, dy) λ."""
        return Rect(self.layer, self.x0 + dx, self.y0 + dy, self.x1 + dx, self.y1 + dy)

    def overlaps(self, other: "Rect") -> bool:
        """Whether the two rects share interior area on the same layer."""
        if self.layer != other.layer:
            return False
        return (self.x0 < other.x1 and other.x0 < self.x1
                and self.y0 < other.y1 and other.y0 < self.y1)

    def contains_point(self, x: float, y: float) -> bool:
        """Whether (x, y) lies inside (half-open box)."""
        return self.x0 <= x < self.x1 and self.y0 <= y < self.y1

    def relative_to(self, ox: int, oy: int) -> tuple[str, int, int, int, int]:
        """Canonical tuple with coordinates relative to an origin.

        Used as the unit of pattern signatures.
        """
        return (self.layer, self.x0 - ox, self.y0 - oy, self.x1 - ox, self.y1 - oy)


def bounding_box(rects: Iterable[Rect]) -> tuple[int, int, int, int]:
    """Bounding box (x0, y0, x1, y1) of a rect collection.

    Raises
    ------
    LayoutError
        If the collection is empty.
    """
    rects = list(rects)
    if not rects:
        raise LayoutError("bounding box of an empty rect collection is undefined")
    return (
        min(r.x0 for r in rects),
        min(r.y0 for r in rects),
        max(r.x1 for r in rects),
        max(r.y1 for r in rects),
    )


def total_area(rects: Iterable[Rect]) -> int:
    """Sum of rect areas in λ² (overlaps counted twice — drawn area)."""
    return sum(r.area for r in rects)
