"""Regularity economics — §3.2's characterization-reuse argument.

The paper's closing prescription: contain nanometre design cost by
building layouts from "the limited smallest possible number of unique
geometrical patterns", because each unique pattern must be accurately
(expensively) simulated/precharacterised, and repeated patterns reuse
that work across a product — or a whole product *family*, which "will
increase the effective volume used in the computation of C_DE".

:class:`CharacterizationCostModel` prices that argument:

* brute force: simulate everything → cost ∝ occupied windows;
* pattern reuse: simulate unique patterns once → cost ∝ unique
  patterns (+ a cheap per-instance stitch check);
* family reuse: divide the unique-pattern bill by the number of
  products sharing the pattern library.

The model also feeds back into the design-cost story: regularity
improves prediction (see
:class:`repro.interconnect.delay.PredictionErrorModel`), which raises
per-iteration closure probability, which cuts eq.-(6) cost — the full
§3.2 loop, exercised end-to-end in
``benchmarks/bench_ablation_regularity.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import LayoutError
from ..validation import check_nonnegative, check_positive, check_positive_int
from .patterns import PatternLibrary

__all__ = ["CharacterizationCostModel", "regularity_report", "RegularityReport"]


@dataclass(frozen=True)
class CharacterizationCostModel:
    """Cost of precharacterising a layout's patterns.

    Attributes
    ----------
    cost_per_pattern_usd:
        Accurate (field-solver/litho) simulation of one unique pattern
        with its neighbourhood. Default $20 k.
    cost_per_instance_usd:
        Cheap per-occurrence stitch/context check. Default $10.
    brute_force_per_window_usd:
        Accurate simulation of one window without reuse (same physics
        as a unique pattern, minus the library bookkeeping discount).
        Default $15 k.
    """

    cost_per_pattern_usd: float = 20_000.0
    cost_per_instance_usd: float = 10.0
    brute_force_per_window_usd: float = 15_000.0

    def __post_init__(self) -> None:
        check_positive(self.cost_per_pattern_usd, "cost_per_pattern_usd")
        check_nonnegative(self.cost_per_instance_usd, "cost_per_instance_usd")
        check_positive(self.brute_force_per_window_usd, "brute_force_per_window_usd")

    def brute_force_cost(self, library: PatternLibrary) -> float:
        """Simulate every occupied window independently ($)."""
        return self.brute_force_per_window_usd * library.n_occupied_windows

    def reuse_cost(self, library: PatternLibrary, n_products: int = 1) -> float:
        """Pattern-library cost ($): unique sims (amortised) + stitches.

        Parameters
        ----------
        library:
            Pattern census of the layout.
        n_products:
            Products sharing the precharacterised library (§3.2's
            family reuse, "increasing the effective volume").
        """
        n_products = check_positive_int(n_products, "n_products")
        unique = self.cost_per_pattern_usd * library.n_unique / n_products
        stitches = self.cost_per_instance_usd * library.n_occupied_windows
        return unique + stitches

    def savings_factor(self, library: PatternLibrary, n_products: int = 1) -> float:
        """Brute-force cost / reuse cost — the §3.2 payoff multiple."""
        reuse = self.reuse_cost(library, n_products)
        if reuse == 0:
            raise LayoutError("degenerate zero reuse cost")
        return self.brute_force_cost(library) / reuse


@dataclass(frozen=True)
class RegularityReport:
    """Summary of a layout's regularity and its economic value."""

    window_size: int
    n_windows: int
    n_occupied: int
    n_unique_patterns: int
    regularity_index: float
    top8_coverage: float
    brute_force_cost_usd: float
    reuse_cost_usd: float

    @property
    def savings_factor(self) -> float:
        """Characterization-cost multiple saved by pattern reuse."""
        return self.brute_force_cost_usd / self.reuse_cost_usd


def regularity_report(
    library: PatternLibrary,
    cost_model: CharacterizationCostModel | None = None,
    n_products: int = 1,
) -> RegularityReport:
    """Bundle a pattern census with its §3.2 economics."""
    cost_model = cost_model if cost_model is not None else CharacterizationCostModel()
    return RegularityReport(
        window_size=library.window_size,
        n_windows=library.n_windows,
        n_occupied=library.n_occupied_windows,
        n_unique_patterns=library.n_unique,
        regularity_index=library.regularity_index(),
        top8_coverage=library.coverage_by_top(8),
        brute_force_cost_usd=cost_model.brute_force_cost(library),
        reuse_cost_usd=cost_model.reuse_cost(library, n_products),
    )
