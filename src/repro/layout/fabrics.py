"""Layout generators: regular fabrics vs ad-hoc placements.

Synthetic layouts for the regularity studies. Three styles spanning the
§3.2 spectrum:

* :func:`sram_cell` + :func:`memory_array` — the maximally regular
  extreme (Table A1's dense-memory population);
* :func:`standard_cell` + :func:`regular_fabric` — a tiled logic fabric
  built from a tiny cell library on a uniform pitch (the §3.2
  prescription);
* :func:`random_logic_layout` — an irregular placement with randomised
  cell variants and jittered rows (the time-to-market ASIC style the
  paper says industry drifted into).

All geometry is in λ-grid integers; transistor counts follow the
poly-over-diff convention of :mod:`repro.layout.cells`, so each
generated layout has a measurable ``s_d``.
"""

from __future__ import annotations

import numpy as np

from ..errors import LayoutError
from ..validation import check_positive_int
from .cells import Cell, Layout
from .geometry import Rect

__all__ = [
    "sram_cell",
    "standard_cell",
    "memory_array",
    "regular_fabric",
    "random_logic_layout",
]


def sram_cell(name: str = "sram6t") -> Cell:
    """A stylised 6-transistor SRAM cell, 12×12 λ footprint.

    Six poly-over-diff crossings on a tight pitch — the densest layout
    style made (Table A1 memory ``s_d`` ≈ 30-60). The square footprint
    means arrays tile perfectly under square analysis windows.
    """
    rects = [
        # Two diffusion strips.
        Rect("diff", 0, 2, 12, 4),
        Rect("diff", 0, 8, 12, 10),
        # Three poly gates crossing both strips (6 transistors).
        Rect("poly", 1, 0, 3, 12),
        Rect("poly", 5, 0, 7, 12),
        Rect("poly", 9, 0, 11, 12),
        # Bit/word wiring.
        Rect("m1", 0, 5, 12, 7),
    ]
    return Cell(name, tuple(rects))


def standard_cell(name: str, n_gates: int = 2, width_per_gate: int = 8,
                  height: int = 24, variant: int = 0) -> Cell:
    """A stylised standard cell: ``n_gates`` poly gates over two diff rows.

    Each gate contributes two transistors (NMOS + PMOS row), giving
    ``2·n_gates`` transistors in ``n_gates·width_per_gate × height`` λ².
    ``variant`` places an internal m1 strap at a variant-specific x
    position, so cells of the same footprint but different variants are
    geometrically distinct (distinct patterns for the §3.2 census).
    """
    check_positive_int(n_gates, "n_gates")
    check_positive_int(width_per_gate, "width_per_gate")
    check_positive_int(height, "height")
    if variant < 0:
        raise LayoutError(f"variant must be >= 0; got {variant}")
    if height < 16:
        raise LayoutError("standard cell height must be >= 16 λ")
    width = n_gates * width_per_gate
    rects = [
        Rect("diff", 0, 2, width, 6),                    # NMOS row
        Rect("diff", 0, height - 6, width, height - 2),  # PMOS row
        Rect("m1", 0, height // 2 - 1, width, height // 2 + 1),
    ]
    for g in range(n_gates):
        x = g * width_per_gate + width_per_gate // 2 - 1
        rects.append(Rect("poly", x, 0, x + 2, height))
    # Variant-specific internal strap (intra-cell connectivity stand-in).
    # Kept on the even-λ grid so cell abutment stays DRC-legal.
    strap_x = (variant * 4) % max(width - 2, 1)
    strap_x -= strap_x % 2
    rects.append(Rect("m1", strap_x, 7, strap_x + 2, height - 7))
    return Cell(name, tuple(rects))


def memory_array(rows: int, cols: int) -> Layout:
    """Tile the SRAM cell into a ``rows × cols`` array."""
    check_positive_int(rows, "rows")
    check_positive_int(cols, "cols")
    cell = sram_cell()
    layout = Layout(f"sram_{rows}x{cols}")
    for r in range(rows):
        for c in range(cols):
            layout.add(cell, c * cell.width, r * cell.height)
    return layout


def regular_fabric(rows: int, cols: int, library_size: int = 2,
                   seed: int = 0) -> Layout:
    """A §3.2-style fabric: a tiny cell library tiled on one uniform pitch.

    All cells share the same footprint, so every site is
    pitch-aligned; ``library_size`` controls the unique-pattern count
    (1 = perfectly regular, like a gate array).
    """
    check_positive_int(rows, "rows")
    check_positive_int(cols, "cols")
    check_positive_int(library_size, "library_size")
    rng = np.random.default_rng(seed)
    library = [standard_cell(f"fab{i}", n_gates=3, variant=i) for i in range(library_size)]
    pitch_x = library[0].width
    pitch_y = library[0].height
    layout = Layout(f"fabric_{rows}x{cols}_lib{library_size}")
    for r in range(rows):
        for c in range(cols):
            cell = library[int(rng.integers(0, library_size))]
            layout.add(cell, c * pitch_x, r * pitch_y)
    return layout


def random_logic_layout(rows: int, cols: int, library_size: int = 12,
                        seed: int = 0, max_jitter: int = 5,
                        whitespace_fraction: float = 0.3) -> Layout:
    """An irregular ASIC-style placement.

    Cells come from a larger library with varying widths, rows are
    jittered by up to ``max_jitter`` λ, and ``whitespace_fraction`` of
    sites are left empty (routing/TTM slack) — all three of which
    destroy window-level repetition and inflate ``s_d``.

    Jitter is drawn on an even-λ grid and rows carry a 2 λ guard band,
    so the generated placement is clean under the Mead-Conway 2 λ
    spacing rules (see :mod:`repro.layout.drc`) — gaps are either 0
    (abutting, electrically merged) or ≥ 2 λ.
    """
    check_positive_int(rows, "rows")
    check_positive_int(cols, "cols")
    check_positive_int(library_size, "library_size")
    if not 0 <= whitespace_fraction < 1:
        raise LayoutError(f"whitespace_fraction must be in [0,1); got {whitespace_fraction}")
    rng = np.random.default_rng(seed)
    library = [
        standard_cell(f"rnd{i}", n_gates=int(rng.integers(1, 5)),
                      width_per_gate=2 * int(rng.integers(4, 6)), variant=i)
        for i in range(library_size)
    ]

    def even_jitter() -> int:
        # Even values in [0, max_jitter]: resulting gaps stay DRC-legal.
        return 2 * int(rng.integers(0, max_jitter // 2 + 1))

    row_pitch = max(c.height for c in library) + 2 * (max_jitter // 2) + 2
    layout = Layout(f"random_{rows}x{cols}_lib{library_size}")
    placed = 0
    for r in range(rows):
        x = even_jitter()
        y = r * row_pitch + even_jitter()
        for _ in range(cols):
            cell = library[int(rng.integers(0, library_size))]
            if rng.random() >= whitespace_fraction:
                layout.add(cell, x, y)
                placed += 1
            x += cell.width + even_jitter()
    if placed == 0:
        # Pathological draw: guarantee a non-empty layout.
        layout.add(library[0], 0, 0)
    return layout
