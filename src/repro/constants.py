"""Single home of the paper's numeric constants.

Every number quoted by Maly (DAC 2001) that the library hard-codes
lives here, exactly once. Eq. (6)'s calibration constants, the Figure 3
cost anchors — any module that needs one imports it from this module
instead of repeating the literal, so the values stay mechanically
auditable (the same discipline cost-model comparisons across
technologies depend on).

The ``PAPER_CONSTANT_ALIASES`` registry at the bottom maps the
*parameter names* these constants are conventionally bound to (``a0``,
``sd0``, ``die_cost_usd``, ...) onto the canonical symbol and value.
``repro.lint``'s paper-constants pass (rule ``CONST001``) uses it to
flag any module that re-binds one of those names to the raw literal
instead of importing the symbol.

The values themselves are plain floats — importing this module is
side-effect free and dependency free.
"""

from __future__ import annotations

from typing import NamedTuple

__all__ = [
    "EQ6_A0",
    "EQ6_P1",
    "EQ6_P2",
    "EQ6_SD0",
    "MPU_DIE_COST_1999_USD",
    "MANUFACTURING_COST_PER_CM2_USD",
    "ASSUMED_YIELD",
    "PaperConstant",
    "PAPER_CONSTANT_ALIASES",
]

# --- Eq. (6) design-cost calibration (§2.4, footnote 1) ----------------------

#: Eq. (6) amplitude ``A0`` ($ per transistor^p1).
EQ6_A0 = 1000.0
#: Eq. (6) complexity exponent ``p1`` on the transistor count.
EQ6_P1 = 1.0
#: Eq. (6) divergence exponent ``p2`` on the density margin.
EQ6_P2 = 1.2
#: Full-custom design-density bound ``s_d0`` (λ²/transistor), read off
#: the densest Table A1 microprocessors.
EQ6_SD0 = 100.0

# --- Figure 3 cost anchors (§2.2.3) ------------------------------------------

#: Maximum acceptable cost-performance MPU die cost, 1999 anchor ($).
MPU_DIE_COST_1999_USD = 34.0
#: Manufacturing cost ``C_sq`` held flat across the roadmap ($/cm²).
MANUFACTURING_COST_PER_CM2_USD = 8.0
#: Yield ``Y`` held flat across the roadmap (fraction).
ASSUMED_YIELD = 0.8


class PaperConstant(NamedTuple):
    """One registered paper constant: its canonical symbol and value.

    Attributes
    ----------
    symbol:
        The name exported by this module (``"EQ6_A0"``).
    value:
        The numeric value the paper quotes.
    source:
        Where in the paper the number comes from.
    """

    symbol: str
    value: float
    source: str


#: Parameter names conventionally bound to a paper constant, mapped to
#: the canonical symbol. ``repro.lint`` flags ``name = <literal>``
#: bindings (assignments, dataclass fields, parameter defaults) whose
#: name appears here with the matching raw value outside this module.
PAPER_CONSTANT_ALIASES: dict[str, PaperConstant] = {
    "a0": PaperConstant("EQ6_A0", EQ6_A0, "eq. (6), §2.4"),
    "p1": PaperConstant("EQ6_P1", EQ6_P1, "eq. (6), §2.4"),
    "p2": PaperConstant("EQ6_P2", EQ6_P2, "eq. (6), §2.4"),
    "sd0": PaperConstant("EQ6_SD0", EQ6_SD0, "eq. (6), §2.4"),
    "die_cost_usd": PaperConstant(
        "MPU_DIE_COST_1999_USD", MPU_DIE_COST_1999_USD, "Figure 3, §2.2.3"),
    "mpu_die_cost_usd": PaperConstant(
        "MPU_DIE_COST_1999_USD", MPU_DIE_COST_1999_USD, "Figure 3, §2.2.3"),
    "cost_per_cm2": PaperConstant(
        "MANUFACTURING_COST_PER_CM2_USD", MANUFACTURING_COST_PER_CM2_USD,
        "Figure 3, §2.2.3"),
    "base_cost_per_cm2": PaperConstant(
        "MANUFACTURING_COST_PER_CM2_USD", MANUFACTURING_COST_PER_CM2_USD,
        "Figure 3, §2.2.3"),
    "yield_fraction": PaperConstant(
        "ASSUMED_YIELD", ASSUMED_YIELD, "Figure 3, §2.2.3"),
}
