"""Deterministic fault injection — the chaos harness behind the tests.

Robustness claims need an adversary. This module manufactures the
inputs the library must survive — NaN, ±Inf, negatives, zeros,
magnitude extremes, domain-bound violations — and forces solver
failures on demand, all *deterministically*: every generator takes an
explicit seed and owns a private :class:`random.Random`, so a failing
chaos case reproduces byte-for-byte and no global RNG state is
touched.

The contract the chaos suite asserts with these tools: every public
``repro.*`` entry point, fed any corrupted input, either succeeds with
finite (or explicitly NaN-masked) output or raises a
:class:`repro.errors.ReproError` subclass — never a bare
``ValueError``/``ZeroDivisionError``, never a silent NaN.
"""

from __future__ import annotations

import math
import os
import random
import time
from dataclasses import dataclass
from typing import Callable, Iterator

from ..errors import ConvergenceError, DomainError

__all__ = [
    "FAULT_MODES",
    "corrupt",
    "ChaosPlan",
    "FaultInjector",
    "corrupted_calls",
    "flaky",
]

#: Every supported corruption mode, in deterministic order.
FAULT_MODES: tuple[str, ...] = (
    "nan", "inf", "neg_inf", "negative", "zero", "huge", "tiny", "string",
)

_HUGE = 1e308
_TINY = 5e-324  # smallest positive subnormal double


def corrupt(value, mode: str):
    """Return ``value`` corrupted per ``mode`` (pure, deterministic).

    Modes: ``nan``, ``inf``, ``neg_inf``, ``negative`` (sign flip, or
    -1 for zero), ``zero``, ``huge`` (1e308), ``tiny`` (5e-324), and
    ``string`` (a non-numeric token).

    >>> corrupt(42.0, "negative")
    -42.0
    """
    if mode == "nan":
        return math.nan
    if mode == "inf":
        return math.inf
    if mode == "neg_inf":
        return -math.inf
    if mode == "negative":
        try:
            numeric = float(value)
        except (TypeError, ValueError):
            numeric = 1.0
        return -abs(numeric) if numeric != 0 else -1.0
    if mode == "zero":
        return 0.0
    if mode == "huge":
        return _HUGE
    if mode == "tiny":
        return _TINY
    if mode == "string":
        return "<injected-garbage>"
    raise DomainError(f"unknown fault mode {mode!r}; known: {FAULT_MODES}")


@dataclass(frozen=True)
class InjectedCall:
    """One corrupted invocation plan produced by :func:`corrupted_calls`."""

    field: str
    mode: str
    kwargs: dict

    def describe(self) -> str:
        """Stable label for test ids and failure messages."""
        return f"{self.field}<-{self.mode}"


class FaultInjector:
    """Seeded source of corruption decisions (no global RNG).

    Each injector owns a private :class:`random.Random` seeded at
    construction, so two injectors with the same seed make identical
    choices regardless of interleaving.
    """

    def __init__(self, seed: int):
        self._rng = random.Random(seed)
        self.seed = seed

    def pick_mode(self) -> str:
        """Draw one fault mode (deterministic for a given seed/call #)."""
        return self._rng.choice(FAULT_MODES)

    def pick_field(self, kwargs: dict) -> str:
        """Draw one parameter name to corrupt."""
        if not kwargs:
            raise DomainError("cannot inject a fault into an empty call")
        return self._rng.choice(sorted(kwargs))

    def corrupt_call(self, kwargs: dict, field: str | None = None,
                     mode: str | None = None) -> InjectedCall:
        """A copy of ``kwargs`` with one field corrupted."""
        field = field if field is not None else self.pick_field(kwargs)
        mode = mode if mode is not None else self.pick_mode()
        if field not in kwargs:
            raise DomainError(f"unknown field {field!r}; have {sorted(kwargs)}")
        mutated = dict(kwargs)
        mutated[field] = corrupt(kwargs[field], mode)
        return InjectedCall(field=field, mode=mode, kwargs=mutated)


def corrupted_calls(kwargs: dict, seed: int,
                    fields: tuple[str, ...] | None = None,
                    modes: tuple[str, ...] = FAULT_MODES) -> Iterator[InjectedCall]:
    """Every (field, mode) corruption of a valid call, deterministic order.

    The exhaustive cross product — not a random sample — so a chaos
    sweep covers each parameter with each corruption exactly once; the
    ``seed`` only perturbs *values* where a mode has freedom (none do
    today, but the signature keeps call sites honest about providing
    one).
    """
    injector = FaultInjector(seed)
    for field in (fields if fields is not None else tuple(sorted(kwargs))):
        for mode in modes:
            yield injector.corrupt_call(kwargs, field=field, mode=mode)


@dataclass(frozen=True)
class ChaosPlan:
    """Deterministic worker-side faults, keyed by chunk index.

    The pool-level adversary behind the supervision chaos suite. A
    plan names which chunk *indices* misbehave and how:

    * ``kill_chunks`` — the worker process dies mid-chunk via
      ``os._exit`` (the pool surfaces ``BrokenProcessPool``);
    * ``hang_chunks`` — the worker sleeps ``hang_s`` seconds, so a
      configured chunk deadline expires;
    * ``corrupt_chunks`` — the chunk returns a truncated values array
      that fails shape validation.

    Faults fire only while ``attempt < fail_attempts`` (default 1), so
    a supervised retry of the same chunk succeeds — deterministic
    recovery without flaky sleeps or global RNG. Plans are frozen
    dataclasses of tuples and pickle cheaply into workers.
    """

    kill_chunks: tuple = ()
    hang_chunks: tuple = ()
    corrupt_chunks: tuple = ()
    fail_attempts: int = 1
    hang_s: float = 30.0

    def __post_init__(self) -> None:
        """Validate the plan (raises :class:`~repro.errors.DomainError`)."""
        if self.fail_attempts < 0:
            raise DomainError(
                f"fail_attempts must be >= 0; got {self.fail_attempts}")
        if self.hang_s < 0:
            raise DomainError(f"hang_s must be >= 0; got {self.hang_s}")
        overlap = (set(self.kill_chunks) & set(self.hang_chunks)
                   | set(self.kill_chunks) & set(self.corrupt_chunks)
                   | set(self.hang_chunks) & set(self.corrupt_chunks))
        if overlap:
            raise DomainError(
                f"chunks {sorted(overlap)} appear in more than one chaos mode")

    def mode_for(self, index: int, attempt: int = 0) -> str | None:
        """The fault (``kill``/``hang``/``corrupt``) due for this attempt."""
        if attempt >= self.fail_attempts:
            return None
        if index in self.kill_chunks:
            return "kill"
        if index in self.hang_chunks:
            return "hang"
        if index in self.corrupt_chunks:
            return "corrupt"
        return None

    @staticmethod
    def corrupt_values(values):
        """A detectably-wrong result: drop the last point of the chunk."""
        return values[..., :-1]

    def inject(self, index: int, attempt: int = 0) -> str | None:
        """Fire the side-effecting fault for ``(index, attempt)``, if any.

        Called at the top of the worker-side chunk entry. ``kill``
        never returns (``os._exit(3)``); ``hang`` sleeps ``hang_s``
        then returns; returns the mode (the caller applies
        :meth:`corrupt_values` itself after computing the result) or
        ``None`` when this attempt runs clean.
        """
        mode = self.mode_for(index, attempt)
        if mode == "kill":
            os._exit(3)
        if mode == "hang":
            time.sleep(self.hang_s)
        return mode


def flaky(fn: Callable, fail_times: int, exc_factory: Callable[[], BaseException] | None = None):
    """Wrap ``fn`` to fail deterministically on its first ``fail_times`` calls.

    The forced-solver-failure tool: hand a flaky objective to a
    hardened solver and check the retry budget rides through exactly
    ``fail_times`` failures. The wrapper exposes ``calls`` (total
    invocations) and ``failures`` (faults raised so far).
    """
    if fail_times < 0:
        raise DomainError(f"fail_times must be >= 0; got {fail_times}")
    state = {"calls": 0, "failures": 0}

    def wrapper(*args, **kwargs):
        state["calls"] += 1
        if state["failures"] < fail_times:
            state["failures"] += 1
            raise (exc_factory() if exc_factory is not None
                   else ConvergenceError("injected solver failure"))
        return fn(*args, **kwargs)

    wrapper.state = state  # type: ignore[attr-defined]
    return wrapper
