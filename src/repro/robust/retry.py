"""Solver hardening: retry budgets and convergence reports.

The golden-section solvers (`repro.optimize.optimal_sd`,
:func:`repro.economics.profit_optimal_sd`) and the eq.-(6) calibration
search can fail for recoverable reasons: a bracket too narrow for the
optimum, an unlucky starting interval, an iteration cap one notch too
low. :class:`RetryBudget` describes how hard a solver may try before
giving up — bracket expansion, restart with perturbed bounds, extra
iterations — and :class:`ConvergenceReport` records what the solver
actually did, so a final :class:`repro.errors.ConvergenceError` is
debuggable instead of bare.

Retries are deterministic: the bound perturbations come from the fixed
:attr:`RetryBudget.perturb_fraction` schedule, never from a global RNG,
so a failing configuration fails (and then succeeds) identically on
every run.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import DomainError
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace

__all__ = ["RetryBudget", "ConvergenceReport", "DEFAULT_RETRY_BUDGET"]


@dataclass(frozen=True)
class RetryBudget:
    """How much extra work a solver may spend before declaring failure.

    Attributes
    ----------
    max_attempts:
        Total solve attempts (1 = the plain un-hardened call).
    bracket_growth:
        Multiplier applied to the upper search bound on each
        bracket-expansion retry (for "optimum clipped at sd_max"-style
        failures).
    perturb_fraction:
        Relative inward perturbation of the lower bound on each restart
        (for convergence stalls near a divergence); the k-th retry
        perturbs by ``k * perturb_fraction``.
    iter_growth:
        Multiplier applied to the iteration cap on each retry.
    """

    max_attempts: int = 3
    bracket_growth: float = 4.0
    perturb_fraction: float = 0.05
    iter_growth: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise DomainError(f"max_attempts must be >= 1; got {self.max_attempts}")
        if self.bracket_growth < 1.0:
            raise DomainError(f"bracket_growth must be >= 1; got {self.bracket_growth}")
        if not 0.0 <= self.perturb_fraction < 1.0:
            raise DomainError(
                f"perturb_fraction must lie in [0, 1); got {self.perturb_fraction}")
        if self.iter_growth < 1.0:
            raise DomainError(f"iter_growth must be >= 1; got {self.iter_growth}")

    def attempts(self) -> range:
        """Iterate attempt indices ``0 .. max_attempts-1``."""
        return range(self.max_attempts)


#: The budget the hardened call sites use when asked to retry.
DEFAULT_RETRY_BUDGET = RetryBudget()


@dataclass(frozen=True)
class ConvergenceReport:
    """What an iterative solve actually did — attached to failures.

    Attributes
    ----------
    solver:
        Dotted name of the solver (``"optimize.optimum.optimal_sd"``).
    attempts:
        Solve attempts consumed (1 when no retry budget was in play).
    iterations:
        Iterations used by the *last* attempt.
    last_bracket:
        Search interval of the last attempt ``(lo, hi)``.
    best_x:
        Best abscissa seen across all attempts (NaN when none).
    best_fx:
        Objective value at :attr:`best_x` (NaN when none).
    """

    solver: str
    attempts: int
    iterations: int
    last_bracket: tuple[float, float]
    best_x: float
    best_fx: float

    def __str__(self) -> str:
        lo, hi = self.last_bracket
        return (f"{self.solver}: {self.attempts} attempt(s), "
                f"{self.iterations} iterations, last bracket "
                f"[{lo:.6g}, {hi:.6g}], best f({self.best_x:.6g}) = {self.best_fx:.6g}")


def note_retry(solver: str, attempt: int, reason: str) -> None:
    """Record one retry on the obs grid (counter + span annotation)."""
    obs_metrics.inc("robust_retry_attempts_total", labels={"solver": solver})
    span = obs_trace.current_span()
    if span is not None:
        span.set_attr("robust.retry.attempt", attempt)
        span.set_attr("robust.retry.reason", reason)
