"""Hardened scalar minimisation — golden section with reports and retries.

One implementation of the golden-section search used across the
library (``optimal_sd``, ``profit_optimal_sd``, historically
copy-pasted per call site), upgraded with the robustness contract:

* :func:`golden_min` tracks the best point seen, and on iteration
  exhaustion raises a :class:`repro.errors.ConvergenceError` carrying a
  :class:`~repro.robust.retry.ConvergenceReport` (iterations used, last
  bracket, best-so-far) instead of a bare message;
* :func:`retrying_golden_min` wraps it in a
  :class:`~repro.robust.retry.RetryBudget`: each retry grows the
  iteration cap and nudges the lower bound by a deterministic fraction
  of its margin — no global RNG — before the final failure propagates
  with the last report attached.
"""

from __future__ import annotations

import math
from typing import Callable

from ..errors import ConvergenceError
from .retry import ConvergenceReport, RetryBudget, note_retry

__all__ = ["golden_min", "retrying_golden_min"]

_INVPHI = (math.sqrt(5.0) - 1.0) / 2.0


def golden_min(fn: Callable[[float], float], lo: float, hi: float,
               tol: float, max_iter: int, *,
               solver: str = "robust.solvers.golden_min",
               attempt: int = 1) -> tuple[float, float, int]:
    """Golden-section minimisation of a unimodal scalar function.

    Returns ``(x, fn(x), iterations)``. Raises
    :class:`~repro.errors.ConvergenceError` (with a
    :class:`~repro.robust.retry.ConvergenceReport`) when the bracket
    has not collapsed within ``max_iter`` iterations.
    """
    a, b = lo, hi
    c = b - _INVPHI * (b - a)
    d = a + _INVPHI * (b - a)
    fc, fd = fn(c), fn(d)
    best_x, best_fx = (c, fc) if fc <= fd else (d, fd)
    for i in range(max_iter):
        if abs(b - a) <= tol * (abs(a) + abs(b)):
            x = 0.5 * (a + b)
            return x, fn(x), i
        if fc < fd:
            b, d, fd = d, c, fc
            c = b - _INVPHI * (b - a)
            fc = fn(c)
            if fc < best_fx:
                best_x, best_fx = c, fc
        else:
            a, c, fc = c, d, fd
            d = a + _INVPHI * (b - a)
            fd = fn(d)
            if fd < best_fx:
                best_x, best_fx = d, fd
    raise ConvergenceError(
        f"golden-section search did not converge in {max_iter} iterations",
        report=ConvergenceReport(
            solver=solver, attempts=attempt, iterations=max_iter,
            last_bracket=(a, b), best_x=best_x, best_fx=best_fx))


def retrying_golden_min(fn: Callable[[float], float], lo: float, hi: float,
                        tol: float, max_iter: int, *,
                        solver: str,
                        retry: RetryBudget | None = None,
                        lo_floor: float | None = None,
                        ) -> tuple[float, float, int, int]:
    """Golden-section search with restart-on-failure semantics.

    Returns ``(x, fn(x), iterations, attempts)``. With ``retry=None``
    this is exactly one :func:`golden_min` call. With a budget, each
    failed attempt grows the iteration cap by
    :attr:`~repro.robust.retry.RetryBudget.iter_growth` and restarts
    from a lower bound whose margin above ``lo_floor`` (default: the
    original ``lo``) is stretched by
    :attr:`~repro.robust.retry.RetryBudget.perturb_fraction` — a
    deterministic perturbation small relative to the bracket, large
    relative to a degenerate starting interval.
    """
    floor = lo if lo_floor is None else lo_floor
    cur_lo, cur_iter = lo, max_iter
    for attempt in range(1, (1 if retry is None else retry.max_attempts) + 1):
        try:
            x, fx, iters = golden_min(fn, cur_lo, hi, tol, cur_iter,
                                      solver=solver, attempt=attempt)
            return x, fx, iters, attempt
        except ConvergenceError as exc:
            if retry is None or attempt >= retry.max_attempts:
                raise
            note_retry(solver, attempt, type(exc).__name__)
            cur_iter = max(cur_iter + 1, int(cur_iter * retry.iter_growth))
            margin = cur_lo - floor
            if margin > 0:
                cur_lo = floor + margin * (1.0 + retry.perturb_fraction * attempt)
    raise ConvergenceError(f"{solver}: retry loop exited without a result")  # pragma: no cover
