"""Error policies — what a sweep does when one grid point is infeasible.

The paper's argument is a *scan* over design space: eq. (4)/(7) cost
curves, ITRS trend series, the Figure-4 optimum migration. A scan that
aborts on its first infeasible point (``s_d ≤ s_d0`` in eq. (6), a
yield outside (0, 1], a degenerate node) throws away every feasible
point computed so far. :class:`ErrorPolicy` makes the failure mode a
caller choice:

* :attr:`ErrorPolicy.RAISE` — propagate immediately (the default;
  byte-identical to the historical behavior);
* :attr:`ErrorPolicy.MASK` — replace the failing point with NaN,
  record a :class:`Diagnostic`, and continue;
* :attr:`ErrorPolicy.COLLECT` — like MASK while the scan runs, but
  raise a single :class:`repro.errors.CollectedErrors` carrying every
  :class:`Diagnostic` once the scan completes — one pass surfaces
  *all* the infeasible points.

Only :class:`repro.errors.ReproError` subclasses are ever masked or
collected; programming errors (``TypeError``, ``AttributeError``)
always propagate.

Every masked/collected failure increments ``robust.policy.masked`` /
``robust.policy.collected`` counters in :mod:`repro.obs.metrics` and
annotates the innermost open span, so PR 1's tracing shows robustness
events alongside timings.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..errors import CollectedErrors, ReproError
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace

__all__ = ["ErrorPolicy", "Diagnostic", "DiagnosticLog"]


class ErrorPolicy(enum.Enum):
    """How a multi-point evaluation treats a failing point."""

    RAISE = "raise"
    MASK = "mask"
    COLLECT = "collect"

    @classmethod
    def coerce(cls, value: "ErrorPolicy | str") -> "ErrorPolicy":
        """Accept an :class:`ErrorPolicy` or its string name/value.

        >>> ErrorPolicy.coerce("mask")
        <ErrorPolicy.MASK: 'mask'>
        """
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value).lower())
        except ValueError as exc:
            known = ", ".join(p.value for p in cls)
            # DomainError would be natural here, but importing it lazily
            # keeps this module free of a validation dependency cycle.
            from ..errors import DomainError

            raise DomainError(f"unknown error policy {value!r}; known: {known}") from exc


@dataclass(frozen=True)
class Diagnostic:
    """One structured failure record from a masked/collected evaluation.

    Attributes
    ----------
    where:
        Dotted name of the evaluation that failed
        (``"optimize.sweep.sd_sweep"``).
    equation:
        Paper equation id the evaluation implements (``"4"``, ``"6"``),
        or ``""`` when not tied to one.
    parameter:
        Name of the swept/offending parameter (``"sd"``, ``"year"``).
    value:
        The offending parameter value (repr-friendly scalar).
    index:
        Grid/series index of the failing point, or ``None`` when the
        failure is not positional.
    error_type:
        Exception class name (``"DomainError"``).
    message:
        The exception message.
    """

    where: str
    equation: str
    parameter: str
    value: object
    index: int | None
    error_type: str
    message: str

    @classmethod
    def from_exception(cls, exc: BaseException, *, where: str, equation: str = "",
                       parameter: str = "", value: object = None,
                       index: int | None = None) -> "Diagnostic":
        """Build a record from a caught exception plus call-site context."""
        return cls(
            where=where,
            equation=equation,
            parameter=parameter,
            value=value,
            index=index,
            error_type=type(exc).__name__,
            message=str(exc),
        )

    def __str__(self) -> str:
        pos = f"[{self.index}]" if self.index is not None else ""
        param = f" {self.parameter}={self.value!r}" if self.parameter else ""
        eq = f" (eq. {self.equation})" if self.equation else ""
        return f"{self.where}{pos}{eq}{param}: {self.error_type}: {self.message}"


@dataclass
class DiagnosticLog:
    """Accumulates :class:`Diagnostic` records during one policy-guarded scan.

    The policy-aware call sites (`sd_sweep`, ``constant_cost_series``,
    ...) create one per invocation; :meth:`capture` decides — per the
    policy — whether an exception is swallowed (MASK/COLLECT) or
    propagates (RAISE), and :meth:`finish` raises the aggregate
    :class:`repro.errors.CollectedErrors` for COLLECT runs.
    """

    policy: ErrorPolicy
    where: str
    equation: str = ""
    diagnostics: list[Diagnostic] = field(default_factory=list)

    def capture(self, exc: BaseException, *, parameter: str = "",
                value: object = None, index: int | None = None) -> bool:
        """Handle one failing point; returns True when it was absorbed.

        Non-:class:`~repro.errors.ReproError` exceptions are never
        absorbed — a ``TypeError`` in a sweep is a bug, not an
        infeasible operating point.
        """
        if self.policy is ErrorPolicy.RAISE or not isinstance(exc, ReproError):
            return False
        diag = Diagnostic.from_exception(
            exc, where=self.where, equation=self.equation,
            parameter=parameter, value=value, index=index)
        self.diagnostics.append(diag)
        kind = "masked" if self.policy is ErrorPolicy.MASK else "collected"
        obs_metrics.inc(f"robust.policy.{kind}")
        obs_metrics.inc(f"robust.policy.{kind}.{self.where}")
        span = obs_trace.current_span()
        if span is not None:
            span.set_attr("robust.policy", self.policy.value)
            span.set_attr(f"robust.{kind}", len(self.diagnostics))
        return True

    def finish(self) -> tuple[Diagnostic, ...]:
        """End the scan: raise for COLLECT with failures, else return diagnostics."""
        diags = tuple(self.diagnostics)
        if self.policy is ErrorPolicy.COLLECT and diags:
            raise CollectedErrors(
                f"{self.where}: {len(diags)} point(s) failed", diags)
        return diags

    def __len__(self) -> int:
        return len(self.diagnostics)
