"""Quarantine loading — keep the good rows, report the bad ones.

Strict CSV loading (the default in :mod:`repro.data.io`) fails the
whole import on the first malformed row. That is right for the
curated, shipped datasets — and wrong for the user-extended ones the
CSV round-trip exists for: a 500-row internal design table with three
typo'd cells should load 497 rows and *say which three failed*.

:class:`QuarantineReport` is the container the lenient loaders fill:
one :class:`QuarantinedRow` per rejected row, carrying the row number,
the offending column (when attributable), the cause, and the raw cells
so the row can be repaired and re-imported.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace

__all__ = ["QuarantinedRow", "QuarantineReport"]


@dataclass(frozen=True)
class QuarantinedRow:
    """One rejected CSV row and why it was rejected.

    Attributes
    ----------
    line_no:
        1-based line number in the source (header = line 1).
    column:
        Header name of the offending cell, or ``""`` when the failure
        is row-level (wrong cell count, validation failure).
    cause:
        Human-readable reason, usually the wrapped exception message.
    error_type:
        Exception class name that rejected the row.
    raw:
        The raw cell tuple, for repair-and-reimport workflows.
    """

    line_no: int
    column: str
    cause: str
    error_type: str
    raw: tuple[str, ...]

    def __str__(self) -> str:
        col = f", column {self.column!r}" if self.column else ""
        return f"line {self.line_no}{col}: {self.error_type}: {self.cause}"


@dataclass
class QuarantineReport:
    """Sink for rows a lenient CSV load rejected.

    Pass an instance to :func:`repro.data.io.designs_from_csv` /
    :func:`repro.data.io.roadmap_from_csv` via their ``quarantine``
    parameter to switch those loaders from strict to lenient mode::

        report = QuarantineReport()
        records = designs_from_csv(text, quarantine=report)
        if report:
            print(report.summary())
    """

    source: str = ""
    rows: list[QuarantinedRow] = field(default_factory=list)
    n_loaded: int = 0

    def quarantine(self, exc: BaseException, *, line_no: int, column: str = "",
                   raw: tuple[str, ...] = ()) -> None:
        """Record one rejected row (and its obs counter/span event).

        A ``short`` attribute on the exception (set by the cell-level
        parsers) wins over ``str(exc)`` so causes don't repeat the
        line/column prefix the report prints anyway.
        """
        self.rows.append(QuarantinedRow(
            line_no=line_no,
            column=column,
            cause=getattr(exc, "short", None) or str(exc),
            error_type=type(exc).__name__,
            raw=tuple(raw),
        ))
        obs_metrics.inc("robust_quarantine_rows_total")
        span = obs_trace.current_span()
        if span is not None:
            span.set_attr("robust.quarantined", len(self.rows))

    def __len__(self) -> int:
        return len(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def summary(self) -> str:
        """One-paragraph human summary of the quarantined rows."""
        if not self.rows:
            return "quarantine: clean (0 rows rejected)"
        src = f" from {self.source}" if self.source else ""
        lines = [f"quarantine{src}: {len(self.rows)} row(s) rejected, "
                 f"{self.n_loaded} loaded"]
        lines.extend(f"  - {row}" for row in self.rows)
        return "\n".join(lines)
