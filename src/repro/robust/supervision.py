"""Supervised chunk execution — deadlines, retries, breaker, checkpoints.

The engine's process-pool path used to be all-or-nothing: one worker
crash (``BrokenProcessPool``), one hung chunk, or one corrupted result
killed the entire grid evaluation and threw away every completed
chunk. This module supplies the supervision vocabulary the pool is
rewired through (:mod:`repro.engine.parallel`):

* :class:`ChunkRetryPolicy` — how hard the supervisor may try: a
  per-chunk **deadline** (timeout → cancel + re-dispatch), per-chunk
  and total **retry budgets**, a deterministic capped **backoff**
  schedule, and the **breaker threshold**;
* :class:`CircuitBreaker` — after N consecutive faulty pool cycles the
  breaker opens and the pool is no longer trusted: runs degrade to
  in-process evaluation (MASK/COLLECT, with a
  :class:`~repro.robust.policy.Diagnostic`) or raise a taxonomized
  :class:`repro.errors.ExecutionError` (RAISE);
* :class:`ChunkSupervisor` — the generic retry loop. It owns no pool:
  the caller injects ``submit``/``restart``/``local_eval`` callables,
  so the loop is unit-testable with plain in-process futures and an
  artificial clock — no flaky sleeps;
* :class:`CheckpointSink` — opt-in persistence of completed chunk
  results keyed by a content fingerprint, so an interrupted sweep
  resumes by evaluating only the missing chunks.

Everything here is deterministic: retry budgets and backoff come from
the fixed policy, faults are replayed identically by the seeded chaos
modes of :mod:`repro.robust.faultinject`, and no global RNG is
touched.
"""

from __future__ import annotations

import json
import time
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor, wait
from dataclasses import dataclass
from pathlib import Path

from ..errors import DomainError, ExecutionError
from .policy import Diagnostic

__all__ = [
    "ChunkFailure",
    "ChunkRetryPolicy",
    "ChunkSupervisor",
    "CheckpointSink",
    "CircuitBreaker",
    "DEFAULT_CHUNK_RETRY_POLICY",
    "SupervisionReport",
]

#: Fault reasons a supervised chunk can be retried for.
FAULT_REASONS = ("crash", "timeout", "corrupt")


@dataclass(frozen=True)
class ChunkRetryPolicy:
    """How much fault recovery a supervised chunk run may spend.

    Attributes
    ----------
    max_retries_per_chunk:
        Faults one chunk may survive before it is terminal (0 = fail on
        the first fault).
    max_total_retries:
        Fault budget across the whole run, catching pathological grids
        where every chunk limps individually but the run never ends.
    deadline_s:
        Wall-clock budget per chunk attempt; ``None`` (the default)
        disables deadlines. An expired chunk is cancelled and
        re-dispatched against a restarted pool, so one wedged worker
        cannot hang a sweep.
    backoff_s / backoff_growth / max_backoff_s:
        Deterministic capped exponential backoff between fault cycles:
        cycle ``k`` sleeps ``min(max_backoff_s, backoff_s *
        backoff_growth**k)``. Set ``backoff_s=0`` for no backoff
        (tests).
    breaker_threshold:
        Consecutive faulty pool cycles after which the circuit breaker
        opens and pooled execution is abandoned for the degraded
        in-process path.
    """

    max_retries_per_chunk: int = 2
    max_total_retries: int = 16
    deadline_s: float | None = None
    backoff_s: float = 0.05
    backoff_growth: float = 2.0
    max_backoff_s: float = 1.0
    breaker_threshold: int = 3

    def __post_init__(self) -> None:
        """Validate every knob (raises :class:`~repro.errors.DomainError`)."""
        if self.max_retries_per_chunk < 0:
            raise DomainError("max_retries_per_chunk must be >= 0; got "
                              f"{self.max_retries_per_chunk}")
        if self.max_total_retries < 0:
            raise DomainError(
                f"max_total_retries must be >= 0; got {self.max_total_retries}")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise DomainError(f"deadline_s must be > 0; got {self.deadline_s}")
        if self.backoff_s < 0:
            raise DomainError(f"backoff_s must be >= 0; got {self.backoff_s}")
        if self.backoff_growth < 1.0:
            raise DomainError(
                f"backoff_growth must be >= 1; got {self.backoff_growth}")
        if self.max_backoff_s < 0:
            raise DomainError(
                f"max_backoff_s must be >= 0; got {self.max_backoff_s}")
        if self.breaker_threshold < 1:
            raise DomainError(
                f"breaker_threshold must be >= 1; got {self.breaker_threshold}")

    def backoff_for(self, cycle: int) -> float:
        """Backoff before re-dispatching fault cycle ``cycle`` (0-based)."""
        if self.backoff_s == 0.0:
            return 0.0
        return min(self.max_backoff_s,
                   self.backoff_s * self.backoff_growth ** cycle)


#: The policy the engine's pool path uses unless reconfigured.
DEFAULT_CHUNK_RETRY_POLICY = ChunkRetryPolicy()


@dataclass(frozen=True)
class ChunkFailure:
    """One fault observed while supervising a chunk.

    ``reason`` is one of ``"crash"`` (worker process death /
    ``BrokenProcessPool``), ``"timeout"`` (deadline exceeded) or
    ``"corrupt"`` (result failed shape/content validation);
    ``attempt`` is the attempt number the fault consumed (1 = the
    first retry is next).
    """

    chunk: int
    attempt: int
    reason: str
    message: str

    def __str__(self) -> str:
        return (f"chunk {self.chunk} attempt {self.attempt} "
                f"[{self.reason}]: {self.message}")


class CircuitBreaker:
    """Counts consecutive faulty pool cycles; opens at a threshold.

    ``record_failure`` is called once per fault *cycle* (not per
    chunk), ``record_success`` once per clean cycle that completed
    work. When the consecutive-failure count reaches ``threshold`` the
    breaker opens and stays open until :meth:`reset` — an open breaker
    means the pool is not to be trusted and supervised runs go
    straight to the degraded in-process path (or raise, under RAISE).
    """

    def __init__(self, threshold: int):
        if threshold < 1:
            raise DomainError(f"threshold must be >= 1; got {threshold}")
        self.threshold = threshold
        self._consecutive = 0
        self._open = False
        self.openings = 0

    @property
    def open(self) -> bool:
        """Whether the breaker is currently open (pool abandoned)."""
        return self._open

    @property
    def state(self) -> str:
        """``"open"`` or ``"closed"`` (for gauges and reports)."""
        return "open" if self._open else "closed"

    @property
    def consecutive_failures(self) -> int:
        """Faulty cycles seen since the last clean cycle or reset."""
        return self._consecutive

    def record_failure(self) -> bool:
        """Note one faulty cycle; returns True when this one opened it."""
        self._consecutive += 1
        if not self._open and self._consecutive >= self.threshold:
            self._open = True
            self.openings += 1
            return True
        return False

    def record_success(self) -> None:
        """Note one clean cycle (resets the consecutive count when closed)."""
        if not self._open:
            self._consecutive = 0

    def reset(self) -> None:
        """Close the breaker and clear the consecutive count."""
        self._open = False
        self._consecutive = 0


@dataclass(frozen=True)
class SupervisionReport:
    """What one supervised run actually did — attached to evaluations.

    Attributes
    ----------
    n_chunks:
        Chunks the run was split into.
    retries:
        Every :class:`ChunkFailure` observed, in observation order.
    restarts:
        Worker-pool restarts performed (crash/timeout recovery).
    degraded:
        Chunk indices that fell back to in-process evaluation.
    preloaded:
        Chunk indices served from a :class:`CheckpointSink` without
        evaluating.
    breaker_open:
        Breaker state at the end of the run.
    diagnostics:
        :class:`~repro.robust.policy.Diagnostic` records emitted for
        degradation events (MASK/COLLECT runs surface these on the
        evaluation result).
    """

    n_chunks: int
    retries: tuple = ()
    restarts: int = 0
    degraded: tuple = ()
    preloaded: tuple = ()
    breaker_open: bool = False
    diagnostics: tuple = ()

    @property
    def n_retries(self) -> int:
        """Total faults retried or degraded during the run."""
        return len(self.retries)

    @property
    def faulted(self) -> bool:
        """Whether the run saw any fault, restart, or degradation."""
        return bool(self.retries or self.restarts or self.degraded
                    or self.breaker_open)


class CheckpointSink:
    """Opt-in on-disk persistence of completed chunk results.

    Layout: ``root/<fingerprint>/chunk_<index>.npy`` plus a
    ``meta.json`` describing the run (fingerprint, chunk count, point
    count). The fingerprint is content-addressed over the kernel
    token, the grid bytes, and the chunk count
    (:func:`repro.engine.cache.grid_fingerprint`), so a resumed run
    only reuses chunks from the *identical* evaluation — any change to
    the model, the grid, or the chunking re-evaluates from scratch.

    Writes are atomic (tmp file + ``os.replace``), so an interrupt
    mid-save can never leave a truncated chunk that a resume would
    trust. Unreadable chunk files are dropped (and deleted) at load
    time. ``saved``/``loaded`` count lifetime chunk writes and reads.
    """

    def __init__(self, root):
        self.root = Path(root)
        self.saved = 0
        self.loaded = 0

    @staticmethod
    def _np():
        try:
            import numpy
        except ImportError as exc:  # pragma: no cover - numpy-less deploys
            raise DomainError(
                "checkpointed sweeps require numpy (the pooled engine "
                "path is numpy-only)") from exc
        return numpy

    def _dir(self, fingerprint: str) -> Path:
        return self.root / str(fingerprint)

    @staticmethod
    def _chunk_file(directory: Path, index: int) -> Path:
        return directory / f"chunk_{int(index):05d}.npy"

    def begin(self, fingerprint: str, *, n_chunks: int, points: int) -> None:
        """Ensure the run directory exists and carries its metadata."""
        directory = self._dir(fingerprint)
        directory.mkdir(parents=True, exist_ok=True)
        meta = directory / "meta.json"
        if not meta.exists():
            tmp = directory / ".meta.json.tmp"
            tmp.write_text(json.dumps(
                {"fingerprint": str(fingerprint), "n_chunks": int(n_chunks),
                 "points": int(points), "format": "repro-checkpoint/1"},
                indent=2) + "\n", encoding="utf-8")
            tmp.replace(meta)

    def save(self, fingerprint: str, index: int, values) -> None:
        """Atomically persist one completed chunk's values."""
        np = self._np()
        directory = self._dir(fingerprint)
        directory.mkdir(parents=True, exist_ok=True)
        target = self._chunk_file(directory, index)
        tmp = directory / f".chunk_{int(index):05d}.tmp"
        with open(tmp, "wb") as fh:
            np.save(fh, np.asarray(values, dtype=float))
        tmp.replace(target)
        self.saved += 1

    def load(self, fingerprint: str, n_chunks: int) -> dict:
        """Chunk index → values for every readable persisted chunk."""
        np = self._np()
        directory = self._dir(fingerprint)
        out: dict[int, object] = {}
        if not directory.is_dir():
            return out
        for index in range(int(n_chunks)):
            path = self._chunk_file(directory, index)
            if not path.exists():
                continue
            try:
                out[index] = np.load(path)
            except (OSError, ValueError, EOFError):
                # A torn or foreign file: drop it so the chunk re-evaluates.
                path.unlink(missing_ok=True)
                continue
        self.loaded += len(out)
        return out

    def chunks_on_disk(self, fingerprint: str) -> tuple:
        """Sorted chunk indices currently persisted for ``fingerprint``."""
        directory = self._dir(fingerprint)
        if not directory.is_dir():
            return ()
        indices = []
        for path in directory.glob("chunk_*.npy"):
            try:
                indices.append(int(path.stem.split("_", 1)[1]))
            except (IndexError, ValueError):
                continue
        return tuple(sorted(indices))

    def drop(self, fingerprint: str, index: int) -> bool:
        """Remove one persisted chunk; returns whether it existed."""
        path = self._chunk_file(self._dir(fingerprint), index)
        existed = path.exists()
        path.unlink(missing_ok=True)
        return existed

    def clear(self, fingerprint: str | None = None) -> None:
        """Remove one run's checkpoints, or every run under the root."""
        roots = ([self._dir(fingerprint)] if fingerprint is not None
                 else [p for p in self.root.iterdir() if p.is_dir()]
                 if self.root.is_dir() else [])
        for directory in roots:
            if not directory.is_dir():
                continue
            for path in directory.iterdir():
                path.unlink(missing_ok=True)
            directory.rmdir()


class ChunkSupervisor:
    """Drives a set of chunk tasks to completion under a retry policy.

    The supervisor is deliberately pool-agnostic — the caller injects
    the execution substrate:

    ``submit(index, attempt)``
        Dispatch one chunk attempt; returns a
        :class:`concurrent.futures.Future`.
    ``restart()``
        Tear down and replace the substrate after a crash or timeout
        (the next ``submit`` must land on a fresh pool).
    ``local_eval(index)``
        Evaluate one chunk in-process — the degraded path.
    ``extract(index, raw)`` (optional)
        Convert a future's raw result into chunk values (e.g. unwrap a
        telemetry payload); an exception here marks the result corrupt.
    ``validate(index, values)`` (optional)
        Return an error message for a corrupt result, else ``None``.
    ``observer(event, **info)`` (optional)
        Telemetry hook; events are ``"retry"`` (``chunk=``,
        ``reason=``), ``"restart"``, ``"degraded"`` (``chunk=``,
        ``reason=``) and ``"breaker_open"``.

    ``clock``/``sleep`` default to the real monotonic clock and are
    injectable so deadline logic tests run on an artificial timeline.
    """

    def __init__(self, *, submit, restart, local_eval,
                 policy: ChunkRetryPolicy | None = None,
                 breaker: CircuitBreaker | None = None,
                 extract=None, validate=None, observer=None,
                 clock=time.monotonic, sleep=time.sleep,
                 where: str = "engine.parallel"):
        self._policy = policy if policy is not None else DEFAULT_CHUNK_RETRY_POLICY
        self._breaker = (breaker if breaker is not None
                         else CircuitBreaker(self._policy.breaker_threshold))
        self._submit = submit
        self._restart = restart
        self._local = local_eval
        self._extract = extract
        self._validate = validate
        self._observer = observer
        self._clock = clock
        self._sleep = sleep
        self._where = where

    def _note(self, event: str, **info) -> None:
        if self._observer is not None:
            self._observer(event, **info)

    def run(self, indices, *, allow_degraded: bool = False,
            preloaded: dict | None = None, on_result=None):
        """Supervise ``indices`` to completion; ``(results, report)``.

        ``results`` maps every chunk index to its values. Chunks found
        in ``preloaded`` are taken as-is (checkpoint resume) and never
        dispatched. ``on_result(index, values)`` fires for every chunk
        completed *by this run* (pool or degraded — not preloaded), in
        completion order: the checkpoint-persistence hook.

        When a chunk exhausts its retry budget — or the circuit
        breaker opens — the run either degrades the unfinished chunks
        to ``local_eval`` (``allow_degraded=True``, recording a
        :class:`~repro.robust.policy.Diagnostic` per event) or raises
        :class:`~repro.errors.ExecutionError` carrying every observed
        :class:`ChunkFailure`.
        """
        indices = [int(i) for i in indices]
        preloaded = dict(preloaded or {})
        results: dict[int, object] = {}
        used_preloaded: list[int] = []
        for index in indices:
            if index in preloaded:
                results[index] = preloaded[index]
                used_preloaded.append(index)
        todo = [i for i in indices if i not in results]
        attempts = {i: 0 for i in todo}
        total_retries = 0
        cycles = 0
        retries: list[ChunkFailure] = []
        restarts = 0
        degraded: list[int] = []
        diagnostics: list[Diagnostic] = []
        pending: dict = {}      # future -> chunk index
        deadlines: dict = {}    # chunk index -> absolute deadline (or None)

        def _report() -> SupervisionReport:
            return SupervisionReport(
                n_chunks=len(indices), retries=tuple(retries),
                restarts=restarts, degraded=tuple(sorted(degraded)),
                preloaded=tuple(sorted(used_preloaded)),
                breaker_open=self._breaker.open,
                diagnostics=tuple(diagnostics))

        def _degrade_or_raise(chunk_indices, cause: str) -> None:
            chunk_indices = sorted(set(chunk_indices))
            detail = "; ".join(str(f) for f in retries[-3:]) or "no faults logged"
            exc = ExecutionError(
                f"{self._where}: supervised execution failed ({cause}) for "
                f"chunk(s) {chunk_indices} after {len(retries)} fault(s): "
                f"{detail}", failures=tuple(retries))
            if not allow_degraded:
                raise exc
            for index in chunk_indices:
                results[index] = self._local(index)
                degraded.append(index)
                self._note("degraded", chunk=index, reason=cause)
                if on_result is not None:
                    on_result(index, results[index])
            diagnostics.append(Diagnostic.from_exception(
                exc, where=self._where, parameter="chunks",
                value=tuple(chunk_indices)))

        def _dispatch(chunk_indices) -> None:
            now = self._clock()
            for index in chunk_indices:
                future = self._submit(index, attempts[index])
                pending[future] = index
                deadlines[index] = (None if self._policy.deadline_s is None
                                    else now + self._policy.deadline_s)

        if self._breaker.open and todo:
            # The pool already lost its credit in an earlier run: no probe.
            _degrade_or_raise(todo, "breaker-open")
            return results, _report()

        _dispatch(todo)

        while pending:
            wait_timeout = None
            armed = [deadlines[i] for i in pending.values()
                     if deadlines[i] is not None]
            if armed:
                wait_timeout = max(0.0, min(armed) - self._clock())
            done, _ = wait(set(pending), timeout=wait_timeout,
                           return_when=FIRST_COMPLETED)
            crash_faults: dict[int, str] = {}
            corrupt_faults: dict[int, str] = {}
            for future in done:
                index = pending.pop(future)
                deadlines.pop(index, None)
                try:
                    raw = future.result()
                except BrokenExecutor as exc:
                    crash_faults[index] = (str(exc)
                                           or type(exc).__name__)
                    continue
                except OSError as exc:
                    # Pipe/queue teardown racing a dying pool.
                    crash_faults[index] = f"{type(exc).__name__}: {exc}"
                    continue
                try:
                    values = (self._extract(index, raw)
                              if self._extract is not None else raw)
                except Exception as exc:  # lint: disable=ERR002
                    # Deliberate swallow: whatever the decode raised, the
                    # chunk result is corrupt — it becomes a retried fault,
                    # never a silent success.
                    corrupt_faults[index] = (
                        f"result decode failed: {type(exc).__name__}: {exc}")
                    continue
                message = (self._validate(index, values)
                           if self._validate is not None else None)
                if message is not None:
                    corrupt_faults[index] = message
                    continue
                results[index] = values
                if on_result is not None:
                    on_result(index, values)
            now = self._clock()
            timeout_faults: dict[int, str] = {}
            for future, index in list(pending.items()):
                deadline = deadlines.get(index)
                if deadline is not None and now >= deadline:
                    timeout_faults[index] = (
                        f"chunk {index} exceeded its "
                        f"{self._policy.deadline_s:g}s deadline")

            if not (crash_faults or corrupt_faults or timeout_faults):
                if done:
                    self._breaker.record_success()
                continue

            # --- fault cycle -------------------------------------------
            pool_fault = bool(crash_faults or timeout_faults)
            collateral: list[int] = []
            if pool_fault:
                # The pool is broken (crash) or harbours a wedged worker
                # (timeout): every in-flight chunk must be re-dispatched
                # against a fresh pool. Chunks that did not fault keep
                # their attempt count — they are collateral, not guilty.
                for future, index in list(pending.items()):
                    future.cancel()
                    del pending[future]
                    deadlines.pop(index, None)
                    if index not in timeout_faults:
                        collateral.append(index)
                self._restart()
                restarts += 1
                self._note("restart")
            if self._breaker.record_failure():
                self._note("breaker_open")

            cycle_faults = (
                [(i, "crash", m) for i, m in sorted(crash_faults.items())]
                + [(i, "timeout", m) for i, m in sorted(timeout_faults.items())]
                + [(i, "corrupt", m) for i, m in sorted(corrupt_faults.items())])
            terminal: list[int] = []
            retry_now: list[int] = []
            for index, reason, message in cycle_faults:
                attempts[index] += 1
                total_retries += 1
                retries.append(ChunkFailure(
                    chunk=index, attempt=attempts[index], reason=reason,
                    message=message))
                self._note("retry", chunk=index, reason=reason)
                if (attempts[index] > self._policy.max_retries_per_chunk
                        or total_retries > self._policy.max_total_retries):
                    terminal.append(index)
                else:
                    retry_now.append(index)

            if self._breaker.open:
                unfinished = set(retry_now) | set(terminal) | set(collateral)
                unfinished |= set(pending.values())
                for future in list(pending):
                    future.cancel()
                pending.clear()
                _degrade_or_raise(unfinished, "breaker-open")
                break
            if terminal:
                _degrade_or_raise(terminal, "retry-budget-exhausted")
            backoff = self._policy.backoff_for(cycles)
            cycles += 1
            if backoff > 0:
                self._sleep(backoff)
            _dispatch(sorted(set(retry_now) | set(collateral)))

        return results, _report()
