"""Robustness layer: error policies, hardened solvers, quarantine, chaos.

Four tools, one contract — the library degrades gracefully and fails
cleanly:

* :class:`ErrorPolicy` + :class:`Diagnostic` — sweeps and series accept
  a policy so one infeasible grid point becomes a NaN-masked entry with
  an attached diagnostic (MASK), a deferred aggregate failure
  (COLLECT), or the historical immediate raise (RAISE, the default);
* :class:`RetryBudget` + :class:`ConvergenceReport` — the iterative
  solvers expand brackets and restart from perturbed bounds before
  failing, and when they do fail the
  :class:`~repro.errors.ConvergenceError` carries a report;
* :class:`QuarantineReport` — lenient CSV loading collects malformed
  rows instead of failing the import;
* :mod:`repro.robust.supervision` — supervised chunk execution for the
  engine's process-pool path: per-chunk deadlines,
  :class:`ChunkRetryPolicy` crash recovery, a :class:`CircuitBreaker`
  that degrades to in-process evaluation, and opt-in
  :class:`CheckpointSink` persistence so interrupted sweeps resume;
* :mod:`repro.robust.faultinject` — deterministic corrupted-input and
  forced-failure generators powering the chaos test suite, including
  :class:`ChaosPlan` worker-side faults (kill/hang/corrupt by chunk
  index).

All robustness events (masked points, retries, quarantined rows,
chunk retries, pool restarts) land on the :mod:`repro.obs`
metrics/trace grid when observability is on. See
``docs/robustness.md`` for the guide.
"""

from .faultinject import (
    FAULT_MODES,
    ChaosPlan,
    FaultInjector,
    corrupt,
    corrupted_calls,
    flaky,
)
from .policy import Diagnostic, DiagnosticLog, ErrorPolicy
from .quarantine import QuarantinedRow, QuarantineReport
from .retry import DEFAULT_RETRY_BUDGET, ConvergenceReport, RetryBudget
from .solvers import golden_min, retrying_golden_min
from .supervision import (
    DEFAULT_CHUNK_RETRY_POLICY,
    CheckpointSink,
    ChunkFailure,
    ChunkRetryPolicy,
    ChunkSupervisor,
    CircuitBreaker,
    SupervisionReport,
)

__all__ = [
    "golden_min",
    "retrying_golden_min",
    "ErrorPolicy",
    "Diagnostic",
    "DiagnosticLog",
    "RetryBudget",
    "ConvergenceReport",
    "DEFAULT_RETRY_BUDGET",
    "ChunkRetryPolicy",
    "ChunkFailure",
    "ChunkSupervisor",
    "CircuitBreaker",
    "SupervisionReport",
    "CheckpointSink",
    "DEFAULT_CHUNK_RETRY_POLICY",
    "QuarantinedRow",
    "QuarantineReport",
    "FAULT_MODES",
    "ChaosPlan",
    "corrupt",
    "corrupted_calls",
    "FaultInjector",
    "flaky",
]
