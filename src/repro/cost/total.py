"""Total transistor cost — eqs. (4) and (5) of the paper.

Eq. (4) extends the manufacturing-only eq. (3) with the development
costs amortised over the fabricated silicon:

    ``C_tr = (λ² s_d / Y) · (Cm_sq + Cd_sq)``
    ``Cd_sq = (C_MA + C_DE) / (N_w · A_w)``            (eq. 5)

For high-volume products (``N_w`` large) ``Cd_sq → 0`` and eq. (4)
degenerates to eq. (3), exactly as the paper notes.

:class:`TotalCostModel` wires eq. (6) (design cost) and the mask model
into this structure and optionally folds in the §2.5 extensions (test
cost and hardware utilization ``u``, the latter by the paper's own
``Y → u·Y`` substitution). :meth:`TotalCostModel.breakdown` exposes the
per-component split the Figure 4 discussion reasons about.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._compat import renamed_kwargs
from ..obs.instrument import traced
from ..units import um_to_cm
from ..validation import check_fraction, check_positive
from ..wafer.specs import WAFER_200MM, WaferSpec
from .design import DesignCostModel
from .masks import MaskSetCostModel
from .test import TestCostModel

__all__ = ["CostBreakdown", "TotalCostModel", "PAPER_FIGURE4_MODEL"]


@dataclass(frozen=True)
class CostBreakdown:
    """Per-transistor cost split at one operating point (all $/transistor)."""

    manufacturing: float
    design: float
    masks: float
    test: float

    @property
    def total(self) -> float:
        """Sum of all components."""
        return self.manufacturing + self.design + self.masks + self.test

    @property
    def development_share(self) -> float:
        """Fraction of the total that is development (design + masks)."""
        return (self.design + self.masks) / self.total


@dataclass(frozen=True)
class TotalCostModel:
    """Eq. (4)/(5) with pluggable component models.

    Attributes
    ----------
    design_model:
        Eq.-(6) design cost model (paper constants by default).
    mask_model:
        Mask-set cost model for ``C_MA``; set ``include_masks=False``
        to reproduce the bare eq. (4) with ``C_MA = 0`` (the paper's
        Figure 4 presentation does not separate it).
    wafer:
        Wafer format supplying ``A_w`` for eq. (5).
    include_masks:
        Whether ``C_MA`` enters ``Cd_sq``.
    test_model:
        Optional §2.5 test-cost extension; ``None`` omits it (the
        paper's lower-bound configuration).
    utilization:
        Hardware utilization ``u`` in (0, 1]; enters as ``Y → u·Y``
        per §2.5. Default 1.0 (every fabricated transistor is used).
    """

    design_model: DesignCostModel = field(default_factory=DesignCostModel)
    mask_model: MaskSetCostModel = field(default_factory=MaskSetCostModel)
    wafer: WaferSpec = WAFER_200MM
    include_masks: bool = True
    test_model: TestCostModel | None = None
    utilization: float = 1.0

    def __post_init__(self) -> None:
        check_fraction(self.utilization, "utilization")

    # -- eq. (5) ---------------------------------------------------------
    def mask_cost(self, feature_um) -> float:
        """``C_MA`` for the node ($); zero when masks are excluded."""
        if not self.include_masks:
            return 0.0
        return self.mask_model.cost(feature_um)

    @traced(equation="5")
    def design_cost_per_cm2(self, n_transistors, sd, feature_um, n_wafers):
        """Eq. (5): ``Cd_sq = (C_MA + C_DE)/(N_w A_w)`` in $/cm²."""
        n_wafers = check_positive(n_wafers, "n_wafers")
        c_de = self.design_model.cost(n_transistors, sd)
        c_ma = self.mask_cost(feature_um)
        result = (np.asarray(c_de) + c_ma) / (np.asarray(n_wafers, dtype=float) * self.wafer.area_cm2)
        args = (n_transistors, sd, n_wafers)
        return result if any(np.ndim(a) for a in args) else float(result)

    # -- eq. (4) -----------------------------------------------------------
    @renamed_kwargs(cm_sq="cost_per_cm2")
    @traced(equation="4")
    def transistor_cost(self, sd, n_transistors, feature_um, n_wafers,
                        yield_fraction, cost_per_cm2):
        """Eq. (4): total cost per functional (and used) transistor ($).

        Parameters
        ----------
        sd:
            Design decompression index (> ``design_model.sd0``).
        n_transistors:
            Transistors per die ``N_tr``.
        feature_um:
            Minimum feature size λ (µm).
        n_wafers:
            Wafer run size ``N_w``.
        yield_fraction:
            Manufacturing yield ``Y``.
        cost_per_cm2:
            Manufacturing cost per cm² ``Cm_sq`` ($/cm²).
        """
        sd_arr = check_positive(sd, "sd")
        feature_cm = um_to_cm(check_positive(feature_um, "feature_um"))
        yield_fraction = check_fraction(yield_fraction, "yield_fraction")
        cost_per_cm2 = check_positive(cost_per_cm2, "cost_per_cm2")
        cd_sq = self.design_cost_per_cm2(n_transistors, sd, feature_um, n_wafers)
        ct_sq = 0.0
        if self.test_model is not None:
            ct_sq = self.test_model.cost_per_cm2(sd, feature_um, n_transistors)
        effective_yield = np.asarray(yield_fraction, dtype=float) * self.utilization
        result = (
            np.asarray(feature_cm, dtype=float) ** 2
            * np.asarray(sd_arr, dtype=float)
            / effective_yield
            * (np.asarray(cost_per_cm2, dtype=float) + np.asarray(cd_sq) + np.asarray(ct_sq))
        )
        args = (sd, n_transistors, feature_um, n_wafers, yield_fraction, cost_per_cm2)
        return result if any(np.ndim(a) for a in args) else float(result)

    @renamed_kwargs(cm_sq="cost_per_cm2")
    @traced(equation="4", attach_result=True)
    def breakdown(self, sd, n_transistors, feature_um, n_wafers,
                  yield_fraction, cost_per_cm2) -> CostBreakdown:
        """Component-wise split of eq. (4) at a scalar operating point."""
        sd = check_positive(sd, "sd")
        feature_cm = um_to_cm(check_positive(feature_um, "feature_um"))
        yield_fraction = check_fraction(yield_fraction, "yield_fraction")
        cost_per_cm2 = check_positive(cost_per_cm2, "cost_per_cm2")
        n_wafers = check_positive(n_wafers, "n_wafers")
        silicon = feature_cm**2 * sd / (yield_fraction * self.utilization)
        wafer_cm2 = n_wafers * self.wafer.area_cm2
        design_sq = self.design_model.cost(n_transistors, sd) / wafer_cm2
        mask_sq = self.mask_cost(feature_um) / wafer_cm2
        test_sq = 0.0
        if self.test_model is not None:
            test_sq = self.test_model.cost_per_cm2(sd, feature_um, n_transistors)
        return CostBreakdown(
            manufacturing=float(silicon * cost_per_cm2),
            design=float(silicon * design_sq),
            masks=float(silicon * mask_sq),
            test=float(silicon * test_sq),
        )

    @renamed_kwargs(cm_sq="cost_per_cm2")
    def project_cost(self, sd, n_transistors, feature_um, n_wafers, cost_per_cm2) -> float:
        """Total program spend ($): silicon + design + masks for the run."""
        n_wafers = check_positive(n_wafers, "n_wafers")
        cost_per_cm2 = check_positive(cost_per_cm2, "cost_per_cm2")
        silicon = cost_per_cm2 * self.wafer.area_cm2 * n_wafers
        return float(
            silicon + self.design_model.cost(n_transistors, sd) + self.mask_cost(feature_um)
        )


#: The configuration behind Figure 4: eq. (4) with the paper's eq.-(6)
#: constants, 200 mm wafers, no mask/test terms, full utilization.
PAPER_FIGURE4_MODEL = TotalCostModel(include_masks=False)
