"""Lithography mask-set cost — the ``C_MA`` of eq. (5).

The paper amortises the mask set over the wafer run together with the
design cost: ``Cd_sq = (C_MA + C_DE)/(N_w · A_w)``. Mask-set prices are
well documented historically: roughly $100 k at the 0.6 µm generation,
doubling every generation to ≈ $1 M at 0.18 µm and projected into the
multi-million range for nanometer nodes — one of the paper's "high-cost
era" drivers.

:class:`MaskSetCostModel` captures that cadence:

    ``C_MA(λ) = anchor · (λ_anchor/λ)^exponent · (n_layers/ref_layers)``

The default exponent 2.0 gives ×2 per ×0.7 linear shrink (2^(log_0.7⁻¹…)
≈ doubling per node), matching the historical record. The layer count
term scales linearly: each additional mask level is roughly constant
incremental cost within a node.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..obs.instrument import traced
from ..errors import DomainError
from ..validation import check_positive, check_positive_int

__all__ = ["MaskSetCostModel", "DEFAULT_MASK_COST_MODEL", "layer_count_estimate"]


def layer_count_estimate(feature_um: float) -> int:
    """Typical mask-level count at a feature size.

    Empirical staircase: ~18 levels at 0.6 µm rising ~4 per generation
    to ~30 at 0.13 µm (more metal, more implants).
    """
    feature_um = check_positive(feature_um, "feature_um")
    # Generations below 0.6 um, in x0.7 steps.
    generations = max(0.0, np.log(0.6 / feature_um) / np.log(1.0 / 0.7))
    if not np.isfinite(generations):
        raise DomainError(
            f"feature_um={feature_um!r} is outside the mask-count model's range")
    return int(round(18 + 3.0 * generations))


@dataclass(frozen=True)
class MaskSetCostModel:
    """Mask-set cost as a function of node and layer count.

    Attributes
    ----------
    anchor_cost_usd:
        Full-set price at the anchor node with the reference layer
        count. Default $1.0 M at 0.18 µm.
    anchor_feature_um:
        Anchor node (default 0.18 µm).
    exponent:
        Shrink exponent; 2.0 ≈ cost doubling per ×0.7 node.
    reference_layers:
        Layer count the anchor price assumes (default 24).
    """

    anchor_cost_usd: float = 1.0e6
    anchor_feature_um: float = 0.18
    exponent: float = 2.0
    reference_layers: int = 24

    def __post_init__(self) -> None:
        check_positive(self.anchor_cost_usd, "anchor_cost_usd")
        check_positive(self.anchor_feature_um, "anchor_feature_um")
        check_positive(self.exponent, "exponent")
        check_positive_int(self.reference_layers, "reference_layers")

    @traced(equation="5")
    def cost(self, feature_um, n_layers: int | None = None):
        """Mask-set cost ``C_MA`` in $ for a node.

        Parameters
        ----------
        feature_um:
            Minimum feature size λ (µm).
        n_layers:
            Mask levels; defaults to :func:`layer_count_estimate`.
        """
        feature_um = check_positive(feature_um, "feature_um")
        if n_layers is None:
            if np.ndim(feature_um):
                layers = np.asarray([layer_count_estimate(f) for f in np.asarray(feature_um).ravel()])
                layers = layers.reshape(np.shape(feature_um))
            else:
                layers = layer_count_estimate(feature_um)
        else:
            layers = check_positive_int(n_layers, "n_layers")
        scale = (self.anchor_feature_um / np.asarray(feature_um, dtype=float)) ** self.exponent
        result = self.anchor_cost_usd * scale * (np.asarray(layers, dtype=float) / self.reference_layers)
        return result if np.ndim(feature_um) else float(result)

    def respins_cost(self, feature_um, n_respins: int, n_layers: int | None = None) -> float:
        """Cost of a first set plus ``n_respins`` full re-spins.

        Failed design iterations that reach silicon (§3.2's "failing
        manufacturing experiments") each burn a mask set — this is the
        coupling between iteration count and ``C_MA``.
        """
        if n_respins < 0:
            raise DomainError(f"n_respins must be >= 0; got {n_respins}")
        return float(self.cost(feature_um, n_layers) * (1 + n_respins))


DEFAULT_MASK_COST_MODEL = MaskSetCostModel()
