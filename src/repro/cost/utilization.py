"""Hardware utilization — the ``u`` parameter of §2.5 / eq. (7).

The paper notes that model (4) can price a transistor in devices where
only a subset of fabricated transistors delivers useful function —
FPGAs being the canonical case, unused IP blocks (the idle FPU example)
another — "by simply substituting yield Y with the product uY".

This module supplies that substitution plus the FPGA-vs-ASIC crossover
analysis it enables: an FPGA buys near-zero design cost (``C_DE`` of a
pre-designed fabric amortises over *all* its users) at the price of a
small ``u`` and a sparse fabric ``s_d``; an ASIC pays eq. (6) design
cost for dense, fully utilized silicon. Which wins depends on volume —
a crossover the cost model makes quantitative.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._compat import renamed_kwargs
from ..obs.instrument import traced
from ..units import um_to_cm
from ..errors import DomainError
from ..validation import check_fraction, check_positive
from ..wafer.specs import WAFER_200MM, WaferSpec
from .design import DesignCostModel

__all__ = ["effective_yield", "UtilizedDevice", "fpga_vs_asic_crossover"]


@traced(equation="s2.5")
def effective_yield(yield_fraction, utilization):
    """The paper's §2.5 substitution: ``Y → u·Y``."""
    yield_fraction = check_fraction(yield_fraction, "yield_fraction")
    utilization = check_fraction(utilization, "utilization")
    result = np.asarray(yield_fraction, dtype=float) * np.asarray(utilization, dtype=float)
    args = (yield_fraction, utilization)
    return result if any(np.ndim(a) for a in args) else float(result)


@dataclass(frozen=True)
class UtilizedDevice:
    """A device style priced per *used* transistor.

    Attributes
    ----------
    name:
        Label ("FPGA", "ASIC", ...).
    sd:
        Fabric/layout decompression index.
    utilization:
        Fraction ``u`` of fabricated transistors delivering function.
    design_cost_usd:
        Development cost charged to *this* product. For an FPGA user
        this is near zero (the fabric is pre-designed and its cost
        amortises across the whole FPGA market); for an ASIC it is
        eq. (6).
    mask_cost_usd:
        Mask cost charged to this product (zero for an FPGA user —
        standard parts are bought off the shelf).
    """

    name: str
    sd: float
    utilization: float
    design_cost_usd: float = 0.0
    mask_cost_usd: float = 0.0

    def __post_init__(self) -> None:
        check_positive(self.sd, "sd")
        check_fraction(self.utilization, "utilization")
        if self.design_cost_usd < 0 or self.mask_cost_usd < 0:
            raise DomainError("costs must be non-negative")

    @renamed_kwargs(cm_sq="cost_per_cm2")
    @traced(equation="4")
    def cost_per_used_transistor(self, n_transistors, feature_um, n_wafers,
                                 yield_fraction, cost_per_cm2,
                                 wafer: WaferSpec = WAFER_200MM):
        """Eq. (4) with ``Y → u·Y`` and this device's development costs."""
        n_transistors = check_positive(n_transistors, "n_transistors")
        feature_cm = um_to_cm(check_positive(feature_um, "feature_um"))
        n_wafers = check_positive(n_wafers, "n_wafers")
        yield_fraction = check_fraction(yield_fraction, "yield_fraction")
        cost_per_cm2 = check_positive(cost_per_cm2, "cost_per_cm2")
        dev_sq = (self.design_cost_usd + self.mask_cost_usd) / (
            np.asarray(n_wafers, dtype=float) * wafer.area_cm2
        )
        y_eff = effective_yield(yield_fraction, self.utilization)
        result = feature_cm**2 * self.sd / np.asarray(y_eff) * (cost_per_cm2 + dev_sq)
        args = (n_transistors, n_wafers, yield_fraction)
        return result if any(np.ndim(a) for a in args) else float(result)


@renamed_kwargs(cm_sq="cost_per_cm2")
@traced(equation="4", capture=("n_transistors", "feature_um", "yield_fraction",
                               "cost_per_cm2", "asic_sd", "max_wafers"))
def fpga_vs_asic_crossover(
    n_transistors: float,
    feature_um: float,
    yield_fraction: float,
    cost_per_cm2: float,
    fpga: UtilizedDevice,
    asic_sd: float = 300.0,
    design_model: DesignCostModel | None = None,
    mask_cost_usd: float = 0.0,
    wafer: WaferSpec = WAFER_200MM,
    max_wafers: float = 1.0e7,
) -> float | None:
    """Wafer volume at which the ASIC's used-transistor cost drops below the FPGA's.

    Returns ``None`` when the ASIC never wins below ``max_wafers`` (or
    the FPGA never wins at any volume — i.e. no crossover exists in
    range). Bisection on log-volume; both cost curves are monotone
    decreasing in ``N_w`` with the ASIC falling faster, so at most one
    crossover exists.
    """
    design_model = design_model if design_model is not None else DesignCostModel()
    asic = UtilizedDevice(
        name="ASIC",
        sd=asic_sd,
        utilization=1.0,
        design_cost_usd=design_model.cost(n_transistors, asic_sd),
        mask_cost_usd=mask_cost_usd,
    )

    def gap(n_wafers: float) -> float:
        a = asic.cost_per_used_transistor(n_transistors, feature_um, n_wafers,
                                          yield_fraction, cost_per_cm2, wafer)
        f = fpga.cost_per_used_transistor(n_transistors, feature_um, n_wafers,
                                          yield_fraction, cost_per_cm2, wafer)
        return float(a - f)

    lo, hi = 1.0, float(max_wafers)
    if gap(lo) <= 0:
        return lo  # ASIC already cheaper at one wafer
    if gap(hi) > 0:
        return None  # ASIC never catches up in range
    for _ in range(200):
        mid = np.sqrt(lo * hi)
        if gap(mid) > 0:
            lo = mid
        else:
            hi = mid
        if hi / lo < 1 + 1e-12:
            break
    return float(np.sqrt(lo * hi))
