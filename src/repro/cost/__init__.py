"""The paper's cost models — eqs. (1) and (3)-(7).

* :mod:`~repro.cost.manufacturing` — eqs. (1), (3): silicon-only cost;
* :mod:`~repro.cost.design` — eq. (6): iteration-driven design cost;
* :mod:`~repro.cost.masks` / :mod:`~repro.cost.test` — the ``C_MA``
  term of eq. (5) and the §2.5 test-cost extension;
* :mod:`~repro.cost.total` — eqs. (4)+(5): total transistor cost;
* :mod:`~repro.cost.utilization` — the §2.5 ``Y → uY`` substitution;
* :mod:`~repro.cost.generalized` — eq. (7) with live dependencies.
"""

from .manufacturing import (
    die_cost,
    good_transistors_per_wafer,
    sd_for_transistor_cost,
    transistor_cost,
    transistor_cost_wafer_view,
)
from .design import DesignCostModel, PAPER_DESIGN_COST_MODEL
from .masks import DEFAULT_MASK_COST_MODEL, MaskSetCostModel, layer_count_estimate
from .test import DEFAULT_TEST_COST_MODEL, TestCostModel
from .total import PAPER_FIGURE4_MODEL, CostBreakdown, TotalCostModel
from .utilization import UtilizedDevice, effective_yield, fpga_vs_asic_crossover
from .generalized import DEFAULT_GENERALIZED_MODEL, GeneralizedCostModel

__all__ = [
    "transistor_cost",
    "transistor_cost_wafer_view",
    "die_cost",
    "good_transistors_per_wafer",
    "sd_for_transistor_cost",
    "DesignCostModel",
    "PAPER_DESIGN_COST_MODEL",
    "MaskSetCostModel",
    "DEFAULT_MASK_COST_MODEL",
    "layer_count_estimate",
    "TestCostModel",
    "DEFAULT_TEST_COST_MODEL",
    "TotalCostModel",
    "PAPER_FIGURE4_MODEL",
    "CostBreakdown",
    "UtilizedDevice",
    "effective_yield",
    "fpga_vs_asic_crossover",
    "GeneralizedCostModel",
    "DEFAULT_GENERALIZED_MODEL",
]
