"""Generalized transistor cost — eq. (7), the paper's "ultimate objective".

Eq. (7) promotes every parameter of eq. (4) to a function of the
operating point:

    ``C_tr = s_d λ² [Cm_sq(A_w, λ, N_w) + Cd_sq(A_w, λ, N_w, N_tr, s_d0)]
             / (u · Y(A_w, λ, N_w, s_d, N_tr))``

The paper argues that *without* the capability to evaluate this full
model, "the cost challenge of nanometer-technologies might become
overwhelming". :class:`GeneralizedCostModel` supplies that capability
by composing the library's substrates:

* ``Cm_sq(A_w, λ, N_w)`` — :class:`repro.wafer.cost.WaferCostModel`
  (volume amortisation, node scaling, wafer-size economics);
* ``Y(A_w, λ, N_w, s_d, N_tr)`` —
  :class:`repro.yieldmodels.composite.CompositeYield` (critical-area
  density coupling, defect scaling, learning);
* ``Cd_sq`` — eq. (5) with eq. (6) design cost and the mask model;
* ``u`` — the §2.5 utilization substitution.

Unlike the fixed-``Y`` eq. (4) used for Figure 4, here yield *responds*
to the design density (denser layout ⇒ smaller die but more critical
area per cm²), which is exactly the coupled trade-off §3.1 says design
objectives must optimise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..obs.instrument import traced
from ..units import um_to_cm
from ..validation import check_fraction, check_positive
from ..wafer.cost import WaferCostModel
from ..wafer.specs import WAFER_200MM, WaferSpec
from ..yieldmodels.composite import CompositeYield
from .design import DesignCostModel
from .masks import MaskSetCostModel
from .test import TestCostModel
from .total import CostBreakdown

__all__ = ["GeneralizedCostModel", "DEFAULT_GENERALIZED_MODEL"]


@dataclass(frozen=True)
class GeneralizedCostModel:
    """Eq. (7) with all parameter dependencies live.

    All component models default to the library's calibrated instances;
    swap any of them to run ablations (see
    ``benchmarks/bench_ablation_yield.py``).
    """

    wafer: WaferSpec = WAFER_200MM
    wafer_cost: WaferCostModel = field(default_factory=WaferCostModel)
    yield_model: CompositeYield = field(default_factory=CompositeYield)
    design_model: DesignCostModel = field(default_factory=DesignCostModel)
    mask_model: MaskSetCostModel = field(default_factory=MaskSetCostModel)
    test_model: TestCostModel | None = None
    utilization: float = 1.0
    include_masks: bool = True

    def __post_init__(self) -> None:
        check_fraction(self.utilization, "utilization")

    # -- live parameter views ------------------------------------------------
    def cm_sq(self, feature_um, n_wafers, maturity: float = 1.0):
        """``Cm_sq(A_w, λ, N_w)`` in $/cm²."""
        return self.wafer_cost.cost_per_cm2(feature_um, self.wafer, n_wafers, maturity)

    def cd_sq(self, n_transistors, sd, feature_um, n_wafers):
        """``Cd_sq(A_w, λ, N_w, N_tr, s_d)`` in $/cm² (eq. 5)."""
        n_wafers = check_positive(n_wafers, "n_wafers")
        c_de = self.design_model.cost(n_transistors, sd)
        c_ma = self.mask_model.cost(feature_um) if self.include_masks else 0.0
        result = (np.asarray(c_de) + c_ma) / (np.asarray(n_wafers, dtype=float) * self.wafer.area_cm2)
        args = (n_transistors, sd, n_wafers)
        return result if any(np.ndim(a) for a in args) else float(result)

    def yield_at(self, n_transistors, sd, feature_um, n_wafers):
        """``Y(A_w, λ, N_w, s_d, N_tr)`` in (0, 1]."""
        return self.yield_model(n_transistors, sd, feature_um, n_wafers)

    # -- eq. (7) -----------------------------------------------------------
    @traced(equation="7")
    def transistor_cost(self, sd, n_transistors, feature_um, n_wafers,
                        maturity: float = 1.0):
        """``C_tr`` per eq. (7), $/useful transistor."""
        sd = check_positive(sd, "sd")
        feature_cm = um_to_cm(check_positive(feature_um, "feature_um"))
        cm = self.cm_sq(feature_um, n_wafers, maturity)
        cd = self.cd_sq(n_transistors, sd, feature_um, n_wafers)
        ct = 0.0
        if self.test_model is not None:
            ct = self.test_model.cost_per_cm2(sd, feature_um, n_transistors)
        y = self.yield_at(n_transistors, sd, feature_um, n_wafers)
        result = (
            np.asarray(sd, dtype=float)
            * np.asarray(feature_cm, dtype=float) ** 2
            * (np.asarray(cm) + np.asarray(cd) + np.asarray(ct))
            / (self.utilization * np.asarray(y))
        )
        args = (sd, n_transistors, feature_um, n_wafers)
        return result if any(np.ndim(a) for a in args) else float(result)

    @traced(equation="7", attach_result=True)
    def breakdown(self, sd, n_transistors, feature_um, n_wafers,
                  maturity: float = 1.0) -> CostBreakdown:
        """Component split of eq. (7) at a scalar operating point."""
        sd = check_positive(sd, "sd")
        feature_cm = um_to_cm(check_positive(feature_um, "feature_um"))
        n_wafers = check_positive(n_wafers, "n_wafers")
        y = float(self.yield_at(n_transistors, sd, feature_um, n_wafers))
        silicon = feature_cm**2 * sd / (y * self.utilization)
        wafer_cm2 = n_wafers * self.wafer.area_cm2
        mask_sq = (self.mask_model.cost(feature_um) / wafer_cm2) if self.include_masks else 0.0
        design_sq = self.design_model.cost(n_transistors, sd) / wafer_cm2
        test_sq = 0.0
        if self.test_model is not None:
            test_sq = self.test_model.cost_per_cm2(sd, feature_um, n_transistors)
        cm = float(self.cm_sq(feature_um, n_wafers, maturity))
        return CostBreakdown(
            manufacturing=float(silicon * cm),
            design=float(silicon * design_sq),
            masks=float(silicon * mask_sq),
            test=float(silicon * test_sq),
        )


DEFAULT_GENERALIZED_MODEL = GeneralizedCostModel()
