"""Design cost model — eq. (6) of the paper.

§2.4 argues that design cost is dominated by *poorly converging design
iterations*: each mis-predicted physical parameter (interconnect delay
being the canonical example) sends the flow around another
synthesis→place→route→extract loop. The closer a team pushes the
layout towards the full-custom density bound, the more such iterations
it burns. The paper captures this with a deliberately simple model:

    ``C_DE = A0 · N_tr^p1 / (s_d − s_d0)^p2``

* ``s_d0`` — the best achievable density, ≈ 100 λ²/transistor, read
  off the densest full-custom microprocessors in Table A1;
* ``A0, p1, p2`` — tuning constants; the paper uses **1000, 1.0, 1.2**,
  calibrated on a private dataset (footnote 1: "illustration purposes").

Sign convention
---------------
The paper prints the denominator as ``(s_d0 − s_d)^p2`` but describes
the effort as growing with the inverse *distance* between the achieved
``s_d`` and the best possible ``s_d0``, where every real design has
``s_d > s_d0`` (Table A1: 101–765 vs the bound 100). We therefore
implement ``(s_d − s_d0)^p2``, which is positive on the paper's own
data and reproduces Figure 4's diverging design cost as ``s_d → s_d0⁺``.

With the default constants and ``N_tr = 10⁷`` (the Figure 4 workload),
``C_DE`` ranges from ≈ $63 M at ``s_d = 150`` down to ≈ $2.7 M at
``s_d = 1000`` — design-team-scale numbers, as intended.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..constants import EQ6_A0, EQ6_P1, EQ6_P2, EQ6_SD0
from ..errors import DomainError
from ..obs.instrument import traced
from ..validation import check_positive

__all__ = ["DesignCostModel", "PAPER_DESIGN_COST_MODEL"]


@dataclass(frozen=True)
class DesignCostModel:
    """Eq. (6): ``C_DE = A0 · N_tr^p1 / (s_d − s_d0)^p2``.

    Attributes
    ----------
    a0:
        Amplitude ``A0`` ($ per transistor^p1, paper value 1000).
    p1:
        Complexity exponent on the transistor count (paper value 1.0).
    p2:
        Divergence exponent on the density margin (paper value 1.2).
    sd0:
        Full-custom density bound ``s_d0`` (paper value 100).
    """

    a0: float = EQ6_A0
    p1: float = EQ6_P1
    p2: float = EQ6_P2
    sd0: float = EQ6_SD0

    def __post_init__(self) -> None:
        check_positive(self.a0, "a0")
        check_positive(self.p1, "p1")
        check_positive(self.p2, "p2")
        check_positive(self.sd0, "sd0")

    def margin(self, sd):
        """Density margin ``s_d − s_d0`` (must be strictly positive).

        Raises
        ------
        DomainError
            If any ``s_d ≤ s_d0``: the model says no finite design
            budget reaches or beats the full-custom bound.
        """
        sd = check_positive(sd, "sd")
        m = np.asarray(sd, dtype=float) - self.sd0
        if np.any(m <= 0):
            raise DomainError(
                f"s_d must exceed the full-custom bound s_d0={self.sd0}; got {sd!r}"
            )
        return m if np.ndim(sd) else float(m)

    @traced(equation="6")
    def cost(self, n_transistors, sd):
        """Total design cost ``C_DE`` in $.

        Parameters
        ----------
        n_transistors:
            Design size ``N_tr`` (transistors).
        sd:
            Target design decompression index (> ``sd0``).
        """
        n_transistors = check_positive(n_transistors, "n_transistors")
        m = self.margin(sd)
        result = self.a0 * np.asarray(n_transistors, dtype=float) ** self.p1 / np.asarray(m) ** self.p2
        return result if (np.ndim(n_transistors) or np.ndim(sd)) else float(result)

    def marginal_cost_wrt_sd(self, n_transistors, sd):
        """``dC_DE/ds_d`` — always negative: sparser is cheaper to design.

        Used by the closed-form optimum conditions in
        :mod:`repro.optimize.optimum`.
        """
        n_transistors = check_positive(n_transistors, "n_transistors")
        m = self.margin(sd)
        result = (
            -self.p2
            * self.a0
            * np.asarray(n_transistors, dtype=float) ** self.p1
            / np.asarray(m) ** (self.p2 + 1.0)
        )
        return result if (np.ndim(n_transistors) or np.ndim(sd)) else float(result)

    @traced(equation="6")
    def sd_for_budget(self, n_transistors, budget_usd):
        """Densest ``s_d`` a design budget can afford (inverts eq. 6).

        ``s_d = s_d0 + (A0 · N_tr^p1 / budget)^{1/p2}``.
        """
        n_transistors = check_positive(n_transistors, "n_transistors")
        budget_usd = check_positive(budget_usd, "budget_usd")
        margin = (
            self.a0 * np.asarray(n_transistors, dtype=float) ** self.p1
            / np.asarray(budget_usd, dtype=float)
        ) ** (1.0 / self.p2)
        result = self.sd0 + margin
        return result if (np.ndim(n_transistors) or np.ndim(budget_usd)) else float(result)


#: Eq. (6) with the paper's published constants (A0=1000, p1=1.0, p2=1.2, s_d0=100).
PAPER_DESIGN_COST_MODEL = DesignCostModel()
