"""Test cost — the extension §2.5 says "could be easily included".

The paper's model (4) omits the cost of production test for brevity
but notes it fits the same per-cm² framework. We include it as an
additive ``Ct_sq`` component with the canonical structure of test
economics:

* **tester time** — dominated by vector depth, which scales with the
  transistor count per cm², i.e. *inversely* with ``s_d``: denser
  silicon carries more logic to exercise per unit area;
* **per-die overhead** — handling/probe touchdown, independent of die
  content, so its per-cm² share falls as dice grow;
* **yield coupling** — bad dice are tested too (that is when they are
  found), so test cost per *good* transistor divides by ``Y`` exactly
  like the silicon does in eq. (3).

:class:`TestCostModel` exposes ``cost_per_cm2`` so
:class:`repro.cost.total.TotalCostModel` can fold it in as a third
``C*_sq`` term alongside ``Cm_sq`` and ``Cd_sq``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..density.metrics import transistor_density_from_sd
from ..obs.instrument import traced
from ..validation import check_nonnegative, check_positive

__all__ = ["TestCostModel", "DEFAULT_TEST_COST_MODEL"]


@dataclass(frozen=True)
class TestCostModel:
    """Per-cm² production test cost.

    (The leading "Test" names the manufacturing-test domain, not a
    pytest suite — ``__test__ = False`` tells pytest to skip it.)

    Attributes
    ----------
    seconds_per_mtransistor:
        Tester seconds needed per million transistors of logic content.
        Default 0.15 s/Mtx (structural/scan test era).
    tester_rate_usd_per_hour:
        Loaded cost of a tester-hour. Default $300/h.
    handling_usd_per_die:
        Fixed per-die probe/handling overhead. Default $0.02.
    """

    __test__ = False  # not a pytest class

    seconds_per_mtransistor: float = 0.15
    tester_rate_usd_per_hour: float = 300.0
    handling_usd_per_die: float = 0.02

    def __post_init__(self) -> None:
        check_nonnegative(self.seconds_per_mtransistor, "seconds_per_mtransistor")
        check_positive(self.tester_rate_usd_per_hour, "tester_rate_usd_per_hour")
        check_nonnegative(self.handling_usd_per_die, "handling_usd_per_die")

    def test_seconds_per_die(self, n_transistors):
        """Tester time for one die (s)."""
        n_transistors = check_positive(n_transistors, "n_transistors")
        result = self.seconds_per_mtransistor * np.asarray(n_transistors, dtype=float) / 1.0e6
        return result if np.ndim(n_transistors) else float(result)

    def cost_per_die(self, n_transistors):
        """Test cost for one die ($), good or bad."""
        seconds = np.asarray(self.test_seconds_per_die(n_transistors))
        result = seconds * (self.tester_rate_usd_per_hour / 3600.0) + self.handling_usd_per_die
        return result if np.ndim(n_transistors) else float(result)

    @traced(equation="s2.5")
    def cost_per_cm2(self, sd, feature_um, n_transistors):
        """``Ct_sq``: test cost per cm² of fabricated silicon ($/cm²).

        Splits the per-die cost over the die area ``N_tr·s_d·λ²``. The
        tester-time part reduces to a pure density term
        ``rate · seconds_per_tx · T_d(s_d, λ)`` — independent of die
        size — while the handling part dilutes with area.
        """
        n_transistors = check_positive(n_transistors, "n_transistors")
        density = transistor_density_from_sd(sd, feature_um)  # tx/cm²
        time_part = (
            self.seconds_per_mtransistor / 1.0e6
            * (self.tester_rate_usd_per_hour / 3600.0)
            * np.asarray(density, dtype=float)
        )
        area_per_die = np.asarray(n_transistors, dtype=float) / np.asarray(density, dtype=float)
        handling_part = self.handling_usd_per_die / area_per_die
        result = time_part + handling_part
        args = (sd, feature_um, n_transistors)
        return result if any(np.ndim(a) for a in args) else float(result)


DEFAULT_TEST_COST_MODEL = TestCostModel()
