"""Manufacturing cost of a transistor — eqs. (1)–(3) of the paper.

Two equivalent formulations are provided:

* the **wafer view** (eq. 1): ``C_tr = C_w / (N_tr · N_ch · Y)`` —
  price the wafer, divide by good transistors;
* the **density view** (eq. 3): ``C_tr = C_sq · λ² · s_d / Y`` —
  price the silicon per cm², multiply by the area an average transistor
  occupies, divide by yield.

The density view is the paper's analytical workhorse because it factors
the cost into a *process* part (``C_sq``, ``λ``, ``Y``) and a pure
*design* part (``s_d``); the wafer view is what a fab quotes. They
agree exactly when ``N_ch = A_usable/A_ch`` prices only usable silicon;
with realistic die-per-wafer edge losses (see
:mod:`repro.wafer.geometry`) the wafer view is slightly more expensive
— eq. (3) is, as §2.5 stresses, a deliberately *optimistic lower
bound*.
"""

from __future__ import annotations

import numpy as np

from ..density.metrics import area_from_sd
from ..obs.instrument import traced
from ..units import um_to_cm
from ..validation import check_fraction, check_positive

__all__ = [
    "transistor_cost_wafer_view",
    "transistor_cost",
    "die_cost",
    "good_transistors_per_wafer",
    "sd_for_transistor_cost",
]


@traced(equation="1")
def transistor_cost_wafer_view(wafer_cost_usd, n_transistors, dice_per_wafer, yield_fraction):
    """Eq. (1): ``C_tr = C_w / (N_tr · N_ch · Y)`` in $/transistor.

    Parameters
    ----------
    wafer_cost_usd:
        Cost of one fully processed wafer ``C_w`` ($).
    n_transistors:
        Transistors per chip ``N_tr``.
    dice_per_wafer:
        Chips per wafer ``N_ch``.
    yield_fraction:
        Manufacturing yield ``Y`` in (0, 1].
    """
    wafer_cost_usd = check_positive(wafer_cost_usd, "wafer_cost_usd")
    n_transistors = check_positive(n_transistors, "n_transistors")
    dice_per_wafer = check_positive(dice_per_wafer, "dice_per_wafer")
    yield_fraction = check_fraction(yield_fraction, "yield_fraction")
    result = np.asarray(wafer_cost_usd, dtype=float) / (
        np.asarray(n_transistors, dtype=float)
        * np.asarray(dice_per_wafer, dtype=float)
        * np.asarray(yield_fraction, dtype=float)
    )
    args = (wafer_cost_usd, n_transistors, dice_per_wafer, yield_fraction)
    return result if any(np.ndim(a) for a in args) else float(result)


@traced(equation="3")
def transistor_cost(cost_per_cm2, feature_um, sd, yield_fraction):
    """Eq. (3): ``C_tr = C_sq · λ² · s_d / Y`` in $/transistor.

    Parameters
    ----------
    cost_per_cm2:
        Manufacturing cost per cm² of fabricated wafer ``C_sq`` ($/cm²).
    feature_um:
        Minimum feature size λ in µm.
    sd:
        Design decompression index (λ² squares per transistor).
    yield_fraction:
        Manufacturing yield ``Y`` in (0, 1].
    """
    cost_per_cm2 = check_positive(cost_per_cm2, "cost_per_cm2")
    feature_cm = um_to_cm(check_positive(feature_um, "feature_um"))
    sd = check_positive(sd, "sd")
    yield_fraction = check_fraction(yield_fraction, "yield_fraction")
    result = (
        np.asarray(cost_per_cm2, dtype=float)
        * np.asarray(feature_cm, dtype=float) ** 2
        * np.asarray(sd, dtype=float)
        / np.asarray(yield_fraction, dtype=float)
    )
    args = (cost_per_cm2, feature_um, sd, yield_fraction)
    return result if any(np.ndim(a) for a in args) else float(result)


@traced(equation="3")
def die_cost(cost_per_cm2, feature_um, sd, n_transistors, yield_fraction):
    """Cost of one *good* die: ``C_ch = C_sq · A_ch / Y`` ($).

    ``A_ch = N_tr · s_d · λ²`` per eq. (2). This is the quantity the
    paper's Figure 3 holds at its 1999 level ($34).
    """
    area = area_from_sd(sd, n_transistors, feature_um)
    cost_per_cm2 = check_positive(cost_per_cm2, "cost_per_cm2")
    yield_fraction = check_fraction(yield_fraction, "yield_fraction")
    result = np.asarray(cost_per_cm2, dtype=float) * np.asarray(area) / np.asarray(yield_fraction, dtype=float)
    args = (cost_per_cm2, feature_um, sd, n_transistors, yield_fraction)
    return result if any(np.ndim(a) for a in args) else float(result)


@traced(equation="3")
def good_transistors_per_wafer(wafer_area_cm2, feature_um, sd, yield_fraction):
    """Functional transistors harvested per cm²-priced wafer.

    ``N = A_w · Y / (λ² s_d)`` — the reciprocal structure of eq. (3).
    """
    wafer_area_cm2 = check_positive(wafer_area_cm2, "wafer_area_cm2")
    feature_cm = um_to_cm(check_positive(feature_um, "feature_um"))
    sd = check_positive(sd, "sd")
    yield_fraction = check_fraction(yield_fraction, "yield_fraction")
    result = (
        np.asarray(wafer_area_cm2, dtype=float)
        * np.asarray(yield_fraction, dtype=float)
        / (np.asarray(feature_cm, dtype=float) ** 2 * np.asarray(sd, dtype=float))
    )
    args = (wafer_area_cm2, feature_um, sd, yield_fraction)
    return result if any(np.ndim(a) for a in args) else float(result)


@traced(equation="3")
def sd_for_transistor_cost(target_cost_usd, cost_per_cm2, feature_um, yield_fraction):
    """Invert eq. (3) for ``s_d``: the sparseness budget a cost target buys.

    ``s_d = C_tr · Y / (C_sq · λ²)`` — used by the Figure 3 style
    "what density does the roadmap *require*" computations.
    """
    target_cost_usd = check_positive(target_cost_usd, "target_cost_usd")
    cost_per_cm2 = check_positive(cost_per_cm2, "cost_per_cm2")
    feature_cm = um_to_cm(check_positive(feature_um, "feature_um"))
    yield_fraction = check_fraction(yield_fraction, "yield_fraction")
    result = (
        np.asarray(target_cost_usd, dtype=float)
        * np.asarray(yield_fraction, dtype=float)
        / (np.asarray(cost_per_cm2, dtype=float) * np.asarray(feature_cm, dtype=float) ** 2)
    )
    args = (target_cost_usd, cost_per_cm2, feature_um, yield_fraction)
    return result if any(np.ndim(a) for a in args) else float(result)
