"""Cost-model-as-a-service: an HTTP layer over the Scenario facade.

The paper's cost model answers interactive questions — "what does this
die cost at this node, at this volume?" — and at production scale that
means a service, not a script. This package serves the
:class:`repro.api.Scenario` facade over stdlib HTTP/JSON:

* :mod:`repro.serve.schemas` — frozen request/response dataclasses;
  the single wire contract shared by server and client;
* :mod:`repro.serve.service` — :class:`CostService`, the
  transport-free coordinator (shared memo cache, micro-batching,
  error-policy semantics);
* :mod:`repro.serve.app` — the routes (``POST /evaluate`` /
  ``/sweep`` / ``/pareto`` / ``/sensitivity`` / ``/optimal_sd``,
  ``GET /healthz`` / ``/metrics``), rate limiting, and the
  error-taxonomy → status-code mapping;
* :mod:`repro.serve.client` — :class:`ServeClient`, typed stdlib
  access to a running instance;
* ``python -m repro.serve`` — the CLI entry point.

Start in-process (tests, notebooks)::

    from repro import serve

    with serve.start_server() as server:
        client = serve.ServeClient(server.url)
        print(client.evaluate({"n_transistors": 1e7, "feature_um": 0.18}))

See ``docs/serving.md`` for the endpoint and error-contract reference.
"""

from .app import ServerHandle, start_server
from .batcher import MicroBatcher
from .client import ServeClient, ServeError
from .ratelimit import TokenBucket
from .schemas import (
    SCENARIO_ROUTES,
    DiagnosticPayload,
    ErrorResponse,
    EvaluatedPoint,
    EvaluateRequest,
    EvaluateResponse,
    OptimalSdRequest,
    OptimalSdResponse,
    ParetoPoint,
    ParetoRequest,
    ParetoResponse,
    ScenarioPayload,
    SensitivityRequest,
    SensitivityResponse,
    SweepRequest,
    SweepResponse,
)
from .service import CostService

__all__ = [
    "SCENARIO_ROUTES",
    "CostService",
    "DiagnosticPayload",
    "ErrorResponse",
    "EvaluatedPoint",
    "EvaluateRequest",
    "EvaluateResponse",
    "MicroBatcher",
    "OptimalSdRequest",
    "OptimalSdResponse",
    "ParetoPoint",
    "ParetoRequest",
    "ParetoResponse",
    "ScenarioPayload",
    "SensitivityRequest",
    "SensitivityResponse",
    "ServeClient",
    "ServeError",
    "ServerHandle",
    "SweepRequest",
    "SweepResponse",
    "TokenBucket",
    "start_server",
]
