"""CLI: ``python -m repro.serve [flags]`` — run the cost-model service.

Binds the HTTP server in the foreground and serves until interrupted
(SIGINT exits cleanly with code 0). Failure contract matches
``python -m repro``: any :class:`repro.errors.ReproError` exits
nonzero with a one-line ``error: ...`` on stderr, never a traceback.

Flags (``FLAG VALUE`` or ``FLAG=VALUE``):

``--host HOST`` / ``--port PORT``
    Bind address (default ``127.0.0.1:8000``; ``--port 0`` picks an
    ephemeral port, printed on startup).
``--rate R`` / ``--burst B``
    Token-bucket rate limiting of the evaluation routes: ``R``
    requests/second sustained, bursts up to ``B`` (default: no limit).
``--cache N``
    Shared memo-cache capacity in entries (default 256; 0 disables).
``--batch-max N`` / ``--batch-window S``
    Micro-batcher limits: coalesce up to ``N`` concurrent single-point
    evaluations, waiting at most ``S`` seconds (defaults 64 / 0.002).
``--no-batch``
    Disable coalescing; every request dispatches directly.
``--history PATH``
    Record the serving session (spans, metrics, engine counters) into
    the run-history store at ``PATH`` on shutdown; defaults to
    ``$REPRO_HISTORY`` when set. ``--history=`` (empty) disables
    recording even when the environment variable is present.
"""

from __future__ import annotations

import sys
import threading

from .. import obs
from ..errors import DomainError, ReproError
from ..obs import history as obs_history
from .app import start_server

_USAGE = ("usage: python -m repro.serve [--host HOST] [--port PORT] "
          "[--rate R] [--burst B] [--cache N] [--batch-max N] "
          "[--batch-window S] [--no-batch] [--history PATH]")


def _split_value_flag(argv, flag):
    """Extract ``FLAG VALUE`` / ``FLAG=VALUE`` from the argv."""
    rest = []
    value = None
    i = 0
    while i < len(argv):
        arg = argv[i]
        if arg == flag:
            if i + 1 >= len(argv):
                raise DomainError(f"{flag} requires a value")
            value = argv[i + 1]
            i += 2
            continue
        if arg.startswith(flag + "="):
            value = arg.split("=", 1)[1]
            i += 1
            continue
        rest.append(arg)
        i += 1
    return rest, value


def _number(text, flag, cast):
    try:
        return cast(text)
    except ValueError:
        raise DomainError(f"{flag} expects a number; got {text!r}") from None


def main(argv=None, ready: "threading.Event | None" = None,
         stop: "threading.Event | None" = None) -> int:
    """CLI entry point.

    ``ready``/``stop`` are test hooks: ``ready`` is set once the server
    is bound (port available via the startup line), and a set ``stop``
    event shuts the server down instead of waiting for SIGINT.
    """
    argv = list(sys.argv[1:] if argv is None else argv)
    try:
        argv, host = _split_value_flag(argv, "--host")
        argv, port = _split_value_flag(argv, "--port")
        argv, rate = _split_value_flag(argv, "--rate")
        argv, burst = _split_value_flag(argv, "--burst")
        argv, cache = _split_value_flag(argv, "--cache")
        argv, batch_max = _split_value_flag(argv, "--batch-max")
        argv, batch_window = _split_value_flag(argv, "--batch-window")
        argv, history_path = _split_value_flag(argv, "--history")
        batching = "--no-batch" not in argv
        argv = [a for a in argv if a != "--no-batch"]
        if argv:
            raise DomainError(f"unknown argument {argv[0]!r}")
        kwargs = {
            "host": host if host is not None else "127.0.0.1",
            "port": _number(port, "--port", int) if port is not None
            else 8000,
            "rate": _number(rate, "--rate", float) if rate is not None
            else None,
            "burst": _number(burst, "--burst", int) if burst is not None
            else 16,
            "cache_entries": _number(cache, "--cache", int)
            if cache is not None else 256,
            "batch_max": _number(batch_max, "--batch-max", int)
            if batch_max is not None else 64,
            "batch_wait_s": _number(batch_window, "--batch-window", float)
            if batch_window is not None else 0.002,
            "batching": batching,
        }
    except DomainError as exc:
        print(f"{exc}; {_USAGE}", file=sys.stderr)
        return 2
    if history_path is None:
        history_default = obs_history.default_history_path()
        if history_default is not None:
            history_path = str(history_default)
    elif not history_path:
        history_path = None  # explicit --history= opts out of recording
    stop = stop if stop is not None else threading.Event()
    try:
        with obs.enabled():
            if history_path is not None:
                with obs_history.recording(history_path, "repro.serve") \
                        as recorder:
                    _serve(kwargs, ready, stop)
                if recorder.record is not None:
                    print(f"history: run #{recorder.record.run_id} "
                          f"-> {history_path}")
            else:
                _serve(kwargs, ready, stop)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def _serve(kwargs: dict, ready, stop) -> None:
    """Run the server until interrupted (or the ``stop`` event is set)."""
    with start_server(**kwargs) as server:
        print(f"repro.serve listening on {server.url} "
              f"(routes: /evaluate /sweep /pareto /sensitivity "
              f"/optimal_sd /healthz /metrics)")
        sys.stdout.flush()
        if ready is not None:
            ready.set()
        try:
            while not stop.wait(timeout=0.2):
                pass
        except KeyboardInterrupt:
            print("shutting down")


if __name__ == "__main__":
    raise SystemExit(main())
