"""The HTTP surface: stdlib routes over :class:`CostService`.

``start_server`` binds a :class:`http.server.ThreadingHTTPServer` on a
daemon thread (the :func:`repro.obs.start_metrics_endpoint` idiom) and
returns a :class:`ServerHandle`. Routes:

* ``POST /evaluate`` / ``/sweep`` / ``/pareto`` / ``/sensitivity`` /
  ``/optimal_sd`` — one per public :class:`repro.api.Scenario` method,
  parsing the matching request dataclass from
  :mod:`repro.serve.schemas`;
* ``GET /healthz`` — :func:`repro.obs.health_payload` liveness JSON;
* ``GET /metrics`` — the Prometheus registry, bridged live with both
  engine-side and serve-side (cache/batcher/rate-limiter) state.

The error contract maps the :mod:`repro.errors` taxonomy onto status
codes — the body is always an :class:`ErrorResponse` whose ``code`` is
the exception class name:

===========================================  ======
condition                                    status
===========================================  ======
malformed JSON / unknown field / bad type    400
evaluation failure under RAISE               422
rate limit exceeded (``Retry-After`` set)    429
backend unavailable (``ExecutionError``)     503
unknown route                                404
===========================================  ======

MASK/COLLECT failures are *not* errors: they return 200 with a
``diagnostics`` array (see :mod:`repro.serve.service`).

Every evaluation request runs inside a ``serve.<route>`` span — when
tracing is enabled, span durations feed the p50/p90/p99 sketches that
``/metrics`` renders as ``repro_span_duration_seconds`` — and counts
into the gated ``serve_requests_total{route,status}`` counter.
"""

from __future__ import annotations

import json
import threading

from ..errors import ExecutionError, ReproError
from ..obs import metrics as obs_metrics
from ..obs import telemetry as obs_telemetry
from ..obs.exposition import health_payload, render_prometheus
from ..obs.trace import span as obs_span
from .ratelimit import TokenBucket
from .schemas import (
    SCENARIO_ROUTES,
    ErrorResponse,
    EvaluateRequest,
    OptimalSdRequest,
    ParetoRequest,
    SensitivityRequest,
    SweepRequest,
)
from .service import CostService

__all__ = ["ServerHandle", "start_server"]

#: Route name → request dataclass, derived from the same literal the
#: API006 lint rule reads, so the HTTP surface cannot drift from the
#: facade without failing the build.
_REQUEST_TYPES = {
    "evaluate": EvaluateRequest,
    "sweep": SweepRequest,
    "pareto": ParetoRequest,
    "sensitivity": SensitivityRequest,
    "optimal_sd": OptimalSdRequest,
}
assert set(_REQUEST_TYPES) == set(SCENARIO_ROUTES)

#: Cap on accepted request bodies (1 MiB) — a batch of thousands of
#: scenarios fits; anything larger is a client error, not a job.
_MAX_BODY_BYTES = 1 << 20


class ServerHandle:
    """Handle on a running serve instance (close it when done)."""

    def __init__(self, server, thread: threading.Thread,
                 service: CostService, limiter: "TokenBucket | None"):
        self._server = server
        self._thread = thread
        self.service = service
        self.limiter = limiter

    @property
    def port(self) -> int:
        """The bound TCP port (useful with ``port=0`` auto-assignment)."""
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        """Base URL of the server (``http://host:port``)."""
        host = self._server.server_address[0]
        return f"http://{host}:{self.port}"

    def close(self) -> None:
        """Stop serving, release the port, stop the batcher (idempotent)."""
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5.0)
        self.service.close()

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def _error_body(exc: BaseException, retry_after_s=None) -> ErrorResponse:
    """The wire form of a failure: taxonomy class name + message."""
    return ErrorResponse(code=type(exc).__name__, message=str(exc),
                         retry_after_s=retry_after_s)


def _bridge_serve_metrics(registry, service: CostService,
                          limiter: "TokenBucket | None"):
    """Publish serve-side state into the registry at scrape time.

    The rate limiter bridges here (``serve_ratelimit_lifetime_total{
    event=granted|throttled}`` by delta, plus a ``serve_ratelimit_tokens``
    gauge); cache and batcher bridging live on the service.
    """
    service.bridge_metrics(registry)
    if limiter is not None:
        stats = limiter.stats()
        for event, lifetime in (("granted", stats["granted"]),
                                ("throttled", stats["throttled"])):
            counter = registry.counter("serve_ratelimit_lifetime_total",
                                       {"event": event})
            delta = lifetime - counter.value
            if delta > 0:
                counter.inc(delta)
        registry.gauge("serve_ratelimit_tokens").set(stats["tokens"])
    return registry


def start_server(host: str = "127.0.0.1", port: int = 0, *,
                 service: "CostService | None" = None,
                 registry=None,
                 rate: "float | None" = None, burst: int = 16,
                 cache_entries: int = 256, batch_max: int = 64,
                 batch_wait_s: float = 0.002,
                 batching: bool = True) -> ServerHandle:
    """Serve the cost model over HTTP from a daemon thread.

    ``port=0`` binds an ephemeral port — read it back from
    :attr:`ServerHandle.port`. ``rate`` (requests/second, ``burst``
    capacity) enables token-bucket limiting of the POST routes;
    ``None`` disables it. ``/healthz`` and ``/metrics`` are never rate
    limited, so probes and scrapers keep working under load. Pass an
    existing ``service`` to share its cache between servers; otherwise
    one is built from the ``cache_entries``/``batch_*`` knobs and owned
    (closed) by the handle.
    """
    from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

    svc = service if service is not None else CostService(
        cache_entries=cache_entries, batch_max=batch_max,
        batch_wait_s=batch_wait_s, batching=batching)
    reg = registry if registry is not None else obs_metrics.get_registry()
    limiter = TokenBucket(rate, burst) if rate is not None else None

    class _Handler(BaseHTTPRequestHandler):
        def do_GET(self):  # noqa: N802 - http.server API
            if self.path == "/metrics":
                obs_telemetry.bridge_engine_metrics(reg)
                _bridge_serve_metrics(reg, svc, limiter)
                self._reply(200, render_prometheus(reg).encode("utf-8"),
                            "text/plain; version=0.0.4; charset=utf-8")
            elif self.path == "/healthz":
                body = (json.dumps(health_payload(), sort_keys=True)
                        + "\n").encode("utf-8")
                self._reply(200, body, "application/json")
            else:
                self._reply_error(404, _error_body(
                    ExecutionError(f"no such route: GET {self.path}")))

        def do_POST(self):  # noqa: N802 - http.server API
            route = self.path.lstrip("/")
            if route not in _REQUEST_TYPES:
                self._reply_error(404, _error_body(
                    ExecutionError(f"no such route: POST {self.path}")))
                return
            if limiter is not None:
                wait_s = limiter.try_acquire()
                if wait_s > 0.0:
                    exc = ExecutionError(
                        "rate limit exceeded; retry after "
                        f"{wait_s:.3f}s")
                    self._reply_error(
                        429, _error_body(exc, retry_after_s=wait_s),
                        retry_after_s=wait_s)
                    self._count(route, 429)
                    return
            try:
                request = _REQUEST_TYPES[route].from_json(self._body())
            except ReproError as exc:
                self._reply_error(400, _error_body(exc))
                self._count(route, 400)
                return
            try:
                with obs_span(f"serve.{route}"):
                    response = getattr(svc, route)(request)
            except ExecutionError as exc:
                self._reply_error(503, _error_body(exc))
                self._count(route, 503)
                return
            except ReproError as exc:
                self._reply_error(422, _error_body(exc))
                self._count(route, 422)
                return
            body = (response.to_json() + "\n").encode("utf-8")
            self._reply(200, body, "application/json")
            self._count(route, 200)

        def _body(self) -> str:
            length = int(self.headers.get("Content-Length") or 0)
            if length > _MAX_BODY_BYTES:
                raise ExecutionError(
                    f"request body too large ({length} bytes; "
                    f"limit {_MAX_BODY_BYTES})")
            return self.rfile.read(length).decode("utf-8")

        def _reply(self, status: int, body: bytes, content_type: str,
                   extra_headers=()) -> None:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            for key, value in extra_headers:
                self.send_header(key, value)
            self.end_headers()
            self.wfile.write(body)

        def _reply_error(self, status: int, error: ErrorResponse,
                         retry_after_s: "float | None" = None) -> None:
            headers = []
            if retry_after_s is not None:
                import math
                headers.append(("Retry-After",
                                str(max(1, math.ceil(retry_after_s)))))
            self._reply(status, (error.to_json() + "\n").encode("utf-8"),
                        "application/json", extra_headers=headers)

        @staticmethod
        def _count(route: str, status: int) -> None:
            obs_metrics.inc("serve_requests_total",
                            labels={"route": route, "status": str(status)})

        def log_message(self, format, *args):  # noqa: A002 - http.server API
            pass  # request logging goes through metrics, not stderr

    class _Server(ThreadingHTTPServer):
        daemon_threads = True
        # A coalescing server exists to absorb concurrent bursts; the
        # http.server default backlog of 5 resets connections under one.
        request_queue_size = 128

    server = _Server((host, port), _Handler)
    thread = threading.Thread(target=server.serve_forever,
                              name="repro-serve", daemon=True)
    thread.start()
    return ServerHandle(server, thread, svc, limiter)
