"""Wire schemas for the :mod:`repro.serve` HTTP layer.

One set of frozen dataclasses is the *entire* contract: the server
routes parse requests with ``from_json`` and render responses with
``to_json``, and :mod:`repro.serve.client` uses the very same classes
in the opposite direction — there is no second, hand-maintained JSON
shape to drift out of sync.

The request classes mirror the :class:`repro.api.Scenario` facade
method for method: :data:`SCENARIO_ROUTES` maps every public
``Scenario`` method to its request class, and the ``API006`` lint rule
statically checks that each method's parameters are covered by the
mapped request's fields (same names, same unit suffixes). Adding a
facade method without a matching route schema fails the build.

This module is deliberately stdlib-only (``json`` + ``dataclasses``):
it must import on an interpreter without NumPy so a telemetry-only or
fallback deployment can still speak the protocol.
``ScenarioPayload.to_scenario`` is the single place the NumPy-backed
facade is touched, and it imports lazily.
"""

from __future__ import annotations

import dataclasses
import json
import math
from dataclasses import dataclass

from ..constants import ASSUMED_YIELD, MANUFACTURING_COST_PER_CM2_USD
from ..errors import DomainError

__all__ = [
    "SCENARIO_ROUTES",
    "ScenarioPayload",
    "DiagnosticPayload",
    "EvaluateRequest",
    "SweepRequest",
    "ParetoRequest",
    "SensitivityRequest",
    "OptimalSdRequest",
    "EvaluatedPoint",
    "EvaluateResponse",
    "SweepResponse",
    "ParetoPoint",
    "ParetoResponse",
    "SensitivityResponse",
    "OptimalSdResponse",
    "ErrorResponse",
]

#: Facade method name → request class name. The single source of truth
#: for the route table (``POST /<method>``) and for the ``API006``
#: parity rule, which reads this literal statically. Keep it a plain
#: ``{str: str}`` literal.
SCENARIO_ROUTES = {
    "evaluate": "EvaluateRequest",
    "sweep": "SweepRequest",
    "pareto": "ParetoRequest",
    "sensitivity": "SensitivityRequest",
    "optimal_sd": "OptimalSdRequest",
}

#: Accepted ``policy`` spellings (mirrors ``repro.robust.ErrorPolicy``
#: values without importing the enum into the wire layer).
_POLICIES = ("raise", "mask", "collect")


def _float_value(value, name: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise DomainError(f"field {name!r} must be a number, "
                          f"got {type(value).__name__}")
    return float(value)


def _converter(fn, name):
    return lambda value: fn(value, name)


def _as_float(value, name) -> float:
    return _float_value(value, name)


def _as_opt_float(value, name):
    return None if value is None else _float_value(value, name)


def _as_int(value, name) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise DomainError(f"field {name!r} must be an integer, "
                          f"got {type(value).__name__}")
    return value


def _as_opt_int(value, name):
    return None if value is None else _as_int(value, name)


def _as_bool(value, name) -> bool:
    if not isinstance(value, bool):
        raise DomainError(f"field {name!r} must be a boolean, "
                          f"got {type(value).__name__}")
    return value


def _as_str(value, name) -> str:
    if not isinstance(value, str):
        raise DomainError(f"field {name!r} must be a string, "
                          f"got {type(value).__name__}")
    return value


def _as_policy(value, name) -> str:
    value = _as_str(value, name).lower()
    if value not in _POLICIES:
        known = ", ".join(_POLICIES)
        raise DomainError(f"unknown error policy {value!r}; known: {known}")
    return value


def _as_opt_floats(value, name):
    if value is None:
        return None
    if not isinstance(value, (list, tuple)):
        raise DomainError(f"field {name!r} must be a list of numbers")
    return tuple(_float_value(v, name) for v in value)


def _as_floats(value, name):
    values = _as_opt_floats(value, name)
    return () if values is None else values


def _as_opt_strs(value, name):
    if value is None:
        return None
    if not isinstance(value, (list, tuple)):
        raise DomainError(f"field {name!r} must be a list of strings")
    return tuple(_as_str(v, name) for v in value)


def _as_items(item_from_dict, name):
    def convert(value):
        if not isinstance(value, (list, tuple)):
            raise DomainError(f"field {name!r} must be a list of objects")
        return tuple(item_from_dict(v) for v in value)

    return convert


def _jsonable(value):
    """Recursively replace non-finite floats with ``None`` (JSON null)."""
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


class _Wire:
    """Shared JSON plumbing for every frozen wire dataclass.

    Subclasses may provide ``_CONVERT`` — a ``{field name: callable}``
    plain class attribute (not a dataclass field) used by
    :meth:`from_dict` to validate and rebuild nested values.
    """

    _CONVERT: dict = {}

    def to_dict(self) -> dict:
        """The record as a JSON-safe dict (NaN/Inf become ``null``)."""
        return _jsonable(dataclasses.asdict(self))

    def to_json(self) -> str:
        """The record as a canonical (sorted-key) JSON document."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str):
        """Parse a JSON document; :class:`DomainError` on malformed input."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise DomainError(f"{cls.__name__}: invalid JSON: {exc}") from exc
        return cls.from_dict(data)

    @classmethod
    def from_dict(cls, data):
        """Build the record from a parsed dict; strict about keys."""
        if not isinstance(data, dict):
            raise DomainError(f"{cls.__name__}: expected a JSON object, "
                              f"got {type(data).__name__}")
        fields = dataclasses.fields(cls)
        unknown = sorted(set(data) - {f.name for f in fields})
        if unknown:
            raise DomainError(
                f"{cls.__name__}: unknown field(s) {', '.join(unknown)}")
        kwargs = {}
        for f in fields:
            if f.name not in data:
                if (f.default is dataclasses.MISSING
                        and f.default_factory is dataclasses.MISSING):
                    raise DomainError(
                        f"{cls.__name__}: missing required field {f.name!r}")
                continue
            convert = cls._CONVERT.get(f.name)
            value = data[f.name]
            kwargs[f.name] = convert(value) if convert is not None else value
        return cls(**kwargs)


@dataclass(frozen=True)
class ScenarioPayload(_Wire):
    """One :class:`repro.api.Scenario` operating point on the wire.

    Scalar fields only — the serve layer always prices under the
    paper's Figure-4 model configuration
    (:data:`repro.cost.PAPER_FIGURE4_MODEL`), so the model object never
    crosses the HTTP boundary. Field names and defaults match the
    facade dataclass exactly.
    """

    n_transistors: float
    feature_um: float
    sd: float = 300.0
    n_wafers: float = 5_000.0
    yield_fraction: float = ASSUMED_YIELD
    cost_per_cm2: float = MANUFACTURING_COST_PER_CM2_USD
    label: str = ""

    _CONVERT = {
        "n_transistors": _converter(_as_float, "n_transistors"),
        "feature_um": _converter(_as_float, "feature_um"),
        "sd": _converter(_as_float, "sd"),
        "n_wafers": _converter(_as_float, "n_wafers"),
        "yield_fraction": _converter(_as_float, "yield_fraction"),
        "cost_per_cm2": _converter(_as_float, "cost_per_cm2"),
        "label": _converter(_as_str, "label"),
    }

    @classmethod
    def from_scenario(cls, scenario) -> "ScenarioPayload":
        """The wire form of a facade :class:`~repro.api.Scenario`."""
        return cls(n_transistors=float(scenario.n_transistors),
                   feature_um=float(scenario.feature_um),
                   sd=float(scenario.sd),
                   n_wafers=float(scenario.n_wafers),
                   yield_fraction=float(scenario.yield_fraction),
                   cost_per_cm2=float(scenario.cost_per_cm2),
                   label=scenario.label)

    def to_scenario(self):
        """The NumPy-backed facade record (lazy :mod:`repro.api` import)."""
        from ..api import Scenario
        return Scenario(n_transistors=self.n_transistors,
                        feature_um=self.feature_um, sd=self.sd,
                        n_wafers=self.n_wafers,
                        yield_fraction=self.yield_fraction,
                        cost_per_cm2=self.cost_per_cm2, label=self.label)


@dataclass(frozen=True)
class DiagnosticPayload(_Wire):
    """Wire mirror of :class:`repro.robust.Diagnostic` (field for field)."""

    where: str
    equation: str
    parameter: str
    value: object
    index: int | None
    error_type: str
    message: str

    _CONVERT = {
        "where": _converter(_as_str, "where"),
        "equation": _converter(_as_str, "equation"),
        "parameter": _converter(_as_str, "parameter"),
        "index": _converter(_as_opt_int, "index"),
        "error_type": _converter(_as_str, "error_type"),
        "message": _converter(_as_str, "message"),
    }

    @classmethod
    def from_diagnostic(cls, diag) -> "DiagnosticPayload":
        """Convert a :class:`repro.robust.Diagnostic` record.

        ``value`` is kept when JSON-representable and stringified
        otherwise, so arbitrary offending values survive the wire.
        """
        value = diag.value
        if not (value is None or isinstance(value, (int, float, str, bool))):
            value = repr(value)
        return cls(where=diag.where, equation=diag.equation,
                   parameter=diag.parameter, value=value, index=diag.index,
                   error_type=diag.error_type, message=diag.message)


def _diagnostics_field():
    return _as_items(DiagnosticPayload.from_dict, "diagnostics")


@dataclass(frozen=True)
class EvaluateRequest(_Wire):
    """``POST /evaluate`` — price one scenario or a batch.

    Accepts either ``{"scenario": {...}}`` (single point) or
    ``{"scenarios": [{...}, ...]}`` (batch); the single form is
    normalised to a one-element batch at parse time.
    """

    scenarios: tuple[ScenarioPayload, ...]
    policy: str = "raise"

    _CONVERT = {
        "scenarios": _as_items(ScenarioPayload.from_dict, "scenarios"),
        "policy": _converter(_as_policy, "policy"),
    }

    @classmethod
    def from_dict(cls, data):
        """Accept the single-``scenario`` sugar next to the batch form."""
        if isinstance(data, dict) and "scenario" in data:
            if "scenarios" in data:
                raise DomainError(
                    "EvaluateRequest: pass either 'scenario' or "
                    "'scenarios', not both")
            data = {**data}
            data["scenarios"] = [data.pop("scenario")]
        return super().from_dict(data)


@dataclass(frozen=True)
class SweepRequest(_Wire):
    """``POST /sweep`` — a 1-D cost sweep (``Scenario.sweep``)."""

    scenario: ScenarioPayload
    parameter: str = "sd"
    values: tuple[float, ...] | None = None
    policy: str = "raise"

    _CONVERT = {
        "scenario": ScenarioPayload.from_dict,
        "parameter": _converter(_as_str, "parameter"),
        "values": _converter(_as_opt_floats, "values"),
        "policy": _converter(_as_policy, "policy"),
    }


@dataclass(frozen=True)
class ParetoRequest(_Wire):
    """``POST /pareto`` — the non-dominated front (``Scenario.pareto``)."""

    scenario: ScenarioPayload
    values: tuple[float, ...] | None = None
    policy: str = "raise"

    _CONVERT = {
        "scenario": ScenarioPayload.from_dict,
        "values": _converter(_as_opt_floats, "values"),
        "policy": _converter(_as_policy, "policy"),
    }


@dataclass(frozen=True)
class SensitivityRequest(_Wire):
    """``POST /sensitivity`` — elasticities (``Scenario.sensitivity``)."""

    scenario: ScenarioPayload
    parameters: tuple[str, ...] | None = None
    rel_step: float = 0.05
    sd_max: float = 5000.0
    policy: str = "raise"

    _CONVERT = {
        "scenario": ScenarioPayload.from_dict,
        "parameters": _converter(_as_opt_strs, "parameters"),
        "rel_step": _converter(_as_float, "rel_step"),
        "sd_max": _converter(_as_float, "sd_max"),
        "policy": _converter(_as_policy, "policy"),
    }


@dataclass(frozen=True)
class OptimalSdRequest(_Wire):
    """``POST /optimal_sd`` — cost-minimising ``s_d``
    (``Scenario.optimal_sd``)."""

    scenario: ScenarioPayload
    sd_max: float = 5000.0
    tol: float = 1e-10
    max_iter: int = 500
    retry: bool = False

    _CONVERT = {
        "scenario": ScenarioPayload.from_dict,
        "sd_max": _converter(_as_float, "sd_max"),
        "tol": _converter(_as_float, "tol"),
        "max_iter": _converter(_as_int, "max_iter"),
        "retry": _converter(_as_bool, "retry"),
    }


@dataclass(frozen=True)
class EvaluatedPoint(_Wire):
    """One priced scenario inside an :class:`EvaluateResponse`.

    ``cost_per_transistor_usd`` / ``die_cost_usd`` are ``None`` when
    the point was masked under the MASK policy (then ``ok`` is false).
    """

    label: str
    cost_per_transistor_usd: float | None
    area_cm2: float | None
    die_cost_usd: float | None
    ok: bool

    _CONVERT = {
        "label": _converter(_as_str, "label"),
        "cost_per_transistor_usd": _converter(_as_opt_float,
                                              "cost_per_transistor_usd"),
        "area_cm2": _converter(_as_opt_float, "area_cm2"),
        "die_cost_usd": _converter(_as_opt_float, "die_cost_usd"),
        "ok": _converter(_as_bool, "ok"),
    }


@dataclass(frozen=True)
class EvaluateResponse(_Wire):
    """``POST /evaluate`` result: one point per requested scenario.

    Under COLLECT with failures, ``results`` is empty and
    ``diagnostics`` carries every deferred failure (aggregate
    semantics, mirroring :class:`repro.errors.CollectedErrors`).
    """

    results: tuple[EvaluatedPoint, ...]
    backend: str = "numpy"
    diagnostics: tuple[DiagnosticPayload, ...] = ()

    _CONVERT = {
        "results": _as_items(EvaluatedPoint.from_dict, "results"),
        "backend": _converter(_as_str, "backend"),
        "diagnostics": _as_items(DiagnosticPayload.from_dict, "diagnostics"),
    }


@dataclass(frozen=True)
class SweepResponse(_Wire):
    """``POST /sweep`` result: the cost curve plus its minimum.

    ``cost`` entries are ``None`` where the MASK policy dropped a
    point; ``x_opt``/``cost_opt`` are ``None`` when every point was
    masked (see ``diagnostics``).
    """

    parameter: str
    x: tuple[float, ...]
    cost: tuple[float | None, ...]
    x_opt: float | None
    cost_opt: float | None
    n_masked: int = 0
    diagnostics: tuple[DiagnosticPayload, ...] = ()

    _CONVERT = {
        "parameter": _converter(_as_str, "parameter"),
        "x": _converter(_as_floats, "x"),
        "cost": lambda v: tuple(
            None if c is None else _float_value(c, "cost") for c in v),
        "x_opt": _converter(_as_opt_float, "x_opt"),
        "cost_opt": _converter(_as_opt_float, "cost_opt"),
        "n_masked": _converter(_as_int, "n_masked"),
        "diagnostics": _as_items(DiagnosticPayload.from_dict, "diagnostics"),
    }


@dataclass(frozen=True)
class ParetoPoint(_Wire):
    """One non-dominated design point (wire mirror of
    :class:`repro.optimize.DesignPoint`)."""

    sd: float
    die_area_cm2: float
    transistor_cost_usd: float
    design_cost_usd: float

    _CONVERT = {
        "sd": _converter(_as_float, "sd"),
        "die_area_cm2": _converter(_as_float, "die_area_cm2"),
        "transistor_cost_usd": _converter(_as_float, "transistor_cost_usd"),
        "design_cost_usd": _converter(_as_float, "design_cost_usd"),
    }


def _as_opt_pareto_point(value):
    return None if value is None else ParetoPoint.from_dict(value)


@dataclass(frozen=True)
class ParetoResponse(_Wire):
    """``POST /pareto`` result: the non-dominated front plus its knee.

    ``knee`` is ``None`` when the front is empty (every candidate
    failed under MASK/COLLECT — see ``diagnostics``).
    """

    front: tuple[ParetoPoint, ...]
    knee: ParetoPoint | None
    diagnostics: tuple[DiagnosticPayload, ...] = ()

    _CONVERT = {
        "front": _as_items(ParetoPoint.from_dict, "front"),
        "knee": _as_opt_pareto_point,
        "diagnostics": _as_items(DiagnosticPayload.from_dict, "diagnostics"),
    }


@dataclass(frozen=True)
class SensitivityResponse(_Wire):
    """``POST /sensitivity`` result: parameter → elasticity.

    A ``None`` elasticity marks a parameter whose perturbed solve
    failed under MASK (see ``diagnostics``).
    """

    elasticities: dict
    diagnostics: tuple[DiagnosticPayload, ...] = ()

    _CONVERT = {
        "elasticities": lambda v: {
            _as_str(k, "elasticities"): (
                None if e is None else _float_value(e, "elasticities"))
            for k, e in dict(v).items()},
        "diagnostics": _as_items(DiagnosticPayload.from_dict, "diagnostics"),
    }


@dataclass(frozen=True)
class OptimalSdResponse(_Wire):
    """``POST /optimal_sd`` result (wire mirror of
    :class:`repro.optimize.OptimumResult`)."""

    sd_opt: float
    cost_opt: float
    iterations: int
    bracket: tuple[float, float]
    attempts: int = 1

    _CONVERT = {
        "sd_opt": _converter(_as_float, "sd_opt"),
        "cost_opt": _converter(_as_float, "cost_opt"),
        "iterations": _converter(_as_int, "iterations"),
        "bracket": _converter(_as_floats, "bracket"),
        "attempts": _converter(_as_int, "attempts"),
    }


@dataclass(frozen=True)
class ErrorResponse(_Wire):
    """Any non-2xx body: the error-taxonomy code plus a message.

    ``code`` is the :mod:`repro.errors` exception class name
    (``"DomainError"``, ``"ConvergenceError"``, ...), so clients can
    branch on the library's taxonomy without string-matching messages.
    ``retry_after_s`` is set on 429 responses only.
    """

    code: str
    message: str
    diagnostics: tuple[DiagnosticPayload, ...] = ()
    retry_after_s: float | None = None

    _CONVERT = {
        "code": _converter(_as_str, "code"),
        "message": _converter(_as_str, "message"),
        "diagnostics": _as_items(DiagnosticPayload.from_dict, "diagnostics"),
        "retry_after_s": _converter(_as_opt_float, "retry_after_s"),
    }
