"""Micro-batching: coalesce concurrent single-point evaluations.

Concurrent ``POST /evaluate`` requests each price one scenario; paying
one engine dispatch per request wastes the vectorized backend. The
:class:`MicroBatcher` puts every pending scenario on one queue and a
single worker thread drains it in batches — up to ``max_batch`` items
or ``max_wait_s`` of extra latency, whichever comes first — so a burst
of N requests becomes one ``evaluate_many`` call.

Coalescing is exact, not approximate: the engine's batch kernel is
elementwise over float64 arrays, so each scenario's cost in a
coalesced batch is bit-identical to what a sequential
``Scenario.evaluate`` call produces (asserted by the serve test
suite). Failure isolation matches too: when a batch raises (one
infeasible scenario aborts a RAISE-policy batch), the worker falls
back to evaluating each queued scenario individually, so innocent
requests still succeed and only the offending one carries the error.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future

from ..errors import ExecutionError, ReproError

__all__ = ["MicroBatcher"]

#: Queue sentinel that tells the worker thread to drain and exit.
_STOP = object()


class MicroBatcher:
    """Coalesce queued items into batched ``evaluate(items)`` calls.

    ``evaluate`` is called from the worker thread with a list of items
    and must return one result per item, in order. :meth:`submit`
    returns a :class:`~concurrent.futures.Future` resolving to that
    item's result (or raising its individual :class:`ReproError`).
    """

    def __init__(self, evaluate, *, max_batch: int = 64,
                 max_wait_s: float = 0.002) -> None:
        if max_batch < 1:
            raise ExecutionError(f"max_batch must be >= 1; got {max_batch}")
        if max_wait_s < 0:
            raise ExecutionError(f"max_wait_s must be >= 0; got {max_wait_s}")
        self.max_batch = int(max_batch)
        self.max_wait_s = float(max_wait_s)
        self._evaluate = evaluate
        self._queue: queue.SimpleQueue = queue.SimpleQueue()
        self._closed = threading.Event()
        self._stats_lock = threading.Lock()
        self._batches = 0
        self._items = 0
        self._largest = 0
        self._fallbacks = 0
        self._thread = threading.Thread(target=self._run,
                                        name="repro-serve-batcher",
                                        daemon=True)
        self._thread.start()

    def submit(self, item) -> Future:
        """Queue one item; resolve its future when its batch lands."""
        if self._closed.is_set():
            raise ExecutionError("micro-batcher is closed")
        if not self._thread.is_alive():
            raise ExecutionError("micro-batcher worker thread died")
        future: Future = Future()
        self._queue.put((item, future))
        return future

    def close(self) -> None:
        """Drain the queue and stop the worker thread (idempotent)."""
        if self._closed.is_set():
            return
        self._closed.set()
        self._queue.put(_STOP)
        self._thread.join(timeout=5.0)

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def stats(self) -> dict:
        """Lifetime counters: batches flushed, items, largest, fallbacks."""
        with self._stats_lock:
            return {"batches": self._batches, "items": self._items,
                    "largest": self._largest, "fallbacks": self._fallbacks}

    # -- worker side ----------------------------------------------------

    def _run(self) -> None:
        while True:
            entry = self._queue.get()
            if entry is _STOP:
                return
            batch = [entry]
            deadline = time.monotonic() + self.max_wait_s
            stop_after = False
            while len(batch) < self.max_batch:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    entry = self._queue.get(timeout=remaining)
                except queue.Empty:
                    break
                if entry is _STOP:
                    stop_after = True
                    break
                batch.append(entry)
            self._flush(batch)
            if stop_after:
                return

    def _flush(self, batch) -> None:
        live = [(item, future) for item, future in batch
                if future.set_running_or_notify_cancel()]
        if not live:
            return
        with self._stats_lock:
            self._batches += 1
            self._items += len(live)
            self._largest = max(self._largest, len(live))
        try:
            results = self._evaluate([item for item, _ in live])
        except ReproError:
            # One bad item aborts a RAISE-policy batch; isolate it by
            # evaluating each queued item individually (the exact
            # sequential path), so only the offender fails.
            with self._stats_lock:
                self._fallbacks += 1
            self._fall_back(live)
            return
        except BaseException as exc:
            # A programming error kills this worker thread; resolve the
            # in-flight futures first so no request hangs forever.
            for _, future in live:
                future.set_exception(exc)
            raise
        for (_, future), result in zip(live, results):
            future.set_result(result)

    def _fall_back(self, live) -> None:
        for item, future in live:
            try:
                result = self._evaluate([item])[0]
            except ReproError as exc:
                future.set_exception(exc)
            else:
                future.set_result(result)
